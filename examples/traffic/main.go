// Traffic demonstrates the paper's §2.3 context handling: a subscription
// to traffic updates parameterized on the user's current city. When a
// GPS-equipped device reports a new location, the mobility tracker
// performs the unsubscribe/subscribe pair; urgent alerts ride an on-line
// topic and reach the device immediately.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/mobility"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
)

type proxyForwarder struct {
	dev *device.Device
}

func (f *proxyForwarder) Forward(n *msg.Notification) error { return f.dev.Receive(n) }

// proxyManager adapts broker+proxy as the tracker's subscription surface:
// a rule subscription creates the proxy topic and the broker subscription.
type proxyManager struct {
	broker *pubsub.Broker
	proxy  *core.Proxy
}

func (m *proxyManager) Subscribe(s msg.Subscription) error {
	cfg := core.UnifiedConfig(s.Topic, s.Options.Max)
	cfg.RankThreshold = s.Options.Threshold
	cfg.Mode = s.Options.Mode
	if err := m.proxy.AddTopic(cfg); err != nil {
		return err
	}
	return m.broker.Subscribe(s, m.proxy.Subscriber())
}

func (m *proxyManager) Unsubscribe(topic, subscriber string) error {
	if err := m.broker.Unsubscribe(topic, subscriber); err != nil {
		return err
	}
	return m.proxy.RemoveTopic(topic)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2026, 7, 5, 8, 0, 0, 0, time.UTC)
	clock := simtime.NewVirtual(start)
	lastHop := link.New(clock, true)

	fwd := &proxyForwarder{}
	proxy := core.New(clock, fwd)
	phone := device.New(clock, lastHop, proxy, device.Config{})
	fwd.dev = phone
	lastHop.OnChange(proxy.SetNetwork)

	broker := pubsub.NewBroker("hub")
	for _, city := range []string{"oslo", "tromsø"} {
		if err := broker.Advertise("traffic/"+city, "roads.no"); err != nil {
			return err
		}
	}

	// The context tracker owns the parameterized subscription: traffic
	// updates for whatever city the user happens to be in, delivered
	// on-line (urgent alerts should interrupt).
	tracker := mobility.NewTracker(&proxyManager{broker: broker, proxy: proxy}, "carol-proxy")
	rule := mobility.Rule{
		Name:          "local-traffic",
		TopicTemplate: "traffic/${city}",
		Options: msg.SubscriptionOptions{
			Max:       8,
			Threshold: 2,
			Mode:      msg.OnLine,
		},
	}
	if err := tracker.AddRule(rule); err != nil {
		return err
	}

	publish := func(city string, id msg.ID, rank float64, text string) {
		n := &msg.Notification{
			ID: id, Topic: "traffic/" + city, Publisher: "roads.no",
			Rank: rank, Published: clock.Now(),
			Expires: clock.Now().Add(2 * time.Hour),
			Payload: []byte(text),
		}
		if err := broker.Publish(n); err != nil {
			log.Printf("publish: %v", err)
		}
	}

	// Carol starts her day in Oslo.
	if err := tracker.UpdateContext(mobility.Context{"city": "oslo"}); err != nil {
		return err
	}
	fmt.Println("GPS: oslo — active subscriptions:", tracker.ActiveTopics())
	publish("oslo", "o1", 4.5, "E18 closed after accident at Bygdøy")
	publish("tromsø", "t1", 4.9, "avalanche warning on E8") // other city: not subscribed
	clock.Advance(time.Minute)
	show(phone, "traffic/oslo")

	// She flies north; the device reports the new location and the
	// tracker resubscribes.
	if err := tracker.UpdateContext(mobility.Context{"city": "tromsø"}); err != nil {
		return err
	}
	fmt.Println("\nGPS: tromsø — active subscriptions:", tracker.ActiveTopics())
	publish("tromsø", "t2", 4.2, "E8 reopened southbound")
	publish("oslo", "o2", 4.0, "ring road congestion") // old city: no longer subscribed
	clock.Advance(time.Minute)
	show(phone, "traffic/tromsø")

	// GPS signal lost: the rule suspends and traffic stops.
	if err := tracker.UpdateContext(mobility.Context{}); err != nil {
		return err
	}
	fmt.Println("\nGPS lost — active subscriptions:", tracker.ActiveTopics())

	ds := phone.Stats()
	fmt.Printf("\ntotal messages pushed to the device: %d (only the user's current city, above threshold)\n",
		ds.Received)
	return nil
}

func show(phone *device.Device, topic string) {
	batch, err := phone.Read(topic, 8)
	if err != nil {
		log.Printf("read: %v", err)
		return
	}
	for _, n := range batch {
		fmt.Printf("  alert [%.1f] %s: %s\n", n.Rank, n.ID, string(n.Payload))
	}
	if len(batch) == 0 {
		fmt.Println("  (no alerts)")
	}
}
