// Quickstart wires the whole system together in one process: a broker, a
// last-hop proxy running the paper's unified prefetching algorithm, and a
// mobile device — all in virtual time, so the example runs instantly.
//
// A publisher posts ranked weather notifications; the device goes through
// a network outage; the user then checks messages and receives the
// highest-ranked unexpired ones, Max at a time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type proxyForwarder struct {
	dev *device.Device
}

func (f *proxyForwarder) Forward(n *msg.Notification) error { return f.dev.Receive(n) }

func run() error {
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewVirtual(start)

	// The last hop: a flaky wireless link between proxy and device.
	lastHop := link.New(clock, true)

	// The proxy runs the paper's unified prefetching algorithm: prefetch
	// limit auto-tuned to twice the average read size, expiration
	// threshold auto-tuned to the interval between reads.
	fwd := &proxyForwarder{}
	proxy := core.New(clock, fwd)
	phone := device.New(clock, lastHop, proxy, device.Config{RankThreshold: 1.0})
	fwd.dev = phone
	lastHop.OnChange(proxy.SetNetwork)

	topicCfg := core.UnifiedConfig("weather/tromsø", 3) // Max = 3 per read
	topicCfg.RankThreshold = 1.0                        // Threshold: skip rank < 1
	if err := proxy.AddTopic(topicCfg); err != nil {
		return err
	}

	// The routing substrate: a broker the proxy subscribes to on the
	// device's behalf.
	broker := pubsub.NewBroker("hub")
	if err := broker.Advertise("weather/tromsø", "met.no"); err != nil {
		return err
	}
	sub := msg.Subscription{
		Topic:      "weather/tromsø",
		Subscriber: "alice-proxy",
		Options:    msg.SubscriptionOptions{Max: 3, Threshold: 1.0},
	}
	if err := broker.Subscribe(sub, proxy.Subscriber()); err != nil {
		return err
	}

	publish := func(id msg.ID, rank float64, life time.Duration, text string) {
		n := &msg.Notification{
			ID: id, Topic: "weather/tromsø", Publisher: "met.no",
			Rank: rank, Published: clock.Now(), Payload: []byte(text),
		}
		if life > 0 {
			n.Expires = clock.Now().Add(life)
		}
		if err := broker.Publish(n); err != nil {
			log.Printf("publish %s: %v", id, err)
		}
	}

	// Morning: a few routine updates arrive while the phone is online.
	publish("w1", 1.5, 48*time.Hour, "light rain expected")
	publish("w2", 0.5, 48*time.Hour, "pollen count unchanged") // below Threshold: never forwarded
	clock.Advance(1 * time.Hour)

	// The phone drops off the network (tunnel, airplane mode...).
	lastHop.SetUp(false)
	fmt.Println("-- phone goes offline --")

	// While offline, more notifications arrive, including an urgent one.
	publish("w3", 4.8, 12*time.Hour, "STORM WARNING: gale force winds tonight")
	publish("w4", 2.0, 48*time.Hour, "temperature dropping to -5C")
	publish("w5", 1.2, 30*time.Minute, "brief drizzle passing") // expires before anyone cares
	clock.Advance(2 * time.Hour)

	// The user checks messages while still offline: only what was
	// prefetched before the outage is available.
	batch, err := phone.Read("weather/tromsø", 3)
	if err != nil {
		return err
	}
	fmt.Println("offline read:")
	printBatch(batch)

	// Back online: the proxy catches the device up automatically.
	lastHop.SetUp(true)
	fmt.Println("-- phone back online --")
	clock.Advance(1 * time.Minute)

	batch, err = phone.Read("weather/tromsø", 3)
	if err != nil {
		return err
	}
	fmt.Println("online read (highest-ranked first):")
	printBatch(batch)

	snap, _ := proxy.Snapshot("weather/tromsø")
	fmt.Printf("\nproxy state: prefetch-limit=%d, forwarded=%d, history=%d\n",
		snap.PrefetchLimit, snap.Forwarded, snap.History)
	ds := phone.Stats()
	fmt.Printf("device: received=%d read=%d battery-used=%.1f\n",
		ds.Received, ds.ReadCount, ds.BatteryUsed)
	return nil
}

func printBatch(batch []*msg.Notification) {
	if len(batch) == 0 {
		fmt.Println("  (nothing)")
		return
	}
	for _, n := range batch {
		fmt.Printf("  [%.1f] %s: %s\n", n.Rank, n.ID, string(n.Payload))
	}
}
