// Prefetching runs the paper's central experiment interactively: the same
// randomized half-year scenario (overflowing topic, flaky network) is
// replayed under every forwarding policy, and the waste/loss trade-off of
// §3.1 is printed as a table. Buffer-based prefetching with a sensible
// limit keeps both inefficiencies low — the paper's headline result.
//
// Run with: go run ./examples/prefetching
package main

import (
	"fmt"
	"log"

	"lasthop/internal/core"
	"lasthop/internal/dist"
	"lasthop/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sim.Config{
		Seed:         2026,
		Horizon:      180 * dist.Day,
		EventsPerDay: 32, // the topic overflows:
		ReadsPerDay:  2,  // the user consumes at most 2*8 = 16/day
		Max:          8,
	}
	cfg.Outage.Fraction = 0.7 // mostly on a bad link

	scenario, err := sim.NewScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %d notifications over 180 days, %d user reads, network down %.0f%% of the time\n\n",
		len(scenario.Arrivals), len(scenario.Reads), cfg.Outage.Fraction*100)

	policies := []struct {
		name string
		cfg  core.TopicConfig
	}{
		{"on-line (forward everything)", core.OnlineConfig(sim.TopicName)},
		{"pure on-demand", core.OnDemandConfig(sim.TopicName, cfg.Max)},
		{"buffer prefetch, limit 4", core.BufferConfig(sim.TopicName, cfg.Max, 4)},
		{"buffer prefetch, limit 32", core.BufferConfig(sim.TopicName, cfg.Max, 32)},
		{"buffer prefetch, limit 4096", core.BufferConfig(sim.TopicName, cfg.Max, 4096)},
		{"rate-based prefetch", core.RateConfig(sim.TopicName, cfg.Max)},
		{"unified (auto-tuned)", core.UnifiedConfig(sim.TopicName, cfg.Max)},
	}

	fmt.Printf("%-30s %10s %10s %12s %10s\n", "policy", "waste %", "loss %", "transferred", "read")
	for _, pol := range policies {
		cmp, err := sim.Compare(scenario, pol.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s %10.1f %10.1f %12d %10d\n",
			pol.name, cmp.WastePct, cmp.LossPct, cmp.Policy.Forwarded, cmp.Policy.ReadCount)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - on-line forwarding never loses a message but transfers the whole")
	fmt.Println("    firehose; with the user reading half of it, ~50% is waste.")
	fmt.Println("  - pure on-demand transfers nothing in vain, but every read during an")
	fmt.Println("    outage comes up empty: messages the baseline user saw are lost.")
	fmt.Println("  - buffer-based prefetching with a limit near the daily read volume")
	fmt.Println("    (16-64) keeps BOTH inefficiencies at a few percent (paper §3.2).")
	return nil
}
