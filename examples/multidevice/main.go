// Multidevice demonstrates the paper's §4 future-work item: cooperation
// among one user's devices. A phone with terrible connectivity and a
// well-connected laptop subscribe to the same short-lived alerts; over an
// ad-hoc network the phone borrows from the laptop's cache, so the user
// keeps reading even while the phone's own last hop is down — and copies
// the user already read are released from the laptop instead of rotting
// into waste.
//
// Run with: go run ./examples/multidevice
package main

import (
	"fmt"
	"log"
	"time"

	"lasthop"
	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
)

const topic = "transit/alerts"

type fwd struct {
	dev *device.Device
}

func (f *fwd) Forward(n *msg.Notification) error { return f.dev.Receive(n) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildMember(clock *simtime.Virtual, broker *pubsub.Broker, name string) (lasthop.DeviceGroupMember, error) {
	lnk := link.New(clock, true)
	f := &fwd{}
	proxy := core.New(clock, f)
	dev := device.New(clock, lnk, proxy, device.Config{})
	f.dev = dev
	lnk.OnChange(proxy.SetNetwork)
	if err := proxy.AddTopic(core.BufferConfig(topic, 4, 16)); err != nil {
		return lasthop.DeviceGroupMember{}, err
	}
	sub := msg.Subscription{Topic: topic, Subscriber: name, Options: msg.SubscriptionOptions{Max: 4}}
	if err := broker.Subscribe(sub, proxy.Subscriber()); err != nil {
		return lasthop.DeviceGroupMember{}, err
	}
	return lasthop.DeviceGroupMember{Name: name, Device: dev, Link: lnk}, nil
}

func run() error {
	clock := simtime.NewVirtual(time.Date(2026, 7, 5, 7, 0, 0, 0, time.UTC))
	broker := pubsub.NewBroker("hub")
	if err := broker.Advertise(topic, "transit"); err != nil {
		return err
	}

	phone, err := buildMember(clock, broker, "phone")
	if err != nil {
		return err
	}
	laptop, err := buildMember(clock, broker, "laptop")
	if err != nil {
		return err
	}
	group, err := lasthop.NewDeviceGroup(phone, laptop)
	if err != nil {
		return err
	}

	publish := func(id msg.ID, rank float64, text string) {
		n := &msg.Notification{
			ID: id, Topic: topic, Publisher: "transit",
			Rank: rank, Published: clock.Now(),
			Expires: clock.Now().Add(4 * time.Hour),
			Payload: []byte(text),
		}
		if err := broker.Publish(n); err != nil {
			log.Printf("publish: %v", err)
		}
	}

	// The phone spends the morning in the subway: its link is down, but
	// the laptop at the office keeps receiving.
	phone.Link.SetUp(false)
	fmt.Println("phone offline (subway); laptop online at the office")
	publish("a1", 4.5, "line 3 suspended between downtown stations")
	publish("a2", 2.0, "minor delays on the airport express")
	clock.Advance(30 * time.Minute)

	// The user checks the phone: without cooperation this read would be
	// empty; with the ad-hoc network the laptop's cache serves it.
	batch, err := group.Read("phone", topic, 4)
	if err != nil {
		return err
	}
	fmt.Println("\nphone read (borrowed from the laptop's cache):")
	for _, n := range batch {
		fmt.Printf("  [%.1f] %s: %s\n", n.Rank, n.ID, string(n.Payload))
	}

	// The laptop's copies were released by the read gossip: no waste.
	fmt.Printf("\nlaptop queue after gossip: %d unread copies (released instead of rotting)\n",
		laptop.Device.QueueLen(topic))

	stats := group.Stats()
	fmt.Printf("cooperation stats: borrowed=%d released=%d reads=%d\n",
		stats.Borrowed, stats.Released, stats.Reads)

	// Later the phone is back online and reads directly.
	phone.Link.SetUp(true)
	publish("a3", 3.5, "line 3 service restored")
	clock.Advance(10 * time.Minute)
	batch, err = group.Read("phone", topic, 4)
	if err != nil {
		return err
	}
	fmt.Println("\nphone read (own link again):")
	for _, n := range batch {
		fmt.Printf("  [%.1f] %s: %s\n", n.Rank, n.ID, string(n.Payload))
	}
	return nil
}
