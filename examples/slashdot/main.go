// Slashdot reproduces the paper's §2.2 example: subscribe to a news topic
// with Threshold = 4.5 (out of 5) and Max = 30, leave for a month-long
// vacation, and on return read "the most important bits from the past
// month" in one sitting — provided publishers attached ranks and generous
// expirations.
//
// Run with: go run ./examples/slashdot
package main

import (
	"fmt"
	"log"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/dist"
	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
)

const topic = "slashdot/frontpage"

type proxyForwarder struct {
	dev *device.Device
}

func (f *proxyForwarder) Forward(n *msg.Notification) error { return f.dev.Receive(n) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewVirtual(start)
	lastHop := link.New(clock, true)

	fwd := &proxyForwarder{}
	proxy := core.New(clock, fwd)
	phone := device.New(clock, lastHop, proxy, device.Config{RankThreshold: 4.5})
	fwd.dev = phone
	lastHop.OnChange(proxy.SetNetwork)

	// The subscription from the paper: at most 30 highest-ranked stories
	// at a time, nothing below rank 4.5.
	cfg := core.UnifiedConfig(topic, 30)
	cfg.RankThreshold = 4.5
	if err := proxy.AddTopic(cfg); err != nil {
		return err
	}

	broker := pubsub.NewBroker("hub")
	if err := broker.Advertise(topic, "slashdot"); err != nil {
		return err
	}
	sub := msg.Subscription{
		Topic:      topic,
		Subscriber: "bob-proxy",
		Options:    msg.SubscriptionOptions{Max: 30, Threshold: 4.5},
	}
	if err := broker.Subscribe(sub, proxy.Subscriber()); err != nil {
		return err
	}

	// Bob's phone stays home in a drawer: the last hop is down for the
	// whole vacation.
	lastHop.SetUp(false)
	fmt.Println("Bob leaves for a month; the phone is offline.")

	// A month of Slashdot: ~40 stories/day with ranks spread over [0, 5]
	// and 90-day expirations (stories do not expire too quickly).
	rng := dist.New(2026)
	published := 0
	aboveThreshold := 0
	for day := 0; day < 30; day++ {
		for i := 0; i < 40; i++ {
			rank := rng.Uniform(0, 5)
			id := msg.ID(fmt.Sprintf("story-%02d-%02d", day, i))
			n := &msg.Notification{
				ID: id, Topic: topic, Publisher: "slashdot",
				Rank: rank, Published: clock.Now(),
				Expires: clock.Now().Add(90 * 24 * time.Hour),
				Payload: []byte(fmt.Sprintf("story from day %d", day)),
			}
			if err := broker.Publish(n); err != nil {
				return err
			}
			published++
			if rank >= 4.5 {
				aboveThreshold++
			}
			clock.Advance(time.Duration(rng.Exp(float64(36 * time.Minute))))
		}
	}
	fmt.Printf("While away: %d stories published, %d of them ranked >= 4.5.\n",
		published, aboveThreshold)

	snap, _ := proxy.Snapshot(topic)
	fmt.Printf("The proxy collected them: %d acceptable stories queued, 0 transferred.\n\n",
		snap.Prefetch+snap.Holding+snap.Outgoing)

	// Bob returns, the phone reconnects, and he checks messages once.
	lastHop.SetUp(true)
	clock.Advance(time.Minute)
	batch, err := phone.Read(topic, 30)
	if err != nil {
		return err
	}
	fmt.Printf("Back from vacation, one read returns the %d most important stories:\n", len(batch))
	for i, n := range batch {
		if i < 5 || i >= len(batch)-2 {
			fmt.Printf("  %2d. [%.2f] %s\n", i+1, n.Rank, n.ID)
		} else if i == 5 {
			fmt.Println("      ...")
		}
	}
	ds := phone.Stats()
	fmt.Printf("\nTransfers over the last hop: %d (instead of %d) — volume limiting saved %.0f%%.\n",
		ds.Received, published, 100*(1-float64(ds.Received)/float64(published)))
	return nil
}
