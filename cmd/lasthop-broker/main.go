// Command lasthop-broker runs a standalone topic-based pub/sub broker over
// TCP. Publishers, subscribers, and last-hop proxies connect with the wire
// protocol (see internal/wire).
//
// Example:
//
//	lasthop-broker -listen :7470
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"lasthop/internal/pubsub"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":7470", "address to listen on")
		name   = flag.String("name", "broker", "broker node name")
		peer   = flag.String("peer", "", "federate with the broker at this address (keep the overlay acyclic)")
	)
	flag.Parse()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	broker := pubsub.NewBroker(*name)
	if *peer != "" {
		fed, err := wire.FederateBroker(broker, *peer, *name, log.Printf)
		if err != nil {
			return err
		}
		defer fed.Close()
		log.Printf("broker %q federated with %s", *name, *peer)
	}
	log.Printf("broker %q listening on %s", *name, lis.Addr())
	srv := wire.NewBrokerServer(broker, log.Printf)
	return srv.Serve(lis)
}
