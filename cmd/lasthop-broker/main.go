// Command lasthop-broker runs a standalone topic-based pub/sub broker over
// TCP. Publishers, subscribers, and last-hop proxies connect with the wire
// protocol (see internal/wire).
//
// Example:
//
//	lasthop-broker -listen :7470 -obs-addr :9470
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/flight"
	"lasthop/internal/obs"
	"lasthop/internal/pubsub"
	"lasthop/internal/retry"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":7470", "address to listen on")
		name   = flag.String("name", "broker", "broker node name")
		peer   = flag.String("peer", "", "federate with the broker at this address (keep the overlay acyclic)")

		reconnect   = flag.Bool("reconnect", true, "re-establish the peer link with backoff when it dies")
		backoffInit = flag.Duration("backoff-initial", 100*time.Millisecond, "initial peer reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "maximum peer reconnect backoff")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "peer heartbeat interval (0 = disabled)")
		readTO      = flag.Duration("read-timeout", 0, "max silence tolerated on a client connection (0 = unlimited)")
		writeTO     = flag.Duration("write-timeout", 10*time.Second, "max time for one client write (0 = unlimited)")

		ringFrames = flag.Int("flush-ring-frames", 0, "max encoded frames buffered per connection before an inline flush (0 = default 64)")
		ringBytes  = flag.Int("flush-ring-bytes", 0, "max encoded bytes buffered per connection before an inline flush (0 = default 256KiB)")

		flightRing  = flag.Int("flight-ring", flight.DefaultRingEvents, "flight-recorder events retained per subsystem (0 = disable recording)")
		watchdogIvl = flag.Duration("watchdog", 2*time.Second, "stall-watchdog probe interval (0 = disabled)")
		bundleDir   = flag.String("bundle-dir", "lasthop-bundles", "directory for post-mortem dump bundles (watchdog trips, SIGQUIT, /debug/flight/dump)")

		obsAddr     = flag.String("obs-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/traces, and /debug/flight/dump on this address (empty = disabled)")
		traceSample = flag.Float64("trace-sample", 0, "head-sample this fraction of accepted publishes into end-to-end traces (0 = anomalies only)")
		traceRing   = flag.Int("trace-ring", 0, "completed traces retained for /debug/traces (0 = default)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	logf := obs.Logf(logger, "broker")

	wire.SetRingLimits(*ringFrames, *ringBytes)
	flight.Enable(*flightRing)
	broker := pubsub.NewBroker(*name)
	reg := obs.NewRegistry()
	wm := wire.NewMetrics(reg)
	burst.RegisterMetrics(reg)
	broker.RegisterMetrics(reg)
	collector := trace.NewCollector(*name, trace.NewSampler(*traceSample), *traceRing)
	collector.RegisterMetrics(reg)
	broker.SetTracer(collector)

	// Post-mortem dumps: the broker has no workers or spools, so its
	// watchdog covers the shared datapath stalls — a wedged egress
	// flusher and pool drift.
	bundleOpts := func(reason string) flight.BundleOptions {
		return flight.BundleOptions{
			Dir:      *bundleDir,
			Node:     *name,
			Reason:   reason,
			Recorder: flight.Active(),
			Metrics:  reg,
			Traces:   collector,
		}
	}
	stopSig := flight.DumpOnSignal(bundleOpts, logf)
	defer stopSig()
	watchdog := flight.NewWatchdog(*watchdogIvl)
	watchdog.OnTrip(func(trips []flight.Trip) {
		o := bundleOpts("watchdog")
		o.Trips = trips
		path, err := flight.WriteBundle(o)
		if err != nil {
			logf("watchdog tripped, bundle failed: %v", err)
			return
		}
		for _, tr := range trips {
			logf("watchdog tripped: %s (bundle: %s)", tr, path)
		}
	})
	watchdog.Register(wire.FlusherStallProbe(5*time.Second, 1))
	watchdog.Register(burst.DriftProbes(10, 100_000)...)
	if *watchdogIvl > 0 {
		watchdog.Start()
	}
	defer watchdog.Close()
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg,
			obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()},
			obs.Route{Pattern: "/debug/flight/dump", Handler: flight.DumpHandler(bundleOpts)})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		logger.Info("observability endpoint up", "component", "broker", "addr", srv.Addr())
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *peer != "" {
		fed, err := wire.FederateBrokerOpts(broker, *peer, *name, wire.ClientOptions{
			AutoReconnect:     *reconnect,
			Backoff:           retry.Policy{Initial: *backoffInit, Max: *backoffMax},
			HeartbeatInterval: *heartbeat,
			WriteTimeout:      *writeTO,
			Logf:              logf,
			Metrics:           wm,
		})
		if err != nil {
			return err
		}
		defer fed.Close()
		logger.Info("federated", "component", "broker", "name", *name, "peer", *peer)
	}
	logger.Info("listening", "component", "broker", "name", *name, "addr", lis.Addr().String())
	srv := wire.NewBrokerServerOpts(broker, wire.ServerOptions{
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		Logf:         logf,
		Metrics:      wm,
	})
	return srv.Serve(lis)
}
