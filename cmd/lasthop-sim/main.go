// Command lasthop-sim runs one last-hop simulation comparison: an on-line
// forwarding baseline and a chosen policy over the identical randomized
// scenario, reporting the paper's waste and loss metrics (§3.1).
//
// Example:
//
//	lasthop-sim -policy buffer -prefetch-limit 32 -outage 0.9 -uf 2 -max 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/dist"
	"lasthop/internal/sim"
	"lasthop/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed        = flag.Uint64("seed", 1, "random seed")
		days        = flag.Int("days", 365, "simulated days")
		ef          = flag.Float64("ef", 32, "event frequency (notifications/day)")
		uf          = flag.Float64("uf", 2, "user frequency (reads/day)")
		maxRead     = flag.Int("max", 8, "Max: messages per read (0 = unlimited)")
		threshold   = flag.Float64("threshold", 0, "Threshold: minimum acceptable rank")
		outage      = flag.Float64("outage", 0, "cumulative network downtime fraction [0,1]")
		expMean     = flag.Duration("expiration", 0, "mean notification lifetime (0 = never expires)")
		policy      = flag.String("policy", "buffer", "policy: online, on-demand, buffer, rate, unified")
		limit       = flag.Int("prefetch-limit", 32, "prefetch limit for the buffer policy")
		expThr      = flag.Duration("expiration-threshold", 0, "holding-stage threshold (buffer policy)")
		delay       = flag.Duration("delay", 0, "delay stage duration")
		churn       = flag.Float64("churn", 0, "fraction of notifications later retracted")
		capacity    = flag.Int("device-capacity", 0, "device storage bound (0 = unlimited)")
		battery     = flag.Float64("device-battery", 0, "device energy budget (0 = unlimited)")
		replication = flag.Int("reps", 1, "replications to average over")
		traceFile   = flag.String("trace", "", "write the policy run's event timeline to this file")
		saveScen    = flag.String("save-scenario", "", "save the generated scenario to this file")
		loadScen    = flag.String("scenario", "", "replay a saved scenario instead of generating one")
	)
	flag.Parse()

	cfg := sim.Config{
		Seed:           *seed,
		Horizon:        time.Duration(*days) * dist.Day,
		EventsPerDay:   *ef,
		ReadsPerDay:    *uf,
		Max:            *maxRead,
		RankThreshold:  *threshold,
		DeviceCapacity: *capacity,
		DeviceBattery:  *battery,
	}
	cfg.Outage.Fraction = *outage
	if *expMean > 0 {
		cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: *expMean}
	}
	if *churn > 0 {
		cfg.Churn = sim.ChurnConfig{Portion: *churn, RetractTo: 0}
	}

	var pol core.TopicConfig
	switch *policy {
	case "online":
		pol = core.OnlineConfig(sim.TopicName)
	case "on-demand", "ondemand":
		pol = core.OnDemandConfig(sim.TopicName, *maxRead)
	case "buffer":
		pol = core.BufferConfig(sim.TopicName, *maxRead, *limit)
	case "rate":
		pol = core.RateConfig(sim.TopicName, *maxRead)
	case "unified":
		pol = core.UnifiedConfig(sim.TopicName, *maxRead)
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	pol.ExpirationThreshold = *expThr
	pol.Delay = *delay

	if *loadScen != "" {
		sc, err := sim.LoadScenarioFile(*loadScen)
		if err != nil {
			return err
		}
		cfg = sc.Cfg
		cmp, err := sim.Compare(sc, pol)
		if err != nil {
			return err
		}
		printComparison(cfg, *policy, cmp)
		fmt.Printf("\nwaste: %.2f%%   loss: %.2f%%   (replayed %s)\n", cmp.WastePct, cmp.LossPct, *loadScen)
		return nil
	}
	if *saveScen != "" {
		sc, err := sim.NewScenario(cfg)
		if err != nil {
			return err
		}
		if err := sc.SaveFile(*saveScen); err != nil {
			return err
		}
		fmt.Printf("scenario saved to %s\n", *saveScen)
	}

	wasteStats, lossStats, err := sim.CompareStats(cfg, pol, *replication)
	if err != nil {
		return err
	}
	_, _, first, err := sim.CompareAveraged(cfg, pol, 1)
	if err != nil {
		return err
	}

	if *traceFile != "" {
		// Re-run the first scenario's policy run with tracing enabled.
		sc, err := sim.NewScenario(cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw := trace.NewWriter(f)
		if _, err := sim.RunTraced(sc, pol, tw); err != nil {
			return err
		}
		if err := tw.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("event timeline written to %s\n\n", *traceFile)
	}
	printComparison(cfg, *policy, first)
	if *replication > 1 {
		fmt.Printf("\nwaste: %.2f%% ± %.2f   loss: %.2f%% ± %.2f   (over %d replications)\n",
			wasteStats.Mean(), wasteStats.StdDev(), lossStats.Mean(), lossStats.StdDev(), *replication)
	} else {
		fmt.Printf("\nwaste: %.2f%%   loss: %.2f%%\n", wasteStats.Mean(), lossStats.Mean())
	}
	return nil
}

// printComparison renders the side-by-side run table.
func printComparison(cfg sim.Config, policyName string, cmp sim.Comparison) {
	b, p := cmp.Baseline, cmp.Policy
	fmt.Printf("scenario: %v horizon, ef=%g/day, uf=%g/day, Max=%d, outage=%.0f%%, %d arrivals\n",
		cfg.Horizon, cfg.EventsPerDay, cfg.ReadsPerDay, cfg.Max, cfg.Outage.Fraction*100, b.Arrivals)
	fmt.Printf("policy:   %s\n\n", policyName)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", policyName)
	fmt.Printf("%-22s %12d %12d\n", "messages forwarded", b.Forwarded, p.Forwarded)
	fmt.Printf("%-22s %12d %12d\n", "messages read", b.ReadCount, p.ReadCount)
	fmt.Printf("%-22s %12d %12d\n", "expired unread", b.Device.ExpiredUnread, p.Device.ExpiredUnread)
	fmt.Printf("%-22s %12d %12d\n", "link transfers down", b.Link.MessagesDown, p.Link.MessagesDown)
	fmt.Printf("%-22s %12.2f %12.2f\n", "battery used", b.Device.BatteryUsed, p.Device.BatteryUsed)
}
