// Command lasthop-loadgen measures end-to-end notification throughput
// through a real broker → proxy → device topology: P publisher
// connections push a configurable volume through an in-process broker
// server, last-hop proxies forward across TCP — one per device, or a
// single multi-tenant host carrying every session — and the run reports
// publish and delivery rates as JSON.
//
// Examples:
//
//	lasthop-loadgen -publishers 8 -devices 16 -n 20000
//	lasthop-loadgen -devices 4 -on-demand -payload 512 -out run.json
//	lasthop-loadgen -multi-tenant -devices 1000 -topics 100 -n 50000
//	lasthop-loadgen -recovery -devices 10000 -topics 500 -n 100000 -spool-dir /tmp/spool
//
// With -recovery the run becomes the kill/restart chaos drill: every
// session subscribes and disconnects (at most -concurrent connected at
// once), half the load is published into hibernated sessions, the host
// is killed abruptly and restarted on the same spool, the rest is
// published, and the devices reconnect in waves to read everything back.
// The report's "recovered" and "lost" fields gate zero-loss recovery.
//
// With -scenario the run executes one entry of the regression scenario
// atlas (or all of them) instead of a throughput sweep: a phase-scripted
// workload with faultnet-injected pathologies, traced at 100% and judged
// against the scenario's outcome budget. The process exits non-zero when
// any verdict fails, so scripts/check_scenarios.sh can gate CI on it.
//
//	lasthop-loadgen -list-scenarios
//	lasthop-loadgen -scenario flash-crowd
//	lasthop-loadgen -scenario all -scenario-scale 4 -out verdicts.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lasthop/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		publishers = flag.Int("publishers", 4, "concurrent publisher connections")
		devices    = flag.Int("devices", 4, "device connections (one proxy each)")
		topics     = flag.Int("topics", 0, "distinct topics (0 = one per device)")
		count      = flag.Int("n", 10000, "total notifications to publish")
		pubBatch   = flag.Int("publish-batch", 0, "notifications each publisher pipelines per batched round trip (0 = default 16, 1 = unbatched)")
		pubWindow  = flag.Int("publish-window", 0, "batched round trips each publisher keeps in flight concurrently (0 = default 4, 1 = ack-serialized)")
		histLimit  = flag.Int("history-limit", 0, "per-subscription retained history bound; delivered notifications stay pooled until evicted (0 = core default 131072, negative = unbounded)")
		payload    = flag.Int("payload", 128, "payload bytes per notification")
		onDemand   = flag.Bool("on-demand", false, "consume with READ requests instead of on-line pushes")
		multi      = flag.Bool("multi-tenant", false, "run every device against one shared host instead of one proxy per device")
		hostWk     = flag.Int("host-workers", 0, "host worker count in multi-tenant mode (0 = GOMAXPROCS)")
		recovery   = flag.Bool("recovery", false, "run the kill/restart chaos drill instead of a plain throughput run (implies -multi-tenant -on-demand)")
		spoolDir   = flag.String("spool-dir", "", "hibernation spool directory for the multi-tenant host (empty = hibernation off; -recovery uses a temp dir)")
		hibAfter   = flag.Duration("hibernate-after", 0, "spool disconnected sessions after this long (0 = default)")
		commitEv   = flag.Duration("spool-commit-every", 0, "spool group-commit interval (0 = default)")
		spoolFsync = flag.String("spool-fsync", "", "spool fsync policy: always, commit, or never (empty = commit)")
		concurrent = flag.Int("concurrent", 0, "max simultaneously connected devices in the -recovery drill (0 = 5% of -devices)")
		timeout    = flag.Duration("timeout", time.Minute, "abort the run after this long")
		out        = flag.String("out", "", "write the JSON report here (default stdout)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /healthz, /debug/pprof, and /debug/traces for the whole topology (empty = disabled)")
		linger     = flag.Duration("linger", 0, "keep the topology and obs endpoint alive this long after the run")

		traceSample = flag.Float64("trace-sample", 0, "head-sample this fraction of notifications into end-to-end traces (0 = disabled)")
		traceOut    = flag.String("trace-out", "", "write the completed traces as JSONL here (for lasthop-trace; requires -trace-sample > 0)")

		scenario  = flag.String("scenario", "", "run this atlas scenario instead of a throughput sweep (\"all\" runs the whole atlas; see -list-scenarios)")
		scScale   = flag.Float64("scenario-scale", 1, "multiply the scenario's device population and publish volumes")
		listScens = flag.Bool("list-scenarios", false, "list the scenario atlas and exit")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *listScens {
		for _, sc := range loadgen.Atlas() {
			fmt.Printf("%-16s %s\n%-16s   failure mode: %s\n", sc.Name, sc.Description, "", sc.FailureMode)
		}
		return nil
	}
	if *scenario != "" {
		return runScenarios(*scenario, *scScale, *timeout, *out, logf)
	}
	cfg := loadgen.Config{
		Publishers:       *publishers,
		Devices:          *devices,
		Topics:           *topics,
		Notifications:    *count,
		PublishBatch:     *pubBatch,
		PublishWindow:    *pubWindow,
		HistoryLimit:     *histLimit,
		PayloadBytes:     *payload,
		OnDemand:         *onDemand,
		MultiTenant:      *multi,
		HostWorkers:      *hostWk,
		SpoolDir:         *spoolDir,
		HibernateAfter:   *hibAfter,
		SpoolCommitEvery: *commitEv,
		SpoolFsync:       *spoolFsync,
		Concurrent:       *concurrent,
		ObsAddr:          *obsAddr,
		Linger:           *linger,
		Timeout:          *timeout,
		Logf:             logf,
		TraceSample:      *traceSample,
		BundleDir:        os.Getenv("LASTHOP_BUNDLE_DIR"),
	}
	var (
		rep *loadgen.Report
		err error
	)
	if *recovery {
		rep, err = loadgen.RunRecovery(cfg)
	} else {
		rep, err = loadgen.Run(cfg)
	}
	if err != nil {
		return err
	}
	if *traceOut != "" && rep.Collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := rep.Collector.WriteJSONL(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logf("loadgen: trace dump written to %s", *traceOut)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// runScenarios executes one atlas entry ("all" = every entry in order),
// writes the verdict-bearing reports as JSON, and fails the process when
// any verdict does.
func runScenarios(name string, scale float64, timeout time.Duration, out string, logf func(string, ...any)) error {
	var scenarios []loadgen.Scenario
	if name == "all" {
		scenarios = loadgen.Atlas()
	} else {
		sc, err := loadgen.FindScenario(name)
		if err != nil {
			return err
		}
		scenarios = []loadgen.Scenario{sc}
	}
	var reports []*loadgen.Report
	failed := 0
	for _, sc := range scenarios {
		rep, err := loadgen.RunScenario(sc, loadgen.ScenarioOptions{
			Scale:     scale,
			Timeout:   timeout,
			Logf:      logf,
			BundleDir: os.Getenv("LASTHOP_BUNDLE_DIR"),
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if !rep.Verdict.Pass {
			failed++
			for _, f := range rep.Verdict.Failures {
				fmt.Fprintf(os.Stderr, "lasthop-loadgen: scenario %s: %s\n", sc.Name, f)
			}
		}
		reports = append(reports, rep)
	}
	var doc any = reports
	if len(reports) == 1 {
		doc = reports[0]
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario verdicts failed", failed, len(scenarios))
	}
	return nil
}
