// Command lasthop-publish publishes notifications to a broker, either a
// single message from the command line or a synthetic ranked stream for
// demos.
//
// Examples:
//
//	lasthop-publish -broker localhost:7470 -topic demo -rank 4.5 -payload "storm warning"
//	lasthop-publish -broker localhost:7470 -topic demo -stream 2s -count 100
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-publish:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		broker  = flag.String("broker", "localhost:7470", "broker address")
		name    = flag.String("name", "publisher", "publisher name")
		topic   = flag.String("topic", "demo", "topic to publish on")
		rank    = flag.Float64("rank", 1, "notification rank")
		life    = flag.Duration("expires", 0, "lifetime (0 = never expires)")
		payload = flag.String("payload", "", "notification payload")
		stream  = flag.Duration("stream", 0, "publish a synthetic stream at this interval")
		count   = flag.Int("count", 0, "number of stream messages (0 = forever)")
	)
	flag.Parse()

	pub, err := wire.DialBroker(*broker, *name)
	if err != nil {
		return err
	}
	defer pub.Close()
	if err := pub.Advertise(*topic, ""); err != nil {
		return err
	}

	build := func(id msg.ID, r float64, body string) *msg.Notification {
		n := &msg.Notification{
			ID: id, Topic: *topic, Publisher: *name,
			Rank: r, Published: time.Now(), Payload: []byte(body),
		}
		if *life > 0 {
			n.Expires = n.Published.Add(*life)
		}
		return n
	}

	if *stream <= 0 {
		id := msg.ID(fmt.Sprintf("%s-%d", *name, time.Now().UnixNano()))
		if err := pub.Publish(build(id, *rank, *payload)); err != nil {
			return err
		}
		log.Printf("published %s rank=%g on %q", id, *rank, *topic)
		return nil
	}

	for i := 0; *count == 0 || i < *count; i++ {
		r := rand.Float64() * 5
		id := msg.ID(fmt.Sprintf("%s-%d", *name, time.Now().UnixNano()))
		body := fmt.Sprintf("synthetic message %d", i)
		if err := pub.Publish(build(id, r, body)); err != nil {
			return err
		}
		log.Printf("published %s rank=%.2f", id, r)
		time.Sleep(*stream)
	}
	return nil
}
