// Command lasthop-proxy runs the last-hop proxy as a network service: it
// subscribes upstream to a broker on behalf of one mobile device and
// accepts the device's connection downstream. While the device is
// disconnected the proxy spools notifications exactly as during a
// simulated network outage.
//
// With -multi-tenant it instead runs a proxy host serving any number of
// devices on one listener: sessions shard across -workers event-loop
// workers (each with its own timing wheel) and all upstream traffic
// shares one multiplexed broker connection. With -spool-dir the host
// hibernates disconnected sessions onto a checksummed write-ahead spool
// and recovers every spooled session on restart, even after SIGKILL.
//
// Examples:
//
//	lasthop-proxy -broker localhost:7470 -listen :7471 -name alice-proxy -obs-addr :9471
//	lasthop-proxy -multi-tenant -broker localhost:7470 -listen :7471 -name edge-host
//	lasthop-proxy -multi-tenant -spool-dir /var/lib/lasthop/spool -hibernate-after 30s -name edge-host
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/flight"
	"lasthop/internal/host"
	"lasthop/internal/metrics"
	"lasthop/internal/obs"
	"lasthop/internal/retry"
	"lasthop/internal/spool"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		broker       = flag.String("broker", "localhost:7470", "upstream broker address")
		listen       = flag.String("listen", ":7471", "device-facing listen address")
		name         = flag.String("name", "proxy", "proxy (subscriber) name at the broker")
		journalPath  = flag.String("journal", "", "journal file for durable proxy state (empty = volatile)")
		reconnect    = flag.Bool("reconnect", true, "reconnect to the broker with backoff when the link dies")
		backoffInit  = flag.Duration("backoff-initial", 100*time.Millisecond, "initial broker reconnect backoff")
		backoffMax   = flag.Duration("backoff-max", 15*time.Second, "maximum broker reconnect backoff")
		heartbeat    = flag.Duration("heartbeat", 5*time.Second, "broker heartbeat interval (0 = disabled)")
		devReadTO    = flag.Duration("device-read-timeout", 0, "max silence tolerated on the device connection (0 = unlimited)")
		devWriteTO   = flag.Duration("device-write-timeout", 10*time.Second, "max time for one write to the device (0 = unlimited)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "max time for one write to the broker (0 = unlimited)")
		multi        = flag.Bool("multi-tenant", false, "serve many device sessions as one proxy host instead of a single-device proxy")
		workers      = flag.Int("workers", 0, "multi-tenant event-loop workers (0 = GOMAXPROCS)")
		wheelTick    = flag.Duration("wheel-tick", 10*time.Millisecond, "multi-tenant timing-wheel resolution")
		spoolDir     = flag.String("spool-dir", "", "multi-tenant hibernation spool directory: disconnected sessions serialize here and survive kill/restart (empty = sessions stay in memory)")
		hibAfter     = flag.Duration("hibernate-after", time.Minute, "spool a disconnected session after this long")
		segBytes     = flag.Int64("spool-segment-bytes", 0, "roll spool segments at this size (0 = default)")
		commitEvery  = flag.Duration("spool-commit-every", 100*time.Millisecond, "spool group-commit interval")
		spoolFsync   = flag.String("spool-fsync", "commit", "spool fsync policy: always, commit, or never")
		compactSegs  = flag.Int("spool-compact-segments", 0, "compact a worker's spool once it exceeds this many segments (0 = default)")

		ringFrames = flag.Int("flush-ring-frames", 0, "max encoded frames buffered per connection before an inline flush (0 = default 64)")
		ringBytes  = flag.Int("flush-ring-bytes", 0, "max encoded bytes buffered per connection before an inline flush (0 = default 256KiB)")

		flightRing  = flag.Int("flight-ring", flight.DefaultRingEvents, "flight-recorder events retained per subsystem (0 = disable recording)")
		watchdogIvl = flag.Duration("watchdog", 2*time.Second, "stall-watchdog probe interval (0 = disabled)")
		bundleDir   = flag.String("bundle-dir", "lasthop-bundles", "directory for post-mortem dump bundles (watchdog trips, SIGQUIT, /debug/flight/dump)")

		obsAddr     = flag.String("obs-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/traces, and /debug/flight/dump on this address (empty = disabled)")
		traceSample = flag.Float64("trace-sample", 0, "head-sample this fraction of locally published traffic (the proxy mostly records events against contexts minted upstream; anomalies are always traced)")
		traceRing   = flag.Int("trace-ring", 0, "completed traces retained for /debug/traces (0 = default)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	logf := obs.Logf(logger, "proxy")

	wire.SetRingLimits(*ringFrames, *ringBytes)
	flight.Enable(*flightRing)
	reg := obs.NewRegistry()
	wm := wire.NewMetrics(reg)
	burst.RegisterMetrics(reg)
	metrics.Register(reg)
	collector := trace.NewCollector(*name, trace.NewSampler(*traceSample), *traceRing)
	collector.RegisterMetrics(reg)

	// The post-mortem bundle: flight rings, metrics, pprof, and the trace
	// ring, dumped by the watchdog, SIGQUIT, or /debug/flight/dump.
	bundleOpts := func(reason string) flight.BundleOptions {
		return flight.BundleOptions{
			Dir:      *bundleDir,
			Node:     *name,
			Reason:   reason,
			Recorder: flight.Active(),
			Metrics:  reg,
			Traces:   collector,
		}
	}
	stopSig := flight.DumpOnSignal(bundleOpts, logf)
	defer stopSig()
	watchdog := flight.NewWatchdog(*watchdogIvl)
	watchdog.OnTrip(func(trips []flight.Trip) {
		o := bundleOpts("watchdog")
		o.Trips = trips
		path, err := flight.WriteBundle(o)
		if err != nil {
			logf("watchdog tripped, bundle failed: %v", err)
			return
		}
		for _, tr := range trips {
			logf("watchdog tripped: %s (bundle: %s)", tr, path)
		}
	})
	watchdog.Register(wire.FlusherStallProbe(5*time.Second, 1))
	watchdog.Register(burst.DriftProbes(10, 100_000)...)
	if *watchdogIvl > 0 {
		watchdog.Start()
	}
	defer watchdog.Close()

	upstream := wire.ClientOptions{
		AutoReconnect:     *reconnect,
		Backoff:           retry.Policy{Initial: *backoffInit, Max: *backoffMax},
		HeartbeatInterval: *heartbeat,
		WriteTimeout:      *writeTimeout,
	}

	if *multi {
		if *journalPath != "" {
			return errors.New("-journal is not supported in -multi-tenant mode (use -spool-dir)")
		}
		fsync, err := spool.ParseFsyncPolicy(*spoolFsync)
		if err != nil {
			return err
		}
		h, err := host.New(host.Options{
			BrokerAddr:           *broker,
			Name:                 *name,
			Workers:              *workers,
			WheelTick:            *wheelTick,
			Upstream:             upstream,
			DeviceReadTimeout:    *devReadTO,
			DeviceWriteTimeout:   *devWriteTO,
			SpoolDir:             *spoolDir,
			HibernateAfter:       *hibAfter,
			SpoolSegmentBytes:    *segBytes,
			SpoolFsync:           fsync,
			SpoolCommitEvery:     *commitEvery,
			SpoolCompactSegments: *compactSegs,
			Logf:                 logf,
			Metrics:              wm,
			Trace:                collector,
		})
		if err != nil {
			return err
		}
		defer h.Close()
		h.RegisterMetrics(reg, *name)
		// Worker heartbeats and spool group-commit stalls; generous bounds
		// so only a genuine wedge (not load) trips. The watchdog closes
		// before the host does (defers unwind in reverse), so shutdown
		// cannot masquerade as a stall.
		watchdog.Register(h.Probes(5*time.Second, 10**commitEvery+5*time.Second)...)
		if *obsAddr != "" {
			osrv, err := obs.Serve(*obsAddr, reg,
				obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()},
				obs.Route{Pattern: "/debug/flight/dump", Handler: flight.DumpHandler(bundleOpts)})
			if err != nil {
				return err
			}
			defer func() { _ = osrv.Close() }()
			logger.Info("observability endpoint up", "component", "host", "addr", osrv.Addr())
		}
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		logger.Info("serving", "component", "host", "name", *name,
			"broker", *broker, "addr", lis.Addr().String(), "workers", h.Workers())
		return h.Serve(lis)
	}

	srv, err := wire.NewProxyServerOpts(wire.ProxyOptions{
		BrokerAddr:         *broker,
		Name:               *name,
		JournalPath:        *journalPath,
		Upstream:           upstream,
		DeviceReadTimeout:  *devReadTO,
		DeviceWriteTimeout: *devWriteTO,
		Logf:               logf,
		Metrics:            wm,
		Trace:              collector,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.RegisterMetrics(reg, *name)
	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, reg,
			obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()},
			obs.Route{Pattern: "/debug/flight/dump", Handler: flight.DumpHandler(bundleOpts)})
		if err != nil {
			return err
		}
		defer func() { _ = osrv.Close() }()
		logger.Info("observability endpoint up", "component", "proxy", "addr", osrv.Addr())
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Info("serving", "component", "proxy", "name", *name,
		"broker", *broker, "addr", lis.Addr().String())
	return srv.Serve(lis)
}
