// Command lasthop-proxy runs the last-hop proxy as a network service: it
// subscribes upstream to a broker on behalf of one mobile device and
// accepts the device's connection downstream. While the device is
// disconnected the proxy spools notifications exactly as during a
// simulated network outage.
//
// Example:
//
//	lasthop-proxy -broker localhost:7470 -listen :7471 -name alice-proxy
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		broker      = flag.String("broker", "localhost:7470", "upstream broker address")
		listen      = flag.String("listen", ":7471", "device-facing listen address")
		name        = flag.String("name", "proxy", "proxy (subscriber) name at the broker")
		journalPath = flag.String("journal", "", "journal file for durable proxy state (empty = volatile)")
	)
	flag.Parse()

	srv, err := wire.NewProxyServerOpts(wire.ProxyOptions{
		BrokerAddr:  *broker,
		Name:        *name,
		JournalPath: *journalPath,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("proxy %q connected to broker %s, listening for devices on %s", *name, *broker, lis.Addr())
	return srv.Serve(lis)
}
