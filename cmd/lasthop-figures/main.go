// Command lasthop-figures regenerates the paper's evaluation figures
// (Figures 1–6) and the repository's ablation experiments, printing each
// as a text table or CSV.
//
// Examples:
//
//	lasthop-figures -fig 1
//	lasthop-figures -fig all -days 90 -format csv -out results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lasthop/internal/dist"
	"lasthop/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig    = flag.String("fig", "all", "which figure: 1..6, ablations, extensions, or all")
		days   = flag.Int("days", 365, "simulated days per run")
		seed   = flag.Uint64("seed", 1, "random seed")
		reps   = flag.Int("reps", 1, "replications per point")
		format = flag.String("format", "text", "output format: text, csv, or json")
		outDir = flag.String("out", "", "write one file per figure into this directory instead of stdout")
		verify = flag.Bool("verify", false, "check the paper's headline claims instead of printing figures")
	)
	flag.Parse()

	opts := experiment.Options{
		Seed:         *seed,
		Horizon:      time.Duration(*days) * dist.Day,
		Replications: *reps,
	}

	if *verify {
		claims, err := experiment.VerifyClaims(opts)
		if err != nil {
			return err
		}
		if err := experiment.RenderClaims(os.Stdout, claims); err != nil {
			return err
		}
		for _, c := range claims {
			if !c.Pass {
				return fmt.Errorf("%s not reproduced", c.ID)
			}
		}
		return nil
	}

	figures, err := collect(*fig, opts)
	if err != nil {
		return err
	}
	for _, f := range figures {
		if err := emit(f, *format, *outDir); err != nil {
			return err
		}
	}
	return nil
}

// collect runs the requested experiments. Selector "all" runs everything.
func collect(selector string, opts experiment.Options) ([]experiment.Figure, error) {
	var out []experiment.Figure
	want := func(name string) bool {
		return selector == "all" || selector == name ||
			(selector == "ablations" && strings.HasPrefix(name, "ablation"))
	}
	if want("1") {
		f, err := experiment.Figure1(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if want("2") {
		f, err := experiment.Figure2(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if want("3") {
		loss, waste, err := experiment.Figure3(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, loss, waste)
	}
	if want("4") {
		f, err := experiment.Figure4(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if want("5") {
		f, err := experiment.Figure5(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if want("6") {
		waste, loss, err := experiment.Figure6(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, waste, loss)
	}
	if want("ablation-rate-vs-buffer") {
		loss, waste, err := experiment.AblationRateVsBuffer(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, loss, waste)
	}
	if want("ablation-delay") {
		f, err := experiment.AblationDelay(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if want("ablation-auto-limit") {
		f, err := experiment.AblationAutoLimit(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if selector == "all" || selector == "extensions" || selector == "extension-multi-device" {
		f, err := experiment.ExtensionMultiDevice(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown figure selector %q", selector)
	}
	return out, nil
}

func emit(f experiment.Figure, format, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		ext := ".txt"
		switch format {
		case "csv":
			ext = ".csv"
		case "json":
			ext = ".json"
		}
		file, err := os.Create(filepath.Join(outDir, f.ID+ext))
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	switch format {
	case "text":
		if err := f.RenderText(w); err != nil {
			return err
		}
		if outDir == "" {
			fmt.Fprintln(w)
		}
		return nil
	case "csv":
		return f.RenderCSV(w)
	case "json":
		return f.RenderJSON(w)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
