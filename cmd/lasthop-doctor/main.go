// Command lasthop-doctor reads post-mortem flight bundles — written by a
// daemon's stall watchdog, a SIGQUIT, or /debug/flight/dump — and turns
// them into a diagnosis. Bundles from several nodes can be loaded at once:
// their flight timelines merge on wall-clock time and watchdog trips are
// cross-referenced against the bundled trace ring, so the output names the
// stalled component, the window it went silent, and how many traces were
// lost or wasted while it was down.
//
// Examples:
//
//	lasthop-doctor lasthop-bundles/flight-edge-host-1712345678
//	lasthop-doctor -scan lasthop-bundles
//	lasthop-doctor -scan lasthop-bundles -timeline 40
package main

import (
	"flag"
	"fmt"
	"os"

	"lasthop/internal/flight"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-doctor:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scan     = flag.String("scan", "", "scan this directory tree for bundles instead of naming them as arguments")
		timeline = flag.Int("timeline", 0, "also print the last N merged flight events across all bundles")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: lasthop-doctor [flags] <bundle-dir> [<bundle-dir>...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dirs := flag.Args()
	if *scan != "" {
		found, err := flight.FindBundles(*scan)
		if err != nil {
			return err
		}
		dirs = append(dirs, found...)
	}
	if len(dirs) == 0 {
		flag.Usage()
		return fmt.Errorf("no bundles: pass bundle directories or -scan a parent")
	}

	var bundles []*flight.Bundle
	for _, dir := range dirs {
		b, err := flight.LoadBundle(dir)
		if err != nil {
			return fmt.Errorf("load %s: %w", dir, err)
		}
		bundles = append(bundles, b)
		fmt.Printf("loaded %s: node=%s reason=%s trips=%d events=%d traces=%d\n",
			dir, b.Manifest.Node, b.Manifest.Reason, len(b.Manifest.Trips),
			len(b.Events), len(b.Traces))
	}
	fmt.Println()

	flight.WriteDiagnosisTable(os.Stdout, flight.Diagnose(bundles))

	if *timeline > 0 {
		fmt.Println()
		flight.WriteTimeline(os.Stdout, bundles, *timeline)
	}
	return nil
}
