// Command lasthop-trace analyzes per-notification trace dumps (the JSONL
// written by `lasthop-loadgen -trace-out` or fetched from a daemon's
// /debug/traces?format=jsonl). It merges dumps from several nodes by trace
// ID, prints per-notification timelines, and tabulates where waste and
// loss came from: every terminal outcome with the queue decision — and the
// tuner values in effect — that caused it.
//
// Examples:
//
//	lasthop-trace traces.jsonl
//	lasthop-trace -timelines 3 broker.jsonl proxy.jsonl
//	lasthop-trace -outcome wasted traces.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"lasthop/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		timelines = flag.Int("timelines", 5, "print this many per-notification timelines (0 = none, -1 = all)")
		outcome   = flag.String("outcome", "", "restrict timelines to one outcome: read, wasted, lost, expired, or duplicate")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: lasthop-trace [-timelines N] [-outcome read|wasted|lost|expired|duplicate] dump.jsonl [more.jsonl ...]")
	}

	traces, err := loadDumps(flag.Args())
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no traces in %s", strings.Join(flag.Args(), ", "))
	}

	printSummary(traces)
	printAttribution(traces)
	printHopLatency(traces)

	if *timelines != 0 {
		selected := traces
		if *outcome != "" {
			selected = nil
			for _, t := range traces {
				if string(t.Outcome) == *outcome {
					selected = append(selected, t)
				}
			}
		}
		n := *timelines
		if n < 0 || n > len(selected) {
			n = len(selected)
		}
		for i := 0; i < n; i++ {
			printTimeline(selected[i])
		}
		if n < len(selected) {
			fmt.Printf("… %d more timelines (-timelines -1 prints all)\n", len(selected)-n)
		}
	}
	return nil
}

// loadDumps reads every file and merges traces that share a trace ID —
// dumps from different nodes each hold that node's view of the timeline.
func loadDumps(paths []string) ([]trace.NotificationTrace, error) {
	byID := make(map[string]*trace.NotificationTrace)
	var order []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var t trace.NotificationTrace
			if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			if have, ok := byID[t.TraceID]; ok {
				have.Events = append(have.Events, t.Events...)
				have.Sampled = have.Sampled || t.Sampled
				if have.Outcome == "" {
					have.Outcome, have.Cause = t.Outcome, t.Cause
				}
				if have.Origin == "" {
					have.Origin = t.Origin
				}
			} else {
				cp := t
				byID[t.TraceID] = &cp
				order = append(order, t.TraceID)
			}
		}
		if err := sc.Err(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		_ = f.Close()
	}
	out := make([]trace.NotificationTrace, 0, len(order))
	for _, id := range order {
		t := byID[id]
		sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At.Before(t.Events[j].At) })
		out = append(out, *t)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start().Before(out[j].Start()) })
	return out, nil
}

func printSummary(traces []trace.NotificationTrace) {
	events := 0
	sampled := 0
	counts := map[trace.Outcome]int{}
	for i := range traces {
		events += len(traces[i].Events)
		if traces[i].Sampled {
			sampled++
		}
		counts[traces[i].Outcome]++
	}
	fmt.Printf("%d traces (%d head-sampled), %d events\n\n", len(traces), sampled, events)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "OUTCOME\tCOUNT\tSHARE")
	for _, o := range []trace.Outcome{trace.OutcomeRead, trace.OutcomeWasted, trace.OutcomeLost, trace.OutcomeExpired, trace.OutcomeDuplicate} {
		if counts[o] == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", o, counts[o], 100*float64(counts[o])/float64(len(traces)))
	}
	if n := counts[""]; n > 0 {
		fmt.Fprintf(tw, "(incomplete)\t%d\t%.1f%%\n", n, 100*float64(n)/float64(len(traces)))
	}
	_ = tw.Flush()
	fmt.Println()
}

// printAttribution groups the non-read terminals by (outcome, cause): the
// waste/loss attribution table.
func printAttribution(traces []trace.NotificationTrace) {
	type key struct {
		outcome trace.Outcome
		cause   string
	}
	counts := map[key]int{}
	for i := range traces {
		t := &traces[i]
		if t.Outcome == "" || t.Outcome == trace.OutcomeRead {
			continue
		}
		counts[key{t.Outcome, t.Cause}]++
	}
	if len(counts) == 0 {
		fmt.Println("no waste or loss: every completed trace ended in a read")
		fmt.Println()
		return
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].outcome != keys[j].outcome {
			return keys[i].outcome < keys[j].outcome
		}
		return keys[i].cause < keys[j].cause
	})
	fmt.Println("waste/loss attribution:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COUNT\tOUTCOME\tATTRIBUTED TO")
	for _, k := range keys {
		cause := k.cause
		if cause == "" {
			cause = "(no cause recorded)"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\n", counts[k], k.outcome, cause)
	}
	_ = tw.Flush()
	fmt.Println()
}

func printHopLatency(traces []trace.NotificationTrace) {
	segs := map[string][]time.Duration{}
	segOrder := []string{"broker", "federation", "proxyQueue", "lastHop"}
	for i := range traces {
		b := traces[i].LatencyBreakdown()
		for name, d := range map[string]time.Duration{
			"broker":     b.Broker,
			"federation": b.Federation,
			"proxyQueue": b.ProxyQueue,
			"lastHop":    b.LastHop,
		} {
			if d >= 0 {
				segs[name] = append(segs[name], d)
			}
		}
	}
	if len(segs) == 0 {
		return
	}
	fmt.Println("per-hop latency (ms):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "HOP\tN\tP50\tP95\tP99")
	for _, name := range segOrder {
		ds := segs[name]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\n", name, len(ds),
			quantileMs(ds, 0.50), quantileMs(ds, 0.95), quantileMs(ds, 0.99))
	}
	_ = tw.Flush()
	fmt.Println()
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return float64(sorted[len(sorted)-1]) / float64(time.Millisecond)
	}
	frac := pos - float64(i)
	lo, hi := float64(sorted[i]), float64(sorted[i+1])
	return (lo + (hi-lo)*frac) / float64(time.Millisecond)
}

func printTimeline(t trace.NotificationTrace) {
	outcome := string(t.Outcome)
	if outcome == "" {
		outcome = "incomplete"
	}
	fmt.Printf("trace %s  topic=%s  outcome=%s\n", t.TraceID, t.Topic, outcome)
	if t.Cause != "" {
		fmt.Printf("  cause: %s\n", t.Cause)
	}
	start := t.Start()
	for _, e := range t.Events {
		var parts []string
		if e.Node != "" {
			parts = append(parts, "node="+e.Node)
		}
		if e.Queue != "" {
			parts = append(parts, "queue="+e.Queue)
		}
		if e.Limit != 0 {
			parts = append(parts, fmt.Sprintf("prefetch_limit=%d", e.Limit))
		}
		if e.ThresholdS != 0 {
			parts = append(parts, fmt.Sprintf("exp_threshold=%.3gs", e.ThresholdS))
		}
		if e.DelayS != 0 {
			parts = append(parts, fmt.Sprintf("delay=%.3gs", e.DelayS))
		}
		if e.Count != 0 {
			parts = append(parts, fmt.Sprintf("count=%d", e.Count))
		}
		if e.Cause != "" {
			parts = append(parts, "cause="+strconv(e.Cause))
		}
		fmt.Printf("  %+12s  %-18s %s\n", e.At.Sub(start).Round(time.Microsecond), e.Kind, strings.Join(parts, " "))
	}
	fmt.Println()
}

// strconv quotes a cause when it contains spaces, keeping timelines
// grep-friendly.
func strconv(s string) string {
	if strings.ContainsAny(s, " \t") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
