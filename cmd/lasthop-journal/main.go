// Command lasthop-journal inspects and maintains a durable proxy's
// journal: -dump lists the entries, -compact rewrites the journal to the
// entries that still determine proxy state (run it while the proxy is
// stopped).
//
// Examples:
//
//	lasthop-journal -dump proxy.journal
//	lasthop-journal -compact proxy.journal
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lasthop/internal/journal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-journal:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dump    = flag.String("dump", "", "journal file to list")
		compact = flag.String("compact", "", "journal file to compact in place")
	)
	flag.Parse()

	switch {
	case *dump != "":
		count := 0
		err := journal.ReadAll(*dump, func(e journal.Entry) error {
			count++
			fmt.Printf("%s  %-12s  %s\n", e.At.Format(time.RFC3339), e.Kind, describe(e))
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d entries\n", count)
		return nil
	case *compact != "":
		before := 0
		if err := journal.ReadAll(*compact, func(journal.Entry) error {
			before++
			return nil
		}); err != nil {
			return err
		}
		kept, err := journal.Compact(*compact, time.Now())
		if err != nil {
			return err
		}
		fmt.Printf("compacted %s: %d -> %d entries\n", *compact, before, kept)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("one of -dump or -compact is required")
	}
}

func describe(e journal.Entry) string {
	switch e.Kind {
	case journal.KindAddTopic:
		return fmt.Sprintf("topic=%s policy=%s", e.TopicConfig.Name, e.TopicConfig.Policy)
	case journal.KindRemoveTopic:
		return "topic=" + e.TopicName
	case journal.KindNotify:
		return fmt.Sprintf("id=%s rank=%.2f", e.Notification.ID, e.Notification.Rank)
	case journal.KindRankUpdate:
		return fmt.Sprintf("id=%s rank=%.2f", e.Update.ID, e.Update.NewRank)
	case journal.KindRead:
		return fmt.Sprintf("topic=%s n=%d queue=%d", e.Read.Topic, e.Read.N, e.Read.QueueSize)
	case journal.KindNetwork:
		return fmt.Sprintf("up=%v", *e.NetworkUp)
	default:
		return ""
	}
}
