// Command lasthop-journal inspects and maintains the last hop's durable
// state: -dump lists a proxy journal's entries, -compact rewrites the
// journal to the entries that still determine proxy state (run it while
// the proxy is stopped), and -spool inspects a multi-tenant host's
// hibernation spool — listing every spooled session with its queue
// depths, or, with -verify, checksum-verifying every record.
//
// Examples:
//
//	lasthop-journal -dump proxy.journal
//	lasthop-journal -compact proxy.journal
//	lasthop-journal -spool /var/lib/lasthop/spool
//	lasthop-journal -spool /var/lib/lasthop/spool -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/journal"
	"lasthop/internal/spool"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-journal:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dump     = flag.String("dump", "", "journal file to list")
		compact  = flag.String("compact", "", "journal file to compact in place")
		spoolDir = flag.String("spool", "", "host spool directory to inspect (the -spool-dir of lasthop-proxy, or one worker-N subdirectory)")
		verify   = flag.Bool("verify", false, "with -spool: checksum-verify every record instead of listing sessions")
	)
	flag.Parse()

	switch {
	case *spoolDir != "":
		if *verify {
			return verifySpool(*spoolDir)
		}
		return listSpool(*spoolDir)
	case *dump != "":
		count := 0
		err := journal.ReadAllOpts(*dump, warnf, func(e journal.Entry) error {
			count++
			fmt.Printf("%s  %-12s  %s\n", e.At.Format(time.RFC3339), e.Kind, describe(e))
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d entries\n", count)
		return nil
	case *compact != "":
		before := 0
		if err := journal.ReadAll(*compact, func(journal.Entry) error {
			before++
			return nil
		}); err != nil {
			return err
		}
		kept, err := journal.Compact(*compact, time.Now())
		if err != nil {
			return err
		}
		fmt.Printf("compacted %s: %d -> %d entries\n", *compact, before, kept)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("one of -dump, -compact, or -spool is required")
	}
}

func warnf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lasthop-journal: "+format+"\n", args...)
}

// workerDirs resolves the directories to scan: dir itself when it holds
// segments directly, otherwise its worker-* subdirectories.
func workerDirs(dir string) ([]string, error) {
	if segs, err := spool.ListSegments(dir); err == nil && len(segs) > 0 {
		return []string{dir}, nil
	}
	subs, err := filepath.Glob(filepath.Join(dir, "worker-*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(subs)
	if len(subs) == 0 {
		return nil, fmt.Errorf("no spool segments or worker-* directories under %s", dir)
	}
	return subs, nil
}

// sessionChain accumulates one session's spool chain during a scan: the
// latest snapshot wins (compaction may leave older duplicates), deltas
// after it count toward the replay backlog, and a newer tombstone ends
// the session.
type sessionChain struct {
	snap    spool.Record
	snapped bool
	deltas  int
	tombed  bool
	tombAt  time.Time
}

// listSpool prints every spooled session with its topics and Figure 7
// queue depths, decoded from the latest snapshot.
func listSpool(dir string) error {
	dirs, err := workerDirs(dir)
	if err != nil {
		return err
	}
	sessions := make(map[string]*sessionChain)
	for _, d := range dirs {
		err := spool.ScanDir(d, 0, warnf, func(_ spool.Loc, r spool.Record) error {
			c := sessions[r.Name]
			if c == nil {
				c = &sessionChain{}
				sessions[r.Name] = c
			}
			switch r.Kind {
			case spool.KindSnapshot:
				if !c.snapped || !r.At.Before(c.snap.At) {
					c.snap = r
					c.snapped = true
					c.deltas = 0
				}
			case spool.KindDelta:
				if c.snapped && !r.At.Before(c.snap.At) {
					c.deltas++
				}
			case spool.KindTombstone:
				c.tombed = true
				c.tombAt = r.At
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	names := make([]string, 0, len(sessions))
	for name := range sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	live := 0
	for _, name := range names {
		c := sessions[name]
		if !c.snapped || (c.tombed && c.tombAt.After(c.snap.At)) {
			continue
		}
		live++
		var snap core.ProxySnapshot
		if err := json.Unmarshal(c.snap.Payload, &snap); err != nil {
			fmt.Printf("%-24s  snapshot %s  UNDECODABLE: %v\n",
				name, c.snap.At.Format(time.RFC3339), err)
			continue
		}
		outgoing, prefetch, holding, delayed, history := 0, 0, 0, 0, 0
		topics := make([]string, 0, len(snap.Topics))
		for _, td := range snap.Topics {
			topics = append(topics, td.State.Topic)
			outgoing += len(td.State.Outgoing)
			prefetch += len(td.State.Prefetch)
			holding += len(td.State.Holding)
			delayed += len(td.State.Delayed)
			history += len(td.State.History)
		}
		fmt.Printf("%-24s  snapshot %s  topics=%d %v  deltas=%d  outgoing=%d prefetch=%d holding=%d delayed=%d history=%d\n",
			name, c.snap.At.Format(time.RFC3339), len(topics), topics, c.deltas,
			outgoing, prefetch, holding, delayed, history)
	}
	fmt.Printf("%d live sessions (%d names seen) across %d worker dirs\n", live, len(sessions), len(dirs))
	return nil
}

// verifySpool re-reads every record of every segment, which re-checks
// each record's CRC, and reports the per-segment tallies. Torn or
// corrupt regions are warned about by the scan itself; the command fails
// if any segment held no readable records despite being non-empty.
func verifySpool(dir string) error {
	dirs, err := workerDirs(dir)
	if err != nil {
		return err
	}
	totalRecords, totalSegments := 0, 0
	failed := false
	for _, d := range dirs {
		segs, err := spool.ListSegments(d)
		if err != nil {
			return err
		}
		for _, seg := range segs {
			records, bytes := 0, int64(0)
			kinds := make(map[spool.Kind]int)
			err := spool.ScanSegment(seg, 0, warnf, func(_ spool.Loc, r spool.Record) error {
				records++
				bytes += int64(len(r.Payload) + len(r.Meta))
				kinds[r.Kind]++
				return nil
			})
			if err != nil {
				return err
			}
			fi, statErr := os.Stat(seg)
			if statErr == nil && fi.Size() > 0 && records == 0 {
				failed = true
				warnf("%s: %d bytes but no readable records", seg, fi.Size())
			}
			fmt.Printf("%s  %d records (%d snapshots, %d deltas, %d tombstones)  %d payload bytes\n",
				seg, records, kinds[spool.KindSnapshot], kinds[spool.KindDelta], kinds[spool.KindTombstone], bytes)
			totalRecords += records
			totalSegments++
		}
	}
	fmt.Printf("%d records across %d segments verified\n", totalRecords, totalSegments)
	if failed {
		return fmt.Errorf("verification found unreadable segments")
	}
	return nil
}

func describe(e journal.Entry) string {
	switch e.Kind {
	case journal.KindAddTopic:
		return fmt.Sprintf("topic=%s policy=%s", e.TopicConfig.Name, e.TopicConfig.Policy)
	case journal.KindRemoveTopic:
		return "topic=" + e.TopicName
	case journal.KindNotify:
		return fmt.Sprintf("id=%s rank=%.2f", e.Notification.ID, e.Notification.Rank)
	case journal.KindRankUpdate:
		return fmt.Sprintf("id=%s rank=%.2f", e.Update.ID, e.Update.NewRank)
	case journal.KindRead:
		return fmt.Sprintf("topic=%s n=%d queue=%d", e.Read.Topic, e.Read.N, e.Read.QueueSize)
	case journal.KindNetwork:
		return fmt.Sprintf("up=%v", *e.NetworkUp)
	default:
		return ""
	}
}
