// Command lasthop-device emulates a mobile device: it connects to a proxy,
// subscribes to a topic with volume-limiting options, and periodically
// performs user reads, printing what the user would see.
//
// Example:
//
//	lasthop-device -proxy localhost:7471 -topic weather/tromsø -max 8 -threshold 2 -interval 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lasthop/internal/obs"
	"lasthop/internal/retry"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-device:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proxy     = flag.String("proxy", "localhost:7471", "proxy address")
		name      = flag.String("name", "device", "device name")
		topic     = flag.String("topic", "demo", "topic to subscribe to")
		policy    = flag.String("policy", "", "forwarding policy (empty = unified)")
		maxRead   = flag.Int("max", 8, "Max: messages per read (0 = unlimited)")
		threshold = flag.Float64("threshold", 0, "Threshold: minimum acceptable rank")
		limit     = flag.Int("prefetch-limit", 0, "fixed prefetch limit (0 = auto)")
		interval  = flag.Duration("interval", 10*time.Second, "how often the user checks messages")
		reads     = flag.Int("reads", 0, "stop after this many reads (0 = forever)")

		reconnect   = flag.Bool("reconnect", true, "reconnect to the proxy with backoff when the last hop dies")
		backoffInit = flag.Duration("backoff-initial", 100*time.Millisecond, "initial reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "maximum reconnect backoff")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "proxy heartbeat interval (0 = disabled)")
		writeTO     = flag.Duration("write-timeout", 10*time.Second, "max time for one write to the proxy (0 = unlimited)")

		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /healthz, /debug/pprof, and /debug/traces on this address (empty = disabled)")
		traceRing = flag.Int("trace-ring", 0, "completed traces retained for /debug/traces (0 = default; the device never mints contexts, it records receive/read events against contexts minted upstream)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	logf := obs.Logf(logger, "device")

	reg := obs.NewRegistry()
	wm := wire.NewMetrics(reg)
	collector := trace.NewCollector(*name, nil, *traceRing)
	collector.RegisterMetrics(reg)
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg,
			obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		logger.Info("observability endpoint up", "component", "device", "addr", srv.Addr())
	}

	dev, err := wire.DialProxyOpts(*proxy, *name, wire.ClientOptions{
		AutoReconnect:     *reconnect,
		Backoff:           retry.Policy{Initial: *backoffInit, Max: *backoffMax},
		HeartbeatInterval: *heartbeat,
		WriteTimeout:      *writeTO,
		Logf:              logf,
		Metrics:           wm,
		Trace:             collector,
	})
	if err != nil {
		return err
	}
	defer dev.Close()
	dev.RegisterMetrics(reg, *name)

	pol := wire.TopicPolicy{
		Policy:        *policy,
		Max:           *maxRead,
		Threshold:     *threshold,
		PrefetchLimit: *limit,
	}
	if err := dev.Subscribe(*topic, pol); err != nil {
		return err
	}
	logger.Info("subscribed", "component", "device", "name", *name,
		"topic", *topic, "max", *maxRead, "threshold", *threshold)

	for i := 0; *reads == 0 || i < *reads; i++ {
		time.Sleep(*interval)
		batch, err := dev.Read(*topic, *maxRead)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			logger.Info("read: nothing new", "component", "device", "queue", dev.QueueLen(*topic))
			continue
		}
		for _, n := range batch {
			logger.Info("read", "component", "device",
				"rank", n.Rank, "id", string(n.ID), "payload", string(n.Payload))
		}
	}
	return nil
}
