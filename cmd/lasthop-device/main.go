// Command lasthop-device emulates a mobile device: it connects to a proxy,
// subscribes to a topic with volume-limiting options, and periodically
// performs user reads, printing what the user would see.
//
// Example:
//
//	lasthop-device -proxy localhost:7471 -topic weather/tromsø -max 8 -threshold 2 -interval 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lasthop/internal/retry"
	"lasthop/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasthop-device:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proxy     = flag.String("proxy", "localhost:7471", "proxy address")
		name      = flag.String("name", "device", "device name")
		topic     = flag.String("topic", "demo", "topic to subscribe to")
		policy    = flag.String("policy", "", "forwarding policy (empty = unified)")
		maxRead   = flag.Int("max", 8, "Max: messages per read (0 = unlimited)")
		threshold = flag.Float64("threshold", 0, "Threshold: minimum acceptable rank")
		limit     = flag.Int("prefetch-limit", 0, "fixed prefetch limit (0 = auto)")
		interval  = flag.Duration("interval", 10*time.Second, "how often the user checks messages")
		reads     = flag.Int("reads", 0, "stop after this many reads (0 = forever)")

		reconnect   = flag.Bool("reconnect", true, "reconnect to the proxy with backoff when the last hop dies")
		backoffInit = flag.Duration("backoff-initial", 100*time.Millisecond, "initial reconnect backoff")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "maximum reconnect backoff")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "proxy heartbeat interval (0 = disabled)")
		writeTO     = flag.Duration("write-timeout", 10*time.Second, "max time for one write to the proxy (0 = unlimited)")
	)
	flag.Parse()

	dev, err := wire.DialProxyOpts(*proxy, *name, wire.ClientOptions{
		AutoReconnect:     *reconnect,
		Backoff:           retry.Policy{Initial: *backoffInit, Max: *backoffMax},
		HeartbeatInterval: *heartbeat,
		WriteTimeout:      *writeTO,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}
	defer dev.Close()

	pol := wire.TopicPolicy{
		Policy:        *policy,
		Max:           *maxRead,
		Threshold:     *threshold,
		PrefetchLimit: *limit,
	}
	if err := dev.Subscribe(*topic, pol); err != nil {
		return err
	}
	log.Printf("device %q subscribed to %q (max=%d threshold=%g)", *name, *topic, *maxRead, *threshold)

	for i := 0; *reads == 0 || i < *reads; i++ {
		time.Sleep(*interval)
		batch, err := dev.Read(*topic, *maxRead)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			log.Printf("read: nothing new (queue=%d)", dev.QueueLen(*topic))
			continue
		}
		for _, n := range batch {
			log.Printf("read: [%.1f] %s %s", n.Rank, n.ID, string(n.Payload))
		}
	}
	return nil
}
