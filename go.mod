module lasthop

go 1.22
