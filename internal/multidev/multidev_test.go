package multidev

import (
	"fmt"
	"testing"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// rig is a user with several devices, each with its own proxy and last
// hop, all subscribed to the same topic on one broker.
type rig struct {
	clock  *simtime.Virtual
	broker *pubsub.Broker
	group  *Group
	links  map[string]*link.Link
}

type fwd struct {
	dev *device.Device
}

func (f *fwd) Forward(n *msg.Notification) error { return f.dev.Receive(n) }

func newRig(t *testing.T, names ...string) *rig {
	t.Helper()
	clock := simtime.NewVirtual(t0)
	broker := pubsub.NewBroker("hub")
	if err := broker.Advertise("news", "pub"); err != nil {
		t.Fatal(err)
	}
	r := &rig{clock: clock, broker: broker, links: make(map[string]*link.Link)}
	var members []Member
	for _, name := range names {
		lnk := link.New(clock, true)
		f := &fwd{}
		proxy := core.New(clock, f)
		dev := device.New(clock, lnk, proxy, device.Config{})
		f.dev = dev
		lnk.OnChange(proxy.SetNetwork)
		if err := proxy.AddTopic(core.BufferConfig("news", 4, 10)); err != nil {
			t.Fatal(err)
		}
		sub := msg.Subscription{Topic: "news", Subscriber: name, Options: msg.SubscriptionOptions{Max: 4}}
		if err := broker.Subscribe(sub, proxy.Subscriber()); err != nil {
			t.Fatal(err)
		}
		members = append(members, Member{Name: name, Device: dev, Link: lnk})
		r.links[name] = lnk
	}
	group, err := NewGroup(members...)
	if err != nil {
		t.Fatal(err)
	}
	r.group = group
	return r
}

func (r *rig) publish(t *testing.T, id msg.ID, rank float64) {
	t.Helper()
	n := &msg.Notification{ID: id, Topic: "news", Publisher: "pub", Rank: rank, Published: r.clock.Now()}
	if err := r.broker.Publish(n); err != nil {
		t.Fatal(err)
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(); err == nil {
		t.Error("empty group accepted")
	}
	clock := simtime.NewVirtual(t0)
	lnk := link.New(clock, true)
	dev := device.New(clock, lnk, nil, device.Config{})
	m := Member{Name: "a", Device: dev, Link: lnk}
	if _, err := NewGroup(m, m); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewGroup(Member{Name: "", Device: dev, Link: lnk}); err == nil {
		t.Error("unnamed member accepted")
	}
	g, err := NewGroup(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Members(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
	if _, err := g.Read("ghost", "news", 1); err == nil {
		t.Error("read on unknown member accepted")
	}
}

func TestBorrowFromSiblingCacheDuringOutage(t *testing.T) {
	r := newRig(t, "phone", "laptop")
	// The phone's link dies; the laptop keeps receiving.
	r.links["phone"].SetUp(false)
	r.publish(t, "a", 5)
	r.publish(t, "b", 3)
	r.clock.Advance(time.Minute)

	// Without cooperation the phone read would come up empty...
	r.group.SetAdhoc(false)
	batch, err := r.group.Read("phone", "news", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 0 {
		t.Fatalf("phone read %v without ad-hoc network", batch)
	}
	// ...with the ad-hoc network, the laptop's cache serves the user.
	r.group.SetAdhoc(true)
	batch, err = r.group.Read("phone", "news", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].ID != "a" || batch[1].ID != "b" {
		t.Fatalf("phone read %v, want the laptop's cache", batch)
	}
	if r.group.Stats().Borrowed != 2 {
		t.Errorf("Borrowed = %d, want 2", r.group.Stats().Borrowed)
	}
}

func TestGossipReleasesSiblingCopies(t *testing.T) {
	r := newRig(t, "phone", "laptop")
	r.publish(t, "a", 5)
	r.clock.Advance(time.Minute)
	// Both devices prefetched a copy.
	if r.group.members[0].Device.QueueLen("news") != 1 ||
		r.group.members[1].Device.QueueLen("news") != 1 {
		t.Fatal("both devices should hold a copy")
	}
	// The user reads on the phone; the laptop's copy is released.
	if _, err := r.group.Read("phone", "news", 4); err != nil {
		t.Fatal(err)
	}
	if got := r.group.members[1].Device.QueueLen("news"); got != 0 {
		t.Errorf("laptop still holds %d copies after gossip", got)
	}
	if r.group.Stats().Released != 1 {
		t.Errorf("Released = %d, want 1", r.group.Stats().Released)
	}
	// The union read set has the message exactly once.
	union := r.group.ReadUnion("news")
	if union.Len() != 1 || !union.Contains("a") {
		t.Errorf("ReadUnion = %v", union)
	}
	// A late re-read on the laptop does not resurrect it.
	batch, err := r.group.Read("laptop", "news", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 0 {
		t.Errorf("laptop re-read returned %v", batch)
	}
}

func TestNoDuplicateConsumptionAcrossDevices(t *testing.T) {
	r := newRig(t, "phone", "laptop", "tablet")
	for i := 0; i < 6; i++ {
		r.publish(t, msg.ID(fmt.Sprintf("n%d", i)), float64(i))
	}
	r.clock.Advance(time.Minute)
	seen := make(msg.IDSet)
	for _, name := range []string{"phone", "laptop", "tablet", "phone"} {
		batch, err := r.group.Read(name, "news", 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batch {
			if !seen.Add(n.ID) {
				t.Errorf("message %s consumed twice", n.ID)
			}
		}
	}
	if seen.Len() != 6 {
		t.Errorf("consumed %d distinct messages, want 6", seen.Len())
	}
}

func TestCooperationReducesLoss(t *testing.T) {
	// Phone offline the whole time, laptop online: with cooperation the
	// user keeps reading on the phone regardless.
	r := newRig(t, "phone", "laptop")
	r.links["phone"].SetUp(false)
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			r.publish(t, msg.ID(fmt.Sprintf("r%d-n%d", round, i)), float64(i))
		}
		r.clock.Advance(time.Hour)
		batch, err := r.group.Read("phone", "news", 4)
		if err != nil {
			t.Fatal(err)
		}
		total += len(batch)
	}
	if total != 15 {
		t.Errorf("phone user read %d of 15 despite the laptop being online", total)
	}
}
