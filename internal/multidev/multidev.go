// Package multidev implements the paper's first future-work item (§4):
// cooperation among multiple devices belonging to one user. Each device
// keeps its own last-hop link and proxy, but over an ad-hoc network a
// reading device can borrow from its siblings' caches (reducing loss when
// its own link is down) and broadcast what the user has read (reducing
// waste from copies that would otherwise linger unread on siblings).
package multidev

import (
	"errors"
	"fmt"
	"sort"

	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/msg"
)

// Member is one device of the group with its last hop.
type Member struct {
	// Name labels the device ("phone", "laptop").
	Name string
	// Device is the device model.
	Device *device.Device
	// Link is the device's own last hop (independent outages).
	Link *link.Link
}

// Group couples the devices of one user over an ad-hoc network. The
// ad-hoc network is assumed local and cheap; it can be toggled to model
// the devices being apart.
type Group struct {
	members []Member
	adhoc   bool

	stats Stats
}

// Stats is the group's cooperation accounting.
type Stats struct {
	// Borrowed counts notifications served to the user from a sibling's
	// cache.
	Borrowed int
	// Released counts unread sibling copies dropped after a read was
	// gossiped.
	Released int
	// Reads counts group reads.
	Reads int
}

// NewGroup builds a group; the ad-hoc network starts available.
func NewGroup(members ...Member) (*Group, error) {
	if len(members) == 0 {
		return nil, errors.New("group needs at least one member")
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" || m.Device == nil || m.Link == nil {
			return nil, fmt.Errorf("invalid member %q", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
	return &Group{members: members, adhoc: true}, nil
}

// SetAdhoc toggles the ad-hoc network between the devices.
func (g *Group) SetAdhoc(up bool) { g.adhoc = up }

// Members returns the member names in order.
func (g *Group) Members() []string {
	out := make([]string, len(g.members))
	for i, m := range g.members {
		out[i] = m.Name
	}
	return out
}

// Stats returns a copy of the cooperation accounting.
func (g *Group) Stats() Stats { return g.stats }

// ReadUnion returns the set of notifications the user has read across all
// devices.
func (g *Group) ReadUnion(topic string) msg.IDSet {
	union := make(msg.IDSet)
	for _, m := range g.members {
		for id := range m.Device.ReadSet(topic) {
			union.Add(id)
		}
	}
	return union
}

// Read performs a user read on the named member. When the ad-hoc network
// is up, the reading device first borrows its siblings' best cached
// notifications, then reads normally (including its own last-hop READ
// protocol when that link is up), and finally gossips the consumed IDs so
// siblings release their copies.
func (g *Group) Read(memberName, topic string, n int) ([]*msg.Notification, error) {
	idx := -1
	for i, m := range g.members {
		if m.Name == memberName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("unknown member %q", memberName)
	}
	g.stats.Reads++
	reader := g.members[idx]

	var borrowed msg.IDSet
	if g.adhoc {
		borrowed = make(msg.IDSet)
		for i, peer := range g.members {
			if i == idx {
				continue
			}
			for _, cand := range peer.Device.Peek(topic, n) {
				if reader.Device.ImportPeer(cand) {
					borrowed.Add(cand.ID)
				}
			}
		}
	}

	batch, err := reader.Device.Read(topic, n)
	if err != nil {
		return nil, err
	}
	ids := make([]msg.ID, 0, len(batch))
	for _, b := range batch {
		ids = append(ids, b.ID)
		if borrowed.Contains(b.ID) {
			g.stats.Borrowed++
		}
	}
	if g.adhoc {
		for i, peer := range g.members {
			if i == idx {
				continue
			}
			released := 0
			if len(ids) > 0 {
				released = peer.Device.MarkRead(topic, ids)
				g.stats.Released += released
			}
			// Sync the sibling with its proxy: the Peek request reports
			// the true queue size (gossip releases and local expiries
			// both shrink it silently), so the proxy's view stays
			// accurate and its prefetching does not stall.
			if err := peer.Device.Refill(topic, released+1); err != nil {
				return nil, fmt.Errorf("refill %s: %w", peer.Name, err)
			}
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Before(batch[j]) })
	return batch, nil
}
