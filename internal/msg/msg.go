// Package msg defines the message model of the volume-limiting
// publish/subscribe system: notifications annotated with the publisher-side
// volume-limiting attributes Rank and Expiration, subscriptions annotated
// with the subscriber-side thresholds Max and Threshold, and the auxiliary
// records (rank updates, read requests) exchanged between brokers, proxies,
// and devices.
package msg

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ID uniquely identifies a notification. IDs are scoped to the publisher
// that minted them; the pubsub substrate guarantees that a publisher never
// reuses an ID for a different event.
type ID string

// NoID is the zero ID, never assigned to a real notification.
const NoID ID = ""

// DeliveryMode selects how notifications on a topic reach the user.
type DeliveryMode int

const (
	// OnLine topics are forwarded to the device as soon as the last-hop
	// connection allows, interrupting the user.
	OnLine DeliveryMode = iota + 1
	// OnDemand topics accumulate on the proxy (and, with prefetching, on
	// the device) until the user explicitly checks messages.
	OnDemand
)

// String returns the mode name used in configuration files and wire frames.
func (m DeliveryMode) String() string {
	switch m {
	case OnLine:
		return "on-line"
	case OnDemand:
		return "on-demand"
	default:
		return "mode(" + strconv.Itoa(int(m)) + ")"
	}
}

// ParseDeliveryMode parses the textual form produced by String.
func ParseDeliveryMode(s string) (DeliveryMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "on-line", "online":
		return OnLine, nil
	case "on-demand", "ondemand":
		return OnDemand, nil
	default:
		return 0, fmt.Errorf("unknown delivery mode %q", s)
	}
}

// Rank bounds used for validation. Ranks indicate a notification's
// importance relative to other notifications on its topic; the scale is
// topic-specific but must be finite and non-negative (the paper's example
// uses 0..5).
const (
	MinRank = 0.0
	MaxRank = 1000.0
)

// Notification is one event published on a topic, carrying the two
// publisher-side volume-limiting attributes described in §2.1 of the paper.
type Notification struct {
	// ID identifies the notification; rank updates refer to it.
	ID ID `json:"id"`
	// Topic names the topic the notification was published on.
	Topic string `json:"topic"`
	// Publisher identifies the publishing principal.
	Publisher string `json:"publisher,omitempty"`
	// Rank is the notification's importance relative to other
	// notifications on its topic. Higher is more important.
	Rank float64 `json:"rank"`
	// Published is the instant the notification entered the system.
	Published time.Time `json:"published"`
	// Expires is the instant after which the notification is no longer
	// relevant and should be discarded from queues. The zero time means
	// the notification never expires.
	Expires time.Time `json:"expires,omitempty"`
	// Payload is the opaque application content.
	Payload []byte `json:"payload,omitempty"`
	// Trace is the optional distributed-tracing context attached to
	// sampled notifications. It is deliberately excluded from the
	// notification's own JSON form (journals and legacy peers never see
	// it); the wire layer moves it between nodes as an explicit,
	// capability-gated frame field. The pointer may be shared between
	// fan-out clones — treat the pointed-to context as immutable and use
	// TraceContext.WithHop to extend it.
	Trace *TraceContext `json:"-"`

	// poolMark records the notification's free-pool provenance (see
	// internal/burst). Unexported so encoding/json never sees it; a
	// struct value-copy carries the mark with it, which is why every
	// copy site that creates an independently owned notification must
	// clear it back to PoolForeign.
	poolMark PoolMark

	// share, when non-nil, marks this notification as a copy-on-write
	// broadcast member: Payload (and Trace, unless a branch replaced it)
	// alias the group owner's allocations and must never be mutated or
	// retained past release. The burst pool's Put interprets the group;
	// everything that creates an independently owned copy (Clone,
	// CopyFrom) leaves the copy group-free.
	share *ShareGroup
}

// ShareGroup is the reference count behind one copy-on-write broadcast:
// a fan-out of envelope clones that alias the owner notification's payload
// bytes. The group holds the owner until the last member releases; the
// release driver (internal/burst) then recycles the owner itself. It lives
// in msg, next to the field it governs, so the pool layer can stay free of
// Notification internals.
type ShareGroup struct {
	refs  atomic.Int32
	owner *Notification
}

// NewShareGroup builds a group of size members around the owner. The
// caller transfers ownership of owner to the group: nothing may release
// owner directly once the group exists.
func NewShareGroup(owner *Notification, members int32) *ShareGroup {
	g := &ShareGroup{owner: owner}
	g.refs.Store(members)
	return g
}

// Owner returns the notification whose allocations the members alias.
func (g *ShareGroup) Owner() *Notification { return g.owner }

// Refs returns the members not yet released.
func (g *ShareGroup) Refs() int32 { return g.refs.Load() }

// Release drops one membership and reports whether this was the last —
// the caller then owns (and must release) the group's owner.
func (g *ShareGroup) Release() bool { return g.refs.Add(-1) == 0 }

// ShareGroup returns the copy-on-write group this notification belongs
// to, or nil for an independently owned notification.
func (n *Notification) ShareGroup() *ShareGroup { return n.share }

// ShareFrom turns n into an envelope member of group g: every field is
// copied from src, but Payload aliases src's bytes and Trace shares src's
// pointer instead of being deep-copied. n's own pool provenance is
// preserved; n's previous payload capacity is abandoned (a shared member
// must never return aliased bytes to a pool as its own).
func (n *Notification) ShareFrom(src *Notification, g *ShareGroup) {
	mark := n.poolMark
	*n = *src
	n.poolMark = mark
	n.share = g
}

// PoolMark is the tri-state provenance of a notification with respect to
// the burst free pools. The zero value, PoolForeign, marks an ordinary
// heap allocation that no pool will ever reclaim; returning a foreign
// notification to a pool is a counted no-op, never corruption.
type PoolMark uint8

const (
	// PoolForeign marks a plain heap allocation outside any pool.
	PoolForeign PoolMark = iota
	// PoolCheckedOut marks a pooled notification currently owned by
	// exactly one holder, who must Put it back exactly once.
	PoolCheckedOut
	// PoolFree marks a pooled notification at rest in its pool; using or
	// re-Putting one is a lifecycle bug that the pool counts.
	PoolFree
)

// PoolProvenance returns the notification's pool mark.
func (n *Notification) PoolProvenance() PoolMark { return n.poolMark }

// SetPoolProvenance stamps the notification's pool mark. Only the burst
// pools should call this; everything else treats the mark as read-only.
func (n *Notification) SetPoolProvenance(m PoolMark) { n.poolMark = m }

// TraceContext is the compact per-notification tracing context that
// travels with a sampled notification across the stack: a stable trace ID,
// the node that minted it, and one timestamped hop per node traversed.
// It lives in msg (rather than internal/trace) so the notification can
// carry it without an import cycle.
type TraceContext struct {
	// TraceID identifies the trace; by convention it is the notification
	// ID, which the broker guarantees unique at publish time.
	TraceID string `json:"id"`
	// Origin names the node that sampled the notification and minted the
	// context (normally the accepting broker).
	Origin string `json:"origin,omitempty"`
	// Hops records each node the notification traversed, in order.
	Hops []TraceHop `json:"hops,omitempty"`
}

// TraceHop is one node traversal: where and when (unix nanoseconds).
type TraceHop struct {
	Node string `json:"node"`
	At   int64  `json:"at"`
}

// WithHop returns a copy of the context with one hop appended. The
// receiver is never mutated: fan-out clones share the pointer, so each
// delivery branch must extend its own copy.
func (t *TraceContext) WithHop(node string, at time.Time) *TraceContext {
	if t == nil {
		return nil
	}
	c := *t
	c.Hops = make([]TraceHop, len(t.Hops), len(t.Hops)+1)
	copy(c.Hops, t.Hops)
	c.Hops = append(c.Hops, TraceHop{Node: node, At: at.UnixNano()})
	return &c
}

// HopAt returns the timestamp of the first hop recorded by the named
// node, or the zero time when the node never stamped the context.
func (t *TraceContext) HopAt(node string) time.Time {
	if t == nil {
		return time.Time{}
	}
	for _, h := range t.Hops {
		if h.Node == node {
			return time.Unix(0, h.At)
		}
	}
	return time.Time{}
}

// NeverExpires reports whether the notification has no expiration.
func (n *Notification) NeverExpires() bool { return n.Expires.IsZero() }

// Expired reports whether the notification is stale at the given instant.
func (n *Notification) Expired(now time.Time) bool {
	return !n.Expires.IsZero() && now.After(n.Expires)
}

// RemainingLife returns how long the notification stays relevant after now.
// It returns a negative duration for expired notifications. For
// notifications that never expire it returns maxDuration.
func (n *Notification) RemainingLife(now time.Time) time.Duration {
	if n.Expires.IsZero() {
		return maxDuration
	}
	return n.Expires.Sub(now)
}

const maxDuration = time.Duration(1<<63 - 1)

// Clone returns a deep copy of the notification. The copy is always
// pool-foreign and group-free: cloning a pooled or shared notification
// yields an ordinary heap object with its own lifetime.
func (n *Notification) Clone() *Notification {
	c := *n
	c.poolMark = PoolForeign
	c.share = nil
	if n.Payload != nil {
		c.Payload = make([]byte, len(n.Payload))
		copy(c.Payload, n.Payload)
	}
	return &c
}

// CopyFrom deep-copies src's content into n, reusing n's payload
// capacity and preserving n's own pool provenance. The trace context
// pointer is shared (the pointed-to context is immutable by contract);
// any share group on src stays behind — the copy owns its bytes.
func (n *Notification) CopyFrom(src *Notification) {
	mark := n.poolMark
	payload := append(n.Payload[:0], src.Payload...)
	*n = *src
	n.Payload = payload
	n.poolMark = mark
	n.share = nil
}

// Validate checks structural invariants that the pubsub substrate enforces
// at publish time.
func (n *Notification) Validate() error {
	switch {
	case n.ID == NoID:
		return errors.New("notification has no ID")
	case n.Topic == "":
		return errors.New("notification has no topic")
	case n.Rank < MinRank || n.Rank > MaxRank:
		return fmt.Errorf("rank %v outside [%v, %v]", n.Rank, float64(MinRank), float64(MaxRank))
	case !n.Expires.IsZero() && n.Expires.Before(n.Published):
		return fmt.Errorf("expiration %v precedes publication %v", n.Expires, n.Published)
	default:
		return nil
	}
}

// Before reports whether n should be considered "higher ranked" than other
// for the purposes of selecting the best notifications: primarily by rank
// (descending), breaking ties by publication time (older first, so that
// equally ranked news is read in order), and finally by ID for determinism.
func (n *Notification) Before(other *Notification) bool {
	if n.Rank != other.Rank {
		return n.Rank > other.Rank
	}
	if !n.Published.Equal(other.Published) {
		return n.Published.Before(other.Published)
	}
	return n.ID < other.ID
}

// RankUpdate revises the rank of a previously published notification
// (§3.4). A positive change boosts a useful notification; a negative change
// helps retract notifications after they reach mailboxes but before they
// are read.
type RankUpdate struct {
	Topic   string  `json:"topic"`
	ID      ID      `json:"id"`
	NewRank float64 `json:"newRank"`
}

// Validate checks structural invariants of a rank update.
func (u *RankUpdate) Validate() error {
	switch {
	case u.ID == NoID:
		return errors.New("rank update has no ID")
	case u.Topic == "":
		return errors.New("rank update has no topic")
	case u.NewRank < MinRank || u.NewRank > MaxRank:
		return fmt.Errorf("rank %v outside [%v, %v]", u.NewRank, float64(MinRank), float64(MaxRank))
	default:
		return nil
	}
}

// Unlimited is the Max value meaning "no quantitative limit".
const Unlimited = 0

// SubscriptionOptions carries the subscriber-side volume-limiting
// thresholds of §2.2 plus the delivery mode the device selected for the
// topic.
type SubscriptionOptions struct {
	// Max is the quantitative limit: deliver at most this many
	// highest-ranked notifications at a time. Unlimited (zero) disables
	// the limit.
	Max int `json:"max"`
	// Threshold is the qualitative limit: only notifications with a rank
	// at or above it are acceptable.
	Threshold float64 `json:"threshold"`
	// Mode selects on-line or on-demand delivery. Defaults to OnDemand
	// when unset, which the paper expects to be the majority.
	Mode DeliveryMode `json:"mode"`
}

// EffectiveMode returns the delivery mode, defaulting to OnDemand.
func (o SubscriptionOptions) EffectiveMode() DeliveryMode {
	if o.Mode == OnLine {
		return OnLine
	}
	return OnDemand
}

// Accepts reports whether a notification passes the qualitative limit.
func (o SubscriptionOptions) Accepts(n *Notification) bool {
	return n.Rank >= o.Threshold
}

// Validate checks the option invariants.
func (o SubscriptionOptions) Validate() error {
	switch {
	case o.Max < 0:
		return fmt.Errorf("negative Max %d", o.Max)
	case o.Threshold < MinRank || o.Threshold > MaxRank:
		return fmt.Errorf("threshold %v outside [%v, %v]", o.Threshold, float64(MinRank), float64(MaxRank))
	case o.Mode != 0 && o.Mode != OnLine && o.Mode != OnDemand:
		return fmt.Errorf("invalid delivery mode %d", int(o.Mode))
	default:
		return nil
	}
}

// Subscription ties a subscriber to a topic with its volume-limiting
// options.
type Subscription struct {
	Topic      string              `json:"topic"`
	Subscriber string              `json:"subscriber"`
	Options    SubscriptionOptions `json:"options"`
}

// Validate checks the subscription invariants.
func (s *Subscription) Validate() error {
	if s.Topic == "" {
		return errors.New("subscription has no topic")
	}
	if s.Subscriber == "" {
		return errors.New("subscription has no subscriber")
	}
	return s.Options.Validate()
}

// ReadRequest is what the client device sends to the proxy when the user
// checks messages (§3.5): a read is not a request for more data but a
// request for better data if it exists.
type ReadRequest struct {
	Topic string `json:"topic"`
	// N is the number of items the user wants to read; zero means
	// unlimited (the paper's Max = ∞).
	N int `json:"n"`
	// QueueSize is the number of messages currently queued on the client
	// device, including the N it is requesting.
	QueueSize int `json:"queueSize"`
	// ClientEvents identifies between 0 and N of the highest-ranked
	// events already on the client device; with effective prefetching
	// this set may be better than anything available on the proxy, making
	// any transfer unnecessary.
	ClientEvents []ID `json:"clientEvents,omitempty"`
	// Peek marks a cache-refill request rather than a user read: the
	// proxy transfers better data but does not treat the request as
	// consumption (no read statistics, no queue-view subtraction). An
	// extension beyond the paper, used by cooperating sibling devices.
	Peek bool `json:"peek,omitempty"`
}

// Validate checks the read-request invariants.
func (r *ReadRequest) Validate() error {
	switch {
	case r.Topic == "":
		return errors.New("read request has no topic")
	case r.N < 0:
		return fmt.Errorf("negative N %d", r.N)
	case r.QueueSize < 0:
		return fmt.Errorf("negative queue size %d", r.QueueSize)
	case r.N > 0 && len(r.ClientEvents) > r.N:
		return fmt.Errorf("%d client events exceed N=%d", len(r.ClientEvents), r.N)
	default:
		return nil
	}
}

// IDSet is a set of notification IDs with set-algebra helpers used by the
// proxy algorithm's queue manipulation and by the waste/loss accounting.
type IDSet map[ID]struct{}

// NewIDSet builds a set from the given IDs.
func NewIDSet(ids ...ID) IDSet {
	s := make(IDSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id and reports whether it was absent.
func (s IDSet) Add(id ID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Remove deletes id and reports whether it was present.
func (s IDSet) Remove(id ID) bool {
	if _, ok := s[id]; !ok {
		return false
	}
	delete(s, id)
	return true
}

// Contains reports membership.
func (s IDSet) Contains(id ID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality of the set.
func (s IDSet) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s IDSet) Clone() IDSet {
	c := make(IDSet, len(s))
	for id := range s {
		c[id] = struct{}{}
	}
	return c
}

// Union returns a new set containing members of either set.
func (s IDSet) Union(other IDSet) IDSet {
	u := make(IDSet, len(s)+len(other))
	for id := range s {
		u[id] = struct{}{}
	}
	for id := range other {
		u[id] = struct{}{}
	}
	return u
}

// Diff returns a new set with members of s that are not in other.
func (s IDSet) Diff(other IDSet) IDSet {
	d := make(IDSet)
	for id := range s {
		if _, ok := other[id]; !ok {
			d[id] = struct{}{}
		}
	}
	return d
}

// Intersect returns a new set with members present in both sets.
func (s IDSet) Intersect(other IDSet) IDSet {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	i := make(IDSet)
	for id := range small {
		if _, ok := large[id]; ok {
			i[id] = struct{}{}
		}
	}
	return i
}
