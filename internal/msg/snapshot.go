// Snapshot types: the plain-data, JSON-serializable form of one topic's
// Figure 7 state, used when a last-hop proxy hibernates to the write-ahead
// spool (internal/spool) and when it is rehydrated or recovered after a
// crash. They live in msg — not core — so the spool tooling can decode
// session records without importing the proxy algorithm.
package msg

import "time"

// WindowSnapshot is the durable form of a stats.MovingAverage: the window
// size and the retained samples, oldest first.
type WindowSnapshot struct {
	Size    int       `json:"size"`
	Samples []float64 `json:"samples,omitempty"`
}

// IntervalSnapshot is the durable form of a stats.IntervalAverage: the
// inter-observation gaps (seconds, oldest first) plus the last observed
// timestamp. HasLast distinguishes "never observed" from the zero time.
type IntervalSnapshot struct {
	Window  WindowSnapshot `json:"window"`
	Last    time.Time      `json:"last,omitempty"`
	HasLast bool           `json:"hasLast,omitempty"`
}

// DelayedEntry is one notification parked in the delay stage (§3.4) or
// behind a quiet window (§2.2): the instant its timer would have fired and
// which of the two release paths it was on. Rehydration re-arms the timer
// for the remaining duration (immediately, when the deadline passed while
// the session was spooled).
type DelayedEntry struct {
	ID     ID        `json:"id"`
	FireAt time.Time `json:"fireAt"`
	Quiet  bool      `json:"quiet,omitempty"`
}

// SpoolDelta is one incremental spool record for a hibernated session: a
// notification that arrived (with its trace context, which Notification's
// own JSON form omits), a rank revision, or a topic-membership correction.
// Exactly one field group is set. Rehydration replays deltas in record
// order through the proxy's normal NOTIFICATION handling, which is
// idempotent for re-arrivals (a known ID is treated as a rank revision),
// so duplicated deltas after a crashed compaction are harmless.
//
// The membership corrections exist because a snapshot's SpoolMeta.Topics
// goes stale the moment the session subscribes or unsubscribes afterwards:
// without them, crash recovery would resurrect an unsubscribed topic (a
// phantom upstream subscription) or drop a re-subscribed one. Unsubscribe
// names a topic the session dropped after the snapshot; Subscribe names one
// it re-added. Subscribe carries no per-topic configuration — it corrects
// the membership set for recovery, and the proxy-side state returns with
// the device's reasserting subscribe on reconnect.
type SpoolDelta struct {
	Notification *Notification `json:"notification,omitempty"`
	Trace        *TraceContext `json:"trace,omitempty"`
	Rank         *RankUpdate   `json:"rank,omitempty"`
	Subscribe    string        `json:"subscribe,omitempty"`
	Unsubscribe  string        `json:"unsubscribe,omitempty"`
}

// SpoolMeta is the metadata blob of a snapshot spool record: enough for
// crash recovery and the inspection tooling to rebuild the host's
// subscription table without decoding the full payload.
type SpoolMeta struct {
	Topics []string `json:"topics,omitempty"`
}

// TopicState is the complete durable state of one subscribed topic on the
// proxy: the three Figure 7 queues (as ID lists into Notifications), the
// delay stage, the seen-set bookkeeping (history, known content,
// forwarded), armed expiry timers, and the tuner state. Everything a
// rehydrated proxy needs to carry on exactly where the hibernated one
// stopped.
type TopicState struct {
	Topic string `json:"topic"`

	// Queue membership, by notification ID. Every listed ID must appear
	// in History/Notifications.
	Outgoing []ID           `json:"outgoing,omitempty"`
	Prefetch []ID           `json:"prefetch,omitempty"`
	Holding  []ID           `json:"holding,omitempty"`
	Delayed  []DelayedEntry `json:"delayed,omitempty"`

	// History is the seen-set in insertion order (oldest first);
	// Notifications carries the content for exactly those IDs. Traces is
	// the sidecar for the per-notification tracing contexts, which the
	// Notification JSON form deliberately omits.
	History       []ID                 `json:"history,omitempty"`
	Notifications []*Notification      `json:"notifications,omitempty"`
	Traces        map[ID]*TraceContext `json:"traces,omitempty"`
	Forwarded     []ID                 `json:"forwarded,omitempty"`
	ExpiryArmed   []ID                 `json:"expiryArmed,omitempty"`

	// Tuner state (Figure 7's per-topic variables).
	QueueSize     int           `json:"queueSize"`
	PrefetchLimit int           `json:"prefetchLimit"`
	ExpThreshold  time.Duration `json:"expThreshold"`
	Delay         time.Duration `json:"delay"`

	ReadSizes    WindowSnapshot   `json:"readSizes"`
	ExpTimes     WindowSnapshot   `json:"expTimes"`
	DropLags     WindowSnapshot   `json:"dropLags"`
	ReadTimes    IntervalSnapshot `json:"readTimes"`
	ArrivalTimes IntervalSnapshot `json:"arrivalTimes"`

	RateTokens float64 `json:"rateTokens,omitempty"`
	OnlineDay  int     `json:"onlineDay,omitempty"`
	OnlineSent int     `json:"onlineSent,omitempty"`
}
