package msg

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newNote(id ID, rank float64) *Notification {
	return &Notification{ID: id, Topic: "t", Rank: rank, Published: t0}
}

func TestDeliveryModeString(t *testing.T) {
	tests := []struct {
		mode DeliveryMode
		want string
	}{
		{OnLine, "on-line"},
		{OnDemand, "on-demand"},
		{DeliveryMode(9), "mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.mode), got, tt.want)
		}
	}
}

func TestParseDeliveryMode(t *testing.T) {
	tests := []struct {
		in      string
		want    DeliveryMode
		wantErr bool
	}{
		{"on-line", OnLine, false},
		{"ONLINE", OnLine, false},
		{" on-demand ", OnDemand, false},
		{"OnDemand", OnDemand, false},
		{"push", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseDeliveryMode(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseDeliveryMode(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseDeliveryMode(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseDeliveryModeRoundTrip(t *testing.T) {
	for _, m := range []DeliveryMode{OnLine, OnDemand} {
		got, err := ParseDeliveryMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v -> %q -> (%v, %v)", m, m.String(), got, err)
		}
	}
}

func TestNotificationExpiry(t *testing.T) {
	n := newNote("a", 1)
	if !n.NeverExpires() {
		t.Error("zero Expires should mean never expires")
	}
	if n.Expired(t0.Add(100 * 365 * 24 * time.Hour)) {
		t.Error("non-expiring notification reported expired")
	}
	if n.RemainingLife(t0) != maxDuration {
		t.Error("non-expiring notification should have maximal remaining life")
	}

	n.Expires = t0.Add(time.Hour)
	if n.NeverExpires() {
		t.Error("NeverExpires true with expiration set")
	}
	if n.Expired(t0.Add(30 * time.Minute)) {
		t.Error("expired before its time")
	}
	if n.Expired(t0.Add(time.Hour)) {
		t.Error("a notification at exactly its expiration instant is still valid")
	}
	if !n.Expired(t0.Add(time.Hour + time.Nanosecond)) {
		t.Error("not expired after its time")
	}
	if got := n.RemainingLife(t0.Add(20 * time.Minute)); got != 40*time.Minute {
		t.Errorf("RemainingLife = %v, want 40m", got)
	}
	if got := n.RemainingLife(t0.Add(2 * time.Hour)); got != -time.Hour {
		t.Errorf("RemainingLife past expiry = %v, want -1h", got)
	}
}

func TestNotificationClone(t *testing.T) {
	n := newNote("a", 2)
	n.Payload = []byte("hello")
	c := n.Clone()
	c.Payload[0] = 'H'
	c.Rank = 5
	if n.Payload[0] != 'h' {
		t.Error("Clone shares payload storage")
	}
	if n.Rank != 2 {
		t.Error("Clone shares struct storage")
	}
}

func TestNotificationValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Notification)
		ok   bool
	}{
		{"valid", func(*Notification) {}, true},
		{"no id", func(n *Notification) { n.ID = NoID }, false},
		{"no topic", func(n *Notification) { n.Topic = "" }, false},
		{"negative rank", func(n *Notification) { n.Rank = -1 }, false},
		{"huge rank", func(n *Notification) { n.Rank = MaxRank + 1 }, false},
		{"expires before published", func(n *Notification) { n.Expires = n.Published.Add(-time.Second) }, false},
		{"expires at published", func(n *Notification) { n.Expires = n.Published }, true},
	}
	for _, tt := range tests {
		n := newNote("a", 1)
		tt.mut(n)
		err := n.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestNotificationBefore(t *testing.T) {
	hi := newNote("hi", 5)
	lo := newNote("lo", 1)
	if !hi.Before(lo) || lo.Before(hi) {
		t.Error("higher rank must sort first")
	}
	old := newNote("old", 3)
	young := newNote("young", 3)
	young.Published = t0.Add(time.Minute)
	if !old.Before(young) || young.Before(old) {
		t.Error("equal ranks must sort by publication time, older first")
	}
	a := newNote("a", 3)
	b := newNote("b", 3)
	if !a.Before(b) || b.Before(a) {
		t.Error("full ties must break by ID")
	}
	if a.Before(a) {
		t.Error("Before must be irreflexive")
	}
}

func TestBeforeIsStrictOrder(t *testing.T) {
	// Property: Before is a strict total order on distinct notifications.
	f := func(r1, r2 float64, dt int8, id1, id2 uint8) bool {
		n1 := newNote(ID('a'+rune(id1%26)), normRank(r1))
		n2 := newNote(ID('a'+rune(id2%26)), normRank(r2))
		n2.Published = t0.Add(time.Duration(dt) * time.Second)
		if n1.Rank == n2.Rank && n1.Published.Equal(n2.Published) && n1.ID == n2.ID {
			return !n1.Before(n2) && !n2.Before(n1)
		}
		return n1.Before(n2) != n2.Before(n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func normRank(r float64) float64 {
	if r < 0 {
		r = -r
	}
	for r > MaxRank {
		r /= 2
	}
	return r
}

func TestRankUpdateValidate(t *testing.T) {
	valid := RankUpdate{Topic: "t", ID: "a", NewRank: 3}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
	for _, u := range []RankUpdate{
		{Topic: "", ID: "a", NewRank: 3},
		{Topic: "t", ID: NoID, NewRank: 3},
		{Topic: "t", ID: "a", NewRank: -0.5},
		{Topic: "t", ID: "a", NewRank: MaxRank * 2},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("invalid update %+v accepted", u)
		}
	}
}

func TestSubscriptionOptions(t *testing.T) {
	var o SubscriptionOptions
	if o.EffectiveMode() != OnDemand {
		t.Error("default mode must be on-demand")
	}
	o.Mode = OnLine
	if o.EffectiveMode() != OnLine {
		t.Error("explicit on-line mode ignored")
	}

	o = SubscriptionOptions{Max: 30, Threshold: 4.5}
	if o.Accepts(newNote("a", 4.4)) {
		t.Error("accepted below threshold")
	}
	if !o.Accepts(newNote("a", 4.5)) {
		t.Error("rejected at threshold")
	}
	if !o.Accepts(newNote("a", 5)) {
		t.Error("rejected above threshold")
	}
}

func TestSubscriptionOptionsValidate(t *testing.T) {
	ok := SubscriptionOptions{Max: 8, Threshold: 2, Mode: OnDemand}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	for _, o := range []SubscriptionOptions{
		{Max: -1},
		{Threshold: -1},
		{Threshold: MaxRank + 1},
		{Mode: DeliveryMode(7)},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid options %+v accepted", o)
		}
	}
}

func TestSubscriptionValidate(t *testing.T) {
	s := Subscription{Topic: "t", Subscriber: "dev", Options: SubscriptionOptions{Max: 8}}
	if err := s.Validate(); err != nil {
		t.Errorf("valid subscription rejected: %v", err)
	}
	s.Topic = ""
	if err := s.Validate(); err == nil {
		t.Error("empty topic accepted")
	}
	s = Subscription{Topic: "t", Options: SubscriptionOptions{Max: 8}}
	if err := s.Validate(); err == nil {
		t.Error("empty subscriber accepted")
	}
	s = Subscription{Topic: "t", Subscriber: "dev", Options: SubscriptionOptions{Max: -3}}
	if err := s.Validate(); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestReadRequestValidate(t *testing.T) {
	ok := ReadRequest{Topic: "t", N: 8, QueueSize: 10, ClientEvents: []ID{"a", "b"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid read request rejected: %v", err)
	}
	unlimited := ReadRequest{Topic: "t", N: 0, QueueSize: 3, ClientEvents: []ID{"a", "b", "c"}}
	if err := unlimited.Validate(); err != nil {
		t.Errorf("unlimited read request rejected: %v", err)
	}
	for _, r := range []ReadRequest{
		{Topic: "", N: 8},
		{Topic: "t", N: -1},
		{Topic: "t", N: 8, QueueSize: -1},
		{Topic: "t", N: 1, ClientEvents: []ID{"a", "b"}},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid read request %+v accepted", r)
		}
	}
}

func TestIDSetBasics(t *testing.T) {
	s := NewIDSet("a", "b")
	if s.Len() != 2 || !s.Contains("a") || !s.Contains("b") || s.Contains("c") {
		t.Fatalf("bad initial set %v", s)
	}
	if !s.Add("c") {
		t.Error("Add of new member returned false")
	}
	if s.Add("c") {
		t.Error("Add of existing member returned true")
	}
	if !s.Remove("a") {
		t.Error("Remove of member returned false")
	}
	if s.Remove("a") {
		t.Error("Remove of absent member returned true")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestIDSetClone(t *testing.T) {
	s := NewIDSet("a")
	c := s.Clone()
	c.Add("b")
	if s.Contains("b") {
		t.Error("Clone shares storage")
	}
}

func TestIDSetAlgebra(t *testing.T) {
	a := NewIDSet("1", "2", "3")
	b := NewIDSet("3", "4")

	u := a.Union(b)
	if u.Len() != 4 {
		t.Errorf("Union len = %d, want 4", u.Len())
	}
	d := a.Diff(b)
	if d.Len() != 2 || !d.Contains("1") || !d.Contains("2") {
		t.Errorf("Diff = %v, want {1,2}", d)
	}
	i := a.Intersect(b)
	if i.Len() != 1 || !i.Contains("3") {
		t.Errorf("Intersect = %v, want {3}", i)
	}
	i2 := b.Intersect(a)
	if i2.Len() != 1 || !i2.Contains("3") {
		t.Errorf("Intersect must be symmetric, got %v", i2)
	}
}

func TestIDSetAlgebraProperties(t *testing.T) {
	mk := func(bits uint8) IDSet {
		s := NewIDSet()
		for i := 0; i < 8; i++ {
			if bits&(1<<i) != 0 {
				s.Add(ID(rune('a' + i)))
			}
		}
		return s
	}
	f := func(x, y uint8) bool {
		a, b := mk(x), mk(y)
		u, d, i := a.Union(b), a.Diff(b), a.Intersect(b)
		// |A∪B| = |A| + |B| - |A∩B| and A = (A\B) ∪ (A∩B).
		if u.Len() != a.Len()+b.Len()-i.Len() {
			return false
		}
		back := d.Union(i)
		if back.Len() != a.Len() {
			return false
		}
		for id := range a {
			if !back.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNotificationJSONRoundTrip(t *testing.T) {
	n := &Notification{
		ID:        "n-17",
		Topic:     "weather/tromsø",
		Publisher: "met.no",
		Rank:      4.5,
		Published: t0,
		Expires:   t0.Add(48 * time.Hour),
		Payload:   []byte("storm warning"),
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Notification
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != n.ID || got.Topic != n.Topic || got.Rank != n.Rank ||
		!got.Published.Equal(n.Published) || !got.Expires.Equal(n.Expires) ||
		string(got.Payload) != string(n.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, n)
	}
}
