// Package experiment regenerates every figure of the paper's evaluation
// (§3, Figures 1–6) plus ablations for the design choices the paper
// discusses without plotting. Each figure function sweeps the same
// parameter grid as the paper and returns labeled series ready for text or
// CSV rendering.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/dist"
	"lasthop/internal/sim"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one labeled curve.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Figure is one reproduced experiment.
type Figure struct {
	// ID identifies the experiment ("figure-1", "figure-3-waste", ...).
	ID string `json:"id"`
	// Title describes what the paper's figure shows.
	Title string `json:"title"`
	// XLabel and YLabel name the axes.
	XLabel string `json:"xLabel"`
	YLabel string `json:"yLabel"`
	// XLog marks a logarithmic x axis in the paper's plot.
	XLog bool `json:"xLog,omitempty"`
	// Series are the curves.
	Series []Series `json:"series"`
}

// Options tunes experiment execution. The zero value reproduces the
// paper's setup (one virtual year, event frequency 32/day).
type Options struct {
	// Seed drives scenario randomness; zero defaults to 1.
	Seed uint64
	// Horizon shortens runs for smoke tests and benchmarks; zero
	// defaults to the paper's one virtual year.
	Horizon time.Duration
	// Replications averages each point over this many seeds; zero
	// defaults to 1.
	Replications int
	// EventsPerDay is the event frequency; zero defaults to the paper's
	// 32.
	EventsPerDay float64
	// Parallelism bounds how many grid points run concurrently; zero
	// defaults to GOMAXPROCS. Points are independent simulations, so
	// results are identical at any setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Horizon == 0 {
		o.Horizon = sim.Year
	}
	if o.Replications == 0 {
		o.Replications = 1
	}
	if o.EventsPerDay == 0 {
		o.EventsPerDay = 32
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// cell is one grid point of a figure: a scenario configuration and the
// policy to compare against the on-line baseline.
type cell struct {
	cfg    sim.Config
	policy core.TopicConfig
}

// cellResult carries one grid point's measurements.
type cellResult struct {
	waste, loss float64
}

// runCells evaluates every grid point, up to opts.Parallelism at a time.
// Results are positionally aligned with the input.
func runCells(opts Options, cells []cell) ([]cellResult, error) {
	results := make([]cellResult, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			w, l, _, err := sim.CompareAveraged(cells[i].cfg, cells[i].policy, opts.Replications)
			results[i] = cellResult{waste: w, loss: l}
			errs[i] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (o Options) baseConfig() sim.Config {
	return sim.Config{
		Seed:         o.Seed,
		Horizon:      o.Horizon,
		EventsPerDay: o.EventsPerDay,
	}
}

// point runs one averaged comparison and selects waste or loss.
func point(cfg sim.Config, policy core.TopicConfig, opts Options) (waste, loss float64, err error) {
	waste, loss, _, err = sim.CompareAveraged(cfg, policy, opts.Replications)
	return waste, loss, err
}

// Figure1 reproduces "Waste due to overflow at different values of Max and
// user frequency" (on-line forwarding, no expirations, event frequency 32).
// The paper's analytical approximation is waste ≈ 1 − uf·Max/ef.
func Figure1(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "figure-1",
		Title:  "Waste due to overflow at different values of Max and user frequency",
		XLabel: "Maximum Messages per Read",
		YLabel: "Percent of Wasted Messages",
		XLog:   true,
	}
	userFreqs := []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
	maxes := []int{1, 2, 4, 8, 16, 32, 64}
	var cells []cell
	for _, uf := range userFreqs {
		for _, m := range maxes {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = uf
			cfg.Max = m
			cells = append(cells, cell{cfg: cfg, policy: core.OnlineConfig(sim.TopicName)})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 1: %w", err)
	}
	k := 0
	for _, uf := range userFreqs {
		s := Series{Label: fmt.Sprintf("user frequency %g", uf)}
		for _, m := range maxes {
			s.Points = append(s.Points, Point{X: float64(m), Y: res[k].waste})
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure2 reproduces "Loss due to overflow at different levels of network
// availability" (pure on-demand vs on-line baseline, Max = 8).
func Figure2(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "figure-2",
		Title:  "Loss due to overflow at different levels of network availability (Max = 8)",
		XLabel: "Percent of Network Outage",
		YLabel: "Percent of Lost Messages",
	}
	userFreqs := []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	outages := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}
	var cells []cell
	for _, uf := range userFreqs {
		for _, frac := range outages {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = uf
			cfg.Max = 8
			cfg.Outage.Fraction = frac
			cells = append(cells, cell{cfg: cfg, policy: core.OnDemandConfig(sim.TopicName, 8)})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 2: %w", err)
	}
	k := 0
	for _, uf := range userFreqs {
		s := Series{Label: fmt.Sprintf("user frequency %g", uf)}
		for _, frac := range outages {
			s.Points = append(s.Points, Point{X: frac, Y: res[k].loss})
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure3 reproduces "Loss and waste with buffer-based prefetching under
// different prefetch limits and levels of network availability" (event
// frequency 32, Max = 8, user frequency 2). It returns the loss figure and
// the waste figure (the paper stacks two plots).
func Figure3(opts Options) (loss, waste Figure, err error) {
	opts = opts.withDefaults()
	loss = Figure{
		ID:     "figure-3-loss",
		Title:  "Loss with buffer-based prefetching under different prefetch limits",
		XLabel: "Prefetch Limit (messages)",
		YLabel: "Percent of Lost Messages",
		XLog:   true,
	}
	waste = Figure{
		ID:     "figure-3-waste",
		Title:  "Waste with buffer-based prefetching under different prefetch limits",
		XLabel: "Prefetch Limit (messages)",
		YLabel: "Percent of Wasted Messages",
		XLog:   true,
	}
	outages := []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}
	limits := []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	var cells []cell
	for _, frac := range outages {
		for _, limit := range limits {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = 2
			cfg.Max = 8
			cfg.Outage.Fraction = frac
			cells = append(cells, cell{cfg: cfg, policy: core.BufferConfig(sim.TopicName, 8, limit)})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, Figure{}, fmt.Errorf("figure 3: %w", err)
	}
	k := 0
	for _, frac := range outages {
		ls := Series{Label: fmt.Sprintf("outage %g", frac)}
		ws := Series{Label: fmt.Sprintf("outage %g", frac)}
		for _, limit := range limits {
			ls.Points = append(ls.Points, Point{X: float64(limit), Y: res[k].loss})
			ws.Points = append(ws.Points, Point{X: float64(limit), Y: res[k].waste})
			k++
		}
		loss.Series = append(loss.Series, ls)
		waste.Series = append(waste.Series, ws)
	}
	return loss, waste, nil
}

// Figure4 reproduces "Waste due to expirations with different values of
// user frequency and expiration periods" (on-line forwarding, Max = ∞,
// exponential lifetimes with means from 16 s to ~3 days).
func Figure4(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "figure-4",
		Title:  "Waste due to expirations (Max = ∞, on-line forwarding)",
		XLabel: "Mean Expiration Time of Messages (seconds)",
		YLabel: "Percent of Wasted Messages",
		XLog:   true,
	}
	userFreqs := []float64{1, 2, 4, 8, 16, 32, 64}
	expMeans := expirationSweep()
	var cells []cell
	for _, uf := range userFreqs {
		for _, mean := range expMeans {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = uf
			cfg.Max = 0 // unlimited
			cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
			cells = append(cells, cell{cfg: cfg, policy: core.OnlineConfig(sim.TopicName)})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 4: %w", err)
	}
	k := 0
	for _, uf := range userFreqs {
		s := Series{Label: fmt.Sprintf("user frequency %g", uf)}
		for _, mean := range expMeans {
			s.Points = append(s.Points, Point{X: mean.Seconds(), Y: res[k].waste})
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure5 reproduces "Loss due to expirations with different values of
// user frequency and expiration periods, network outage 95% of the time"
// (pure on-demand vs on-line baseline, Max = ∞).
func Figure5(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "figure-5",
		Title:  "Loss due to expirations at 95% network outage (Max = ∞)",
		XLabel: "Mean Expiration Time of Messages (seconds)",
		YLabel: "Percent of Lost Messages",
		XLog:   true,
	}
	userFreqs := []float64{1, 2, 4, 8, 16, 32, 64}
	expMeans := expirationSweep()
	var cells []cell
	for _, uf := range userFreqs {
		for _, mean := range expMeans {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = uf
			cfg.Max = 0
			cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
			cfg.Outage.Fraction = 0.95
			cells = append(cells, cell{cfg: cfg, policy: core.OnDemandConfig(sim.TopicName, 0)})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, fmt.Errorf("figure 5: %w", err)
	}
	k := 0
	for _, uf := range userFreqs {
		s := Series{Label: fmt.Sprintf("user frequency %g", uf)}
		for _, mean := range expMeans {
			s.Points = append(s.Points, Point{X: mean.Seconds(), Y: res[k].loss})
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure6 reproduces "Waste and loss due to expirations at different
// prefetch expiration thresholds" (event frequency 32, user frequency 2,
// network outage 90%). Each curve is one mean message lifetime; the x axis
// sweeps the fixed expiration threshold of the holding stage.
func Figure6(opts Options) (waste, loss Figure, err error) {
	opts = opts.withDefaults()
	waste = Figure{
		ID:     "figure-6-waste",
		Title:  "Waste due to expirations at different prefetch expiration thresholds (90% outage)",
		XLabel: "Prefetch Expiration Threshold (seconds)",
		YLabel: "Percent of Wasted Messages",
		XLog:   true,
	}
	loss = Figure{
		ID:     "figure-6-loss",
		Title:  "Loss due to expirations at different prefetch expiration thresholds (90% outage)",
		XLabel: "Prefetch Expiration Threshold (seconds)",
		YLabel: "Percent of Lost Messages",
		XLog:   true,
	}
	expMeans := []time.Duration{
		15360 * time.Second,   // 4.2 hours
		245760 * time.Second,  // 2.8 days
		491520 * time.Second,  // 5.7 days
		983040 * time.Second,  // 11 days
		3932160 * time.Second, // 45.5 days (the paper prints "54"; 3932160 s is what it lists)
	}
	thresholds := []time.Duration{
		64 * time.Second, 256 * time.Second, 1024 * time.Second,
		4096 * time.Second, 16384 * time.Second, 65536 * time.Second,
		262144 * time.Second, 1048576 * time.Second,
	}
	var cells []cell
	for _, mean := range expMeans {
		for _, thr := range thresholds {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = 2
			cfg.Max = 8
			cfg.Outage.Fraction = 0.9
			cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
			policy := core.BufferConfig(sim.TopicName, 8, 32)
			policy.ExpirationThreshold = thr
			cells = append(cells, cell{cfg: cfg, policy: policy})
		}
	}
	res, err := runCells(opts, cells)
	if err != nil {
		return Figure{}, Figure{}, fmt.Errorf("figure 6: %w", err)
	}
	k := 0
	for _, mean := range expMeans {
		ws := Series{Label: fmt.Sprintf("expiration %s", humanDuration(mean))}
		ls := Series{Label: fmt.Sprintf("expiration %s", humanDuration(mean))}
		for _, thr := range thresholds {
			ws.Points = append(ws.Points, Point{X: thr.Seconds(), Y: res[k].waste})
			ls.Points = append(ls.Points, Point{X: thr.Seconds(), Y: res[k].loss})
			k++
		}
		waste.Series = append(waste.Series, ws)
		loss.Series = append(loss.Series, ls)
	}
	return waste, loss, nil
}

// expirationSweep is the paper's x axis for Figures 4 and 5: 16 s to
// 262144 s (~3 days) in powers of 4.
func expirationSweep() []time.Duration {
	out := make([]time.Duration, 0, 8)
	for s := 16; s <= 262144; s *= 4 {
		out = append(out, time.Duration(s)*time.Second)
	}
	return out
}

func humanDuration(d time.Duration) string {
	switch {
	case d >= dist.Day:
		return fmt.Sprintf("%.1fd", float64(d)/float64(dist.Day))
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return fmt.Sprintf("%.0fs", d.Seconds())
	}
}
