package experiment

import (
	"fmt"
	"strconv"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/dist"
	"lasthop/internal/link"
	"lasthop/internal/metrics"
	"lasthop/internal/msg"
	"lasthop/internal/multidev"
	"lasthop/internal/pubsub"
	"lasthop/internal/sim"
	"lasthop/internal/simtime"
)

// ExtensionMultiDevice measures the paper's first future-work item (§4):
// cooperation among the user's devices. The user always reads on the
// phone, whose last hop is down the given fraction of the time; companion
// devices (laptop, tablet, ...) have independent outage schedules and
// share their caches over an ad-hoc network.
//
// The workload uses short-lived notifications (8-hour mean), the case
// where a lone device genuinely loses: whatever expires during one of its
// outages is gone (§3.3 calls these losses "harder to minimize"). A
// companion whose link happened to be up caches those messages and hands
// them over at the next read. The y axis is loss against the *ideal*
// reader — a single device with a perfect network — because messages that
// expire during a lone phone's outage are unreachable under any policy on
// that phone, so only this reference can expose what cooperation recovers.
func ExtensionMultiDevice(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "extension-multi-device",
		Title:  "Multi-device cooperation: loss vs number of cooperating devices (8h lifetimes)",
		XLabel: "Devices in the group",
		YLabel: "Percent of Lost Messages (vs a perfect network)",
	}
	outages := []float64{0.5, 0.9}
	groupSizes := []int{1, 2, 3, 4}
	for _, frac := range outages {
		s := Series{Label: fmt.Sprintf("outage %g", frac)}
		for _, k := range groupSizes {
			lossSum := 0.0
			for r := 0; r < opts.Replications; r++ {
				cfg := opts.baseConfig()
				cfg.Seed += uint64(r) * 0x9e3779b9
				cfg.ReadsPerDay = 2
				cfg.Max = 8
				cfg.Outage.Fraction = frac
				cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 8 * time.Hour}
				loss, err := multiDeviceLoss(cfg, k)
				if err != nil {
					return Figure{}, fmt.Errorf("multi-device (outage=%g, k=%d): %w", frac, k, err)
				}
				lossSum += loss
			}
			s.Points = append(s.Points, Point{X: float64(k), Y: lossSum / float64(opts.Replications)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// multiDeviceLoss runs the group scenario once: the reference is a single
// device under on-line forwarding with a perfect network (the ideal
// reader); the measured run is a k-device group under buffer prefetching
// with the user reading on the phone.
func multiDeviceLoss(cfg sim.Config, k int) (float64, error) {
	ideal := cfg
	ideal.Outage.Fraction = 0
	baseline, err := runGroup(ideal, 1, core.OnlineConfig(sim.TopicName))
	if err != nil {
		return 0, err
	}
	group, err := runGroup(cfg, k, core.BufferConfig(sim.TopicName, cfg.Max, 32))
	if err != nil {
		return 0, err
	}
	return metrics.LossPct(baseline, group), nil
}

// runGroup drives one scenario over a k-device group and returns the set
// of notifications the user read.
func runGroup(cfg sim.Config, k int, policy core.TopicConfig) (msg.IDSet, error) {
	base := cfg
	base.Outage.Fraction = 0 // per-device outages are generated below
	sc, err := sim.NewScenario(base)
	if err != nil {
		return nil, err
	}
	sched := simtime.NewVirtual(sim.Start)
	broker := pubsub.NewBroker("group/broker")
	if err := broker.Advertise(sim.TopicName, "group/pub"); err != nil {
		return nil, err
	}

	root := dist.New(cfg.Seed ^ 0x5bd1e995)
	members := make([]multidev.Member, 0, k)
	for i := 0; i < k; i++ {
		name := "dev" + strconv.Itoa(i)
		outages := dist.OutageSchedule(root.Split("outage/"+name), cfg.Outage, sc.Cfg.Horizon)
		lnk := link.New(sched, !dist.DownAt(outages, 0))
		fwd := &groupForwarder{}
		proxy := core.New(sched, fwd)
		dev := device.New(sched, lnk, proxy, device.Config{RankThreshold: cfg.RankThreshold})
		fwd.dev = dev
		proxy.SetNetwork(lnk.Up())
		lnk.OnChange(proxy.SetNetwork)
		topicCfg := policy
		topicCfg.Name = sim.TopicName
		topicCfg.ReadSize = cfg.Max
		topicCfg.RankThreshold = cfg.RankThreshold
		if err := proxy.AddTopic(topicCfg); err != nil {
			return nil, err
		}
		sub := msg.Subscription{
			Topic:      sim.TopicName,
			Subscriber: name,
			Options:    msg.SubscriptionOptions{Max: cfg.Max, Threshold: cfg.RankThreshold},
		}
		if err := broker.Subscribe(sub, proxy.Subscriber()); err != nil {
			return nil, err
		}
		link.Drive(sched, lnk, outages)
		members = append(members, multidev.Member{Name: name, Device: dev, Link: lnk})
	}
	group, err := multidev.NewGroup(members...)
	if err != nil {
		return nil, err
	}

	var harnessErr error
	fail := func(err error) {
		if harnessErr == nil && err != nil {
			harnessErr = err
		}
	}
	for i, a := range sc.Arrivals {
		a := a
		id := msg.ID("e" + strconv.Itoa(i))
		published := sim.Start.Add(a.At)
		n := &msg.Notification{
			ID: id, Topic: sim.TopicName, Publisher: "group/pub",
			Rank: a.Rank, Published: published,
		}
		if a.Lifetime > 0 {
			n.Expires = published.Add(a.Lifetime)
		}
		sched.Schedule(a.At, func() { fail(broker.Publish(n)) })
	}
	for _, at := range sc.Reads {
		sched.Schedule(at, func() {
			_, err := group.Read("dev0", sim.TopicName, cfg.Max)
			fail(err)
		})
	}
	sched.RunUntil(sim.Start.Add(sc.Cfg.Horizon - 1))
	if harnessErr != nil {
		return nil, harnessErr
	}
	return group.ReadUnion(sim.TopicName), nil
}

type groupForwarder struct {
	dev *device.Device
}

var _ core.Forwarder = (*groupForwarder)(nil)

func (f *groupForwarder) Forward(n *msg.Notification) error { return f.dev.Receive(n) }
