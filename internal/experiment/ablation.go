package experiment

import (
	"fmt"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/sim"
)

// Ablations probe design choices the paper argues for in prose: buffer-
// versus rate-based prefetching (§3.2), the rank-retraction delay stage
// (§3.4), and the auto-tuned prefetch limit ("twice the moving average of
// read sizes", §3.2).

// AblationRateVsBuffer compares the buffer- and rate-based prefetching
// approaches across outage levels. The paper reports both reduce waste and
// loss to a few percentage points with buffer-based "more effective and,
// incidentally, simpler".
func AblationRateVsBuffer(opts Options) (loss, waste Figure, err error) {
	opts = opts.withDefaults()
	loss = Figure{
		ID:     "ablation-rate-vs-buffer-loss",
		Title:  "Buffer-based vs rate-based prefetching: loss",
		XLabel: "Percent of Network Outage",
		YLabel: "Percent of Lost Messages",
	}
	waste = Figure{
		ID:     "ablation-rate-vs-buffer-waste",
		Title:  "Buffer-based vs rate-based prefetching: waste",
		XLabel: "Percent of Network Outage",
		YLabel: "Percent of Wasted Messages",
	}
	outages := []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9}
	policies := []struct {
		label string
		cfg   core.TopicConfig
	}{
		{"buffer (limit 32)", core.BufferConfig(sim.TopicName, 8, 32)},
		{"rate", core.RateConfig(sim.TopicName, 8)},
	}
	for _, pol := range policies {
		ls := Series{Label: pol.label}
		ws := Series{Label: pol.label}
		for _, frac := range outages {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = 2
			cfg.Max = 8
			cfg.Outage.Fraction = frac
			w, l, err := point(cfg, pol.cfg, opts)
			if err != nil {
				return Figure{}, Figure{}, fmt.Errorf("rate-vs-buffer (%s, outage=%g): %w", pol.label, frac, err)
			}
			ls.Points = append(ls.Points, Point{X: frac, Y: l})
			ws.Points = append(ws.Points, Point{X: frac, Y: w})
		}
		loss.Series = append(loss.Series, ls)
		waste.Series = append(waste.Series, ws)
	}
	return loss, waste, nil
}

// AblationDelay measures the §3.4 delay stage under a rank-retraction
// workload: the y axis is the percentage of retracted notifications that
// were transferred to the device in vain before the retraction landed.
func AblationDelay(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-delay",
		Title:  "Delay stage vs vain transfers under rank retractions (30% retracted)",
		XLabel: "Delay (seconds)",
		YLabel: "Percent of retractions reaching the device",
	}
	delays := []time.Duration{0, time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour, 4 * time.Hour}
	s := Series{Label: "fixed delay"}
	for _, d := range delays {
		cfg := opts.baseConfig()
		cfg.ReadsPerDay = 2
		cfg.Max = 8
		cfg.RankThreshold = 2.5
		cfg.Churn = sim.ChurnConfig{Portion: 0.3, MeanLag: 10 * time.Minute, RetractTo: 0}
		policy := core.BufferConfig(sim.TopicName, 8, 32)
		policy.Delay = d
		vain, err := vainRetractionPct(cfg, policy, opts)
		if err != nil {
			return Figure{}, fmt.Errorf("delay ablation (delay=%v): %w", d, err)
		}
		s.Points = append(s.Points, Point{X: d.Seconds(), Y: vain})
	}
	fig.Series = append(fig.Series, s)

	auto := Series{Label: "auto delay (learned from retraction lags)"}
	cfg := opts.baseConfig()
	cfg.ReadsPerDay = 2
	cfg.Max = 8
	cfg.RankThreshold = 2.5
	cfg.Churn = sim.ChurnConfig{Portion: 0.3, MeanLag: 10 * time.Minute, RetractTo: 0}
	policy := core.BufferConfig(sim.TopicName, 8, 32)
	policy.AutoDelay = true
	vain, err := vainRetractionPct(cfg, policy, opts)
	if err != nil {
		return Figure{}, fmt.Errorf("delay ablation (auto): %w", err)
	}
	for _, d := range delays {
		auto.Points = append(auto.Points, Point{X: d.Seconds(), Y: vain})
	}
	fig.Series = append(fig.Series, auto)
	return fig, nil
}

// vainRetractionPct runs the scenario and reports what percentage of
// retractions still reached the device (either applied there or delivered
// and read before the retraction).
func vainRetractionPct(cfg sim.Config, policy core.TopicConfig, opts Options) (float64, error) {
	total := 0.0
	for r := 0; r < opts.Replications; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)*0x9e3779b9
		sc, err := sim.NewScenario(runCfg)
		if err != nil {
			return 0, err
		}
		retracted := 0
		for _, a := range sc.Arrivals {
			if a.RetractAt > 0 {
				retracted++
			}
		}
		if retracted == 0 {
			continue
		}
		res, err := sim.Run(sc, policy)
		if err != nil {
			return 0, err
		}
		total += 100 * float64(res.Device.RankDropsApplied) / float64(retracted)
	}
	return total / float64(opts.Replications), nil
}

// AblationAutoLimit compares the paper's auto-tuned prefetch limit (twice
// the moving average of read sizes) against fixed limits across user
// frequencies, reporting waste plus loss as a single inefficiency score.
func AblationAutoLimit(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-auto-limit",
		Title:  "Auto prefetch limit vs fixed limits (waste + loss, 70% outage)",
		XLabel: "User frequency (reads/day)",
		YLabel: "Waste + Loss (percentage points)",
	}
	userFreqs := []float64{0.5, 1, 2, 4, 8}
	policies := []struct {
		label string
		make  func() core.TopicConfig
	}{
		{"fixed limit 4", func() core.TopicConfig { return core.BufferConfig(sim.TopicName, 8, 4) }},
		{"fixed limit 64", func() core.TopicConfig { return core.BufferConfig(sim.TopicName, 8, 64) }},
		{"fixed limit 1024", func() core.TopicConfig { return core.BufferConfig(sim.TopicName, 8, 1024) }},
		{"auto (2x avg read)", func() core.TopicConfig { return core.UnifiedConfig(sim.TopicName, 8) }},
	}
	for _, pol := range policies {
		s := Series{Label: pol.label}
		for _, uf := range userFreqs {
			cfg := opts.baseConfig()
			cfg.ReadsPerDay = uf
			cfg.Max = 8
			cfg.Outage.Fraction = 0.7
			w, l, err := point(cfg, pol.make(), opts)
			if err != nil {
				return Figure{}, fmt.Errorf("auto-limit ablation (%s, uf=%g): %w", pol.label, uf, err)
			}
			s.Points = append(s.Points, Point{X: uf, Y: w + l})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
