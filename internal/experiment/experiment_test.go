package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lasthop/internal/dist"
)

// quickOpts keeps experiment tests fast: short horizon, one replication.
func quickOpts() Options {
	return Options{Seed: 7, Horizon: 45 * dist.Day}
}

// last returns the y of the last point of a series.
func last(s Series) float64 { return s.Points[len(s.Points)-1].Y }

// first returns the y of the first point of a series.
func first(s Series) float64 { return s.Points[0].Y }

func TestFigure1Shape(t *testing.T) {
	fig, err := Figure1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 8 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Within each user-frequency curve, waste must not increase with Max
	// (more read capacity, less overflow) by more than noise.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+8 {
				t.Errorf("%s: waste rose from %.1f to %.1f at Max=%v",
					s.Label, s.Points[i-1].Y, s.Points[i].Y, s.Points[i].X)
			}
		}
	}
	// uf=0.25, Max=1: consumption 0.25/day vs 32/day arrivals -> ~99% waste.
	if y := first(fig.Series[0]); y < 90 {
		t.Errorf("uf=0.25 Max=1 waste = %.1f%%, want ~99%%", y)
	}
	// uf=32, Max=64: consumption far above arrivals -> ~0 waste.
	lastSeries := fig.Series[len(fig.Series)-1]
	if y := last(lastSeries); y > 10 {
		t.Errorf("uf=32 Max=64 waste = %.1f%%, want ~0%%", y)
	}
	// The paper's formula waste ≈ 1 - uf*Max/ef at an interior point:
	// uf=1, Max=4 => 87.5%.
	for _, s := range fig.Series {
		if s.Label != "user frequency 1" {
			continue
		}
		for _, p := range s.Points {
			if p.X == 4 && (p.Y < 80 || p.Y > 95) {
				t.Errorf("uf=1 Max=4 waste = %.1f%%, want ~87.5%%", p.Y)
			}
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	fig, err := Figure2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 9 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		pts := s.Points
		// Loss ~0 with a perfect network, 0 again at total outage.
		if first(s) > 8 {
			t.Errorf("%s: loss at outage 0 = %.1f%%", s.Label, first(s))
		}
		if last(s) != 0 {
			t.Errorf("%s: loss at outage 1 = %.1f%%, want 0", s.Label, last(s))
		}
		// Loss at 0.99 outage must be substantial for low user
		// frequencies.
		if strings.HasSuffix(s.Label, " 0.25") || strings.HasSuffix(s.Label, " 0.5") {
			y := pts[len(pts)-2].Y // the 0.99 point
			if y < 40 {
				t.Errorf("%s: loss at 0.99 outage = %.1f%%, want high", s.Label, y)
			}
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	loss, waste, err := Figure3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(loss.Series) != 7 || len(waste.Series) != 7 {
		t.Fatalf("series = %d/%d", len(loss.Series), len(waste.Series))
	}
	for i, s := range loss.Series {
		// Loss decreases towards ~0 at large limits.
		if last(s) > 6 {
			t.Errorf("%s: loss at max limit = %.1f%%", s.Label, last(s))
		}
		// Waste grows with the limit and approaches the overflow cap
		// (~50%): at 65536 every arrival is eventually forwarded while
		// the user reads only half.
		ws := waste.Series[i]
		if last(ws) < 25 {
			t.Errorf("%s: waste at max limit = %.1f%%, want ~50%%", ws.Label, last(ws))
		}
		if first(ws) > 10 {
			t.Errorf("%s: waste at limit 1 = %.1f%%, want ~0", ws.Label, first(ws))
		}
	}
	// High-outage curves must show high loss at limit 1.
	lastLoss := loss.Series[len(loss.Series)-1]
	if first(lastLoss) < 20 {
		t.Errorf("outage 0.99: loss at limit 1 = %.1f%%, want high", first(lastLoss))
	}
}

func TestFigure4Shape(t *testing.T) {
	fig, err := Figure4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 7 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Short lifetimes: nearly everything expires unread.
		if first(s) < 80 {
			t.Errorf("%s: waste at 16s lifetimes = %.1f%%", s.Label, first(s))
		}
		// Waste decreases with lifetime (allowing noise).
		if last(s) > first(s) {
			t.Errorf("%s: waste grew with lifetime", s.Label)
		}
	}
	// High user frequency reads often enough that 3-day lifetimes waste
	// almost nothing.
	hi := fig.Series[len(fig.Series)-1]
	if last(hi) > 15 {
		t.Errorf("uf=64: waste at 3-day lifetimes = %.1f%%", last(hi))
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Loss must rise from the short-lifetime end for at least the
	// mid-frequency curves (the hump of Fig. 5) and be bounded at both
	// extremes of the sweep for high frequencies.
	humps := 0
	for _, s := range fig.Series {
		maxY := 0.0
		for _, p := range s.Points {
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		if maxY > first(s)+10 && maxY > last(s)+5 {
			humps++
		}
	}
	if humps < 3 {
		t.Errorf("only %d series show the expiration-loss hump", humps)
	}
}

func TestFigure6Shape(t *testing.T) {
	waste, loss, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(waste.Series) != 5 || len(loss.Series) != 5 {
		t.Fatalf("series = %d/%d", len(waste.Series), len(loss.Series))
	}
	for i := range waste.Series {
		ws, ls := waste.Series[i], loss.Series[i]
		// Waste falls as the threshold grows (more held back).
		if last(ws) > first(ws)+5 {
			t.Errorf("%s: waste grew with threshold: %.1f -> %.1f", ws.Label, first(ws), last(ws))
		}
		// Loss climbs as the threshold grows (too high is as bad as no
		// prefetching at all).
		if last(ls)+5 < first(ls) {
			t.Errorf("%s: loss fell with threshold: %.1f -> %.1f", ls.Label, first(ls), last(ls))
		}
	}
	// For the longest lifetimes there is a low/low gap: at the 8-hour
	// threshold (the inter-read interval) both metrics should be small.
	longWaste := waste.Series[len(waste.Series)-1]
	longLoss := loss.Series[len(loss.Series)-1]
	for i, p := range longWaste.Points {
		if p.X == 16384 { // ~4.5h, inside the gap for 45-day lifetimes
			if p.Y > 10 || longLoss.Points[i].Y > 10 {
				t.Errorf("45-day curve at 4.5h threshold: waste=%.1f loss=%.1f, want both small",
					p.Y, longLoss.Points[i].Y)
			}
		}
	}
}

func TestAblationRateVsBuffer(t *testing.T) {
	loss, waste, err := AblationRateVsBuffer(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(loss.Series) != 2 || len(waste.Series) != 2 {
		t.Fatal("expected two policies")
	}
	// Both policies keep loss far below pure on-demand at heavy outage
	// (which would be tens of percent).
	for _, s := range loss.Series {
		if last(s) > 25 {
			t.Errorf("%s: loss at 0.9 outage = %.1f%%", s.Label, last(s))
		}
	}
}

func TestAblationDelay(t *testing.T) {
	fig, err := AblationDelay(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	fixed := fig.Series[0]
	// No delay: most retractions hit the device. Long delay: few do.
	if first(fixed) < 30 {
		t.Errorf("no-delay vain transfers = %.1f%%, want high", first(fixed))
	}
	if last(fixed) > first(fixed)/2 {
		t.Errorf("4h delay vain transfers = %.1f%%, want far below %.1f%%", last(fixed), first(fixed))
	}
	// Auto delay lands below the no-delay level.
	auto := fig.Series[1]
	if first(auto) > first(fixed) {
		t.Errorf("auto delay (%.1f%%) worse than no delay (%.1f%%)", first(auto), first(fixed))
	}
}

func TestAblationAutoLimit(t *testing.T) {
	fig, err := AblationAutoLimit(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// The auto policy should never be dramatically worse than the best
	// fixed limit at any user frequency.
	auto := fig.Series[3]
	for i, p := range auto.Points {
		best := 1e18
		for _, s := range fig.Series[:3] {
			if s.Points[i].Y < best {
				best = s.Points[i].Y
			}
		}
		if p.Y > best+25 {
			t.Errorf("auto limit at uf=%g: %.1f vs best fixed %.1f", p.X, p.Y, best)
		}
	}
}

func TestExtensionMultiDevice(t *testing.T) {
	fig, err := ExtensionMultiDevice(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		// Adding companion devices must not increase loss.
		if last(s) > first(s)+3 {
			t.Errorf("%s: loss grew with group size: %.1f -> %.1f", s.Label, first(s), last(s))
		}
	}
	// At 90% outage the group must recover a meaningful share of what a
	// lone device loses. (The floor stays high: with every link down 90%
	// of the time, all four devices are simultaneously unreachable ~66%
	// of the time, and short-lived messages arriving then are beyond any
	// caching policy.)
	high := fig.Series[1]
	if last(high) > 0.85*first(high) {
		t.Errorf("no cooperation benefit visible: 1 device %.1f%% vs 4 devices %.1f%%",
			first(high), last(high))
	}
}

func TestVerifyClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claim verification runs many simulations")
	}
	opts := quickOpts()
	opts.Horizon = 120 * dist.Day // percentages need some runway
	claims, err := VerifyClaims(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 9 {
		t.Fatalf("claims = %d", len(claims))
	}
	var buf bytes.Buffer
	if err := RenderClaims(&buf, claims); err != nil {
		t.Fatal(err)
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: %s", c.ID, c.Measured)
		}
	}
	if !strings.Contains(buf.String(), "claims reproduced") {
		t.Error("render missing summary line")
	}
}

func TestRenderText(t *testing.T) {
	fig := Figure{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y%",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Label: "b", Points: []Point{{X: 1, Y: 30}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "x", "a", "b", "10.0", "20.0", "30.0", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	fig := Figure{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", Points: []Point{{X: 1, Y: 10}}}},
	}
	var buf bytes.Buffer
	if err := fig.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.ID != "demo" || len(back.Series) != 1 || back.Series[0].Points[0].Y != 10 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestRenderCSV(t *testing.T) {
	fig := Figure{
		ID: "demo", Title: "Demo", XLabel: "x,axis", YLabel: "y",
		Series: []Series{
			{Label: `series "q"`, Points: []Point{{X: 1, Y: 10.5}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,axis"`) {
		t.Errorf("CSV header not escaped: %s", out)
	}
	if !strings.Contains(out, `"series ""q"""`) {
		t.Errorf("CSV label not escaped: %s", out)
	}
	if !strings.Contains(out, "10.500") {
		t.Errorf("CSV value missing: %s", out)
	}
}
