package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderText writes the figure as an aligned text table: one row per x
// value, one column per series. This is the form EXPERIMENTS.md embeds.
func (f Figure) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# y: %s\n", f.YLabel); err != nil {
		return err
	}
	xs := f.xValues()
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, header)
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, fmt.Sprintf("%.1f", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the figure as indented JSON for plotting tools.
func (f Figure) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// RenderCSV writes the figure as CSV with an x column and one column per
// series.
func (f Figure) RenderCSV(w io.Writer) error {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, csvEscape(f.XLabel))
	for _, s := range f.Series {
		cols = append(cols, csvEscape(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range f.xValues() {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, strconv.FormatFloat(y, 'f', 3, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// xValues collects the union of x coordinates across series, ascending.
func (f Figure) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func (s Series) at(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'f', -1, 64)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
