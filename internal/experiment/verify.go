package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/dist"
	"lasthop/internal/sim"
)

// Claim is one of the paper's headline claims together with this
// reproduction's measurement and verdict.
type Claim struct {
	// ID names the claim ("fig1-formula", ...).
	ID string `json:"id"`
	// Statement is the paper's claim.
	Statement string `json:"statement"`
	// Measured summarizes what this reproduction observed.
	Measured string `json:"measured"`
	// Pass reports whether the measurement supports the claim.
	Pass bool `json:"pass"`
}

// VerifyClaims measures every headline claim of the paper's evaluation
// with targeted runs (much cheaper than regenerating the full figures) and
// returns the verdicts. All claims pass at the paper's full horizon; at
// very short horizons the percentages get noisy.
func VerifyClaims(opts Options) ([]Claim, error) {
	opts = opts.withDefaults()
	var claims []Claim
	add := func(c Claim, err error) error {
		if err != nil {
			return err
		}
		claims = append(claims, c)
		return nil
	}
	checks := []func(Options) (Claim, error){
		claimOverflowFormula,
		claimOnDemandLossExtremes,
		claimBufferSweetSpot,
		claimExpirationWaste,
		claimExpirationLossHump,
		claimExpirationThresholdGap,
		claimBufferBeatsRate,
		claimDelayShields,
		claimMultiDeviceCooperation,
	}
	for _, check := range checks {
		c, err := check(opts)
		if err := add(c, err); err != nil {
			return nil, err
		}
	}
	return claims, nil
}

// wasteLoss runs one averaged comparison.
func wasteLoss(opts Options, mut func(*sim.Config), policy core.TopicConfig) (waste, loss float64, err error) {
	cfg := opts.baseConfig()
	cfg.ReadsPerDay = 2
	cfg.Max = 8
	if mut != nil {
		mut(&cfg)
	}
	waste, loss, _, err = sim.CompareAveraged(cfg, policy, opts.Replications)
	return waste, loss, err
}

// claimOverflowFormula: §3.2 "Waste % = 1 − uf·Max/ef".
func claimOverflowFormula(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig1-formula",
		Statement: "Overflow waste under on-line forwarding follows 1 − uf·Max/ef (e.g. 88% at uf=1, Max=4, ef=32).",
	}
	points := []struct {
		uf   float64
		max  int
		want float64
	}{
		{1, 4, 87.5},
		{2, 8, 50},
		{1, 32, 0},
	}
	worst := 0.0
	for _, pt := range points {
		waste, _, err := wasteLoss(opts, func(cfg *sim.Config) {
			cfg.ReadsPerDay = pt.uf
			cfg.Max = pt.max
		}, core.OnlineConfig(sim.TopicName))
		if err != nil {
			return Claim{}, err
		}
		if d := math.Abs(waste - pt.want); d > worst {
			worst = d
		}
	}
	c.Measured = fmt.Sprintf("max deviation from the formula %.1f points across 3 grid points", worst)
	c.Pass = worst <= 6
	return c, nil
}

// claimOnDemandLossExtremes: Fig. 2's endpoints.
func claimOnDemandLossExtremes(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig2-extremes",
		Statement: "Pure on-demand loss grows to just below 100% at 99% outage and drops to 0 at total outage.",
	}
	_, lossHigh, err := wasteLoss(opts, func(cfg *sim.Config) {
		cfg.ReadsPerDay = 1
		cfg.Outage.Fraction = 0.99
	}, core.OnDemandConfig(sim.TopicName, 8))
	if err != nil {
		return Claim{}, err
	}
	_, lossTotal, err := wasteLoss(opts, func(cfg *sim.Config) {
		cfg.ReadsPerDay = 1
		cfg.Outage.Fraction = 1
	}, core.OnDemandConfig(sim.TopicName, 8))
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("loss %.1f%% at 99%% outage, %.1f%% at total outage", lossHigh, lossTotal)
	c.Pass = lossHigh >= 80 && lossTotal == 0
	return c, nil
}

// claimBufferSweetSpot: Fig. 3's knee and cap.
func claimBufferSweetSpot(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig3-sweet-spot",
		Statement: "Buffer prefetching at limits 16–64 keeps waste and loss at a few percent even at 90% outage; tiny limits lose heavily; huge limits waste toward the 50% overflow cap.",
	}
	mut := func(cfg *sim.Config) { cfg.Outage.Fraction = 0.9 }
	wasteMid, lossMid, err := wasteLoss(opts, mut, core.BufferConfig(sim.TopicName, 8, 32))
	if err != nil {
		return Claim{}, err
	}
	_, lossTiny, err := wasteLoss(opts, mut, core.BufferConfig(sim.TopicName, 8, 1))
	if err != nil {
		return Claim{}, err
	}
	wasteHuge, _, err := wasteLoss(opts, mut, core.BufferConfig(sim.TopicName, 8, 65536))
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("limit 32: waste %.1f%%, loss %.1f%%; limit 1: loss %.1f%%; limit 65536: waste %.1f%%",
		wasteMid, lossMid, lossTiny, wasteHuge)
	c.Pass = wasteMid <= 6 && lossMid <= 6 && lossTiny >= 25 && wasteHuge >= 40
	return c, nil
}

// claimExpirationWaste: Fig. 4's ends.
func claimExpirationWaste(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig4-expiration-waste",
		Statement: "Short-lived notifications mostly expire unread (waste ≈ 100% at 16 s lifetimes); waste disappears when the read interval is below the lifetime.",
	}
	short, _, err := wasteLoss(opts, func(cfg *sim.Config) {
		cfg.Max = 0
		cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 16 * time.Second}
	}, core.OnlineConfig(sim.TopicName))
	if err != nil {
		return Claim{}, err
	}
	long, _, err := wasteLoss(opts, func(cfg *sim.Config) {
		cfg.Max = 0
		cfg.ReadsPerDay = 16
		cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 3 * dist.Day}
	}, core.OnlineConfig(sim.TopicName))
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("waste %.1f%% at 16s lifetimes; %.1f%% at 3-day lifetimes with frequent reads", short, long)
	c.Pass = short >= 90 && long <= 15
	return c, nil
}

// claimExpirationLossHump: Fig. 5's non-monotone shape.
func claimExpirationLossHump(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig5-loss-hump",
		Statement: "Under heavy outage, on-demand loss due to expirations is low for very short lifetimes, peaks in between, and drops back for long lifetimes.",
	}
	loss := func(mean time.Duration) (float64, error) {
		_, l, err := wasteLoss(opts, func(cfg *sim.Config) {
			cfg.Max = 0
			cfg.ReadsPerDay = 4
			cfg.Outage.Fraction = 0.95
			cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
		}, core.OnDemandConfig(sim.TopicName, 0))
		return l, err
	}
	short, err := loss(30 * time.Second)
	if err != nil {
		return Claim{}, err
	}
	mid, err := loss(4 * time.Hour)
	if err != nil {
		return Claim{}, err
	}
	long, err := loss(60 * dist.Day)
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("loss %.1f%% (30s) -> %.1f%% (4h) -> %.1f%% (60d)", short, mid, long)
	c.Pass = mid > short+10 && mid > long+5
	return c, nil
}

// claimExpirationThresholdGap: Fig. 6's automatic-threshold rule.
func claimExpirationThresholdGap(opts Options) (Claim, error) {
	c := Claim{
		ID:        "fig6-threshold-gap",
		Statement: "When lifetimes exceed the read interval by an order of magnitude, setting the expiration threshold to the inter-read interval keeps both waste and loss low; too high a threshold is as bad as no prefetching.",
	}
	run := func(thr time.Duration) (float64, float64, error) {
		policy := core.BufferConfig(sim.TopicName, 8, 32)
		policy.ExpirationThreshold = thr
		return wasteLoss(opts, func(cfg *sim.Config) {
			cfg.Outage.Fraction = 0.9
			cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 45 * dist.Day}
		}, policy)
	}
	wasteGap, lossGap, err := run(8 * time.Hour)
	if err != nil {
		return Claim{}, err
	}
	_, lossHuge, err := run(90 * dist.Day)
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("8h threshold: waste %.1f%%, loss %.1f%%; 90-day threshold: loss %.1f%%",
		wasteGap, lossGap, lossHuge)
	c.Pass = wasteGap <= 10 && lossGap <= 10 && lossHuge > lossGap+10
	return c, nil
}

// claimBufferBeatsRate: §3.2's comparison of the two approaches.
func claimBufferBeatsRate(opts Options) (Claim, error) {
	c := Claim{
		ID:        "buffer-vs-rate",
		Statement: "Both prefetching approaches reduce waste and loss to a few percentage points, with buffer-based more effective.",
	}
	mut := func(cfg *sim.Config) { cfg.Outage.Fraction = 0.5 }
	wasteBuf, lossBuf, err := wasteLoss(opts, mut, core.BufferConfig(sim.TopicName, 8, 32))
	if err != nil {
		return Claim{}, err
	}
	wasteRate, lossRate, err := wasteLoss(opts, mut, core.RateConfig(sim.TopicName, 8))
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("buffer: waste %.1f%%, loss %.1f%%; rate: waste %.1f%%, loss %.1f%%",
		wasteBuf, lossBuf, wasteRate, lossRate)
	c.Pass = lossBuf <= 6 && lossRate <= 6 && wasteBuf < wasteRate && wasteRate <= 15
	return c, nil
}

// claimDelayShields: §3.4's delay stage.
func claimDelayShields(opts Options) (Claim, error) {
	c := Claim{
		ID:        "delay-shields-retractions",
		Statement: "Delaying events long enough to separate the wheat from the chaff keeps retracted notifications off the device.",
	}
	vain := func(delay time.Duration) (float64, error) {
		cfg := opts.baseConfig()
		cfg.ReadsPerDay = 2
		cfg.Max = 8
		cfg.RankThreshold = 2.5
		cfg.Churn = sim.ChurnConfig{Portion: 0.3, MeanLag: 10 * time.Minute, RetractTo: 0}
		policy := core.BufferConfig(sim.TopicName, 8, 32)
		policy.Delay = delay
		return vainRetractionPct(cfg, policy, opts)
	}
	without, err := vain(0)
	if err != nil {
		return Claim{}, err
	}
	with, err := vain(time.Hour)
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("retractions reaching the device: %.1f%% without delay, %.1f%% with a 1h delay", without, with)
	c.Pass = without >= 30 && with <= without/3
	return c, nil
}

// claimMultiDeviceCooperation: §4's future-work conjecture.
func claimMultiDeviceCooperation(opts Options) (Claim, error) {
	c := Claim{
		ID:        "multi-device-cooperation",
		Statement: "One device using the cache of another reduces loss (paper §4 conjecture).",
	}
	cfg := opts.baseConfig()
	cfg.ReadsPerDay = 2
	cfg.Max = 8
	cfg.Outage.Fraction = 0.5
	cfg.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 8 * time.Hour}
	alone, err := multiDeviceLoss(cfg, 1)
	if err != nil {
		return Claim{}, err
	}
	group, err := multiDeviceLoss(cfg, 3)
	if err != nil {
		return Claim{}, err
	}
	c.Measured = fmt.Sprintf("loss vs a perfect network: %.1f%% alone, %.1f%% with two companions", alone, group)
	c.Pass = group < alone*0.6
	return c, nil
}

// RenderClaims writes the verdicts as an aligned report.
func RenderClaims(w io.Writer, claims []Claim) error {
	passed := 0
	for _, c := range claims {
		verdict := "FAIL"
		if c.Pass {
			verdict = "PASS"
			passed++
		}
		if _, err := fmt.Fprintf(w, "[%s] %s\n        claim:    %s\n        measured: %s\n",
			verdict, c.ID, c.Statement, c.Measured); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d/%d claims reproduced\n", passed, len(claims))
	return err
}
