package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon logger: format is "text" or "json", level is
// "debug", "info", "warn", or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q", format)
	}
}

// Logf adapts a structured logger to the printf-style Logf callbacks the
// wire and loadgen layers accept, tagging each line with its component.
func Logf(l *slog.Logger, component string) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	l = l.With("component", component)
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
