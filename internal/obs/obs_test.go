package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lasthop_test_events_total", "Events seen.")
	c.Add(3)
	c.Inc()
	g := r.GaugeVec("lasthop_test_depth", "Queue depth.", "topic", "queue").With("news", "outgoing")
	g.Set(7)
	g.Add(-2)

	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE lasthop_test_events_total counter",
		"lasthop_test_events_total 4",
		"# HELP lasthop_test_depth Queue depth.",
		`lasthop_test_depth{topic="news",queue="outgoing"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestHistogramRenderAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lasthop_test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // third bucket
	}
	h.Observe(5) // +Inf bucket

	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE lasthop_test_latency_seconds histogram",
		`lasthop_test_latency_seconds_bucket{le="0.001"} 90`,
		`lasthop_test_latency_seconds_bucket{le="0.01"} 90`,
		`lasthop_test_latency_seconds_bucket{le="0.1"} 100`,
		`lasthop_test_latency_seconds_bucket{le="+Inf"} 101`,
		"lasthop_test_latency_seconds_count 101",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.001 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.001]", q)
	}
	if q := h.Quantile(0.95); q <= 0.01 || q > 0.1 {
		t.Errorf("p95 = %v, want within third bucket (0.01, 0.1]", q)
	}
	// The +Inf observation is attributed to the last finite bound.
	if q := h.Quantile(1); q != 0.1 {
		t.Errorf("p100 = %v, want 0.1", q)
	}
	if got, want := h.Sum(), 90*0.0005+10*0.05+5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if n := len(LatencyBuckets()); n != 60 {
		t.Fatalf("LatencyBuckets len = %d, want 60", n)
	}
}

func TestSampledFamilies(t *testing.T) {
	r := NewRegistry()
	depth := 4.0
	r.SampleGauges("lasthop_test_sampled", "Sampled depth.", []string{"topic"}, func() []Sample {
		return []Sample{{Labels: []string{"a"}, Value: depth}}
	})
	// A second sampler may feed the same family.
	r.SampleGauges("lasthop_test_sampled", "Sampled depth.", []string{"topic"}, func() []Sample {
		return []Sample{{Labels: []string{"b"}, Value: 9}}
	})
	out := scrape(t, r)
	if !strings.Contains(out, `lasthop_test_sampled{topic="a"} 4`) ||
		!strings.Contains(out, `lasthop_test_sampled{topic="b"} 9`) {
		t.Fatalf("sampled families missing:\n%s", out)
	}
	if strings.Count(out, "# TYPE lasthop_test_sampled gauge") != 1 {
		t.Fatalf("TYPE line must appear once:\n%s", out)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lasthop_test_total", "x")
	b := r.Counter("lasthop_test_total", "x")
	if a != b {
		t.Fatal("same name+type must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration must panic")
		}
	}()
	r.Gauge("lasthop_test_total", "x")
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lasthop_test_conc_total", "")
	h := r.Histogram("lasthop_test_conc_seconds", "", ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.005)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = scrape(t, r)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("lasthop_test_served_total", "").Add(2)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "lasthop_test_served_total 2") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, `"status":"ok"`) {
		t.Errorf("/healthz = %s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestLoggerAndLogf(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "json", "info")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	Logf(l, "wire")("dial %s attempt %d", "broker:1", 3)
	out := b.String()
	if !strings.Contains(out, `"component":"wire"`) || !strings.Contains(out, "dial broker:1 attempt 3") {
		t.Fatalf("log line = %s", out)
	}
	if _, err := NewLogger(io.Discard, "xml", "info"); err == nil {
		t.Fatal("unknown format must error")
	}
	if _, err := NewLogger(io.Discard, "text", "loud"); err == nil {
		t.Fatal("unknown level must error")
	}
	// nil logger adapter must be callable.
	Logf(nil, "x")("ignored %d", 1)
}

func ExampleRegistry_WriteText() {
	r := NewRegistry()
	r.Counter("lasthop_example_total", "An example.").Add(1)
	var b bytes.Buffer
	_ = r.WriteText(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP lasthop_example_total An example.
	// # TYPE lasthop_example_total counter
	// lasthop_example_total 1
}
