package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsExported(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // guarantee at least one pause for the histogram pump
	out := scrape(t, reg)

	for _, name := range []string{
		"lasthop_go_goroutines",
		"lasthop_go_heap_alloc_bytes",
		"lasthop_go_heap_sys_bytes",
		"lasthop_process_resident_bytes",
		"lasthop_go_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %s", name)
		}
	}
	// The gauges must carry live values, not zeros from registration time.
	var goroutines float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lasthop_go_goroutines ") {
			fmt.Sscanf(line, "lasthop_go_goroutines %g", &goroutines)
		}
	}
	if goroutines < 1 {
		t.Errorf("goroutine gauge %v, want >= 1", goroutines)
	}
	if strings.Contains(out, "lasthop_go_gc_pause_seconds_count 0\n") {
		t.Error("GC pause histogram never pumped despite a forced GC")
	}
}

func TestRuntimeMetricsIdempotentPerRegistry(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // second call must not double-register
	out := scrape(t, reg)
	if n := strings.Count(out, "# HELP lasthop_go_goroutines"); n != 1 {
		t.Errorf("goroutine gauge registered %d times, want 1", n)
	}
}

func TestServeExportsRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "lasthop_go_goroutines") {
		t.Error("served /metrics missing runtime telemetry")
	}
}
