package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// runtimeRegistered dedups RegisterRuntimeMetrics per registry: Serve
// calls it for every daemon, and a process serving several registries
// (loadgen harnesses) must not double-pump the GC-pause histogram.
var runtimeRegistered sync.Map // *Registry → struct{}

// RegisterRuntimeMetrics exports Go runtime telemetry from the registry:
//
//	lasthop_go_goroutines            current goroutine count
//	lasthop_go_heap_alloc_bytes      live heap bytes (MemStats.HeapAlloc)
//	lasthop_go_heap_sys_bytes        heap reserved from the OS
//	lasthop_process_resident_bytes   RSS from /proc/self/statm (0 where absent)
//	lasthop_go_gc_pause_seconds      histogram of GC stop-the-world pauses
//
// Values refresh on every scrape via an OnScrape hook — no background
// goroutine, no cost between scrapes. The pause histogram is pumped by
// diffing MemStats.NumGC against the previous scrape and draining the
// PauseNs ring for the cycles in between (a ring overrun under extreme
// GC churn drops the oldest pauses, never double-counts). Idempotent
// per registry; safe to call from every daemon setup path.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	if _, loaded := runtimeRegistered.LoadOrStore(reg, struct{}{}); loaded {
		return
	}
	goroutines := reg.Gauge("lasthop_go_goroutines", "Current number of goroutines.")
	heapAlloc := reg.Gauge("lasthop_go_heap_alloc_bytes", "Bytes of live heap objects (MemStats.HeapAlloc).")
	heapSys := reg.Gauge("lasthop_go_heap_sys_bytes", "Heap bytes reserved from the OS (MemStats.HeapSys).")
	rss := reg.Gauge("lasthop_process_resident_bytes", "Resident set size from /proc/self/statm; 0 where unavailable.")
	gcPause := reg.Histogram("lasthop_go_gc_pause_seconds",
		"Go garbage-collection stop-the-world pause durations.",
		ExpBuckets(1e-6, 4, 10))

	var prevNumGC uint32
	pageSize := int64(os.Getpagesize())
	reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		from := prevNumGC
		if ms.NumGC > from+uint32(len(ms.PauseNs)) {
			from = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for i := from; i < ms.NumGC; i++ {
			gcPause.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		prevNumGC = ms.NumGC
		rss.Set(float64(residentBytes(pageSize)))
	})
}

// residentBytes reads RSS pages from /proc/self/statm (second field),
// returning 0 on platforms or sandboxes without it.
func residentBytes(pageSize int64) int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * pageSize
}
