package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the observability HTTP endpoint of a daemon: /metrics in
// Prometheus text format, /healthz as a JSON liveness probe, the full
// net/http/pprof suite under /debug/pprof/, and any extra routes the
// daemon registers (e.g. /debug/traces).
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Route is an extra handler a daemon mounts on its observability server.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler returns an http.Handler serving the registry as Prometheus text.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
}

// Serve starts the observability server on addr (e.g. ":6060") and returns
// once the listener is bound, so a following scrape cannot race startup.
// A nil registry serves health and pprof only. Extra routes are mounted
// verbatim onto the mux.
func Serve(addr string, reg *Registry, extras ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	if reg != nil {
		// Every served registry exports Go runtime telemetry: goroutine
		// count, heap, RSS, and GC pauses refresh per scrape.
		RegisterRuntimeMetrics(reg)
		mux.Handle("/metrics", Handler(reg))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.start).Seconds(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, ex := range extras {
		if ex.Pattern != "" && ex.Handler != nil {
			mux.Handle(ex.Pattern, ex.Handler)
		}
	}

	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0" in tests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
