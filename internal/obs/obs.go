// Package obs is the dependency-light observability layer shared by every
// daemon: an atomic metrics registry with Prometheus text exposition, an
// HTTP server bundling /metrics, /healthz, and net/http/pprof, and slog
// helpers for structured daemon logging.
//
// The registry knows three metric kinds — counters, gauges, and
// histograms — in two forms:
//
//   - direct metrics, updated on hot paths with a single atomic operation
//     (Counter.Add, Histogram.Observe), created with Counter/Gauge/
//     Histogram or their labeled *Vec variants;
//   - sampled families, whose values are pulled from a callback at scrape
//     time (SampleCounters/SampleGauges) — the right shape for state that
//     already lives behind a lock or a scheduler, like the core proxy's
//     queue depths.
//
// Metric methods are nil-safe: a nil *Counter or *Histogram ignores
// updates, so instrumentation points cost one predictable branch when
// observability is disabled.
//
// Naming follows the Prometheus conventions used across the repo:
// lasthop_<subsystem>_<metric>[_unit][_total], with subsystems pubsub,
// wire, core, device, and loadgen (see DESIGN.md §8).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value with an atomic hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; it is a no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 with an atomic hot path.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value; it is a no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta; it is a no-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with atomic observation. Bucket
// bounds are upper limits in ascending order; observations above the last
// bound land in an implicit +Inf bucket. Quantile estimates interpolate
// within buckets, so bound spacing sets the estimation error (use
// ExpBuckets for a constant relative error, HDR-histogram style).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value; it is a no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the owning bucket, assuming non-negative observations. Values in
// the +Inf bucket are attributed to the last finite bound. Returns 0 when
// empty or on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor, the usual shape for latency and size
// distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers 50µs to ~26s in seconds with ~12% relative error,
// an HDR-style layout for end-to-end delivery latency.
func LatencyBuckets() []float64 { return ExpBuckets(50e-6, 1.25, 60) }

// SizeBuckets covers 1 to ~32k in powers of two, for batch sizes and
// fan-out widths.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 16) }

// Sample is one scrape-time value of a sampled family.
type Sample struct {
	// Labels are the label values, aligned with the family's label names.
	Labels []string
	// Value is the sampled metric value.
	Value float64
}

// metric kinds, as rendered in the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric family: its type, label schema, direct
// children, and scrape-time samplers.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	order    []string       // child keys in creation order
	samplers []func() []Sample
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use. Registering
// a name twice with the same type and label schema returns the same
// family, so independent components can contribute samples to one family.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// onScrape hooks run at the top of WriteText, before any family
	// lock is taken, so they may freely update metrics (runtime gauges
	// pumped from runtime.ReadMemStats live here).
	scrapeMu sync.Mutex
	onScrape []func()
}

// OnScrape registers a hook that runs at the start of every WriteText
// (i.e. every /metrics scrape), before rendering. Hooks refresh gauges
// whose source is pull-based — runtime stats, /proc readings — without
// a background goroutine.
func (r *Registry) OnScrape(fn func()) {
	r.scrapeMu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.scrapeMu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the named family, creating it on first use and panicking
// on a type or label-schema conflict — conflicting registrations are
// programming errors, caught in any test that scrapes.
func (r *Registry) lookup(name, help, typ string, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:       name,
			help:       help,
			typ:        typ,
			labelNames: append([]string(nil), labelNames...),
			buckets:    append([]float64(nil), buckets...),
			children:   make(map[string]any),
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
			name, typ, labelNames, f.typ, f.labelNames))
	}
	for i := range labelNames {
		if f.labelNames[i] != labelNames[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v",
				name, labelNames, f.labelNames))
		}
	}
	return f
}

// child returns the family's metric for the given label values, creating
// it with mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		m = mk()
		f.children[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// labelKey joins label values unambiguously.
func labelKey(values []string) string { return strings.Join(values, "\x00") }

// Counter returns the unlabeled counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labelNames, nil)}
}

// CounterVec hands out per-label-value counters of one family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labelNames, nil)}
}

// GaugeVec hands out per-label-value gauges of one family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name and
// bucket bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labelNames, buckets)}
}

// HistogramVec hands out per-label-value histograms of one family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.child(values, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// SampleCounters registers a scrape-time sampler contributing counter
// samples to the named family. Several samplers may feed one family (each
// should emit distinct label values).
func (r *Registry) SampleCounters(name, help string, labelNames []string, fn func() []Sample) {
	r.sample(name, help, typeCounter, labelNames, fn)
}

// SampleGauges registers a scrape-time sampler contributing gauge samples
// to the named family.
func (r *Registry) SampleGauges(name, help string, labelNames []string, fn func() []Sample) {
	r.sample(name, help, typeGauge, labelNames, fn)
}

func (r *Registry) sample(name, help, typ string, labelNames []string, fn func() []Sample) {
	f := r.lookup(name, help, typ, labelNames, nil)
	f.mu.Lock()
	f.samplers = append(f.samplers, fn)
	f.mu.Unlock()
}

// WriteText renders every family in the Prometheus text exposition
// format, sorted by family name.
func (r *Registry) WriteText(w io.Writer) error {
	r.scrapeMu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.scrapeMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// render appends the family's exposition lines.
func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	samplers := append([]func() []Sample(nil), f.samplers...)
	f.mu.Unlock()

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, key := range keys {
		values := labelValues(key, len(f.labelNames))
		switch m := children[i].(type) {
		case *Counter:
			writeSample(b, f.name, "", f.labelNames, values, "", float64(m.Value()))
		case *Gauge:
			writeSample(b, f.name, "", f.labelNames, values, "", m.Value())
		case *Histogram:
			m.render(b, f.name, f.labelNames, values)
		}
	}
	for _, fn := range samplers {
		for _, s := range fn() {
			writeSample(b, f.name, "", f.labelNames, s.Labels, "", s.Value)
		}
	}
}

// labelValues splits a child key back into label values.
func labelValues(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\x00", n)
}

// render appends the histogram's bucket/sum/count lines.
func (h *Histogram) render(b *strings.Builder, name string, labelNames, values []string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name, "_bucket", labelNames, values,
			formatFloat(bound), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name, "_bucket", labelNames, values, "+Inf", float64(cum))
	writeSample(b, name, "_sum", labelNames, values, "", h.Sum())
	writeSample(b, name, "_count", labelNames, values, "", float64(h.Count()))
}

// writeSample appends one exposition line; le, when non-empty, is added as
// the histogram bucket label.
func writeSample(b *strings.Builder, name, suffix string, labelNames, values []string, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labelNames) > 0 || le != "" {
		b.WriteByte('{')
		sep := false
		for i, ln := range labelNames {
			if sep {
				b.WriteByte(',')
			}
			sep = true
			val := ""
			if i < len(values) {
				val = values[i]
			}
			fmt.Fprintf(b, "%s=%q", ln, escapeLabel(val))
		}
		if le != "" {
			if sep {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "le=%q", le)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.MaxFloat64 || math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
