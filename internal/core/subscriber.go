package core

import (
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
)

// proxySubscriber adapts the proxy to the pubsub.Subscriber interface,
// funneling broker deliveries through the proxy's scheduler so they are
// serialized with timer callbacks and device requests.
type proxySubscriber struct {
	p *Proxy
}

var _ pubsub.Subscriber = proxySubscriber{}

// Deliver routes a broker delivery into the NOTIFICATION handler.
func (s proxySubscriber) Deliver(n *msg.Notification) {
	s.p.sched.Run(func() { s.p.Notify(n) })
}

// DeliverRankUpdate routes a rank revision into the rank-change handler.
func (s proxySubscriber) DeliverRankUpdate(u msg.RankUpdate) {
	s.p.sched.Run(func() { s.p.ApplyRankUpdate(u) })
}

// Subscriber returns the pubsub-facing adapter for this proxy. Register it
// with a broker via Subscribe to start collecting notifications on the
// device's behalf.
func (p *Proxy) Subscriber() pubsub.Subscriber { return proxySubscriber{p: p} }
