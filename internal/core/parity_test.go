package core

// Regression tests for the batch/quiet-window policy-parity fixes: the
// batch forwarding path must agree with the per-event Figure 7 semantics,
// failed picks must return to the queue they came from, and the §2.2
// daily on-line cap must be charged when an event is actually pushed, not
// when it is deferred by a quiet window.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lasthop/internal/msg"
)

// fakeBatchDevice is a BatchForwarder with all-or-nothing batches; like
// fakeDevice it records deliveries and can be told to fail.
type fakeBatchDevice struct {
	fakeDevice
}

var _ BatchForwarder = (*fakeBatchDevice)(nil)

func (d *fakeBatchDevice) ForwardBatch(batch []*msg.Notification) error {
	if d.fail {
		return errors.New("link failure injected")
	}
	d.received = append(d.received, batch...)
	return nil
}

// parityDriver runs one proxy (per-event or batch) through a scripted
// scenario.
type parityDriver struct {
	sched   testClock
	proxy   *Proxy
	setFail func(bool)
	ids     func() []msg.ID
}

func newParityDriver(t *testing.T, cfg TopicConfig, batch bool) *parityDriver {
	t.Helper()
	sched := newTestClock(t0)
	var fwd Forwarder
	var setFail func(bool)
	var ids func() []msg.ID
	if batch {
		dev := &fakeBatchDevice{}
		fwd, setFail, ids = dev, func(f bool) { dev.fail = f }, dev.ids
	} else {
		dev := &fakeDevice{}
		fwd, setFail, ids = dev, func(f bool) { dev.fail = f }, dev.ids
	}
	p := New(sched, fwd)
	if err := p.AddTopic(cfg); err != nil {
		t.Fatalf("AddTopic: %v", err)
	}
	return &parityDriver{sched: sched, proxy: p, setFail: setFail, ids: ids}
}

func (d *parityDriver) note(id msg.ID, rank float64) *msg.Notification {
	return &msg.Notification{ID: id, Topic: "t", Rank: rank, Published: d.sched.Now()}
}

// TestBatchForwarderEquivalence drives a per-event and a batch proxy
// through the same scenario with injected link failures and asserts they
// forward the same IDs in the same order. Before the origin-queue fix the
// batch path re-queued failed prefetch picks into outgoing, so after
// recovery it delivered stale picks instead of the better-ranked arrivals
// the per-event path chooses.
func TestBatchForwarderEquivalence(t *testing.T) {
	script := func(d *parityDriver) {
		// Plain deliveries up to the prefetch limit, then a read that
		// frees the client queue.
		d.proxy.Notify(d.note("p1", 5))
		d.proxy.Notify(d.note("p2", 3))
		if err := d.proxy.Read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 2}); err != nil {
			panic(err)
		}
		// An outage queues two events in the prefetch stage.
		d.proxy.SetNetwork(false)
		d.proxy.Notify(d.note("b9", 9))
		d.proxy.Notify(d.note("a1", 1))
		// The link comes back but the device rejects the first
		// transmission: the picks must return to their origin queues.
		d.setFail(true)
		d.proxy.SetNetwork(true)
		// A better event arrives while the proxy considers the network
		// down, then the device recovers.
		d.proxy.Notify(d.note("h8", 8))
		d.setFail(false)
		d.proxy.SetNetwork(true)
		// A final read drains what the prefetch limit held back.
		if err := d.proxy.Read(msg.ReadRequest{Topic: "t", N: 4, QueueSize: 2}); err != nil {
			panic(err)
		}
	}

	perEvent := newParityDriver(t, BufferConfig("t", 2, 2), false)
	batch := newParityDriver(t, BufferConfig("t", 2, 2), true)
	script(perEvent)
	script(batch)

	got, want := batch.ids(), perEvent.ids()
	if len(got) != len(want) {
		t.Fatalf("batch forwarded %v, per-event forwarded %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forwarded-ID sequences diverge at %d: batch %v, per-event %v", i, got, want)
		}
	}
	sb, _ := batch.proxy.Snapshot("t")
	se, _ := perEvent.proxy.Snapshot("t")
	if sb.QueueSizeView != se.QueueSizeView || sb.Outgoing != se.Outgoing || sb.Prefetch != se.Prefetch {
		t.Errorf("final state diverges: batch %+v, per-event %+v", sb, se)
	}
	if bs, es := batch.proxy.Stats(), perEvent.proxy.Stats(); bs.Forwards != es.Forwards {
		t.Errorf("Forwards diverge: batch %d, per-event %d", bs.Forwards, es.Forwards)
	}
}

// TestBatchFailureReturnsPicksToOriginQueues pins the fix directly: after
// a failed batch, outgoing picks are back in outgoing and prefetch picks
// back in prefetch.
func TestBatchFailureReturnsPicksToOriginQueues(t *testing.T) {
	d := newParityDriver(t, BufferConfig("t", 2, 2), true)
	d.proxy.SetNetwork(false)
	d.proxy.Notify(d.note("x", 4))
	d.proxy.Notify(d.note("y", 6))
	d.setFail(true)
	d.proxy.SetNetwork(true)
	s, _ := d.proxy.Snapshot("t")
	if s.Outgoing != 0 || s.Prefetch != 2 {
		t.Fatalf("failed prefetch picks promoted: outgoing=%d prefetch=%d, want 0/2", s.Outgoing, s.Prefetch)
	}
}

// TestBatchFailureRetunedLimitRegression: a failed batch of prefetch
// picks, a read that retunes the prefetch limit down, then recovery. The
// pre-fix promotion to outgoing made the drain unconditional, driving the
// client-queue view past the retuned limit.
func TestBatchFailureRetunedLimitRegression(t *testing.T) {
	cfg := TopicConfig{Name: "t", Policy: Buffer, ReadSize: 1, PrefetchLimit: 4, AutoPrefetchLimit: true}
	d := newParityDriver(t, cfg, true)
	d.proxy.SetNetwork(false)
	for i, rank := range []float64{4, 3, 2, 1} {
		d.proxy.Notify(d.note(msg.ID(fmt.Sprintf("e%d", i)), rank))
	}
	// The device rejects the recovery batch of four prefetch picks.
	d.setFail(true)
	d.proxy.SetNetwork(true)
	// A read retunes the limit down to 2*mean(read sizes) = 2.
	if err := d.proxy.Read(msg.ReadRequest{Topic: "t", N: 1, QueueSize: 0}); err != nil {
		t.Fatal(err)
	}
	d.setFail(false)
	d.proxy.SetNetwork(true)
	s, _ := d.proxy.Snapshot("t")
	if s.PrefetchLimit != 2 {
		t.Fatalf("retuned prefetch limit = %d, want 2", s.PrefetchLimit)
	}
	if s.QueueSizeView > s.PrefetchLimit {
		t.Fatalf("client-queue view %d exceeds prefetch limit %d after recovery", s.QueueSizeView, s.PrefetchLimit)
	}
}

// TestBufferBatchPrefetchLimitProperty: under random arrivals, reads,
// outages, and injected failures, the batch path must track the per-event
// Figure 7 semantics step for step, and its opportunistic refill must
// never grow the client-queue view past the prefetch limit. The view may
// legitimately exceed the limit only by draining user-promoted outgoing
// events (which the per-event path drains identically), so the absolute
// bound is asserted whenever the outgoing queue was empty before the op.
func TestBufferBatchPrefetchLimitProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := TopicConfig{Name: "t", Policy: Buffer, ReadSize: 2, PrefetchLimit: 8, AutoPrefetchLimit: true}
		batch := newParityDriver(t, cfg, true)
		perEvent := newParityDriver(t, cfg, false)
		drivers := []*parityDriver{batch, perEvent}
		snap := func(d *parityDriver) TopicSnapshot {
			s, _ := d.proxy.Snapshot("t")
			return s
		}
		nextID := 0
		for op := 0; op < 300; op++ {
			before := snap(batch)
			isRead := false
			kind := rng.Intn(10)
			n := 1 + rng.Intn(3)
			rank := rng.Float64() * 10
			hours := time.Duration(6+rng.Intn(24)) * time.Hour
			for _, d := range drivers {
				switch kind {
				case 0, 1, 2, 3: // arrival
					d.proxy.Notify(d.note(msg.ID(fmt.Sprintf("n%d", nextID)), rank))
				case 4: // outage
					d.proxy.SetNetwork(false)
				case 5: // recovery
					d.setFail(false)
					d.proxy.SetNetwork(true)
				case 6: // device rejects the next transmission attempt
					d.setFail(true)
					d.proxy.SetNetwork(true)
					d.setFail(false)
				case 7, 8: // user read
					isRead = true
					qs := snap(d).QueueSizeView
					if err := d.proxy.Read(msg.ReadRequest{Topic: "t", N: n, QueueSize: qs}); err != nil {
						t.Fatal(err)
					}
				case 9: // time passes
					d.sched.Advance(hours)
				}
			}
			if kind < 4 {
				nextID++
			}
			sb, se := snap(batch), snap(perEvent)
			if sb.QueueSizeView != se.QueueSizeView || sb.Outgoing != se.Outgoing ||
				sb.Prefetch != se.Prefetch || sb.PrefetchLimit != se.PrefetchLimit {
				t.Fatalf("seed %d op %d (kind %d): batch state %+v diverges from per-event %+v",
					seed, op, kind, sb, se)
			}
			if !isRead && before.Outgoing == 0 && sb.QueueSizeView > sb.PrefetchLimit && sb.QueueSizeView > before.QueueSizeView {
				t.Fatalf("seed %d op %d: batch refill grew client-queue view to %d past prefetch limit %d",
					seed, op, sb.QueueSizeView, sb.PrefetchLimit)
			}
		}
		bids, eids := batch.ids(), perEvent.ids()
		if len(bids) != len(eids) {
			t.Fatalf("seed %d: batch forwarded %d, per-event %d", seed, len(bids), len(eids))
		}
		for i := range eids {
			if bids[i] != eids[i] {
				t.Fatalf("seed %d: forwarded sequences diverge at %d: %v vs %v", seed, i, bids[i], eids[i])
			}
		}
	}
}

// TestQuietReleaseCrossesMidnightChargesNewDay: an event held through a
// quiet window that ends past midnight must draw on the new day's on-line
// budget. Before the fix the cap was charged on the arrival day, so the
// spent budget of yesterday silently demoted the release to the staging
// path.
func TestQuietReleaseCrossesMidnightChargesNewDay(t *testing.T) {
	cfg := OnlineConfig("t")
	cfg.DailyOnlineCap = 1
	cfg.Quiet = []QuietWindow{{Start: 23 * time.Hour, End: 24 * time.Hour}}
	f := newFixture(t, cfg)

	// Noon: the day's single on-line delivery.
	f.sched.Advance(12 * time.Hour)
	f.proxy.Notify(f.note("a", 5, 0))
	if got := f.dev.ids(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("day-0 delivery: %v", got)
	}
	// 23:30, inside the quiet window: deferred to midnight.
	f.sched.Advance(11*time.Hour + 30*time.Minute)
	f.proxy.Notify(f.note("b", 5, 0))
	if len(f.dev.received) != 1 {
		t.Fatalf("quiet arrival delivered immediately: %v", f.dev.ids())
	}
	// Midnight: the release crosses into a fresh budget and must be
	// delivered on-line.
	f.sched.Advance(30 * time.Minute)
	if got := f.dev.ids(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("release crossing midnight not delivered on-line: %v", got)
	}
	// The release consumed the new day's budget: the next arrival is
	// capped onto the staging path.
	f.proxy.Notify(f.note("c", 5, 0))
	if len(f.dev.received) != 2 {
		t.Fatalf("cap not charged at release: %v", f.dev.ids())
	}
}

// TestQuietDeferralDoesNotChargeDailyCap: an event that is deferred by a
// quiet window and then retracted before release must not consume the
// day's on-line budget.
func TestQuietDeferralDoesNotChargeDailyCap(t *testing.T) {
	cfg := OnlineConfig("t")
	cfg.DailyOnlineCap = 1
	cfg.RankThreshold = 2
	cfg.Quiet = []QuietWindow{{Start: time.Hour, End: 2 * time.Hour}}
	f := newFixture(t, cfg)

	// 01:30, inside the window: "a" is deferred.
	f.sched.Advance(90 * time.Minute)
	f.proxy.Notify(f.note("a", 5, 0))
	// Its rank is retracted before the window ends; it will never be
	// delivered and must not have spent the budget.
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 1})
	f.sched.Advance(time.Hour)
	if len(f.dev.received) != 0 {
		t.Fatalf("retracted deferral delivered: %v", f.dev.ids())
	}
	// 02:30: the budget must still be available.
	f.proxy.Notify(f.note("b", 5, 0))
	if got := f.dev.ids(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("daily budget consumed by an undelivered deferral: %v", got)
	}
}

// TestQuietWindowWrapAroundContains covers the midnight boundary of an
// overnight window (22:00-07:00).
func TestQuietWindowWrapAroundContains(t *testing.T) {
	w := QuietWindow{Start: 22 * time.Hour, End: 7 * time.Hour}
	if err := w.Validate(); err != nil {
		t.Fatalf("overnight window rejected: %v", err)
	}
	at := func(h, m int) time.Time {
		return time.Date(2026, 1, 15, h, m, 0, 0, time.UTC)
	}
	cases := []struct {
		t    time.Time
		in   bool
		left time.Duration
	}{
		{at(21, 59), false, 0},
		{at(22, 0), true, 9 * time.Hour},
		{at(23, 30), true, 7*time.Hour + 30*time.Minute},
		{at(0, 0), true, 7 * time.Hour},
		{at(6, 59), true, time.Minute},
		{at(7, 0), false, 0},
		{at(12, 0), false, 0},
	}
	for _, c := range cases {
		in, left := w.contains(c.t)
		if in != c.in || left != c.left {
			t.Errorf("contains(%v) = %v, %v; want %v, %v", c.t, in, left, c.in, c.left)
		}
	}
}

// TestOvernightQuietWindowDelivery exercises the wrap-around window
// end-to-end: both legs defer, and the evening leg releases at the
// window's end the next morning.
func TestOvernightQuietWindowDelivery(t *testing.T) {
	cfg := OnlineConfig("t")
	cfg.Quiet = []QuietWindow{{Start: 22 * time.Hour, End: 7 * time.Hour}}
	f := newFixture(t, cfg)

	// t0 is midnight: inside the morning leg.
	f.proxy.Notify(f.note("night", 5, 0))
	if len(f.dev.received) != 0 {
		t.Fatalf("morning-leg arrival delivered: %v", f.dev.ids())
	}
	f.sched.Advance(7 * time.Hour)
	if got := f.dev.ids(); len(got) != 1 || got[0] != "night" {
		t.Fatalf("morning-leg release: %v", got)
	}
	// Midday is outside the window.
	f.sched.Advance(5 * time.Hour)
	f.proxy.Notify(f.note("noon", 5, 0))
	if got := f.dev.ids(); len(got) != 2 || got[1] != "noon" {
		t.Fatalf("midday arrival not delivered: %v", got)
	}
	// 23:00 is the evening leg; release is 07:00 the next morning.
	f.sched.Advance(11 * time.Hour)
	f.proxy.Notify(f.note("late", 5, 0))
	if len(f.dev.received) != 2 {
		t.Fatalf("evening-leg arrival delivered: %v", f.dev.ids())
	}
	f.sched.Advance(7 * time.Hour) // 06:00: still quiet
	if len(f.dev.received) != 2 {
		t.Fatalf("released before the window ended: %v", f.dev.ids())
	}
	f.sched.Advance(time.Hour) // 07:00
	if got := f.dev.ids(); len(got) != 3 || got[2] != "late" {
		t.Fatalf("evening-leg release: %v", got)
	}
}
