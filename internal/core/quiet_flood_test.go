package core

import (
	"fmt"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

// TestQuietReleaseFloodAtSlotBoundary pins the quiet-window release path
// under a flood, on the real timing wheel, at a slot-wrap boundary. t0 is
// midnight, the wheel ticks at 1s, and the quiet window ends at the next
// midnight: release tick 86400 is ≡ 0 mod 64, so every deferred timer
// reaches level 0 by an outer-wheel cascade landing exactly on the tick
// under test. The assertions guard three separate failure modes:
//
//   - cascade coalescing or late re-arm: nothing may release one tick
//     before midnight, and *everything* must release at the midnight tick
//     itself, not a tick (or a cascade) later;
//   - cap accounting: the daily cap is charged once per released note at
//     release time, against the delivery day — the arrival day's budget is
//     already spent when the flood arrives, so a defer-time (or
//     arrival-day) charge would release nothing;
//   - exactly-once release: each flooded note surfaces exactly once, as
//     either an on-line delivery or a staged overflow, never both.
func TestQuietReleaseFloodAtSlotBoundary(t *testing.T) {
	const (
		dailyCap = 10
		batches  = 6
		perBatch = 333
		flood    = batches * perBatch // 1998 deferred notes
	)

	wheel := simtime.NewWheel(t0, time.Second)
	dev := &fakeDevice{}
	p := New(wheel, dev)
	cfg := OnlineConfig("t")
	cfg.DailyOnlineCap = dailyCap
	cfg.Quiet = []QuietWindow{{Start: 22 * time.Hour, End: 24 * time.Hour}}
	if err := p.AddTopic(cfg); err != nil {
		t.Fatal(err)
	}
	snap := func() TopicSnapshot {
		s, ok := p.Snapshot("t")
		if !ok {
			t.Fatal("topic t missing")
		}
		return s
	}

	// Exhaust day 0's on-line budget in the afternoon. A bug that charges
	// the cap when the flood is deferred — or against the arrival day —
	// would find the budget empty and release nothing at midnight.
	wheel.Advance(12 * time.Hour)
	for i := 0; i < dailyCap; i++ {
		p.Notify(&msg.Notification{ID: msg.ID(fmt.Sprintf("day0-%d", i)), Topic: "t", Rank: 5, Published: wheel.Now()})
	}
	if len(dev.received) != dailyCap {
		t.Fatalf("day-0 warmup delivered %d, want %d", len(dev.received), dailyCap)
	}
	p.Notify(&msg.Notification{ID: "day0-over", Topic: "t", Rank: 5, Published: wheel.Now()})
	if s := snap(); s.Prefetch != 1 {
		t.Fatalf("day-0 overflow: prefetch = %d, want 1 (cap not exhausted?)", s.Prefetch)
	}
	dev.received = nil
	stagedBase := 1

	// Flood the quiet window from spread-out instants: every batch defers
	// over a different distance to the same release tick, so the timers
	// enter the wheel in different slots and levels and must all converge
	// on tick 86400 by cascade.
	offsets := []time.Duration{
		22 * time.Hour,
		22*time.Hour + time.Second,
		22*time.Hour + 59*time.Minute + 59*time.Second,
		23 * time.Hour,
		23*time.Hour + 30*time.Minute,
		23*time.Hour + 59*time.Minute + 59*time.Second,
	}
	sent := 0
	for b, off := range offsets {
		wheel.Advance(t0.Add(off).Sub(wheel.Now()))
		for i := 0; i < perBatch; i++ {
			p.Notify(&msg.Notification{ID: msg.ID(fmt.Sprintf("f%d-%d", b, i)), Topic: "t", Rank: 5, Published: wheel.Now()})
			sent++
		}
	}
	if sent != flood {
		t.Fatalf("sent %d flood notes, want %d", sent, flood)
	}
	if s := snap(); s.Delayed != flood || s.Outgoing != 0 {
		t.Fatalf("mid-window: delayed = %d outgoing = %d, want %d and 0", s.Delayed, s.Outgoing, flood)
	}

	// One tick before midnight: not a single early release.
	wheel.Advance(t0.Add(24*time.Hour - time.Second).Sub(wheel.Now()))
	if len(dev.received) != 0 {
		t.Fatalf("%d notes released a tick before the window end", len(dev.received))
	}
	if s := snap(); s.Delayed != flood {
		t.Fatalf("one tick early: delayed = %d, want %d", s.Delayed, flood)
	}

	// The midnight tick: the whole flood resolves in this single tick —
	// dailyCap on-line deliveries charged to the new day, the rest staged.
	wheel.Advance(time.Second)
	if len(dev.received) != dailyCap {
		t.Fatalf("midnight tick delivered %d, want %d (cap of the delivery day)", len(dev.received), dailyCap)
	}
	s := snap()
	if s.Delayed != 0 {
		t.Fatalf("midnight tick left %d notes delayed (cascade re-armed a tick late?)", s.Delayed)
	}
	if want := stagedBase + flood - dailyCap; s.Prefetch != want {
		t.Fatalf("midnight tick staged %d notes, want %d", s.Prefetch-stagedBase, want-stagedBase)
	}
	seen := make(map[msg.ID]bool, dailyCap)
	for _, n := range dev.received {
		if seen[n.ID] {
			t.Fatalf("note %s delivered twice", n.ID)
		}
		seen[n.ID] = true
	}

	// The released notes spent the new day's entire budget: the next
	// arrival (outside the window now) must overflow to staging. An
	// under-charged release would let it through on-line.
	wheel.Advance(time.Second)
	p.Notify(&msg.Notification{ID: "day1-probe", Topic: "t", Rank: 5, Published: wheel.Now()})
	if len(dev.received) != dailyCap {
		t.Fatalf("post-flood probe delivered on-line (%d total deliveries): the flood under-charged the cap", len(dev.received))
	}
	if got := snap().Prefetch; got != stagedBase+flood-dailyCap+1 {
		t.Fatalf("post-flood probe: prefetch = %d, want %d", got, stagedBase+flood-dailyCap+1)
	}
}

// TestQuietReleaseRedeferAcrossWheelLevels covers the re-defer branch of
// quietTimeout on the real wheel: a release that fires exactly at the
// start of a second quiet window must re-arm for that window's end — over
// another multi-level deferral span (2h crosses the level-1 horizon of
// 64×64 ticks = 4096s) — and fire at its exact tick, not inside the
// window and not a cascade late.
func TestQuietReleaseRedeferAcrossWheelLevels(t *testing.T) {
	wheel := simtime.NewWheel(t0, time.Second)
	dev := &fakeDevice{}
	p := New(wheel, dev)
	cfg := OnlineConfig("t")
	// Back-to-back windows: the first's release tick (03:00:00) is the
	// second's first quiet instant, so the release must re-defer.
	cfg.Quiet = []QuietWindow{
		{Start: 1 * time.Hour, End: 3 * time.Hour},
		{Start: 3 * time.Hour, End: 5 * time.Hour},
	}
	if err := p.AddTopic(cfg); err != nil {
		t.Fatal(err)
	}

	wheel.Advance(2 * time.Hour)
	p.Notify(&msg.Notification{ID: "deep", Topic: "t", Rank: 5, Published: wheel.Now()})

	// The 03:00:00 release fires into the second window: re-deferred,
	// nothing delivered.
	wheel.Advance(time.Hour)
	if len(dev.received) != 0 {
		t.Fatalf("delivered %d notes into the second quiet window", len(dev.received))
	}
	if s, _ := p.Snapshot("t"); s.Delayed != 1 {
		t.Fatalf("re-defer lost the note: delayed = %d, want 1", s.Delayed)
	}

	// One tick before the second window's end: still held.
	wheel.Advance(2*time.Hour - time.Second)
	if len(dev.received) != 0 {
		t.Fatalf("released %d notes a tick before the second window end", len(dev.received))
	}
	wheel.Advance(time.Second)
	if len(dev.received) != 1 {
		t.Fatalf("re-deferred release delivered %d notes at its exact tick, want 1", len(dev.received))
	}
}
