package core

import (
	"strings"
	"testing"
	"time"

	"lasthop/internal/device"
	"lasthop/internal/link"
	"lasthop/internal/msg"
)

// flapLink forwards proxy pushes into a real device.Device over a
// link.Link, and can be armed to take the link down right before the
// k-th delivery — reproducing a radio that dies in the middle of a READ
// response.
type flapLink struct {
	dev       *device.Device
	lnk       *link.Link
	dropAfter int // take the link down before this many successful forwards; 0 = never
	forwards  int
}

var _ Forwarder = (*flapLink)(nil)

func (f *flapLink) Forward(n *msg.Notification) error {
	if f.dropAfter > 0 && f.forwards >= f.dropAfter {
		f.dropAfter = 0
		f.lnk.SetUp(false)
	}
	if err := f.dev.Receive(n); err != nil {
		return err
	}
	f.forwards++
	return nil
}

// TestLinkFlapMidRead drops the link in the middle of a READ response:
// the proxy must requeue the undelivered remainder, mark the network
// down, and replay the queue exactly once after the link returns. This
// is the wiring sim.Run uses, with the flap injected at the forwarder.
func TestLinkFlapMidRead(t *testing.T) {
	sched := newTestClock(t0)
	lnk := link.New(sched, true)
	fwd := &flapLink{lnk: lnk, dropAfter: 3}
	proxy := New(sched, fwd)
	if err := proxy.AddTopic(OnDemandConfig("t", 0)); err != nil {
		t.Fatal(err)
	}
	dev := device.New(sched, lnk, proxy, device.Config{})
	fwd.dev = dev

	ids := []msg.ID{"a", "b", "c", "d", "e", "f"}
	for i, id := range ids {
		proxy.Notify(&msg.Notification{ID: id, Topic: "t", Rank: float64(10 - i), Published: sched.Now()})
	}

	// The read relays to the proxy, which starts pushing the six staged
	// events; the link dies before the fourth crosses.
	batch1, err := dev.Read("t", 0)
	if err != nil {
		t.Fatalf("read during flap: %v", err)
	}
	if len(batch1) != 3 {
		t.Fatalf("read %d before the flap, want 3", len(batch1))
	}
	if lnk.Up() {
		t.Fatal("link should be down after the injected flap")
	}
	if proxy.NetworkUp() {
		t.Error("proxy did not notice the mid-read link loss")
	}

	// Stats must stay consistent: three pushes crossed, nothing vanished.
	ps, ds, ls := proxy.Stats(), dev.Stats(), lnk.Stats()
	if ps.Forwards != 3 {
		t.Errorf("proxy Forwards = %d, want 3", ps.Forwards)
	}
	if ds.Received != 3 || ds.ReadCount != 3 {
		t.Errorf("device Received = %d ReadCount = %d, want 3/3", ds.Received, ds.ReadCount)
	}
	if ls.MessagesDown != 3 || ls.MessagesUp != 1 || ls.Transitions != 1 {
		t.Errorf("link stats = %+v, want 3 down / 1 up / 1 transition", ls)
	}
	snap := snapshotOf(t, proxy, "t")
	if snap.Outgoing != 3 {
		t.Errorf("outgoing = %d after flap, want the 3 undelivered requeued", snap.Outgoing)
	}
	if snap.Forwarded != 3 {
		t.Errorf("forwarded = %d after flap, want 3", snap.Forwarded)
	}

	// Reads while down are served locally (nothing unread is cached, so
	// they are empty) and must not corrupt the queues.
	if empty, err := dev.Read("t", 0); err != nil || len(empty) != 0 {
		t.Fatalf("read while down = %d, %v; want empty", len(empty), err)
	}

	// Five seconds later the radio returns; the outage is accounted and
	// the requeued remainder is replayed exactly once.
	sched.Advance(5 * time.Second)
	lnk.SetUp(true)
	proxy.SetNetwork(true)

	batch2, err := dev.Read("t", 0)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	seen := msg.NewIDSet()
	for _, n := range append(batch1, batch2...) {
		if !seen.Add(n.ID) {
			t.Errorf("notification %s delivered twice across the flap", n.ID)
		}
	}
	for _, id := range ids {
		if !seen.Contains(id) {
			t.Errorf("notification %s lost across the flap", id)
		}
	}

	ps, ds, ls = proxy.Stats(), dev.Stats(), lnk.Stats()
	if ps.Forwards != 6 {
		t.Errorf("proxy Forwards = %d after recovery, want 6", ps.Forwards)
	}
	if ds.Received != 6 || ds.ReadCount != 6 {
		t.Errorf("device Received = %d ReadCount = %d after recovery, want 6/6", ds.Received, ds.ReadCount)
	}
	if ls.Transitions != 2 || ls.Downtime != 5*time.Second {
		t.Errorf("link Transitions = %d Downtime = %v, want 2 / 5s", ls.Transitions, ls.Downtime)
	}
	snap = snapshotOf(t, proxy, "t")
	if snap.Outgoing != 0 {
		t.Errorf("outgoing = %d after replay, want 0", snap.Outgoing)
	}
	if snap.Forwarded != 6 {
		t.Errorf("forwarded = %d after replay, want 6", snap.Forwarded)
	}
}

// TestLinkFlapRepeated flaps the link on every single delivery: each READ
// crosses exactly one notification before the radio dies again. However
// hostile the schedule, every notification must arrive exactly once.
func TestLinkFlapRepeated(t *testing.T) {
	sched := newTestClock(t0)
	lnk := link.New(sched, true)
	fwd := &flapLink{lnk: lnk}
	proxy := New(sched, fwd)
	if err := proxy.AddTopic(OnDemandConfig("t", 0)); err != nil {
		t.Fatal(err)
	}
	dev := device.New(sched, lnk, proxy, device.Config{})
	fwd.dev = dev

	const total = 8
	for i := 0; i < total; i++ {
		proxy.Notify(&msg.Notification{ID: msg.ID(strings.Repeat("x", i+1)), Topic: "t", Rank: float64(i), Published: sched.Now()})
	}

	seen := msg.NewIDSet()
	for round := 0; round < 2*total && seen.Len() < total; round++ {
		fwd.dropAfter = fwd.forwards + 1 // next delivery is the last before the flap
		batch, err := dev.Read("t", 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, n := range batch {
			if !seen.Add(n.ID) {
				t.Fatalf("round %d: %s delivered twice", round, n.ID)
			}
		}
		sched.Advance(time.Second)
		lnk.SetUp(true)
		proxy.SetNetwork(true)
	}
	if seen.Len() != total {
		t.Fatalf("delivered %d distinct notifications, want %d", seen.Len(), total)
	}
	if ds := dev.Stats(); ds.Received != total || ds.ReadCount != total {
		t.Errorf("device Received = %d ReadCount = %d, want %d/%d", ds.Received, ds.ReadCount, total, total)
	}
}

func snapshotOf(t *testing.T, p *Proxy, topic string) TopicSnapshot {
	t.Helper()
	s, ok := p.Snapshot(topic)
	if !ok {
		t.Fatalf("topic %q missing", topic)
	}
	return s
}

// TestResumeRequeuesLostForwards covers the in-flight loss the wire layer
// reconciles at session resumption: a notification the proxy forwarded
// into a dying connection is in neither the device's have nor read set
// and must be re-queued while its content is still known.
func TestResumeRequeuesLostForwards(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.Notify(f.note("a", 3, time.Hour))
	f.proxy.Notify(f.note("b", 2, time.Hour))
	f.proxy.Notify(f.note("c", 1, time.Hour))
	if got := len(f.dev.received); got != 3 {
		t.Fatalf("forwarded %d online, want 3", got)
	}

	// The device reconnects reporting: b still queued, a read, c never
	// arrived — it died with the old connection.
	if err := f.proxy.Resume("t", msg.NewIDSet("b"), msg.NewIDSet("a")); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 4 || got[3] != "c" {
		t.Fatalf("deliveries after resume = %v, want c re-forwarded", got)
	}
	st := f.proxy.Stats()
	if st.Resumes != 1 || st.ResumeRequeued != 1 || st.ResumeLost != 0 {
		t.Errorf("resume stats = %+v, want 1 resume, 1 requeued, 0 lost", st)
	}
}

// TestResumeLostExpired: a forwarded-and-lost notification whose lifetime
// ran out during the outage is unrecoverable and counted as lost.
func TestResumeLostExpired(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.Notify(f.note("a", 3, time.Minute))
	f.sched.Advance(2 * time.Minute)

	if err := f.proxy.Resume("t", msg.NewIDSet(), msg.NewIDSet()); err != nil {
		t.Fatal(err)
	}
	if got := len(f.dev.received); got != 1 {
		t.Fatalf("expired notification re-forwarded: %v", f.dev.ids())
	}
	st := f.proxy.Stats()
	if st.ResumeLost != 1 || st.ResumeRequeued != 0 {
		t.Errorf("resume stats = %+v, want 1 lost, 0 requeued", st)
	}
}

// TestResumeReconcilesReadSet: IDs the user consumed offline are removed
// from the staging queues — they must never be transferred again — and
// the proxy's view of the client queue is reset to the device's report.
func TestResumeReconcilesReadSet(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 0))
	f.proxy.SetNetwork(false)
	f.proxy.Notify(f.note("a", 3, time.Hour))
	f.proxy.Notify(f.note("b", 2, time.Hour))
	if s := f.snapshot(t); s.Prefetch != 2 {
		t.Fatalf("prefetch = %d, want 2 staged during outage", s.Prefetch)
	}

	// The device read "a" from an earlier life of the session (for
	// example the proxy recovered from its journal and re-staged it).
	if err := f.proxy.Resume("t", msg.NewIDSet("b"), msg.NewIDSet("a")); err != nil {
		t.Fatal(err)
	}
	s := f.snapshot(t)
	if s.Prefetch != 1 {
		t.Errorf("prefetch = %d after resume, want the read ID removed", s.Prefetch)
	}
	if s.Forwarded != 1 {
		t.Errorf("forwarded = %d after resume, want the read ID marked", s.Forwarded)
	}
	if s.QueueSizeView != 1 {
		t.Errorf("queue size view = %d, want the device's report of 1", s.QueueSizeView)
	}
	if len(f.dev.received) != 0 {
		t.Errorf("resume transferred %v while the network is down", f.dev.ids())
	}
}

// TestResumeUnknownTopic: resuming a topic the proxy never subscribed to
// is an error, not a silent no-op.
func TestResumeUnknownTopic(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	err := f.proxy.Resume("ghost", msg.NewIDSet(), msg.NewIDSet())
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown-topic error naming the topic", err)
	}
}

// TestResumeDoesNotDoubleQueue: an event that is both in the forwarded
// set and already staged (requeued by a failed forward) must not be
// queued a second time by resumption.
func TestResumeDoesNotDoubleQueue(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.Notify(f.note("a", 3, time.Hour)) // forwarded successfully
	f.dev.fail = true
	f.proxy.Notify(f.note("a", 5, time.Hour)) // rank revision fails, requeued
	f.dev.fail = false
	if s := f.snapshot(t); s.Outgoing != 1 {
		t.Fatalf("outgoing = %d, want the failed revision requeued", s.Outgoing)
	}

	if err := f.proxy.Resume("t", msg.NewIDSet(), msg.NewIDSet()); err != nil {
		t.Fatal(err)
	}
	// Resumption found "a" forwarded-but-absent, but it is already
	// staged in outgoing: forwarding it once (now that the resume turned
	// the network back on conceptually) must deliver exactly one copy.
	f.proxy.SetNetwork(true)
	if s := f.snapshot(t); s.Outgoing != 0 {
		t.Errorf("outgoing = %d after resume, want drained", s.Outgoing)
	}
	count := 0
	for _, id := range f.dev.ids() {
		if id == "a" {
			count++
		}
	}
	if count != 2 { // initial forward + one replay, never a third
		t.Errorf("a delivered %d times, want 2", count)
	}
	if st := f.proxy.Stats(); st.ResumeRequeued != 0 {
		t.Errorf("ResumeRequeued = %d, want 0 (already staged)", st.ResumeRequeued)
	}
}
