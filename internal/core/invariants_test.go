package core

// White-box property tests: drive the proxy with random operation
// sequences and check the structural invariants of Figure 7's queue
// discipline after every step.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lasthop/internal/msg"
)

// checkInvariants asserts the proxy's structural invariants for a topic.
func checkInvariants(t *testing.T, p *Proxy, topic string, step int) {
	t.Helper()
	ts, ok := p.topics[topic]
	if !ok {
		t.Fatalf("step %d: topic state missing", step)
	}
	now := p.sched.Now()

	// 1. The three queues are pairwise disjoint.
	inOutgoing := ts.outgoing.IDSet()
	inPrefetch := ts.prefetch.IDSet()
	inHolding := ts.holding.IDSet()
	if x := inOutgoing.Intersect(inPrefetch); x.Len() != 0 {
		t.Fatalf("step %d: outgoing ∩ prefetch = %v", step, x)
	}
	if x := inOutgoing.Intersect(inHolding); x.Len() != 0 {
		t.Fatalf("step %d: outgoing ∩ holding = %v", step, x)
	}
	if x := inPrefetch.Intersect(inHolding); x.Len() != 0 {
		t.Fatalf("step %d: prefetch ∩ holding = %v", step, x)
	}

	// 2. Delayed events are in no queue.
	for id := range ts.delayed {
		if inOutgoing.Contains(id) || inPrefetch.Contains(id) || inHolding.Contains(id) {
			t.Fatalf("step %d: delayed event %s also queued", step, id)
		}
	}

	// 3. No expired event sits in any queue (expiry timers are exact in
	// virtual time).
	for _, q := range []*msg.IDSet{&inOutgoing, &inPrefetch, &inHolding} {
		for id := range *q {
			n, ok := ts.known[id]
			if !ok {
				t.Fatalf("step %d: queued event %s unknown", step, id)
			}
			if n.Expired(now) {
				t.Fatalf("step %d: expired event %s still queued", step, id)
			}
		}
	}

	// 4. Forwarded events never sit in prefetch or holding (outgoing is
	// allowed: rank-revision signals).
	for id := range ts.forwarded {
		if inPrefetch.Contains(id) || inHolding.Contains(id) {
			t.Fatalf("step %d: forwarded event %s still prefetchable", step, id)
		}
	}

	// 5. Every queued event is remembered by the history.
	for _, set := range []msg.IDSet{inOutgoing, inPrefetch, inHolding} {
		for id := range set {
			if !ts.history.Contains(id) {
				t.Fatalf("step %d: queued event %s not in history", step, id)
			}
		}
	}

	// 6. Below-threshold events are never queued for prefetch; holding
	// and prefetch entries all meet the rank threshold.
	for _, set := range []msg.IDSet{inPrefetch, inHolding} {
		for id := range set {
			if ts.known[id].Rank < ts.cfg.RankThreshold {
				t.Fatalf("step %d: below-threshold event %s queued", step, id)
			}
		}
	}

	// 7. The queue-size view never goes negative.
	if ts.queueSize < 0 {
		t.Fatalf("step %d: negative queue view %d", step, ts.queueSize)
	}

	// 8. The network gate: with the network up and the Buffer policy,
	// the prefetch queue only retains events when the view is at the
	// limit (otherwise try_forwarding would have drained more).
	if p.networkUp && ts.cfg.Policy == Buffer && ts.prefetch.Len() > 0 && ts.queueSize < ts.prefetchLimit {
		t.Fatalf("step %d: prefetch stalled with room (view %d < limit %d, %d queued)",
			step, ts.queueSize, ts.prefetchLimit, ts.prefetch.Len())
	}
	// 9. With the network up the outgoing queue is always drained.
	if p.networkUp && ts.outgoing.Len() > 0 {
		t.Fatalf("step %d: outgoing not drained while network up", step)
	}
}

// applyRandomOp drives one random proxy input, returning the device's
// notion of its queue so reads can be plausible.
func applyRandomOp(t *testing.T, rng *rand.Rand, clock testClock, p *Proxy, dev *fakeDevice, next *int) {
	t.Helper()
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // arrival
		id := msg.ID(fmt.Sprintf("p%04d", *next))
		*next++
		n := &msg.Notification{
			ID: id, Topic: "t",
			Rank:      float64(rng.Intn(100)) / 10,
			Published: clock.Now(),
		}
		if rng.Intn(2) == 0 {
			n.Expires = clock.Now().Add(time.Duration(1+rng.Intn(5000)) * time.Second)
		}
		p.Notify(n)
	case 4: // rank revision of a random known event
		if *next > 0 {
			id := msg.ID(fmt.Sprintf("p%04d", rng.Intn(*next)))
			p.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: id, NewRank: float64(rng.Intn(100)) / 10})
		}
	case 5: // network flap
		p.SetNetwork(rng.Intn(2) == 0)
	case 6, 7: // device read with a plausible request
		have := len(dev.received)
		if have > 8 {
			have = 8
		}
		events := make([]msg.ID, 0, have)
		for _, n := range dev.received[len(dev.received)-have:] {
			events = append(events, n.ID)
		}
		req := msg.ReadRequest{Topic: "t", N: 8, QueueSize: len(events), ClientEvents: events}
		if err := p.Read(req); err != nil {
			t.Fatalf("read: %v", err)
		}
	case 8, 9: // time passes (expiry and delay timers fire)
		clock.Advance(time.Duration(rng.Intn(3600)) * time.Second)
	}
}

func TestProxyInvariantsUnderRandomOps(t *testing.T) {
	configs := map[string]TopicConfig{
		"online":    OnlineConfig("t"),
		"on-demand": OnDemandConfig("t", 8),
		"buffer":    BufferConfig("t", 8, 16),
		"rate":      RateConfig("t", 8),
		"unified":   UnifiedConfig("t", 8),
		"unified-threshold-delay": func() TopicConfig {
			cfg := UnifiedConfig("t", 8)
			cfg.RankThreshold = 3
			cfg.Delay = 5 * time.Minute
			return cfg
		}(),
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				clock := newTestClock(t0)
				dev := &fakeDevice{}
				p := New(clock, dev)
				if err := p.AddTopic(cfg); err != nil {
					t.Fatal(err)
				}
				next := 0
				for step := 0; step < 400; step++ {
					applyRandomOp(t, rng, clock, p, dev, &next)
					checkInvariants(t, p, "t", step)
				}
			}
		})
	}
}

// TestProxyInvariantsWithFailingDevice injects forward failures into the
// random workload; the invariants must hold through requeues and
// network-down transitions.
func TestProxyInvariantsWithFailingDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	clock := newTestClock(t0)
	dev := &fakeDevice{}
	p := New(clock, dev)
	if err := p.AddTopic(BufferConfig("t", 8, 16)); err != nil {
		t.Fatal(err)
	}
	next := 0
	for step := 0; step < 600; step++ {
		dev.fail = rng.Intn(5) == 0
		applyRandomOp(t, rng, clock, p, dev, &next)
		dev.fail = false
		// Invariants 8/9 assume forwarding succeeded; re-kick the
		// network to restore the drained state before checking.
		if p.NetworkUp() {
			p.SetNetwork(true)
		}
		checkInvariants(t, p, "t", step)
	}
}
