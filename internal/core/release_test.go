package core

import (
	"sync"
	"testing"
	"time"

	"lasthop/internal/msg"
)

// releaseLog counts releaser invocations per notification pointer, so the
// exactly-once contract is assertable per object (a double release is a
// double-Put in production; a missing one is a pool leak).
type releaseLog struct {
	mu     sync.Mutex
	counts map[*msg.Notification]int
}

func newReleaseLog() *releaseLog {
	return &releaseLog{counts: make(map[*msg.Notification]int)}
}

func (r *releaseLog) release(n *msg.Notification) {
	r.mu.Lock()
	r.counts[n]++
	r.mu.Unlock()
}

func (r *releaseLog) count(n *msg.Notification) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[n]
}

func (r *releaseLog) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := 0
	for _, c := range r.counts {
		t += c
	}
	return t
}

// TestReleaseOnArrivalDrops covers the ingress paths that drop a
// notification without remembering it: each must hand the reference to
// the releaser exactly once.
func TestReleaseOnArrivalDrops(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	log := newReleaseLog()
	f.proxy.SetReleaser(log.release)

	// Unknown topic: dropped immediately.
	ghost := &msg.Notification{ID: "g", Topic: "ghost", Rank: 5, Published: f.sched.Now()}
	f.proxy.Notify(ghost)
	if got := log.count(ghost); got != 1 {
		t.Errorf("unknown-topic drop released %d times, want 1", got)
	}

	// Seen-set re-arrival: the second copy is a rank revision carrier and
	// is dropped after its rank is read; the first copy stays retained.
	first := f.note("a", 5, time.Hour)
	f.proxy.Notify(first)
	dup := f.note("a", 2, time.Hour)
	f.proxy.Notify(dup)
	if got := log.count(dup); got != 1 {
		t.Errorf("seen-set duplicate released %d times, want 1", got)
	}
	if got := log.count(first); got != 0 {
		t.Errorf("retained original released %d times, want 0", got)
	}

	// Expired on arrival: rejected and dropped.
	dead := f.note("x", 5, time.Second)
	f.sched.Advance(2 * time.Second)
	f.proxy.Notify(dead)
	if got := log.count(dead); got != 1 {
		t.Errorf("expired-on-arrival drop released %d times, want 1", got)
	}

	// Terminal: removing the topic releases the retained original, once.
	if err := f.proxy.RemoveTopic("t"); err != nil {
		t.Fatal(err)
	}
	if got := log.count(first); got != 1 {
		t.Errorf("original released %d times after RemoveTopic, want 1", got)
	}
}

// TestReleaseAfterFigure7Expiry pins the lifetime of a notification that
// dies in a Figure 7 queue: the expiration timeout evicts it from the
// queues but the proxy still remembers the ID (and may emit trace events
// reading the retained object), so the pool reference is released at the
// terminal forget — exactly once, never at the expiry itself.
func TestReleaseAfterFigure7Expiry(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	log := newReleaseLog()
	f.proxy.SetReleaser(log.release)

	f.proxy.SetNetwork(false)
	n := f.note("e", 5, time.Second)
	f.proxy.Notify(n)
	f.sched.Advance(2 * time.Second) // expiration_timeout fires in-queue
	if got := f.proxy.Stats().Expirations; got != 1 {
		t.Fatalf("Expirations = %d, want 1", got)
	}
	if got := log.count(n); got != 0 {
		t.Errorf("released %d times at expiry, want 0 (still known)", got)
	}
	if err := f.proxy.RemoveTopic("t"); err != nil {
		t.Fatal(err)
	}
	if got := log.count(n); got != 1 {
		t.Errorf("released %d times after RemoveTopic, want 1", got)
	}
}

// TestReleaseAfterFailedBatchRequeue pins the failed-forward path: a
// batch rejected by the device is requeued with ownership retained (no
// release), delivered once the link returns, and released exactly once at
// the terminal drop.
func TestReleaseAfterFailedBatchRequeue(t *testing.T) {
	sched := newTestClock(t0)
	dev := &fakeBatchDevice{}
	p := New(sched, dev)
	if err := p.AddTopic(OnlineConfig("t")); err != nil {
		t.Fatal(err)
	}
	log := newReleaseLog()
	p.SetReleaser(log.release)

	dev.fail = true
	notes := make([]*msg.Notification, 3)
	for i, id := range []msg.ID{"a", "b", "c"} {
		notes[i] = &msg.Notification{ID: id, Topic: "t", Rank: 5, Published: sched.Now()}
		p.Notify(notes[i])
	}
	if got := log.total(); got != 0 {
		t.Fatalf("failed batch released %d notes, want 0 (requeued, ownership retained)", got)
	}

	dev.fail = false
	p.SetNetwork(true)
	if got := len(dev.received); got != 3 {
		t.Fatalf("delivered %d notes after the link came back, want 3", got)
	}
	if got := log.total(); got != 0 {
		t.Fatalf("delivered notes released %d times, want 0 (still known for revisions)", got)
	}

	if err := p.RemoveTopic("t"); err != nil {
		t.Fatal(err)
	}
	for _, n := range notes {
		if got := log.count(n); got != 1 {
			t.Errorf("note %s released %d times, want exactly 1", n.ID, got)
		}
	}
}
