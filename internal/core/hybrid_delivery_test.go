package core

// Tests for the §2.2 hybrid-delivery refinements: quiet windows, daily
// on-line caps, and on-demand interrupts.

import (
	"fmt"
	"testing"
	"time"

	"lasthop/internal/msg"
)

func TestInterruptRankPushesOnDemandContent(t *testing.T) {
	cfg := OnDemandConfig("t", 8)
	cfg.InterruptRank = 4.5
	f := newFixture(t, cfg)

	f.proxy.Notify(f.note("routine", 3, 0))
	if len(f.dev.received) != 0 {
		t.Fatal("routine on-demand content was pushed")
	}
	f.proxy.Notify(f.note("tornado", 4.9, 0))
	if got := f.dev.ids(); len(got) != 1 || got[0] != "tornado" {
		t.Fatalf("urgent content not pushed: %v", got)
	}
	// The routine message still waits for a read.
	if s := f.snapshot(t); s.Prefetch != 1 {
		t.Errorf("Prefetch = %d", s.Prefetch)
	}
}

func TestQuietWindowDefersDelivery(t *testing.T) {
	cfg := OnlineConfig("t")
	// Quiet between 09:00 and 10:00; t0 is midnight.
	cfg.Quiet = []QuietWindow{{Start: 9 * time.Hour, End: 10 * time.Hour}}
	f := newFixture(t, cfg)

	// 08:30: delivered immediately.
	f.sched.Advance(8*time.Hour + 30*time.Minute)
	f.proxy.Notify(f.note("before", 1, 0))
	if len(f.dev.received) != 1 {
		t.Fatal("delivery outside the window blocked")
	}
	// 09:15: held.
	f.sched.Advance(45 * time.Minute)
	f.proxy.Notify(f.note("during", 2, 0))
	if len(f.dev.received) != 1 {
		t.Fatal("delivered during the quiet window")
	}
	if s := f.snapshot(t); s.Delayed != 1 {
		t.Errorf("Delayed = %d", s.Delayed)
	}
	// 10:00: the window ends and the held message flows.
	f.sched.Advance(45 * time.Minute)
	if got := f.dev.ids(); len(got) != 2 || got[1] != "during" {
		t.Errorf("after window: %v", got)
	}
}

func TestQuietWindowExpiredWhileHeld(t *testing.T) {
	cfg := OnlineConfig("t")
	cfg.Quiet = []QuietWindow{{Start: 0, End: 2 * time.Hour}}
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("ephemeral", 5, 30*time.Minute))
	f.sched.Advance(3 * time.Hour)
	if len(f.dev.received) != 0 {
		t.Errorf("expired held message delivered: %v", f.dev.ids())
	}
}

func TestDailyOnlineCap(t *testing.T) {
	cfg := OnlineConfig("t")
	cfg.DailyOnlineCap = 2
	f := newFixture(t, cfg)

	for i := 0; i < 4; i++ {
		f.proxy.Notify(f.note(msg.ID(fmt.Sprintf("d0-%d", i)), float64(i), 0))
	}
	if len(f.dev.received) != 2 {
		t.Fatalf("day 0 pushed %d, want cap 2", len(f.dev.received))
	}
	// The overflow is readable on demand.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 8, QueueSize: 2}); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.received) != 4 {
		t.Errorf("overflow not served on read: %d", len(f.dev.received))
	}
	// A new day resets the budget.
	f.sched.Advance(24 * time.Hour)
	f.proxy.Notify(f.note("d1-0", 1, 0))
	if len(f.dev.received) != 5 {
		t.Errorf("day 1 budget not reset: %d", len(f.dev.received))
	}
}

func TestQuietWindowValidation(t *testing.T) {
	bad := []QuietWindow{
		{Start: -time.Hour, End: time.Hour},
		{Start: time.Hour, End: 25 * time.Hour},
		{Start: 25 * time.Hour, End: time.Hour},
		{Start: time.Hour, End: -time.Hour},
		{Start: time.Hour, End: time.Hour},
		{Start: 24 * time.Hour, End: time.Hour},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("window %+v accepted", w)
		}
	}
	good := []QuietWindow{
		{Start: 2 * time.Hour, End: 3 * time.Hour},
		{Start: 22 * time.Hour, End: 7 * time.Hour}, // wraps midnight
		{Start: 23 * time.Hour, End: time.Hour},
	}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("window %+v rejected: %v", w, err)
		}
	}
	cfg := OnlineConfig("t")
	cfg.Quiet = []QuietWindow{{Start: time.Hour, End: time.Hour}}
	if err := cfg.Validate(); err == nil {
		t.Error("config with bad window accepted")
	}
	cfg2 := OnDemandConfig("t", 8)
	cfg2.InterruptRank = -1
	if err := cfg2.Validate(); err == nil {
		t.Error("negative interrupt rank accepted")
	}
	cfg3 := OnlineConfig("t")
	cfg3.DailyOnlineCap = -1
	if err := cfg3.Validate(); err == nil {
		t.Error("negative daily cap accepted")
	}
}

func TestInterruptDuringQuietWindowStillHeld(t *testing.T) {
	// Quiet windows apply to interrupts too: the §2.2 hybrid keeps a
	// meeting undisturbed; the urgent message arrives the moment the
	// window ends.
	cfg := OnDemandConfig("t", 8)
	cfg.InterruptRank = 4
	cfg.Quiet = []QuietWindow{{Start: 0, End: time.Hour}}
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("urgent", 5, 0))
	if len(f.dev.received) != 0 {
		t.Fatal("interrupt broke the quiet window")
	}
	f.sched.Advance(time.Hour)
	if got := f.dev.ids(); len(got) != 1 || got[0] != "urgent" {
		t.Errorf("after window: %v", got)
	}
}
