package core

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"lasthop/internal/msg"
)

// buildBusyProxy drives a proxy into a state that exercises every durable
// field: staged queues, a delay stage, armed expiry timers, forwarded
// bookkeeping, tuner statistics fed by reads, and trace contexts.
func buildBusyProxy(t *testing.T, sched testClock, dev *fakeDevice) *Proxy {
	t.Helper()
	p := New(sched, dev)
	bcfg := BufferConfig("buf", 3, 2)
	bcfg.AutoPrefetchLimit = true
	bcfg.AutoExpirationThreshold = true
	if err := p.AddTopic(bcfg); err != nil {
		t.Fatal(err)
	}
	dcfg := OnDemandConfig("dem", 4)
	dcfg.Delay = 30 * time.Second
	if err := p.AddTopic(dcfg); err != nil {
		t.Fatal(err)
	}

	note := func(topic string, id msg.ID, rank float64, life time.Duration) *msg.Notification {
		n := &msg.Notification{ID: id, Topic: topic, Rank: rank, Published: sched.Now()}
		if life > 0 {
			n.Expires = sched.Now().Add(life)
		}
		return n
	}

	// Buffer topic: two forwards fill the client queue, the rest stage in
	// prefetch; one carries a trace context and one an expiry timer.
	p.Notify(note("buf", "b1", 5, 0))
	p.Notify(note("buf", "b2", 4, time.Hour))
	traced := note("buf", "b3", 3, 0)
	traced.Trace = &msg.TraceContext{TraceID: "trace-b3"}
	p.Notify(traced)
	p.Notify(note("buf", "b4", 2, 2*time.Hour))
	// A read feeds the tuner windows and interval estimators.
	sched.Advance(10 * time.Second)
	if err := p.Read(msg.ReadRequest{Topic: "buf", N: 2, QueueSize: 2}); err != nil {
		t.Fatal(err)
	}
	sched.Advance(10 * time.Second)
	if err := p.Read(msg.ReadRequest{Topic: "buf", N: 1, QueueSize: 1}); err != nil {
		t.Fatal(err)
	}

	// On-demand topic with a delay stage: arrivals park in delayed.
	p.Notify(note("dem", "d1", 9, 0))
	p.Notify(note("dem", "d2", 8, time.Hour))
	return p
}

func TestSnapshotRoundTrip(t *testing.T) {
	sched := newTestClock(t0)
	dev := &fakeDevice{}
	p := buildBusyProxy(t, sched, dev)

	snap := p.Export()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded ProxySnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	sched2 := newTestClock(sched.Now())
	dev2 := &fakeDevice{}
	p2 := New(sched2, dev2)
	p2.SetNetwork(false)
	if err := p2.Import(&decoded); err != nil {
		t.Fatalf("Import: %v", err)
	}

	// The re-export of the imported proxy must match the original dump
	// byte for byte: Export is deterministic and Import is lossless.
	blob2, err := json.Marshal(p2.Export())
	if err != nil {
		t.Fatalf("marshal 2: %v", err)
	}
	if string(blob) != string(blob2) {
		t.Errorf("round-trip drift:\n before: %s\n  after: %s", blob, blob2)
	}
	if !reflect.DeepEqual(p.Stats(), p2.Stats()) {
		t.Errorf("stats drift: %+v vs %+v", p.Stats(), p2.Stats())
	}

	// Per-topic snapshots agree.
	for _, topic := range p.Topics() {
		a, _ := p.Snapshot(topic)
		b, ok := p2.Snapshot(topic)
		if !ok {
			t.Fatalf("topic %q missing after import", topic)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("topic %q drift:\n %+v\n %+v", topic, a, b)
		}
	}

	// The trace context survived through the sidecar.
	ts2 := p2.topics["buf"]
	n, ok := ts2.known["b3"]
	if !ok || n.Trace == nil || n.Trace.TraceID != "trace-b3" {
		t.Errorf("trace context lost: %+v", n)
	}
}

func TestSnapshotRearmsTimers(t *testing.T) {
	sched := newTestClock(t0)
	p := buildBusyProxy(t, sched, &fakeDevice{})
	snap := p.Export()

	// Import on a scheduler 10s further along: the 30s delay stage has 20s
	// left, the 1h expiry timers remain armed.
	sched2 := newTestClock(sched.Now().Add(10 * time.Second))
	p2 := New(sched2, &fakeDevice{})
	p2.SetNetwork(false)
	if err := p2.Import(snap); err != nil {
		t.Fatalf("Import: %v", err)
	}
	before, _ := p2.Snapshot("dem")
	if before.Delayed != 2 {
		t.Fatalf("Delayed = %d, want 2", before.Delayed)
	}
	sched2.Advance(21 * time.Second)
	after, _ := p2.Snapshot("dem")
	if after.Delayed != 0 {
		t.Errorf("Delayed = %d after the delay elapsed, want 0", after.Delayed)
	}
	if after.Prefetch != before.Prefetch+2 {
		t.Errorf("Prefetch = %d, want %d", after.Prefetch, before.Prefetch+2)
	}

	// A deadline that passed while spooled fires immediately on import.
	sched3 := newTestClock(sched.Now().Add(2 * time.Minute))
	p3 := New(sched3, &fakeDevice{})
	p3.SetNetwork(false)
	if err := p3.Import(snap); err != nil {
		t.Fatalf("Import: %v", err)
	}
	sched3.Advance(time.Millisecond)
	late, _ := p3.Snapshot("dem")
	if late.Delayed != 0 {
		t.Errorf("Delayed = %d for long-overdue timers, want 0", late.Delayed)
	}
}

func TestImportRejectsNonEmptyProxy(t *testing.T) {
	sched := newTestClock(t0)
	p := New(sched, &fakeDevice{})
	if err := p.AddTopic(OnlineConfig("t")); err != nil {
		t.Fatal(err)
	}
	if err := p.Import(&ProxySnapshot{}); err == nil {
		t.Error("Import into a non-empty proxy succeeded")
	}
}

func TestImportRejectsDanglingQueueID(t *testing.T) {
	snap := &ProxySnapshot{Topics: []TopicDurable{{
		Config: OnDemandConfig("t", 4),
		State:  msg.TopicState{Topic: "t", Outgoing: []msg.ID{"ghost"}},
	}}}
	p := New(newTestClock(t0), &fakeDevice{})
	if err := p.Import(snap); err == nil {
		t.Error("dangling queue ID accepted")
	}
}

func TestShutdownCancelsTimers(t *testing.T) {
	sched := newTestClock(t0)
	p := buildBusyProxy(t, sched, &fakeDevice{})
	if sched.Pending() == 0 {
		t.Fatal("expected armed timers")
	}
	p.Shutdown()
	if got := sched.Pending(); got != 0 {
		t.Errorf("Pending = %d after Shutdown, want 0", got)
	}
	if got := p.Topics(); len(got) != 0 {
		t.Errorf("Topics = %v after Shutdown", got)
	}
}
