package core

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeDevice is a Forwarder that records deliveries and can be told to
// fail.
type fakeDevice struct {
	received []*msg.Notification
	fail     bool
}

var _ Forwarder = (*fakeDevice)(nil)

func (d *fakeDevice) Forward(n *msg.Notification) error {
	if d.fail {
		return errors.New("link failure injected")
	}
	d.received = append(d.received, n)
	return nil
}

func (d *fakeDevice) ids() []msg.ID {
	out := make([]msg.ID, len(d.received))
	for i, n := range d.received {
		out[i] = n.ID
	}
	return out
}

// testClock is the driver surface the core tests need from a scheduler.
// Both simtime.Virtual and the manual simtime.Wheel satisfy it, which is
// how the wheel's drop-in claim is enforced: LASTHOP_CORE_SCHED=wheel
// reruns this entire package against the timing wheel.
type testClock interface {
	simtime.Scheduler
	Advance(time.Duration)
	Pending() int
}

func newTestClock(start time.Time) testClock {
	if os.Getenv("LASTHOP_CORE_SCHED") == "wheel" {
		// 1ms ticks: fine enough that the tests' second-granularity
		// schedules stay tick-aligned and fire at their exact instants.
		return simtime.NewWheel(start, time.Millisecond)
	}
	return simtime.NewVirtual(start)
}

type fixture struct {
	sched testClock
	dev   *fakeDevice
	proxy *Proxy
}

func newFixture(t *testing.T, cfg TopicConfig) *fixture {
	t.Helper()
	sched := newTestClock(t0)
	dev := &fakeDevice{}
	p := New(sched, dev)
	if err := p.AddTopic(cfg); err != nil {
		t.Fatalf("AddTopic: %v", err)
	}
	return &fixture{sched: sched, dev: dev, proxy: p}
}

func (f *fixture) note(id msg.ID, rank float64, life time.Duration) *msg.Notification {
	n := &msg.Notification{ID: id, Topic: "t", Rank: rank, Published: f.sched.Now()}
	if life > 0 {
		n.Expires = f.sched.Now().Add(life)
	}
	return n
}

func (f *fixture) snapshot(t *testing.T) TopicSnapshot {
	t.Helper()
	s, ok := f.proxy.Snapshot("t")
	if !ok {
		t.Fatal("topic t missing")
	}
	return s
}

func TestAddTopicValidation(t *testing.T) {
	p := New(simtime.NewVirtual(t0), &fakeDevice{})
	if err := p.AddTopic(TopicConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if err := p.AddTopic(TopicConfig{Name: "t", ReadSize: -1}); err == nil {
		t.Error("negative read size accepted")
	}
	if err := p.AddTopic(OnlineConfig("t")); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTopic(OnlineConfig("t")); err == nil {
		t.Error("duplicate topic accepted")
	}
	if err := p.RemoveTopic("ghost"); err == nil {
		t.Error("removing unknown topic succeeded")
	}
	if err := p.RemoveTopic("t"); err != nil {
		t.Error(err)
	}
	if got := p.Topics(); len(got) != 0 {
		t.Errorf("Topics = %v", got)
	}
}

func TestOnlineForwardsImmediately(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.Notify(f.note("a", 1, 0))
	f.proxy.Notify(f.note("b", 5, 0))
	if got := f.dev.ids(); len(got) != 2 {
		t.Fatalf("forwarded %v", got)
	}
	s := f.snapshot(t)
	if s.Outgoing != 0 || s.Prefetch != 0 || s.QueueSizeView != 2 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestOnlineQueuesDuringOutage(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.SetNetwork(false)
	f.proxy.Notify(f.note("a", 1, 0))
	f.proxy.Notify(f.note("b", 5, 0))
	if len(f.dev.received) != 0 {
		t.Fatal("forwarded during outage")
	}
	if s := f.snapshot(t); s.Outgoing != 2 {
		t.Errorf("Outgoing = %d", s.Outgoing)
	}
	f.proxy.SetNetwork(true)
	got := f.dev.ids()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("forwarded %v, want [b a] (rank order)", got)
	}
}

func TestOnDemandNeverPrefetches(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 8))
	for i := 0; i < 5; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), float64(i), 0))
	}
	if len(f.dev.received) != 0 {
		t.Fatalf("on-demand forwarded %v", f.dev.ids())
	}
	if s := f.snapshot(t); s.Prefetch != 5 {
		t.Errorf("Prefetch = %d", s.Prefetch)
	}
}

func TestOnDemandReadSendsBest(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 2))
	for i := 0; i < 5; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), float64(i), 0))
	}
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 2}); err != nil {
		t.Fatal(err)
	}
	got := f.dev.ids()
	if len(got) != 2 || got[0] != "e" || got[1] != "d" {
		t.Errorf("read sent %v, want [e d]", got)
	}
}

func TestReadRequestsBetterDataOnly(t *testing.T) {
	// If the client already holds the best events, the proxy must not
	// transfer anything (§3.5: a read is a request for better data).
	f := newFixture(t, OnDemandConfig("t", 2))
	f.proxy.Notify(f.note("hi", 9, 0))
	f.proxy.Notify(f.note("lo", 1, 0))
	// Simulate that "hi" already reached the client.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "hi" {
		t.Fatalf("setup read sent %v", got)
	}
	f.dev.received = nil
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1, QueueSize: 1, ClientEvents: []msg.ID{"hi"}}); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.received) != 0 {
		t.Errorf("read transferred %v although client holds the best", f.dev.ids())
	}
	// But a read for two items sends the runner-up.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 1, ClientEvents: []msg.ID{"hi"}}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "lo" {
		t.Errorf("read sent %v, want [lo]", got)
	}
}

func TestReadUnknownClientEventsOccupySlots(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 2))
	f.proxy.Notify(f.note("x", 3, 0))
	// Client claims an event the proxy never heard of; it still occupies
	// one of the two read slots.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 1, ClientEvents: []msg.ID{"ghost"}}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "x" {
		t.Errorf("read sent %v, want [x]", got)
	}
}

func TestReadValidation(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 2))
	if err := f.proxy.Read(msg.ReadRequest{Topic: "ghost", N: 1}); err == nil {
		t.Error("read of unknown topic accepted")
	}
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: -1}); err == nil {
		t.Error("invalid read accepted")
	}
}

func TestRankThresholdFiltering(t *testing.T) {
	cfg := OnDemandConfig("t", 8)
	cfg.RankThreshold = 4.5
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("low", 4.4, 0))
	f.proxy.Notify(f.note("ok", 4.5, 0))
	f.proxy.Notify(f.note("hi", 5, 0))
	s := f.snapshot(t)
	if s.Prefetch != 2 {
		t.Errorf("Prefetch = %d, want 2", s.Prefetch)
	}
	if f.proxy.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", f.proxy.Stats().Rejected)
	}
	// The filtered event is still remembered for rank revisions.
	if s.History != 3 {
		t.Errorf("History = %d, want 3", s.History)
	}
}

func TestBufferPrefetchRespectsLimit(t *testing.T) {
	f := newFixture(t, BufferConfig("t", 8, 3))
	for i := 0; i < 10; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), float64(i), 0))
	}
	if len(f.dev.received) != 3 {
		t.Fatalf("prefetched %d, want 3", len(f.dev.received))
	}
	// The three highest-ranked at the time of each forwarding decision.
	s := f.snapshot(t)
	if s.QueueSizeView != 3 || s.Prefetch != 7 {
		t.Errorf("snapshot = %+v", s)
	}
	// A read frees room: client read 2, queue drops to 1.
	f.dev.received = nil
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 3, ClientEvents: []msg.ID{"j", "i"}}); err != nil {
		t.Fatal(err)
	}
	// Proxy sets its view to 3 (including the 2 being read), sends
	// nothing better than j,i... then prefetches while view < limit.
	if s := f.snapshot(t); s.QueueSizeView < 3 {
		t.Errorf("QueueSizeView = %d", s.QueueSizeView)
	}
}

func TestBufferPrefetchHighestRankedFirst(t *testing.T) {
	f := newFixture(t, BufferConfig("t", 8, 2))
	f.proxy.SetNetwork(false)
	ranks := []float64{1, 9, 5, 7, 3}
	for i, r := range ranks {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), r, 0))
	}
	f.proxy.SetNetwork(true)
	got := f.dev.ids()
	if len(got) != 2 || got[0] != "b" || got[1] != "d" {
		t.Errorf("prefetched %v, want [b d]", got)
	}
}

func TestAutoPrefetchLimitTracksDailyVolume(t *testing.T) {
	f := newFixture(t, UnifiedConfig("t", 4))
	if got := f.snapshot(t).PrefetchLimit; got != 8 {
		t.Errorf("initial limit = %d, want 2*ReadSize = 8", got)
	}
	// Reads of 10 every 12 hours: daily volume 20, limit 2x = 40.
	for i := 0; i < 5; i++ {
		if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 10}); err != nil {
			t.Fatal(err)
		}
		f.sched.Advance(12 * time.Hour)
	}
	if got := f.snapshot(t).PrefetchLimit; got != 40 {
		t.Errorf("limit = %d, want 2 * daily volume = 40", got)
	}
	// The user speeds up to 10 every 6 hours: the limit follows (the
	// moving window still remembers some 12h gaps, so it lands between
	// 40 and 80 and keeps climbing).
	for i := 0; i < 20; i++ {
		if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 10}); err != nil {
			t.Fatal(err)
		}
		f.sched.Advance(6 * time.Hour)
	}
	if got := f.snapshot(t).PrefetchLimit; got != 80 {
		t.Errorf("limit = %d, want 80 after the window fills with 6h gaps", got)
	}
}

func TestAutoExpirationThresholdTracksReadInterval(t *testing.T) {
	f := newFixture(t, UnifiedConfig("t", 8))
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 8}); err != nil {
		t.Fatal(err)
	}
	f.sched.Advance(4 * time.Hour)
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 8}); err != nil {
		t.Fatal(err)
	}
	if got := f.snapshot(t).ExpirationThreshold; got != 4*time.Hour {
		t.Errorf("ExpirationThreshold = %v, want 4h", got)
	}
}

func TestHoldingQueueShortLivedEvents(t *testing.T) {
	cfg := BufferConfig("t", 8, 100)
	cfg.ExpirationThreshold = time.Hour
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("short", 5, 10*time.Minute))
	f.proxy.Notify(f.note("long", 1, 10*time.Hour))
	f.proxy.Notify(f.note("forever", 1, 0))
	// Short-lived event is held back from prefetching...
	got := f.dev.ids()
	if len(got) != 2 || got[0] != "long" || got[1] != "forever" {
		t.Fatalf("prefetched %v, want [long forever]", got)
	}
	if s := f.snapshot(t); s.Holding != 1 {
		t.Errorf("Holding = %d", s.Holding)
	}
	// ...but is still served on an explicit read.
	f.dev.received = nil
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1, QueueSize: 2, ClientEvents: []msg.ID{"long"}}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "short" {
		t.Errorf("read sent %v, want [short]", got)
	}
}

func TestExpirationRemovesFromQueues(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 8))
	f.proxy.Notify(f.note("a", 5, time.Hour))
	f.proxy.Notify(f.note("b", 1, 0))
	f.sched.Advance(2 * time.Hour)
	s := f.snapshot(t)
	if s.Prefetch != 1 {
		t.Errorf("Prefetch = %d, want 1 after expiry", s.Prefetch)
	}
	if f.proxy.Stats().Expirations != 1 {
		t.Errorf("Expirations = %d", f.proxy.Stats().Expirations)
	}
	// The expired event is not served on reads.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 8}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "b" {
		t.Errorf("read sent %v, want [b]", got)
	}
}

func TestExpiredOnArrivalRejected(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 8))
	n := f.note("stale", 5, time.Hour)
	f.sched.Advance(2 * time.Hour)
	f.proxy.Notify(n)
	if s := f.snapshot(t); s.Prefetch != 0 || s.History != 0 {
		t.Errorf("stale arrival entered state: %+v", s)
	}
	if f.proxy.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", f.proxy.Stats().Rejected)
	}
}

func TestRankDropBeforeForwarding(t *testing.T) {
	cfg := OnDemandConfig("t", 8)
	cfg.RankThreshold = 3
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("a", 5, 0))
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 1})
	s := f.snapshot(t)
	if s.Prefetch != 0 || s.Outgoing != 0 {
		t.Errorf("dropped event still queued: %+v", s)
	}
	// Nothing was ever sent to the device.
	if len(f.dev.received) != 0 {
		t.Errorf("device received %v", f.dev.ids())
	}
}

func TestRankDropAfterForwardingSignalsClient(t *testing.T) {
	cfg := BufferConfig("t", 8, 10)
	cfg.RankThreshold = 3
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("a", 5, 0))
	if got := f.dev.ids(); len(got) != 1 {
		t.Fatalf("setup: %v", got)
	}
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 1})
	if len(f.dev.received) != 2 {
		t.Fatalf("device received %d messages, want rank-drop signal", len(f.dev.received))
	}
	if f.dev.received[1].ID != "a" || f.dev.received[1].Rank != 1 {
		t.Errorf("signal = %+v", f.dev.received[1])
	}
	if f.proxy.Stats().RankDropSignals != 1 {
		t.Errorf("RankDropSignals = %d", f.proxy.Stats().RankDropSignals)
	}
	// The re-forward must not inflate the proxy's view of the client
	// queue.
	if s := f.snapshot(t); s.QueueSizeView != 1 {
		t.Errorf("QueueSizeView = %d", s.QueueSizeView)
	}
}

func TestRankRaiseResurrectsFilteredEvent(t *testing.T) {
	cfg := OnDemandConfig("t", 8)
	cfg.RankThreshold = 3
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("a", 1, 0)) // filtered out
	if s := f.snapshot(t); s.Prefetch != 0 {
		t.Fatalf("filtered event queued: %+v", s)
	}
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 4})
	if s := f.snapshot(t); s.Prefetch != 1 {
		t.Errorf("boosted event not resurrected: %+v", s)
	}
}

func TestRankUpdateInQueueReorders(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 8))
	f.proxy.Notify(f.note("a", 1, 0))
	f.proxy.Notify(f.note("b", 2, 0))
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 9})
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "a" {
		t.Errorf("read sent %v, want [a] after boost", got)
	}
}

func TestRankUpdateViaRepublish(t *testing.T) {
	// A re-arrival of a known ID acts as a rank revision (Figure 7's
	// NOTIFICATION handles both).
	f := newFixture(t, OnDemandConfig("t", 8))
	f.proxy.Notify(f.note("a", 1, 0))
	f.proxy.Notify(f.note("a", 7, 0))
	if s := f.snapshot(t); s.Prefetch != 1 {
		t.Fatalf("duplicate arrival duplicated state: %+v", s)
	}
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.received; len(got) != 1 || got[0].Rank != 7 {
		t.Errorf("read sent %+v, want rank 7", got)
	}
}

func TestRankUpdateUnknownIgnored(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 8))
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "ghost", NewRank: 4})
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "ghost-topic", ID: "x", NewRank: 4})
	if s := f.snapshot(t); s.Prefetch != 0 || s.Outgoing != 0 {
		t.Errorf("unknown update created state: %+v", s)
	}
}

func TestDelayStage(t *testing.T) {
	cfg := BufferConfig("t", 8, 10)
	cfg.Delay = time.Minute
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("a", 5, 0))
	if len(f.dev.received) != 0 {
		t.Fatal("delayed event forwarded immediately")
	}
	if s := f.snapshot(t); s.Delayed != 1 {
		t.Errorf("Delayed = %d", s.Delayed)
	}
	f.sched.Advance(time.Minute)
	if got := f.dev.ids(); len(got) != 1 || got[0] != "a" {
		t.Errorf("after delay, forwarded %v", got)
	}
}

func TestDelayShieldsRankDrops(t *testing.T) {
	// The §3.4 motivation: with a delay stage, a quick retraction means
	// the event is never transferred at all.
	cfg := BufferConfig("t", 8, 10)
	cfg.Delay = time.Minute
	cfg.RankThreshold = 3
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("bad", 5, 0))
	f.sched.Advance(10 * time.Second)
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "bad", NewRank: 0})
	f.sched.Advance(time.Hour)
	if len(f.dev.received) != 0 {
		t.Errorf("retracted event still transferred: %v", f.dev.ids())
	}
}

func TestDelayedEventExpiresInLimbo(t *testing.T) {
	cfg := BufferConfig("t", 8, 10)
	cfg.Delay = time.Hour
	f := newFixture(t, cfg)
	f.proxy.Notify(f.note("a", 5, time.Minute))
	f.sched.Advance(2 * time.Hour)
	if len(f.dev.received) != 0 {
		t.Errorf("expired event escaped the delay stage: %v", f.dev.ids())
	}
	if s := f.snapshot(t); s.Delayed != 0 || s.Prefetch != 0 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestAutoDelayLearnsFromRetractions(t *testing.T) {
	cfg := BufferConfig("t", 8, 100)
	cfg.AutoDelay = true
	cfg.RankThreshold = 3
	f := newFixture(t, cfg)
	if f.snapshot(t).Delay != 0 {
		t.Fatal("delay should start at zero")
	}
	// A retraction lands 100s after publication.
	f.proxy.Notify(f.note("a", 5, 0))
	f.sched.Advance(100 * time.Second)
	f.proxy.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 0})
	if got := f.snapshot(t).Delay; got != 150*time.Second {
		t.Errorf("Delay = %v, want 150s (1.5x lag)", got)
	}
	// Subsequent events pass through the learned delay stage.
	f.proxy.Notify(f.note("b", 5, 0))
	if s := f.snapshot(t); s.Delayed != 1 {
		t.Errorf("Delayed = %d", s.Delayed)
	}
}

func TestRatePolicyThrottlesForwarding(t *testing.T) {
	f := newFixture(t, RateConfig("t", 1))
	// Establish rates: reads every 8 hours, arrivals hourly => ratio =
	// (1 read-size / 8h) * 1h = 0.125 => roughly 1 forward per 8
	// arrivals.
	for i := 0; i < 3; i++ {
		if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
			t.Fatal(err)
		}
		f.sched.Advance(8 * time.Hour)
	}
	f.dev.received = nil
	for i := 0; i < 32; i++ {
		f.proxy.Notify(f.note(msg.ID(fmt.Sprintf("n%02d", i)), 1, 0))
		f.sched.Advance(time.Hour)
	}
	got := len(f.dev.received)
	if got < 2 || got > 8 {
		t.Errorf("rate policy forwarded %d of 32, want roughly 4", got)
	}
}

func TestForwardFailureRequeuesAndMarksDown(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.dev.fail = true
	f.proxy.Notify(f.note("a", 5, 0))
	if !f.proxy.NetworkUp() {
		// expected: proxy marked the network down
	} else {
		t.Fatal("proxy still considers the network up after a failure")
	}
	if s := f.snapshot(t); s.Outgoing != 1 {
		t.Errorf("Outgoing = %d, want the event requeued", s.Outgoing)
	}
	f.dev.fail = false
	f.proxy.SetNetwork(true)
	if got := f.dev.ids(); len(got) != 1 || got[0] != "a" {
		t.Errorf("after recovery, forwarded %v", got)
	}
}

func TestNotifyUnknownTopicDropped(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	f.proxy.Notify(&msg.Notification{ID: "x", Topic: "other", Rank: 1, Published: t0})
	if len(f.dev.received) != 0 {
		t.Error("notification for unregistered topic forwarded")
	}
}

func TestHistoryGarbageCollection(t *testing.T) {
	cfg := OnDemandConfig("t", 8)
	cfg.HistoryLimit = 4
	f := newFixture(t, cfg)
	for i := 0; i < 10; i++ {
		f.proxy.Notify(f.note(msg.ID(fmt.Sprintf("n%02d", i)), 1, 0))
	}
	s := f.snapshot(t)
	if s.History != 4 {
		t.Errorf("History = %d, want 4", s.History)
	}
	// Evicted events were dropped from the queues too.
	if s.Prefetch != 4 {
		t.Errorf("Prefetch = %d, want 4", s.Prefetch)
	}
}

func TestUnlimitedRead(t *testing.T) {
	f := newFixture(t, OnDemandConfig("t", 0))
	for i := 0; i < 7; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), float64(i), 0))
	}
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 0}); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.received) != 7 {
		t.Errorf("unlimited read sent %d, want 7", len(f.dev.received))
	}
}

func TestReadDuringOutageDefersTransfer(t *testing.T) {
	// Prefetching policies keep Figure 7's deferral: a read selection
	// made during an outage rides the outgoing queue at reconnection.
	cfg := BufferConfig("t", 8, 1)
	f := newFixture(t, cfg)
	f.proxy.SetNetwork(false)
	f.proxy.Notify(f.note("a", 5, 0))
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.received) != 0 {
		t.Fatal("transferred during outage")
	}
	f.proxy.SetNetwork(true)
	if got := f.dev.ids(); len(got) == 0 || got[0] != "a" {
		t.Errorf("after recovery, forwarded %v", got)
	}
}

func TestOnDemandReadDuringOutageTransfersNothing(t *testing.T) {
	// Pure on-demand transfers only explicitly requested messages
	// (§3.2): a read that cannot be served now is not deferred.
	f := newFixture(t, OnDemandConfig("t", 8))
	f.proxy.Notify(f.note("a", 5, 0))
	f.proxy.SetNetwork(false)
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	f.proxy.SetNetwork(true)
	if len(f.dev.received) != 0 {
		t.Errorf("on-demand deferred a failed read: %v", f.dev.ids())
	}
	// The message is still served at the next connected read.
	if err := f.proxy.Read(msg.ReadRequest{Topic: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	if got := f.dev.ids(); len(got) != 1 || got[0] != "a" {
		t.Errorf("connected read forwarded %v", got)
	}
}

func TestSnapshotUnknownTopic(t *testing.T) {
	f := newFixture(t, OnlineConfig("t"))
	if _, ok := f.proxy.Snapshot("ghost"); ok {
		t.Error("Snapshot of unknown topic reported ok")
	}
}

func TestPolicyKindString(t *testing.T) {
	for _, tt := range []struct {
		k    PolicyKind
		want string
	}{
		{Online, "online"}, {OnDemand, "on-demand"}, {Buffer, "buffer"},
		{Rate, "rate"}, {PolicyKind(9), "policy(9)"},
	} {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []TopicConfig{
		{Name: ""},
		{Name: "t", Policy: PolicyKind(42)},
		{Name: "t", Mode: msg.DeliveryMode(42)},
		{Name: "t", RankThreshold: -1},
		{Name: "t", ReadSize: -1},
		{Name: "t", PrefetchLimit: -1},
		{Name: "t", ExpirationThreshold: -time.Second},
		{Name: "t", Delay: -time.Second},
		{Name: "t", StatsWindow: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good := UnifiedConfig("t", 8)
	if err := good.Validate(); err != nil {
		t.Errorf("unified config rejected: %v", err)
	}
}

func TestPresetConstructors(t *testing.T) {
	if c := OnlineConfig("a"); c.Policy != Online {
		t.Error("OnlineConfig wrong")
	}
	if c := OnDemandConfig("a", 8); c.Policy != OnDemand || c.ReadSize != 8 {
		t.Error("OnDemandConfig wrong")
	}
	if c := BufferConfig("a", 8, 16); c.Policy != Buffer || c.PrefetchLimit != 16 {
		t.Error("BufferConfig wrong")
	}
	if c := RateConfig("a", 8); c.Policy != Rate {
		t.Error("RateConfig wrong")
	}
	c := UnifiedConfig("a", 8)
	if !c.AutoPrefetchLimit || !c.AutoExpirationThreshold || c.Policy != Buffer {
		t.Error("UnifiedConfig wrong")
	}
	if !strings.Contains(fmt.Sprint(c.Policy), "buffer") {
		t.Error("policy printing wrong")
	}
}
