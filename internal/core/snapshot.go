package core

import (
	"fmt"
	"sort"

	"lasthop/internal/msg"
	"lasthop/internal/rankedq"
	"lasthop/internal/stats"
)

// TopicDurable pairs a topic's configuration with its durable runtime
// state. The configuration rides along so a recovered host can re-register
// the topic without consulting any other source.
type TopicDurable struct {
	Config TopicConfig    `json:"config"`
	State  msg.TopicState `json:"state"`
}

// ProxySnapshot is the complete durable state of one proxy: cumulative
// accounting plus every subscribed topic. Export produces it; Import
// rebuilds an empty proxy from it. Round-tripping through JSON is lossless
// up to timer identity — timers are re-armed from their recorded deadlines.
type ProxySnapshot struct {
	Stats  Stats          `json:"stats"`
	Topics []TopicDurable `json:"topics,omitempty"`
}

// Export captures the proxy's durable state. Like every entry point it must
// run on the owning scheduler. The snapshot shares Notification pointers
// with the live proxy; serialize it before mutating the proxy further.
func (p *Proxy) Export() *ProxySnapshot {
	snap := &ProxySnapshot{Stats: p.stats}
	for _, name := range p.Topics() {
		ts := p.topics[name]
		st := msg.TopicState{
			Topic:         name,
			Outgoing:      ts.outgoing.IDs(),
			Prefetch:      ts.prefetch.IDs(),
			Holding:       ts.holding.IDs(),
			History:       ts.history.IDs(),
			QueueSize:     ts.queueSize,
			PrefetchLimit: ts.prefetchLimit,
			ExpThreshold:  ts.expThreshold,
			Delay:         ts.delay,
			ReadSizes:     exportWindow(ts.readSizes),
			ExpTimes:      exportWindow(ts.expTimes),
			DropLags:      exportWindow(ts.dropLags),
			ReadTimes:     exportInterval(ts.readTimes),
			ArrivalTimes:  exportInterval(ts.arrivalTimes),
			RateTokens:    ts.rateTokens,
			OnlineDay:     ts.onlineDay,
			OnlineSent:    ts.onlineSent,
		}
		for id, t := range ts.delayed {
			st.Delayed = append(st.Delayed, msg.DelayedEntry{ID: id, FireAt: t.fireAt, Quiet: t.quiet})
		}
		sort.Slice(st.Delayed, func(i, j int) bool { return st.Delayed[i].ID < st.Delayed[j].ID })
		// History order carries the content list so Import can replay
		// remember() calls and reproduce the same eviction order.
		for _, id := range st.History {
			n, ok := ts.known[id]
			if !ok {
				continue // history and known are kept in lockstep; be safe
			}
			st.Notifications = append(st.Notifications, n)
			if n.Trace != nil {
				if st.Traces == nil {
					st.Traces = make(map[msg.ID]*msg.TraceContext)
				}
				st.Traces[id] = n.Trace
			}
		}
		st.Forwarded = sortedIDs(ts.forwarded)
		for id := range ts.expiryTimer {
			st.ExpiryArmed = append(st.ExpiryArmed, id)
		}
		sort.Slice(st.ExpiryArmed, func(i, j int) bool { return st.ExpiryArmed[i] < st.ExpiryArmed[j] })
		snap.Topics = append(snap.Topics, TopicDurable{Config: ts.cfg, State: st})
	}
	return snap
}

func exportWindow(m *stats.MovingAverage) msg.WindowSnapshot {
	return msg.WindowSnapshot{Size: m.Size(), Samples: m.Samples()}
}

func exportInterval(ia *stats.IntervalAverage) msg.IntervalSnapshot {
	size, diffs, last, hasLast := ia.Export()
	return msg.IntervalSnapshot{
		Window:  msg.WindowSnapshot{Size: size, Samples: diffs},
		Last:    last,
		HasLast: hasLast,
	}
}

func sortedIDs(set msg.IDSet) []msg.ID {
	if len(set) == 0 {
		return nil
	}
	out := make([]msg.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Import rebuilds the proxy from a snapshot. The proxy must be freshly
// constructed (no topics registered); the caller decides the network state
// — a rehydrating host imports with the network marked down and raises it
// only once the device connection is attached. Timers re-arm from their
// recorded deadlines: deadlines that passed while the state was spooled
// fire on the next scheduler tick, so nothing is lost to the gap.
func (p *Proxy) Import(snap *ProxySnapshot) error {
	if len(p.topics) != 0 {
		return fmt.Errorf("import: proxy already has %d topics", len(p.topics))
	}
	p.stats = snap.Stats
	now := p.sched.Now()
	for _, td := range snap.Topics {
		if err := p.AddTopic(td.Config); err != nil {
			return fmt.Errorf("import: %w", err)
		}
		ts := p.topics[td.Config.Name]
		st := &td.State

		byID := make(map[msg.ID]*msg.Notification, len(st.Notifications))
		for _, n := range st.Notifications {
			if tc, ok := st.Traces[n.ID]; ok {
				n.Trace = tc
			}
			byID[n.ID] = n
		}
		// Replay the history in insertion order so the GC evicts in the
		// same order the live proxy would have.
		for _, id := range st.History {
			n, ok := byID[id]
			if !ok {
				return fmt.Errorf("import: topic %q history ID %s has no content", st.Topic, id)
			}
			p.remember(ts, n)
		}
		for _, id := range st.Forwarded {
			ts.forwarded.Add(id)
		}
		for _, q := range []struct {
			ids  []msg.ID
			dst  *rankedq.Queue
			name string
		}{
			{st.Outgoing, ts.outgoing, "outgoing"},
			{st.Prefetch, ts.prefetch, "prefetch"},
			{st.Holding, ts.holding, "holding"},
		} {
			for _, id := range q.ids {
				n, ok := ts.known[id]
				if !ok {
					return fmt.Errorf("import: topic %q %s queue ID %s not in history", st.Topic, q.name, id)
				}
				p.mustPush(q.dst, n)
			}
		}
		for _, e := range st.Delayed {
			id := e.ID
			if _, ok := ts.known[id]; !ok {
				return fmt.Errorf("import: topic %q delayed ID %s not in history", st.Topic, id)
			}
			d := e.FireAt.Sub(now) // Schedule clamps negatives to zero
			var t delayedTimer
			if e.Quiet {
				t = delayedTimer{timer: p.sched.Schedule(d, func() { p.quietTimeout(ts, id) }), fireAt: e.FireAt, quiet: true}
			} else {
				t = delayedTimer{timer: p.sched.Schedule(d, func() { p.delayTimeout(ts, id) }), fireAt: e.FireAt}
			}
			ts.delayed[id] = t
		}
		for _, id := range st.ExpiryArmed {
			n, ok := ts.known[id]
			if !ok {
				return fmt.Errorf("import: topic %q expiry ID %s not in history", st.Topic, id)
			}
			id := id
			ts.expiryTimer[id] = p.sched.Schedule(n.Expires.Sub(now), func() { p.expirationTimeout(ts, id) })
		}

		ts.queueSize = st.QueueSize
		ts.prefetchLimit = st.PrefetchLimit
		ts.expThreshold = st.ExpThreshold
		ts.delay = st.Delay
		ts.readSizes = restoreWindow(st.ReadSizes, ts.cfg.StatsWindow)
		ts.expTimes = restoreWindow(st.ExpTimes, ts.cfg.StatsWindow)
		ts.dropLags = restoreWindow(st.DropLags, ts.cfg.StatsWindow)
		ts.readTimes = restoreInterval(st.ReadTimes, ts.cfg.StatsWindow)
		ts.arrivalTimes = restoreInterval(st.ArrivalTimes, ts.cfg.StatsWindow)
		ts.rateTokens = st.RateTokens
		ts.onlineDay = st.OnlineDay
		ts.onlineSent = st.OnlineSent
	}
	return nil
}

func restoreWindow(ws msg.WindowSnapshot, fallbackSize int) *stats.MovingAverage {
	size := ws.Size
	if size <= 0 {
		size = fallbackSize
	}
	return stats.RestoreMovingAverage(size, ws.Samples)
}

func restoreInterval(is msg.IntervalSnapshot, fallbackSize int) *stats.IntervalAverage {
	size := is.Window.Size
	if size <= 0 {
		size = fallbackSize
	}
	return stats.RestoreIntervalAverage(size, is.Window.Samples, is.Last, is.HasLast)
}

// Shutdown cancels every armed timer and releases every remembered
// notification, so a proxy being dropped (hibernated or replaced) leaks
// neither scheduler state nor pooled objects. The proxy must not be used
// afterwards. Like every entry point it must run on the owning scheduler
// (or after the scheduler has fully quiesced).
func (p *Proxy) Shutdown() {
	for _, ts := range p.topics {
		for id, t := range ts.delayed {
			t.timer.Cancel()
			delete(ts.delayed, id)
		}
		for id, t := range ts.expiryTimer {
			t.Cancel()
			delete(ts.expiryTimer, id)
		}
		for id, n := range ts.known {
			delete(ts.known, id)
			p.releaseNote(n)
		}
	}
	p.topics = make(map[string]*topicState)
}
