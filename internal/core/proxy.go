package core

import (
	"fmt"
	"sort"
	"time"

	"lasthop/internal/flight"
	"lasthop/internal/msg"
	"lasthop/internal/rankedq"
	"lasthop/internal/simtime"
	"lasthop/internal/stats"
	"lasthop/internal/trace"
)

// Forwarder is the proxy's downstream: it pushes one notification across
// the last hop to the device. A notification may be forwarded again for
// the same ID when its rank was revised; devices deduplicate by ID and
// adopt the new rank (dropping the message if it fell below their
// threshold).
type Forwarder interface {
	Forward(n *msg.Notification) error
}

// BatchForwarder is an optional Forwarder extension for transports that
// can push several notifications in one write. When the forwarder
// implements it, tryForwarding collects everything the policy releases in
// one pass — a drained outgoing queue, a prefetch refill, a read response
// — and hands the burst over in a single call. An error means none of the
// batch should be considered delivered; the proxy re-queues all of it
// (devices deduplicate by ID, so a partially transmitted batch costs only
// redundant bytes, not duplicates).
type BatchForwarder interface {
	Forwarder
	ForwardBatch(batch []*msg.Notification) error
}

// Stats is the proxy's cumulative accounting.
type Stats struct {
	// Notifications counts arrivals from the routing substrate,
	// including rank revisions.
	Notifications int
	// Forwards counts messages pushed to the device, including rank-drop
	// signals.
	Forwards int
	// RankDropSignals counts forwards that only communicate a rank
	// revision of an already-forwarded notification.
	RankDropSignals int
	// Expirations counts notifications that expired while queued on the
	// proxy.
	Expirations int
	// Reads counts read requests from the device.
	Reads int
	// Rejected counts arrivals dropped at the edge: below the rank
	// threshold or already expired.
	Rejected int
	// Resumes counts session-resumption reconciliations after a device
	// reconnect.
	Resumes int
	// ResumeRequeued counts forwarded notifications that the resuming
	// device turned out not to have (lost in flight) and that were
	// re-queued for forwarding.
	ResumeRequeued int
	// ResumeLost counts forwarded notifications lost in flight whose
	// content the proxy no longer holds (expired or garbage-collected) —
	// irrecoverable losses.
	ResumeLost int
	// ReadConsumed counts notifications consumed by user reads, the
	// "read" side of the §3.1 waste metric (waste = forwarded but never
	// read). Together with Forwards and RankDropSignals it yields a live
	// waste%: WastePct(Forwards-RankDropSignals, ReadConsumed).
	ReadConsumed int
}

// Proxy is the last-hop proxy. It is single-threaded: every entry point
// must be invoked through the owning simtime.Scheduler (the Subscriber
// adapter and the wire server do this; the simulator is single-threaded by
// construction).
type Proxy struct {
	sched     simtime.Scheduler
	fwd       Forwarder
	networkUp bool
	topics    map[string]*topicState
	stats     Stats

	// tracer receives per-notification queue-decision events (enqueue,
	// forward, expire, drop, tune) when set. Nil — the default — keeps
	// every handler free of tracing work beyond one pointer comparison.
	tracer trace.Tracer

	// release is called exactly once per notification when the proxy
	// drops its last reference to it — at history eviction (forget), when
	// an arrival is discarded without being retained, and for every
	// remembered notification on RemoveTopic/Shutdown. Hosts install
	// burst.Notes.Put here so pooled notifications recycle; nil — the
	// default — keeps ordinary garbage-collected lifetimes.
	release func(*msg.Notification)

	// fwdScratch backs tryForwardingBatch's assembly slice. The scheduler
	// serialises every proxy entry point, and batch forwarders encode the
	// slice before returning, so one buffer serves every batch.
	fwdScratch []*msg.Notification
}

// topicState carries Figure 7's per-topic variables.
type topicState struct {
	cfg TopicConfig

	outgoing *rankedq.Queue // must be forwarded as soon as possible
	prefetch *rankedq.Queue // passed expiration checks and the delay stage
	holding  *rankedq.Queue // expires too soon to prefetch; read-only access

	delayed     map[msg.ID]delayedTimer // delay stage (§3.4) and quiet windows
	expiryTimer map[msg.ID]simtime.Timer

	history   *rankedq.History             // topic.history with GC
	known     map[msg.ID]*msg.Notification // latest content for IDs in history
	forwarded msg.IDSet                    // topic.forwarded

	queueSize     int // proxy's view of the client device queue
	prefetchLimit int
	expThreshold  time.Duration
	delay         time.Duration

	readSizes *stats.MovingAverage   // topic.old_reads
	readTimes *stats.IntervalAverage // topic.old_times
	expTimes  *stats.MovingAverage   // topic.exp_times (seconds)
	dropLags  *stats.MovingAverage   // rank-retraction lags (seconds), for AutoDelay

	arrivalTimes *stats.IntervalAverage // for the Rate policy
	rateTokens   float64

	// Daily on-line delivery cap accounting (§2.2 refinement).
	onlineDay  int
	onlineSent int
}

// delayedTimer is one armed delay-stage or quiet-window timer plus the
// state a hibernating proxy must persist to re-arm it on rehydration: the
// instant it would fire and which release path (quietTimeout vs
// delayTimeout) it is on. The timer handle itself cannot cross a
// hibernation boundary.
type delayedTimer struct {
	timer  simtime.Timer
	fireAt time.Time
	quiet  bool
}

// quietRemaining reports whether the topic is inside a quiet window at the
// instant, and how long until the window ends.
func (ts *topicState) quietRemaining(now time.Time) (bool, time.Duration) {
	for _, w := range ts.cfg.Quiet {
		if in, rem := w.contains(now); in {
			return true, rem
		}
	}
	return false, 0
}

// dayIndex identifies the calendar day of an instant for cap accounting.
func dayIndex(t time.Time) int {
	y, m, d := t.Date()
	return y*10000 + int(m)*100 + d
}

// New returns a proxy bound to a scheduler and a forwarder. The network is
// initially considered up.
func New(sched simtime.Scheduler, fwd Forwarder) *Proxy {
	return &Proxy{
		sched:     sched,
		fwd:       fwd,
		networkUp: true,
		topics:    make(map[string]*topicState),
	}
}

// AddTopic registers a subscribed topic with its volume-limiting
// configuration.
func (p *Proxy) AddTopic(cfg TopicConfig) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("add topic: %w", err)
	}
	if _, dup := p.topics[cfg.Name]; dup {
		return fmt.Errorf("add topic: %q already registered", cfg.Name)
	}
	cfg = cfg.withDefaults()
	ts := &topicState{
		cfg:          cfg,
		outgoing:     rankedq.NewQueue(),
		prefetch:     rankedq.NewQueue(),
		holding:      rankedq.NewQueue(),
		delayed:      make(map[msg.ID]delayedTimer),
		expiryTimer:  make(map[msg.ID]simtime.Timer),
		history:      rankedq.NewHistory(cfg.HistoryLimit),
		known:        make(map[msg.ID]*msg.Notification),
		forwarded:    make(msg.IDSet),
		expThreshold: cfg.ExpirationThreshold,
		delay:        cfg.Delay,
		readSizes:    stats.NewMovingAverage(cfg.StatsWindow),
		readTimes:    stats.NewIntervalAverage(cfg.StatsWindow),
		expTimes:     stats.NewMovingAverage(cfg.StatsWindow),
		dropLags:     stats.NewMovingAverage(cfg.StatsWindow),
		arrivalTimes: stats.NewIntervalAverage(cfg.StatsWindow),
	}
	ts.prefetchLimit = ts.initialPrefetchLimit()
	p.topics[cfg.Name] = ts
	return nil
}

func (ts *topicState) initialPrefetchLimit() int {
	switch {
	case ts.cfg.PrefetchLimit > 0:
		return ts.cfg.PrefetchLimit
	case ts.cfg.AutoPrefetchLimit && ts.cfg.ReadSize > 0:
		return PrefetchLimitFactor * ts.cfg.ReadSize
	case ts.cfg.Policy == Buffer:
		return DefaultPrefetchLimit
	default:
		return 0
	}
}

// RemoveTopic unregisters a topic and cancels its timers.
func (p *Proxy) RemoveTopic(name string) error {
	ts, ok := p.topics[name]
	if !ok {
		return fmt.Errorf("remove topic: %q not registered", name)
	}
	// Cancel AND clear both timer maps: under a wall-clock scheduler a
	// timer can have fired (but not yet run) before Cancel, in which case
	// its callback still executes later. The callbacks guard on map
	// membership, so clearing the maps turns those late fires into no-ops
	// instead of mutating queues of an unregistered topic.
	for id, t := range ts.delayed {
		t.timer.Cancel()
		delete(ts.delayed, id)
	}
	for id, t := range ts.expiryTimer {
		t.Cancel()
		delete(ts.expiryTimer, id)
	}
	for id, n := range ts.known {
		delete(ts.known, id)
		p.releaseNote(n)
	}
	delete(p.topics, name)
	return nil
}

// Topics returns the registered topic names, sorted.
func (p *Proxy) Topics() []string {
	out := make([]string, 0, len(p.topics))
	for name := range p.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NetworkUp reports the proxy's view of the last hop.
func (p *Proxy) NetworkUp() bool { return p.networkUp }

// SetNetwork is Figure 7's NETWORK handler: record the status and, on
// reconnection, resume forwarding.
func (p *Proxy) SetNetwork(up bool) {
	p.networkUp = up
	if up {
		for _, ts := range p.topics {
			p.tryForwarding(ts)
		}
	}
}

// Stats returns a copy of the cumulative accounting.
func (p *Proxy) Stats() Stats { return p.stats }

// SetTracer installs (or, with nil, removes) the tracer that receives
// per-notification queue-decision events. Like every other entry point it
// must be invoked through the owning scheduler.
func (p *Proxy) SetTracer(tr trace.Tracer) { p.tracer = tr }

// SetReleaser installs the hook called exactly once per notification when
// the proxy drops its last reference to it (see the release field). Like
// every other entry point it must be invoked through the owning
// scheduler, before any notification arrives.
func (p *Proxy) SetReleaser(fn func(*msg.Notification)) { p.release = fn }

// releaseNote hands a dropped notification to the releaser, if any.
func (p *Proxy) releaseNote(n *msg.Notification) {
	if p.release != nil && n != nil {
		p.release(n)
	}
}

// traceEvent stamps the scheduler clock onto the event and records it.
// Callers check p.tracer != nil first so the disabled path constructs no
// Event at all.
func (p *Proxy) traceEvent(e trace.Event) {
	e.At = p.sched.Now()
	p.tracer.Record(e)
}

// noteEvent builds the notification-scoped fields of a trace event.
func noteEvent(kind trace.Kind, n *msg.Notification) trace.Event {
	e := trace.Event{Kind: kind, Topic: n.Topic, ID: n.ID, Rank: n.Rank}
	if n.Trace != nil {
		e.TraceID = n.Trace.TraceID
	}
	return e
}

// traceDecision records a queue decision with the tuner values in effect
// (prefetch limit and expiration threshold), so a later waste or loss can
// be attributed to the exact policy state that produced it.
func (p *Proxy) traceDecision(kind trace.Kind, ts *topicState, n *msg.Notification, queue, cause string) {
	if p.tracer == nil {
		return
	}
	e := noteEvent(kind, n)
	e.Queue = queue
	e.Cause = cause
	e.Limit = ts.prefetchLimit
	e.ThresholdS = ts.effectiveExpThreshold().Seconds()
	p.traceEvent(e)
}

// joinCause composes an upstream decision cause with a local one.
func joinCause(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "; " + b
}

// queueLabel names the queue a forward was picked from.
func queueLabel(ts *topicState, q *rankedq.Queue) string {
	switch q {
	case ts.outgoing:
		return "outgoing"
	case ts.prefetch:
		return "prefetch"
	case ts.holding:
		return "holding"
	}
	return ""
}

// Notify is Figure 7's NOTIFICATION handler: a new event (or a rank
// revision re-arriving under a known ID) enters the proxy.
func (p *Proxy) Notify(n *msg.Notification) {
	ts, ok := p.topics[n.Topic]
	if !ok {
		p.releaseNote(n) // not subscribed here
		return
	}
	p.stats.Notifications++
	now := p.sched.Now()

	if _, seen := ts.known[n.ID]; seen {
		// Re-arrival of a known ID is a rank revision; only the rank of
		// the arriving copy is used, so it is dropped here.
		p.applyRank(ts, n.ID, n.Rank)
		p.releaseNote(n)
		return
	}
	if n.Expired(now) {
		p.stats.Rejected++
		if p.tracer != nil {
			e := noteEvent(trace.KindExpire, n)
			e.Queue = "ingress"
			e.Cause = "already expired on arrival at the proxy"
			p.traceEvent(e)
		}
		p.releaseNote(n)
		return
	}

	ts.arrivalTimes.Observe(now)
	if ts.cfg.Policy == Rate {
		ts.rateTokens += ts.rateRatio()
		if burst := float64(max(1, ts.cfg.ReadSize)); ts.rateTokens > burst {
			ts.rateTokens = burst
		}
	}

	// Record every arrival in the history so rank revisions can refer to
	// it, even when the rank is currently below the threshold.
	p.remember(ts, n)

	if n.Rank < ts.cfg.RankThreshold {
		p.stats.Rejected++
		if p.tracer != nil {
			e := noteEvent(trace.KindDrop, n)
			e.Queue = "ingress"
			e.Cause = "rank below the subscription threshold at arrival"
			p.traceEvent(e)
		}
		p.recomputeDelay(ts)
		return
	}

	if !n.NeverExpires() {
		ts.expTimes.Add(n.RemainingLife(now).Seconds())
		p.scheduleExpiry(ts, n)
	}
	p.enqueue(ts, n, now)
	p.recomputeDelay(ts)
	p.tryForwarding(ts)
}

// enqueue places an acceptable, unexpired notification into the right
// stage: outgoing for on-line delivery (on-line topics, the Online policy,
// and on-demand interrupts), holding when it expires before the expiration
// threshold, the delay stage when the topic delays, and the prefetch queue
// otherwise. The §2.2 refinements apply on the on-line path: quiet windows
// defer delivery to the window's end, and a daily cap overflows onto the
// on-demand staging path.
func (p *Proxy) enqueue(ts *topicState, n *msg.Notification, now time.Time) {
	online := ts.cfg.Mode == msg.OnLine || ts.cfg.Policy == Online
	if !online && ts.cfg.InterruptRank > 0 && n.Rank >= ts.cfg.InterruptRank {
		// An on-demand topic interrupts for urgent content ("a tornado
		// warning on a weather topic").
		online = true
	}
	if online {
		// Quiet windows defer before any cap accounting: an event held
		// through the night must draw on the budget of the day it is
		// actually delivered, not the day it arrived.
		if quiet, rem := ts.quietRemaining(now); quiet {
			if p.tracer != nil {
				e := noteEvent(trace.KindEnqueue, n)
				e.Queue = "delayed"
				e.Cause = "quiet-window"
				e.DelayS = rem.Seconds()
				p.traceEvent(e)
			}
			id := n.ID
			ts.delayed[id] = delayedTimer{
				timer:  p.sched.Schedule(rem, func() { p.quietTimeout(ts, id) }),
				fireAt: now.Add(rem),
				quiet:  true,
			}
			return
		}
		if ts.chargeOnlineCap(now) {
			p.traceDecision(trace.KindEnqueue, ts, n, "outgoing", "on-line delivery")
			p.mustPush(ts.outgoing, n)
			return
		}
		// The day's budget is spent: overflow onto the staging path.
		p.enqueueStaged(ts, n, now, "daily-cap")
		return
	}
	p.enqueueStaged(ts, n, now, "")
}

// chargeOnlineCap charges one on-line delivery against the topic's daily
// cap, resetting the counter on a day change. It reports false — charging
// nothing — when the day's budget is exhausted. A topic without a cap
// always has budget. Charging happens at push-to-outgoing time, never when
// an event is merely deferred, so quiet-window releases account against
// the delivery day.
func (ts *topicState) chargeOnlineCap(now time.Time) bool {
	if ts.cfg.DailyOnlineCap <= 0 {
		return true
	}
	if day := dayIndex(now); day != ts.onlineDay {
		ts.onlineDay, ts.onlineSent = day, 0
	}
	if ts.onlineSent >= ts.cfg.DailyOnlineCap {
		return false
	}
	ts.onlineSent++
	return true
}

// enqueueStaged places an event on the on-demand staging path: holding
// when it expires before the expiration threshold, the delay stage when
// the topic delays, and the prefetch queue otherwise. cause carries the
// upstream decision that diverted the event here (e.g. a spent daily cap)
// into the trace record.
func (p *Proxy) enqueueStaged(ts *topicState, n *msg.Notification, now time.Time, cause string) {
	if thr := ts.effectiveExpThreshold(); thr > 0 && !n.NeverExpires() && n.RemainingLife(now) < thr {
		p.traceDecision(trace.KindEnqueue, ts, n, "holding",
			joinCause(cause, "expires before the expiration threshold"))
		p.mustPush(ts.holding, n)
		return
	}
	if d := ts.effectiveDelay(); d > 0 {
		if p.tracer != nil {
			e := noteEvent(trace.KindEnqueue, n)
			e.Queue = "delayed"
			e.Cause = joinCause(cause, "delay stage")
			e.DelayS = d.Seconds()
			e.Limit = ts.prefetchLimit
			e.ThresholdS = ts.effectiveExpThreshold().Seconds()
			p.traceEvent(e)
		}
		id := n.ID
		ts.delayed[id] = delayedTimer{
			timer:  p.sched.Schedule(d, func() { p.delayTimeout(ts, id) }),
			fireAt: now.Add(d),
		}
		return
	}
	p.traceDecision(trace.KindEnqueue, ts, n, "prefetch", cause)
	p.mustPush(ts.prefetch, n)
}

// quietTimeout releases an event held through a quiet window. If another
// window has already begun, the event is re-deferred.
func (p *Proxy) quietTimeout(ts *topicState, id msg.ID) {
	if _, ok := ts.delayed[id]; !ok {
		return
	}
	delete(ts.delayed, id)
	now := p.sched.Now()
	n, ok := ts.known[id]
	if !ok || n.Expired(now) || n.Rank < ts.cfg.RankThreshold {
		return
	}
	if quiet, rem := ts.quietRemaining(now); quiet {
		ts.delayed[id] = delayedTimer{
			timer:  p.sched.Schedule(rem, func() { p.quietTimeout(ts, id) }),
			fireAt: now.Add(rem),
			quiet:  true,
		}
		return
	}
	// The daily cap is charged at release time: a window crossing
	// midnight draws on the new day's budget, and overflow rides the
	// staging path like any other capped arrival.
	if ts.chargeOnlineCap(now) {
		flight.Record(flight.SubCore, flight.KindQuietRelease, -1, flight.TopicHash(ts.cfg.Name), 1)
		p.traceDecision(trace.KindEnqueue, ts, n, "outgoing", "quiet-window released")
		p.mustPush(ts.outgoing, n)
	} else {
		flight.Record(flight.SubCore, flight.KindQuietRelease, -1, flight.TopicHash(ts.cfg.Name), 0)
		p.enqueueStaged(ts, n, now, "daily-cap after quiet-window")
	}
	p.tryForwarding(ts)
}

// mustPush inserts into a queue; duplicate pushes indicate a proxy bug and
// are surfaced loudly in tests via the queue's error (ignored at runtime —
// the event is already queued, which is a safe state).
func (p *Proxy) mustPush(q *rankedq.Queue, n *msg.Notification) {
	_ = q.Push(n)
}

// remember records an event in the topic history, evicting (and fully
// forgetting) the oldest events beyond the history bound.
func (p *Proxy) remember(ts *topicState, n *msg.Notification) {
	ts.known[n.ID] = n
	evicted, _ := ts.history.Add(n.ID)
	for _, id := range evicted {
		p.forget(ts, id)
	}
}

// forget removes every trace of an event: queues, timers, bookkeeping.
// It is the single terminal point of a remembered notification's life on
// this proxy, so the releaser fires here.
func (p *Proxy) forget(ts *topicState, id msg.ID) {
	ts.outgoing.Remove(id)
	ts.prefetch.Remove(id)
	ts.holding.Remove(id)
	if t, ok := ts.delayed[id]; ok {
		t.timer.Cancel()
		delete(ts.delayed, id)
	}
	if t, ok := ts.expiryTimer[id]; ok {
		t.Cancel()
		delete(ts.expiryTimer, id)
	}
	if n, ok := ts.known[id]; ok {
		delete(ts.known, id)
		p.releaseNote(n)
	}
	ts.forwarded.Remove(id)
}

// scheduleExpiry arms Figure 7's expiration_timeout for the event.
func (p *Proxy) scheduleExpiry(ts *topicState, n *msg.Notification) {
	id := n.ID
	d := n.Expires.Sub(p.sched.Now())
	ts.expiryTimer[id] = p.sched.Schedule(d, func() { p.expirationTimeout(ts, id) })
}

// expirationTimeout removes an expired event from all queues (Figure 7).
func (p *Proxy) expirationTimeout(ts *topicState, id msg.ID) {
	if _, ok := ts.expiryTimer[id]; !ok {
		return // cancelled (topic removed or event forgotten) after firing
	}
	delete(ts.expiryTimer, id)
	// queue remembers where the event died; outgoing wins when an ID sits
	// in two queues at once, because dying there means a missed delivery.
	queue := ""
	if _, ok := ts.outgoing.Remove(id); ok {
		queue = "outgoing"
	}
	if _, ok := ts.prefetch.Remove(id); ok && queue == "" {
		queue = "prefetch"
	}
	if _, ok := ts.holding.Remove(id); ok && queue == "" {
		queue = "holding"
	}
	if t, ok := ts.delayed[id]; ok {
		t.timer.Cancel()
		delete(ts.delayed, id)
		if queue == "" {
			queue = "delayed"
		}
	}
	if queue == "" {
		return
	}
	p.stats.Expirations++
	if p.tracer != nil {
		e := trace.Event{Kind: trace.KindExpire, Topic: ts.cfg.Name, ID: id, Queue: queue}
		if n, ok := ts.known[id]; ok {
			e.Rank = n.Rank
			if n.Trace != nil {
				e.TraceID = n.Trace.TraceID
			}
		}
		if queue == "outgoing" && !p.networkUp {
			e.Cause = "expired while the last hop was down"
		}
		e.Limit = ts.prefetchLimit
		e.ThresholdS = ts.effectiveExpThreshold().Seconds()
		p.traceEvent(e)
	}
}

// delayTimeout moves a delayed event into the prefetch queue (Figure 7).
func (p *Proxy) delayTimeout(ts *topicState, id msg.ID) {
	if _, ok := ts.delayed[id]; !ok {
		return
	}
	delete(ts.delayed, id)
	n, ok := ts.known[id]
	if !ok || n.Expired(p.sched.Now()) || n.Rank < ts.cfg.RankThreshold {
		return
	}
	p.traceDecision(trace.KindEnqueue, ts, n, "prefetch", "delay elapsed")
	p.mustPush(ts.prefetch, n)
	p.tryForwarding(ts)
}

// ApplyRankUpdate revises the rank of a previously published notification
// (§3.4).
func (p *Proxy) ApplyRankUpdate(u msg.RankUpdate) {
	ts, ok := p.topics[u.Topic]
	if !ok {
		return
	}
	p.stats.Notifications++
	p.applyRank(ts, u.ID, u.NewRank)
}

// applyRank implements Figure 7's rank-revision branch.
func (p *Proxy) applyRank(ts *topicState, id msg.ID, rank float64) {
	n, ok := ts.known[id]
	if !ok {
		return // never heard of it (or already garbage-collected)
	}
	oldRank := n.Rank
	n.Rank = rank

	if rank < ts.cfg.RankThreshold {
		// Rank dropped below the threshold: purge it from the staging
		// queues.
		purged := ""
		if _, ok := ts.holding.Remove(id); ok {
			purged = "holding"
		}
		if _, ok := ts.prefetch.Remove(id); ok {
			purged = "prefetch"
		}
		if t, ok := ts.delayed[id]; ok {
			t.timer.Cancel()
			delete(ts.delayed, id)
			purged = "delayed"
		}
		if ts.cfg.AutoDelay && oldRank >= ts.cfg.RankThreshold {
			ts.dropLags.Add(p.sched.Now().Sub(n.Published).Seconds())
			p.recomputeDelay(ts)
		}
		if ts.forwarded.Contains(id) && !n.Expired(p.sched.Now()) {
			// Tell the client of the rank drop so it can discard its
			// copy. (An expired message needs no signal: the device
			// purges expired content on its own, and its expiry timer
			// here is already gone.)
			if p.tracer != nil {
				e := noteEvent(trace.KindEnqueue, n)
				e.Queue = "outgoing"
				e.Cause = "rank-retraction signal to the device"
				p.traceEvent(e)
			}
			if !ts.outgoing.UpdateRank(id, rank) {
				p.mustPush(ts.outgoing, n)
			}
		} else {
			// Don't bother the client.
			if _, ok := ts.outgoing.Remove(id); ok {
				purged = "outgoing"
			}
			if purged != "" && !ts.forwarded.Contains(id) {
				// Terminal for a never-forwarded event; a forwarded one is
				// finished by the device when its own copy goes.
				p.traceDecision(trace.KindDrop, ts, n, purged,
					"rank retracted below the subscription threshold")
			}
		}
		p.tryForwarding(ts)
		return
	}

	// Rank is (still or again) acceptable: revise in place wherever the
	// event lives.
	switch {
	case ts.outgoing.UpdateRank(id, rank):
	case ts.prefetch.UpdateRank(id, rank):
	case ts.holding.UpdateRank(id, rank):
	default:
		if _, inDelay := ts.delayed[id]; inDelay {
			break // rank recorded in known; used when the delay elapses
		}
		if n.Expired(p.sched.Now()) {
			break
		}
		if ts.forwarded.Contains(id) {
			// The client holds a stale rank; push the revision.
			p.mustPush(ts.outgoing, n)
			break
		}
		if oldRank < ts.cfg.RankThreshold {
			// Previously unacceptable, now boosted above the
			// threshold: (re-)enter the normal staging path.
			if !n.NeverExpires() {
				if _, armed := ts.expiryTimer[id]; !armed {
					ts.expTimes.Add(n.RemainingLife(p.sched.Now()).Seconds())
					p.scheduleExpiry(ts, n)
				}
			}
			p.enqueue(ts, n, p.sched.Now())
		}
	}
	p.tryForwarding(ts)
}

// Read is Figure 7's READ handler: the device relays a user read with the
// number of wanted items, its current queue size, and the IDs of its
// highest-ranked local events. A read is not a request for more data but a
// request for better data if it exists; the proxy pushes only the
// difference.
func (p *Proxy) Read(req msg.ReadRequest) error {
	if err := req.Validate(); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	ts, ok := p.topics[req.Topic]
	if !ok {
		return fmt.Errorf("read: topic %q not registered", req.Topic)
	}
	p.stats.Reads++
	now := p.sched.Now()
	oldLimit, oldThr := ts.prefetchLimit, ts.expThreshold

	queued := ts.outgoing.Len() + ts.prefetch.Len() + ts.holding.Len()
	n := req.N
	unlimited := n == 0
	if unlimited {
		n = queued + len(req.ClientEvents)
	}

	// Figure 7: remember N and the read instant; retune the prefetch
	// limit and the expiration threshold. Peek requests are cache
	// refills, not user reads, and leave the statistics alone.
	if !req.Peek {
		ts.readTimes.Observe(now)
		if ts.cfg.AutoExpirationThreshold {
			ts.expThreshold = ts.readTimes.MeanOr(ts.cfg.ExpirationThreshold)
		}
	}

	// best ← get_highest_ranked(N, outgoing ∪ prefetch ∪ holding)
	best := ts.bestAcross(n)

	// difference ← get_highest_ranked(N, best ∪ client_events) \ client_events
	clientSet := msg.NewIDSet(req.ClientEvents...)
	type candidate struct {
		n        *msg.Notification
		onClient bool
	}
	combined := make([]candidate, 0, len(best)+len(req.ClientEvents))
	for _, b := range best {
		if !clientSet.Contains(b.ID) {
			combined = append(combined, candidate{n: b})
		}
	}
	for _, id := range req.ClientEvents {
		if kn, ok := ts.known[id]; ok {
			combined = append(combined, candidate{n: kn, onClient: true})
		} else {
			// The proxy no longer remembers this event; it cannot be
			// displaced by anything it would send, so it occupies a
			// slot unconditionally.
			n--
		}
	}
	sort.Slice(combined, func(i, j int) bool { return combined[i].n.Before(combined[j].n) })
	if n < 0 {
		n = 0
	}
	if n > len(combined) {
		n = len(combined)
	}
	// Under pure on-demand, only explicitly requested messages are ever
	// transferred (§3.2): a read arriving during an outage transfers
	// nothing, rather than deferring the selection to reconnection. The
	// prefetching policies keep Figure 7's deferral through the outgoing
	// queue.
	promote := ts.cfg.Policy != OnDemand || p.networkUp
	sent := 0
	if promote {
		for _, c := range combined[:n] {
			if c.onClient {
				continue
			}
			// Promote from whichever staging queue holds it; events
			// already in outgoing stay there.
			if _, ok := ts.prefetch.Remove(c.n.ID); !ok {
				ts.holding.Remove(c.n.ID)
			}
			if !ts.outgoing.Contains(c.n.ID) {
				p.traceDecision(trace.KindEnqueue, ts, c.n, "outgoing", "promoted by a read request")
				p.mustPush(ts.outgoing, c.n)
			}
			sent++
		}
	}
	if !req.Peek {
		if unlimited {
			ts.readSizes.Add(float64(sent + len(req.ClientEvents)))
		} else {
			ts.readSizes.Add(float64(req.N))
		}
	}

	// Update the proxy's view of the client queue: the device reported
	// its size including the N it is requesting (Figure 7); a user read
	// is about to consume up to N of what is available, and whatever this
	// request promotes into the outgoing queue is counted back in by
	// do_forward on transfer. A peek consumes nothing.
	switch {
	case req.Peek:
		ts.queueSize = req.QueueSize
	case unlimited:
		p.stats.ReadConsumed += req.QueueSize + sent
		ts.queueSize = 0
	default:
		consumed := req.N
		if avail := req.QueueSize + sent; consumed > avail {
			consumed = avail
		}
		p.stats.ReadConsumed += consumed
		ts.queueSize = req.QueueSize - consumed
		if ts.queueSize < 0 {
			ts.queueSize = 0
		}
	}
	if ts.cfg.AutoPrefetchLimit && !req.Peek {
		ts.retunePrefetchLimit()
	}
	if p.tracer != nil && !req.Peek &&
		(ts.prefetchLimit != oldLimit || ts.expThreshold != oldThr) {
		p.traceEvent(trace.Event{
			Kind: trace.KindTune, Topic: ts.cfg.Name,
			Limit: ts.prefetchLimit, ThresholdS: ts.expThreshold.Seconds(),
			Cause: "retuned by read statistics",
		})
	}
	p.tryForwarding(ts)
	return nil
}

// Resume reconciles the proxy with a device that reconnected after an
// outage: have is the set of notification IDs still queued on the device,
// read the IDs its user has consumed (the §3.5 read-ID sets, replayed
// across the session boundary). Forwarded notifications in neither set
// were lost in flight — pushed into a connection that died before
// delivery — and are re-queued for forwarding while their content is still
// known and unexpired. Conversely, IDs the device already read are removed
// from the staging queues so they are never transferred again. The proxy's
// view of the client queue is reset to the device's report.
func (p *Proxy) Resume(topic string, have, read msg.IDSet) error {
	ts, ok := p.topics[topic]
	if !ok {
		return fmt.Errorf("resume: topic %q not registered", topic)
	}
	p.stats.Resumes++
	now := p.sched.Now()

	// Forwarded-but-absent IDs were lost in flight.
	var lost []msg.ID
	for id := range ts.forwarded {
		if !have.Contains(id) && !read.Contains(id) {
			lost = append(lost, id)
		}
	}
	for _, id := range lost {
		ts.forwarded.Remove(id)
		n, known := ts.known[id]
		if !known || n.Expired(now) {
			p.stats.ResumeLost++
			if p.tracer != nil {
				e := trace.Event{
					Kind: trace.KindLost, Topic: topic, ID: id,
					Cause: "lost in flight across a reconnect; content no longer recoverable",
				}
				if known {
					e.Rank = n.Rank
					if n.Trace != nil {
						e.TraceID = n.Trace.TraceID
					}
				}
				p.traceEvent(e)
			}
			continue
		}
		if ts.outgoing.Contains(id) || ts.prefetch.Contains(id) || ts.holding.Contains(id) {
			// Already staged for (re-)delivery; nothing to recover.
			continue
		}
		if p.tracer != nil {
			e := noteEvent(trace.KindResume, n)
			e.Queue = "outgoing"
			e.Cause = "re-queued after loss in flight"
			p.traceEvent(e)
		}
		p.mustPush(ts.outgoing, n)
		p.stats.ResumeRequeued++
	}

	// IDs the user consumed must never be transferred again, even if the
	// proxy (for example after a crash recovery) still stages them.
	for id := range read {
		removed := false
		if _, ok := ts.outgoing.Remove(id); ok {
			removed = true
		} else if _, ok := ts.prefetch.Remove(id); ok {
			removed = true
		} else if _, ok := ts.holding.Remove(id); ok {
			removed = true
		}
		if removed {
			ts.forwarded.Add(id)
		}
	}

	ts.queueSize = len(have)
	p.tryForwarding(ts)
	return nil
}

// bestAcross returns the up-to-n best notifications across the three
// queues without removing them.
func (ts *topicState) bestAcross(n int) []*msg.Notification {
	if n <= 0 {
		return nil
	}
	out := make([]*msg.Notification, 0, 3*n)
	out = append(out, ts.outgoing.BestN(n)...)
	out = append(out, ts.prefetch.BestN(n)...)
	out = append(out, ts.holding.BestN(n)...)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// tryForwarding is Figure 7's try_forwarding: drain the outgoing queue,
// then prefetch according to the policy while there is room. With a
// batch-capable forwarder the whole burst is collected first and pushed
// in one call.
func (p *Proxy) tryForwarding(ts *topicState) {
	if !p.networkUp {
		return
	}
	if bf, ok := p.fwd.(BatchForwarder); ok {
		p.tryForwardingBatch(ts, bf)
		return
	}
	for {
		ev, ok := ts.outgoing.PopBest()
		if !ok {
			break
		}
		if !p.doForward(ts, ev, ts.outgoing) {
			return
		}
	}
	switch ts.cfg.Policy {
	case Buffer:
		for ts.queueSize < ts.prefetchLimit {
			ev, ok := ts.prefetch.PopBest()
			if !ok {
				break
			}
			if !p.doForward(ts, ev, ts.prefetch) {
				return
			}
		}
	case Rate:
		for ts.rateTokens >= 1 {
			ev, ok := ts.prefetch.PopBest()
			if !ok {
				break
			}
			if !p.doForward(ts, ev, ts.prefetch) {
				return
			}
			ts.rateTokens--
		}
	case Online, OnDemand:
		// Online routes everything through outgoing; OnDemand never
		// prefetches.
	}
}

// tryForwardingBatch collects everything the per-event path would forward
// right now — the drained outgoing queue plus the policy's prefetch
// allowance — and pushes it as one batch. Accounting mirrors doForward:
// the buffer policy's room check uses the queue growth the batch will
// cause, and rate tokens spent on a failed batch are refunded.
func (p *Proxy) tryForwardingBatch(ts *topicState, bf BatchForwarder) {
	batch := p.fwdScratch[:0]
	defer func() { p.fwdScratch = batch[:0] }()
	// newCount predicts the client-queue growth of the batch so far. Each
	// ranked queue holds an ID at most once, so popping both queues cannot
	// double-count except when an ID sits in outgoing and prefetch at
	// once; the estimate is then merely conservative.
	newCount := 0
	for {
		ev, ok := ts.outgoing.PopBest()
		if !ok {
			break
		}
		batch = append(batch, ev)
		if !ts.forwarded.Contains(ev.ID) {
			newCount++
		}
	}
	// Everything past this index was picked opportunistically from the
	// prefetch queue; on failure it must go back there, not be promoted.
	fromOutgoing := len(batch)
	rateSpent := 0
	switch ts.cfg.Policy {
	case Buffer:
		for ts.queueSize+newCount < ts.prefetchLimit {
			ev, ok := ts.prefetch.PopBest()
			if !ok {
				break
			}
			batch = append(batch, ev)
			if !ts.forwarded.Contains(ev.ID) {
				newCount++
			}
		}
	case Rate:
		for ts.rateTokens >= 1 {
			ev, ok := ts.prefetch.PopBest()
			if !ok {
				break
			}
			batch = append(batch, ev)
			ts.rateTokens--
			rateSpent++
		}
	case Online, OnDemand:
	}
	if len(batch) == 0 {
		return
	}
	if err := bf.ForwardBatch(batch); err != nil {
		// Failure parity with the per-event path: every pick returns to
		// the queue it came from. Re-queueing prefetch picks into
		// outgoing would promote opportunistic prefetches into
		// must-send-ASAP messages that bypass the prefetch-limit room
		// check after reconnect.
		for i, ev := range batch {
			origin := ts.outgoing
			if i >= fromOutgoing {
				origin = ts.prefetch
			}
			if !origin.Contains(ev.ID) {
				p.mustPush(origin, ev)
			}
		}
		ts.rateTokens += float64(rateSpent)
		p.networkUp = false
		return
	}
	for i, ev := range batch {
		p.stats.Forwards++
		signal := ts.forwarded.Contains(ev.ID)
		if p.tracer != nil {
			e := noteEvent(trace.KindForward, ev)
			e.Count = len(batch)
			if i < fromOutgoing {
				e.Queue = "outgoing"
			} else {
				e.Queue = "prefetch"
			}
			e.Limit = ts.prefetchLimit
			e.ThresholdS = ts.effectiveExpThreshold().Seconds()
			if signal {
				e.Cause = "rank-revision signal"
			}
			p.traceEvent(e)
		}
		if signal {
			p.stats.RankDropSignals++
			continue
		}
		ts.forwarded.Add(ev.ID)
		ts.queueSize++
	}
}

// doForward pushes one event to the device, updating the proxy's view of
// the client queue. On failure the event returns to the queue it was
// picked from and the network is considered down until the next status
// change.
func (p *Proxy) doForward(ts *topicState, ev *msg.Notification, origin *rankedq.Queue) bool {
	if err := p.fwd.Forward(ev); err != nil {
		if !origin.Contains(ev.ID) {
			p.mustPush(origin, ev)
		}
		p.networkUp = false
		return false
	}
	p.stats.Forwards++
	signal := ts.forwarded.Contains(ev.ID)
	if p.tracer != nil {
		e := noteEvent(trace.KindForward, ev)
		e.Queue = queueLabel(ts, origin)
		e.Count = 1
		e.Limit = ts.prefetchLimit
		e.ThresholdS = ts.effectiveExpThreshold().Seconds()
		if signal {
			e.Cause = "rank-revision signal"
		}
		p.traceEvent(e)
	}
	if signal {
		// A re-forward only revises the client's copy; it does not grow
		// the client queue.
		p.stats.RankDropSignals++
		return true
	}
	ts.forwarded.Add(ev.ID)
	ts.queueSize++
	return true
}

// rateRatio estimates reads-per-arrival for the Rate policy: the ratio of
// the user's consumption rate (ReadSize per read interval) to the event
// arrival rate.
func (ts *topicState) rateRatio() float64 {
	interRead, ok := ts.readTimes.Mean()
	if !ok || interRead <= 0 {
		return 1 // no estimate yet: forward freely
	}
	interArrival, ok := ts.arrivalTimes.Mean()
	if !ok || interArrival <= 0 {
		return 1
	}
	readSize := ts.cfg.ReadSize
	if readSize == 0 {
		return 1
	}
	ratio := (float64(readSize) / interRead.Seconds()) * interArrival.Seconds()
	if ratio > 1 {
		ratio = 1
	}
	return ratio
}

// retunePrefetchLimit sets the prefetch limit to PrefetchLimitFactor times
// the user's average daily read volume (§3.2: the sweet spot's "low end
// corresponds to the average number of messages a user reads per day", and
// "it is safe to set the prefetch limit to twice that amount"). The daily
// volume is the moving average of read sizes scaled by the estimated reads
// per day; before an interval estimate exists, one read per day is
// assumed.
func (ts *topicState) retunePrefetchLimit() {
	mean, ok := ts.readSizes.Mean()
	if !ok {
		return
	}
	perDay := 1.0
	if interRead, ok := ts.readTimes.Mean(); ok && interRead > 0 {
		perDay = float64(24*time.Hour) / float64(interRead)
	}
	limit := int(mean*perDay*PrefetchLimitFactor + 0.5)
	if limit < 1 {
		limit = 1
	}
	ts.prefetchLimit = limit
}

func (ts *topicState) effectiveExpThreshold() time.Duration {
	return ts.expThreshold
}

func (ts *topicState) effectiveDelay() time.Duration {
	return ts.delay
}

// recomputeDelay is Figure 7's delay_function(topic.history): with
// AutoDelay the delay tracks 1.5 times the average observed lag between
// publication and rank retraction (zero until a retraction is seen).
func (p *Proxy) recomputeDelay(ts *topicState) {
	if !ts.cfg.AutoDelay {
		return
	}
	mean, ok := ts.dropLags.Mean()
	if !ok {
		ts.delay = ts.cfg.Delay
		return
	}
	ts.delay = time.Duration(mean * 1.5 * float64(time.Second))
}

// TopicSnapshot is a read-only view of a topic's state for inspection,
// tests, and the CLI tools.
type TopicSnapshot struct {
	Name                string
	Policy              PolicyKind
	Mode                msg.DeliveryMode
	Outgoing            int
	Prefetch            int
	Holding             int
	Delayed             int
	Forwarded           int
	History             int
	QueueSizeView       int
	PrefetchLimit       int
	ExpirationThreshold time.Duration
	Delay               time.Duration
}

// Snapshot returns the current state of a topic.
func (p *Proxy) Snapshot(topic string) (TopicSnapshot, bool) {
	ts, ok := p.topics[topic]
	if !ok {
		return TopicSnapshot{}, false
	}
	return TopicSnapshot{
		Name:                ts.cfg.Name,
		Policy:              ts.cfg.Policy,
		Mode:                ts.cfg.Mode,
		Outgoing:            ts.outgoing.Len(),
		Prefetch:            ts.prefetch.Len(),
		Holding:             ts.holding.Len(),
		Delayed:             len(ts.delayed),
		Forwarded:           ts.forwarded.Len(),
		History:             ts.history.Len(),
		QueueSizeView:       ts.queueSize,
		PrefetchLimit:       ts.prefetchLimit,
		ExpirationThreshold: ts.expThreshold,
		Delay:               ts.delay,
	}, true
}
