package core

import (
	"testing"
	"time"

	"lasthop/internal/msg"
)

// TestRemoveTopicReleasesAllTimers pins the satellite fix for PR 5: removing
// a topic must leave zero live timers behind, whatever stage (delay, quiet
// window, expiration) each notification was parked in.
func TestRemoveTopicReleasesAllTimers(t *testing.T) {
	f := newFixture(t, TopicConfig{
		Name:     "t",
		Mode:     msg.OnDemand,
		Policy:   Buffer,
		ReadSize: 4,
		Delay:    time.Minute,
	})
	// Delay-stage timers plus expiry timers for the expirable events.
	for i := 0; i < 8; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('a'+i)), float64(i), time.Hour))
	}
	for i := 0; i < 4; i++ {
		f.proxy.Notify(f.note(msg.ID(rune('p'+i)), 1, 0)) // never expires: delay timer only
	}
	if f.sched.Pending() == 0 {
		t.Fatal("expected live timers before removal")
	}
	if err := f.proxy.RemoveTopic("t"); err != nil {
		t.Fatalf("RemoveTopic: %v", err)
	}
	if got := f.sched.Pending(); got != 0 {
		t.Fatalf("timers leaked after RemoveTopic: %d still pending", got)
	}
}

// TestRemoveTopicQuietWindowTimers covers the on-line quiet-window staging
// path, whose release timers also live in the delayed map.
func TestRemoveTopicQuietWindowTimers(t *testing.T) {
	f := newFixture(t, TopicConfig{
		Name:  "t",
		Mode:  msg.OnLine,
		Quiet: []QuietWindow{{Start: 0, End: 23 * time.Hour}},
	})
	f.proxy.SetNetwork(true)
	f.proxy.Notify(f.note("q1", 5, 0))
	f.proxy.Notify(f.note("q2", 5, time.Hour))
	if f.sched.Pending() == 0 {
		t.Fatal("expected quiet-window timers before removal")
	}
	if err := f.proxy.RemoveTopic("t"); err != nil {
		t.Fatalf("RemoveTopic: %v", err)
	}
	if got := f.sched.Pending(); got != 0 {
		t.Fatalf("quiet-window timers leaked: %d still pending", got)
	}
}

// TestLateTimeoutAfterRemoveTopicIsNoop simulates the wall-clock race: a
// timer callback that already fired past its own state check before Cancel
// still runs after the topic is gone. With the timer maps cleared, every
// timeout handler must be a no-op on the stale topicState.
func TestLateTimeoutAfterRemoveTopicIsNoop(t *testing.T) {
	f := newFixture(t, TopicConfig{
		Name:     "t",
		Mode:     msg.OnDemand,
		Policy:   Buffer,
		ReadSize: 4,
		Delay:    time.Minute,
	})
	f.proxy.Notify(f.note("x", 5, time.Hour))
	ts := f.proxy.topics["t"]
	if ts == nil {
		t.Fatal("topic state missing")
	}
	if err := f.proxy.RemoveTopic("t"); err != nil {
		t.Fatalf("RemoveTopic: %v", err)
	}
	before := f.proxy.Stats()

	// Late fires against the removed topic's state.
	f.proxy.delayTimeout(ts, "x")
	f.proxy.quietTimeout(ts, "x")
	f.proxy.expirationTimeout(ts, "x")

	if ts.prefetch.Len() != 0 || ts.outgoing.Len() != 0 {
		t.Fatalf("late timeout mutated removed topic: prefetch=%d outgoing=%d",
			ts.prefetch.Len(), ts.outgoing.Len())
	}
	if after := f.proxy.Stats(); after != before {
		t.Fatalf("late timeout changed stats: %+v -> %+v", before, after)
	}
	if len(f.dev.received) != 0 {
		t.Fatalf("late timeout forwarded %d notifications", len(f.dev.received))
	}
}
