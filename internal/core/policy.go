// Package core implements the paper's primary contribution: the last-hop
// proxy with volume-limiting and unified prefetching (paper §3, Figure 7).
//
// The proxy sits between the pub/sub routing substrate and a mobile
// device. Per topic it maintains three queues — outgoing (must be
// forwarded as soon as possible), prefetch (eligible for opportunistic
// forwarding), and holding (expires too soon to be worth prefetching) — and
// reacts to three inputs: notification arrivals, user reads relayed by the
// device, and network status changes on the last hop.
//
// The proxy is deployment-agnostic: it depends only on simtime.Scheduler
// for time and on a Forwarder for pushing messages to the device, so the
// identical algorithm runs inside the discrete-event simulator and behind
// the TCP wire server.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"lasthop/internal/msg"
)

// PolicyKind selects the forwarding policy for an on-demand topic (§3.1).
type PolicyKind int

const (
	// Online forwards every acceptable notification as soon as the
	// network allows. No losses by definition; waste is maximal.
	Online PolicyKind = iota + 1
	// OnDemand holds every notification on the proxy until the user
	// requests it. No waste by definition; losses grow with outages.
	OnDemand
	// Buffer prefetches highest-ranked notifications until the proxy's
	// view of the device queue reaches the prefetch limit (§3.2).
	Buffer
	// Rate forwards notifications at the estimated ratio between the
	// user's read rate and the event arrival rate (§3.2's rate-based
	// alternative, which the paper found inferior to Buffer).
	Rate
)

// String names the policy for configuration and reports.
func (k PolicyKind) String() string {
	switch k {
	case Online:
		return "online"
	case OnDemand:
		return "on-demand"
	case Buffer:
		return "buffer"
	case Rate:
		return "rate"
	default:
		return "policy(" + strconv.Itoa(int(k)) + ")"
	}
}

// Defaults used when a TopicConfig leaves tunables at zero.
const (
	// DefaultStatsWindow is the moving-average window for read sizes,
	// read intervals, and expiration lifetimes.
	DefaultStatsWindow = 16
	// DefaultHistoryLimit bounds the per-topic event history; the paper
	// notes history grows without bound and omits garbage collection,
	// which this limit supplies.
	DefaultHistoryLimit = 1 << 17
	// DefaultPrefetchLimit is used before any read has been observed
	// when no explicit limit is configured.
	DefaultPrefetchLimit = 16
	// PrefetchLimitFactor scales the moving average of read sizes into
	// the auto prefetch limit ("it is safe to set the prefetch limit to
	// twice that amount", §3.2).
	PrefetchLimitFactor = 2
)

// TopicConfig configures one subscribed topic on the proxy.
type TopicConfig struct {
	// Name is the topic name.
	Name string
	// Mode selects on-line or on-demand delivery (§2.2). On-line topics
	// ignore Policy: every acceptable notification goes out as soon as
	// the connection allows.
	Mode msg.DeliveryMode
	// Policy is the forwarding policy for on-demand topics; zero
	// defaults to Buffer.
	Policy PolicyKind
	// RankThreshold is the subscriber's qualitative limit: notifications
	// ranked below it are not acceptable (§2.2).
	RankThreshold float64
	// ReadSize is the subscriber's Max: how many highest-ranked
	// notifications a read returns at most. Zero means unlimited.
	ReadSize int
	// PrefetchLimit is the fixed prefetch limit for the Buffer policy.
	// With AutoPrefetchLimit it serves as the initial value before the
	// first read is observed.
	PrefetchLimit int
	// AutoPrefetchLimit recomputes the prefetch limit on every read as
	// PrefetchLimitFactor times the moving average of read sizes.
	AutoPrefetchLimit bool
	// ExpirationThreshold is the fixed cut-off below which notifications
	// are held back from prefetching: a notification whose remaining
	// life is shorter goes to the holding queue (§3.3). Zero disables
	// the holding stage (unless AutoExpirationThreshold is set).
	ExpirationThreshold time.Duration
	// AutoExpirationThreshold recomputes the threshold on every read as
	// the moving average of intervals between reads, per Figure 7.
	AutoExpirationThreshold bool
	// Delay holds fresh notifications in a delay stage before they
	// become prefetchable, giving rank retractions time to land (§3.4).
	// Zero disables the stage.
	Delay time.Duration
	// AutoDelay recomputes the delay from the observed lag between
	// publication and rank retraction on this topic. The paper leaves
	// the delay formula open; this implementation uses 1.5 times the
	// moving average of observed retraction lags.
	AutoDelay bool
	// HistoryLimit bounds the per-topic history; zero defaults to
	// DefaultHistoryLimit, negative means unbounded.
	HistoryLimit int
	// StatsWindow is the moving-average window size; zero defaults to
	// DefaultStatsWindow.
	StatsWindow int

	// The §2.2 hybrid-delivery refinements:

	// InterruptRank lets an on-demand topic interrupt: notifications
	// ranked at or above it are pushed immediately, like on-line traffic
	// ("a tornado warning on a weather topic"). Zero disables it.
	InterruptRank float64
	// Quiet silences an on-line topic during daily windows ("during a
	// meeting"); arrivals inside a window are delivered when it ends.
	Quiet []QuietWindow
	// DailyOnlineCap bounds how many notifications an on-line topic may
	// push per day; the overflow falls back to the on-demand staging
	// path. Zero means no cap.
	DailyOnlineCap int
}

// QuietWindow is a daily local-time window (offsets from midnight, in the
// notification timestamps' location) during which an on-line topic goes
// quiet. A window with Start > End wraps around midnight: {22h, 7h} is
// quiet from 22:00 through 07:00 the next morning.
type QuietWindow struct {
	// Start and End are offsets from midnight, both within [0, 24h] and
	// distinct. Start < End is a same-day window [Start, End); Start >
	// End wraps around midnight ([Start, 24h) ∪ [0, End)).
	Start, End time.Duration
}

// wraps reports whether the window crosses midnight.
func (w QuietWindow) wraps() bool { return w.Start > w.End }

// Validate checks the window invariants.
func (w QuietWindow) Validate() error {
	if w.Start < 0 || w.Start >= 24*time.Hour || w.End < 0 || w.End > 24*time.Hour || w.Start == w.End {
		return fmt.Errorf("invalid quiet window [%v, %v)", w.Start, w.End)
	}
	return nil
}

// contains reports whether the instant falls inside the daily window, and
// the time remaining until the window ends.
func (w QuietWindow) contains(t time.Time) (bool, time.Duration) {
	midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
	off := t.Sub(midnight)
	if w.wraps() {
		switch {
		case off >= w.Start:
			// Evening leg: quiet until End tomorrow.
			return true, 24*time.Hour - off + w.End
		case off < w.End:
			// Morning leg.
			return true, w.End - off
		}
		return false, 0
	}
	if off >= w.Start && off < w.End {
		return true, w.End - off
	}
	return false, 0
}

// Validate checks the configuration invariants.
func (c TopicConfig) Validate() error {
	switch {
	case c.Name == "":
		return errors.New("topic config has no name")
	case c.Policy != 0 && (c.Policy < Online || c.Policy > Rate):
		return fmt.Errorf("invalid policy %d", int(c.Policy))
	case c.Mode != 0 && c.Mode != msg.OnLine && c.Mode != msg.OnDemand:
		return fmt.Errorf("invalid delivery mode %d", int(c.Mode))
	case c.RankThreshold < msg.MinRank || c.RankThreshold > msg.MaxRank:
		return fmt.Errorf("rank threshold %v outside [%v, %v]", c.RankThreshold, float64(msg.MinRank), float64(msg.MaxRank))
	case c.ReadSize < 0:
		return fmt.Errorf("negative read size %d", c.ReadSize)
	case c.PrefetchLimit < 0:
		return fmt.Errorf("negative prefetch limit %d", c.PrefetchLimit)
	case c.ExpirationThreshold < 0:
		return fmt.Errorf("negative expiration threshold %v", c.ExpirationThreshold)
	case c.Delay < 0:
		return fmt.Errorf("negative delay %v", c.Delay)
	case c.StatsWindow < 0:
		return fmt.Errorf("negative stats window %d", c.StatsWindow)
	case c.InterruptRank < 0 || c.InterruptRank > msg.MaxRank:
		return fmt.Errorf("interrupt rank %v outside [0, %v]", c.InterruptRank, float64(msg.MaxRank))
	case c.DailyOnlineCap < 0:
		return fmt.Errorf("negative daily on-line cap %d", c.DailyOnlineCap)
	}
	for _, w := range c.Quiet {
		if err := w.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c TopicConfig) withDefaults() TopicConfig {
	if c.Mode == 0 {
		c.Mode = msg.OnDemand
	}
	if c.Policy == 0 {
		c.Policy = Buffer
	}
	if c.StatsWindow == 0 {
		c.StatsWindow = DefaultStatsWindow
	}
	if c.HistoryLimit == 0 {
		c.HistoryLimit = DefaultHistoryLimit
	}
	if c.HistoryLimit < 0 {
		c.HistoryLimit = 0 // unbounded for rankedq.History
	}
	return c
}

// OnlineConfig is the on-line forwarding baseline for a topic: everything
// acceptable is pushed as soon as the network allows.
func OnlineConfig(name string) TopicConfig {
	return TopicConfig{Name: name, Policy: Online}
}

// OnDemandConfig is the pure on-demand policy: nothing is prefetched.
func OnDemandConfig(name string, readSize int) TopicConfig {
	return TopicConfig{Name: name, Policy: OnDemand, ReadSize: readSize}
}

// BufferConfig is buffer-based prefetching with a fixed limit (§3.2).
func BufferConfig(name string, readSize, limit int) TopicConfig {
	return TopicConfig{Name: name, Policy: Buffer, ReadSize: readSize, PrefetchLimit: limit}
}

// RateConfig is rate-based prefetching (§3.2).
func RateConfig(name string, readSize int) TopicConfig {
	return TopicConfig{Name: name, Policy: Rate, ReadSize: readSize}
}

// UnifiedConfig is the paper's full Figure 7 configuration: buffer-based
// prefetching with the limit auto-tuned to twice the average read size and
// the expiration threshold auto-tuned to the average interval between
// reads.
func UnifiedConfig(name string, readSize int) TopicConfig {
	return TopicConfig{
		Name:                    name,
		Policy:                  Buffer,
		ReadSize:                readSize,
		AutoPrefetchLimit:       true,
		AutoExpirationThreshold: true,
	}
}
