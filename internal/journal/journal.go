// Package journal gives the last-hop proxy durability: every input
// (topic registrations, notifications, rank updates, reads, network
// changes) is appended to a JSON-lines journal, and after a crash the
// proxy is rebuilt by replaying the journal into a fresh instance.
//
// Recovery leans on the same property as internal/replica: the proxy is a
// deterministic state machine over its inputs. During replay the forwarder
// is muted, so nothing is re-sent to the device; a message that was in
// flight when the proxy died is reconciled by the READ protocol itself
// (the device's client_events deduplicate double-sends and missed sends
// are re-requested at the next read).
//
// Compact bounds the journal by rewriting it, in order, to the entries
// that still matter: registrations of surviving topics, unexpired
// notifications, rank updates that target them, and the reads and network
// changes that tune the proxy.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/msg"
)

// Kind discriminates journal entries.
type Kind string

// Journal entry kinds.
const (
	KindAddTopic    Kind = "add-topic"
	KindRemoveTopic Kind = "remove-topic"
	KindNotify      Kind = "notify"
	KindRankUpdate  Kind = "rank-update"
	KindRead        Kind = "read"
	KindNetwork     Kind = "network"
	KindResume      Kind = "resume"
)

// Entry is one journaled proxy input.
type Entry struct {
	// At is the instant the input was applied.
	At time.Time `json:"at"`
	// Kind selects which payload field is set.
	Kind Kind `json:"kind"`

	TopicConfig  *core.TopicConfig `json:"topicConfig,omitempty"`
	TopicName    string            `json:"topicName,omitempty"`
	Notification *msg.Notification `json:"notification,omitempty"`
	Update       *msg.RankUpdate   `json:"update,omitempty"`
	Read         *msg.ReadRequest  `json:"read,omitempty"`
	NetworkUp    *bool             `json:"networkUp,omitempty"`
	Resume       *ResumePayload    `json:"resume,omitempty"`
}

// ResumePayload journals one session-resumption reconciliation: the ID
// sets a reconnecting device replayed for a topic.
type ResumePayload struct {
	Topic string   `json:"topic"`
	Have  []msg.ID `json:"have,omitempty"`
	Read  []msg.ID `json:"read,omitempty"`
}

// Validate checks that the entry's payload matches its kind.
func (e Entry) Validate() error {
	switch e.Kind {
	case KindAddTopic:
		if e.TopicConfig == nil {
			return errors.New("add-topic entry without config")
		}
	case KindRemoveTopic:
		if e.TopicName == "" {
			return errors.New("remove-topic entry without name")
		}
	case KindNotify:
		if e.Notification == nil {
			return errors.New("notify entry without notification")
		}
	case KindRankUpdate:
		if e.Update == nil {
			return errors.New("rank-update entry without update")
		}
	case KindRead:
		if e.Read == nil {
			return errors.New("read entry without request")
		}
	case KindNetwork:
		if e.NetworkUp == nil {
			return errors.New("network entry without status")
		}
	case KindResume:
		if e.Resume == nil {
			return errors.New("resume entry without payload")
		}
		if e.Resume.Topic == "" {
			return errors.New("resume entry without topic")
		}
	default:
		return fmt.Errorf("unknown entry kind %q", e.Kind)
	}
	return nil
}

// Journal is an append-only JSON-lines file of entries. Append is safe for
// concurrent use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	enc  *json.Encoder
	n    int
}

// Open opens (creating if needed) a journal for appending.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	w := bufio.NewWriter(f)
	return &Journal{path: path, f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Append writes one entry and flushes it to the operating system.
func (j *Journal) Append(e Entry) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("append: journal closed")
	}
	if err := j.enc.Encode(e); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	j.n++
	return nil
}

// Sync forces the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("sync: journal closed")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Appended returns how many entries this handle has written.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Close flushes and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadAll streams every entry of a journal file. A missing file yields no
// entries. A torn final line (crash mid-append) is tolerated and dropped
// silently; corruption anywhere else is an error. Use ReadAllOpts to log
// the dropped tail.
func ReadAll(path string, fn func(Entry) error) error {
	return ReadAllOpts(path, nil, fn)
}

// ReadAllOpts streams every entry of a journal file. A missing file
// yields no entries. A final line that fails to decode or validate is a
// torn tail from a crash mid-append: it is skipped and reported to warnf
// (nil discards the diagnostic) with its byte offset, so the truncation
// point is recoverable by hand. A line that fails with more data after
// it is corruption, not a tear, and is an error.
//
// Lines are framed with an unbounded reader rather than a fixed-capacity
// scanner: an entry larger than any preset buffer (a huge payload) must
// replay, not silently end the scan and drop everything after it.
func ReadAllOpts(path string, warnf func(string, ...any), fn func(Entry) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("read journal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var (
		offset     int64 // file offset of the line about to be read
		pendingErr error // decode failure awaiting the is-it-last verdict
		pendingOff int64
	)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			if pendingErr != nil {
				return fmt.Errorf("corrupt journal entry at byte %d: %w", pendingOff, pendingErr)
			}
			trimmed := bytes.TrimRight(line, "\r\n")
			if len(trimmed) > 0 {
				var e Entry
				if derr := json.Unmarshal(trimmed, &e); derr != nil {
					pendingErr, pendingOff = derr, offset
				} else if verr := e.Validate(); verr != nil {
					pendingErr, pendingOff = verr, offset
				} else if ferr := fn(e); ferr != nil {
					return ferr
				}
			}
			offset += int64(len(line))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("read journal: %w", err)
		}
	}
	if pendingErr != nil && warnf != nil {
		warnf("journal %s: dropping torn final entry at byte %d: %v", path, pendingOff, pendingErr)
	}
	return nil
}
