package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "proxy.journal")
}

func note(id msg.ID, rank float64, at time.Time, life time.Duration) *msg.Notification {
	n := &msg.Notification{ID: id, Topic: "t", Rank: rank, Published: at}
	if life > 0 {
		n.Expires = at.Add(life)
	}
	return n
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	up := true
	cfg := core.BufferConfig("t", 8, 32)
	entries := []Entry{
		{At: t0, Kind: KindAddTopic, TopicConfig: &cfg},
		{At: t0.Add(time.Minute), Kind: KindNotify, Notification: note("a", 3, t0, time.Hour)},
		{At: t0.Add(2 * time.Minute), Kind: KindRankUpdate, Update: &msg.RankUpdate{Topic: "t", ID: "a", NewRank: 1}},
		{At: t0.Add(3 * time.Minute), Kind: KindRead, Read: &msg.ReadRequest{Topic: "t", N: 8}},
		{At: t0.Add(4 * time.Minute), Kind: KindNetwork, NetworkUp: &up},
		{At: t0.Add(5 * time.Minute), Kind: KindRemoveTopic, TopicName: "t"},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatalf("append %s: %v", e.Kind, err)
		}
	}
	if j.Appended() != len(entries) {
		t.Errorf("Appended = %d", j.Appended())
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}

	var got []Entry
	if err := ReadAll(path, func(e Entry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e.Kind != entries[i].Kind || !e.At.Equal(entries[i].At) {
			t.Errorf("entry %d = %s@%v, want %s@%v", i, e.Kind, e.At, entries[i].Kind, entries[i].At)
		}
	}
}

func TestAppendValidates(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Entry{Kind: KindNotify}); err == nil {
		t.Error("notify without payload accepted")
	}
	if err := j.Append(Entry{Kind: Kind("bogus")}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestClosedJournalRejectsOperations(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := core.OnlineConfig("t")
	if err := j.Append(Entry{At: t0, Kind: KindAddTopic, TopicConfig: &cfg}); err == nil {
		t.Error("append after close succeeded")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after close succeeded")
	}
}

func TestRecorderSurfacesJournalErrors(t *testing.T) {
	// A write-ahead failure must block the operation: the proxy state
	// never runs ahead of the journal.
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewVirtual(t0)
	proxy := core.New(clock, &sink{})
	rec := NewRecorder(clock, proxy, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.AddTopic(core.OnlineConfig("t")); err == nil {
		t.Error("AddTopic applied despite a dead journal")
	}
	if len(proxy.Topics()) != 0 {
		t.Error("proxy state ran ahead of the journal")
	}
	if err := rec.Notify(note("a", 1, t0, 0)); err == nil {
		t.Error("Notify applied despite a dead journal")
	}
	if err := rec.Read(msg.ReadRequest{Topic: "t", N: 1}); err == nil {
		t.Error("Read applied despite a dead journal")
	}
	if err := rec.SetNetwork(true); err == nil {
		t.Error("SetNetwork applied despite a dead journal")
	}
	if err := rec.RemoveTopic("t"); err == nil {
		t.Error("RemoveTopic applied despite a dead journal")
	}
	if err := rec.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 1}); err == nil {
		t.Error("ApplyRankUpdate applied despite a dead journal")
	}
}

func TestReadAllMissingFile(t *testing.T) {
	calls := 0
	if err := ReadAll(filepath.Join(t.TempDir(), "absent"), func(Entry) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("callback invoked for missing file")
	}
}

func TestReadAllTornTailTolerated(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.OnlineConfig("t")
	if err := j.Append(Entry{At: t0, Kind: KindAddTopic, TopicConfig: &cfg}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"at":"2026-01-01T00:01:00Z","kind":"noti`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	count := 0
	if err := ReadAll(path, func(Entry) error {
		count++
		return nil
	}); err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if count != 1 {
		t.Errorf("read %d entries, want 1", count)
	}
}

func TestReadAllMidFileCorruptionFails(t *testing.T) {
	path := tmpJournal(t)
	content := strings.Join([]string{
		`{"at":"2026-01-01T00:00:00Z","kind":"network","networkUp":true}`,
		`garbage garbage`,
		`{"at":"2026-01-01T00:02:00Z","kind":"network","networkUp":false}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(content+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadAll(path, func(Entry) error { return nil }); err == nil {
		t.Error("mid-file corruption not reported")
	}
}

// runWorkload drives a recorder through a fixed mixed sequence.
func runWorkload(t *testing.T, clock *simtime.Virtual, rec *Recorder) {
	t.Helper()
	if err := rec.AddTopic(core.BufferConfig("t", 4, 8)); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetNetwork(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		life := time.Duration(0)
		if i%3 == 0 {
			life = 90 * time.Minute
		}
		if err := rec.Notify(note(msg.ID(fmt.Sprintf("n%02d", i)), float64(i%5), clock.Now(), life)); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Minute)
		switch i {
		case 4:
			if err := rec.SetNetwork(false); err != nil {
				t.Fatal(err)
			}
		case 6:
			if err := rec.SetNetwork(true); err != nil {
				t.Fatal(err)
			}
		case 8:
			if err := rec.Read(msg.ReadRequest{Topic: "t", N: 4, QueueSize: 8}); err != nil {
				t.Fatal(err)
			}
		case 10:
			if err := rec.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "n07", NewRank: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

type sink struct {
	got []*msg.Notification
}

func (s *sink) Forward(n *msg.Notification) error {
	s.got = append(s.got, n)
	return nil
}

func TestRecoverRebuildsState(t *testing.T) {
	path := tmpJournal(t)

	// Original life: a journaled proxy handles a workload, then "crashes".
	clock := simtime.NewVirtual(t0)
	dev := &sink{}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	proxy := core.New(clock, dev)
	rec := NewRecorder(clock, proxy, j)
	runWorkload(t, clock, rec)
	want, ok := proxy.Snapshot("t")
	if !ok {
		t.Fatal("no snapshot")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: replay into a fresh proxy on a fresh clock, advancing
	// virtual time to each entry's instant.
	clock2 := simtime.NewVirtual(t0)
	dev2 := &sink{}
	rec2, err := Recover(clock2, func(at time.Time) { clock2.RunUntil(at) }, dev2, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if len(dev2.got) != 0 {
		t.Fatalf("recovery re-forwarded %d messages to the device", len(dev2.got))
	}
	got, ok := rec2.Proxy().Snapshot("t")
	if !ok {
		t.Fatal("recovered proxy lost the topic")
	}
	// The recovered network state is down by design; everything else
	// must match the pre-crash snapshot.
	if got.Outgoing != want.Outgoing || got.Prefetch != want.Prefetch ||
		got.Holding != want.Holding || got.Forwarded != want.Forwarded ||
		got.History != want.History || got.PrefetchLimit != want.PrefetchLimit ||
		got.QueueSizeView != want.QueueSizeView {
		t.Errorf("recovered state diverged:\n  want %+v\n  got  %+v", want, got)
	}

	// Post-recovery service: the device reconnects; its read corrects
	// the queue view and fresh traffic flows again.
	rec2.Proxy().SetNetwork(true)
	if err := rec2.Proxy().Read(msg.ReadRequest{Topic: "t", N: 4}); err != nil {
		t.Fatal(err)
	}
	rec2.Proxy().Notify(note("fresh", 5, clock2.Now(), 0))
	found := false
	for _, n := range dev2.got {
		if n.ID == "fresh" {
			found = true
		}
	}
	if !found {
		t.Error("recovered proxy does not serve fresh traffic")
	}
}

func TestRecoverExpiredTimersFire(t *testing.T) {
	path := tmpJournal(t)
	clock := simtime.NewVirtual(t0)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	proxy := core.New(clock, &sink{})
	rec := NewRecorder(clock, proxy, j)
	if err := rec.AddTopic(core.OnDemandConfig("t", 4)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Notify(note("short", 5, clock.Now(), time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover "two hours later": the notification is already expired and
	// the replayed expiry timer fires when the clock catches up.
	clock2 := simtime.NewVirtual(t0)
	rec2, err := Recover(clock2, func(at time.Time) { clock2.RunUntil(at) }, &sink{}, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	clock2.Advance(2 * time.Hour)
	snap, _ := rec2.Proxy().Snapshot("t")
	if snap.Prefetch != 0 {
		t.Errorf("expired notification still queued after recovery: %+v", snap)
	}
}

func TestCompactShrinksAndPreservesState(t *testing.T) {
	path := tmpJournal(t)
	clock := simtime.NewVirtual(t0)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	proxy := core.New(clock, &sink{})
	rec := NewRecorder(clock, proxy, j)
	runWorkload(t, clock, rec)
	want, _ := proxy.Snapshot("t")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	before := countEntries(t, path)
	compactAt := clock.Now().Add(3 * time.Hour) // the 90m-lifetime notes are expired
	kept, err := Compact(path, compactAt)
	if err != nil {
		t.Fatal(err)
	}
	if kept >= before {
		t.Errorf("compact kept %d of %d entries", kept, before)
	}

	// Recovery from the compacted journal preserves the live message
	// set and tuning state: every live message is either still queued or
	// recorded as forwarded, and the split is reconciled by the next
	// read (§3.5). Expired messages are gone by design.
	clock2 := simtime.NewVirtual(t0)
	rec2, err := Recover(clock2, func(at time.Time) { clock2.RunUntil(at) }, &sink{}, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	clock2.RunUntil(clock.Now())
	got, ok := rec2.Proxy().Snapshot("t")
	if !ok {
		t.Fatal("compacted journal lost the topic")
	}
	const liveNotes = 8 // 12 workload arrivals minus 4 with 90m lifetimes
	if total := got.Prefetch + got.Outgoing + got.Holding + got.Forwarded; total != liveNotes {
		t.Errorf("live message set = %d, want %d (%+v)", total, liveNotes, got)
	}
	if got.History != liveNotes {
		t.Errorf("history = %d, want %d", got.History, liveNotes)
	}
	if got.PrefetchLimit != want.PrefetchLimit {
		t.Errorf("prefetch limit diverged: %d vs %d", got.PrefetchLimit, want.PrefetchLimit)
	}
	// The queue view may differ (expired messages' transfers inflated
	// the original); it reconciles at the next read, so no assertion.
}

func TestCompactDropsRemovedTopics(t *testing.T) {
	path := tmpJournal(t)
	clock := simtime.NewVirtual(t0)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	proxy := core.New(clock, &sink{})
	rec := NewRecorder(clock, proxy, j)
	if err := rec.AddTopic(core.OnlineConfig("gone")); err != nil {
		t.Fatal(err)
	}
	if err := rec.AddTopic(core.OnlineConfig("kept")); err != nil {
		t.Fatal(err)
	}
	if err := rec.RemoveTopic("gone"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path, clock.Now()); err != nil {
		t.Fatal(err)
	}
	clock2 := simtime.NewVirtual(t0)
	rec2, err := Recover(clock2, nil, &sink{}, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	topics := rec2.Proxy().Topics()
	if len(topics) != 1 || topics[0] != "kept" {
		t.Errorf("topics after compaction = %v", topics)
	}
}

func countEntries(t *testing.T, path string) int {
	t.Helper()
	n := 0
	if err := ReadAll(path, func(Entry) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestReadAllTornTailEveryOffset truncates a journal at every byte
// offset inside its final entry and asserts each truncation replays the
// preceding entries cleanly, reporting the dropped tail through warnf.
// This is the crash-mid-append model: a tear can land anywhere in the
// last line, including on its trailing newline.
func TestReadAllTornTailEveryOffset(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.OnlineConfig("t")
	full := []Entry{
		{At: t0, Kind: KindAddTopic, TopicConfig: &cfg},
		{At: t0.Add(time.Minute), Kind: KindNotify, Notification: note("a", 3, t0, time.Hour)},
		{At: t0.Add(2 * time.Minute), Kind: KindNotify, Notification: note("b", 2, t0, time.Hour)},
	}
	for _, e := range full {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := strings.LastIndex(strings.TrimRight(string(raw), "\n"), "\n") + 1

	for cut := lastStart; cut < len(raw); cut++ {
		trunc := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.journal", cut))
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var warned []string
		warnf := func(format string, args ...any) {
			warned = append(warned, fmt.Sprintf(format, args...))
		}
		count := 0
		if err := ReadAllOpts(trunc, warnf, func(Entry) error {
			count++
			return nil
		}); err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		// Cutting exactly at the closing brace leaves a complete final
		// line (only the newline is missing), which must still replay.
		// Cutting at the line start leaves a clean, shorter journal —
		// nothing torn, nothing to warn about.
		wantCount := len(full) - 1
		wantWarn := cut > lastStart
		if cut == len(raw)-1 {
			wantCount = len(full)
			wantWarn = false
		}
		if count != wantCount {
			t.Fatalf("cut at byte %d: replayed %d entries, want %d", cut, count, wantCount)
		}
		if wantWarn && len(warned) == 0 {
			t.Fatalf("cut at byte %d: torn tail dropped without a warning", cut)
		}
		if !wantWarn && len(warned) != 0 {
			t.Fatalf("cut at byte %d: spurious warning %q", cut, warned)
		}
	}
}

// TestReadAllOversizedEntry regression-tests the scanner-era failure
// mode: one entry larger than any fixed line buffer must replay, and so
// must everything after it, instead of the scan silently ending there.
func TestReadAllOversizedEntry(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	big := note("big", 1, t0, time.Hour)
	big.Payload = make([]byte, 2<<20) // 2 MiB: far beyond the old 1 MiB scanner cap once JSON-encoded
	entries := []Entry{
		{At: t0, Kind: KindNotify, Notification: big},
		{At: t0.Add(time.Minute), Kind: KindNotify, Notification: note("after", 2, t0, time.Hour)},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []msg.ID
	if err := ReadAll(path, func(e Entry) error {
		got = append(got, e.Notification.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "big" || got[1] != "after" {
		t.Fatalf("replayed %v, want [big after]", got)
	}
}
