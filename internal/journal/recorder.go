package journal

import (
	"fmt"
	"os"
	"sort"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

// Recorder wraps a proxy so every input is journaled before it is applied
// (write-ahead). Like the proxy, it is single-threaded under the owning
// scheduler.
type Recorder struct {
	proxy *core.Proxy
	sched simtime.Scheduler
	j     *Journal
}

// NewRecorder wraps an existing proxy with a journal.
func NewRecorder(sched simtime.Scheduler, proxy *core.Proxy, j *Journal) *Recorder {
	return &Recorder{proxy: proxy, sched: sched, j: j}
}

// Proxy exposes the wrapped proxy for read-only inspection.
func (r *Recorder) Proxy() *core.Proxy { return r.proxy }

// Close closes the underlying journal.
func (r *Recorder) Close() error { return r.j.Close() }

func (r *Recorder) log(e Entry) error {
	e.At = r.sched.Now()
	return r.j.Append(e)
}

// AddTopic journals and applies a topic registration.
func (r *Recorder) AddTopic(cfg core.TopicConfig) error {
	if err := r.log(Entry{Kind: KindAddTopic, TopicConfig: &cfg}); err != nil {
		return err
	}
	return r.proxy.AddTopic(cfg)
}

// RemoveTopic journals and applies a topic removal.
func (r *Recorder) RemoveTopic(name string) error {
	if err := r.log(Entry{Kind: KindRemoveTopic, TopicName: name}); err != nil {
		return err
	}
	return r.proxy.RemoveTopic(name)
}

// Notify journals and applies a notification arrival.
func (r *Recorder) Notify(n *msg.Notification) error {
	if err := r.log(Entry{Kind: KindNotify, Notification: n}); err != nil {
		return err
	}
	r.proxy.Notify(n)
	return nil
}

// ApplyRankUpdate journals and applies a rank revision.
func (r *Recorder) ApplyRankUpdate(u msg.RankUpdate) error {
	if err := r.log(Entry{Kind: KindRankUpdate, Update: &u}); err != nil {
		return err
	}
	r.proxy.ApplyRankUpdate(u)
	return nil
}

// Read journals and applies a device read.
func (r *Recorder) Read(req msg.ReadRequest) error {
	if err := r.log(Entry{Kind: KindRead, Read: &req}); err != nil {
		return err
	}
	return r.proxy.Read(req)
}

// Resume journals and applies a session-resumption reconciliation.
func (r *Recorder) Resume(topic string, have, read msg.IDSet) error {
	payload := &ResumePayload{Topic: topic, Have: idSlice(have), Read: idSlice(read)}
	if err := r.log(Entry{Kind: KindResume, Resume: payload}); err != nil {
		return err
	}
	return r.proxy.Resume(topic, have, read)
}

// idSlice flattens a set for journaling, sorted for stable journals.
func idSlice(s msg.IDSet) []msg.ID {
	out := make([]msg.ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetNetwork journals and applies a last-hop status change.
func (r *Recorder) SetNetwork(up bool) error {
	if err := r.log(Entry{Kind: KindNetwork, NetworkUp: &up}); err != nil {
		return err
	}
	r.proxy.SetNetwork(up)
	return nil
}

// mutedForwarder suppresses forwarding during replay while preserving the
// proxy's decision sequence.
type mutedForwarder struct {
	out   core.Forwarder
	muted bool
}

var _ core.Forwarder = (*mutedForwarder)(nil)

func (m *mutedForwarder) Forward(n *msg.Notification) error {
	if m.muted {
		return nil
	}
	return m.out.Forward(n)
}

// Recover rebuilds a proxy from the journal at path, replaying each entry
// at its recorded instant on the hybrid scheduler, then appends new inputs
// to the same journal. The caller drives sched (an *simtime.Hybrid in
// deployment, any scheduler in tests whose clock can be advanced to the
// entries' timestamps via the advance callback) and must call GoLive-style
// switching itself after Recover returns. A torn final entry (crash
// mid-append) is skipped; warnf (nil to discard) receives the diagnostic.
func Recover(sched simtime.Scheduler, advance func(time.Time), out core.Forwarder, path string, warnf func(string, ...any)) (*Recorder, error) {
	muted := &mutedForwarder{out: out, muted: true}
	proxy := core.New(sched, muted)
	proxy.SetNetwork(false)
	err := ReadAllOpts(path, warnf, func(e Entry) error {
		if advance != nil && !e.At.IsZero() {
			advance(e.At)
		}
		switch e.Kind {
		case KindAddTopic:
			return proxy.AddTopic(*e.TopicConfig)
		case KindRemoveTopic:
			return proxy.RemoveTopic(e.TopicName)
		case KindNotify:
			proxy.Notify(e.Notification)
		case KindRankUpdate:
			proxy.ApplyRankUpdate(*e.Update)
		case KindRead:
			// Read errors during replay (for example a read for a topic
			// removed later in the journal) are not fatal.
			_ = proxy.Read(*e.Read)
		case KindNetwork:
			proxy.SetNetwork(*e.NetworkUp)
		case KindResume:
			// Like reads, resumes for topics removed later in the journal
			// are not fatal.
			_ = proxy.Resume(e.Resume.Topic, msg.NewIDSet(e.Resume.Have...), msg.NewIDSet(e.Resume.Read...))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	// Replay is done: un-mute and consider the device unreachable until
	// the deployment reports otherwise.
	muted.muted = false
	proxy.SetNetwork(false)
	j, err := Open(path)
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return NewRecorder(sched, proxy, j), nil
}

// Compact rewrites the journal at path to the entries that still
// determine proxy state as of now, preserving their original order:
// registrations of topics that were not later removed, unexpired
// notifications, rank updates that target them, and the reads and network
// changes on surviving topics. Entries for expired notifications are
// dropped; because their transfers influenced the proxy's view of the
// client queue, a recovered proxy's split between "already forwarded" and
// "still queued" can differ for the live messages — the READ protocol
// reconciles that at the device's next read, exactly as it does after a
// crash with an in-flight transfer. The live message set, topic
// configuration, and tuning state are preserved exactly.
//
// Compact returns the number of entries kept. It must not run concurrently
// with an appender on the same path.
func Compact(path string, now time.Time) (int, error) {
	var entries []Entry
	if err := ReadAll(path, func(e Entry) error {
		entries = append(entries, e)
		return nil
	}); err != nil {
		return 0, fmt.Errorf("compact: %w", err)
	}

	// Pass 1: which topics survive, and which notifications are live.
	topicAdds := make(map[string]int) // topic -> index of last add
	liveNotes := make(map[msg.ID]bool)
	for i, e := range entries {
		switch e.Kind {
		case KindAddTopic:
			topicAdds[e.TopicConfig.Name] = i
		case KindRemoveTopic:
			delete(topicAdds, e.TopicName)
		case KindNotify:
			if !e.Notification.Expired(now) {
				liveNotes[e.Notification.ID] = true
			}
		}
	}
	surviving := func(topic string) bool {
		_, ok := topicAdds[topic]
		return ok
	}

	// Pass 2: order-preserving filter.
	out := make([]Entry, 0, len(entries))
	for i, e := range entries {
		keep := false
		switch e.Kind {
		case KindAddTopic:
			idx, ok := topicAdds[e.TopicConfig.Name]
			keep = ok && idx == i
		case KindRemoveTopic:
			// Removals are resolved into the surviving add set.
		case KindNotify:
			keep = liveNotes[e.Notification.ID] && surviving(e.Notification.Topic)
		case KindRankUpdate:
			keep = liveNotes[e.Update.ID] && surviving(e.Update.Topic)
		case KindRead:
			keep = surviving(e.Read.Topic)
		case KindNetwork:
			keep = true
		case KindResume:
			keep = surviving(e.Resume.Topic)
		}
		if keep {
			out = append(out, e)
		}
	}

	tmp := path + ".compact"
	j, err := Open(tmp)
	if err != nil {
		return 0, fmt.Errorf("compact: %w", err)
	}
	for _, e := range out {
		if err := j.Append(e); err != nil {
			_ = j.Close()
			return 0, fmt.Errorf("compact: %w", err)
		}
	}
	if err := j.Sync(); err != nil {
		_ = j.Close()
		return 0, fmt.Errorf("compact: %w", err)
	}
	if err := j.Close(); err != nil {
		return 0, fmt.Errorf("compact: %w", err)
	}
	if err := replaceFile(tmp, path); err != nil {
		return 0, fmt.Errorf("compact: %w", err)
	}
	return len(out), nil
}

func replaceFile(from, to string) error {
	return os.Rename(from, to)
}
