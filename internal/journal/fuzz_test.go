package journal

// Fuzz target: ReadAll must never panic on arbitrary file contents, and
// must either produce entries or a clean error.

import (
	"os"
	"path/filepath"
	"testing"
)

func FuzzReadAll(f *testing.F) {
	f.Add([]byte(`{"at":"2026-01-01T00:00:00Z","kind":"network","networkUp":true}` + "\n"))
	f.Add([]byte(`{"at":"2026-01-01T00:00:00Z","kind":"notify","notification":{"id":"a","topic":"t","rank":1}}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		count := 0
		err := ReadAll(path, func(e Entry) error {
			count++
			if verr := e.Validate(); verr != nil {
				t.Fatalf("ReadAll surfaced an invalid entry: %v", verr)
			}
			return nil
		})
		_ = err // garbage may error; panics are the failure mode
	})
}
