package device

import (
	"errors"
	"math"
	"testing"
	"time"

	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeBackend records read requests and can push notifications back into
// the device (as the proxy would) when a read arrives.
type fakeBackend struct {
	dev      *Device
	requests []msg.ReadRequest
	respond  []*msg.Notification
	err      error
}

var _ ReadBackend = (*fakeBackend)(nil)

func (b *fakeBackend) Read(req msg.ReadRequest) error {
	b.requests = append(b.requests, req)
	if b.err != nil {
		return b.err
	}
	for _, n := range b.respond {
		if err := b.dev.Receive(n); err != nil {
			return err
		}
	}
	b.respond = nil
	return nil
}

type fixture struct {
	sched   *simtime.Virtual
	lnk     *link.Link
	backend *fakeBackend
	dev     *Device
}

func newFixture(cfg Config) *fixture {
	sched := simtime.NewVirtual(t0)
	lnk := link.New(sched, true)
	backend := &fakeBackend{}
	dev := New(sched, lnk, backend, cfg)
	backend.dev = dev
	return &fixture{sched: sched, lnk: lnk, backend: backend, dev: dev}
}

func (f *fixture) note(id msg.ID, rank float64, life time.Duration) *msg.Notification {
	n := &msg.Notification{ID: id, Topic: "t", Rank: rank, Published: f.sched.Now()}
	if life > 0 {
		n.Expires = f.sched.Now().Add(life)
	}
	return n
}

func TestReceiveAndRead(t *testing.T) {
	f := newFixture(Config{})
	for i, r := range []float64{1, 5, 3} {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if f.dev.QueueLen("t") != 3 {
		t.Fatalf("QueueLen = %d", f.dev.QueueLen("t"))
	}
	batch, err := f.dev.Read("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].ID != "b" || batch[1].ID != "c" {
		t.Errorf("read %v", batch)
	}
	if f.dev.QueueLen("t") != 1 {
		t.Errorf("QueueLen after read = %d", f.dev.QueueLen("t"))
	}
	s := f.dev.Stats()
	if s.Received != 3 || s.ReadCount != 2 {
		t.Errorf("stats = %+v", s)
	}
	read := f.dev.ReadSet("t")
	if !read.Contains("b") || !read.Contains("c") || read.Contains("a") {
		t.Errorf("ReadSet = %v", read)
	}
}

func TestUnlimitedRead(t *testing.T) {
	f := newFixture(Config{})
	for i := 0; i < 5; i++ {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := f.dev.Read("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Errorf("unlimited read returned %d", len(batch))
	}
	// The relayed request says N=0 and offers everything.
	if len(f.backend.requests) != 1 || f.backend.requests[0].N != 0 ||
		len(f.backend.requests[0].ClientEvents) != 5 {
		t.Errorf("request = %+v", f.backend.requests)
	}
}

func TestReadRelaysBestLocalIDs(t *testing.T) {
	f := newFixture(Config{})
	for i, r := range []float64{1, 9, 5} {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.dev.Read("t", 2); err != nil {
		t.Fatal(err)
	}
	req := f.backend.requests[0]
	if req.N != 2 || req.QueueSize != 3 {
		t.Errorf("request = %+v", req)
	}
	if len(req.ClientEvents) != 2 || req.ClientEvents[0] != "b" || req.ClientEvents[1] != "c" {
		t.Errorf("ClientEvents = %v", req.ClientEvents)
	}
}

func TestReadMergesProxyResponse(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("local", 2, 0)); err != nil {
		t.Fatal(err)
	}
	f.backend.respond = []*msg.Notification{f.note("better", 7, 0)}
	batch, err := f.dev.Read("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].ID != "better" {
		t.Errorf("read %v, want the proxy's better event", batch)
	}
	if f.dev.QueueLen("t") != 1 {
		t.Errorf("QueueLen = %d, want the local event still queued", f.dev.QueueLen("t"))
	}
}

func TestReadOfflineServedLocally(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("a", 2, 0)); err != nil {
		t.Fatal(err)
	}
	f.lnk.SetUp(false)
	batch, err := f.dev.Read("t", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].ID != "a" {
		t.Errorf("offline read %v", batch)
	}
	// The read state still reaches the proxy's algorithm (Figure 7's
	// READ is network-agnostic), but no upstream transfer is accounted.
	if len(f.backend.requests) != 1 {
		t.Errorf("relayed %d requests, want 1", len(f.backend.requests))
	}
	if f.dev.Stats().RequestsSent != 0 {
		t.Error("offline read accounted an upstream transfer")
	}
	if f.lnk.Stats().MessagesUp != 0 {
		t.Error("offline read crossed the link")
	}
}

func TestReceiveWhileDownFails(t *testing.T) {
	f := newFixture(Config{})
	f.lnk.SetUp(false)
	err := f.dev.Receive(f.note("a", 2, 0))
	if !errors.Is(err, link.ErrDown) {
		t.Errorf("err = %v, want ErrDown", err)
	}
	if f.dev.Stats().Received != 0 {
		t.Error("failed receive was counted")
	}
}

func TestDuplicateReceiveIsRankUpdate(t *testing.T) {
	f := newFixture(Config{RankThreshold: 3})
	if err := f.dev.Receive(f.note("a", 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.dev.Receive(f.note("a", 8, 0)); err != nil {
		t.Fatal(err)
	}
	s := f.dev.Stats()
	if s.Received != 1 || s.Updates != 1 {
		t.Errorf("stats = %+v", s)
	}
	batch, err := f.dev.Read("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Rank != 8 {
		t.Errorf("rank = %v, want updated 8", batch[0].Rank)
	}
}

func TestRankDropSignalDiscardsLocalCopy(t *testing.T) {
	f := newFixture(Config{RankThreshold: 3})
	if err := f.dev.Receive(f.note("a", 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.dev.Receive(f.note("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if f.dev.QueueLen("t") != 0 {
		t.Error("dropped notification still queued")
	}
	if f.dev.Stats().RankDropsApplied != 1 {
		t.Errorf("RankDropsApplied = %d", f.dev.Stats().RankDropsApplied)
	}
}

func TestUpdateForConsumedNotificationIgnored(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("a", 5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Read("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.dev.Receive(f.note("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if f.dev.Stats().Updates != 1 {
		t.Errorf("Updates = %d", f.dev.Stats().Updates)
	}
	if f.dev.QueueLen("t") != 0 {
		t.Error("consumed notification resurrected")
	}
}

func TestStorageEviction(t *testing.T) {
	f := newFixture(Config{Capacity: 2})
	for i, r := range []float64{5, 1, 3} {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if f.dev.QueueLen("t") != 2 {
		t.Fatalf("QueueLen = %d, want 2", f.dev.QueueLen("t"))
	}
	if f.dev.Stats().EvictedStorage != 1 {
		t.Errorf("EvictedStorage = %d", f.dev.Stats().EvictedStorage)
	}
	// The lowest-ranked ("b", rank 1) must be the victim.
	f.lnk.SetUp(false)
	batch, err := f.dev.Read("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].ID != "a" || batch[1].ID != "c" {
		t.Errorf("survivors = %v, want [a c]", batch)
	}
}

func TestExpiredUnreadPurged(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("short", 5, time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := f.dev.Receive(f.note("long", 1, 0)); err != nil {
		t.Fatal(err)
	}
	f.sched.Advance(time.Hour)
	batch, err := f.dev.Read("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].ID != "long" {
		t.Errorf("read %v, want [long]", batch)
	}
	if f.dev.Stats().ExpiredUnread != 1 {
		t.Errorf("ExpiredUnread = %d", f.dev.Stats().ExpiredUnread)
	}
}

func TestExpiredOnArrivalCountsAsWaste(t *testing.T) {
	f := newFixture(Config{})
	n := f.note("stale", 5, time.Minute)
	f.sched.Advance(time.Hour)
	if err := f.dev.Receive(n); err != nil {
		t.Fatal(err)
	}
	s := f.dev.Stats()
	if s.Received != 1 || s.ExpiredUnread != 1 {
		t.Errorf("stats = %+v", s)
	}
	if f.dev.QueueLen("t") != 0 {
		t.Error("stale notification queued")
	}
}

func TestBatteryExhaustion(t *testing.T) {
	f := newFixture(Config{BatteryCapacity: 2.4, ReceiveCost: 1, RequestCost: 0.5})
	if err := f.dev.Receive(f.note("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.dev.Receive(f.note("b", 2, 0)); err != nil {
		t.Fatal(err)
	}
	rem, ok := f.dev.BatteryRemaining()
	if !ok || math.Abs(rem-0.4) > 1e-9 {
		t.Errorf("BatteryRemaining = %v, %v", rem, ok)
	}
	// The next read drains the final 0.5 budget for the request...
	if _, err := f.dev.Read("t", 1); err != nil {
		t.Fatal(err)
	}
	// ...after which the device is inoperable.
	if err := f.dev.Receive(f.note("c", 3, 0)); !errors.Is(err, ErrBatteryDead) {
		t.Errorf("Receive on dead battery: %v", err)
	}
	if _, err := f.dev.Read("t", 1); !errors.Is(err, ErrBatteryDead) {
		t.Errorf("Read on dead battery: %v", err)
	}
}

func TestBatteryUnlimitedByDefault(t *testing.T) {
	f := newFixture(Config{})
	if _, ok := f.dev.BatteryRemaining(); ok {
		t.Error("unbounded battery reported a remaining value")
	}
	for i := 0; i < 1000; i++ {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i%26))+msg.ID(rune('0'+i/26%10))+msg.ID(rune('0'+i/260)), 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if f.dev.Stats().Received != 1000 {
		t.Errorf("Received = %d", f.dev.Stats().Received)
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	f := newFixture(Config{})
	f.backend.err = errors.New("proxy unreachable")
	if _, err := f.dev.Read("t", 1); err == nil {
		t.Error("backend error swallowed")
	}
}

func TestReadEmptyTopic(t *testing.T) {
	f := newFixture(Config{})
	f.lnk.SetUp(false)
	batch, err := f.dev.Read("ghost", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 0 {
		t.Errorf("read %v from empty topic", batch)
	}
	if f.dev.QueueLen("ghost") != 0 || f.dev.ReadSet("ghost").Len() != 0 {
		t.Error("empty topic has state")
	}
}

func TestLinkAccounting(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Read("t", 1); err != nil {
		t.Fatal(err)
	}
	ls := f.lnk.Stats()
	if ls.MessagesDown != 1 || ls.MessagesUp != 1 {
		t.Errorf("link stats = %+v", ls)
	}
	if ls.BytesDown == 0 || ls.BytesUp == 0 {
		t.Errorf("byte accounting missing: %+v", ls)
	}
}
