package device

// Unit tests for the peer-cooperation primitives (Peek, ImportPeer,
// MarkRead, Refill) used by the multi-device extension.

import (
	"testing"
	"time"

	"lasthop/internal/msg"
)

func TestPeekReturnsCopiesInRankOrder(t *testing.T) {
	f := newFixture(Config{})
	for i, r := range []float64{2, 5, 1} {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := f.dev.Peek("t", 2)
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("Peek = %v", got)
	}
	// Copies: mutating the result must not touch the store.
	got[0].Rank = 0
	again := f.dev.Peek("t", 1)
	if again[0].Rank != 5 {
		t.Error("Peek exposed internal storage")
	}
	// Peeking does not consume.
	if f.dev.QueueLen("t") != 3 {
		t.Errorf("QueueLen = %d", f.dev.QueueLen("t"))
	}
	// n <= 0 means everything; unknown topics yield nothing.
	if len(f.dev.Peek("t", 0)) != 3 {
		t.Error("Peek(0) did not return everything")
	}
	if f.dev.Peek("ghost", 4) != nil {
		t.Error("Peek of unknown topic returned data")
	}
}

func TestPeekSkipsExpired(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("short", 5, time.Minute)); err != nil {
		t.Fatal(err)
	}
	f.sched.Advance(time.Hour)
	if got := f.dev.Peek("t", 4); len(got) != 0 {
		t.Errorf("Peek returned expired content: %v", got)
	}
}

func TestImportPeer(t *testing.T) {
	f := newFixture(Config{RankThreshold: 2})
	n := f.note("a", 4, 0)
	if !f.dev.ImportPeer(n) {
		t.Fatal("import of fresh notification failed")
	}
	if f.dev.ImportPeer(n) {
		t.Error("duplicate import succeeded")
	}
	if f.dev.ImportPeer(f.note("low", 1, 0)) {
		t.Error("below-threshold import succeeded")
	}
	stale := f.note("stale", 4, time.Minute)
	f.sched.Advance(time.Hour)
	if f.dev.ImportPeer(stale) {
		t.Error("expired import succeeded")
	}
	// Already-read content is not re-imported.
	if _, err := f.dev.Read("t", 4); err != nil {
		t.Fatal(err)
	}
	if f.dev.ImportPeer(f.note("a", 4, 0)) {
		t.Error("import resurrected consumed content")
	}
	if f.dev.Stats().PeerImports != 1 {
		t.Errorf("PeerImports = %d", f.dev.Stats().PeerImports)
	}
	// Imports bypass the link: no transfer accounting.
	if f.lnk.Stats().MessagesDown != 0 {
		t.Error("import crossed the last hop")
	}
}

func TestMarkReadReleasesCopies(t *testing.T) {
	f := newFixture(Config{})
	for i := 0; i < 3; i++ {
		if err := f.dev.Receive(f.note(msg.ID(rune('a'+i)), float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	released := f.dev.MarkRead("t", []msg.ID{"a", "b", "ghost"})
	if released != 2 {
		t.Fatalf("released = %d, want 2", released)
	}
	if f.dev.QueueLen("t") != 1 {
		t.Errorf("QueueLen = %d", f.dev.QueueLen("t"))
	}
	if f.dev.Stats().PeerReleases != 2 {
		t.Errorf("PeerReleases = %d", f.dev.Stats().PeerReleases)
	}
	// The marked IDs count as consumed: re-receiving them is an update.
	if err := f.dev.Receive(f.note("a", 5, 0)); err != nil {
		t.Fatal(err)
	}
	if f.dev.QueueLen("t") != 1 {
		t.Error("released notification resurrected")
	}
}

func TestRefillRequestsPeek(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Receive(f.note("have", 3, 0)); err != nil {
		t.Fatal(err)
	}
	f.backend.respond = []*msg.Notification{f.note("topup", 4, 0)}
	if err := f.dev.Refill("t", 2); err != nil {
		t.Fatal(err)
	}
	if len(f.backend.requests) != 1 {
		t.Fatalf("requests = %d", len(f.backend.requests))
	}
	req := f.backend.requests[0]
	if !req.Peek {
		t.Error("refill request not marked Peek")
	}
	if req.N != 3 || req.QueueSize != 1 || len(req.ClientEvents) != 1 {
		t.Errorf("request = %+v", req)
	}
	if f.dev.QueueLen("t") != 2 {
		t.Errorf("QueueLen after refill = %d", f.dev.QueueLen("t"))
	}
	// Nothing was consumed.
	if f.dev.Stats().ReadCount != 0 {
		t.Error("refill consumed messages")
	}
}

func TestRefillNoopWhenDownOrZero(t *testing.T) {
	f := newFixture(Config{})
	if err := f.dev.Refill("t", 0); err != nil {
		t.Fatal(err)
	}
	f.lnk.SetUp(false)
	if err := f.dev.Refill("t", 3); err != nil {
		t.Fatal(err)
	}
	if len(f.backend.requests) != 0 {
		t.Error("refill relayed while down or with zero slots")
	}
}

func TestRefillBatteryDead(t *testing.T) {
	f := newFixture(Config{BatteryCapacity: 0.1, RequestCost: 0.5})
	f.dev.stats.BatteryUsed = 0.2 // drained
	if err := f.dev.Refill("t", 1); err == nil {
		t.Error("refill succeeded on a dead battery")
	}
}
