package device

// Property tests: drive the device with random receives, reads, rank
// signals, and link flaps, and check its structural invariants after every
// step.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

func checkDeviceInvariants(t *testing.T, d *Device, topic string, step int) {
	t.Helper()
	q := d.queues[topic]
	if q == nil {
		return
	}
	read := d.readIDs[topic]
	now := d.sched.Now()

	// 1. Storage bound respected.
	if d.cfg.Capacity > 0 && q.Len() > d.cfg.Capacity {
		t.Fatalf("step %d: queue %d exceeds capacity %d", step, q.Len(), d.cfg.Capacity)
	}
	// 2. Consumed notifications never linger in the queue.
	q.Each(func(n *msg.Notification) {
		if read.Contains(n.ID) {
			t.Fatalf("step %d: consumed %s still queued", step, n.ID)
		}
		// 3. Below-threshold content is never stored.
		if n.Rank < d.cfg.RankThreshold {
			t.Fatalf("step %d: below-threshold %s stored", step, n.ID)
		}
		_ = now
	})
	// 4. Battery never exceeds its budget by more than one drain.
	if d.cfg.BatteryCapacity > 0 && d.stats.BatteryUsed > d.cfg.BatteryCapacity+d.cfg.ReceiveCost {
		t.Fatalf("step %d: battery overdrawn: %v / %v", step, d.stats.BatteryUsed, d.cfg.BatteryCapacity)
	}
	// 5. Counters are consistent: everything received was read, expired,
	// evicted, dropped, or is still queued.
	total := d.stats.ReadCount + d.stats.ExpiredUnread + d.stats.EvictedStorage +
		d.stats.RankDropsApplied + q.Len()
	if total < d.stats.Received {
		t.Fatalf("step %d: accounting leak: received %d > accounted %d", step, d.stats.Received, total)
	}
}

func TestDeviceInvariantsUnderRandomOps(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := simtime.NewVirtual(t0)
		lnk := link.New(clock, true)
		backend := &fakeBackend{}
		cfg := Config{RankThreshold: 2}
		if seed%2 == 0 {
			cfg.Capacity = 8
		}
		if seed%3 == 0 {
			cfg.BatteryCapacity = 200
		}
		dev := New(clock, lnk, backend, cfg)
		backend.dev = dev

		next := 0
		for step := 0; step < 500; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // receive
				id := msg.ID(fmt.Sprintf("r%04d", next))
				next++
				n := &msg.Notification{
					ID: id, Topic: "t",
					Rank:      float64(rng.Intn(60)) / 10,
					Published: clock.Now(),
				}
				if rng.Intn(3) == 0 {
					n.Expires = clock.Now().Add(time.Duration(1+rng.Intn(7200)) * time.Second)
				}
				_ = dev.Receive(n) // ErrDown / ErrBatteryDead are legitimate
			case 5: // rank signal for a random earlier notification
				if next > 0 {
					id := msg.ID(fmt.Sprintf("r%04d", rng.Intn(next)))
					_ = dev.Receive(&msg.Notification{
						ID: id, Topic: "t",
						Rank:      float64(rng.Intn(60)) / 10,
						Published: clock.Now(),
					})
				}
			case 6, 7: // user read
				_, _ = dev.Read("t", rng.Intn(6))
			case 8: // link flap
				lnk.SetUp(rng.Intn(2) == 0)
			case 9: // time passes
				clock.Advance(time.Duration(rng.Intn(1800)) * time.Second)
			}
			checkDeviceInvariants(t, dev, "t", step)
		}
	}
}
