// Package device models the mobile device at the end of the last hop
// (paper §2.3): a bounded notification store with low-rank eviction under
// storage pressure, a battery budget that every transfer draws from, and
// the client side of the READ protocol (§3.5) — a read offers the proxy the
// device's best local events so only better data is transferred.
package device

import (
	"errors"
	"fmt"
	"sort"

	"lasthop/internal/link"
	"lasthop/internal/msg"
	"lasthop/internal/rankedq"
	"lasthop/internal/simtime"
)

// ErrBatteryDead is returned once the battery budget is exhausted; a dead
// device can neither receive nor read.
var ErrBatteryDead = errors.New("device battery exhausted")

// ReadBackend relays a read request to the proxy. In simulation it is the
// proxy itself; in deployment it is the wire client.
type ReadBackend interface {
	Read(req msg.ReadRequest) error
}

// Config parameterizes a device.
type Config struct {
	// Capacity bounds the number of stored notifications; zero means
	// unbounded. When full, the lowest-ranked unread notification is
	// evicted — such evictions mean the message was forwarded in vain
	// (§2.3).
	Capacity int
	// BatteryCapacity is the energy budget in abstract units; zero means
	// unbounded. Every received message and every upstream request draws
	// from it.
	BatteryCapacity float64
	// ReceiveCost is the energy drawn per received message; zero
	// defaults to 1.
	ReceiveCost float64
	// RequestCost is the energy drawn per upstream read request; zero
	// defaults to 0.5.
	RequestCost float64
	// RankThreshold mirrors the subscription's qualitative limit: the
	// user does not read notifications ranked below it.
	RankThreshold float64
}

func (c Config) withDefaults() Config {
	if c.ReceiveCost == 0 {
		c.ReceiveCost = 1
	}
	if c.RequestCost == 0 {
		c.RequestCost = 0.5
	}
	return c
}

// Stats is the device's cumulative accounting.
type Stats struct {
	// Received counts distinct notifications accepted from the link.
	Received int
	// Updates counts re-forwards that only revised a known
	// notification's rank.
	Updates int
	// RankDropsApplied counts notifications discarded after a rank-drop
	// signal.
	RankDropsApplied int
	// ReadCount counts notifications the user consumed.
	ReadCount int
	// EvictedStorage counts unread notifications dropped under storage
	// pressure.
	EvictedStorage int
	// ExpiredUnread counts notifications that expired on the device
	// before the user saw them.
	ExpiredUnread int
	// RequestsSent counts upstream read requests.
	RequestsSent int
	// BatteryUsed is the consumed energy.
	BatteryUsed float64
	// PeerImports counts notifications borrowed from sibling devices
	// over the ad-hoc network.
	PeerImports int
	// PeerReleases counts local unread copies dropped because a sibling
	// device's user already read them.
	PeerReleases int
}

// Device is the mobile client. Like the proxy it is single-threaded:
// callers serialize through the owning scheduler.
type Device struct {
	sched   simtime.Scheduler
	lnk     *link.Link
	backend ReadBackend
	cfg     Config

	queues  map[string]*rankedq.Queue
	expiry  map[string]*rankedq.ExpiryIndex
	readIDs map[string]msg.IDSet // per-topic set of consumed notifications

	stats Stats
}

// New returns a device reading through the given link and backend.
func New(sched simtime.Scheduler, lnk *link.Link, backend ReadBackend, cfg Config) *Device {
	return &Device{
		sched:   sched,
		lnk:     lnk,
		backend: backend,
		cfg:     cfg.withDefaults(),
		queues:  make(map[string]*rankedq.Queue),
		expiry:  make(map[string]*rankedq.ExpiryIndex),
		readIDs: make(map[string]msg.IDSet),
	}
}

// Stats returns a copy of the cumulative accounting.
func (d *Device) Stats() Stats { return d.stats }

// BatteryRemaining returns the remaining energy budget; ok is false when
// the budget is unbounded.
func (d *Device) BatteryRemaining() (float64, bool) {
	if d.cfg.BatteryCapacity == 0 {
		return 0, false
	}
	rem := d.cfg.BatteryCapacity - d.stats.BatteryUsed
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

func (d *Device) batteryDead() bool {
	return d.cfg.BatteryCapacity > 0 && d.stats.BatteryUsed >= d.cfg.BatteryCapacity
}

func (d *Device) drain(cost float64) error {
	if d.batteryDead() {
		return ErrBatteryDead
	}
	d.stats.BatteryUsed += cost
	return nil
}

func (d *Device) topicQueue(topic string) (*rankedq.Queue, *rankedq.ExpiryIndex, msg.IDSet) {
	q, ok := d.queues[topic]
	if !ok {
		q = rankedq.NewQueue()
		d.queues[topic] = q
		d.expiry[topic] = rankedq.NewExpiryIndex()
		d.readIDs[topic] = make(msg.IDSet)
	}
	return q, d.expiry[topic], d.readIDs[topic]
}

// QueueLen returns the number of stored notifications on a topic.
func (d *Device) QueueLen(topic string) int {
	q, ok := d.queues[topic]
	if !ok {
		return 0
	}
	return q.Len()
}

// ReadSet returns a copy of the IDs the user has consumed on a topic.
func (d *Device) ReadSet(topic string) msg.IDSet {
	ids, ok := d.readIDs[topic]
	if !ok {
		return make(msg.IDSet)
	}
	return ids.Clone()
}

// Receive implements core.Forwarder: the proxy pushes one notification (or
// a rank revision under a known ID) across the link.
func (d *Device) Receive(n *msg.Notification) error {
	if err := d.drain(d.cfg.ReceiveCost); err != nil {
		return err
	}
	if err := d.lnk.Transfer(link.ProxyToDevice, transferSize(n)); err != nil {
		return fmt.Errorf("receive: %w", err)
	}
	q, exp, read := d.topicQueue(n.Topic)
	if read.Contains(n.ID) {
		// Already consumed; a revision of it is meaningless to the user.
		d.stats.Updates++
		return nil
	}
	if q.Contains(n.ID) {
		d.stats.Updates++
		if n.Rank < d.cfg.RankThreshold {
			// Rank-drop signal: discard the local copy.
			q.Remove(n.ID)
			exp.Remove(n.ID)
			d.stats.RankDropsApplied++
			return nil
		}
		q.UpdateRank(n.ID, n.Rank)
		return nil
	}
	if n.Rank < d.cfg.RankThreshold || n.Expired(d.sched.Now()) {
		// Unacceptable content still costs the transfer; it simply never
		// becomes readable (pure waste).
		d.stats.Received++
		d.stats.ExpiredUnread++
		return nil
	}
	d.stats.Received++
	if err := q.Push(n); err != nil {
		return fmt.Errorf("receive: %w", err)
	}
	if err := exp.Add(n); err != nil {
		return fmt.Errorf("receive: %w", err)
	}
	if d.cfg.Capacity > 0 {
		for q.Len() > d.cfg.Capacity {
			if victim, ok := q.PopWorst(); ok {
				exp.Remove(victim.ID)
				d.stats.EvictedStorage++
			}
		}
	}
	return nil
}

// purgeExpired lazily drops expired unread notifications on a topic.
func (d *Device) purgeExpired(topic string) {
	q, ok := d.queues[topic]
	if !ok {
		return
	}
	exp := d.expiry[topic]
	for _, id := range exp.PopExpired(d.sched.Now()) {
		if _, removed := q.Remove(id); removed {
			d.stats.ExpiredUnread++
		}
	}
}

// Read performs a user read on a topic: at most n highest-ranked unexpired
// notifications are returned and consumed (n == 0 means everything, the
// paper's Max = ∞). When the link is up, the device first offers the proxy
// its best local IDs so the proxy transfers only better data (§3.5); when
// the link is down, the read is served purely from the local queue.
func (d *Device) Read(topic string, n int) ([]*msg.Notification, error) {
	if d.batteryDead() {
		return nil, ErrBatteryDead
	}
	d.purgeExpired(topic)
	q, exp, read := d.topicQueue(topic)

	// The read is always relayed to the proxy's READ handler — Figure 7's
	// READ does not check network status; only try_forwarding does. When
	// the link is down the request rides along at reconnection (modeled
	// as free), the proxy updates its view of the client queue, and any
	// "better data" it selects waits in the outgoing queue until the
	// link returns. When the link is up the request costs one upstream
	// transfer and the response arrives before the read completes.
	//
	// An unlimited read (n == 0, the paper's Max = ∞) asks the proxy for
	// everything by sending N = 0 and offering the whole local queue.
	haveN := n
	if haveN == 0 || haveN > q.Len() {
		haveN = q.Len()
	}
	have := q.BestN(haveN)
	clientEvents := make([]msg.ID, 0, len(have))
	for _, h := range have {
		clientEvents = append(clientEvents, h.ID)
	}
	req := msg.ReadRequest{
		Topic:        topic,
		N:            n,
		QueueSize:    q.Len(),
		ClientEvents: clientEvents,
	}
	relay := true
	if d.lnk.Up() {
		if err := d.drain(d.cfg.RequestCost); err != nil {
			relay = false
		} else if err := d.lnk.Transfer(link.DeviceToProxy, requestSize(&req)); err != nil {
			relay = false
		} else {
			d.stats.RequestsSent++
		}
	}
	if relay {
		// The proxy forwards the difference synchronously through
		// Receive before Read returns (when the link allows).
		if err := d.backend.Read(req); err != nil {
			return nil, fmt.Errorf("read relay: %w", err)
		}
	}

	var batch []*msg.Notification
	if n == 0 {
		batch = q.TakeBestN(q.Len())
	} else {
		batch = q.TakeBestN(n)
	}
	for _, b := range batch {
		exp.Remove(b.ID)
		read.Add(b.ID)
	}
	d.stats.ReadCount += len(batch)
	sort.Slice(batch, func(i, j int) bool { return batch[i].Before(batch[j]) })
	return batch, nil
}

// Peek returns copies of the up-to-n highest-ranked unexpired unread
// notifications without consuming them. Peer devices use it to offer their
// cache over an ad-hoc network (§4 future work).
func (d *Device) Peek(topic string, n int) []*msg.Notification {
	d.purgeExpired(topic)
	q, ok := d.queues[topic]
	if !ok {
		return nil
	}
	if n <= 0 || n > q.Len() {
		n = q.Len()
	}
	best := q.BestN(n)
	out := make([]*msg.Notification, 0, len(best))
	for _, b := range best {
		out = append(out, b.Clone())
	}
	return out
}

// ImportPeer stores a notification borrowed from a peer device's cache
// over the ad-hoc network. It bypasses the last hop (no link transfer, no
// battery charge for the cellular radio) and reports whether the
// notification was new here.
func (d *Device) ImportPeer(n *msg.Notification) bool {
	q, exp, read := d.topicQueue(n.Topic)
	if read.Contains(n.ID) || q.Contains(n.ID) {
		return false
	}
	if n.Expired(d.sched.Now()) || n.Rank < d.cfg.RankThreshold {
		return false
	}
	if err := q.Push(n); err != nil {
		return false
	}
	_ = exp.Add(n)
	d.stats.PeerImports++
	return true
}

// MarkRead records that the user consumed the given notifications on a
// sibling device: local unread copies are dropped (they would otherwise
// become waste) and the IDs join the consumed set so re-forwards are
// ignored. It returns how many local copies were released.
func (d *Device) MarkRead(topic string, ids []msg.ID) int {
	q, exp, read := d.topicQueue(topic)
	released := 0
	for _, id := range ids {
		read.Add(id)
		if _, ok := q.Remove(id); ok {
			exp.Remove(id)
			released++
		}
	}
	d.stats.PeerReleases += released
	return released
}

// Refill asks the proxy to top the local cache up by `slots` messages
// without counting as a user read (a Peek request). Sibling-device
// cooperation calls it after gossip releases local copies, so the proxy's
// view of the queue stays accurate and prefetching does not stall. It is a
// no-op while the link is down.
func (d *Device) Refill(topic string, slots int) error {
	if slots <= 0 || !d.lnk.Up() {
		return nil
	}
	if d.batteryDead() {
		return ErrBatteryDead
	}
	d.purgeExpired(topic)
	q, _, _ := d.topicQueue(topic)
	have := q.BestN(q.Len())
	clientEvents := make([]msg.ID, 0, len(have))
	for _, h := range have {
		clientEvents = append(clientEvents, h.ID)
	}
	req := msg.ReadRequest{
		Topic:        topic,
		N:            q.Len() + slots,
		QueueSize:    q.Len(),
		ClientEvents: clientEvents,
		Peek:         true,
	}
	if err := d.drain(d.cfg.RequestCost); err != nil {
		return err
	}
	if err := d.lnk.Transfer(link.DeviceToProxy, requestSize(&req)); err != nil {
		return fmt.Errorf("refill: %w", err)
	}
	d.stats.RequestsSent++
	if err := d.backend.Read(req); err != nil {
		return fmt.Errorf("refill relay: %w", err)
	}
	return nil
}

// transferSize approximates a notification's size on the wire.
func transferSize(n *msg.Notification) int {
	return 64 + len(n.Payload)
}

// requestSize approximates a read request's size on the wire.
func requestSize(r *msg.ReadRequest) int {
	return 32 + 8*len(r.ClientEvents)
}
