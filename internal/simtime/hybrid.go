package simtime

import (
	"sync"
	"time"
)

// Hybrid is a scheduler for crash recovery: it starts in replay mode,
// where time is virtual and driven by recorded timestamps, and then goes
// live on the wall clock. Timers armed during replay (for example
// notification expirations scheduled months ago) migrate automatically:
// those already due fire during GoLive, the rest fire at their original
// instants via a wall-clock pump.
//
// Replay-mode methods are single-threaded, like Virtual. After GoLive the
// scheduler has Wall's serialization guarantees.
type Hybrid struct {
	v    *Virtual
	wall *Wall
	live bool

	pumpMu sync.Mutex
	pump   Timer
}

var _ Scheduler = (*Hybrid)(nil)

// NewHybrid returns a hybrid scheduler starting replay at the given
// instant.
func NewHybrid(start time.Time) *Hybrid {
	return &Hybrid{v: NewVirtual(start), wall: NewWall()}
}

// Now returns virtual time during replay and wall time after GoLive.
func (h *Hybrid) Now() time.Time {
	if h.live {
		return h.wall.Now()
	}
	return h.v.Now()
}

// Schedule arms a timer on the active underlying scheduler.
func (h *Hybrid) Schedule(d time.Duration, fn func()) Timer {
	if h.live {
		return h.wall.Schedule(d, fn)
	}
	return h.v.Schedule(d, fn)
}

// Run executes fn serialized with the active scheduler's callbacks.
func (h *Hybrid) Run(fn func()) {
	if h.live {
		h.wall.Run(fn)
		return
	}
	fn()
}

// AdvanceTo moves virtual time forward during replay, firing due timers.
// It is a no-op after GoLive.
func (h *Hybrid) AdvanceTo(t time.Time) {
	if h.live {
		return
	}
	h.v.RunUntil(t)
}

// Live reports whether the scheduler has switched to the wall clock.
func (h *Hybrid) Live() bool { return h.live }

// GoLive fires every virtual timer due by the current wall-clock instant,
// switches to the wall clock, and arms a pump that fires the remaining
// replay-era timers at their original instants.
func (h *Hybrid) GoLive() {
	if h.live {
		return
	}
	h.v.RunUntil(time.Now())
	h.live = true
	h.armPump()
}

// armPump schedules the next drain of replay-era timers. It runs under the
// wall scheduler's mutex (from GoLive's caller or a previous pump), which
// serializes it with every live callback.
func (h *Hybrid) armPump() {
	h.pumpMu.Lock()
	defer h.pumpMu.Unlock()
	next, ok := h.v.NextDeadline()
	if !ok {
		h.pump = nil
		return
	}
	h.pump = h.wall.Schedule(time.Until(next), func() {
		h.v.RunUntil(time.Now())
		h.armPump()
	})
}

// Close stops the wall clock (and the pump).
func (h *Hybrid) Close() {
	h.pumpMu.Lock()
	if h.pump != nil {
		h.pump.Cancel()
	}
	h.pumpMu.Unlock()
	h.wall.Close()
}
