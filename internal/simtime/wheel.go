// Hierarchical timing wheel (Varghese & Lauck) backing the multi-tenant
// proxy host. Wall arms one runtime timer per scheduled callback, which is
// what the host is trying to escape: a node with a million queued
// notifications would hold a million entries in the runtime timer heap.
// The wheel stores timers in coarse-tick buckets instead — O(1) arm and
// cancel with zero steady-state allocation, one ticker goroutine per wheel
// — at the cost of quantizing fire times up to one tick late.
package simtime

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 8 // 64^8 ticks of horizon; beyond that clamps to the top level
)

// Wheel is a hierarchical timing wheel implementing Scheduler. It runs in
// one of two modes:
//
//   - Live (NewWallWheel): a ticker goroutine advances the wheel against
//     the wall clock. Callbacks run serialized with Run, exactly like Wall,
//     but arming a timer only links a recycled list node into a bucket —
//     no runtime timer, no allocation in steady state.
//   - Manual (NewWheel): a deterministic driver (RunUntil / Advance) fires
//     due callbacks in the same (deadline, arm-order) order Virtual uses,
//     so simulations and property tests can compare the two directly.
//
// Fire times are quantized. In manual mode a callback scheduled for
// instant T runs at the first tick boundary at or after T: never early, at
// most one tick late. In live mode Schedule charges one extra tick of
// slack (it reads the coarse tick counter, not the wall clock), so a
// callback runs no earlier than its requested instant and at most two
// ticks late, plus whatever the ticker goroutine is delayed by.
//
// Timer handles and recycling: timer nodes return to a free list when
// they fire or are cancelled, so arming under churn does not allocate.
// The price is a contract on stale handles — Cancel must only be called
// on a handle that is serialized with the wheel's callbacks (from inside
// a callback or a Run closure). Within that discipline Cancel is always
// safe, including on a timer already collected into the currently firing
// batch (it wins, as under Virtual). Cancelling a handle whose callback
// has already run returns false until the node is re-armed for a new
// timer; callers that drop handles once their callback runs (as the
// proxy's timer maps do) never observe a re-armed node.
type Wheel struct {
	// cbMu serializes callbacks and Run closures (the role Wall.mu plays).
	// Lock order: cbMu before mu; Schedule/Cancel take only mu so timer
	// management from inside callbacks cannot deadlock.
	cbMu sync.Mutex
	// mu guards the bucket structure, the free list, and timer state. It
	// is a spinlock: critical sections are a handful of pointer writes,
	// and the host arms/cancels one timer per notification on its hot
	// path, where sync.Mutex overhead is measurable.
	mu wheelLock

	start   time.Time
	tickNs  int64
	cur     int64 // last processed tick; logical now >= start + cur*tick
	nowNs   int64 // manual mode: simulated now, nanoseconds since start
	seq     uint64
	pending int
	closed  bool
	free    *wheelTimer // recycled nodes, linked through next
	buckets [wheelLevels][wheelSlots]wheelList

	live   bool
	ticker *time.Ticker
	done   chan struct{}

	// tickHook, when set, runs at the end of every live advance (under
	// cbMu, after mu is released) with the ticks processed, timers
	// cascaded, and wall time spent. The host uses it as the worker
	// heartbeat: an idle wheel still advances, so a fresh stamp means
	// the loop is alive, while a wedged callback holds cbMu and lets the
	// stamp age — exactly the stall the watchdog looks for.
	tickHook atomic.Pointer[func(ticks, cascaded, busyNs int64)]
}

var _ Scheduler = (*Wheel)(nil)

// wheelLock is a test-and-set spinlock. Hold times are tens of
// nanoseconds (pointer splices under mu), so spinning beats parking; the
// Gosched fallback keeps a pre-empted holder from starving spinners.
type wheelLock struct {
	v atomic.Int32
}

func (l *wheelLock) lock() {
	if l.v.CompareAndSwap(0, 1) {
		return
	}
	for spins := 0; ; spins++ {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		if spins >= 64 {
			runtime.Gosched()
			spins = 0
		}
	}
}

func (l *wheelLock) unlock() {
	l.v.Store(0)
}

type wheelList struct {
	head, tail *wheelTimer
}

func (l *wheelList) push(t *wheelTimer) {
	t.prev = l.tail
	t.next = nil
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
	t.list = l
}

func (l *wheelList) remove(t *wheelTimer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.prev, t.next, t.list = nil, nil, nil
}

const (
	wtFree      = iota // on the free list (or the dead sentinel)
	wtPending          // linked into a bucket
	wtStaged           // collected for firing, callback not yet run
	wtCancelled        // Cancel won after staging; runner will recycle
)

type wheelTimer struct {
	w          *Wheel
	fn         func()
	prev, next *wheelTimer
	list       *wheelList
	atNs       int64 // requested instant, nanoseconds since w.start
	tickN      int64 // boundary tick the callback fires on
	seq        uint64
	state      uint8
}

// Cancel stops the timer, reporting whether the callback had not yet run.
// Like Virtual — and unlike Wall — cancelling a timer that is due in the
// current batch but whose callback has not started yet still wins. See
// the Wheel doc for the serialization contract on stale handles.
func (t *wheelTimer) Cancel() bool {
	w := t.w
	if w == nil {
		return false // dead handle from a closed wheel
	}
	w.mu.lock()
	switch t.state {
	case wtPending:
		t.list.remove(t)
		w.pending--
		w.recycle(t)
		w.mu.unlock()
		return true
	case wtStaged:
		// The batch runner skips and recycles cancelled entries; freeing
		// here would hand the node to a new owner while the runner still
		// holds it.
		t.state = wtCancelled
		w.mu.unlock()
		return true
	default:
		w.mu.unlock()
		return false
	}
}

// node returns a free timer node, allocating only when the free list is
// empty. Callers hold mu.
func (w *Wheel) node() *wheelTimer {
	t := w.free
	if t == nil {
		return &wheelTimer{w: w}
	}
	w.free = t.next
	t.next = nil
	return t
}

// recycle returns the node to the free list. Callers hold mu.
func (w *Wheel) recycle(t *wheelTimer) {
	t.fn = nil
	t.prev, t.list = nil, nil
	t.state = wtFree
	t.next = w.free
	w.free = t
}

// NewWheel returns a manual-mode wheel starting at the given instant. The
// caller drives it with RunUntil / Advance, like Virtual.
func NewWheel(start time.Time, tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &Wheel{start: start, tickNs: int64(tick)}
}

// NewWallWheel returns a live wheel driven against the wall clock by its
// own ticker goroutine. Close releases the goroutine.
func NewWallWheel(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	w := &Wheel{start: time.Now(), tickNs: int64(tick), live: true}
	w.ticker = time.NewTicker(tick)
	w.done = make(chan struct{})
	go w.tickLoop()
	return w
}

// Tick returns the wheel's resolution, which bounds how late a callback
// can fire relative to its requested instant (one tick in manual mode,
// two in live mode).
func (w *Wheel) Tick() time.Duration { return time.Duration(w.tickNs) }

// Now returns the wall clock (live mode) or the simulated instant (manual
// mode).
func (w *Wheel) Now() time.Time {
	if w.live {
		return time.Now()
	}
	w.mu.lock()
	ns := w.nowNs
	w.mu.unlock()
	return w.start.Add(time.Duration(ns))
}

// deadTimer is returned by Schedule on a closed wheel; its nil wheel makes
// Cancel a no-op.
var deadTimer = &wheelTimer{}

// Schedule arms fn to run after d. Arming is O(1) — a list insert under a
// spinlock — regardless of how many timers are outstanding, and recycles
// timer nodes so steady-state arming does not touch the allocator.
func (w *Wheel) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	w.mu.lock()
	if w.closed {
		w.mu.unlock()
		return deadTimer
	}
	t := w.node()
	t.fn = fn
	t.seq = w.seq
	t.state = wtPending
	w.seq++
	if w.live {
		// Tick arithmetic instead of the wall clock: the walk has
		// processed tick cur, so "now" is inside (cur, cur+1]; charging
		// from cur+1 means the callback can never run early, at the cost
		// of up to one extra tick of slack.
		t.tickN = w.cur + 1 + ceilDiv(int64(d), w.tickNs)
		t.atNs = t.tickN * w.tickNs
	} else {
		t.atNs = w.nowNs + int64(d)
		t.tickN = ceilDiv(t.atNs, w.tickNs)
		if t.tickN < w.cur {
			t.tickN = w.cur
		}
	}
	w.place(t)
	w.pending++
	w.mu.unlock()
	return t
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// place links a pending timer into the level whose span covers its delta
// from the current tick. Callers hold mu.
func (w *Wheel) place(t *wheelTimer) {
	delta := t.tickN - w.cur
	if delta < 0 {
		delta = 0
	}
	level := 0
	for level < wheelLevels-1 && delta >= int64(1)<<(wheelBits*(level+1)) {
		level++
	}
	slot := int((t.tickN >> (wheelBits * uint(level))) & wheelMask)
	w.buckets[level][slot].push(t)
}

// Run executes fn serialized with callbacks. After Close it is a no-op.
func (w *Wheel) Run(fn func()) {
	w.cbMu.Lock()
	defer w.cbMu.Unlock()
	w.mu.lock()
	closed := w.closed
	w.mu.unlock()
	if !closed {
		fn()
	}
}

// Pending returns the number of armed, uncancelled timers.
func (w *Wheel) Pending() int {
	w.mu.lock()
	n := w.pending
	w.mu.unlock()
	return n
}

// Close stops the wheel: pending callbacks are dropped, the ticker
// goroutine (live mode) exits, and Close blocks until any currently
// running callback finishes.
func (w *Wheel) Close() {
	w.cbMu.Lock()
	defer w.cbMu.Unlock()
	w.mu.lock()
	if w.closed {
		w.mu.unlock()
		return
	}
	w.closed = true
	w.mu.unlock()
	if w.live {
		w.ticker.Stop()
		close(w.done)
	}
}

// tickLoop drives a live wheel: each ticker wake advances the walk to the
// tick the wall clock has reached, cascading higher levels down and firing
// due buckets.
func (w *Wheel) tickLoop() {
	for {
		select {
		case <-w.done:
			return
		case <-w.ticker.C:
			w.advanceLive()
		}
	}
}

func (w *Wheel) advanceLive() {
	w.cbMu.Lock()
	defer w.cbMu.Unlock()
	hook := w.tickHook.Load()
	var begin time.Time
	if hook != nil {
		begin = time.Now()
	}
	var ticks, cascaded int64
	w.mu.lock()
	target := int64(time.Since(w.start)) / w.tickNs
	var batch []*wheelTimer
	for !w.closed && w.cur < target {
		k := w.cur + 1
		// cur must advance to k before the cascade: place() computes level
		// deltas relative to cur, and with cur still at k-1 an entry due on
		// the last tick of a slot span (tickN = k+64^L-1, delta exactly
		// 64^L) would be re-placed into the level it was just drained from
		// and miss its deadline by a full higher-level wrap.
		w.cur = k
		cascaded += w.cascade(k)
		ticks++
		batch = w.takeSlot(&w.buckets[0][k&wheelMask], batch[:0])
		if len(batch) > 0 {
			sortWheelBatch(batch)
			w.mu.unlock()
			w.runBatch(batch)
			w.mu.lock()
		}
	}
	w.mu.unlock()
	if hook != nil {
		(*hook)(ticks, cascaded, int64(time.Since(begin)))
	}
}

// SetTickHook installs (or, with nil, clears) the live-advance hook. The
// hook runs under the callback mutex, so it must be fast and must not
// schedule or cancel wheel timers.
func (w *Wheel) SetTickHook(fn func(ticks, cascaded, busyNs int64)) {
	if fn == nil {
		w.tickHook.Store(nil)
		return
	}
	w.tickHook.Store(&fn)
}

// cascade moves entries whose horizon has arrived down one or more levels,
// returning how many it moved. At tick k, level L's slot holds exactly the
// entries with tickN in [k, k+64^L) when k is a multiple of 64^L;
// re-placing them lands them in a lower level (or level 0's due slot).
// Callers hold mu and must have advanced w.cur to k already so place()
// sees deltas < 64^L.
func (w *Wheel) cascade(k int64) int64 {
	var moved int64
	for level := wheelLevels - 1; level >= 1; level-- {
		span := int64(1) << (wheelBits * uint(level))
		if k%span != 0 {
			continue
		}
		slot := int((k >> (wheelBits * uint(level))) & wheelMask)
		l := &w.buckets[level][slot]
		for t := l.head; t != nil; {
			next := t.next
			l.remove(t)
			w.place(t)
			moved++
			t = next
		}
	}
	return moved
}

// takeSlot unlinks and stages every entry in the bucket. Callers hold mu.
func (w *Wheel) takeSlot(l *wheelList, batch []*wheelTimer) []*wheelTimer {
	for t := l.head; t != nil; {
		next := t.next
		l.remove(t)
		t.state = wtStaged
		w.pending--
		batch = append(batch, t)
		t = next
	}
	return batch
}

// sortWheelBatch orders a due batch the way Virtual would fire it: by
// requested instant, then arm order.
func sortWheelBatch(batch []*wheelTimer) {
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].atNs != batch[j].atNs {
			return batch[i].atNs < batch[j].atNs
		}
		return batch[i].seq < batch[j].seq
	})
}

// runBatch executes staged callbacks, honoring cancellations that landed
// after staging (a callback earlier in the batch may cancel a later one,
// exactly as it could under Virtual). Callers hold cbMu but not mu.
func (w *Wheel) runBatch(batch []*wheelTimer) {
	for i, t := range batch {
		batch[i] = nil
		w.mu.lock()
		if t.state != wtStaged || w.closed {
			// Cancelled after staging (or wheel closed): the runner owns
			// the node, so this is where it returns to the free list.
			w.recycle(t)
			w.mu.unlock()
			continue
		}
		fn := t.fn
		w.recycle(t)
		w.mu.unlock()
		fn()
	}
}

// --- manual-mode driver (mirrors Virtual's API) ---

// RunUntil fires, in deadline order, every callback whose tick boundary is
// at or before the given instant, then advances the clock to it. Manual
// mode only. Firing scans the buckets for the earliest due tick rather
// than walking tick-by-tick, so jumping a simulated year over a sparse
// schedule stays cheap.
func (w *Wheel) RunUntil(at time.Time) {
	if w.live {
		panic("simtime: RunUntil on a live wheel")
	}
	w.cbMu.Lock()
	defer w.cbMu.Unlock()
	w.mu.lock()
	targetNs := int64(at.Sub(w.start))
	if w.closed || targetNs < w.nowNs {
		w.mu.unlock()
		return
	}
	targetTick := targetNs / w.tickNs
	for !w.closed {
		tickN, ok := w.minTick()
		if !ok || tickN > targetTick {
			break
		}
		batch := w.collectTick(tickN)
		w.cur = tickN
		if boundary := tickN * w.tickNs; boundary > w.nowNs {
			w.nowNs = boundary
		}
		sortWheelBatch(batch)
		w.mu.unlock()
		w.runBatch(batch)
		w.mu.lock()
	}
	if targetNs > w.nowNs {
		w.nowNs = targetNs
	}
	w.mu.unlock()
}

// Advance is RunUntil(Now()+d).
func (w *Wheel) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	w.RunUntil(w.Now().Add(d))
}

// NextDeadline returns the earliest pending callback's requested instant.
func (w *Wheel) NextDeadline() (time.Time, bool) {
	w.mu.lock()
	defer w.mu.unlock()
	tickN, ok := w.minTick()
	if !ok {
		return time.Time{}, false
	}
	var best *wheelTimer
	w.eachPending(func(t *wheelTimer) {
		if t.tickN != tickN {
			return
		}
		if best == nil || t.atNs < best.atNs || (t.atNs == best.atNs && t.seq < best.seq) {
			best = t
		}
	})
	return w.start.Add(time.Duration(best.atNs)), true
}

// minTick scans every bucket for the earliest pending tick. O(buckets +
// pending); manual mode trades per-batch scan cost for determinism.
// Callers hold mu.
func (w *Wheel) minTick() (int64, bool) {
	var (
		min   int64
		found bool
	)
	w.eachPending(func(t *wheelTimer) {
		if !found || t.tickN < min {
			min, found = t.tickN, true
		}
	})
	return min, found
}

// collectTick unlinks and stages every pending entry due at the tick.
// Callers hold mu.
func (w *Wheel) collectTick(tickN int64) []*wheelTimer {
	var batch []*wheelTimer
	for level := range w.buckets {
		for slot := range w.buckets[level] {
			l := &w.buckets[level][slot]
			for t := l.head; t != nil; {
				next := t.next
				if t.tickN == tickN {
					l.remove(t)
					t.state = wtStaged
					w.pending--
					batch = append(batch, t)
				}
				t = next
			}
		}
	}
	return batch
}

func (w *Wheel) eachPending(fn func(*wheelTimer)) {
	for level := range w.buckets {
		for slot := range w.buckets[level] {
			for t := w.buckets[level][slot].head; t != nil; t = t.next {
				fn(t)
			}
		}
	}
}
