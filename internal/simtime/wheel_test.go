package simtime

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

var w0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestWheelFireOrderMatchesVirtual is the PR 5 property test: for identical
// schedules (same delays, same arm order, same cancellations), the manual
// wheel fires callbacks in exactly the order Virtual does.
func TestWheelFireOrderMatchesVirtual(t *testing.T) {
	const rounds = 50
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		n := 5 + rng.Intn(60)
		delays := make([]time.Duration, n)
		for i := range delays {
			// Sub-tick jitter on purpose: ordering must survive several
			// deadlines collapsing into the same bucket.
			delays[i] = time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
		}
		cancel := make([]bool, n)
		for i := range cancel {
			cancel[i] = rng.Float64() < 0.2
		}
		horizon := time.Second

		run := func(s Scheduler, drive func(time.Duration)) []int {
			var order []int
			timers := make([]Timer, n)
			for i, d := range delays {
				i := i
				timers[i] = s.Schedule(d, func() { order = append(order, i) })
			}
			for i, c := range cancel {
				if c {
					timers[i].Cancel()
				}
			}
			drive(horizon)
			return order
		}

		v := NewVirtual(w0)
		want := run(v, v.Advance)
		w := NewWheel(w0, 10*time.Millisecond)
		got := run(w, w.Advance)
		w.Close()

		if len(got) != len(want) {
			t.Fatalf("round %d: wheel fired %d callbacks, virtual fired %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: fire order diverged at %d: wheel %v, virtual %v", round, i, got, want)
			}
		}
	}
}

// TestWheelAccuracyBoundedByOneTick pins the acceptance criterion: a
// callback never fires before its requested instant and at most one tick
// after it.
func TestWheelAccuracyBoundedByOneTick(t *testing.T) {
	const tick = 10 * time.Millisecond
	w := NewWheel(w0, tick)
	defer w.Close()
	rng := rand.New(rand.NewSource(7))
	type obs struct {
		want  time.Time
		fired time.Time
	}
	var seen []obs
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(int64(3 * time.Second)))
		at := w0.Add(d)
		w.Schedule(d, func() { seen = append(seen, obs{want: at, fired: w.Now()}) })
	}
	w.Advance(4 * time.Second)
	if len(seen) != 500 {
		t.Fatalf("fired %d of 500 callbacks", len(seen))
	}
	for _, o := range seen {
		if o.fired.Before(o.want) {
			t.Fatalf("fired early: want >= %v, fired %v", o.want, o.fired)
		}
		if late := o.fired.Sub(o.want); late > tick {
			t.Fatalf("fired %v late, tick is %v", late, tick)
		}
	}
}

// TestWheelFarFutureAndCascade exercises deadlines spanning every wheel
// level, including beyond the level-0 horizon, plus a year-scale jump.
func TestWheelFarFutureAndCascade(t *testing.T) {
	w := NewWheel(w0, time.Millisecond)
	defer w.Close()
	delays := []time.Duration{
		0,
		time.Millisecond,
		63 * time.Millisecond,
		64 * time.Millisecond, // first level-1 bucket
		5 * time.Second,
		10 * time.Minute, // level 3 at 1ms ticks
		24 * time.Hour,
		365 * 24 * time.Hour, // top levels
	}
	fired := make([]bool, len(delays))
	for i, d := range delays {
		i := i
		w.Schedule(d, func() { fired[i] = true })
	}
	w.Advance(366 * 24 * time.Hour)
	for i, f := range fired {
		if !f {
			t.Errorf("delay %v never fired", delays[i])
		}
	}
	if got := w.Pending(); got != 0 {
		t.Errorf("pending after drain: %d", got)
	}
}

// TestWheelCancelSemantics pins Cancel's contract, including the case that
// distinguishes the wheel from Wall: a callback already collected into the
// due batch but not yet run can still be cancelled (matching Virtual).
func TestWheelCancelSemantics(t *testing.T) {
	w := NewWheel(w0, 10*time.Millisecond)
	defer w.Close()

	ran := false
	tm := w.Schedule(50*time.Millisecond, func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("first cancel should report pending")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report not pending")
	}
	w.Advance(time.Second)
	if ran {
		t.Fatal("cancelled callback ran")
	}

	// Same-batch cancellation: both timers land in one bucket; the first
	// callback cancels the second, which must then be skipped.
	var secondRan bool
	var second Timer
	w.Schedule(5*time.Millisecond, func() { second.Cancel() })
	second = w.Schedule(6*time.Millisecond, func() { secondRan = true })
	w.Advance(time.Second)
	if secondRan {
		t.Fatal("same-batch cancellation did not stop the later callback")
	}

	done := false
	t3 := w.Schedule(time.Millisecond, func() { done = true })
	w.Advance(time.Second)
	if !done {
		t.Fatal("timer did not fire")
	}
	if t3.Cancel() {
		t.Fatal("cancel after fire should report not pending")
	}
}

// TestWheelScheduleInsideCallback covers proxy-style rescheduling: a
// callback arming the next timeout from inside the wheel's callback
// context, including zero-delay chains.
func TestWheelScheduleInsideCallback(t *testing.T) {
	w := NewWheel(w0, 10*time.Millisecond)
	defer w.Close()
	var hops []time.Time
	var hop func()
	hop = func() {
		hops = append(hops, w.Now())
		if len(hops) < 5 {
			w.Schedule(30*time.Millisecond, hop)
		}
	}
	w.Schedule(0, hop)
	w.Advance(time.Second)
	if len(hops) != 5 {
		t.Fatalf("chained reschedule fired %d of 5 hops", len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if !hops[i].After(hops[i-1]) {
			t.Fatalf("hops not monotonic: %v", hops)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("pending after chain: %d", w.Pending())
	}
}

// TestWallWheelLive exercises the ticker-driven mode end to end: timers
// fire near their deadlines, cancellation holds, and Close drops pending
// callbacks without firing them.
func TestWallWheelLive(t *testing.T) {
	w := NewWallWheel(time.Millisecond)
	defer w.Close()

	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	const n = 100
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(i%20) * time.Millisecond
		w.Schedule(d, func() {
			mu.Lock()
			fired++
			mu.Unlock()
			wg.Done()
		})
	}
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		mu.Lock()
		t.Fatalf("live wheel fired %d of %d within 5s", fired, n)
	}

	// A cancelled timer must not fire.
	var cancelledRan bool
	tm := w.Schedule(50*time.Millisecond, func() { cancelledRan = true })
	if !tm.Cancel() {
		t.Fatal("cancel of pending live timer failed")
	}
	// A long timer pending at Close must be dropped.
	var afterClose bool
	w.Schedule(time.Hour, func() { afterClose = true })
	time.Sleep(100 * time.Millisecond)
	w.Close()
	if cancelledRan {
		t.Fatal("cancelled live timer fired")
	}
	if afterClose {
		t.Fatal("timer fired after Close")
	}
}

// TestWallWheelCascadeBoundary is the regression test for the live-mode
// cascade off-by-one: cascade(k) used to run while cur was still k-1, so a
// timer due on the last tick of a slot span (tickN = k+64^L-1, delta
// exactly 64^L) was re-placed into the level it was drained from and did
// not fire until the next higher-level wrap. The test drives advanceLive
// deterministically — a live wheel whose ticker never fires within the
// test, with start moved into the past by hand — and pins that every
// timer, including the tickN%64==63 boundary cases, fires exactly on its
// tick.
func TestWallWheelCascadeBoundary(t *testing.T) {
	const tick = time.Hour // the ticker goroutine stays asleep for the whole test
	w := NewWallWheel(tick)
	defer w.Close()

	// Deltas chosen so tickN = 1+ceil(d/tick) lands on and around slot
	// boundaries of levels 0–2; 191 is the empirically-late case from the
	// bug report (191%64 == 63, armed >= 64 ticks ahead).
	ticks := []int64{1, 63, 64, 127, 128, 191, 192, 4095, 4096, 4159, 8191}
	firedAt := make(map[int64]int64, len(ticks))
	for _, n := range ticks {
		n := n
		w.Schedule(time.Duration(n-1)*tick, func() { firedAt[n] = w.cur })
	}

	// Drive the walk directly: move start into the past so the wall clock
	// has "reached" the target tick, then advance. No concurrency — the
	// callbacks run on this goroutine inside advanceLive.
	w.mu.lock()
	w.start = w.start.Add(-8300 * tick)
	w.mu.unlock()
	w.advanceLive()

	for _, n := range ticks {
		at, ok := firedAt[n]
		if !ok {
			t.Errorf("timer due at tick %d never fired (pending=%d)", n, w.Pending())
			continue
		}
		if at != n {
			t.Errorf("timer due at tick %d fired at tick %d", n, at)
		}
	}
	if got := w.Pending(); got != 0 {
		t.Errorf("pending after drain: %d", got)
	}
}

// TestWallWheelRunSerialized checks that Run closures and callbacks never
// overlap (the single-threaded discipline core.Proxy depends on).
func TestWallWheelRunSerialized(t *testing.T) {
	w := NewWallWheel(time.Millisecond)
	defer w.Close()
	var inCritical int32
	check := func() {
		if inCritical != 0 {
			t.Error("callback overlapped with Run closure")
		}
		inCritical++
		time.Sleep(100 * time.Microsecond)
		inCritical--
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		w.Schedule(time.Duration(i%10)*time.Millisecond, check)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(check)
		}()
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
}

// TestWheelStress races Schedule/Cancel/fire on a live wheel under -race.
func TestWheelStress(t *testing.T) {
	w := NewWallWheel(time.Millisecond)
	defer w.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var timers []Timer
			for i := 0; i < 500; i++ {
				d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
				timers = append(timers, w.Schedule(d, func() {}))
				if rng.Float64() < 0.5 {
					timers[rng.Intn(len(timers))].Cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(30 * time.Millisecond)
}

// --- simtime.Wall race coverage (PR 5 satellite) ---

// TestWallScheduleCancelCloseRaces hammers Wall's Schedule/Cancel/Close
// paths concurrently; -race verifies the serialization claims in the
// package doc.
func TestWallScheduleCancelCloseRaces(t *testing.T) {
	for round := 0; round < 20; round++ {
		w := NewWall()
		var counter int // written only under w's serialization
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + g)))
				var timers []Timer
				for i := 0; i < 50; i++ {
					d := time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
					timers = append(timers, w.Schedule(d, func() { counter++ }))
					switch {
					case rng.Float64() < 0.3 && len(timers) > 0:
						timers[rng.Intn(len(timers))].Cancel()
					case rng.Float64() < 0.1:
						w.Run(func() { counter++ })
					}
				}
			}(g)
		}
		wg.Wait()
		w.Close()
		// Late fires after Close must be dropped, not crash or race.
		time.Sleep(3 * time.Millisecond)
	}
}

// TestWallCancelFireRace pins the contract on the Cancel/fire boundary:
// for every timer, either Cancel reports true and the callback must not
// have run its effect yet... or Cancel reports false. Wall's known
// wrinkle — a fired-but-not-yet-run callback reports Cancel()==false and
// still runs — is allowed; what is never allowed is Cancel()==true AND
// the callback running.
func TestWallCancelFireRace(t *testing.T) {
	w := NewWall()
	defer w.Close()
	var mu sync.Mutex
	ran := make(map[int]bool)
	var wg sync.WaitGroup
	const n = 500
	cancelled := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		tm := w.Schedule(time.Duration(i%3)*time.Millisecond, func() {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancelled[i] = tm.Cancel()
		}()
	}
	wg.Wait()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if cancelled[i] && ran[i] {
			t.Fatalf("timer %d: Cancel reported success but callback ran", i)
		}
	}
}

// TestWallCloseDuringCallbacks verifies Close blocks until in-flight
// callbacks finish and drops everything after.
func TestWallCloseDuringCallbacks(t *testing.T) {
	w := NewWall()
	started := make(chan struct{})
	var finished int32
	w.Schedule(0, func() {
		close(started)
		time.Sleep(5 * time.Millisecond)
		finished = 1 // safe: Close must not return before this line
	})
	<-started
	w.Close()
	if finished != 1 {
		t.Fatal("Close returned before the in-flight callback finished")
	}
}
