package simtime

import (
	"testing"
	"time"
)

// BenchmarkTimerWheel measures arming + cancelling one timer while 100k
// timers stay outstanding — the host's steady state, where every queued
// notification holds a delay or expiry timer. Sub-benchmarks compare the
// wheel against the two runtime-timer baselines it replaces: raw
// time.AfterFunc and the Wall scheduler's wrapped AfterFunc.
func BenchmarkTimerWheel(b *testing.B) {
	const outstanding = 100_000
	nop := func() {}

	b.Run("Wheel", func(b *testing.B) {
		w := NewWallWheel(10 * time.Millisecond)
		defer w.Close()
		for i := 0; i < outstanding; i++ {
			w.Schedule(time.Hour, nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Schedule(time.Hour, nop).Cancel()
		}
	})

	b.Run("AfterFunc", func(b *testing.B) {
		timers := make([]*time.Timer, outstanding)
		for i := range timers {
			timers[i] = time.AfterFunc(time.Hour, nop)
		}
		defer func() {
			for _, t := range timers {
				t.Stop()
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			time.AfterFunc(time.Hour, nop).Stop()
		}
	})

	b.Run("Wall", func(b *testing.B) {
		w := NewWall()
		defer w.Close()
		pinned := make([]Timer, outstanding)
		for i := range pinned {
			pinned[i] = w.Schedule(time.Hour, nop)
		}
		defer func() {
			for _, t := range pinned {
				t.Cancel()
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Schedule(time.Hour, nop).Cancel()
		}
	})
}
