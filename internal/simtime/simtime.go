// Package simtime abstracts time for the last-hop proxy so that the same
// algorithm code runs under a discrete-event virtual clock in simulation
// and under the wall clock in a live deployment.
//
// The proxy algorithm (paper Figure 7) relies on a schedule() primitive to
// expire and delay notifications; Scheduler provides it. Virtual is the
// deterministic single-goroutine simulator clock; Wall serializes real
// timer callbacks and external events through one mutex, preserving the
// algorithm's single-threaded discipline.
package simtime

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Cancel prevents the callback from running, reporting whether it was
	// still pending.
	Cancel() bool
}

// Scheduler is the time facility the proxy depends on.
type Scheduler interface {
	// Now returns the current instant.
	Now() time.Time
	// Schedule runs fn after d, serialized with every other callback.
	// Non-positive delays run at the current instant (virtual) or as
	// soon as possible (wall).
	Schedule(d time.Duration, fn func()) Timer
	// Run executes fn serialized with scheduled callbacks. External
	// inputs (network frames, user commands) enter the proxy through Run.
	Run(fn func())
}

// Virtual is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: the simulation driver owns it.
type Virtual struct {
	now    time.Time
	events eventHeap
	seq    uint64
}

// Compile-time interface checks.
var (
	_ Scheduler = (*Virtual)(nil)
	_ Scheduler = (*Wall)(nil)
)

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e, ok := x.(*event)
	if !ok {
		return // guarded by the exported API; never reached
	}
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type virtualTimer struct {
	v *Virtual
	e *event
}

func (t *virtualTimer) Cancel() bool {
	if t.e.cancelled || t.e.index < 0 {
		return false
	}
	t.e.cancelled = true
	heap.Remove(&t.v.events, t.e.index)
	t.e.index = -1
	return true
}

// NewVirtual returns a virtual scheduler starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time { return v.now }

// Schedule enqueues fn to run at Now()+d (clamped to Now() for negative d).
func (v *Virtual) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return v.ScheduleAt(v.now.Add(d), fn)
}

// ScheduleAt enqueues fn to run at the given instant (clamped to Now()).
func (v *Virtual) ScheduleAt(at time.Time, fn func()) Timer {
	if at.Before(v.now) {
		at = v.now
	}
	e := &event{at: at, seq: v.seq, fn: fn}
	v.seq++
	heap.Push(&v.events, e)
	return &virtualTimer{v: v, e: e}
}

// Run executes fn immediately; the virtual scheduler is single-threaded.
func (v *Virtual) Run(fn func()) { fn() }

// Pending returns the number of scheduled, uncancelled callbacks.
func (v *Virtual) Pending() int { return len(v.events) }

// Step runs the earliest pending callback, advancing the clock to its
// deadline. It reports whether a callback ran.
func (v *Virtual) Step() bool {
	for len(v.events) > 0 {
		e, ok := heap.Pop(&v.events).(*event)
		if !ok {
			return false
		}
		e.index = -1
		if e.cancelled {
			continue
		}
		v.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil runs every callback scheduled up to and including the given
// instant, then advances the clock to it.
func (v *Virtual) RunUntil(t time.Time) {
	if t.Before(v.now) {
		return
	}
	for len(v.events) > 0 && !v.events[0].at.After(t) {
		v.Step()
	}
	v.now = t
}

// Advance is RunUntil(Now()+d).
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.RunUntil(v.now.Add(d))
}

// RunUntilIdle runs callbacks until none are pending. Callbacks that keep
// rescheduling themselves will make this spin; the simulation drivers in
// this repository only use it on draining workloads.
func (v *Virtual) RunUntilIdle() {
	for v.Step() {
	}
}

// NextDeadline returns the earliest pending callback's instant.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	if len(v.events) == 0 {
		return time.Time{}, false
	}
	return v.events[0].at, true
}

// Wall is a Scheduler backed by the wall clock. All callbacks and Run
// closures are serialized through one mutex, so code written for the
// single-threaded virtual scheduler is safe under it.
type Wall struct {
	mu     sync.Mutex
	closed bool
}

// NewWall returns a wall-clock scheduler.
func NewWall() *Wall { return &Wall{} }

// Now returns the wall-clock time.
func (w *Wall) Now() time.Time { return time.Now() }

type wallTimer struct {
	w     *Wall
	t     *time.Timer
	mu    sync.Mutex
	state int // 0 pending, 1 fired, 2 cancelled
}

// Cancel stops the timer, reporting whether it was still pending.
func (t *wallTimer) Cancel() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != 0 {
		return false
	}
	t.state = 2
	t.t.Stop()
	return true
}

// Schedule runs fn after d under the scheduler mutex. After Close, the
// callback is dropped.
func (w *Wall) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	wt := &wallTimer{w: w}
	wt.t = time.AfterFunc(d, func() {
		wt.mu.Lock()
		if wt.state != 0 {
			wt.mu.Unlock()
			return
		}
		wt.state = 1
		wt.mu.Unlock()
		w.mu.Lock()
		defer w.mu.Unlock()
		if !w.closed {
			fn()
		}
	})
	return wt
}

// Run executes fn under the scheduler mutex.
func (w *Wall) Run(fn func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	fn()
}

// Close stops delivering callbacks: fns scheduled but not yet fired are
// dropped, and Close blocks until any currently running callback finishes.
func (w *Wall) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
}
