package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual(t0)
	var got []int
	v.Schedule(3*time.Second, func() { got = append(got, 3) })
	v.Schedule(1*time.Second, func() { got = append(got, 1) })
	v.Schedule(2*time.Second, func() { got = append(got, 2) })
	v.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if !v.Now().Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now = %v", v.Now())
	}
}

func TestVirtualFIFOAtSameInstant(t *testing.T) {
	v := NewVirtual(t0)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		v.Schedule(time.Second, func() { got = append(got, i) })
	}
	v.RunUntilIdle()
	for i, g := range got {
		if g != i {
			t.Fatalf("same-instant callbacks out of FIFO order: %v", got)
		}
	}
}

func TestVirtualClockDuringCallback(t *testing.T) {
	v := NewVirtual(t0)
	var at time.Time
	v.Schedule(time.Minute, func() { at = v.Now() })
	v.RunUntilIdle()
	if !at.Equal(t0.Add(time.Minute)) {
		t.Errorf("Now inside callback = %v", at)
	}
}

func TestVirtualNegativeDelay(t *testing.T) {
	v := NewVirtual(t0)
	ran := false
	v.Schedule(-time.Hour, func() { ran = true })
	v.RunUntilIdle()
	if !ran {
		t.Error("negative-delay callback dropped")
	}
	if !v.Now().Equal(t0) {
		t.Errorf("clock moved backward: %v", v.Now())
	}
}

func TestVirtualCancel(t *testing.T) {
	v := NewVirtual(t0)
	ran := false
	timer := v.Schedule(time.Second, func() { ran = true })
	if !timer.Cancel() {
		t.Error("first Cancel returned false")
	}
	if timer.Cancel() {
		t.Error("second Cancel returned true")
	}
	v.RunUntilIdle()
	if ran {
		t.Error("cancelled callback ran")
	}
	if v.Pending() != 0 {
		t.Errorf("Pending = %d", v.Pending())
	}
}

func TestVirtualCancelAfterFire(t *testing.T) {
	v := NewVirtual(t0)
	timer := v.Schedule(time.Second, func() {})
	v.RunUntilIdle()
	if timer.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(t0)
	var got []int
	v.Schedule(time.Second, func() { got = append(got, 1) })
	v.Schedule(time.Hour, func() { got = append(got, 2) })
	v.RunUntil(t0.Add(time.Minute))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("after RunUntil(1m): %v", got)
	}
	if !v.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("Now = %v", v.Now())
	}
	if v.Pending() != 1 {
		t.Errorf("Pending = %d", v.Pending())
	}
	// RunUntil into the past is a no-op.
	v.RunUntil(t0)
	if !v.Now().Equal(t0.Add(time.Minute)) {
		t.Error("RunUntil moved the clock backward")
	}
	v.Advance(2 * time.Hour)
	if len(got) != 2 {
		t.Errorf("after Advance: %v", got)
	}
	v.Advance(-time.Hour)
	if !v.Now().Equal(t0.Add(time.Minute).Add(2 * time.Hour)) {
		t.Error("negative Advance moved the clock")
	}
}

func TestVirtualScheduleAtPast(t *testing.T) {
	v := NewVirtual(t0)
	v.Advance(time.Hour)
	fired := t0
	v.ScheduleAt(t0, func() { fired = v.Now() })
	v.RunUntilIdle()
	if !fired.Equal(t0.Add(time.Hour)) {
		t.Errorf("past-scheduled callback fired at %v", fired)
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	v := NewVirtual(t0)
	var got []time.Duration
	v.Schedule(time.Second, func() {
		got = append(got, v.Now().Sub(t0))
		v.Schedule(time.Second, func() {
			got = append(got, v.Now().Sub(t0))
		})
	})
	v.RunUntilIdle()
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Errorf("nested scheduling times = %v", got)
	}
}

// TestVirtualOrderProperty: any batch of delays runs in non-decreasing time
// order with the clock matching each deadline.
func TestVirtualOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		v := NewVirtual(t0)
		var fired []time.Time
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			v.Schedule(d, func() { fired = append(fired, v.Now()) })
		}
		v.RunUntilIdle()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWallScheduleAndRun(t *testing.T) {
	w := NewWall()
	defer w.Close()
	done := make(chan struct{})
	var mu sync.Mutex
	var got []string
	w.Schedule(5*time.Millisecond, func() {
		mu.Lock()
		got = append(got, "timer")
		mu.Unlock()
		close(done)
	})
	w.Run(func() {
		mu.Lock()
		got = append(got, "run")
		mu.Unlock()
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestWallCancel(t *testing.T) {
	w := NewWall()
	defer w.Close()
	fired := make(chan struct{}, 1)
	timer := w.Schedule(20*time.Millisecond, func() { fired <- struct{}{} })
	if !timer.Cancel() {
		t.Error("Cancel returned false")
	}
	if timer.Cancel() {
		t.Error("second Cancel returned true")
	}
	select {
	case <-fired:
		t.Error("cancelled wall timer fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestWallClose(t *testing.T) {
	w := NewWall()
	fired := make(chan struct{}, 1)
	w.Schedule(30*time.Millisecond, func() { fired <- struct{}{} })
	w.Close()
	w.Run(func() { t.Error("Run after Close executed") })
	select {
	case <-fired:
		t.Error("callback after Close executed")
	case <-time.After(80 * time.Millisecond):
	}
}

func TestWallNow(t *testing.T) {
	w := NewWall()
	defer w.Close()
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Now = %v outside [%v, %v]", got, before, after)
	}
}

func TestWallSerialization(t *testing.T) {
	w := NewWall()
	defer w.Close()
	const n = 50
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(func() { counter++ }) // safe only if serialized
		}()
	}
	done := make(chan struct{})
	w.Schedule(time.Millisecond, func() { counter++ })
	w.Schedule(30*time.Millisecond, func() { close(done) })
	wg.Wait()
	<-done
	w.Run(func() {
		if counter != n+1 {
			t.Errorf("counter = %d, want %d", counter, n+1)
		}
	})
}
