package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestHybridReplayPhase(t *testing.T) {
	h := NewHybrid(t0)
	defer h.Close()
	if h.Live() {
		t.Fatal("hybrid born live")
	}
	if !h.Now().Equal(t0) {
		t.Errorf("Now = %v", h.Now())
	}
	var fired []time.Duration
	h.Schedule(time.Hour, func() { fired = append(fired, time.Hour) })
	h.Schedule(2*time.Hour, func() { fired = append(fired, 2*time.Hour) })
	h.AdvanceTo(t0.Add(90 * time.Minute))
	if len(fired) != 1 || fired[0] != time.Hour {
		t.Errorf("fired = %v", fired)
	}
	if !h.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("Now = %v", h.Now())
	}
	ran := false
	h.Run(func() { ran = true })
	if !ran {
		t.Error("Run during replay did not execute")
	}
}

func TestHybridGoLiveFiresDueTimers(t *testing.T) {
	h := NewHybrid(t0)
	defer h.Close()
	fired := false
	h.Schedule(time.Hour, func() { fired = true }) // long past by wall now
	h.GoLive()
	if !fired {
		t.Error("due replay timer did not fire at GoLive")
	}
	if !h.Live() {
		t.Error("not live after GoLive")
	}
	// Now must track the wall clock.
	if d := time.Since(h.Now()); d > time.Second || d < -time.Second {
		t.Errorf("Now is not wall time: %v off", d)
	}
	h.GoLive() // idempotent
}

func TestHybridPumpFiresFutureReplayTimers(t *testing.T) {
	// A timer armed during replay whose deadline lands shortly after the
	// wall 'now' must still fire, via the pump.
	start := time.Now().Add(-time.Hour)
	h := NewHybrid(start)
	defer h.Close()
	var mu sync.Mutex
	fired := false
	h.Schedule(time.Hour+50*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	h.GoLive()
	mu.Lock()
	early := fired
	mu.Unlock()
	if early {
		t.Fatal("future replay timer fired too early")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := fired
		mu.Unlock()
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replay-era timer never fired after GoLive")
}

func TestHybridLiveScheduling(t *testing.T) {
	h := NewHybrid(time.Now().Add(-time.Minute))
	defer h.Close()
	h.GoLive()
	done := make(chan struct{})
	h.Schedule(10*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("live timer never fired")
	}
	// AdvanceTo is a no-op when live.
	h.AdvanceTo(time.Now().Add(time.Hour))
	ran := false
	h.Run(func() { ran = true })
	if !ran {
		t.Error("Run after live did not execute")
	}
}
