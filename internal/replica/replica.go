// Package replica removes the last-hop proxy as a single point of failure
// (the paper's second future-work item, §4) by running the proxy as a
// replicated deterministic state machine: every replica consumes the
// identical input sequence (notifications, rank updates, reads, network
// changes), but only the active replica's forwards reach the device.
// Standbys forward into a sink, so their queues, histories, and auto-tuned
// limits track the active replica exactly; on failover a standby takes
// over with the full per-topic state already in place.
//
// Forward failures are the one nondeterministic input: the active replica
// observes them directly (and requeues), while standbys are told through a
// network-down signal. Any message in flight during a failure is
// reconciled by the READ protocol itself — the device's client_events
// deduplicate double-sends, and missed sends are re-requested at the next
// read — which is the same mechanism that makes the single proxy robust to
// a flaky last hop.
package replica

import (
	"errors"
	"fmt"

	"lasthop/internal/core"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

// Replicated coordinates a set of proxy replicas. Like the proxy itself it
// is single-threaded under the owning scheduler.
type Replicated struct {
	out      core.Forwarder
	replicas []*core.Proxy
	alive    []bool
	active   int
}

// gate is the per-replica forwarder: only the active replica reaches the
// real device.
type gate struct {
	r   *Replicated
	idx int
}

var _ core.Forwarder = (*gate)(nil)

func (g *gate) Forward(n *msg.Notification) error {
	if g.r.active != g.idx {
		return nil // standby: track state silently
	}
	if err := g.r.out.Forward(n); err != nil {
		// The active replica reacts internally (requeue + network
		// down); standbys learn through the replicated network signal.
		g.r.signalStandbysDown()
		return err
	}
	return nil
}

// New builds n replicas forwarding (when active) to out.
func New(sched simtime.Scheduler, out core.Forwarder, n int) (*Replicated, error) {
	if n < 1 {
		return nil, errors.New("need at least one replica")
	}
	if out == nil {
		return nil, errors.New("nil forwarder")
	}
	r := &Replicated{out: out, alive: make([]bool, n)}
	for i := 0; i < n; i++ {
		g := &gate{r: r, idx: i}
		r.replicas = append(r.replicas, core.New(sched, g))
		r.alive[i] = true
	}
	return r, nil
}

// Replicas returns the replica count.
func (r *Replicated) Replicas() int { return len(r.replicas) }

// Active returns the index of the active replica.
func (r *Replicated) Active() int { return r.active }

// AliveCount returns how many replicas have not crashed.
func (r *Replicated) AliveCount() int {
	count := 0
	for _, a := range r.alive {
		if a {
			count++
		}
	}
	return count
}

// each applies an input to every live replica, the active one first so the
// device observes the same latency as with a single proxy.
func (r *Replicated) each(fn func(p *core.Proxy) error) error {
	var firstErr error
	apply := func(i int) {
		if !r.alive[i] {
			return
		}
		if err := fn(r.replicas[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	apply(r.active)
	for i := range r.replicas {
		if i != r.active {
			apply(i)
		}
	}
	return firstErr
}

// AddTopic registers a topic on every replica.
func (r *Replicated) AddTopic(cfg core.TopicConfig) error {
	return r.each(func(p *core.Proxy) error { return p.AddTopic(cfg) })
}

// RemoveTopic unregisters a topic on every replica.
func (r *Replicated) RemoveTopic(name string) error {
	return r.each(func(p *core.Proxy) error { return p.RemoveTopic(name) })
}

// Notify replicates a notification arrival.
func (r *Replicated) Notify(n *msg.Notification) {
	_ = r.each(func(p *core.Proxy) error {
		p.Notify(n.Clone()) // replicas must not share mutable state
		return nil
	})
}

// ApplyRankUpdate replicates a rank revision.
func (r *Replicated) ApplyRankUpdate(u msg.RankUpdate) {
	_ = r.each(func(p *core.Proxy) error {
		p.ApplyRankUpdate(u)
		return nil
	})
}

// Read replicates a device read.
func (r *Replicated) Read(req msg.ReadRequest) error {
	return r.each(func(p *core.Proxy) error { return p.Read(req) })
}

// SetNetwork replicates a last-hop status change.
func (r *Replicated) SetNetwork(up bool) {
	_ = r.each(func(p *core.Proxy) error {
		p.SetNetwork(up)
		return nil
	})
}

// signalStandbysDown propagates an observed forward failure to standbys.
func (r *Replicated) signalStandbysDown() {
	for i, p := range r.replicas {
		if i != r.active && r.alive[i] {
			p.SetNetwork(false)
		}
	}
}

// Fail crashes the replica with the given index. If it was active, the
// next live replica takes over and immediately resumes forwarding.
func (r *Replicated) Fail(idx int) error {
	if idx < 0 || idx >= len(r.replicas) {
		return fmt.Errorf("no replica %d", idx)
	}
	if !r.alive[idx] {
		return fmt.Errorf("replica %d already failed", idx)
	}
	r.alive[idx] = false
	if idx != r.active {
		return nil
	}
	for i := range r.replicas {
		if r.alive[i] {
			r.active = i
			// The successor resumes forwarding with its tracked state;
			// kicking the network handler flushes anything pending.
			if r.replicas[i].NetworkUp() {
				r.replicas[i].SetNetwork(true)
			}
			return nil
		}
	}
	return errors.New("no live replicas remain")
}

// Snapshot returns the active replica's view of a topic.
func (r *Replicated) Snapshot(topic string) (core.TopicSnapshot, bool) {
	return r.replicas[r.active].Snapshot(topic)
}

// SnapshotOf returns a specific replica's view of a topic, for divergence
// checks in tests and monitoring.
func (r *Replicated) SnapshotOf(idx int, topic string) (core.TopicSnapshot, bool) {
	if idx < 0 || idx >= len(r.replicas) {
		return core.TopicSnapshot{}, false
	}
	return r.replicas[idx].Snapshot(topic)
}
