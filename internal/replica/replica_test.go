package replica

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type recorder struct {
	got  []*msg.Notification
	fail bool
}

func (r *recorder) Forward(n *msg.Notification) error {
	if r.fail {
		return errors.New("injected link failure")
	}
	r.got = append(r.got, n)
	return nil
}

func (r *recorder) ids() msg.IDSet {
	s := make(msg.IDSet)
	for _, n := range r.got {
		s.Add(n.ID)
	}
	return s
}

func note(id msg.ID, rank float64, at time.Time) *msg.Notification {
	return &msg.Notification{ID: id, Topic: "t", Rank: rank, Published: at}
}

func TestNewValidation(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	if _, err := New(clock, nil, 2); err == nil {
		t.Error("nil forwarder accepted")
	}
	if _, err := New(clock, &recorder{}, 0); err == nil {
		t.Error("zero replicas accepted")
	}
	r, err := New(clock, &recorder{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 3 || r.Active() != 0 || r.AliveCount() != 3 {
		t.Errorf("fresh group state wrong: %d %d %d", r.Replicas(), r.Active(), r.AliveCount())
	}
}

func TestReplicasTrackActiveExactly(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	dev := &recorder{}
	r, err := New(clock, dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddTopic(core.BufferConfig("t", 4, 8)); err != nil {
		t.Fatal(err)
	}
	r.SetNetwork(true)
	for i := 0; i < 20; i++ {
		r.Notify(note(msg.ID(fmt.Sprintf("n%02d", i)), float64(i%7), clock.Now()))
		clock.Advance(time.Minute)
	}
	if err := r.Read(msg.ReadRequest{Topic: "t", N: 4, QueueSize: 8}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)

	// Every replica's per-topic state must be identical.
	ref, ok := r.SnapshotOf(0, "t")
	if !ok {
		t.Fatal("no snapshot")
	}
	for i := 1; i < r.Replicas(); i++ {
		snap, ok := r.SnapshotOf(i, "t")
		if !ok {
			t.Fatalf("replica %d missing topic", i)
		}
		if snap != ref {
			t.Errorf("replica %d diverged:\n  active: %+v\n  standby: %+v", i, ref, snap)
		}
	}
	// Only one copy of each forwarded message reached the device.
	seen := make(msg.IDSet)
	for _, n := range dev.got {
		if !seen.Add(n.ID) {
			t.Errorf("message %s forwarded twice", n.ID)
		}
	}
}

func TestFailoverContinuesService(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	dev := &recorder{}
	r, err := New(clock, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddTopic(core.OnDemandConfig("t", 2)); err != nil {
		t.Fatal(err)
	}
	r.SetNetwork(true)
	for i := 0; i < 6; i++ {
		r.Notify(note(msg.ID(fmt.Sprintf("n%d", i)), float64(i), clock.Now()))
	}
	if err := r.Read(msg.ReadRequest{Topic: "t", N: 2}); err != nil {
		t.Fatal(err)
	}
	before := dev.ids()
	if before.Len() != 2 {
		t.Fatalf("first read forwarded %d", before.Len())
	}

	// The primary dies; the standby takes over with full state.
	if err := r.Fail(0); err != nil {
		t.Fatal(err)
	}
	if r.Active() != 1 || r.AliveCount() != 1 {
		t.Fatalf("failover state: active=%d alive=%d", r.Active(), r.AliveCount())
	}
	// The next read must return the next-best messages, not repeats: the
	// successor knows what was already forwarded (the user consumed n5
	// and n4, so the device queue is empty again).
	if err := r.Read(msg.ReadRequest{Topic: "t", N: 2}); err != nil {
		t.Fatal(err)
	}
	after := dev.ids()
	if after.Len() != 4 || !after.Contains("n3") || !after.Contains("n2") {
		t.Errorf("post-failover forwards: %v", after)
	}
}

func TestFailoverFlushesSpooledMessages(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	dev := &recorder{}
	r, err := New(clock, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddTopic(core.BufferConfig("t", 4, 8)); err != nil {
		t.Fatal(err)
	}
	// Outage: everything spools on both replicas.
	r.SetNetwork(false)
	for i := 0; i < 3; i++ {
		r.Notify(note(msg.ID(fmt.Sprintf("n%d", i)), float64(i), clock.Now()))
	}
	r.SetNetwork(true)
	firstBatch := len(dev.got)
	if firstBatch != 3 {
		t.Fatalf("reconnection flushed %d", firstBatch)
	}
	// Primary dies while the link stays up; more notifications arrive.
	if err := r.Fail(0); err != nil {
		t.Fatal(err)
	}
	r.Notify(note("late", 9, clock.Now()))
	found := false
	for _, n := range dev.got[firstBatch:] {
		if n.ID == "late" {
			found = true
		}
	}
	if !found {
		t.Error("successor did not forward a post-failover arrival")
	}
}

func TestForwardFailureKeepsReplicasAligned(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	dev := &recorder{}
	r, err := New(clock, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddTopic(core.OnlineConfig("t")); err != nil {
		t.Fatal(err)
	}
	dev.fail = true
	r.Notify(note("a", 1, clock.Now()))
	// Active observed the failure and requeued; the standby got the
	// network-down signal and queued too.
	for i := 0; i < 2; i++ {
		snap, _ := r.SnapshotOf(i, "t")
		if snap.Outgoing != 1 {
			t.Errorf("replica %d outgoing = %d, want 1", i, snap.Outgoing)
		}
	}
	dev.fail = false
	r.SetNetwork(true)
	if len(dev.got) != 1 || dev.got[0].ID != "a" {
		t.Errorf("after recovery: %v", dev.ids())
	}
}

func TestFailErrors(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	r, err := New(clock, &recorder{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(5); err == nil {
		t.Error("failing unknown replica succeeded")
	}
	if err := r.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(1); err == nil {
		t.Error("double failure succeeded")
	}
	if err := r.Fail(0); err == nil {
		t.Error("failing the last replica must error")
	}
}

func TestRankUpdateReplicated(t *testing.T) {
	clock := simtime.NewVirtual(t0)
	dev := &recorder{}
	r, err := New(clock, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.OnDemandConfig("t", 4)
	cfg.RankThreshold = 2
	if err := r.AddTopic(cfg); err != nil {
		t.Fatal(err)
	}
	r.Notify(note("a", 5, clock.Now()))
	r.ApplyRankUpdate(msg.RankUpdate{Topic: "t", ID: "a", NewRank: 0})
	for i := 0; i < 2; i++ {
		snap, _ := r.SnapshotOf(i, "t")
		if snap.Prefetch != 0 {
			t.Errorf("replica %d kept the retracted event", i)
		}
	}
}

// TestReplicatedMatchesSingle replays a mixed workload against a single
// proxy and a 3-replica group and requires the device to observe the
// identical forward sequence.
func TestReplicatedMatchesSingle(t *testing.T) {
	workload := func(apply func(step int, notify func(*msg.Notification), read func(msg.ReadRequest), network func(bool))) {
	}
	_ = workload

	runSingle := func() []msg.ID {
		clock := simtime.NewVirtual(t0)
		dev := &recorder{}
		p := core.New(clock, dev)
		if err := p.AddTopic(core.BufferConfig("t", 2, 4)); err != nil {
			t.Fatal(err)
		}
		driveWorkload(clock, p.Notify, func(req msg.ReadRequest) { _ = p.Read(req) }, p.SetNetwork)
		out := make([]msg.ID, 0, len(dev.got))
		for _, n := range dev.got {
			out = append(out, n.ID)
		}
		return out
	}
	runReplicated := func(failAt int) []msg.ID {
		clock := simtime.NewVirtual(t0)
		dev := &recorder{}
		r, err := New(clock, dev, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddTopic(core.BufferConfig("t", 2, 4)); err != nil {
			t.Fatal(err)
		}
		step := 0
		driveWorkload(clock,
			func(n *msg.Notification) {
				if step == failAt {
					if err := r.Fail(r.Active()); err != nil {
						t.Fatal(err)
					}
				}
				step++
				r.Notify(n)
			},
			func(req msg.ReadRequest) { _ = r.Read(req) },
			r.SetNetwork,
		)
		out := make([]msg.ID, 0, len(dev.got))
		for _, n := range dev.got {
			out = append(out, n.ID)
		}
		return out
	}

	want := runSingle()
	for _, failAt := range []int{-1, 0, 5, 11} {
		got := runReplicated(failAt)
		if len(got) != len(want) {
			t.Fatalf("failAt=%d: %d forwards vs single's %d\n got: %v\nwant: %v",
				failAt, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("failAt=%d: forward %d = %s, want %s", failAt, i, got[i], want[i])
			}
		}
	}
}

// driveWorkload is a fixed mixed sequence of arrivals, outages, and reads.
func driveWorkload(clock *simtime.Virtual, notify func(*msg.Notification), read func(msg.ReadRequest), network func(bool)) {
	ranks := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	for i, rank := range ranks {
		notify(note(msg.ID(fmt.Sprintf("w%02d", i)), rank, clock.Now()))
		clock.Advance(30 * time.Minute)
		switch i {
		case 3:
			network(false)
		case 6:
			network(true)
		case 9:
			read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 4})
		case 12:
			read(msg.ReadRequest{Topic: "t", N: 2, QueueSize: 3})
		}
	}
	clock.Advance(time.Hour)
}
