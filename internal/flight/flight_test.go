package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.Record(SubSpool, KindFsync, 3, 1500, 7)
	r.Record(SubWorker, KindLoop, 0, 250_000, 4)
	r.Record(SubFlush, KindFlush, -1, 16, 4096)

	events := r.Snapshot()
	if len(events) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(events))
	}
	byKind := map[Kind]Event{}
	for _, e := range events {
		byKind[e.Kind] = e
		if e.At == 0 {
			t.Errorf("%v event has zero timestamp", e.Kind)
		}
	}
	if e := byKind[KindFsync]; e.Sub != SubSpool || e.Worker != 3 || e.A != 1500 || e.B != 7 {
		t.Errorf("fsync event mangled: %+v", e)
	}
	if e := byKind[KindFlush]; e.Worker != -1 {
		t.Errorf("unsharded worker tag not preserved: %+v", e)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("snapshot not sorted by timestamp")
		}
	}
}

func TestRecorderWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 50; i++ {
		r.Record(SubSpool, KindAppend, 0, int64(i), 0)
	}
	events := r.Snapshot()
	if len(events) != 16 {
		t.Fatalf("wrapped ring snapshot has %d events, want 16", len(events))
	}
	seen := map[int64]bool{}
	for _, e := range events {
		seen[e.A] = true
	}
	for i := int64(34); i < 50; i++ {
		if !seen[i] {
			t.Errorf("newest event %d evicted by wrap", i)
		}
	}
}

func TestSubsystemRingsAreIndependent(t *testing.T) {
	r := NewRecorder(16)
	// Flood one subsystem far past its capacity; another's single event
	// must survive.
	r.Record(SubWorker, KindLoop, 0, 42, 0)
	for i := 0; i < 1000; i++ {
		r.Record(SubFlush, KindFlush, -1, int64(i), 0)
	}
	found := false
	for _, e := range r.Snapshot() {
		if e.Sub == SubWorker && e.A == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("a chatty subsystem evicted another subsystem's history")
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	r := NewRecorder(1024)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(SubFlush, KindFlush, 2, 8, 2048)
	}); n != 0 {
		t.Fatalf("Recorder.Record allocates %.1f per op, want 0", n)
	}
	// The package-level path (the one on the datapath) must stay
	// alloc-free too, enabled or disabled.
	prev := Active()
	defer current.Store(prev)
	Enable(1024)
	if n := testing.AllocsPerRun(1000, func() {
		Record(SubSpool, KindAppend, 0, 100, 64)
	}); n != 0 {
		t.Fatalf("flight.Record (enabled) allocates %.1f per op, want 0", n)
	}
	Enable(0)
	if n := testing.AllocsPerRun(1000, func() {
		Record(SubSpool, KindAppend, 0, 100, 64)
	}); n != 0 {
		t.Fatalf("flight.Record (disabled) allocates %.1f per op, want 0", n)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(Subsystem(i%int(NumSubsystems)), KindAppend, int32(w), int64(i), 0)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, e := range r.Snapshot() {
			if e.Kind != KindAppend || e.At == 0 {
				t.Errorf("torn slot leaked into snapshot: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestNameRoundTrips(t *testing.T) {
	for s := Subsystem(0); s < NumSubsystems; s++ {
		got, ok := SubsystemByName(s.String())
		if !ok || got != s {
			t.Errorf("subsystem %d label %q does not round-trip", s, s.String())
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("kind %d label %q does not round-trip", k, k.String())
		}
	}
}

func TestTopicHashStableAndAllocFree(t *testing.T) {
	if TopicHash("sc/burst/t001") != TopicHash("sc/burst/t001") {
		t.Fatal("TopicHash not deterministic")
	}
	if TopicHash("a") == TopicHash("b") {
		t.Fatal("trivially distinct topics collide")
	}
	topic := "sc/quiet-window/t042"
	if n := testing.AllocsPerRun(1000, func() { TopicHash(topic) }); n != 0 {
		t.Fatalf("TopicHash allocates %.1f per op, want 0", n)
	}
}

func TestHeartbeatProbe(t *testing.T) {
	var hb atomic.Int64
	p := HeartbeatProbe("w", "worker", &hb, 10*time.Millisecond)
	if err := p.Check(); err != nil {
		t.Fatalf("unstarted heartbeat tripped: %v", err)
	}
	hb.Store(time.Now().UnixNano())
	if err := p.Check(); err != nil {
		t.Fatalf("fresh heartbeat tripped: %v", err)
	}
	hb.Store(time.Now().Add(-time.Second).UnixNano())
	if err := p.Check(); err == nil {
		t.Fatal("stale heartbeat did not trip")
	}
}

func TestAgeProbe(t *testing.T) {
	var oldest atomic.Int64
	p := AgeProbe("pend", "spool", oldest.Load, 10*time.Millisecond)
	if err := p.Check(); err != nil {
		t.Fatalf("nothing outstanding tripped: %v", err)
	}
	oldest.Store(time.Now().Add(-time.Second).UnixNano())
	if err := p.Check(); err == nil {
		t.Fatal("old outstanding work did not trip")
	}
}

func TestGrowthProbeTripsOnMonotonicLeak(t *testing.T) {
	var val atomic.Int64
	p := GrowthProbe("leak", "pool", val.Load, 3, 30)
	// Oscillation is load, not a leak: never trips.
	for _, v := range []int64{10, 50, 20, 60, 10} {
		val.Store(v)
		if err := p.Check(); err != nil {
			t.Fatalf("oscillating value tripped: %v", err)
		}
	}
	// Ratcheting growth past the window and floor trips.
	var tripped error
	for _, v := range []int64{20, 40, 60, 80} {
		val.Store(v)
		tripped = p.Check()
	}
	if tripped == nil {
		t.Fatal("monotonic growth did not trip")
	}
}

func TestWatchdogRunOnceAndRateLimit(t *testing.T) {
	w := NewWatchdog(time.Hour) // loop never fires; RunOnce drives it
	defer w.Close()
	fail := atomic.Bool{}
	w.Register(Probe{Name: "p", Component: "spool", Check: func() error {
		if fail.Load() {
			return fmt.Errorf("wedged")
		}
		return nil
	}})
	var dumps atomic.Int64
	w.OnTrip(func(trips []Trip) {
		dumps.Add(1)
		if len(trips) != 1 || trips[0].Component != "spool" {
			t.Errorf("unexpected trips: %+v", trips)
		}
	})

	if trips := w.RunOnce(); trips != nil {
		t.Fatalf("healthy probes tripped: %+v", trips)
	}
	fail.Store(true)
	if trips := w.RunOnce(); len(trips) != 1 {
		t.Fatalf("wedged probe produced %d trips, want 1", len(trips))
	}
	// A persistent stall keeps returning trips but the dump handler is
	// rate-limited to one bundle per gap.
	if trips := w.RunOnce(); len(trips) != 1 {
		t.Fatalf("persistent stall stopped reporting: %+v", trips)
	}
	if got := dumps.Load(); got != 1 {
		t.Fatalf("dump handler fired %d times inside the gap, want 1", got)
	}
	w.SetDumpGap(0)
	w.RunOnce()
	if got := dumps.Load(); got != 2 {
		t.Fatalf("gapless dump handler fired %d times, want 2", got)
	}
	if w.Trips() != 3 {
		t.Fatalf("trip counter %d, want 3", w.Trips())
	}
}

func TestWatchdogPeriodicLoop(t *testing.T) {
	w := NewWatchdog(5 * time.Millisecond)
	w.Register(Probe{Name: "always", Component: "flush", Check: func() error {
		return fmt.Errorf("down")
	}})
	w.Start()
	deadline := time.Now().Add(2 * time.Second)
	for w.Trips() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.Close()
	if w.Trips() == 0 {
		t.Fatal("periodic loop never ran the probes")
	}
}
