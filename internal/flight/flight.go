// Package flight is the node's black box: an always-on flight recorder
// of compact structured events from every latency-critical subsystem —
// worker loop progress, wheel cascades, spool append/fsync/compaction
// latencies, mux subscribe/drain transitions, egress-ring flushes, pool
// outstanding drift, hibernate/rehydrate transitions, quiet-window
// releases — held in fixed-size per-subsystem ring buffers so the last
// few seconds before an anomaly are always reconstructible.
//
// Recording is lock-free and allocation-free: a writer claims a slot
// with one atomic add and fills it with a handful of atomic stores
// bracketed by a per-slot sequence number (a seqlock), so readers decode
// concurrently without ever blocking a writer and detect torn slots
// instead of trusting them. The recorder is enabled at init and costs
// nothing while the node is idle — no goroutines, no timers, events are
// only written when the instrumented code paths run.
//
// On top of the recorder sit the stall watchdog (watchdog.go), the
// post-mortem dump bundle (bundle.go), and the lasthop-doctor diagnosis
// engine (doctor.go).
package flight

import (
	"sort"
	"sync/atomic"
	"time"
)

// Subsystem partitions the recorder into independent rings, so a chatty
// subsystem (flushes under load) cannot evict another's history (a
// worker's last loop iterations — exactly what a stall post-mortem
// needs).
type Subsystem uint8

const (
	// SubWorker: event-loop worker progress (KindLoop).
	SubWorker Subsystem = iota
	// SubWheel: timing-wheel cascades (KindCascade).
	SubWheel
	// SubSpool: spool append/fsync/compact latencies.
	SubSpool
	// SubMux: upstream subscription multiplexer transitions.
	SubMux
	// SubFlush: egress-ring flushes and stalls.
	SubFlush
	// SubPool: burst pool outstanding samples.
	SubPool
	// SubLifecycle: session hibernate/rehydrate transitions.
	SubLifecycle
	// SubCore: per-session proxy volume-limit machinery (quiet-window
	// releases).
	SubCore

	// NumSubsystems sizes per-subsystem arrays.
	NumSubsystems
)

var subsystemNames = [NumSubsystems]string{
	SubWorker:    "worker",
	SubWheel:     "wheel",
	SubSpool:     "spool",
	SubMux:       "mux",
	SubFlush:     "flush",
	SubPool:      "pool",
	SubLifecycle: "lifecycle",
	SubCore:      "core",
}

func (s Subsystem) String() string {
	if int(s) < len(subsystemNames) {
		return subsystemNames[s]
	}
	return "unknown"
}

// SubsystemByName resolves a subsystem label back to its code (doctor
// side). ok is false for labels this build does not know.
func SubsystemByName(name string) (Subsystem, bool) {
	for i, n := range subsystemNames {
		if n == name {
			return Subsystem(i), true
		}
	}
	return 0, false
}

// Kind says what happened; A and B are kind-specific payloads documented
// per constant (durations are nanoseconds).
type Kind uint8

const (
	// KindNone is the zero kind (an empty slot decodes to it).
	KindNone Kind = iota
	// KindLoop: one live wheel advance batch. A=busy ns, B=ticks run.
	KindLoop
	// KindCascade: higher wheel levels drained down. A=timers moved.
	KindCascade
	// KindAppend: spool record appended. A=latency ns, B=bytes.
	KindAppend
	// KindFsync: spool fsync. A=latency ns, B=pending commit callbacks.
	KindFsync
	// KindCompact: spool compaction pass. A=latency ns, B=segments after.
	KindCompact
	// KindSubscribe: upstream mux took a topic reference. A=topic hash,
	// B=refs after.
	KindSubscribe
	// KindUnsubscribe: upstream mux dropped a reference. A=topic hash,
	// B=refs after.
	KindUnsubscribe
	// KindDrain: last reference gone, upstream unsubscribe resolved.
	// A=topic hash.
	KindDrain
	// KindFlush: one vectored egress flush. A=frames, B=bytes.
	KindFlush
	// KindStall: a watchdog probe fired. A=probe age ns.
	KindStall
	// KindOutstanding: pool outstanding sample. A=outstanding, B=delta
	// since previous sample.
	KindOutstanding
	// KindHibernate: one session completed hibernation. A=hibernations
	// so far.
	KindHibernate
	// KindRehydrate: one session rebuilt from its spool chain.
	// A=latency ns.
	KindRehydrate
	// KindQuietRelease: a quiet-window hold released. A=topic hash,
	// B=1 if forwarded, 0 if staged against the daily cap.
	KindQuietRelease

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:         "none",
	KindLoop:         "loop",
	KindCascade:      "cascade",
	KindAppend:       "append",
	KindFsync:        "fsync",
	KindCompact:      "compact",
	KindSubscribe:    "subscribe",
	KindUnsubscribe:  "unsubscribe",
	KindDrain:        "drain",
	KindFlush:        "flush",
	KindStall:        "stall",
	KindOutstanding:  "outstanding",
	KindHibernate:    "hibernate",
	KindRehydrate:    "rehydrate",
	KindQuietRelease: "quiet-release",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a kind label back to its code (doctor side).
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one decoded flight record. Worker is the worker/shard the
// event belongs to, or -1 when the subsystem is not sharded.
type Event struct {
	At     int64 // unix nanoseconds
	Sub    Subsystem
	Kind   Kind
	Worker int32
	A, B   int64
}

// Time converts the event timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.At) }

// slot is one seqlock-guarded ring entry. seq is 2*pos+1 while the
// claiming writer is mid-store and 2*pos+2 once the slot is complete, so
// a reader can tell a torn slot (odd), a recycled slot (different
// generation), and a never-written slot (zero) apart from a valid one.
type slot struct {
	seq  atomic.Uint64
	at   atomic.Int64
	a    atomic.Int64
	b    atomic.Int64
	meta atomic.Uint64 // sub<<40 | kind<<32 | uint32(worker)
}

type ring struct {
	cursor atomic.Uint64
	mask   uint64
	slots  []slot
}

func (r *ring) record(at int64, meta uint64, a, b int64) {
	pos := r.cursor.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.seq.Store(2*pos + 1)
	s.at.Store(at)
	s.a.Store(a)
	s.b.Store(b)
	s.meta.Store(meta)
	s.seq.Store(2*pos + 2)
}

// snapshot appends every decodable event, oldest first, skipping slots a
// concurrent writer holds mid-store (torn) or has lapped (stale
// generation).
func (r *ring) snapshot(buf []Event) []Event {
	end := r.cursor.Load()
	n := uint64(len(r.slots))
	if n == 0 || end == 0 {
		return buf
	}
	start := uint64(0)
	if end > n {
		start = end - n
	}
	for pos := start; pos < end; pos++ {
		s := &r.slots[pos&r.mask]
		want := 2*pos + 2
		if s.seq.Load() != want {
			continue
		}
		at, a, b, meta := s.at.Load(), s.a.Load(), s.b.Load(), s.meta.Load()
		if s.seq.Load() != want {
			continue
		}
		buf = append(buf, Event{
			At:     at,
			Sub:    Subsystem(meta >> 40),
			Kind:   Kind(meta >> 32 & 0xff),
			Worker: int32(uint32(meta)),
			A:      a,
			B:      b,
		})
	}
	return buf
}

// Recorder holds one ring per subsystem.
type Recorder struct {
	rings [NumSubsystems]ring
}

// DefaultRingEvents is the per-subsystem ring capacity the process-wide
// recorder starts with: at typical event rates (commit ticks every tens
// of milliseconds, flushes under load) it covers the last several
// seconds — the window a stall post-mortem needs.
const DefaultRingEvents = 4096

// NewRecorder returns a recorder with the given per-subsystem capacity,
// rounded up to a power of two (minimum 16).
func NewRecorder(perSubsystem int) *Recorder {
	size := 16
	for size < perSubsystem {
		size <<= 1
	}
	r := &Recorder{}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].mask = uint64(size - 1)
	}
	return r
}

// Record writes one event: one atomic add to claim the slot plus five
// atomic stores to fill it. Zero heap.
func (r *Recorder) Record(sub Subsystem, kind Kind, worker int32, a, b int64) {
	meta := uint64(sub)<<40 | uint64(kind)<<32 | uint64(uint32(worker))
	r.rings[sub].record(time.Now().UnixNano(), meta, a, b)
}

// Snapshot decodes every ring into one timeline, sorted by timestamp.
// Safe to call while writers are recording.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for i := range r.rings {
		out = r.rings[i].snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// current is the process-wide recorder. Always on from init; Enable
// resizes it and Disable (tests) turns recording into a single
// nil-check branch.
var current atomic.Pointer[Recorder]

func init() { Enable(DefaultRingEvents) }

// Enable installs a fresh process-wide recorder with the given
// per-subsystem ring capacity and returns it. size <= 0 disables
// recording.
func Enable(size int) *Recorder {
	if size <= 0 {
		current.Store(nil)
		return nil
	}
	r := NewRecorder(size)
	current.Store(r)
	return r
}

// Active returns the process-wide recorder, nil when disabled.
func Active() *Recorder { return current.Load() }

// Record writes one event to the process-wide recorder; a disabled
// recorder makes this a load and a branch.
func Record(sub Subsystem, kind Kind, worker int32, a, b int64) {
	if r := current.Load(); r != nil {
		r.Record(sub, kind, worker, a, b)
	}
}

// TopicHash folds a topic name to a stable 32-bit tag (FNV-1a) so events
// can reference topics without retaining or allocating strings. The
// doctor reports the tag; correlating it back to a name uses the trace
// side of the bundle.
func TopicHash(topic string) int64 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(topic); i++ {
		h ^= uint32(topic[i])
		h *= prime32
	}
	return int64(h)
}
