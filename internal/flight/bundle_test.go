package flight

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tracesStub stands in for a trace.Collector via the bundle's structural
// Traces interface: it dumps a canned JSONL body.
type tracesStub string

func (s tracesStub) WriteJSONL(w io.Writer) error {
	_, err := io.WriteString(w, string(s))
	return err
}

func TestBundleRoundTrip(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(SubSpool, KindAppend, 1, 900, 128)
	rec.Record(SubSpool, KindFsync, 1, 40_000, 3)
	rec.Record(SubFlush, KindFlush, -1, 8, 4096)

	trips := []Trip{{Probe: "worker-1-spool", Component: "spool", Error: "group commit pending for 2s", At: time.Now()}}
	dir, err := WriteBundle(BundleOptions{
		Dir:      t.TempDir(),
		Node:     "edge host/1", // exercises sanitizing
		Reason:   "watchdog",
		Trips:    trips,
		Recorder: rec,
	})
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	if base := filepath.Base(dir); strings.ContainsAny(base, " /") || !strings.HasPrefix(base, "flight-edge_host_1-") {
		t.Errorf("bundle dir name not sanitized: %q", base)
	}
	for _, name := range []string{"flight.jsonl", "goroutines.txt", "heap.pprof", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}

	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatalf("LoadBundle: %v", err)
	}
	if b.Manifest.Node != "edge host/1" || b.Manifest.Reason != "watchdog" || len(b.Manifest.Trips) != 1 {
		t.Errorf("manifest mangled: %+v", b.Manifest)
	}
	if len(b.Events) != 3 {
		t.Fatalf("loaded %d events, want 3", len(b.Events))
	}
	var fsync *Event
	for i := range b.Events {
		if b.Events[i].Kind == KindFsync {
			fsync = &b.Events[i]
		}
	}
	if fsync == nil || fsync.Sub != SubSpool || fsync.A != 40_000 || fsync.B != 3 || fsync.Worker != 1 {
		t.Errorf("fsync event did not survive the JSONL round trip: %+v", fsync)
	}
}

func TestLoadBundleRejectsTornDump(t *testing.T) {
	dir := t.TempDir()
	// flight.jsonl without a manifest: the dump was cut off mid-write.
	if err := os.WriteFile(filepath.Join(dir, "flight.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(dir); err == nil {
		t.Fatal("torn bundle (no manifest) loaded without error")
	}
}

func TestFindBundles(t *testing.T) {
	root := t.TempDir()
	var want []string
	for i := 0; i < 3; i++ {
		dir, err := WriteBundle(BundleOptions{Dir: root, Node: "n", Reason: "http", SkipPprof: true})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dir)
	}
	// A stray directory without a manifest is not a bundle.
	if err := os.MkdirAll(filepath.Join(root, "not-a-bundle"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := FindBundles(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("found %d bundles, want %d: %v", len(got), len(want), got)
	}
}

func TestDumpHandler(t *testing.T) {
	dir := t.TempDir()
	h := DumpHandler(func(reason string) BundleOptions {
		if reason != "http" {
			t.Errorf("handler reason %q, want http", reason)
		}
		return BundleOptions{Dir: dir, Node: "n1", Reason: reason, SkipPprof: true}
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight/dump", nil))
	if rr.Code != 200 {
		t.Fatalf("dump handler status %d: %s", rr.Code, rr.Body)
	}
	var resp map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if _, err := LoadBundle(resp["bundle"]); err != nil {
		t.Fatalf("handler's bundle does not load: %v", err)
	}
}

func TestDiagnoseNamesStalledComponent(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(SubSpool, KindAppend, 0, 1000, 64)
	rec.Record(SubWorker, KindLoop, 0, 100, 1)
	time.Sleep(10 * time.Millisecond) // open a visible silence window
	trips := []Trip{{Probe: "worker-0-spool", Component: "spool", Error: "group commit pending for 5s", At: time.Now()}}

	dir, err := WriteBundle(BundleOptions{
		Dir: t.TempDir(), Node: "edge-1", Reason: "watchdog",
		Trips: trips, Recorder: rec, SkipPprof: true,
		Traces: tracesStub(`{"traceId":"t1","topic":"a","outcome":"lost"}
{"traceId":"t2","topic":"a","outcome":"read"}
{"traceId":"t3","topic":"b","outcome":"wasted"}
`),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := Diagnose([]*Bundle{b})
	if len(ds) != 1 {
		t.Fatalf("got %d diagnoses, want 1: %+v", len(ds), ds)
	}
	d := ds[0]
	if d.Component != "spool" || d.Node != "edge-1" {
		t.Fatalf("diagnosis names %s/%s, want edge-1/spool", d.Node, d.Component)
	}
	if d.WindowFrom.IsZero() || !d.WindowFrom.Before(d.WindowTo) {
		t.Errorf("evidence window not anchored: from=%v to=%v", d.WindowFrom, d.WindowTo)
	}
	if d.Lost != 1 || d.Wasted != 1 {
		t.Errorf("correlated outcomes lost=%d wasted=%d, want 1/1", d.Lost, d.Wasted)
	}

	var tbl strings.Builder
	WriteDiagnosisTable(&tbl, ds)
	if !strings.Contains(tbl.String(), "spool") || !strings.Contains(tbl.String(), "edge-1") {
		t.Errorf("diagnosis table missing the component:\n%s", tbl.String())
	}
}

func TestDiagnoseCollapsesRepeatTrips(t *testing.T) {
	early := time.Now().Add(-time.Minute)
	late := time.Now()
	dir, err := WriteBundle(BundleOptions{
		Dir: t.TempDir(), Node: "n", Reason: "watchdog", SkipPprof: true,
		Trips: []Trip{
			{Probe: "p", Component: "flush", Error: "late", At: late},
			{Probe: "p", Component: "flush", Error: "early", At: early},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := Diagnose([]*Bundle{b})
	if len(ds) != 1 {
		t.Fatalf("repeat trips not collapsed: %+v", ds)
	}
	if !ds[0].WindowTo.Equal(early.UTC()) && !ds[0].WindowTo.Equal(early) {
		t.Errorf("collapsed diagnosis kept %v, want earliest %v", ds[0].WindowTo, early)
	}
}
