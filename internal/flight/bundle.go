package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"
)

// BundleOptions says what goes into a dump bundle. Nil fields are
// skipped, so a broker (no trace collector) and a proxy produce the
// same bundle shape minus the missing files.
type BundleOptions struct {
	// Dir is the parent directory; the bundle becomes a fresh
	// subdirectory under it. Empty means the OS temp dir.
	Dir string
	// Node names the process in the manifest and the bundle dir.
	Node string
	// Reason is why the dump fired: "watchdog", "sigquit", "http",
	// "scenario-failure", …
	Reason string
	// Trips carries the watchdog evidence (may be nil for manual dumps).
	Trips []Trip
	// Recorder is the flight recorder to decode; nil skips flight.jsonl.
	Recorder *Recorder
	// Metrics is scraped into metrics.prom; nil skips it. The interface
	// is structural (obs.Registry satisfies it) so flight stays
	// import-light and broker-only binaries need not link obs.
	Metrics interface{ WriteText(w io.Writer) error }
	// Traces dumps the collector's completed ring into traces.jsonl;
	// nil skips it (trace.Collector satisfies it).
	Traces interface{ WriteJSONL(w io.Writer) error }
	// SkipPprof drops the goroutine and heap profiles (tests).
	SkipPprof bool
}

// Manifest is the bundle's index, written last so a complete
// manifest.json marks a complete bundle.
type Manifest struct {
	Node      string    `json:"node"`
	Reason    string    `json:"reason"`
	WrittenAt time.Time `json:"written_at"`
	Trips     []Trip    `json:"trips,omitempty"`
	Files     []string  `json:"files"`
}

const manifestFile = "manifest.json"

// WriteBundle dumps a post-mortem bundle and returns its directory:
//
//	flight.jsonl   flight recorder timeline, one event per line
//	metrics.prom   metrics snapshot (Prometheus text)
//	goroutines.txt full goroutine stacks (pprof debug=2)
//	heap.pprof     heap profile
//	traces.jsonl   trace collector's completed ring
//	manifest.json  node, reason, watchdog trips, file index
//
// Partial failures skip the file and keep going — a dump fired because
// the node is sick must salvage what it can.
func WriteBundle(o BundleOptions) (string, error) {
	parent := o.Dir
	if parent == "" {
		parent = os.TempDir()
	}
	node := sanitizeNode(o.Node)
	dir := filepath.Join(parent, fmt.Sprintf("flight-%s-%d", node, time.Now().UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: bundle dir: %w", err)
	}
	var files []string
	add := func(name string, write func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return
		}
		werr := write(f)
		if cerr := f.Close(); werr == nil && cerr == nil {
			files = append(files, name)
		}
	}

	if o.Recorder != nil {
		add("flight.jsonl", func(f *os.File) error {
			return writeEventsJSONL(f, o.Recorder.Snapshot())
		})
	}
	if o.Metrics != nil {
		add("metrics.prom", func(f *os.File) error { return o.Metrics.WriteText(f) })
	}
	if !o.SkipPprof {
		add("goroutines.txt", func(f *os.File) error {
			return pprof.Lookup("goroutine").WriteTo(f, 2)
		})
		add("heap.pprof", func(f *os.File) error {
			return pprof.Lookup("heap").WriteTo(f, 0)
		})
	}
	if o.Traces != nil {
		add("traces.jsonl", func(f *os.File) error { return o.Traces.WriteJSONL(f) })
	}

	m := Manifest{Node: o.Node, Reason: o.Reason, WrittenAt: time.Now(), Trips: o.Trips, Files: files}
	mf, err := os.Create(filepath.Join(dir, manifestFile))
	if err != nil {
		return dir, fmt.Errorf("flight: manifest: %w", err)
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		mf.Close()
		return dir, fmt.Errorf("flight: manifest: %w", err)
	}
	return dir, mf.Close()
}

// eventJSON is the on-disk shape of one flight event; subsystem and kind
// travel as their labels so bundles outlive enum renumbering.
type eventJSON struct {
	At     int64  `json:"at"`
	Time   string `json:"time"`
	Sub    string `json:"sub"`
	Kind   string `json:"kind"`
	Worker int32  `json:"worker"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

func writeEventsJSONL(f *os.File, events []Event) error {
	enc := json.NewEncoder(f)
	for _, e := range events {
		j := eventJSON{
			At:     e.At,
			Time:   e.Time().UTC().Format(time.RFC3339Nano),
			Sub:    e.Sub.String(),
			Kind:   e.Kind.String(),
			Worker: e.Worker,
			A:      e.A,
			B:      e.B,
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeNode(node string) string {
	if node == "" {
		return "node"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, node)
}

// DumpHandler serves on-demand dumps (mounted at /debug/flight/dump):
// any request writes a bundle and answers with its path as JSON.
func DumpHandler(opts func(reason string) BundleOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path, err := WriteBundle(opts("http"))
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "bundle": path})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"bundle": path})
	})
}

// DumpOnSignal dumps a bundle whenever the process receives SIGQUIT and
// keeps running (the kill -QUIT idiom for a live post-mortem). The
// returned stop function releases the handler goroutine.
func DumpOnSignal(opts func(reason string) BundleOptions, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ch:
				path, err := WriteBundle(opts("sigquit"))
				if err != nil {
					logf("flight: sigquit dump: %v", err)
				} else {
					logf("flight: sigquit dump written to %s", path)
				}
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
