package flight_test

// The acceptance path for the whole observability stack, end to end: a
// real component is wedged, the watchdog trips on its lock-free
// telemetry, the trip dumps a bundle, and the doctor loads the bundle
// and names the stalled component. Lives in an external test package so
// it can import the instrumented components (spool, wire) — they import
// flight, not the other way around.

import (
	"net"
	"strings"
	"testing"
	"time"

	"lasthop/internal/flight"
	"lasthop/internal/spool"
	"lasthop/internal/wire"
)

func TestSpoolStallTripsWatchdogAndDoctorNamesIt(t *testing.T) {
	rec := flight.Enable(256)
	defer flight.Enable(flight.DefaultRingEvents)

	w, err := spool.Open(spool.Options{Dir: t.TempDir(), Fsync: spool.FsyncCommit, Tag: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// The injected stall: records are appended with commit callbacks but
	// the group commit never runs — exactly what a wedged fsync or a
	// dead commit tick looks like from outside.
	for i := 0; i < 4; i++ {
		if _, err := w.Append(spool.Record{Kind: spool.KindDelta, Name: "sess", Payload: []byte("x")}, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)

	dog := flight.NewWatchdog(time.Hour)
	defer dog.Close()
	dog.Register(w.StallProbe("worker-0-spool", 10*time.Millisecond, 0))

	var bundlePath string
	dog.OnTrip(func(trips []flight.Trip) {
		dir, err := flight.WriteBundle(flight.BundleOptions{
			Dir: t.TempDir(), Node: "stall-test", Reason: "watchdog",
			Trips: trips, Recorder: rec, SkipPprof: true,
		})
		if err != nil {
			t.Errorf("bundle dump: %v", err)
			return
		}
		bundlePath = dir
	})

	trips := dog.RunOnce()
	if len(trips) != 1 {
		t.Fatalf("stalled spool produced %d trips, want 1: %+v", len(trips), trips)
	}
	if trips[0].Component != flight.SubSpool.String() {
		t.Fatalf("trip blames %q, want spool", trips[0].Component)
	}
	if !strings.Contains(trips[0].Error, "pending") {
		t.Errorf("trip evidence %q does not mention the pending commit", trips[0].Error)
	}
	if bundlePath == "" {
		t.Fatal("watchdog trip did not produce a bundle")
	}

	// The doctor, pointed at the bundle, must name the component.
	b, err := flight.LoadBundle(bundlePath)
	if err != nil {
		t.Fatalf("doctor cannot load the trip bundle: %v", err)
	}
	ds := flight.Diagnose([]*flight.Bundle{b})
	if len(ds) != 1 || ds[0].Component != "spool" {
		t.Fatalf("doctor diagnosis %+v, want one naming spool", ds)
	}
	if ds[0].Events == 0 {
		t.Error("diagnosis found no spool flight events despite the appends")
	}
	if ds[0].WindowFrom.IsZero() {
		t.Error("evidence window missing the spool's last activity")
	}

	// Recovery: once the group commit runs, the probe goes quiet.
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if trips := dog.RunOnce(); trips != nil {
		t.Fatalf("probe still tripping after commit: %+v", trips)
	}
}

func TestParkedFlusherTripsProbe(t *testing.T) {
	// A connection whose flusher is wedged mid-write: net.Pipe's peer
	// never reads, so the flush blocks and the buffered bytes age. The
	// raw client side closes first on cleanup to unblock the flusher
	// before Conn.Close takes the write lock it is holding.
	client, server := net.Pipe()
	c := wire.NewConn(client)
	defer func() { _ = c.Close() }()
	defer server.Close()
	defer client.Close()

	if err := c.Send(&wire.Frame{Type: wire.TypePublish, Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	probe := wire.FlusherStallProbe(10*time.Millisecond, 1)
	if err := probe.Check(); err == nil {
		t.Fatal("parked flusher with pending bytes did not trip")
	} else if !strings.Contains(err.Error(), "unflushed") {
		t.Errorf("trip evidence %q does not mention unflushed bytes", err)
	}
	if probe.Component != flight.SubFlush.String() {
		t.Errorf("probe component %q, want flush", probe.Component)
	}
}
