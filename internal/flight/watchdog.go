package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Probe is one periodic health check. Check returns nil while healthy
// and a descriptive error once the component looks stalled; the error
// becomes the evidence line in the dump bundle. Component is the
// doctor-facing label ("worker", "spool", "flusher", "pool", …) —
// conventionally a Subsystem name, which lets the doctor anchor the
// evidence window in that subsystem's flight ring.
//
// Checks run on the watchdog goroutine while the probed component may be
// wedged holding its own locks, so a Check must only read atomics or
// otherwise lock-free state — never take the component's mutex.
type Probe struct {
	Name      string
	Component string
	Check     func() error
}

// Trip records one probe failure.
type Trip struct {
	Probe     string    `json:"probe"`
	Component string    `json:"component"`
	Error     string    `json:"error"`
	At        time.Time `json:"at"`
}

func (t Trip) String() string {
	return fmt.Sprintf("probe %s (%s): %s", t.Probe, t.Component, t.Error)
}

// Watchdog periodically runs registered probes and reports trips. The
// OnTrip callback (typically a bundle dump) is rate-limited: once fired
// it stays quiet for a full dump gap even if probes keep failing, so a
// persistent stall produces one bundle, not one per interval.
type Watchdog struct {
	interval time.Duration
	dumpGap  time.Duration

	mu       sync.Mutex
	probes   []Probe
	onTrip   func([]Trip)
	lastDump time.Time

	tripped atomic.Int64

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// DefaultDumpGap is the minimum spacing between OnTrip callbacks.
const DefaultDumpGap = 30 * time.Second

// NewWatchdog returns a stopped watchdog checking at the given interval
// once started. Interval <= 0 defaults to 2s.
func NewWatchdog(interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Watchdog{interval: interval, dumpGap: DefaultDumpGap, done: make(chan struct{})}
}

// SetDumpGap tunes the OnTrip rate limit (tests shrink it). Zero or
// negative disables the limit.
func (w *Watchdog) SetDumpGap(d time.Duration) {
	w.mu.Lock()
	w.dumpGap = d
	w.mu.Unlock()
}

// Register adds probes; safe while the watchdog runs.
func (w *Watchdog) Register(probes ...Probe) {
	w.mu.Lock()
	w.probes = append(w.probes, probes...)
	w.mu.Unlock()
}

// OnTrip installs the trip handler (typically WriteBundle + a log line).
// The handler runs on the watchdog goroutine.
func (w *Watchdog) OnTrip(fn func([]Trip)) {
	w.mu.Lock()
	w.onTrip = fn
	w.mu.Unlock()
}

// Trips returns how many probe failures have been observed in total.
func (w *Watchdog) Trips() int64 { return w.tripped.Load() }

// RunOnce checks every probe immediately, returning the trips (nil when
// healthy) and firing the rate-limited OnTrip handler on failures. The
// periodic loop calls this; tests and SIGQUIT-style handlers may too.
func (w *Watchdog) RunOnce() []Trip {
	w.mu.Lock()
	probes := append([]Probe(nil), w.probes...)
	w.mu.Unlock()

	var trips []Trip
	now := time.Now()
	for _, p := range probes {
		if p.Check == nil {
			continue
		}
		if err := p.Check(); err != nil {
			trips = append(trips, Trip{Probe: p.Name, Component: p.Component, Error: err.Error(), At: now})
			if sub, ok := SubsystemByName(p.Component); ok {
				Record(sub, KindStall, -1, 0, 0)
			}
		}
	}
	if len(trips) == 0 {
		return nil
	}
	w.tripped.Add(int64(len(trips)))

	w.mu.Lock()
	fn := w.onTrip
	fire := fn != nil && (w.dumpGap <= 0 || w.lastDump.IsZero() || now.Sub(w.lastDump) >= w.dumpGap)
	if fire {
		w.lastDump = now
	}
	w.mu.Unlock()
	if fire {
		fn(trips)
	}
	return trips
}

// Start launches the periodic check loop. Idempotent.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			t := time.NewTicker(w.interval)
			defer t.Stop()
			for {
				select {
				case <-w.done:
					return
				case <-t.C:
					w.RunOnce()
				}
			}
		}()
	})
}

// Close stops the loop and waits for it. Idempotent; safe without Start.
func (w *Watchdog) Close() {
	w.closeOnce.Do(func() { close(w.done) })
	w.wg.Wait()
}

// HeartbeatProbe trips when an atomically-stamped unix-nanosecond
// heartbeat is older than max. A zero heartbeat (never stamped) is
// healthy — the component has not started yet.
func HeartbeatProbe(name, component string, last *atomic.Int64, max time.Duration) Probe {
	return Probe{Name: name, Component: component, Check: func() error {
		at := last.Load()
		if at == 0 {
			return nil
		}
		if age := time.Since(time.Unix(0, at)); age > max {
			return fmt.Errorf("heartbeat %v old (max %v)", age.Round(time.Millisecond), max)
		}
		return nil
	}}
}

// AgeProbe trips when the instant returned by oldest (unix nanoseconds;
// 0 = nothing outstanding) has been outstanding longer than max. Used
// for "work accepted but never completed" stalls: a spool append whose
// group commit never ran, an egress ring whose flusher never drained.
func AgeProbe(name, component string, oldest func() int64, max time.Duration) Probe {
	return Probe{Name: name, Component: component, Check: func() error {
		at := oldest()
		if at == 0 {
			return nil
		}
		if age := time.Since(time.Unix(0, at)); age > max {
			return fmt.Errorf("outstanding for %v (max %v)", age.Round(time.Millisecond), max)
		}
		return nil
	}}
}

// GrowthProbe samples a value each check and trips once it has grown on
// window consecutive checks with total growth of at least minGrowth —
// the signature of a leak (pool outstanding ratcheting up), as opposed
// to load (which plateaus or oscillates). Each sample is also recorded
// as a KindOutstanding flight event for the post-mortem.
func GrowthProbe(name, component string, sample func() int64, window int, minGrowth int64) Probe {
	if window < 2 {
		window = 2
	}
	var prev, base int64
	var streak int
	var started bool
	sub, subOK := SubsystemByName(component)
	return Probe{Name: name, Component: component, Check: func() error {
		cur := sample()
		if subOK {
			Record(sub, KindOutstanding, -1, cur, cur-prev)
		}
		if !started {
			started = true
			prev, base = cur, cur
			return nil
		}
		if cur > prev {
			if streak == 0 {
				base = prev
			}
			streak++
		} else {
			streak = 0
		}
		prev = cur
		if streak >= window && cur-base >= minGrowth {
			return fmt.Errorf("grew %d over %d consecutive checks (now %d)", cur-base, streak, cur)
		}
		return nil
	}}
}
