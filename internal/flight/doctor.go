package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Bundle is one loaded dump directory: the manifest, the decoded flight
// timeline (sorted), and outcome summaries of the traces that were in
// the collector's completed ring at dump time.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Events   []Event
	Traces   []TraceSummary
}

// TraceSummary is the slice of a dumped trace the doctor correlates:
// identity, outcome, and when it completed.
type TraceSummary struct {
	ID        string    `json:"id"`
	Topic     string    `json:"topic"`
	Outcome   string    `json:"outcome"`
	Completed time.Time `json:"completed"`
}

// LoadBundle reads one bundle directory. Missing optional files
// (traces.jsonl on a broker bundle) are not errors; a missing or
// unparsable manifest is — the bundle was torn mid-dump.
func LoadBundle(dir string) (*Bundle, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("doctor: %s: %w", dir, err)
	}
	b := &Bundle{Dir: dir}
	if err := json.Unmarshal(raw, &b.Manifest); err != nil {
		return nil, fmt.Errorf("doctor: %s: manifest: %w", dir, err)
	}
	if f, err := os.Open(filepath.Join(dir, "flight.jsonl")); err == nil {
		b.Events, err = readEventsJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("doctor: %s: flight.jsonl: %w", dir, err)
		}
	}
	if f, err := os.Open(filepath.Join(dir, "traces.jsonl")); err == nil {
		b.Traces, err = readTracesJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("doctor: %s: traces.jsonl: %w", dir, err)
		}
	}
	sort.Slice(b.Events, func(i, j int) bool { return b.Events[i].At < b.Events[j].At })
	return b, nil
}

// FindBundles returns every directory under root that holds a manifest,
// newest first (by manifest timestamp). root itself may be a bundle.
func FindBundles(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if _, serr := os.Stat(filepath.Join(path, manifestFile)); serr == nil {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func readEventsJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j eventJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, err
		}
		sub, _ := SubsystemByName(j.Sub)
		kind, _ := KindByName(j.Kind)
		out = append(out, Event{At: j.At, Sub: sub, Kind: kind, Worker: j.Worker, A: j.A, B: j.B})
	}
	return out, sc.Err()
}

// traceLine matches the fields the doctor needs out of the collector's
// JSONL dump (trace.NotificationTrace); everything else is ignored.
type traceLine struct {
	ID      string `json:"traceId"`
	Topic   string `json:"topic"`
	Outcome string `json:"outcome"`
	Events  []struct {
		At time.Time `json:"at"`
	} `json:"events"`
}

func readTracesJSONL(r io.Reader) ([]TraceSummary, error) {
	var out []TraceSummary
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var t traceLine
		if err := json.Unmarshal(line, &t); err != nil {
			return nil, err
		}
		s := TraceSummary{ID: t.ID, Topic: t.Topic, Outcome: t.Outcome}
		if len(t.Events) > 0 {
			s.Completed = t.Events[len(t.Events)-1].At
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

// Diagnosis names one stalled component on one node, with the evidence
// window (silence between the component's last flight event and the
// probe trip) and the trace outcomes correlated with the stall.
type Diagnosis struct {
	Node      string
	Component string
	Probe     string
	Evidence  string
	// Window is the silent gap: from the component's last recorded
	// flight event (zero when it never recorded) to the trip.
	WindowFrom time.Time
	WindowTo   time.Time
	// Events counts the component's flight events in the bundle.
	Events int
	// Lost and Wasted count correlated trace outcomes in the bundle.
	Lost, Wasted int
}

// componentSubs maps a probe's component label onto the flight
// subsystems whose silence is its evidence.
func componentSubs(component string) []Subsystem {
	switch component {
	case "worker":
		return []Subsystem{SubWorker, SubWheel}
	case "wheel":
		return []Subsystem{SubWheel, SubWorker}
	case "spool":
		return []Subsystem{SubSpool}
	case "flush":
		return []Subsystem{SubFlush}
	case "pool":
		return []Subsystem{SubPool}
	case "mux":
		return []Subsystem{SubMux}
	case "lifecycle":
		return []Subsystem{SubLifecycle}
	case "core":
		return []Subsystem{SubCore}
	default:
		return nil
	}
}

// Diagnose cross-references every bundle's watchdog trips with its
// flight timeline and trace outcomes. One Diagnosis per (node,
// component); repeated trips of the same component collapse into the
// earliest window.
func Diagnose(bundles []*Bundle) []Diagnosis {
	var out []Diagnosis
	for _, b := range bundles {
		var lost, wasted int
		for _, t := range b.Traces {
			switch t.Outcome {
			case "lost":
				lost++
			case "wasted":
				wasted++
			}
		}
		seen := make(map[string]int) // component → index into out
		for _, trip := range b.Manifest.Trips {
			subs := componentSubs(trip.Component)
			var lastAt int64
			events := 0
			for _, e := range b.Events {
				for _, s := range subs {
					if e.Sub == s {
						events++
						// KindStall is the watchdog's own marker, not
						// component activity.
						if e.Kind != KindStall && e.At > lastAt && e.At <= trip.At.UnixNano() {
							lastAt = e.At
						}
					}
				}
			}
			d := Diagnosis{
				Node:      b.Manifest.Node,
				Component: trip.Component,
				Probe:     trip.Probe,
				Evidence:  trip.Error,
				WindowTo:  trip.At,
				Events:    events,
				Lost:      lost,
				Wasted:    wasted,
			}
			if lastAt != 0 {
				d.WindowFrom = time.Unix(0, lastAt)
			}
			key := b.Manifest.Node + "/" + trip.Component
			if i, ok := seen[key]; ok {
				if d.WindowTo.Before(out[i].WindowTo) {
					out[i].WindowTo = d.WindowTo
					out[i].Probe, out[i].Evidence = d.Probe, d.Evidence
				}
				continue
			}
			seen[key] = len(out)
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// WriteDiagnosisTable renders the diagnosis as an aligned text table.
func WriteDiagnosisTable(w io.Writer, ds []Diagnosis) {
	if len(ds) == 0 {
		fmt.Fprintln(w, "no stalls recorded: every loaded bundle is trip-free")
		return
	}
	fmt.Fprintf(w, "%-12s %-10s %-22s %-14s %6s %6s %6s  %s\n",
		"NODE", "COMPONENT", "PROBE", "SILENT-FOR", "EVENTS", "LOST", "WASTED", "EVIDENCE")
	for _, d := range ds {
		silent := "unknown"
		if !d.WindowFrom.IsZero() {
			silent = d.WindowTo.Sub(d.WindowFrom).Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-12s %-10s %-22s %-14s %6d %6d %6d  %s\n",
			d.Node, d.Component, d.Probe, silent, d.Events, d.Lost, d.Wasted, d.Evidence)
	}
}

// WriteTimeline renders the merged multi-bundle flight timeline (tail
// limits to the last n events; n <= 0 keeps everything), each line
// prefixed with its node.
func WriteTimeline(w io.Writer, bundles []*Bundle, n int) {
	type entry struct {
		node string
		e    Event
	}
	var all []entry
	for _, b := range bundles {
		for _, e := range b.Events {
			all = append(all, entry{b.Manifest.Node, e})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.At < all[j].e.At })
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	for _, en := range all {
		e := en.e
		var detail strings.Builder
		fmt.Fprintf(&detail, "a=%d b=%d", e.A, e.B)
		fmt.Fprintf(w, "%s %-12s %-10s %-14s w=%-3d %s\n",
			e.Time().UTC().Format("15:04:05.000000"), en.node, e.Sub, e.Kind, e.Worker, detail.String())
	}
}
