// Package link models the "last hop" — the wireless link between the fixed
// proxy and the mobile device. The model is deliberately binary (up/down),
// following the paper's observation that periods of unacceptably slow
// connectivity can be treated as outages; it also accounts every transfer
// so experiments can report traffic and devices can charge battery cost.
package link

import (
	"errors"
	"fmt"
	"time"

	"lasthop/internal/dist"
	"lasthop/internal/simtime"
)

// ErrDown is returned for transfers attempted while the link is down.
var ErrDown = errors.New("last-hop link is down")

// Direction labels which way a transfer crossed the link.
type Direction int

const (
	// ProxyToDevice is the downstream direction (notifications).
	ProxyToDevice Direction = iota + 1
	// DeviceToProxy is the upstream direction (read requests, context
	// updates).
	DeviceToProxy
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case ProxyToDevice:
		return "down"
	case DeviceToProxy:
		return "up"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Stats is the cumulative transfer accounting of a link.
type Stats struct {
	// MessagesDown and MessagesUp count transfers per direction.
	MessagesDown, MessagesUp int
	// BytesDown and BytesUp total the transfer sizes per direction.
	BytesDown, BytesUp int64
	// Transitions counts up/down state changes.
	Transitions int
	// Downtime is the cumulative time spent down.
	Downtime time.Duration
}

// Link is the last-hop state machine. Like the rest of the proxy machinery
// it is single-threaded: all calls must be serialized through the owning
// scheduler.
type Link struct {
	sched     simtime.Scheduler
	up        bool
	downSince time.Time
	listeners []func(up bool)
	stats     Stats
}

// New returns a link in the given initial state.
func New(sched simtime.Scheduler, up bool) *Link {
	l := &Link{sched: sched, up: up}
	if !up {
		l.downSince = sched.Now()
	}
	return l
}

// Up reports whether the link is currently connected.
func (l *Link) Up() bool { return l.up }

// OnChange registers a callback invoked after every state change. The
// proxy registers its NETWORK handler here.
func (l *Link) OnChange(fn func(up bool)) {
	l.listeners = append(l.listeners, fn)
}

// SetUp changes the link state, notifying listeners on a real transition.
func (l *Link) SetUp(up bool) {
	if up == l.up {
		return
	}
	now := l.sched.Now()
	if up {
		l.stats.Downtime += now.Sub(l.downSince)
	} else {
		l.downSince = now
	}
	l.up = up
	l.stats.Transitions++
	for _, fn := range l.listeners {
		fn(up)
	}
}

// Transfer accounts one message crossing the link. It fails with ErrDown
// while the link is down.
func (l *Link) Transfer(dir Direction, bytes int) error {
	if !l.up {
		return ErrDown
	}
	switch dir {
	case ProxyToDevice:
		l.stats.MessagesDown++
		l.stats.BytesDown += int64(bytes)
	case DeviceToProxy:
		l.stats.MessagesUp++
		l.stats.BytesUp += int64(bytes)
	default:
		return fmt.Errorf("invalid transfer direction %d", int(dir))
	}
	return nil
}

// Stats returns a copy of the cumulative accounting. Downtime includes the
// current outage up to Now.
func (l *Link) Stats() Stats {
	s := l.stats
	if !l.up {
		s.Downtime += l.sched.Now().Sub(l.downSince)
	}
	return s
}

// Drive schedules the given outage intervals (offsets relative to start)
// onto the link: the link goes down at each interval's Start and comes back
// up at its End. The caller is responsible for the intervals being sorted
// and disjoint, as dist.OutageSchedule produces them.
func Drive(sched simtime.Scheduler, l *Link, outages []dist.Interval) {
	for _, iv := range outages {
		iv := iv
		sched.Schedule(iv.Start, func() { l.SetUp(false) })
		sched.Schedule(iv.End, func() { l.SetUp(true) })
	}
}
