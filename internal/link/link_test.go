package link

import (
	"errors"
	"testing"
	"time"

	"lasthop/internal/dist"
	"lasthop/internal/simtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestTransferAccounting(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, true)
	if !l.Up() {
		t.Fatal("link should start up")
	}
	if err := l.Transfer(ProxyToDevice, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(DeviceToProxy, 40); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(Direction(9), 1); err == nil {
		t.Error("invalid direction accepted")
	}
	s := l.Stats()
	if s.MessagesDown != 1 || s.MessagesUp != 1 || s.BytesDown != 100 || s.BytesUp != 40 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTransferWhileDown(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, false)
	err := l.Transfer(ProxyToDevice, 10)
	if !errors.Is(err, ErrDown) {
		t.Errorf("err = %v, want ErrDown", err)
	}
	if s := l.Stats(); s.MessagesDown != 0 {
		t.Error("failed transfer was accounted")
	}
}

func TestStateChangeNotifications(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, true)
	var changes []bool
	l.OnChange(func(up bool) { changes = append(changes, up) })
	l.SetUp(true) // no-op
	l.SetUp(false)
	l.SetUp(false) // no-op
	l.SetUp(true)
	if len(changes) != 2 || changes[0] != false || changes[1] != true {
		t.Errorf("changes = %v", changes)
	}
	if l.Stats().Transitions != 2 {
		t.Errorf("Transitions = %d", l.Stats().Transitions)
	}
}

func TestDowntimeAccounting(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, true)
	v.Advance(time.Hour)
	l.SetUp(false)
	v.Advance(30 * time.Minute)
	if got := l.Stats().Downtime; got != 30*time.Minute {
		t.Errorf("Downtime mid-outage = %v", got)
	}
	v.Advance(30 * time.Minute)
	l.SetUp(true)
	v.Advance(5 * time.Hour)
	if got := l.Stats().Downtime; got != time.Hour {
		t.Errorf("Downtime = %v, want 1h", got)
	}
}

func TestDowntimeStartingDown(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, false)
	v.Advance(time.Minute)
	if got := l.Stats().Downtime; got != time.Minute {
		t.Errorf("Downtime = %v, want 1m", got)
	}
}

func TestDrive(t *testing.T) {
	v := simtime.NewVirtual(t0)
	l := New(v, true)
	outages := []dist.Interval{
		{Start: time.Hour, End: 2 * time.Hour},
		{Start: 3 * time.Hour, End: 3*time.Hour + 30*time.Minute},
	}
	Drive(v, l, outages)

	probe := func(at time.Duration, wantUp bool) {
		v.RunUntil(t0.Add(at))
		if l.Up() != wantUp {
			t.Errorf("at %v: Up = %v, want %v", at, l.Up(), wantUp)
		}
	}
	probe(30*time.Minute, true)
	probe(90*time.Minute, false)
	probe(150*time.Minute, true)
	probe(3*time.Hour+10*time.Minute, false)
	probe(4*time.Hour, true)
	if got := l.Stats().Downtime; got != 90*time.Minute {
		t.Errorf("Downtime = %v, want 90m", got)
	}
	if got := l.Stats().Transitions; got != 4 {
		t.Errorf("Transitions = %d, want 4", got)
	}
}

func TestDirectionString(t *testing.T) {
	if ProxyToDevice.String() != "down" || DeviceToProxy.String() != "up" {
		t.Error("direction names wrong")
	}
	if Direction(5).String() != "direction(5)" {
		t.Error("unknown direction name wrong")
	}
}
