package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMovingAverageBasics(t *testing.T) {
	m := NewMovingAverage(3)
	if _, ok := m.Mean(); ok {
		t.Error("empty average reported a mean")
	}
	if got := m.MeanOr(7); got != 7 {
		t.Errorf("MeanOr on empty = %v, want fallback 7", got)
	}
	m.Add(2)
	if mean, ok := m.Mean(); !ok || mean != 2 {
		t.Errorf("Mean after one sample = %v, %v", mean, ok)
	}
	m.Add(4)
	m.Add(6)
	if !m.Full() {
		t.Error("window should be full")
	}
	if mean, _ := m.Mean(); mean != 4 {
		t.Errorf("Mean = %v, want 4", mean)
	}
	m.Add(8) // evicts 2
	if mean, _ := m.Mean(); mean != 6 {
		t.Errorf("Mean after eviction = %v, want 6", mean)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	m.Reset()
	if m.Count() != 0 || m.Full() {
		t.Error("Reset did not clear")
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMovingAverage(0) did not panic")
		}
	}()
	NewMovingAverage(0)
}

// TestMovingAverageMatchesNaive cross-checks the ring-buffer implementation
// against a naive windowed mean.
func TestMovingAverageMatchesNaive(t *testing.T) {
	f := func(samples []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%10) + 1
		m := NewMovingAverage(size)
		for i, v := range samples {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				v = float64(i)
			}
			m.Add(v)
			lo := i + 1 - size
			if lo < 0 {
				lo = 0
			}
			want := 0.0
			cnt := 0
			for j := lo; j <= i; j++ {
				vv := samples[j]
				if math.IsNaN(vv) || math.IsInf(vv, 0) || math.Abs(vv) > 1e9 {
					vv = float64(j)
				}
				want += vv
				cnt++
			}
			want /= float64(cnt)
			got, ok := m.Mean()
			if !ok || math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIntervalAverage(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ia := NewIntervalAverage(4)
	if _, ok := ia.Mean(); ok {
		t.Error("empty interval average reported a mean")
	}
	ia.Observe(base)
	if _, ok := ia.Mean(); ok {
		t.Error("single observation reported a mean")
	}
	if got := ia.MeanOr(time.Minute); got != time.Minute {
		t.Errorf("MeanOr fallback = %v", got)
	}
	ia.Observe(base.Add(10 * time.Second))
	ia.Observe(base.Add(30 * time.Second))
	d, ok := ia.Mean()
	if !ok || d != 15*time.Second {
		t.Errorf("Mean = %v, %v; want 15s", d, ok)
	}
	if ia.Count() != 2 {
		t.Errorf("Count = %d, want 2", ia.Count())
	}
}

func TestIntervalAverageOutOfOrder(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ia := NewIntervalAverage(4)
	ia.Observe(base.Add(time.Minute))
	ia.Observe(base) // earlier than last: counts as zero interval
	d, ok := ia.Mean()
	if !ok || d != 0 {
		t.Errorf("Mean = %v, %v; want 0s", d, ok)
	}
	ia.Observe(base.Add(2 * time.Minute)) // 1m after the retained max
	d, _ = ia.Mean()
	if d != 30*time.Second {
		t.Errorf("Mean = %v, want 30s", d)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Error("empty EWMA reported a value")
	}
	e.Add(10)
	if v, ok := e.Value(); !ok || v != 10 {
		t.Errorf("Value = %v, %v", v, ok)
	}
	e.Add(20)
	if v, _ := e.Value(); v != 15 {
		t.Errorf("Value = %v, want 15", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewEWMA(0) did not panic")
		}
	}()
	NewEWMA(0)
}

func TestRunning(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if math.Abs(r.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	var empty Running
	if empty.Variance() != 0 || empty.StdDev() != 0 || empty.Mean() != 0 {
		t.Error("empty Running must report zeros")
	}
}

// TestRunningMatchesNaive cross-checks Welford against two-pass formulas.
func TestRunningMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, v := range raw {
			r.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(r.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(r.Variance()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	if _, ok := s.Quantile(0.5); ok {
		t.Error("empty sample returned a quantile")
	}
	if _, ok := s.Mean(); ok {
		t.Error("empty sample returned a mean")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		got, ok := s.Quantile(tt.q)
		if !ok || math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if mean, _ := s.Mean(); mean != 3 {
		t.Errorf("Mean = %v, want 3", mean)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	// Interpolation between ranks.
	var s2 Sample
	s2.Add(0)
	s2.Add(10)
	if got, _ := s2.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d, %d; want 1, 2", under, over)
	}
	want := []int{2, 1, 0, 0, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Bucket(%d) = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Bucket(0) != 2 {
		t.Errorf("Bucket(0) = %d", h.Bucket(0))
	}

	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

// TestHistogramEdgeRounding: values infinitesimally below hi must not panic
// or escape the last bucket.
func TestHistogramEdgeRounding(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Nextafter(1, 0))
	if h.Bucket(2) != 1 {
		t.Errorf("upper-edge value landed in %v", h.Buckets())
	}
}
