// Package stats provides the small online statistics used by the proxy
// algorithm (windowed moving averages over read sizes and inter-read
// intervals, per the paper's moving_average() and
// moving_average_difference() routines) and by the experiment harness
// (running mean/variance, histograms, quantiles).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// MovingAverage is a fixed-window moving average over float64 samples.
// The zero value is not usable; construct with NewMovingAverage.
type MovingAverage struct {
	window []float64
	head   int
	count  int
	sum    float64
}

// NewMovingAverage returns a moving average over the last size samples.
// It panics if size is not positive (a programming error).
func NewMovingAverage(size int) *MovingAverage {
	if size <= 0 {
		panic(fmt.Sprintf("stats: non-positive window %d", size))
	}
	return &MovingAverage{window: make([]float64, size)}
}

// Add records a sample, evicting the oldest when the window is full.
func (m *MovingAverage) Add(v float64) {
	if m.count == len(m.window) {
		m.sum -= m.window[m.head]
	} else {
		m.count++
	}
	m.window[m.head] = v
	m.sum += v
	m.head = (m.head + 1) % len(m.window)
}

// Mean returns the average of the retained samples, or 0 with ok=false when
// no samples have been recorded.
func (m *MovingAverage) Mean() (mean float64, ok bool) {
	if m.count == 0 {
		return 0, false
	}
	return m.sum / float64(m.count), true
}

// MeanOr returns the mean, or fallback when no samples have been recorded.
func (m *MovingAverage) MeanOr(fallback float64) float64 {
	if mean, ok := m.Mean(); ok {
		return mean
	}
	return fallback
}

// Count returns the number of retained samples.
func (m *MovingAverage) Count() int { return m.count }

// Full reports whether the window has been filled at least once.
func (m *MovingAverage) Full() bool { return m.count == len(m.window) }

// Reset discards all samples.
func (m *MovingAverage) Reset() {
	m.head, m.count, m.sum = 0, 0, 0
	for i := range m.window {
		m.window[i] = 0
	}
}

// Size returns the configured window size.
func (m *MovingAverage) Size() int { return len(m.window) }

// Samples returns the retained samples, oldest first. The slice is a copy;
// feeding it back through RestoreMovingAverage reproduces the estimator
// exactly, which is how the proxy's tuner state survives hibernation.
func (m *MovingAverage) Samples() []float64 {
	out := make([]float64, 0, m.count)
	if m.count < len(m.window) {
		// The window never wrapped: samples occupy [0, count).
		return append(out, m.window[:m.count]...)
	}
	out = append(out, m.window[m.head:]...)
	return append(out, m.window[:m.head]...)
}

// RestoreMovingAverage rebuilds a moving average from a Samples() dump.
// Samples beyond the window size contribute as if Added in order (the
// oldest overflow is evicted), so a dump from a smaller window restores
// losslessly into an equal-sized one.
func RestoreMovingAverage(size int, samples []float64) *MovingAverage {
	m := NewMovingAverage(size)
	for _, v := range samples {
		m.Add(v)
	}
	return m
}

// IntervalAverage computes the moving average of differences between
// successive timestamps — the proxy uses it to estimate the time between
// user reads (the pseudo-code's moving_average_difference(topic.old_times)).
type IntervalAverage struct {
	diffs   *MovingAverage
	last    time.Time
	hasLast bool
}

// NewIntervalAverage averages the last size inter-observation gaps.
func NewIntervalAverage(size int) *IntervalAverage {
	return &IntervalAverage{diffs: NewMovingAverage(size)}
}

// Observe records a timestamp. Out-of-order or duplicate timestamps
// contribute a zero-length interval rather than a negative one.
func (ia *IntervalAverage) Observe(t time.Time) {
	if ia.hasLast {
		d := t.Sub(ia.last)
		if d < 0 {
			d = 0
		}
		ia.diffs.Add(d.Seconds())
	}
	if !ia.hasLast || t.After(ia.last) {
		ia.last = t
	}
	ia.hasLast = true
}

// Mean returns the average interval, or ok=false before two observations.
func (ia *IntervalAverage) Mean() (d time.Duration, ok bool) {
	mean, ok := ia.diffs.Mean()
	if !ok {
		return 0, false
	}
	return time.Duration(mean * float64(time.Second)), true
}

// MeanOr returns the average interval or fallback before two observations.
func (ia *IntervalAverage) MeanOr(fallback time.Duration) time.Duration {
	if d, ok := ia.Mean(); ok {
		return d
	}
	return fallback
}

// Count returns the number of retained intervals.
func (ia *IntervalAverage) Count() int { return ia.diffs.Count() }

// Export returns the estimator's durable state: the window size, the
// retained inter-observation gaps (oldest first, in seconds), and the last
// observed timestamp. hasLast distinguishes "never observed" from a zero
// timestamp.
func (ia *IntervalAverage) Export() (size int, diffs []float64, last time.Time, hasLast bool) {
	return ia.diffs.Size(), ia.diffs.Samples(), ia.last, ia.hasLast
}

// RestoreIntervalAverage rebuilds an interval average from an Export()
// dump.
func RestoreIntervalAverage(size int, diffs []float64, last time.Time, hasLast bool) *IntervalAverage {
	ia := NewIntervalAverage(size)
	ia.diffs = RestoreMovingAverage(size, diffs)
	ia.last = last
	ia.hasLast = hasLast
	return ia
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v outside (0, 1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds in a sample.
func (e *EWMA) Add(v float64) {
	if !e.init {
		e.value, e.init = v, true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current estimate, or 0 with ok=false before any sample.
func (e *EWMA) Value() (float64, bool) { return e.value, e.init }

// Running accumulates mean and variance with Welford's algorithm.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records a sample.
func (r *Running) Add(v float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	delta := v - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (v - r.mean)
}

// N returns the sample count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample (0 for an empty accumulator).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 for an empty accumulator).
func (r *Running) Max() float64 { return r.max }

// Sample collects raw values for quantile reporting in experiments.
type Sample struct {
	values []float64
	sorted bool
}

// Add records a value.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of recorded values.
func (s *Sample) N() int { return len(s.values) }

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// between closest ranks, or 0 with ok=false when empty.
func (s *Sample) Quantile(q float64) (float64, bool) {
	if len(s.values) == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo], true
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac, true
}

// Mean returns the arithmetic mean, or 0 with ok=false when empty.
func (s *Sample) Mean() (float64, bool) {
	if len(s.values) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values)), true
}

// Histogram counts samples into fixed-width buckets over [lo, hi); samples
// outside the range land in the under/overflow counters.
type Histogram struct {
	lo, hi    float64
	buckets   []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: non-positive bucket count %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: empty range [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}, nil
}

// Add counts a sample.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.lo:
		h.underflow++
	case v >= h.hi:
		h.overflow++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of samples counted, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []int {
	out := make([]int, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.underflow, h.overflow }
