package host

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/wire"
)

// hostBenchBatch is the publish pipelining width: the burst size the
// host datapath is designed around.
const hostBenchBatch = 64

// hostBenchPublishers is how many pipelined publish streams stay in
// flight, each on its own broker connection; one stop-and-wait stream
// would leave the pipeline idle for a round-trip between bursts.
const hostBenchPublishers = 8

// hostBenchDrainEvery bounds each device's local store during the run:
// once a device has accumulated this many deliveries the driver issues a
// read, consuming the local queue inside the timed region.
const hostBenchDrainEvery = 1024

// BenchmarkHostForwardPath measures the multi-tenant pipeline: publisher →
// broker server → host (sharded sessions, multiplexed upstream, wheel
// timers) → device clients. Notifications round-robin across per-device
// topics, so each op is one end-to-end delivery; the run only completes
// once every device holds everything published to its topic. Publishes
// ride the pipelined batch path in bursts of hostBenchBatch, with
// notification objects and IDs prepared outside the timed region so the
// measured allocations are the datapath's own.
func BenchmarkHostForwardPath(b *testing.B) {
	const devices = 8

	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := wire.NewBrokerServer(pubsub.NewBroker("bench-broker"), nil)
	go func() { _ = bs.Serve(bl) }()
	defer bs.Close()

	h, err := New(Options{BrokerAddr: bl.Addr().String(), Name: "bench-host"})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = h.Serve(hl) }()

	devs := make([]*wire.DeviceClient, devices)
	topics := make([]string, devices)
	for i := range devs {
		topics[i] = fmt.Sprintf("bench/online-%d", i)
		dev, err := wire.DialProxy(hl.Addr().String(), fmt.Sprintf("bench-dev-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = dev.Close() }()
		if err := dev.Subscribe(topics[i], wire.TopicPolicy{Mode: "on-line"}); err != nil {
			b.Fatal(err)
		}
		devs[i] = dev
	}

	pubs := make([]*wire.BrokerClient, hostBenchPublishers)
	for w := range pubs {
		pub, err := wire.DialBroker(bl.Addr().String(), "bench-pub-"+strconv.Itoa(w))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = pub.Close() }()
		for _, t := range topics {
			if err := pub.Advertise(t, "bench-pub"); err != nil {
				b.Fatal(err)
			}
		}
		pubs[w] = pub
	}

	base := time.Unix(1700000000, 0).UTC()
	ids := make([]msg.ID, b.N)
	for i := range ids {
		ids[i] = msg.ID("fwd-" + strconv.FormatInt(int64(i), 10))
	}
	noteSets := make([][]*msg.Notification, hostBenchPublishers)
	for w := range noteSets {
		notes := make([]*msg.Notification, hostBenchBatch)
		for i := range notes {
			notes[i] = &msg.Notification{Rank: 3, Published: base}
		}
		noteSets[w] = notes
	}
	chunk := (b.N + hostBenchPublishers - 1) / hostBenchPublishers

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var benchErr atomic.Value
	for w := 0; w < hostBenchPublishers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > b.N {
			hi = b.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(pub *wire.BrokerClient, notes []*msg.Notification, lo, hi int) {
			defer wg.Done()
			for sent := lo; sent < hi; {
				k := hostBenchBatch
				if left := hi - sent; k > left {
					k = left
				}
				for j := 0; j < k; j++ {
					notes[j].ID = ids[sent+j]
					notes[j].Topic = topics[(sent+j)%devices]
				}
				for _, err := range pub.PublishBatch(notes[:k]) {
					if err != nil {
						benchErr.Store(err)
						return
					}
				}
				sent += k
			}
		}(pubs[w], noteSets[w], lo, hi)
	}
	// Per-topic delivery targets follow from the round-robin assignment.
	wants := make([]int, devices)
	for slot := range wants {
		wants[slot] = b.N / devices
		if slot < b.N%devices {
			wants[slot]++
		}
	}
	// Drain each device store as deliveries accumulate and wait for every
	// published notification to land.
	deadline := time.Now().Add(30 * time.Second)
	lastDrain := make([]int, devices)
	for {
		if err, ok := benchErr.Load().(error); ok {
			b.Fatal(err)
		}
		done := true
		for i, dev := range devs {
			received, _, _ := dev.Stats()
			if received-lastDrain[i] >= hostBenchDrainEvery {
				lastDrain[i] = received
				if _, err := dev.Read(topics[i], 0); err != nil {
					b.Fatal(err)
				}
			}
			if received < wants[i] {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, dev := range devs {
				received, _, _ := dev.Stats()
				if received < wants[i] {
					b.Fatalf("device %d received %d of %d", i, received, wants[i])
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	b.StopTimer()
}

// BenchmarkHostBroadcast measures the one-to-many host path: every device
// session subscribes to the SAME topic, so each published notification
// fans out to all of them through dispatchPush's copy-on-write broadcast
// split (shared payload bytes, per-session envelopes) and the downstream
// shared-frame egress. Each op is one published notification = broadcastDevices
// deliveries; ns/delivery divides accordingly.
func BenchmarkHostBroadcast(b *testing.B) {
	const broadcastDevices = 64
	const topic = "bench/broadcast"

	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := wire.NewBrokerServer(pubsub.NewBroker("bench-broker"), nil)
	go func() { _ = bs.Serve(bl) }()
	defer bs.Close()

	h, err := New(Options{BrokerAddr: bl.Addr().String(), Name: "bench-host"})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = h.Serve(hl) }()

	devs := make([]*wire.DeviceClient, broadcastDevices)
	for i := range devs {
		dev, err := wire.DialProxy(hl.Addr().String(), fmt.Sprintf("bench-bdev-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = dev.Close() }()
		if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
			b.Fatal(err)
		}
		devs[i] = dev
	}

	pub, err := wire.DialBroker(bl.Addr().String(), "bench-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pub.Close() }()
	if err := pub.Advertise(topic, "bench-pub"); err != nil {
		b.Fatal(err)
	}

	base := time.Unix(1700000000, 0).UTC()
	ids := make([]msg.ID, b.N)
	for i := range ids {
		ids[i] = msg.ID("bc-" + strconv.FormatInt(int64(i), 10))
	}
	notes := make([]*msg.Notification, hostBenchBatch)
	for i := range notes {
		notes[i] = &msg.Notification{Topic: topic, Rank: 3, Published: base, Payload: make([]byte, 256)}
	}

	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan error, 1)
	go func() {
		for sent := 0; sent < b.N; {
			k := hostBenchBatch
			if left := b.N - sent; k > left {
				k = left
			}
			for j := 0; j < k; j++ {
				notes[j].ID = ids[sent+j]
			}
			for _, err := range pub.PublishBatch(notes[:k]) {
				if err != nil {
					done <- err
					return
				}
			}
			sent += k
		}
		done <- nil
	}()
	deadline := time.Now().Add(60 * time.Second)
	lastDrain := make([]int, broadcastDevices)
	for {
		select {
		case err := <-done:
			if err != nil {
				b.Fatal(err)
			}
			done = nil // publisher finished; keep waiting for deliveries
		default:
		}
		all := true
		for i, dev := range devs {
			received, _, _ := dev.Stats()
			if received-lastDrain[i] >= hostBenchDrainEvery {
				lastDrain[i] = received
				if _, err := dev.Read(topic, 0); err != nil {
					b.Fatal(err)
				}
			}
			if received < b.N {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			for i, dev := range devs {
				received, _, _ := dev.Stats()
				if received < b.N {
					b.Fatalf("device %d received %d of %d", i, received, b.N)
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*broadcastDevices), "ns/delivery")
}
