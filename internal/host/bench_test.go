package host

import (
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/wire"
)

// BenchmarkHostForwardPath measures the multi-tenant pipeline: publisher →
// broker server → host (sharded sessions, multiplexed upstream, wheel
// timers) → device clients. Notifications round-robin across per-device
// topics, so each op is one end-to-end delivery; the run only completes
// once every device holds everything published to its topic.
func BenchmarkHostForwardPath(b *testing.B) {
	const devices = 8

	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := wire.NewBrokerServer(pubsub.NewBroker("bench-broker"), nil)
	go func() { _ = bs.Serve(bl) }()
	defer bs.Close()

	h, err := New(Options{BrokerAddr: bl.Addr().String(), Name: "bench-host"})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = h.Serve(hl) }()

	devs := make([]*wire.DeviceClient, devices)
	topics := make([]string, devices)
	for i := range devs {
		topics[i] = fmt.Sprintf("bench/online-%d", i)
		dev, err := wire.DialProxy(hl.Addr().String(), fmt.Sprintf("bench-dev-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = dev.Close() }()
		if err := dev.Subscribe(topics[i], wire.TopicPolicy{Mode: "on-line"}); err != nil {
			b.Fatal(err)
		}
		devs[i] = dev
	}

	pub, err := wire.DialBroker(bl.Addr().String(), "bench-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pub.Close() }()
	for _, t := range topics {
		if err := pub.Advertise(t, ""); err != nil {
			b.Fatal(err)
		}
	}

	base := time.Unix(1700000000, 0).UTC()
	var ctr atomic.Int64
	var perTopic [devices]atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			slot := int(i) % devices
			perTopic[slot].Add(1)
			n := &msg.Notification{
				ID:        msg.ID("fwd-" + strconv.FormatInt(i, 10)),
				Topic:     topics[slot],
				Rank:      3,
				Published: base,
			}
			if err := pub.Publish(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for i, dev := range devs {
		want := int(perTopic[i].Load())
		for {
			received, _, _ := dev.Stats()
			if received >= want {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("device %d received %d of %d", i, received, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	b.StopTimer()
}
