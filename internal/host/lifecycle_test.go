package host

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/spool"
	"lasthop/internal/wire"
)

// hibOpts is the fast-cycling hibernation config the lifecycle tests use:
// sessions hibernate 50ms after a disconnect and group commits run every
// 10ms. Fsync is off — the tests simulate process death (Kill), which the
// page cache survives, not machine death.
func hibOpts(dir string) Options {
	return Options{
		Workers:          2,
		SpoolDir:         dir,
		HibernateAfter:   50 * time.Millisecond,
		SpoolCommitEvery: 10 * time.Millisecond,
		SpoolFsync:       spool.FsyncNever,
	}
}

func sessionInfoOf(h *Host, name string) (SessionInfo, bool) {
	for _, s := range h.Sessions() {
		if s.Name == name {
			return s, true
		}
	}
	return SessionInfo{}, false
}

// countSpoolRecords scans every worker spool under dir and counts records
// of one kind. Safe to call while the host is writing: a mid-append tail
// parses as torn and is skipped, so the count is momentarily low, never
// wrong — callers poll it upward.
func countSpoolRecords(t *testing.T, dir string, kind spool.Kind) int {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join(dir, "worker-*"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, d := range dirs {
		err := spool.ScanDir(d, 0, func(string, ...any) {}, func(_ spool.Loc, r spool.Record) error {
			if r.Kind == kind {
				n++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan %s: %v", d, err)
		}
	}
	return n
}

func publishSeq(t *testing.T, pub *wire.BrokerClient, topic, prefix string, from, to int) {
	t.Helper()
	if err := pub.Advertise(topic, ""); err != nil {
		t.Fatalf("advertise %s: %v", topic, err)
	}
	for i := from; i < to; i++ {
		n := &msg.Notification{
			ID: msg.ID(fmt.Sprintf("%s-%d", prefix, i)), Topic: topic,
			Rank: float64(1 + i), Published: time.Now(),
		}
		if err := pub.Publish(n); err != nil {
			t.Fatalf("publish %s-%d: %v", prefix, i, err)
		}
	}
}

// readAll drains the topic until the device has seen every wanted ID
// (duplicates tolerated — resume semantics are at-least-once) or the
// deadline passes.
func readAll(t *testing.T, dev *wire.DeviceClient, topic string, want []string) {
	t.Helper()
	got := make(map[string]bool)
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := 0
		for _, id := range want {
			if !got[id] {
				missing++
			}
		}
		if missing == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("still missing %d of %v, have %v", missing, want, got)
		}
		batch, err := dev.Read(topic, 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for _, n := range batch {
			got[string(n.ID)] = true
		}
		if len(batch) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestSessionHibernatesAndRehydrates is the lifecycle round trip: a
// disconnected session's queues move to the spool, its memory is dropped,
// arrivals while hibernated land as deltas, and the reconnect rebuilds the
// proxy with nothing missing.
func TestSessionHibernatesAndRehydrates(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	const topic = "hib/t"
	dev := tt.device("hib-dev")
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("hib-pub")
	publishSeq(t, pub, topic, "h", 0, 3)
	waitFor(t, "3 notifications resident", func() bool {
		st, ok := tt.host.SessionStats("hib-dev")
		return ok && st.Notifications >= 3
	})

	_ = dev.Close()
	waitFor(t, "session hibernated", func() bool {
		info, ok := sessionInfoOf(tt.host, "hib-dev")
		return ok && info.State == "hibernated"
	})
	ls := tt.host.Lifecycle()
	if ls.Hibernations != 1 || ls.Hibernated != 1 || ls.Resident != 0 {
		t.Fatalf("lifecycle after hibernate = %+v", ls)
	}
	if _, ok := tt.host.SessionStats("hib-dev"); ok {
		t.Fatal("SessionStats reported a hibernated session (would imply a resident proxy)")
	}

	// Arrivals while hibernated append deltas, no proxy involved.
	publishSeq(t, pub, topic, "h", 3, 5)
	waitFor(t, "2 deltas spooled", func() bool {
		return countSpoolRecords(t, dir, spool.KindDelta) >= 2
	})
	if got := tt.host.Lifecycle().Rehydrations; got != 0 {
		t.Fatalf("deltas forced %d rehydrations", got)
	}

	// Reconnect: hello rehydrates, the reasserted subscribe is a no-op,
	// and the read returns snapshot and delta content alike.
	dev2 := tt.device("hib-dev")
	if err := dev2.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session resident again", func() bool {
		info, ok := sessionInfoOf(tt.host, "hib-dev")
		return ok && info.State == "resident" && info.Connected
	})
	if got := tt.host.Lifecycle().Rehydrations; got != 1 {
		t.Fatalf("rehydrations = %d, want 1", got)
	}
	st, ok := tt.host.SessionStats("hib-dev")
	if !ok || st.Notifications < 5 {
		t.Fatalf("stats after rehydrate = %+v ok=%v, want ≥5 notifications", st, ok)
	}
	readAll(t, dev2, topic, []string{"h-0", "h-1", "h-2", "h-3", "h-4"})
}

// TestHelloDuringHibernateRace pins the snapshot-appended-but-uncommitted
// window: the commit interval is an hour, so a session that disconnects
// sits in "hibernating" indefinitely — snapshot on disk, memory intact.
// A hello in that window must flip it straight back to resident without a
// rehydration, and the eventual commit callback must see the reversal and
// not drop the live proxy.
func TestHelloDuringHibernateRace(t *testing.T) {
	dir := t.TempDir()
	opts := hibOpts(dir)
	opts.SpoolCommitEvery = time.Hour
	tt := newTopology(t, opts)
	const topic = "race/t"
	dev := tt.device("race-dev")
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("race-pub")
	publishSeq(t, pub, topic, "r", 0, 2)
	waitFor(t, "2 notifications resident", func() bool {
		st, ok := tt.host.SessionStats("race-dev")
		return ok && st.Notifications >= 2
	})

	_ = dev.Close()
	waitFor(t, "session hibernating (snapshot uncommitted)", func() bool {
		info, ok := sessionInfoOf(tt.host, "race-dev")
		return ok && info.State == "hibernating"
	})
	if n := countSpoolRecords(t, dir, spool.KindSnapshot); n != 1 {
		t.Fatalf("snapshots on disk = %d, want 1", n)
	}

	dev2 := tt.device("race-dev")
	waitFor(t, "hello reclaimed the session", func() bool {
		info, ok := sessionInfoOf(tt.host, "race-dev")
		return ok && info.State == "resident" && info.Connected
	})
	ls := tt.host.Lifecycle()
	if ls.Rehydrations != 0 {
		t.Fatalf("rehydrations = %d, want 0 (memory was never dropped)", ls.Rehydrations)
	}
	if ls.Hibernations != 0 {
		t.Fatalf("hibernations = %d, want 0 (the drop was aborted)", ls.Hibernations)
	}
	st, ok := tt.host.SessionStats("race-dev")
	if !ok || st.Notifications != 2 {
		t.Fatalf("stats after reclaim = %+v ok=%v", st, ok)
	}
	readAll(t, dev2, topic, []string{"r-0", "r-1"})
}

// TestRehydrateThenImmediateDisconnect cycles hibernate → rehydrate →
// instant disconnect → second hibernation: the freshly rebuilt proxy must
// arm a new countdown and spool again without losing anything.
func TestRehydrateThenImmediateDisconnect(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	const topic = "cycle/t"
	dev := tt.device("cycle-dev")
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("cycle-pub")
	publishSeq(t, pub, topic, "c", 0, 2)
	waitFor(t, "2 notifications resident", func() bool {
		st, ok := tt.host.SessionStats("cycle-dev")
		return ok && st.Notifications >= 2
	})
	_ = dev.Close()
	waitFor(t, "first hibernation", func() bool {
		return tt.host.Lifecycle().Hibernations == 1
	})

	// Reconnect (rehydrates) and drop the connection immediately, before
	// any read.
	dev2 := tt.device("cycle-dev")
	waitFor(t, "rehydrated", func() bool {
		info, ok := sessionInfoOf(tt.host, "cycle-dev")
		return ok && info.State == "resident"
	})
	_ = dev2.Close()
	waitFor(t, "second hibernation", func() bool {
		ls := tt.host.Lifecycle()
		return ls.Hibernations == 2 && ls.Hibernated == 1
	})

	dev3 := tt.device("cycle-dev")
	if err := dev3.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	readAll(t, dev3, topic, []string{"c-0", "c-1"})
	if got := tt.host.Lifecycle().Rehydrations; got != 2 {
		t.Fatalf("rehydrations = %d, want 2", got)
	}
}

// TestDoubleRehydrateTwoConnections races two connections helloing the
// same hibernated name: the wheel serializes the attaches, so exactly one
// rehydration runs and the second connection supersedes the first on the
// already-resident session.
func TestDoubleRehydrateTwoConnections(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	const topic = "dbl/t"
	dev := tt.device("dbl-dev")
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("dbl-pub")
	publishSeq(t, pub, topic, "d", 0, 2)
	waitFor(t, "2 notifications resident", func() bool {
		st, ok := tt.host.SessionStats("dbl-dev")
		return ok && st.Notifications >= 2
	})
	_ = dev.Close()
	waitFor(t, "hibernated", func() bool {
		info, ok := sessionInfoOf(tt.host, "dbl-dev")
		return ok && info.State == "hibernated"
	})

	// Two concurrent hellos for the same name.
	var wg sync.WaitGroup
	conns := make([]*wire.DeviceClient, 2)
	errs := make([]error, 2)
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conns[i], errs[i] = wire.DialProxy(tt.addr, "dbl-dev")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer conns[i].Close()
	}
	waitFor(t, "resident after the double hello", func() bool {
		info, ok := sessionInfoOf(tt.host, "dbl-dev")
		return ok && info.State == "resident"
	})
	if got := tt.host.Lifecycle().Rehydrations; got != 1 {
		t.Fatalf("rehydrations = %d, want exactly 1", got)
	}

	// One of the two won the session; the survivor can read everything.
	// (The loser's connection was superseded and closed by the host.)
	info, _ := sessionInfoOf(tt.host, "dbl-dev")
	if info.Connects != 3 { // initial + both racers
		t.Fatalf("connects = %d, want 3", info.Connects)
	}
	winner := conns[1]
	if err := winner.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
		// The loser errors here because its connection is closed; retry
		// with the other one.
		winner = conns[0]
		if err := winner.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
			t.Fatalf("neither racer can use the session: %v", err)
		}
	}
	readAll(t, winner, topic, []string{"d-0", "d-1"})
}

// TestKillRestartRecovery is the in-process chaos drill: hibernate a fleet,
// let deltas accumulate, SIGKILL-equivalent the host (Kill drops every fd
// without flushing), and bring up a fresh host — with a different worker
// count — on the same spool. Every session must come back as a directory
// entry, the multiplexed subscriptions must be re-established, and a full
// drain must see every notification published before and after the crash.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	const topic = "kill/t"
	names := []string{"kill-dev-0", "kill-dev-1", "kill-dev-2", "kill-dev-3"}
	for _, name := range names {
		dev := tt.device(name)
		if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
			t.Fatal(err)
		}
		_ = dev.Close()
	}
	waitFor(t, "all sessions hibernated", func() bool {
		ls := tt.host.Lifecycle()
		return ls.Hibernated == len(names)
	})

	// Publish into the hibernated fleet: every copy lands as a delta.
	pub := tt.publisher("kill-pub")
	publishSeq(t, pub, topic, "k", 0, 3)
	wantDeltas := 3 * len(names)
	waitFor(t, "deltas durable", func() bool {
		return countSpoolRecords(t, dir, spool.KindDelta) >= wantDeltas
	})

	tt.host.Kill()

	// Restart on the same spool with a different shard count: chains
	// recorded under worker-0/worker-1 must still resolve (Loc carries the
	// full path).
	opts := hibOpts(dir)
	opts.Workers = 3
	opts.BrokerAddr = tt.brokerAddr
	opts.Name = "test-host"
	h2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(h2.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = h2.Serve(lis) }()

	if got := len(h2.Sessions()); got != len(names) {
		t.Fatalf("recovered %d sessions, want %d", got, len(names))
	}
	for _, name := range names {
		info, ok := sessionInfoOf(h2, name)
		if !ok || info.State != "hibernated" {
			t.Fatalf("session %s after recovery: %+v ok=%v", name, info, ok)
		}
	}
	if refs := h2.TopicRefs(topic); refs != len(names) {
		t.Fatalf("TopicRefs after recovery = %d, want %d", refs, len(names))
	}
	if subs := tt.broker.Subscribers(topic); len(subs) != 1 || subs[0] != "test-host" {
		t.Fatalf("broker subscribers after recovery = %v", subs)
	}

	// Traffic published after the restart reaches the recovered sessions
	// through the re-established subscription.
	publishSeq(t, pub, topic, "after", 0, 1)
	waitFor(t, "post-restart delta fan-out", func() bool {
		return countSpoolRecords(t, dir, spool.KindDelta) >= wantDeltas+len(names)
	})

	// Drain: every device reconnects to the new host and must see every
	// pre-crash and post-crash notification. Zero loss, duplicates allowed.
	want := []string{"k-0", "k-1", "k-2", "after-0"}
	for _, name := range names {
		dev, err := wire.DialProxy(lis.Addr().String(), name)
		if err != nil {
			t.Fatalf("redial %s: %v", name, err)
		}
		if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}); err != nil {
			t.Fatalf("reassert %s: %v", name, err)
		}
		readAll(t, dev, topic, want)
		_ = dev.Close()
	}
	if ls := h2.Lifecycle(); ls.Rehydrations != int64(len(names)) || ls.RehydrateFailures != 0 {
		t.Fatalf("lifecycle after drain = %+v", ls)
	}
}

// TestKillRecoveryHonorsUnsubscribe pins the durability of topic
// membership changes against a stale spool chain: a session hibernates
// with two topics, reconnects, unsubscribes one, and the host is killed
// before any fresh snapshot supersedes the chain. Recovery must apply the
// membership correction — pre-fix it resurrected the unsubscribed topic
// from the stale snapshot meta, re-took a reference, and re-subscribed the
// host upstream, leaving a phantom subscription feeding traffic the device
// explicitly dropped.
func TestKillRecoveryHonorsUnsubscribe(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	const keep = "stale/keep"
	const dropped = "stale/drop"
	policy := wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}

	dev := tt.device("stale-dev")
	for _, topic := range []string{keep, dropped} {
		if err := dev.Subscribe(topic, policy); err != nil {
			t.Fatal(err)
		}
	}
	_ = dev.Close()
	waitFor(t, "session hibernated with both topics", func() bool {
		info, ok := sessionInfoOf(tt.host, "stale-dev")
		return ok && info.State == "hibernated"
	})

	// Reconnect and unsubscribe one topic. The session stays connected
	// afterwards, so no new snapshot is written: on disk, only the
	// membership delta contradicts the snapshot's topic list.
	dev2 := tt.device("stale-dev")
	waitFor(t, "session resident", func() bool {
		info, ok := sessionInfoOf(tt.host, "stale-dev")
		return ok && info.State == "resident" && info.Connected
	})
	if err := dev2.Unsubscribe(dropped); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "upstream drained", func() bool {
		return tt.host.TopicRefs(dropped) == 0 && len(tt.broker.Subscribers(dropped)) == 0
	})

	tt.host.Kill()
	opts := hibOpts(dir)
	opts.BrokerAddr = tt.brokerAddr
	opts.Name = "test-host"
	h2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(h2.Close)

	info, ok := sessionInfoOf(h2, "stale-dev")
	if !ok || info.State != "hibernated" {
		t.Fatalf("session after recovery: %+v ok=%v", info, ok)
	}
	if info.Topics != 1 {
		t.Fatalf("recovered session holds %d topics, want 1 (the unsubscribe was lost)", info.Topics)
	}
	if refs := h2.TopicRefs(keep); refs != 1 {
		t.Fatalf("TopicRefs(%s) = %d, want 1", keep, refs)
	}
	if refs := h2.TopicRefs(dropped); refs != 0 {
		t.Fatalf("TopicRefs(%s) = %d, want 0: recovery resurrected the unsubscribed topic", dropped, refs)
	}
	if subs := tt.broker.Subscribers(dropped); len(subs) != 0 {
		t.Fatalf("broker subscribers for %s = %v, want none (phantom upstream subscription)", dropped, subs)
	}
	if subs := tt.broker.Subscribers(keep); len(subs) != 1 {
		t.Fatalf("broker subscribers for %s = %v, want the host", keep, subs)
	}
}
