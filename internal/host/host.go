// Package host runs many last-hop proxies in one process: a multi-tenant
// proxy host. Where wire.ProxyServer dedicates a process (scheduler,
// upstream broker connection, listener) to a single device, Host shards
// device sessions across a small set of event-loop workers — each worker
// owns one hierarchical timing wheel (simtime.Wheel) that serializes every
// core.Proxy call of the sessions assigned to it — and multiplexes all
// upstream traffic over one ref-counted broker connection holding exactly
// one subscription per distinct topic, however many sessions share it.
//
// The paper's deployment model (§4) puts one proxy per mobile user at the
// edge; a realistic edge node serves thousands of users. The host is that
// node: per-session state stays the unmodified core.Proxy (Figure 7), and
// the host only changes where the proxies run and how they reach the
// broker.
package host

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/core"
	"lasthop/internal/flight"
	"lasthop/internal/msg"
	"lasthop/internal/obs"
	"lasthop/internal/simtime"
	"lasthop/internal/spool"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

// Options configures a Host.
type Options struct {
	// BrokerAddr is the upstream broker's address.
	BrokerAddr string
	// Name is the host's subscriber name at the broker; all multiplexed
	// subscriptions are held under it.
	Name string
	// Workers is the number of event-loop workers device sessions are
	// sharded across. Zero means GOMAXPROCS.
	Workers int
	// WheelTick is the timing-wheel resolution of each worker; proxy
	// timers (delays, expirations, quiet windows) fire at most ~two ticks
	// late. Zero means 10ms.
	WheelTick time.Duration
	// Upstream tunes the broker-facing client: enable AutoReconnect and
	// heartbeats there to survive broker restarts.
	Upstream wire.ClientOptions
	// DeviceReadTimeout bounds the silence tolerated on each device
	// connection (heartbeats count). Zero disables it.
	DeviceReadTimeout time.Duration
	// DeviceWriteTimeout bounds each push or response write to a device.
	// Zero disables it.
	DeviceWriteTimeout time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(string, ...any)
	// Metrics aggregates wire-level instrumentation for device
	// connections; it also propagates to the upstream client unless
	// Upstream.Metrics is set explicitly. Nil disables it.
	Metrics *wire.Metrics
	// Trace collects per-notification traces. On a multicast topic only
	// the first session's copy carries the context onward; the other legs
	// are untraced clones, so each sampled trace stays one linear
	// publisher → device timeline. Nil disables tracing.
	Trace *trace.Collector

	// SpoolDir enables session hibernation: each worker writes hibernated
	// session state into SpoolDir/worker-N, and New recovers every
	// session spooled by a previous run (any worker count). Empty
	// disables the lifecycle — sessions then stay fully resident forever,
	// as before.
	SpoolDir string
	// HibernateAfter is how long a session may sit disconnected before
	// its state is serialized to the spool and dropped from memory. Zero
	// means 1 minute. Ignored without SpoolDir.
	HibernateAfter time.Duration
	// SpoolSegmentBytes, SpoolMaxRecordBytes, and SpoolFsync pass through
	// to spool.Options (zero values take the spool defaults).
	SpoolSegmentBytes   int64
	SpoolMaxRecordBytes int
	SpoolFsync          spool.FsyncPolicy
	// SpoolCommitEvery is the group-commit interval: each worker's wheel
	// runs one spool Commit per interval, batching the fsync (policy
	// permitting) and the memory-drop callbacks of every hibernation in
	// that window. Zero means 100ms.
	SpoolCommitEvery time.Duration
	// SpoolCompactSegments triggers compaction when a worker's spool
	// exceeds this many segments (and has appended since the last
	// compaction). Zero means 8.
	SpoolCompactSegments int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.WheelTick <= 0 {
		o.WheelTick = 10 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Upstream.Logf == nil {
		o.Upstream.Logf = o.Logf
	}
	if o.Upstream.Metrics == nil {
		o.Upstream.Metrics = o.Metrics
	}
	if o.HibernateAfter <= 0 {
		o.HibernateAfter = time.Minute
	}
	if o.SpoolCommitEvery <= 0 {
		o.SpoolCommitEvery = 100 * time.Millisecond
	}
	if o.SpoolCompactSegments <= 0 {
		o.SpoolCompactSegments = 8
	}
	return o
}

// worker is one event loop: a live timing wheel whose callback mutex
// serializes the core.Proxy calls of every session assigned to it, plus
// (with hibernation enabled) the worker's private write-ahead spool.
type worker struct {
	id    int
	wheel *simtime.Wheel
	// spool is nil when hibernation is disabled. All appends and the
	// group-commit tick run wheel-serialized, so per-worker spool
	// mutations never interleave.
	spool *spool.Writer
	// lastCompactAppends is the spool's append count after the previous
	// compaction; compaction is skipped while it hasn't advanced.
	// Wheel-serialized.
	lastCompactAppends int64
	// heartbeat is the unix-nanosecond stamp of the wheel's last live
	// advance (set by the tick hook); the watchdog's worker probe reads
	// it. A wedged session callback stops the stamps.
	heartbeat atomic.Int64
}

// topicSub is the ref-counted state of one multiplexed upstream
// subscription: however many sessions subscribe to the topic, the broker
// sees exactly one subscriber (the host).
type topicSub struct {
	refs     int
	sessions map[*Session]struct{}
	// ready is closed once the upstream subscribe resolved; err (set
	// before the close, immutable after) tells latecomers whether it
	// failed. Sessions piggybacking on an in-flight subscribe wait on it
	// instead of racing a second upstream call.
	ready chan struct{}
	err   error
	// draining is non-nil once the last reference dropped and the upstream
	// unsubscribe is in flight; it closes after the unsubscribe resolved
	// and the entry left h.topics. New subscribers wait for it before
	// issuing their own upstream subscribe — otherwise the broker could
	// process the fresh Subscribe before the older Unsubscribe and leave
	// the host unsubscribed while sessions hold references.
	draining chan struct{}
}

// Host is the multi-tenant proxy server. It accepts any number of
// concurrent device connections; each hello routes the connection to its
// (possibly new) session, and sessions survive disconnects exactly like
// wire.ProxyServer's single session does — the proxy spools while the
// device is away and reconciles on resume.
type Host struct {
	name     string
	opts     Options
	logf     func(string, ...any)
	upstream *wire.BrokerClient
	workers  []*worker

	mu       sync.Mutex
	sessions map[string]*Session
	topics   map[string]*topicSub
	lis      net.Listener
	closed   bool
	wg       sync.WaitGroup

	// testHookUnsubscribeGap, when non-nil, runs between the last
	// reference dropping and the upstream Unsubscribe call; tests use it
	// to widen that window and pin the subscribe/unsubscribe ordering.
	testHookUnsubscribeGap func(topic string)

	// Lifecycle totals (atomics: bumped inside wheel callbacks, read by
	// the metric samplers and tests without entering the wheels).
	hibernations      atomic.Int64
	rehydrations      atomic.Int64
	rehydrateFailures atomic.Int64
	spooledDeltas     atomic.Int64
	// rehydrateHist observes rehydration latency once RegisterMetrics
	// installed it (atomic: registration may race live traffic).
	rehydrateHist atomic.Pointer[obs.Histogram]
}

// New dials the upstream broker and assembles a host with the given
// options. With SpoolDir set it also opens each worker's spool, recovers
// every session hibernated by a previous run (re-subscribing their topics
// upstream), and starts the group-commit ticks. Close releases the
// upstream connection and the workers.
func New(opts Options) (*Host, error) {
	opts = opts.withDefaults()
	h := &Host{
		name:     opts.Name,
		opts:     opts,
		logf:     opts.Logf,
		sessions: make(map[string]*Session),
		topics:   make(map[string]*topicSub),
	}
	h.workers = make([]*worker, opts.Workers)
	for i := range h.workers {
		w := &worker{id: i, wheel: simtime.NewWallWheel(opts.WheelTick)}
		w.heartbeat.Store(time.Now().UnixNano())
		wid := int32(i)
		w.wheel.SetTickHook(func(ticks, cascaded, busyNs int64) {
			w.heartbeat.Store(time.Now().UnixNano())
			if ticks > 0 {
				flight.Record(flight.SubWorker, flight.KindLoop, wid, busyNs, ticks)
			}
			if cascaded > 0 {
				flight.Record(flight.SubWheel, flight.KindCascade, wid, cascaded, 0)
			}
		})
		h.workers[i] = w
	}
	fail := func(err error) (*Host, error) {
		for _, w := range h.workers {
			w.wheel.Close()
			if w.spool != nil {
				w.spool.Abort()
			}
		}
		if h.upstream != nil {
			_ = h.upstream.Close()
		}
		return nil, fmt.Errorf("host: %w", err)
	}
	if opts.SpoolDir != "" {
		for _, w := range h.workers {
			sw, err := spool.Open(spool.Options{
				Dir:            filepath.Join(opts.SpoolDir, fmt.Sprintf("worker-%d", w.id)),
				SegmentBytes:   opts.SpoolSegmentBytes,
				MaxRecordBytes: opts.SpoolMaxRecordBytes,
				Fsync:          opts.SpoolFsync,
				Logf:           opts.Logf,
				Tag:            int32(w.id),
			})
			if err != nil {
				return fail(err)
			}
			w.spool = sw
		}
		if err := h.recoverSpooled(); err != nil {
			return fail(err)
		}
	}
	upstream, err := wire.DialBrokerOpts(opts.BrokerAddr, opts.Name, opts.Upstream)
	if err != nil {
		return fail(err)
	}
	upstream.OnPush(h.dispatchPush, h.dispatchRank)
	h.upstream = upstream
	// Recovered sessions' topics need their multiplexed upstream
	// subscriptions back before any publisher traffic can reach them.
	for _, topic := range h.UpstreamTopics() {
		if err := upstream.Subscribe(msg.Subscription{Topic: topic, Subscriber: h.name}); err != nil {
			return fail(fmt.Errorf("recover subscription %q: %w", topic, err))
		}
	}
	if opts.SpoolDir != "" {
		for _, w := range h.workers {
			h.scheduleCommit(w)
		}
	}
	return h, nil
}

// workerFor shards a session name onto a worker.
func (h *Host) workerFor(name string) *worker {
	f := fnv.New32a()
	_, _ = f.Write([]byte(name))
	return h.workers[int(f.Sum32())%len(h.workers)]
}

// dispatchPush fans one upstream notification out to every session
// subscribed to its topic. core.Proxy takes ownership of the pointer it
// is notified with (queues it, revises its rank in place), so concurrent
// sessions must not share one Notification — but they CAN share its
// payload bytes: a multi-target fan-out hands each session a
// copy-on-write envelope member from burst.Notes.Broadcast, aliasing the
// upstream note's payload instead of deep-copying it per session. The
// proxy only ever rewrites envelope fields (Rank), never Payload, and the
// group's last release recycles the upstream note itself.
func (h *Host) dispatchPush(n *msg.Notification) {
	h.mu.Lock()
	ts := h.topics[n.Topic]
	var targets []*Session
	if ts != nil {
		targets = make([]*Session, 0, len(ts.sessions))
		for s := range ts.sessions {
			targets = append(targets, s)
		}
	}
	h.mu.Unlock()
	if len(targets) == 0 {
		burst.Notes.Put(n) // nobody wants it; recycle the upstream copy
		return
	}
	h.opts.Trace.Hop(trace.KindProxyRecv, h.name, n, time.Now())
	// All members must be split off before the first delivery: Wheel.Run
	// executes the delivery inline, and a hibernated session recycles its
	// member immediately — splitting afterwards would read a reset note.
	one := [1]*msg.Notification{n}
	copies := one[:]
	if len(targets) > 1 {
		copies = burst.Notes.Broadcast(n, len(targets))
		for i := 1; i < len(copies); i++ {
			copies[i].Trace = nil // the trace timeline follows the first leg
		}
	}
	for i, s := range targets {
		m := copies[i]
		sess := s
		// Wheel.Run drops the callback once the wheel closed; the flag
		// lets this goroutine reclaim the note instead of leaking it at
		// shutdown.
		delivered := false
		sess.w.wheel.Run(func() {
			delivered = true
			sess.deliverNotify(m)
		})
		if !delivered {
			burst.Notes.Put(m)
		}
	}
}

// dispatchRank fans an upstream rank revision out to the topic's sessions.
func (h *Host) dispatchRank(u msg.RankUpdate) {
	h.mu.Lock()
	ts := h.topics[u.Topic]
	var targets []*Session
	if ts != nil {
		targets = make([]*Session, 0, len(ts.sessions))
		for s := range ts.sessions {
			targets = append(targets, s)
		}
	}
	h.mu.Unlock()
	for _, s := range targets {
		sess := s
		sess.w.wheel.Run(func() { sess.deliverRank(u) })
	}
}

// Serve accepts device connections until the listener closes. After an
// explicit Close it returns nil; otherwise it returns the accept error.
func (h *Host) Serve(lis net.Listener) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("host closed")
	}
	h.lis = lis
	h.mu.Unlock()
	for {
		c, err := lis.Accept()
		if err != nil {
			if h.isClosed() {
				return nil
			}
			return err
		}
		conn := wire.NewConn(c)
		conn.SetTimeouts(h.opts.DeviceReadTimeout, h.opts.DeviceWriteTimeout)
		conn.SetMetrics(h.opts.Metrics)
		// handleConn consumes every frame before the next Recv, so the
		// Frame can be reused. Devices send no notifications, so pooled
		// decode stays off.
		conn.SetRecvReuse(true)
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			h.handleConn(conn)
		}()
	}
}

func (h *Host) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Close stops the listener, every device connection, the upstream client,
// and the workers. Sessions are discarded. It is idempotent.
func (h *Host) Close() {
	h.mu.Lock()
	already := h.closed
	h.closed = true
	lis := h.lis
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	if already {
		return
	}
	if lis != nil {
		_ = lis.Close()
	}
	for _, s := range sessions {
		s.closeConn()
	}
	h.wg.Wait()
	if h.upstream != nil {
		_ = h.upstream.Close()
	}
	for _, w := range h.workers {
		w.wheel.Close()
		if w.spool != nil {
			// The wheel is closed, so no further appends are possible;
			// sync what is there and seal the segment.
			if err := w.spool.Close(); err != nil {
				h.logf("host: close spool %d: %v", w.id, err)
			}
		}
	}
	// The wheels are closed (Wheel.Close joins any running callback), so
	// the proxies are quiesced; recycle their pooled notifications.
	for _, s := range sessions {
		if p := s.proxy; p != nil {
			p.Shutdown()
		}
	}
}

// Kill simulates a process crash for the chaos tests: every file
// descriptor is dropped without syncing, pending group-commit callbacks
// are discarded, and nothing is flushed. State appended to the spool
// before Kill must survive — exactly what a SIGKILL leaves behind (the
// page cache outlives the process). Production shutdown is Close.
func (h *Host) Kill() {
	h.mu.Lock()
	already := h.closed
	h.closed = true
	lis := h.lis
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	if already {
		return
	}
	if lis != nil {
		_ = lis.Close()
	}
	for _, s := range sessions {
		s.closeConn()
	}
	// Wheels first: drops every pending commit tick and hibernation
	// callback, the way a dead process would.
	for _, w := range h.workers {
		w.wheel.Close()
		if w.spool != nil {
			w.spool.Abort()
		}
	}
	if h.upstream != nil {
		_ = h.upstream.Close()
	}
	h.wg.Wait()
	// A real crash loses the heap along with the pool, so recycling here
	// changes no durability semantics — it only keeps the process-local
	// pool accounting honest. The wheels are closed and joined, so the
	// proxies are quiesced.
	for _, s := range sessions {
		if p := s.proxy; p != nil {
			p.Shutdown()
		}
	}
}

// handleConn serves one device connection: the hello routes it to its
// session; subsequent frames drive that session's proxy.
func (h *Host) handleConn(conn *wire.Conn) {
	var sess *Session
	defer func() {
		if sess != nil {
			sess.detach(conn)
		}
		_ = conn.Close()
	}()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		if sess == nil && f.Type != wire.TypeHello && f.Type != wire.TypePing {
			h.respond(conn, wire.Err(f, errors.New("hello required before other frames")))
			continue
		}
		switch f.Type {
		case wire.TypeHello:
			s, err := h.attach(conn, f)
			if err != nil {
				h.respond(conn, wire.Err(f, err))
				return
			}
			// A repeated hello that renames the connection moves it to
			// another session; release the old one first or it would keep
			// believing it owns this connection (network up, never spooling)
			// and the deferred detach on disconnect would miss it.
			if sess != nil && sess != s {
				sess.detach(conn)
			}
			sess = s
			ok := wire.OK(f)
			ok.Caps = wire.LocalCaps()
			h.respond(conn, ok)
		case wire.TypePing:
			h.respond(conn, &wire.Frame{Type: wire.TypePong, Re: f.Seq})
		case wire.TypeSubscribe:
			h.respondErr(conn, f, h.subscribe(sess, f))
		case wire.TypeUnsubscribe:
			h.respondErr(conn, f, h.unsubscribe(sess, f.Topic))
		case wire.TypeResume:
			h.respondErr(conn, f, sess.resume(f))
		case wire.TypeRead:
			if f.Read == nil {
				h.respond(conn, wire.Err(f, errors.New("read frame without request")))
				continue
			}
			h.respondErr(conn, f, sess.read(*f.Read))
		default:
			h.respond(conn, wire.Err(f, fmt.Errorf("unsupported frame type %q", f.Type)))
		}
	}
}

// attach routes a connection to its session, creating the session on first
// contact. A session that already has a live connection is superseded: the
// stale connection is closed, exactly as a reconnecting device expects.
func (h *Host) attach(conn *wire.Conn, hello *wire.Frame) (*Session, error) {
	name := hello.Name
	if name == "" {
		name = conn.RemoteAddr()
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("host closed")
	}
	s := h.sessions[name]
	if s == nil {
		s = newSession(h, name, h.workerFor(name))
		h.sessions[name] = s
	}
	h.mu.Unlock()
	s.attach(conn, wire.HasCap(hello.Caps, wire.CapPushBatch), wire.HasCap(hello.Caps, wire.CapTrace))
	return s, nil
}

// subscribe adds the topic to the session's proxy and takes one reference
// on the multiplexed upstream subscription, subscribing at the broker only
// for the first session on the topic.
func (h *Host) subscribe(sess *Session, f *wire.Frame) error {
	if f.Topic == "" {
		return errors.New("subscribe frame without topic")
	}
	var pol wire.TopicPolicy
	if f.TopicPolicy != nil {
		pol = *f.TopicPolicy
	}
	cfg, err := pol.ToConfig(f.Topic)
	if err != nil {
		return err
	}
	// Reasserting a topic on reconnect is idempotent; the session keeps
	// its spooled state and its single upstream reference. The exception
	// is a session that restarted empty after an unreadable snapshot: its
	// proxy lost the topic while the reference survived, so the reassert
	// re-adds the config without touching the subscription table.
	if sess.hasTopic(f.Topic) {
		var addErr error
		sess.w.wheel.Run(func() {
			if sess.proxy == nil {
				return
			}
			for _, t := range sess.proxy.Topics() {
				if t == f.Topic {
					return
				}
			}
			addErr = sess.proxy.AddTopic(cfg)
		})
		return addErr
	}
	var addErr error
	sess.w.wheel.Run(func() {
		if sess.proxy == nil {
			// Only a connection superseded by a reconnect can race the
			// session into hibernation; its device must hello again.
			addErr = errNotResident
			return
		}
		addErr = sess.proxy.AddTopic(cfg)
	})
	if addErr != nil {
		return addErr
	}

	h.mu.Lock()
	ts := h.topics[f.Topic]
	// A draining entry still owns the broker subscription until its
	// unsubscribe resolves; wait it out and re-check rather than racing a
	// fresh Subscribe past the in-flight Unsubscribe.
	for ts != nil && ts.draining != nil {
		drained := ts.draining
		h.mu.Unlock()
		<-drained
		h.mu.Lock()
		ts = h.topics[f.Topic]
	}
	first := ts == nil
	if first {
		ts = &topicSub{sessions: make(map[*Session]struct{}), ready: make(chan struct{})}
		h.topics[f.Topic] = ts
	}
	ts.refs++
	refs := ts.refs
	ts.sessions[sess] = struct{}{}
	h.mu.Unlock()
	flight.Record(flight.SubMux, flight.KindSubscribe, -1, flight.TopicHash(f.Topic), int64(refs))

	if first {
		// The host subscribes with no volume options: every per-session
		// limit (threshold, max, quiet windows…) is enforced by that
		// session's core.Proxy, so the shared subscription must deliver
		// the superset.
		err = h.upstream.Subscribe(msg.Subscription{Topic: f.Topic, Subscriber: h.name})
		h.mu.Lock()
		ts.err = err
		close(ts.ready)
		if err != nil {
			delete(h.topics, f.Topic)
		}
		h.mu.Unlock()
	} else {
		<-ts.ready
		err = ts.err
	}
	if err != nil {
		h.dropRef(sess, f.Topic, ts)
		sess.w.wheel.Run(func() {
			if sess.proxy == nil {
				return
			}
			if rerr := sess.proxy.RemoveTopic(f.Topic); rerr != nil {
				h.logf("host: rollback topic %q: %v", f.Topic, rerr)
			}
		})
		return err
	}
	sess.addTopic(f.Topic)
	// A session re-subscribing over an existing spool chain must correct the
	// chain's membership, or a crash before the next snapshot would recover
	// it without this topic.
	sess.w.wheel.Run(func() { sess.spoolMembership(msg.SpoolDelta{Subscribe: f.Topic}) })
	return nil
}

// dropRef releases one session's reference on a topic subscription and
// reports nothing; the caller decides about the upstream unsubscribe via
// unsubscribe(). Used on subscribe rollback, where the upstream sub either
// failed (nothing to release) or is shared (refs only).
func (h *Host) dropRef(sess *Session, topic string, ts *topicSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts.refs--
	delete(ts.sessions, sess)
	if ts.refs <= 0 && h.topics[topic] == ts {
		delete(h.topics, topic)
	}
}

// unsubscribe removes the topic from the session's proxy and releases its
// reference; the last reference drops the broker subscription. It tolerates
// a session that hibernated under it (the proxy's copy of the topic then
// lives in the spool chain, corrected by a membership delta instead), so a
// ghost connection superseded mid-churn can never crash the host or leak
// the reference.
func (h *Host) unsubscribe(sess *Session, topic string) error {
	if topic == "" {
		return errors.New("unsubscribe frame without topic")
	}
	var remErr error
	sess.w.wheel.Run(func() {
		switch {
		case sess.proxy != nil:
			remErr = sess.proxy.RemoveTopic(topic)
		case !sess.hasTopic(topic):
			remErr = fmt.Errorf("unknown topic %q", topic)
		}
		if remErr == nil {
			sess.spoolMembership(msg.SpoolDelta{Unsubscribe: topic})
		}
	})
	if remErr != nil {
		return remErr
	}
	sess.removeTopic(topic)
	h.mu.Lock()
	ts := h.topics[topic]
	var drained chan struct{}
	if ts != nil {
		if _, held := ts.sessions[sess]; held {
			ts.refs--
			flight.Record(flight.SubMux, flight.KindUnsubscribe, -1, flight.TopicHash(topic), int64(ts.refs))
			delete(ts.sessions, sess)
			if ts.refs <= 0 {
				// Last reference: keep the entry in h.topics, marked
				// draining, until the upstream unsubscribe resolves, so a
				// concurrent new subscriber serializes behind it instead of
				// sending a Subscribe the broker may process first.
				drained = make(chan struct{})
				ts.draining = drained
			}
		}
	}
	h.mu.Unlock()
	if drained == nil {
		return nil
	}
	if h.testHookUnsubscribeGap != nil {
		h.testHookUnsubscribeGap(topic)
	}
	err := h.upstream.Unsubscribe(topic)
	h.mu.Lock()
	if h.topics[topic] == ts {
		delete(h.topics, topic)
	}
	h.mu.Unlock()
	close(drained)
	flight.Record(flight.SubMux, flight.KindDrain, -1, flight.TopicHash(topic), 0)
	return err
}

func (h *Host) respond(conn *wire.Conn, f *wire.Frame) {
	if err := conn.SendRelease(f); err != nil {
		h.logf("host: send response: %v", err)
	}
}

func (h *Host) respondErr(conn *wire.Conn, req *wire.Frame, err error) {
	if err != nil {
		h.respond(conn, wire.Err(req, err))
		return
	}
	h.respond(conn, wire.OK(req))
}

// TopicRefs reports how many sessions hold a reference on the topic's
// multiplexed upstream subscription (0 when the host is not subscribed).
func (h *Host) TopicRefs(topic string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts := h.topics[topic]
	if ts == nil {
		return 0
	}
	return ts.refs
}

// UpstreamTopics lists the topics the host currently holds one broker
// subscription each for.
func (h *Host) UpstreamTopics() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.topics))
	for t := range h.topics {
		out = append(out, t)
	}
	return out
}

// SessionInfo is a snapshot of one device session for tooling and tests.
type SessionInfo struct {
	Name      string
	Worker    int
	Connected bool
	State     string // resident | hibernating | hibernated
	Connects  int
	Resumes   int
	Topics    int
}

// Sessions returns a snapshot of every session.
func (h *Host) Sessions() []SessionInfo {
	h.mu.Lock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.info())
	}
	return out
}

// SessionStats returns the core counters of one session's proxy. It
// reports false for unknown names and for hibernated sessions — stats must
// never force a rehydration.
func (h *Host) SessionStats(name string) (core.Stats, bool) {
	h.mu.Lock()
	s := h.sessions[name]
	h.mu.Unlock()
	if s == nil {
		return core.Stats{}, false
	}
	var (
		st core.Stats
		ok bool
	)
	s.w.wheel.Run(func() {
		if s.proxy != nil {
			st = s.proxy.Stats()
			ok = true
		}
	})
	return st, ok
}

// SessionSnapshot returns one topic snapshot of one session's proxy.
func (h *Host) SessionSnapshot(name, topic string) (core.TopicSnapshot, bool) {
	h.mu.Lock()
	s := h.sessions[name]
	h.mu.Unlock()
	if s == nil {
		return core.TopicSnapshot{}, false
	}
	var (
		snap core.TopicSnapshot
		ok   bool
	)
	s.w.wheel.Run(func() {
		if s.proxy != nil {
			snap, ok = s.proxy.Snapshot(topic)
		}
	})
	return snap, ok
}

// LifecycleStats reports the host's hibernation totals since start.
type LifecycleStats struct {
	Hibernations      int64
	Rehydrations      int64
	RehydrateFailures int64
	// SpooledDeltas counts delta records appended for non-resident
	// sessions since start; phased drills use it to know when a publish
	// wave is fully on disk.
	SpooledDeltas int64
	Resident      int
	Hibernated    int
	SpoolSegments int64
	SpoolBytes    int64
}

// Lifecycle snapshots the hibernation counters, the resident/hibernated
// split, and the spool footprint across workers.
func (h *Host) Lifecycle() LifecycleStats {
	st := LifecycleStats{
		Hibernations:      h.hibernations.Load(),
		Rehydrations:      h.rehydrations.Load(),
		RehydrateFailures: h.rehydrateFailures.Load(),
		SpooledDeltas:     h.spooledDeltas.Load(),
	}
	h.mu.Lock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.state == stateHibernated {
			st.Hibernated++
		} else {
			st.Resident++
		}
		s.mu.Unlock()
	}
	for _, w := range h.workers {
		if w.spool != nil {
			ws := w.spool.Stats()
			st.SpoolSegments += int64(ws.Segments)
			st.SpoolBytes += ws.Bytes
		}
	}
	return st
}

// Workers reports the worker count (for tooling and the load generator's
// run metadata).
func (h *Host) Workers() int { return len(h.workers) }

// Probes returns the host's stall-watchdog probes: one heartbeat probe
// per worker wheel (stale stamp = a wedged session callback or a dead
// tick loop) and, when hibernation is on, one group-commit stall probe
// per worker spool. heartbeatMax bounds heartbeat age — keep it well
// above the wheel tick (the hook only stamps on live advances);
// spoolPendingMax bounds how long a hibernate/delta append may wait for
// its group commit. Register alongside wire.FlusherStallProbe and
// burst.DriftProbes for full coverage.
func (h *Host) Probes(heartbeatMax, spoolPendingMax time.Duration) []flight.Probe {
	var probes []flight.Probe
	for _, w := range h.workers {
		probes = append(probes, flight.HeartbeatProbe(
			fmt.Sprintf("worker-%d-heartbeat", w.id), flight.SubWorker.String(), &w.heartbeat, heartbeatMax))
		if w.spool != nil {
			probes = append(probes, w.spool.StallProbe(
				fmt.Sprintf("worker-%d-spool", w.id), spoolPendingMax, 0))
		}
	}
	return probes
}
