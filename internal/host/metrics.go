package host

import (
	"strconv"

	"lasthop/internal/core"
	"lasthop/internal/obs"
)

// RegisterMetrics exports the host's sharding and multiplexing state on
// reg: per-worker session and timer-wheel gauges, the multiplexed
// subscription table, and per-session core counters. The host label
// distinguishes multiple hosts sharing one registry. Call once per
// (registry, host) pair.
func (h *Host) RegisterMetrics(reg *obs.Registry, host string) {
	reg.SampleGauges("lasthop_host_sessions",
		"Device sessions the host currently retains (connected or spooling).",
		[]string{"host"}, func() []obs.Sample {
			h.mu.Lock()
			n := len(h.sessions)
			h.mu.Unlock()
			return []obs.Sample{{Labels: []string{host}, Value: float64(n)}}
		})

	reg.SampleGauges("lasthop_host_worker_sessions",
		"Sessions sharded onto each event-loop worker.",
		[]string{"host", "worker"}, func() []obs.Sample {
			perWorker := make([]int, len(h.workers))
			h.mu.Lock()
			for _, s := range h.sessions {
				perWorker[s.w.id]++
			}
			h.mu.Unlock()
			out := make([]obs.Sample, len(perWorker))
			for i, n := range perWorker {
				out[i] = obs.Sample{Labels: []string{host, strconv.Itoa(i)}, Value: float64(n)}
			}
			return out
		})

	reg.SampleGauges("lasthop_host_worker_timers",
		"Armed timing-wheel timers per worker (delays, expirations, quiet windows across its sessions).",
		[]string{"host", "worker"}, func() []obs.Sample {
			out := make([]obs.Sample, len(h.workers))
			for i, w := range h.workers {
				out[i] = obs.Sample{Labels: []string{host, strconv.Itoa(i)}, Value: float64(w.wheel.Pending())}
			}
			return out
		})

	reg.SampleGauges("lasthop_host_upstream_subscriptions",
		"Distinct topics the host holds one multiplexed broker subscription each for.",
		[]string{"host"}, func() []obs.Sample {
			h.mu.Lock()
			n := len(h.topics)
			h.mu.Unlock()
			return []obs.Sample{{Labels: []string{host}, Value: float64(n)}}
		})

	reg.SampleGauges("lasthop_host_topic_refs",
		"Sessions sharing each multiplexed upstream subscription.",
		[]string{"host", "topic"}, func() []obs.Sample {
			h.mu.Lock()
			out := make([]obs.Sample, 0, len(h.topics))
			for t, ts := range h.topics {
				out = append(out, obs.Sample{Labels: []string{host, t}, Value: float64(ts.refs)})
			}
			h.mu.Unlock()
			return out
		})

	reg.SampleGauges("lasthop_host_session_connected",
		"Whether each device session currently has a live connection.",
		[]string{"host", "device"}, func() []obs.Sample {
			infos := h.Sessions()
			out := make([]obs.Sample, 0, len(infos))
			for _, s := range infos {
				v := 0.0
				if s.Connected {
					v = 1.0
				}
				out = append(out, obs.Sample{Labels: []string{host, s.Name}, Value: v})
			}
			return out
		})

	// Per-session core counters, collected with one wheel round trip per
	// worker rather than one per session.
	sessionCounter := func(name, help string, get func(core.Stats) int) {
		reg.SampleCounters(name, help, []string{"host", "device"}, func() []obs.Sample {
			names, stats := h.allSessionStats()
			out := make([]obs.Sample, len(names))
			for i := range names {
				out[i] = obs.Sample{Labels: []string{host, names[i]}, Value: float64(get(stats[i]))}
			}
			return out
		})
	}
	sessionCounter("lasthop_host_session_notifications_total",
		"Notification arrivals into each session's proxy.",
		func(st core.Stats) int { return st.Notifications })
	sessionCounter("lasthop_host_session_forwards_total",
		"Messages each session pushed to its device, including rank-drop signals.",
		func(st core.Stats) int { return st.Forwards })
	sessionCounter("lasthop_host_session_expirations_total",
		"Notifications expired while queued in each session's proxy.",
		func(st core.Stats) int { return st.Expirations })

	// Hibernation lifecycle: the resident/hibernated split, the spool
	// footprint, and the transition totals.
	reg.SampleGauges("lasthop_host_sessions_by_state",
		"Sessions fully in memory (resident) versus serialized to the spool (hibernated).",
		[]string{"host", "state"}, func() []obs.Sample {
			ls := h.Lifecycle()
			return []obs.Sample{
				{Labels: []string{host, "resident"}, Value: float64(ls.Resident)},
				{Labels: []string{host, "hibernated"}, Value: float64(ls.Hibernated)},
			}
		})
	reg.SampleGauges("lasthop_host_spool_bytes",
		"On-disk size of each worker's write-ahead spool.",
		[]string{"host", "worker"}, func() []obs.Sample {
			out := make([]obs.Sample, 0, len(h.workers))
			for i, w := range h.workers {
				if w.spool == nil {
					continue
				}
				out = append(out, obs.Sample{
					Labels: []string{host, strconv.Itoa(i)},
					Value:  float64(w.spool.Stats().Bytes),
				})
			}
			return out
		})
	reg.SampleGauges("lasthop_host_spool_segments",
		"Segment files in each worker's write-ahead spool.",
		[]string{"host", "worker"}, func() []obs.Sample {
			out := make([]obs.Sample, 0, len(h.workers))
			for i, w := range h.workers {
				if w.spool == nil {
					continue
				}
				out = append(out, obs.Sample{
					Labels: []string{host, strconv.Itoa(i)},
					Value:  float64(w.spool.Stats().Segments),
				})
			}
			return out
		})
	reg.SampleCounters("lasthop_host_hibernations_total",
		"Sessions whose state was dropped to the spool after the idle threshold.",
		[]string{"host"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{host}, Value: float64(h.hibernations.Load())}}
		})
	reg.SampleCounters("lasthop_host_rehydrations_total",
		"Hibernated sessions rebuilt from the spool (hello or crash recovery).",
		[]string{"host"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{host}, Value: float64(h.rehydrations.Load())}}
		})
	reg.SampleCounters("lasthop_host_rehydrate_failures_total",
		"Rehydrations that hit an unreadable snapshot or delta (session restarted empty or lost a delta).",
		[]string{"host"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{host}, Value: float64(h.rehydrateFailures.Load())}}
		})
	h.rehydrateHist.Store(reg.Histogram("lasthop_host_rehydrate_seconds",
		"Latency of rebuilding one session from its spool chain on hello.",
		obs.LatencyBuckets()))
}

// allSessionStats snapshots every session's core counters, grouped so each
// worker's wheel is entered once.
func (h *Host) allSessionStats() ([]string, []core.Stats) {
	byWorker := make([][]*Session, len(h.workers))
	h.mu.Lock()
	for _, s := range h.sessions {
		byWorker[s.w.id] = append(byWorker[s.w.id], s)
	}
	h.mu.Unlock()
	var (
		names []string
		stats []core.Stats
	)
	for i, sessions := range byWorker {
		if len(sessions) == 0 {
			continue
		}
		local := sessions
		h.workers[i].wheel.Run(func() {
			for _, s := range local {
				if s.proxy == nil {
					continue // hibernated: sampling must not rehydrate
				}
				names = append(names, s.name)
				stats = append(stats, s.proxy.Stats())
			}
		})
	}
	return names, stats
}
