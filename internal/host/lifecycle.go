package host

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/core"
	"lasthop/internal/flight"
	"lasthop/internal/msg"
	"lasthop/internal/spool"
)

// sessionState is the lifecycle position of one session. Transitions run
// only on the session's worker wheel; reads take s.mu.
//
//	resident --(disconnected HibernateAfter, snapshot appended)--> hibernating
//	hibernating --(group commit)--> hibernated
//	hibernating --(device reconnects before the commit)--> resident
//	hibernated --(hello rehydrates)--> resident
type sessionState uint8

const (
	// stateResident: the proxy lives in memory; the spool holds at most a
	// stale chain from an earlier hibernation (kept as the crash
	// fallback).
	stateResident sessionState = iota
	// stateHibernating: the snapshot is appended (process-crash durable)
	// but its group commit hasn't run; memory is still authoritative and
	// arrivals go to both.
	stateHibernating
	// stateHibernated: memory is dropped; the session is a directory
	// entry (name → spool locations) and arrivals append deltas.
	stateHibernated
)

func (st sessionState) String() string {
	switch st {
	case stateResident:
		return "resident"
	case stateHibernating:
		return "hibernating"
	case stateHibernated:
		return "hibernated"
	}
	return fmt.Sprintf("state(%d)", uint8(st))
}

// deliverNotify routes one upstream notification by lifecycle state. Runs
// on the wheel.
func (s *Session) deliverNotify(n *msg.Notification) {
	switch s.stateNow() {
	case stateResident:
		s.proxy.Notify(n) // ownership transfers: the proxy releases it
	case stateHibernating:
		// Memory is still authoritative (the device may return before the
		// commit), but the disk chain must also be complete in case it
		// doesn't: snapshot + deltas must replay to the same state. The
		// delta is serialized first — Notify may drop (and recycle) the
		// pooled note immediately.
		s.spoolDelta(msg.SpoolDelta{Notification: n, Trace: n.Trace})
		s.proxy.Notify(n)
	case stateHibernated:
		s.spoolDelta(msg.SpoolDelta{Notification: n, Trace: n.Trace})
		burst.Notes.Put(n) // serialized to disk; the memory copy is done
	}
}

// deliverRank routes one upstream rank revision by lifecycle state. Runs
// on the wheel.
func (s *Session) deliverRank(u msg.RankUpdate) {
	switch s.stateNow() {
	case stateResident:
		s.proxy.ApplyRankUpdate(u)
	case stateHibernating:
		s.proxy.ApplyRankUpdate(u)
		s.spoolDelta(msg.SpoolDelta{Rank: &u})
	case stateHibernated:
		s.spoolDelta(msg.SpoolDelta{Rank: &u})
	}
}

func (s *Session) stateNow() sessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// spoolDelta appends one incremental record to the session's chain. Runs
// on the wheel.
func (s *Session) spoolDelta(d msg.SpoolDelta) {
	payload, err := json.Marshal(d)
	if err != nil {
		s.host.logf("host: session %s: encode delta: %v", s.name, err)
		return
	}
	loc, err := s.w.spool.Append(spool.Record{
		Kind: spool.KindDelta, Name: s.name, Payload: payload, At: time.Now(),
	}, nil)
	if err != nil {
		s.host.logf("host: session %s: spool delta: %v", s.name, err)
		return
	}
	s.mu.Lock()
	s.deltas = append(s.deltas, loc)
	s.mu.Unlock()
	s.host.spooledDeltas.Add(1)
}

// spoolMembership appends a topic-membership correction to the session's
// existing spool chain, making a subscribe or unsubscribe durable against
// the snapshot it would otherwise silently contradict. Without a chain
// there is nothing to correct — the next snapshot records the membership
// wholesale. Runs on the wheel.
func (s *Session) spoolMembership(d msg.SpoolDelta) {
	if s.w.spool == nil {
		return
	}
	s.mu.Lock()
	hasChain := !s.snap.IsZero()
	s.mu.Unlock()
	if hasChain {
		s.spoolDelta(d)
	}
}

// armHibernate starts the idle countdown after a disconnect. Runs on the
// wheel.
func (s *Session) armHibernate() {
	if s.w.spool == nil || s.hibArmed {
		return
	}
	s.hibArmed = true
	s.hibTimer = s.w.wheel.Schedule(s.host.opts.HibernateAfter, s.hibernate)
}

// cancelHibernate stops the countdown (device back). Runs on the wheel.
func (s *Session) cancelHibernate() {
	if s.hibArmed {
		s.hibTimer.Cancel()
		s.hibArmed = false
	}
}

// topicList returns the session's subscribed topics, sorted.
func (s *Session) topicList() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.topics))
	for t := range s.topics {
		out = append(out, t)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// hibernate serializes the session to the spool. The memory drop is
// deferred to the group commit (completeHibernate); until then the device
// can reclaim the session without a rehydration. Runs on the wheel.
func (s *Session) hibernate() {
	s.hibArmed = false
	s.mu.Lock()
	busy := s.conn != nil || s.state != stateResident
	s.mu.Unlock()
	if busy || s.proxy == nil {
		return
	}
	payload, err := json.Marshal(s.proxy.Export())
	if err != nil {
		s.host.logf("host: session %s: encode snapshot: %v", s.name, err)
		return
	}
	meta, err := json.Marshal(msg.SpoolMeta{Topics: s.topicList()})
	if err != nil {
		s.host.logf("host: session %s: encode snapshot meta: %v", s.name, err)
		return
	}
	loc, err := s.w.spool.Append(spool.Record{
		Kind: spool.KindSnapshot, Name: s.name, Meta: meta, Payload: payload, At: time.Now(),
	}, s.completeHibernate)
	if err != nil {
		// The session simply stays resident; the next disconnect retries.
		s.host.logf("host: session %s: spool snapshot: %v", s.name, err)
		return
	}
	s.mu.Lock()
	s.state = stateHibernating
	s.snap = loc
	s.deltas = nil
	s.mu.Unlock()
}

// completeHibernate drops the in-memory proxy once the snapshot's group
// commit ran. It executes inside the worker's commit tick — a wheel
// callback — so it is serialized with every other proxy access. A device
// that reconnected in the window already flipped the state back to
// resident, making this a no-op.
func (s *Session) completeHibernate() {
	s.mu.Lock()
	if s.state != stateHibernating {
		s.mu.Unlock()
		return
	}
	s.state = stateHibernated
	s.mu.Unlock()
	s.proxy.Shutdown() // the wheel must not keep firing a dropped proxy's timers
	s.proxy = nil
	flight.Record(flight.SubLifecycle, flight.KindHibernate, int32(s.w.id), s.host.hibernations.Add(1), 0)
}

// ensureResident brings the session back to memory if it isn't. Runs on
// the wheel (attach's serialized callback), so two connections racing a
// hello for the same name rehydrate exactly once.
func (s *Session) ensureResident() {
	s.mu.Lock()
	st := s.state
	if st == stateHibernating {
		// The snapshot is on disk but memory was never dropped: abort the
		// drop, the disk chain goes stale and is superseded next time.
		s.state = stateResident
	}
	s.mu.Unlock()
	if st == stateHibernated {
		s.rehydrate()
	}
}

// rehydrate rebuilds the proxy from the spool chain: latest snapshot,
// then every delta in order, replayed through the normal NOTIFICATION
// path. Reconciliation with the device itself happens afterwards via the
// usual §3.5 resume (READ-ID sets), so the worst case is
// duplicate-suppressed redelivery, never loss. Runs on the wheel.
func (s *Session) rehydrate() {
	start := time.Now()
	s.mu.Lock()
	snapLoc := s.snap
	deltas := append([]spool.Loc(nil), s.deltas...)
	s.mu.Unlock()
	maxRec := s.host.opts.SpoolMaxRecordBytes

	newProxy := func() *core.Proxy {
		p := core.New(s.w.wheel, s)
		if s.host.opts.Trace != nil {
			p.SetTracer(sessionTracer{node: s.name, t: s.host.opts.Trace})
		}
		p.SetReleaser(burst.Notes.Put)
		p.SetNetwork(false)
		return p
	}
	p := newProxy()
	restored := false
	if !snapLoc.IsZero() {
		var ps core.ProxySnapshot
		rec, err := spool.ReadRecord(snapLoc, maxRec)
		if err == nil {
			err = json.Unmarshal(rec.Payload, &ps)
		}
		if err == nil {
			err = p.Import(&ps)
		}
		if err != nil {
			// A corrupt snapshot cannot be recovered; the session restarts
			// empty and the device's subscribe + resume rebuild what they
			// can. Anything irrecoverable then surfaces as ResumeLost —
			// counted, never silent.
			s.host.logf("host: session %s: rehydrate snapshot %s@%d: %v (restarting empty)",
				s.name, snapLoc.Path, snapLoc.Offset, err)
			s.host.rehydrateFailures.Add(1)
			p.Shutdown() // a partial Import may have armed timers
			p = newProxy()
		} else {
			restored = true
		}
	}
	if restored {
		for _, loc := range deltas {
			rec, err := spool.ReadRecord(loc, maxRec)
			if err != nil {
				s.host.logf("host: session %s: rehydrate delta %s@%d: %v (skipped)",
					s.name, loc.Path, loc.Offset, err)
				s.host.rehydrateFailures.Add(1)
				continue
			}
			var d msg.SpoolDelta
			if err := json.Unmarshal(rec.Payload, &d); err != nil {
				s.host.logf("host: session %s: decode delta %s@%d: %v (skipped)",
					s.name, loc.Path, loc.Offset, err)
				s.host.rehydrateFailures.Add(1)
				continue
			}
			switch {
			case d.Notification != nil:
				d.Notification.Trace = d.Trace
				p.Notify(d.Notification)
			case d.Rank != nil:
				p.ApplyRankUpdate(*d.Rank)
			case d.Unsubscribe != "":
				// The session dropped the topic after the snapshot; the
				// replayed copy must not resurrect it. An error here is
				// normal when the import restarted empty.
				_ = p.RemoveTopic(d.Unsubscribe)
			case d.Subscribe != "":
				// Membership-only correction for crash recovery; the
				// proxy-side configuration returns with the device's
				// reasserting subscribe.
			}
		}
	}
	// The session's live topic set is authoritative over the chain: drop
	// any topic the replayed snapshot carries that the session has since
	// unsubscribed (belt and braces for a membership delta that failed to
	// append).
	for _, topic := range p.Topics() {
		if !s.hasTopic(topic) {
			_ = p.RemoveTopic(topic)
		}
	}
	s.proxy = p
	s.mu.Lock()
	s.state = stateResident
	s.mu.Unlock()
	d := time.Since(start)
	flight.Record(flight.SubLifecycle, flight.KindRehydrate, int32(s.w.id), int64(d), 0)
	s.host.observeRehydrate(d)
}

// observeRehydrate counts one completed rehydration and, once metrics are
// registered, records its latency.
func (h *Host) observeRehydrate(d time.Duration) {
	h.rehydrations.Add(1)
	if hist := h.rehydrateHist.Load(); hist != nil {
		hist.Observe(d.Seconds())
	}
}

// recoverSpooled scans every worker spool directory (including directories
// of workers a previous run had and this one doesn't — the full chain
// location is in each record's Loc, so resharding is harmless) and rebuilds
// the session directory and the subscription table. Runs from New before
// any traffic.
func (h *Host) recoverSpooled() error {
	dirs, err := filepath.Glob(filepath.Join(h.opts.SpoolDir, "worker-*"))
	if err != nil {
		return err
	}
	sort.Strings(dirs)
	type timedLoc struct {
		loc spool.Loc
		at  time.Time
	}
	type memberEvent struct {
		topic string
		add   bool
		loc   spool.Loc
		at    time.Time
	}
	type chain struct {
		snap    spool.Loc
		snapAt  time.Time
		tombAt  time.Time
		topics  []string
		deltas  []timedLoc
		members []memberEvent
	}
	// Membership corrections hide among ordinary deltas; the key probe
	// avoids a JSON parse of every notification payload (both field names
	// end in `subscribe"`, and a false positive only costs one parse).
	memberHint := []byte(`subscribe"`)
	chains := make(map[string]*chain)
	for _, dir := range dirs {
		err := spool.ScanDir(dir, h.opts.SpoolMaxRecordBytes, h.logf, func(loc spool.Loc, r spool.Record) error {
			c := chains[r.Name]
			if c == nil {
				c = &chain{}
				chains[r.Name] = c
			}
			switch r.Kind {
			case spool.KindSnapshot:
				// Last writer wins on equal timestamps: a crashed
				// compaction leaves identical duplicates, either of which
				// is correct.
				if c.snap.IsZero() || !r.At.Before(c.snapAt) {
					c.snap, c.snapAt = loc, r.At
					var m msg.SpoolMeta
					if err := json.Unmarshal(r.Meta, &m); err == nil {
						c.topics = m.Topics
					}
				}
			case spool.KindDelta:
				c.deltas = append(c.deltas, timedLoc{loc, r.At})
				if bytes.Contains(r.Payload, memberHint) {
					var d msg.SpoolDelta
					if err := json.Unmarshal(r.Payload, &d); err == nil {
						if d.Subscribe != "" {
							c.members = append(c.members, memberEvent{d.Subscribe, true, loc, r.At})
						}
						if d.Unsubscribe != "" {
							c.members = append(c.members, memberEvent{d.Unsubscribe, false, loc, r.At})
						}
					}
				}
			case spool.KindTombstone:
				if r.At.After(c.tombAt) {
					c.tombAt = r.At
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	recovered := 0
	for name, c := range chains {
		if c.snap.IsZero() || (!c.tombAt.IsZero() && c.tombAt.After(c.snapAt)) {
			continue
		}
		live := c.deltas[:0]
		for _, d := range c.deltas {
			if !d.at.Before(c.snapAt) {
				live = append(live, d)
			}
		}
		sort.Slice(live, func(i, j int) bool {
			a, b := live[i], live[j]
			if !a.at.Equal(b.at) {
				return a.at.Before(b.at)
			}
			if a.loc.Path != b.loc.Path {
				return a.loc.Path < b.loc.Path
			}
			return a.loc.Offset < b.loc.Offset
		})
		// The snapshot's topic list plus every membership correction since
		// it, in record order, is the session's true subscription set: a
		// topic unsubscribed after the snapshot must not come back as a
		// phantom upstream subscription, and one re-subscribed must not be
		// dropped.
		members := c.members[:0]
		for _, m := range c.members {
			if !m.at.Before(c.snapAt) {
				members = append(members, m)
			}
		}
		sort.Slice(members, func(i, j int) bool {
			a, b := members[i], members[j]
			if !a.at.Equal(b.at) {
				return a.at.Before(b.at)
			}
			if a.loc.Path != b.loc.Path {
				return a.loc.Path < b.loc.Path
			}
			return a.loc.Offset < b.loc.Offset
		})
		topicSet := make(map[string]struct{}, len(c.topics))
		for _, t := range c.topics {
			topicSet[t] = struct{}{}
		}
		for _, m := range members {
			if m.add {
				topicSet[m.topic] = struct{}{}
			} else {
				delete(topicSet, m.topic)
			}
		}
		s := &Session{
			host:   h,
			name:   name,
			w:      h.workerFor(name),
			state:  stateHibernated,
			snap:   c.snap,
			topics: topicSet,
		}
		s.deltas = make([]spool.Loc, len(live))
		for i, d := range live {
			s.deltas[i] = d.loc
		}
		for t := range topicSet {
			ts := h.topics[t]
			if ts == nil {
				ready := make(chan struct{})
				close(ready) // resolved: New subscribes before serving
				ts = &topicSub{sessions: make(map[*Session]struct{}), ready: ready}
				h.topics[t] = ts
			}
			ts.refs++
			ts.sessions[s] = struct{}{}
		}
		h.sessions[name] = s
		recovered++
	}
	if recovered > 0 {
		h.logf("host: recovered %d hibernated sessions across %d topics from %s",
			recovered, len(h.topics), h.opts.SpoolDir)
	}
	return nil
}

// scheduleCommit arms the worker's next group-commit tick: one spool
// Commit (fsync per policy + deferred memory drops) per interval, plus
// the compaction check.
func (h *Host) scheduleCommit(w *worker) {
	w.wheel.Schedule(h.opts.SpoolCommitEvery, func() {
		if err := w.spool.Commit(); err != nil {
			h.logf("host: worker %d: spool commit: %v", w.id, err)
		}
		h.maybeCompact(w)
		if !h.isClosed() {
			h.scheduleCommit(w)
		}
	})
}

// maybeCompact rewrites the worker's live session chains into fresh
// segments once its spool has grown past the segment threshold. Runs
// inside the commit tick (wheel-serialized with every state transition and
// delta append of this worker's sessions). Only segments referenced by no
// session anywhere are deleted, so chains that still point into this
// directory — another worker's sessions after a resharding restart, or a
// resident session's stale crash-fallback chain — survive untouched.
func (h *Host) maybeCompact(w *worker) {
	st := w.spool.Stats()
	if st.Segments <= h.opts.SpoolCompactSegments || st.Appends == w.lastCompactAppends {
		return
	}

	// Partition: this worker's hibernated sessions get rewritten;
	// everyone else's chain references must be retained wherever they
	// point.
	retained := make(map[string]bool)
	var mine []*Session
	h.mu.Lock()
	for _, s := range h.sessions {
		s.mu.Lock()
		if s.w == w && s.state == stateHibernated {
			mine = append(mine, s)
		} else {
			if !s.snap.IsZero() {
				retained[s.snap.Path] = true
			}
			for _, d := range s.deltas {
				retained[d.Path] = true
			}
		}
		s.mu.Unlock()
	}
	h.mu.Unlock()
	sort.Slice(mine, func(i, j int) bool { return mine[i].name < mine[j].name })

	maxRec := h.opts.SpoolMaxRecordBytes
	type move struct {
		snap   spool.Loc
		deltas []spool.Loc
	}
	moves := make(map[*Session]move)
	err := w.spool.Compact(func(app func(spool.Record) (spool.Loc, error)) error {
		for _, s := range mine {
			s.mu.Lock()
			snapLoc := s.snap
			deltas := append([]spool.Loc(nil), s.deltas...)
			s.mu.Unlock()
			keepOld := func() {
				// Unreadable chain: keep the old segments so nothing that
				// might still decode is destroyed.
				if !snapLoc.IsZero() {
					retained[snapLoc.Path] = true
				}
				for _, d := range deltas {
					retained[d.Path] = true
				}
			}
			rec, err := spool.ReadRecord(snapLoc, maxRec)
			if err != nil {
				h.logf("host: compact worker %d: session %s snapshot %s@%d: %v (kept in place)",
					w.id, s.name, snapLoc.Path, snapLoc.Offset, err)
				keepOld()
				continue
			}
			newSnap, err := app(rec)
			if err != nil {
				return err
			}
			m := move{snap: newSnap}
			for _, loc := range deltas {
				drec, err := spool.ReadRecord(loc, maxRec)
				if err != nil {
					h.logf("host: compact worker %d: session %s delta %s@%d: %v (dropped)",
						w.id, s.name, loc.Path, loc.Offset, err)
					continue
				}
				nloc, err := app(drec)
				if err != nil {
					return err
				}
				m.deltas = append(m.deltas, nloc)
			}
			moves[s] = m
		}
		return nil
	}, func(path string) bool { return retained[path] })
	if err != nil {
		// Append or sync failed before any deletion: the old chains are
		// intact, so dropping the moves keeps every session readable.
		h.logf("host: compact worker %d: %v", w.id, err)
		return
	}
	for s, m := range moves {
		s.mu.Lock()
		// Only rewire sessions still hibernated with the chain we copied;
		// anything that changed state mid-emit keeps its own (newer)
		// chain. (Cannot happen — the wheel serializes us — but cheap.)
		if s.state == stateHibernated {
			s.snap = m.snap
			s.deltas = m.deltas
		}
		s.mu.Unlock()
	}
	w.lastCompactAppends = w.spool.Stats().Appends
	h.logf("host: worker %d compacted: %d sessions rewritten, %d→%d segments",
		w.id, len(moves), st.Segments, w.spool.Stats().Segments)
}
