package host

import (
	"fmt"
	"os"
	"testing"
	"time"

	"lasthop/internal/burst"
)

// TestMain gates the package run on the burst pools' leak account: every
// pooled notification a host checked out (upstream decode, clone-per-target
// fan-out) must be back in the pool once the hosts have closed.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := burst.VerifyNoLeaks(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "host: pool leak check:", err)
			code = 1
		}
	}
	os.Exit(code)
}
