package host

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/obs"
	"lasthop/internal/pubsub"
	"lasthop/internal/wire"
)

// testTopology is a broker + host pair with helpers to attach devices.
type testTopology struct {
	t          *testing.T
	broker     *pubsub.Broker
	bs         *wire.BrokerServer
	host       *Host
	brokerAddr string
	addr       string // host listener address
}

func newTopology(t *testing.T, opts Options) *testTopology {
	t.Helper()
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker("test-broker")
	bs := wire.NewBrokerServer(broker, nil)
	go func() { _ = bs.Serve(bl) }()
	t.Cleanup(bs.Close)

	opts.BrokerAddr = bl.Addr().String()
	if opts.Name == "" {
		opts.Name = "test-host"
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = h.Serve(hl) }()
	return &testTopology{
		t: t, broker: broker, bs: bs, host: h,
		brokerAddr: bl.Addr().String(), addr: hl.Addr().String(),
	}
}

func (tt *testTopology) device(name string) *wire.DeviceClient {
	tt.t.Helper()
	dev, err := wire.DialProxy(tt.addr, name)
	if err != nil {
		tt.t.Fatalf("dial device %s: %v", name, err)
	}
	tt.t.Cleanup(func() { _ = dev.Close() })
	return dev
}

func (tt *testTopology) publisher(name string) *wire.BrokerClient {
	tt.t.Helper()
	pub, err := wire.DialBroker(tt.brokerAddr, name)
	if err != nil {
		tt.t.Fatalf("dial publisher: %v", err)
	}
	tt.t.Cleanup(func() { _ = pub.Close() })
	return pub
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHostMultiplexesUpstreamSubscriptions pins the tentpole's mux
// invariant: however many sessions subscribe to a topic — including
// subscribe/unsubscribe churn and device disconnects — the broker sees
// exactly one subscription, held by the host, and it is dropped only when
// the last reference goes.
func TestHostMultiplexesUpstreamSubscriptions(t *testing.T) {
	tt := newTopology(t, Options{Workers: 2})
	const topic = "mux/t"

	devs := make([]*wire.DeviceClient, 5)
	for i := range devs {
		devs[i] = tt.device(fmt.Sprintf("mux-dev-%d", i))
		if err := devs[i].Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	if got := tt.broker.Subscribers(topic); len(got) != 1 || got[0] != "test-host" {
		t.Fatalf("broker subscribers = %v, want exactly [test-host]", got)
	}
	if refs := tt.host.TopicRefs(topic); refs != 5 {
		t.Fatalf("TopicRefs = %d, want 5", refs)
	}

	// Re-subscribing is idempotent: no double-counted reference.
	if err := devs[0].Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
		t.Fatal(err)
	}
	if refs := tt.host.TopicRefs(topic); refs != 5 {
		t.Fatalf("TopicRefs after re-subscribe = %d, want 5", refs)
	}

	// A device disconnect keeps the session, its spooling proxy, and its
	// upstream reference.
	_ = devs[4].Close()
	waitFor(t, "session 4 detach", func() bool {
		for _, s := range tt.host.Sessions() {
			if s.Name == "mux-dev-4" {
				return !s.Connected
			}
		}
		return false
	})
	if refs := tt.host.TopicRefs(topic); refs != 5 {
		t.Fatalf("TopicRefs after disconnect = %d, want 5 (sessions spool)", refs)
	}
	if got := tt.broker.Subscribers(topic); len(got) != 1 {
		t.Fatalf("broker subscribers after disconnect = %v, want 1", got)
	}

	// Explicit unsubscribes release references one by one; the broker
	// subscription survives until the last one.
	for i := 0; i < 4; i++ {
		if err := devs[i].Unsubscribe(topic); err != nil {
			t.Fatalf("unsubscribe %d: %v", i, err)
		}
		wantRefs := 5 - (i + 1)
		if refs := tt.host.TopicRefs(topic); refs != wantRefs {
			t.Fatalf("TopicRefs after %d unsubscribes = %d, want %d", i+1, refs, wantRefs)
		}
		if got := tt.broker.Subscribers(topic); len(got) != 1 {
			t.Fatalf("broker dropped the subscription at %d refs remaining: %v", wantRefs, got)
		}
	}

	// The disconnected device's session still holds the last reference;
	// release it through a reconnected client.
	dev4b := tt.device("mux-dev-4")
	if err := dev4b.Unsubscribe(topic); err != nil {
		t.Fatal(err)
	}
	if refs := tt.host.TopicRefs(topic); refs != 0 {
		t.Fatalf("TopicRefs after last unsubscribe = %d, want 0", refs)
	}
	if got := tt.broker.Subscribers(topic); len(got) != 0 {
		t.Fatalf("broker still subscribed after last reference dropped: %v", got)
	}

	// Churn: subscribe again from scratch re-establishes exactly one.
	if err := dev4b.Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
		t.Fatal(err)
	}
	if got := tt.broker.Subscribers(topic); len(got) != 1 {
		t.Fatalf("broker subscribers after re-churn = %v, want 1", got)
	}
}

// TestHostSubscribeUnsubscribeOrdering pins the drain handshake on the
// multiplexed subscription: when the last session unsubscribes while a new
// session subscribes concurrently, the fresh upstream Subscribe must
// serialize behind the in-flight Unsubscribe. Without the draining state
// the broker could process them in the wrong order, leaving the host
// unsubscribed while the new session holds a reference — every
// notification on the topic silently lost.
func TestHostSubscribeUnsubscribeOrdering(t *testing.T) {
	tt := newTopology(t, Options{Workers: 1})
	h := tt.host
	const topic = "order/t"
	s1 := newSession(h, "order-1", h.workers[0])
	s2 := newSession(h, "order-2", h.workers[0])
	subFrame := func() *wire.Frame {
		return &wire.Frame{Type: wire.TypeSubscribe, Topic: topic,
			TopicPolicy: &wire.TopicPolicy{Mode: "on-line"}}
	}
	// Deterministic interleaving: park the unsubscriber in the window
	// between dropping the last reference and sending the upstream
	// Unsubscribe, and start the new subscriber inside it. The subscriber
	// must block on the drain (and resubscribe after) rather than racing
	// its Subscribe past the parked Unsubscribe at the broker.
	if err := h.subscribe(s1, subFrame()); err != nil {
		t.Fatal(err)
	}
	gapEntered := make(chan struct{})
	s2returned := make(chan struct{})
	var s2err error
	h.testHookUnsubscribeGap = func(string) {
		close(gapEntered)
		select {
		case <-s2returned:
			// Buggy ordering: the subscribe overtook us. Fall through and
			// let the assertions below report it.
		case <-time.After(250 * time.Millisecond):
			// Fixed ordering: the subscribe is parked on the drain.
		}
	}
	unsubDone := make(chan error, 1)
	go func() { unsubDone <- h.unsubscribe(s1, topic) }()
	<-gapEntered
	go func() { s2err = h.subscribe(s2, subFrame()); close(s2returned) }()
	if err := <-unsubDone; err != nil {
		t.Fatalf("unsubscribe s1: %v", err)
	}
	<-s2returned
	if s2err != nil {
		t.Fatalf("subscribe s2: %v", s2err)
	}
	h.testHookUnsubscribeGap = nil
	if refs := h.TopicRefs(topic); refs != 1 {
		t.Fatalf("TopicRefs = %d, want 1", refs)
	}
	if got := tt.broker.Subscribers(topic); len(got) != 1 {
		t.Fatalf("broker subscribers = %v with 1 ref held: the concurrent subscribe was lost", got)
	}
	if err := h.unsubscribe(s2, topic); err != nil {
		t.Fatal(err)
	}
	if got := tt.broker.Subscribers(topic); len(got) != 0 {
		t.Fatalf("broker still subscribed after last ref: %v", got)
	}

	// Churn the same pair concurrently (race coverage; the deterministic
	// interleaving above pins the ordering itself).
	for i := 0; i < 100; i++ {
		if err := h.subscribe(s1, subFrame()); err != nil {
			t.Fatalf("iter %d: subscribe s1: %v", i, err)
		}
		var wg sync.WaitGroup
		var subErr, unsubErr error
		wg.Add(2)
		go func() { defer wg.Done(); subErr = h.subscribe(s2, subFrame()) }()
		go func() { defer wg.Done(); unsubErr = h.unsubscribe(s1, topic) }()
		wg.Wait()
		if subErr != nil || unsubErr != nil {
			t.Fatalf("iter %d: subscribe s2: %v, unsubscribe s1: %v", i, subErr, unsubErr)
		}
		if refs := h.TopicRefs(topic); refs != 1 {
			t.Fatalf("iter %d: TopicRefs = %d, want 1", i, refs)
		}
		if got := tt.broker.Subscribers(topic); len(got) != 1 {
			t.Fatalf("iter %d: broker subscribers = %v with 1 ref held", i, got)
		}
		if err := h.unsubscribe(s2, topic); err != nil {
			t.Fatalf("iter %d: unsubscribe s2: %v", i, err)
		}
		if got := tt.broker.Subscribers(topic); len(got) != 0 {
			t.Fatalf("iter %d: broker still subscribed after last ref: %v", i, got)
		}
	}
}

// TestUnsubscribeWhileHibernatedDrainsCleanly is the spool-aware sibling of
// TestHostSubscribeUnsubscribeOrdering: the unsubscribing session has
// hibernated (proxy gone, state on the spool chain), its last reference
// starts the upstream drain, and the device reconnects and re-subscribes
// mid-drain — rehydrating from a chain whose snapshot still lists the
// topic. The session must end with exactly one reference and one broker
// subscription (no double-subscribe), and the rehydrated proxy must not
// resurrect the unsubscribed topic (no lost unsubscribe). Pre-fix, the
// unsubscribe dereferenced the hibernated session's nil proxy.
func TestUnsubscribeWhileHibernatedDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	tt := newTopology(t, hibOpts(dir))
	h := tt.host
	const topic = "gap/hib"
	policy := wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}

	dev := tt.device("gap-hib-dev")
	if err := dev.Subscribe(topic, policy); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("gap-hib-pub")
	publishSeq(t, pub, topic, "g", 0, 2)
	waitFor(t, "notes resident", func() bool {
		st, ok := h.SessionStats("gap-hib-dev")
		return ok && st.Notifications >= 2
	})
	_ = dev.Close()
	waitFor(t, "session hibernated", func() bool {
		info, ok := sessionInfoOf(h, "gap-hib-dev")
		return ok && info.State == "hibernated"
	})
	if refs := h.TopicRefs(topic); refs != 1 {
		t.Fatalf("TopicRefs after hibernation = %d, want 1 (hibernated sessions keep their reference)", refs)
	}

	gapEntered := make(chan struct{})
	releaseGap := make(chan struct{})
	h.testHookUnsubscribeGap = func(string) {
		close(gapEntered)
		<-releaseGap
	}
	defer func() { h.testHookUnsubscribeGap = nil }()

	h.mu.Lock()
	sess := h.sessions["gap-hib-dev"]
	h.mu.Unlock()
	unsubDone := make(chan error, 1)
	go func() { unsubDone <- h.unsubscribe(sess, topic) }()
	<-gapEntered

	// Mid-drain: the device reconnects (hello rehydrates the session from
	// the chain, which must honor the membership correction) and issues a
	// fresh subscribe, which must park on the drain instead of racing its
	// upstream Subscribe past the in-flight Unsubscribe.
	dev2 := tt.device("gap-hib-dev")
	waitFor(t, "session resident again", func() bool {
		info, ok := sessionInfoOf(h, "gap-hib-dev")
		return ok && info.State == "resident" && info.Connected
	})
	subDone := make(chan error, 1)
	go func() { subDone <- dev2.Subscribe(topic, policy) }()
	select {
	case err := <-subDone:
		t.Fatalf("subscribe completed mid-drain (err=%v); it must wait out the unsubscribe", err)
	case <-time.After(250 * time.Millisecond):
	}
	close(releaseGap)
	if err := <-unsubDone; err != nil {
		t.Fatalf("unsubscribe on hibernated session: %v", err)
	}
	if err := <-subDone; err != nil {
		t.Fatalf("subscribe after drain: %v", err)
	}

	if refs := h.TopicRefs(topic); refs != 1 {
		t.Fatalf("TopicRefs after re-subscribe = %d, want 1", refs)
	}
	if subs := tt.broker.Subscribers(topic); len(subs) != 1 {
		t.Fatalf("broker subscribers = %v, want exactly the host", subs)
	}
	// The unsubscribed copy must be gone: the fresh subscription starts
	// empty and only new traffic reaches the device.
	publishSeq(t, pub, topic, "g2", 0, 1)
	deadline := time.Now().Add(10 * time.Second)
	for seen := false; !seen; {
		if time.Now().After(deadline) {
			t.Fatal("g2-0 never arrived on the re-subscribed topic")
		}
		batch, err := dev2.Read(topic, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batch {
			switch n.ID {
			case "g-0", "g-1":
				t.Fatalf("pre-unsubscribe notification %s resurrected by rehydration", n.ID)
			case "g2-0":
				seen = true
			}
		}
		if len(batch) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestHostHelloRenameDetachesOldSession: a second hello with a different
// name moves the connection to the new session and releases the old one;
// the old session must not keep believing the device is reachable.
func TestHostHelloRenameDetachesOldSession(t *testing.T) {
	tt := newTopology(t, Options{Workers: 1})
	nc, err := net.Dial("tcp", tt.addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	defer func() { _ = conn.Close() }()
	hello := func(name string) {
		t.Helper()
		seq, err := conn.SendRequest(&wire.Frame{Type: wire.TypeHello, Name: name})
		if err != nil {
			t.Fatal(err)
		}
		f, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.TypeOK || f.Re != seq {
			t.Fatalf("hello %q: got %+v, want ok", name, f)
		}
	}
	hello("rebind-a")
	hello("rebind-b")
	// The detach runs before the second hello's response, so the snapshot
	// is already consistent here.
	connected := map[string]bool{}
	for _, s := range tt.host.Sessions() {
		connected[s.Name] = s.Connected
	}
	if connected["rebind-a"] {
		t.Fatal("old session rebind-a still marked connected after rename")
	}
	if !connected["rebind-b"] {
		t.Fatal("new session rebind-b not connected after rename")
	}
	// Disconnecting releases only the session that owns the connection.
	_ = conn.Close()
	waitFor(t, "rebind-b detach", func() bool {
		for _, s := range tt.host.Sessions() {
			if s.Name == "rebind-b" {
				return !s.Connected
			}
		}
		return false
	})
}

// TestHostFanOutSharedTopic: one published notification reaches every
// session subscribed to the topic, each exactly once.
func TestHostFanOutSharedTopic(t *testing.T) {
	tt := newTopology(t, Options{Workers: 3})
	const topic = "fan/t"
	const devices = 6

	devs := make([]*wire.DeviceClient, devices)
	for i := range devs {
		devs[i] = tt.device(fmt.Sprintf("fan-dev-%d", i))
		if err := devs[i].Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
			t.Fatal(err)
		}
	}
	pub := tt.publisher("fan-pub")
	if err := pub.Advertise(topic, ""); err != nil {
		t.Fatal(err)
	}
	const notes = 40
	for i := 0; i < notes; i++ {
		n := &msg.Notification{
			ID: msg.ID(fmt.Sprintf("fan-%d", i)), Topic: topic,
			Rank: float64(1 + i%7), Published: time.Now(),
		}
		if err := pub.Publish(n); err != nil {
			t.Fatal(err)
		}
	}
	for i, dev := range devs {
		d := dev
		waitFor(t, fmt.Sprintf("device %d deliveries", i), func() bool {
			recv, _, _ := d.Stats()
			return recv >= notes
		})
		recv, updates, _ := d.Stats()
		if recv != notes {
			t.Fatalf("device %d received %d, want exactly %d", i, recv, notes)
		}
		if updates != 0 {
			t.Fatalf("device %d saw %d duplicate deliveries", i, updates)
		}
	}
}

// TestHostShardsSessionsAcrossWorkers: many sessions land on more than one
// worker, and each session is pinned to exactly one.
func TestHostShardsSessionsAcrossWorkers(t *testing.T) {
	tt := newTopology(t, Options{Workers: 4})
	for i := 0; i < 32; i++ {
		dev := tt.device(fmt.Sprintf("shard-dev-%02d", i))
		if err := dev.Subscribe(fmt.Sprintf("shard/t%d", i%8), wire.TopicPolicy{Mode: "on-line"}); err != nil {
			t.Fatal(err)
		}
	}
	used := make(map[int]int)
	for _, s := range tt.host.Sessions() {
		if s.Worker < 0 || s.Worker >= 4 {
			t.Fatalf("session %s on out-of-range worker %d", s.Name, s.Worker)
		}
		used[s.Worker]++
	}
	if len(used) < 2 {
		t.Fatalf("32 sessions all landed on %d worker(s): %v", len(used), used)
	}
	if tt.host.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", tt.host.Workers())
	}
}

// TestHostSessionResumption: a device that disconnects while notifications
// flow and then reconnects under the same name resumes its session — the
// spooled backlog lands and nothing is delivered twice.
func TestHostSessionResumption(t *testing.T) {
	tt := newTopology(t, Options{Workers: 2})
	const topic = "resume/t"

	dev, err := wire.DialProxy(tt.addr, "resume-dev")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("resume-pub")
	if err := pub.Advertise(topic, ""); err != nil {
		t.Fatal(err)
	}
	publish := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &msg.Notification{
				ID: msg.ID(fmt.Sprintf("res-%d", i)), Topic: topic,
				Rank: 3, Published: time.Now(),
			}
			if err := pub.Publish(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(0, 10)
	waitFor(t, "first burst", func() bool { r, _, _ := dev.Stats(); return r >= 10 })

	// Kill the connection; the host marks the session offline and spools.
	_ = dev.Close()
	waitFor(t, "session offline", func() bool {
		for _, s := range tt.host.Sessions() {
			if s.Name == "resume-dev" {
				return !s.Connected
			}
		}
		return false
	})
	publish(10, 25)
	waitFor(t, "spooled backlog", func() bool {
		st, ok := tt.host.SessionStats("resume-dev")
		return ok && st.Notifications >= 25
	})

	// Reconnect under the same name; Redial is not available on a closed
	// client, so dial fresh and resume via the subscribe/resume handshake.
	dev2, err := wire.DialProxyOpts(tt.addr, "resume-dev", wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev2.Close() }()
	if err := dev2.Subscribe(topic, wire.TopicPolicy{Mode: "on-line"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backlog drain", func() bool { r, _, _ := dev2.Stats(); return r >= 15 })
	recv, updates, _ := dev2.Stats()
	if recv != 15 {
		t.Fatalf("reconnected device received %d, want exactly the 15 spooled", recv)
	}
	if updates != 0 {
		t.Fatalf("reconnected device saw %d duplicates", updates)
	}
	var info SessionInfo
	for _, s := range tt.host.Sessions() {
		if s.Name == "resume-dev" {
			info = s
		}
	}
	if info.Connects != 2 {
		t.Fatalf("session connects = %d, want 2", info.Connects)
	}
}

// TestHostOnDemandRead drives the §3.5 READ protocol through the host.
func TestHostOnDemandRead(t *testing.T) {
	tt := newTopology(t, Options{Workers: 2})
	const topic = "read/t"
	dev := tt.device("read-dev")
	if err := dev.Subscribe(topic, wire.TopicPolicy{Mode: "on-demand"}); err != nil {
		t.Fatal(err)
	}
	pub := tt.publisher("read-pub")
	if err := pub.Advertise(topic, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n := &msg.Notification{
			ID: msg.ID(fmt.Sprintf("rd-%d", i)), Topic: topic,
			Rank: float64(i), Published: time.Now(),
		}
		if err := pub.Publish(n); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "host holds the batch", func() bool {
		st, ok := tt.host.SessionStats("read-dev")
		return ok && st.Notifications >= 8
	})
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("read %d of 8", got)
		}
		batch, err := dev.Read(topic, 0)
		if err != nil {
			t.Fatal(err)
		}
		got += len(batch)
	}
	if got != 8 {
		t.Fatalf("read %d notifications, want 8", got)
	}
}

// TestHostHelloRequired: non-hello frames before the hello are rejected
// without crashing the connection handler.
func TestHostHelloRequired(t *testing.T) {
	tt := newTopology(t, Options{Workers: 1})
	nc, err := net.Dial("tcp", tt.addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	defer func() { _ = conn.Close() }()
	seq, err := conn.SendRequest(&wire.Frame{Type: wire.TypeSubscribe, Topic: "x"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeErr || f.Re != seq || !strings.Contains(f.Message, "hello") {
		t.Fatalf("got %+v, want hello-required error", f)
	}
}

// TestHostMetricsRegistration: the sharding/mux gauges land on a registry
// scrape with the expected families.
func TestHostMetricsRegistration(t *testing.T) {
	tt := newTopology(t, Options{Workers: 2})
	reg := obs.NewRegistry()
	tt.host.RegisterMetrics(reg, "h0")
	dev := tt.device("m-dev")
	if err := dev.Subscribe("m/t", wire.TopicPolicy{Mode: "on-line"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`lasthop_host_sessions{host="h0"} 1`,
		`lasthop_host_upstream_subscriptions{host="h0"} 1`,
		`lasthop_host_topic_refs{host="h0",topic="m/t"} 1`,
		`lasthop_host_session_connected{host="h0",device="m-dev"} 1`,
		"lasthop_host_worker_timers",
		"lasthop_host_worker_sessions",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}
