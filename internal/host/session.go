package host

import (
	"errors"
	"sync"

	"lasthop/internal/burst"
	"lasthop/internal/core"
	"lasthop/internal/msg"
	"lasthop/internal/simtime"
	"lasthop/internal/spool"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

// Session is one device's last-hop state inside a host: an unmodified
// core.Proxy scheduled on its worker's timing wheel, plus the currently
// attached connection (nil while the device is away — the proxy then
// spools, exactly as during a simulated outage).
//
// All proxy calls are serialized by the worker wheel's callback mutex
// (wheel.Run), so a session's core state is single-threaded even though
// device frames, upstream pushes, and wheel timers arrive on different
// goroutines.
type Session struct {
	host *Host
	name string
	w    *worker

	// proxy is nil while the session is hibernated (its state then lives
	// in the spool chain below). Written only from wheel callbacks.
	proxy *core.Proxy

	mu      sync.Mutex
	conn    *wire.Conn
	batch   bool
	traceOK bool
	topics  map[string]struct{}

	// Lifecycle (guarded by mu; transitions run on the wheel). snap and
	// deltas are the session's spool chain: the latest snapshot plus every
	// record appended since. A resident session keeps its last chain as
	// the crash fallback until the next hibernation supersedes it.
	state  sessionState
	snap   spool.Loc
	deltas []spool.Loc

	// Hibernation countdown; touched only from wheel callbacks.
	hibTimer simtime.Timer
	hibArmed bool

	connects int
	resumes  int
}

var (
	_ core.Forwarder      = (*Session)(nil)
	_ core.BatchForwarder = (*Session)(nil)
)

func newSession(h *Host, name string, w *worker) *Session {
	s := &Session{host: h, name: name, w: w, topics: make(map[string]struct{})}
	w.wheel.Run(func() {
		s.proxy = core.New(w.wheel, s)
		if h.opts.Trace != nil {
			s.proxy.SetTracer(sessionTracer{node: name, t: h.opts.Trace})
		}
		// Upstream arrivals are pooled; the proxy recycles every
		// reference it drops (forwarding serializes onto the wire first).
		s.proxy.SetReleaser(burst.Notes.Put)
		s.proxy.SetNetwork(false) // no device yet
	})
	return s
}

// sessionTracer fills the session's name into core events that do not name
// a node, so one shared collector attributes queue decisions per device.
type sessionTracer struct {
	node string
	t    trace.Tracer
}

func (st sessionTracer) Record(e trace.Event) {
	if e.Node == "" {
		e.Node = st.node
	}
	st.t.Record(e)
}

// attach binds a (re)connecting device connection to the session,
// superseding a stale one.
func (s *Session) attach(conn *wire.Conn, batch, traceOK bool) {
	s.mu.Lock()
	old := s.conn
	s.conn = conn
	s.batch = batch
	s.traceOK = traceOK
	s.connects++
	s.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
	s.w.wheel.Run(func() {
		s.cancelHibernate()
		s.ensureResident()
		s.proxy.SetNetwork(true)
	})
}

// detach marks the device gone if conn is still the session's connection;
// a connection superseded by a reconnect detaches as a no-op.
func (s *Session) detach(conn *wire.Conn) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	s.mu.Unlock()
	s.w.wheel.Run(func() {
		if s.proxy != nil {
			s.proxy.SetNetwork(false)
		}
		s.armHibernate()
	})
}

// closeConn drops the session's connection (host shutdown).
func (s *Session) closeConn() {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Forward implements core.Forwarder by pushing to the attached device.
func (s *Session) Forward(n *msg.Notification) error {
	s.mu.Lock()
	conn, withTrace := s.conn, s.traceOK
	s.mu.Unlock()
	if conn == nil {
		return errors.New("no device connected")
	}
	return wire.PushNotification(conn, n, withTrace)
}

// ForwardBatch implements core.BatchForwarder with chunked batch frames.
func (s *Session) ForwardBatch(batch []*msg.Notification) error {
	s.mu.Lock()
	conn, batching, withTrace := s.conn, s.batch, s.traceOK
	s.mu.Unlock()
	if conn == nil {
		return errors.New("no device connected")
	}
	return wire.PushBatch(conn, batch, batching, withTrace)
}

// errNotResident rejects proxy-driving frames from a connection whose
// session hibernated under it. Only a connection superseded by a reconnect
// can observe this: the live connection's hello made the session resident
// and keeps it so. The superseded device must hello again.
var errNotResident = errors.New("session not resident")

// read serves one §3.5 READ against the session's proxy.
func (s *Session) read(req msg.ReadRequest) error {
	var rerr error
	s.w.wheel.Run(func() {
		if s.proxy == nil {
			rerr = errNotResident
			return
		}
		rerr = s.proxy.Read(req)
	})
	return rerr
}

// resume reconciles a reconnecting device's per-topic read/queue ID sets.
func (s *Session) resume(f *wire.Frame) error {
	if f.Topic == "" {
		return errors.New("resume frame without topic")
	}
	have := msg.NewIDSet(f.HaveIDs...)
	read := msg.NewIDSet(f.ReadIDs...)
	var rerr error
	s.w.wheel.Run(func() {
		if s.proxy == nil {
			rerr = errNotResident
			return
		}
		rerr = s.proxy.Resume(f.Topic, have, read)
	})
	if rerr != nil {
		return rerr
	}
	s.mu.Lock()
	s.resumes++
	s.mu.Unlock()
	if s.host.opts.Metrics != nil {
		s.host.opts.Metrics.ResumeReconciliations.Inc()
	}
	return nil
}

func (s *Session) hasTopic(topic string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.topics[topic]
	return ok
}

func (s *Session) addTopic(topic string) {
	s.mu.Lock()
	s.topics[topic] = struct{}{}
	s.mu.Unlock()
}

func (s *Session) removeTopic(topic string) {
	s.mu.Lock()
	delete(s.topics, topic)
	s.mu.Unlock()
}

func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		Name:      s.name,
		Worker:    s.w.id,
		Connected: s.conn != nil,
		State:     s.state.String(),
		Connects:  s.connects,
		Resumes:   s.resumes,
		Topics:    len(s.topics),
	}
}
