//go:build !race

package loadgen

const raceEnabled = false
