package loadgen

import (
	"fmt"
	"sort"
	"time"

	"lasthop/internal/wire"
)

// Atlas returns the five CI-able regression scenarios, each targeting one
// failure mode of the last-hop pipeline at its downscaled CI size (Scale 1
// finishes in seconds; full-size runs multiply via ScenarioOptions.Scale).
// The definitions are functions of nothing so every caller gets a fresh,
// unaliased copy.
func Atlas() []Scenario {
	return []Scenario{
		flashCrowd(),
		massReconnect(),
		rankStorm(),
		remapChurn(),
		quietFlood(),
	}
}

// FindScenario returns the named atlas entry.
func FindScenario(name string) (Scenario, error) {
	names := make([]string, 0, 5)
	for _, sc := range Atlas() {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("unknown scenario %q (have %v)", name, names)
}

// flashCrowd: a breaking-news spike — every device subscribed on-line to
// one topic, the whole burst published at once. The oracle is pure
// fan-out conservation: every copy pushed, nothing lost, nothing
// duplicated, and nothing wasted beyond the devices that never read.
func flashCrowd() Scenario {
	return Scenario{
		Name:        "flash-crowd",
		Description: "One hot topic, every device on-line, a single Poisson burst fanned out to all of them at once.",
		FailureMode: "Fan-out loss or duplication under per-device queue contention; push-path latency collapse.",
		Seed:        1001,
		Devices:     16,
		Topics:      1,
		Phases: []Phase{
			// A real flash crowd is thousands of publishes in one spike;
			// 960 per topic keeps the CI run under a second now that the
			// runner pipelines instantaneous bursts through batched
			// publishes (the earlier 240 was sized around one blocking ack
			// round trip per notification).
			{Name: "burst", PublishMean: 960, AwaitPushes: true},
			{Name: "drain", DrainReads: true},
		},
		Budget: Budget{
			MaxLost:       0,
			MaxDuplicates: 0,
			MaxWastePct:   0.5,
			MinReadPct:    95,
			// The pre-shared-frame datapath sustained ~10k deliveries/s on
			// this scenario (serial publish, clone-per-target fan-out); the
			// encode-once pipeline must clear twice that with headroom.
			MinDeliverPerSec: 20500,
			HopP99Ms: map[string]float64{
				"broker":     5000,
				"proxyQueue": 5000,
				"lastHop":    5000,
			},
		},
	}
}

// massReconnect: the post-partition thundering herd. The population
// hibernates behind a partition + cut, a flood lands on the spool, and
// then everyone redials at once through scripted connection refusals —
// stressing mux drain/resume and spool rehydration together.
func massReconnect() Scenario {
	return Scenario{
		Name:        "mass-reconnect",
		Description: "Partition and cut every device, flood their hibernated sessions, then redial the whole herd at once through connection refusals.",
		FailureMode: "Rehydration races and ghost-connection wheel closures losing or duplicating spooled notifications on the reconnect herd.",
		Seed:        1002,
		Devices:     24,
		Topics:      6,
		OnDemand:    true,
		Spool:       true,
		Phases: []Phase{
			{Name: "seed", PublishMean: 5, DrainReads: true},
			{Name: "blackout", Partition: 300 * time.Millisecond, CutConnections: true, DisconnectPct: 1.0, AwaitHibernate: true},
			{Name: "flood", PublishMean: 20, AwaitSpooled: true},
			{Name: "herd", RefuseConnects: 8, ReconnectAll: true, DrainReads: true},
		},
		Budget: Budget{
			MaxLost:       0,
			MaxDuplicates: 120,
			MaxWastePct:   1,
			MinReadPct:    95,
		},
	}
}

// rankStorm: publish into a delay stage, then retract half the batch with
// rank revisions before the delay elapses. The MinExpiredPct floor proves
// the revisions actually caught notes inside the stage (a broken delay
// path would deliver everything and still report zero lost).
func rankStorm() Scenario {
	return Scenario{
		Name:        "rank-storm",
		Description: "Publish through a 1.5s delay stage, then revise half the batch below the delivery threshold before the delay elapses.",
		FailureMode: "Rank revisions missing in-flight notes in the delay stage, or the stage delivering retracted copies anyway.",
		Seed:        1003,
		Devices:     8,
		Topics:      8,
		OnDemand:    true,
		Policy: wire.TopicPolicy{
			Mode:         "on-demand",
			Policy:       "on-demand",
			DelaySeconds: 1.5,
			Threshold:    3,
		},
		Phases: []Phase{
			{Name: "storm", PublishMean: 24, RankRevisePct: 0.5, ReviseToRank: 1},
			{Name: "settle", Duration: 2500 * time.Millisecond},
			{Name: "drain", DrainReads: true},
		},
		Budget: Budget{
			MaxLost:       0,
			MaxDuplicates: 0,
			MaxWastePct:   100, // expiries are the point; waste is unconstrained here
			MinReadPct:    25,
			MinExpiredPct: 25,
		},
	}
}

// remapChurn: §2.3 parameterized-subscription context changes — devices
// swap to the next topic of the family while the publishers keep the
// whole family hot. Remaps run in two half-waves so every topic keeps a
// subscriber; the budget tolerates the waste inherent in departing
// mid-delivery but still demands conservation.
func remapChurn() Scenario {
	return Scenario{
		Name:        "remap-churn",
		Description: "Devices remap to the next topic of the family (unsubscribe + subscribe) concurrently with a steady publish wave across all topics.",
		FailureMode: "Context-remap races: deliveries routed to a stale subscription, double-delivered across the swap, or stranded on the old topic queue.",
		Seed:        1004,
		Devices:     12,
		Topics:      6,
		OnDemand:    true,
		Phases: []Phase{
			{Name: "steady", PublishMean: 8, DrainReads: true},
			{Name: "churn", PublishMean: 12, Duration: 1 * time.Second, RemapPct: 0.75},
			{Name: "drain", DrainReads: true},
		},
		Budget: Budget{
			MaxLost:       0,
			MaxDuplicates: 24,
			MaxWastePct:   60, // copies stranded by a mid-flight unsubscribe retire unread
			MinReadPct:    40,
		},
	}
}

// quietFlood: the overnight release flood. A capped on-line topic floods
// during its quiet window; at the window's end (a wall-clock minute
// boundary, wrapping midnight when the run straddles it) the release must
// deliver exactly the daily cap per device and stage the rest.
func quietFlood() Scenario {
	return Scenario{
		Name:        "quiet-flood",
		Description: "Flood a capped on-line topic inside its quiet window; the release at the window end must honor the daily cap exactly.",
		FailureMode: "Quiet-window release mischarging the daily cap at the window/day boundary: early release, over-delivery, or a stalled flood.",
		Seed:        1005,
		Devices:     6,
		Topics:      1,
		QuietCap:    3,
		Phases: []Phase{
			{Name: "flood", PublishMean: 48},
			{Name: "release", AwaitQuietEnd: true},
			{Name: "drain", DrainReads: true},
		},
		Budget: Budget{
			MaxLost:       0,
			MaxDuplicates: 0,
			MaxWastePct:   100, // staged overflow beyond the cap retires unread by design
			CapPerDevice:  3,
		},
	}
}
