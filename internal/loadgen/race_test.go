//go:build race

package loadgen

// raceEnabled marks builds instrumented by the race detector, whose
// ~10x slowdown turns wall-clock throughput floors into false alarms.
const raceEnabled = true
