package loadgen

import (
	"fmt"
	"os"
	"testing"
	"time"

	"lasthop/internal/burst"
)

// TestMain gates the package run on the burst pools' leak account: a full
// loadgen topology (publishers, broker, proxies or host, devices) must
// return every pooled object by teardown.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := burst.VerifyNoLeaks(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: pool leak check:", err)
			code = 1
		}
	}
	os.Exit(code)
}
