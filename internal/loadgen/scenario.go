// Scenario atlas: a phase-based workload DSL over the real broker → host →
// device topology, built to *find bugs* rather than measure throughput.
// Each Scenario names a sequence of Phases — Poisson publish bursts,
// subscribe/unsubscribe churn, disconnect/hibernate/reconnect herds, and
// faultnet-scripted network pathologies — and declares a Budget over the
// trace collector's terminal outcomes. RunScenario executes the phases,
// drains every device, and reduces the run to a machine-readable Verdict:
// the regression oracle behind `lasthop-loadgen -scenario` and
// scripts/check_scenarios.sh.
package loadgen

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/dist"
	"lasthop/internal/faultnet"
	"lasthop/internal/flight"
	"lasthop/internal/host"
	"lasthop/internal/metrics"
	"lasthop/internal/msg"
	"lasthop/internal/obs"
	"lasthop/internal/pubsub"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

// Scenario is one atlas entry: a topology shape, a subscription policy,
// the phase script, and the outcome budget it must stay inside.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// FailureMode documents the bug class this scenario exists to catch —
	// what a red verdict most likely means.
	FailureMode string `json:"failureMode"`

	// Seed drives every random draw (populations, Poisson processes,
	// faultnet decisions), so a failing run replays exactly.
	Seed uint64 `json:"seed"`
	// Devices and Topics size the population at scale 1; device i
	// subscribes to topic i mod Topics. Scale multiplies Devices and the
	// publish volumes, never Topics.
	Devices int `json:"devices"`
	Topics  int `json:"topics"`
	// OnDemand switches devices to §3.5 READ consumption.
	OnDemand bool `json:"onDemand"`
	// Spool enables host-side hibernation (required by scenarios that
	// disconnect devices and expect sessions to survive on disk).
	Spool bool `json:"spool"`
	// Policy is the subscription every device asserts; zero Mode derives
	// from OnDemand. QuietCap, when positive, overrides Policy with an
	// on-line daily cap of QuietCap and a quiet window computed at run
	// time to end at an upcoming wall-clock minute boundary (the flood
	// defers behind it and releases cap-limited when it ends).
	Policy   wire.TopicPolicy `json:"policy"`
	QuietCap int              `json:"quietCap,omitempty"`

	Phases []Phase `json:"phases"`
	Budget Budget  `json:"budget"`
}

// Phase is one named stage of a scenario. Its actions run in a fixed
// order: network faults, disconnects, hibernation wait, reconnect herd,
// then traffic (publishing, with remap churn concurrent when both are
// set), then the waits and the read drain.
type Phase struct {
	Name string `json:"name"`

	// Partition stalls both directions of every device connection for
	// this long before anything else happens — the half-open hang a dead
	// radio leaves behind (faultnet.Partition).
	Partition time.Duration `json:"-"`
	// CutConnections severs every live device connection mid-stream
	// (faultnet.CutAll) after the partition heals.
	CutConnections bool `json:"cutConnections,omitempty"`
	// DisconnectPct detaches this fraction of connected devices (their
	// clients close; the host sessions linger and then hibernate when the
	// scenario spools).
	DisconnectPct float64 `json:"disconnectPct,omitempty"`
	// AwaitHibernate waits until every detached session has spooled.
	AwaitHibernate bool `json:"awaitHibernate,omitempty"`
	// RefuseConnects scripts faultnet to refuse the next N connection
	// attempts, so a reconnect herd slams into refusals first.
	RefuseConnects int `json:"refuseConnects,omitempty"`
	// ReconnectAll redials every detached device at once — the
	// post-partition thundering herd, with no pacing.
	ReconnectAll bool `json:"reconnectAll,omitempty"`
	// RemapPct remaps this fraction of devices to the next topic of the
	// family (unsubscribe current, subscribe next — the §2.3
	// parameterized-subscription context change), concurrently with this
	// phase's publishing.
	RemapPct float64 `json:"remapPct,omitempty"`

	// PublishMean is the mean of the per-topic Poisson notification count
	// published this phase (scaled by the run's Scale). With Duration set
	// the arrivals spread over the window as a Poisson process; otherwise
	// they are published as fast as the wire accepts.
	PublishMean   float64       `json:"publishMean,omitempty"`
	PublishTopics int           `json:"publishTopics,omitempty"`
	Duration      time.Duration `json:"-"`
	// RankRevisePct retracts this fraction of the phase's notifications
	// with a rank revision to ReviseToRank after publishing them.
	RankRevisePct float64 `json:"rankRevisePct,omitempty"`
	ReviseToRank  float64 `json:"reviseToRank,omitempty"`

	// AwaitSpooled waits until every copy of this phase's publishes is a
	// durable spool delta of a hibernated session.
	AwaitSpooled bool `json:"awaitSpooled,omitempty"`
	// AwaitPushes waits until every connected device has received every
	// notification published to its topic so far (on-line mode).
	AwaitPushes bool `json:"awaitPushes,omitempty"`
	// AwaitQuietEnd sleeps until the scenario's quiet window has ended
	// and the release settled, then asserts the Budget.CapPerDevice push
	// count.
	AwaitQuietEnd bool `json:"awaitQuietEnd,omitempty"`
	// DrainReads has every connected device read its topic until dry,
	// start times staggered by its dist awake-window read schedule.
	DrainReads bool `json:"drainReads,omitempty"`
}

// ScenarioOptions tunes a RunScenario invocation without touching the
// scenario definition.
type ScenarioOptions struct {
	// Scale multiplies the device population and publish volumes; zero
	// means 1 (the downscaled CI size). Full-size runs pass the
	// documented per-scenario scale via LASTHOP_SCENARIO_FULL.
	Scale float64
	// Timeout bounds the whole scenario; zero means 2 minutes.
	Timeout time.Duration
	// Logf receives progress diagnostics; nil silences them.
	Logf func(string, ...any)
	// Registry receives every layer's metric families; nil creates a
	// private one.
	Registry *obs.Registry
	// BundleDir, when set, receives a post-mortem flight bundle on a
	// stall-watchdog trip or a failed verdict (the CLI wires it from
	// LASTHOP_BUNDLE_DIR). A trip also fails the verdict with the
	// bundle path attached. Empty disables bundle dumps.
	BundleDir string
}

// scenarioDevice is one device leg's state across the whole scenario,
// surviving disconnects and reconnects of its wire client.
type scenarioDevice struct {
	idx      int
	name     string
	topicIdx int

	mu      sync.Mutex
	dev     *wire.DeviceClient
	seen    map[msg.ID]bool
	dups    int
	updates int // rank-revision pushes observed by closed clients

	// readStagger paces this device's drain entry, drawn from its dist
	// awake-window read schedule compressed to wall-clock milliseconds.
	readStagger time.Duration
}

func (d *scenarioDevice) client() *wire.DeviceClient {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dev
}

// close tears down the device's client, folding its duplicate accounting
// into the scenario tallies first.
func (d *scenarioDevice) close() {
	d.mu.Lock()
	dev := d.dev
	d.dev = nil
	d.mu.Unlock()
	if dev == nil {
		return
	}
	_, updates, _ := dev.Stats()
	d.mu.Lock()
	d.updates += updates
	d.mu.Unlock()
	_ = dev.Close()
}

// scenarioRun carries the live topology through the phases.
type scenarioRun struct {
	sc       Scenario
	scale    float64
	logf     func(string, ...any)
	deadline time.Time

	rng       *dist.RNG
	collector *trace.Collector
	wm        *wire.Metrics
	reg       *obs.Registry
	latency   *obs.Histogram

	topics   []string
	policy   wire.TopicPolicy
	quietEnd time.Time

	h        *host.Host
	flis     *faultnet.Listener
	hostAddr string
	pubs     []*wire.BrokerClient
	devices  []*scenarioDevice

	seq          int   // next notification index
	published    []int // distinct IDs published per topic, cumulative
	disconnected int

	failMu   sync.Mutex
	failures []string // runner-side budget violations
}

// failf records a runner-side budget violation. The mutex admits the
// stall watchdog, whose OnTrip fires from its own goroutine.
func (r *scenarioRun) failf(format string, args ...any) {
	r.failMu.Lock()
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
	r.failMu.Unlock()
}

// takeFailures snapshots the accumulated failures; call only after the
// watchdog is closed so the list is complete.
func (r *scenarioRun) takeFailures() []string {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return append([]string(nil), r.failures...)
}

// RunScenario executes one atlas entry and returns its report with the
// Verdict filled in. The error return covers harness breakage (dial
// failures, timeouts); budget violations land in the verdict instead.
func RunScenario(sc Scenario, opts ScenarioOptions) (*Report, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	devices := int(float64(sc.Devices)*scale + 0.5)
	if devices < 1 {
		devices = 1
	}
	if sc.Topics < 1 {
		sc.Topics = 1
	}

	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	metrics.Register(reg)
	burst.RegisterMetrics(reg)
	wm := wire.NewMetrics(reg)
	latency := reg.Histogram("lasthop_loadgen_delivery_latency_seconds",
		"End-to-end delivery latency from publish to device receipt or user read.",
		obs.LatencyBuckets())

	// Budgets are statements about every notification, so the atlas
	// samples at 100%. The ring is sized from the script's expected
	// volume so no completed trace is evicted before the verdict.
	expected := 0.0
	for _, ph := range sc.Phases {
		n := ph.PublishTopics
		if n <= 0 || n > sc.Topics {
			n = sc.Topics
		}
		expected += ph.PublishMean * float64(n) * scale
	}
	collector := trace.NewCollector("scenario", trace.NewSampler(1), int(expected*2)+512)
	collector.RegisterMetrics(reg)

	blis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	broker := pubsub.NewBroker("scenario")
	broker.RegisterMetrics(reg)
	broker.SetTracer(collector)
	bs := wire.NewBrokerServerOpts(broker, wire.ServerOptions{Metrics: wm})
	go func() { _ = bs.Serve(blis) }()
	defer bs.Close()

	hostCfg := Config{
		Logf:             logf,
		HibernateAfter:   100 * time.Millisecond,
		SpoolCommitEvery: 15 * time.Millisecond,
		SpoolFsync:       "never",
	}
	if sc.Spool {
		dir, err := os.MkdirTemp("", "lasthop-scenario-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		hostCfg.SpoolDir = dir
	}
	hostOpts, err := hostCfg.hostOptions(blis.Addr().String(), wm, collector)
	if err != nil {
		return nil, err
	}
	hostOpts.Name = "sc-host"
	h, err := host.New(hostOpts)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	defer h.Close()
	h.RegisterMetrics(reg, "sc-host")

	// Every device connection runs through the fault injector, so phases
	// can script partitions, cuts, and refusals against the real wire.
	hlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	flis := faultnet.Wrap(hlis, faultnet.Options{Seed: int64(sc.Seed) + 1})
	go func() { _ = h.Serve(flis) }()

	r := &scenarioRun{
		sc:        sc,
		scale:     scale,
		logf:      logf,
		deadline:  time.Now().Add(timeout),
		rng:       dist.New(sc.Seed),
		collector: collector,
		wm:        wm,
		reg:       reg,
		latency:   latency,
		h:         h,
		flis:      flis,
		hostAddr:  hlis.Addr().String(),
		published: make([]int, sc.Topics),
	}
	r.topics = make([]string, sc.Topics)
	for i := range r.topics {
		r.topics[i] = fmt.Sprintf("sc/%s/t%03d", sc.Name, i)
	}
	r.policy = r.resolvePolicy()

	// The stall watchdog mirrors production wiring: a wedged worker
	// loop, spool group commit, or egress flusher during the run dumps a
	// post-mortem bundle and fails the verdict with the bundle path
	// attached. Bounds are generous — CI machines stutter — so only a
	// genuine stall, not load, can trip. The watchdog closes before the
	// host tears down so shutdown never masquerades as a stall.
	watchdog := flight.NewWatchdog(250 * time.Millisecond)
	watchdog.OnTrip(func(trips []flight.Trip) {
		path := ""
		if opts.BundleDir != "" {
			o := flight.BundleOptions{
				Dir:      opts.BundleDir,
				Node:     "sc-" + sc.Name,
				Reason:   "watchdog",
				Trips:    trips,
				Recorder: flight.Active(),
				Metrics:  reg,
				Traces:   collector,
			}
			if p, err := flight.WriteBundle(o); err != nil {
				logf("scenario %s: flight bundle failed: %v", sc.Name, err)
			} else {
				path = p
			}
		}
		for _, tr := range trips {
			if path != "" {
				r.failf("watchdog: %s (bundle: %s)", tr, path)
			} else {
				r.failf("watchdog: %s", tr)
			}
		}
	})
	watchdog.Register(h.Probes(10*time.Second, 10*time.Second)...)
	watchdog.Register(wire.FlusherStallProbe(10*time.Second, 1))
	watchdog.Start()
	defer watchdog.Close()

	defer func() {
		for _, d := range r.devices {
			d.close()
		}
		for _, p := range r.pubs {
			_ = p.Close()
		}
	}()

	start := time.Now()
	if err := r.connectDevices(devices); err != nil {
		return nil, err
	}
	pubs, closePubs, err := dialPublishers(Config{Publishers: 2}, blis.Addr().String(), wm, r.topics)
	if err != nil {
		return nil, err
	}
	r.pubs = pubs
	defer closePubs()

	for _, ph := range sc.Phases {
		if err := r.runPhase(ph); err != nil {
			return nil, fmt.Errorf("scenario %s, phase %s: %w", sc.Name, ph.Name, err)
		}
	}

	elapsed := time.Since(start)
	collector.FinishActive(time.Now())

	delivered, duplicates := 0, 0
	for _, d := range r.devices {
		if dev := d.client(); dev != nil {
			_, updates, _ := dev.Stats()
			d.updates += updates
		}
		d.mu.Lock()
		delivered += len(d.seen)
		duplicates += d.dups + d.updates
		d.mu.Unlock()
	}
	total := 0
	for _, n := range r.published {
		total += n
	}
	rep := &Report{
		Config: Config{
			Devices:       len(r.devices),
			Topics:        sc.Topics,
			Notifications: total,
			OnDemand:      sc.OnDemand,
			MultiTenant:   true,
			TraceSample:   1,
		},
		Published:      total,
		Delivered:      delivered,
		Duplicates:     duplicates,
		PublishSeconds: elapsed.Seconds(),
		DeliverSeconds: elapsed.Seconds(),
		LatencyP50Ms:   latency.Quantile(0.50) * 1000,
		LatencyP95Ms:   latency.Quantile(0.95) * 1000,
		LatencyP99Ms:   latency.Quantile(0.99) * 1000,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.PublishPerSec = float64(rep.Published) / s
		rep.DeliverPerSec = float64(rep.Delivered) / s
	}
	finishTraces(rep, collector)
	watchdog.Close()
	v := sc.Budget.Evaluate(sc.Name, rep, r.takeFailures())
	v.ElapsedSeconds = elapsed.Seconds()
	rep.Verdict = &v
	if !v.Pass && opts.BundleDir != "" {
		o := flight.BundleOptions{
			Dir:      opts.BundleDir,
			Node:     "sc-" + sc.Name,
			Reason:   "scenario-failure",
			Recorder: flight.Active(),
			Metrics:  reg,
			Traces:   collector,
		}
		if p, err := flight.WriteBundle(o); err != nil {
			logf("scenario %s: flight bundle failed: %v", sc.Name, err)
		} else {
			logf("scenario %s failed: flight bundle at %s", sc.Name, p)
		}
	}
	logf("scenario %s: %s (%d published, %d delivered, outcomes %v)",
		sc.Name, passWord(v.Pass), total, delivered, rep.TraceOutcomes)
	return rep, nil
}

func passWord(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// resolvePolicy derives the per-device subscription policy, computing the
// quiet window for QuietCap scenarios: it spans from two hours ago to an
// upcoming wall-clock minute boundary, so the phase's flood defers behind
// it and releases — cap-limited — when the minute turns. Near a real
// midnight the window wraps the day boundary; the deterministic
// midnight-crossing semantics are pinned by the core and simtime tests.
func (r *scenarioRun) resolvePolicy() wire.TopicPolicy {
	pol := r.sc.Policy
	if pol.Mode == "" {
		if r.sc.OnDemand {
			pol.Mode = "on-demand"
		} else {
			pol.Mode = "on-line"
		}
	}
	if r.sc.QuietCap > 0 {
		now := time.Now()
		// Leave at least ~20s of window to subscribe and publish the
		// flood; the release wait is bounded by ~80s either way.
		endOffset := 1
		if now.Second() > 40 {
			endOffset = 2
		}
		minuteOfDay := now.Hour()*60 + now.Minute()
		pol.DailyOnlineCap = r.sc.QuietCap
		pol.QuietWindows = []wire.QuietWindowSpec{{
			StartMinutes: (minuteOfDay + 24*60 - 120) % (24 * 60),
			EndMinutes:   (minuteOfDay + endOffset) % (24 * 60),
		}}
		r.quietEnd = now.Truncate(time.Minute).Add(time.Duration(endOffset) * time.Minute)
	}
	return pol
}

// connectDevices dials and subscribes the population, drawing each
// device's drain stagger from its dist awake-window read schedule (the
// day compressed to a sub-second wall-clock spread).
func (r *scenarioRun) connectDevices(n int) error {
	r.devices = make([]*scenarioDevice, n)
	for i := range r.devices {
		d := &scenarioDevice{
			idx:      i,
			name:     fmt.Sprintf("sc-dev-%d", i),
			topicIdx: i % r.sc.Topics,
			seen:     make(map[msg.ID]bool),
		}
		reads := dist.ReadSchedule(r.rng.Split("reads/"+d.name),
			dist.ReadScheduleConfig{PerDay: 8}, dist.Day)
		if len(reads) > 0 {
			d.readStagger = time.Duration(float64(reads[0]) / float64(dist.Day) * float64(400*time.Millisecond))
		}
		if err := r.dial(d); err != nil {
			return err
		}
		r.devices[i] = d
	}
	r.logf("scenario %s: %d devices on %d topics (%s)", r.sc.Name, n, r.sc.Topics, r.policy.Mode)
	return nil
}

// dial (re)connects one device and asserts its current subscription,
// retrying while faultnet refuses — a refused herd member backs off and
// slams in again, exactly like a real client.
func (r *scenarioRun) dial(d *scenarioDevice) error {
	for {
		dev, err := wire.DialProxyOpts(r.hostAddr, d.name, wire.ClientOptions{Metrics: r.wm, Trace: r.collector})
		if err == nil {
			if serr := dev.Subscribe(r.topics[d.topicIdx%r.sc.Topics], r.policy); serr != nil {
				_ = dev.Close()
				return fmt.Errorf("subscribe %s: %w", d.name, serr)
			}
			d.mu.Lock()
			d.dev = dev
			d.mu.Unlock()
			return nil
		}
		if time.Now().After(r.deadline) {
			return fmt.Errorf("dial %s: %w", d.name, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (r *scenarioRun) runPhase(ph Phase) error {
	r.logf("scenario %s: phase %s", r.sc.Name, ph.Name)
	if ph.Partition > 0 {
		r.flis.Partition(faultnet.Both, ph.Partition)
		time.Sleep(ph.Partition)
	}
	if ph.CutConnections {
		cut := r.flis.CutAll()
		r.logf("scenario %s: cut %d connections", r.sc.Name, cut)
	}
	if ph.DisconnectPct > 0 {
		n := 0
		for _, d := range r.devices {
			if d.client() == nil {
				continue
			}
			if float64(n) >= ph.DisconnectPct*float64(len(r.devices)) {
				break
			}
			d.close()
			r.disconnected++
			n++
		}
		r.logf("scenario %s: detached %d devices", r.sc.Name, n)
	}
	if ph.AwaitHibernate {
		want := r.disconnected
		if err := waitUntil(r.deadline, "detached sessions hibernated", func() bool {
			return r.h.Lifecycle().Hibernated >= want
		}); err != nil {
			return err
		}
	}
	if ph.RefuseConnects > 0 {
		r.flis.RefuseNext(ph.RefuseConnects)
	}
	if ph.ReconnectAll {
		if err := r.reconnectHerd(); err != nil {
			return err
		}
	}

	// Traffic: remap churn runs concurrently with the publish wave, so
	// subscription state changes under live routing.
	var (
		remapWG  sync.WaitGroup
		remapErr error
		remapMu  sync.Mutex
	)
	if ph.RemapPct > 0 {
		remapWG.Add(1)
		go func() {
			defer remapWG.Done()
			if err := r.remap(ph.RemapPct); err != nil {
				remapMu.Lock()
				remapErr = err
				remapMu.Unlock()
			}
		}()
	}
	deltaBase := r.h.Lifecycle().SpooledDeltas
	publishedThisPhase, phaseIDs, err := r.publish(ph)
	if err != nil {
		return err
	}
	remapWG.Wait()
	if remapErr != nil {
		return remapErr
	}
	if ph.RankRevisePct > 0 && len(phaseIDs) > 0 {
		if err := r.revise(ph, phaseIDs); err != nil {
			return err
		}
	}
	if ph.Duration == 0 && ph.PublishMean == 0 && ph.Name != "" &&
		!ph.DrainReads && !ph.AwaitPushes && !ph.AwaitSpooled && !ph.AwaitQuietEnd {
		// A pure marker phase: nothing else to do.
		_ = publishedThisPhase
	}
	if ph.Duration > 0 && ph.PublishMean == 0 {
		time.Sleep(ph.Duration) // settle phase
	}

	if ph.AwaitSpooled {
		want := deltaBase
		for t, n := range publishedThisPhase {
			want += int64(n * r.hibernatedSubs(t))
		}
		if err := waitUntil(r.deadline, "phase publishes spooled", func() bool {
			return r.h.Lifecycle().SpooledDeltas >= want
		}); err != nil {
			return err
		}
	}
	if ph.AwaitPushes {
		if err := r.awaitPushes(); err != nil {
			return err
		}
	}
	if ph.AwaitQuietEnd {
		r.awaitQuietEnd()
	}
	if ph.DrainReads {
		if err := r.drainReads(); err != nil {
			return err
		}
	}
	return nil
}

// hibernatedSubs counts devices subscribed to topic index t that are
// currently detached (their session copies spool as deltas).
func (r *scenarioRun) hibernatedSubs(t int) int {
	n := 0
	for _, d := range r.devices {
		if d.topicIdx%r.sc.Topics == t && d.client() == nil {
			n++
		}
	}
	return n
}

// publish runs one phase's Poisson wave: per-topic counts drawn from the
// scenario RNG, spread over the phase duration when one is declared.
// Returns the per-topic counts and the (ID, topic) pairs for revision.
func (r *scenarioRun) publish(ph Phase) (map[int]int, []msg.RankUpdate, error) {
	counts := make(map[int]int)
	if ph.PublishMean <= 0 {
		return counts, nil, nil
	}
	nTopics := ph.PublishTopics
	if nTopics <= 0 || nTopics > r.sc.Topics {
		nTopics = r.sc.Topics
	}
	mean := ph.PublishMean * r.scale
	type slot struct {
		off   time.Duration
		topic int
	}
	var slots []slot
	g := r.rng.Split("publish/" + ph.Name)
	for t := 0; t < nTopics; t++ {
		if ph.Duration > 0 {
			rate := mean * float64(dist.Day) / float64(ph.Duration)
			for _, off := range dist.PoissonProcess(g.Split(r.topics[t]), rate, ph.Duration) {
				slots = append(slots, slot{off, t})
			}
		} else {
			n := g.Split(r.topics[t]).Poisson(mean)
			for i := 0; i < n; i++ {
				slots = append(slots, slot{0, t})
			}
		}
	}
	if ph.Duration == 0 && len(slots) > 0 {
		// Instantaneous burst — the flash-crowd regime. One blocking ack
		// round trip per notification would serialize the wave behind
		// publisher RTTs and measure the harness, not the datapath, so the
		// wave rides windowed PublishBatch round trips pipelined across
		// the publisher connections instead.
		notes := make([]*msg.Notification, len(slots))
		ids := make([]msg.RankUpdate, len(slots))
		for k, s := range slots {
			id := msg.ID(fmt.Sprintf("sc-%s-%d", r.sc.Name, r.seq))
			r.seq++
			notes[k] = &msg.Notification{
				ID:        id,
				Topic:     r.topics[s.topic],
				Publisher: "loadgen",
				Rank:      5,
				Published: time.Now(),
			}
			ids[k] = msg.RankUpdate{Topic: notes[k].Topic, ID: id}
			counts[s.topic]++
			r.published[s.topic]++
		}
		const batchSize, window = 64, 4
		chunks := make(chan int, (len(notes)+batchSize-1)/batchSize)
		for lo := 0; lo < len(notes); lo += batchSize {
			chunks <- lo
		}
		close(chunks)
		var (
			wg    sync.WaitGroup
			errMu sync.Mutex
			first error
		)
		for _, pub := range r.pubs {
			for w := 0; w < window; w++ {
				wg.Add(1)
				go func(pub *wire.BrokerClient) {
					defer wg.Done()
					for lo := range chunks {
						hi := lo + batchSize
						if hi > len(notes) {
							hi = len(notes)
						}
						for k, err := range pub.PublishBatch(notes[lo:hi]) {
							if err != nil {
								errMu.Lock()
								if first == nil {
									first = fmt.Errorf("publish %s: %w", notes[lo+k].ID, err)
								}
								errMu.Unlock()
								return
							}
						}
					}
				}(pub)
			}
		}
		wg.Wait()
		if first != nil {
			return counts, ids, first
		}
		r.logf("scenario %s: phase %s published %d notifications (burst)", r.sc.Name, ph.Name, len(slots))
		return counts, ids, nil
	}
	// Sort by offset so the sleep-and-publish walk is monotonic.
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j].off < slots[j-1].off; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	start := time.Now()
	var ids []msg.RankUpdate
	for k, s := range slots {
		if s.off > 0 {
			if until := time.Until(start.Add(s.off)); until > 0 {
				time.Sleep(until)
			}
		}
		id := msg.ID(fmt.Sprintf("sc-%s-%d", r.sc.Name, r.seq))
		r.seq++
		n := &msg.Notification{
			ID:        id,
			Topic:     r.topics[s.topic],
			Publisher: "loadgen",
			Rank:      5,
			Published: time.Now(),
		}
		if err := r.pubs[k%len(r.pubs)].Publish(n); err != nil {
			return counts, ids, fmt.Errorf("publish %s: %w", id, err)
		}
		counts[s.topic]++
		r.published[s.topic]++
		ids = append(ids, msg.RankUpdate{Topic: n.Topic, ID: id})
	}
	r.logf("scenario %s: phase %s published %d notifications", r.sc.Name, ph.Name, len(slots))
	return counts, ids, nil
}

// revise retracts a deterministic fraction of the phase's publishes with
// rank revisions — the storm that must catch notes inside the delay stage.
func (r *scenarioRun) revise(ph Phase, ids []msg.RankUpdate) error {
	k := int(float64(len(ids))*ph.RankRevisePct + 0.5)
	for i := 0; i < k && i < len(ids); i++ {
		u := ids[i]
		u.NewRank = ph.ReviseToRank
		if err := r.pubs[i%len(r.pubs)].PublishRankUpdate(u); err != nil {
			return fmt.Errorf("revise %s: %w", u.ID, err)
		}
	}
	r.logf("scenario %s: phase %s revised %d ranks to %.0f", r.sc.Name, ph.Name, k, ph.ReviseToRank)
	return nil
}

// remap moves a fraction of the devices to the next topic of the family:
// unsubscribe the current one, subscribe the successor. Devices remap in
// two half-waves so no topic ever drops to zero subscribers mid-churn
// (each topic keeps at least one reader for in-flight routing).
func (r *scenarioRun) remap(pct float64) error {
	var victims []*scenarioDevice
	for _, d := range r.devices {
		if d.client() != nil && float64(len(victims)) < pct*float64(len(r.devices)) {
			victims = append(victims, d)
		}
	}
	for wave := 0; wave < 2; wave++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var first error
		for i, d := range victims {
			if i%2 != wave {
				continue
			}
			wg.Add(1)
			go func(d *scenarioDevice) {
				defer wg.Done()
				dev := d.client()
				if dev == nil {
					return
				}
				old := r.topics[d.topicIdx%r.sc.Topics]
				next := r.topics[(d.topicIdx+1)%r.sc.Topics]
				err := dev.Unsubscribe(old)
				if err == nil {
					err = dev.Subscribe(next, r.policy)
				}
				if err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("remap %s: %w", d.name, err)
					}
					mu.Unlock()
					return
				}
				d.topicIdx++
			}(d)
		}
		wg.Wait()
		if first != nil {
			return first
		}
	}
	r.logf("scenario %s: remapped %d devices", r.sc.Name, len(victims))
	return nil
}

// reconnectHerd redials every detached device at once.
func (r *scenarioRun) reconnectHerd() error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	n := 0
	for _, d := range r.devices {
		if d.client() != nil {
			continue
		}
		n++
		wg.Add(1)
		go func(d *scenarioDevice) {
			defer wg.Done()
			if err := r.dial(d); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	if first == nil {
		r.disconnected = 0
		r.logf("scenario %s: herd reconnected %d devices", r.sc.Name, n)
	}
	return first
}

// awaitPushes waits for full on-line fan-out: every connected device has
// received everything published to its topic so far.
func (r *scenarioRun) awaitPushes() error {
	return waitUntil(r.deadline, "on-line pushes delivered", func() bool {
		for _, d := range r.devices {
			dev := d.client()
			if dev == nil {
				continue
			}
			received, _, _ := dev.Stats()
			if received < r.published[d.topicIdx%r.sc.Topics] {
				return false
			}
		}
		return true
	})
}

// awaitQuietEnd sleeps past the computed quiet-window end, lets the
// release settle, and asserts the daily-cap release accounting from the
// trace timelines. Device push counts cannot distinguish the cap: the
// restock path legitimately keeps transferring staged prefetch up to the
// prefetch limit. The release decisions are unambiguous in the traces —
// each session enqueues a released note to outgoing with cause
// "quiet-window released" (charged against the cap) or stages it with
// "daily-cap after quiet-window" (overflow) — so the run must show
// exactly min(cap, published) charges and the rest staged, per session.
func (r *scenarioRun) awaitQuietEnd() {
	if wait := time.Until(r.quietEnd.Add(2 * time.Second)); wait > 0 {
		r.logf("scenario %s: waiting %v for the quiet window to end", r.sc.Name, wait.Round(time.Second))
		time.Sleep(wait)
	}
	cap := r.sc.Budget.CapPerDevice
	if cap <= 0 {
		return
	}
	released, staged := 0, 0
	countEvents := func(traces []trace.NotificationTrace) {
		for _, nt := range traces {
			for _, e := range nt.Events {
				if e.Kind != trace.KindEnqueue {
					continue
				}
				switch {
				case e.Queue == "outgoing" && e.Cause == "quiet-window released":
					released++
				case strings.Contains(e.Cause, "daily-cap after quiet-window"):
					staged++
				}
			}
		}
	}
	countEvents(r.collector.Active())
	countEvents(r.collector.Completed())
	wantReleased, wantStaged := 0, 0
	for _, d := range r.devices {
		pub := r.published[d.topicIdx%r.sc.Topics]
		if pub > cap {
			wantReleased += cap
			wantStaged += pub - cap
		} else {
			wantReleased += pub
		}
	}
	if released != wantReleased {
		r.failf("quiet release charged %d on-line deliveries across %d sessions, want %d (cap %d): early release or cap mischarge",
			released, len(r.devices), wantReleased, cap)
	}
	if staged != wantStaged {
		r.failf("quiet release staged %d overflow copies, want %d: the flood leaked past (or short of) the cap",
			staged, wantStaged)
	}
	r.logf("scenario %s: quiet release charged %d, staged %d", r.sc.Name, released, staged)
}

// drainReads has every connected device read its current topic until dry
// (three consecutive empty reads), entry staggered by the device's awake
// window draw. Seen-set accounting is per scenario device, so duplicates
// across reconnects surface here.
func (r *scenarioRun) drainReads() error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for _, d := range r.devices {
		if d.client() == nil {
			continue
		}
		wg.Add(1)
		go func(d *scenarioDevice) {
			defer wg.Done()
			time.Sleep(d.readStagger)
			empty := 0
			for empty < 3 {
				if time.Now().After(r.deadline) {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("drain %s: deadline", d.name)
					}
					mu.Unlock()
					return
				}
				dev := d.client()
				if dev == nil {
					return
				}
				batch, err := dev.Read(r.topics[d.topicIdx%r.sc.Topics], 0)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("drain %s: %w", d.name, err)
					}
					mu.Unlock()
					return
				}
				if len(batch) == 0 {
					empty++
					time.Sleep(15 * time.Millisecond)
					continue
				}
				empty = 0
				d.mu.Lock()
				for _, n := range batch {
					if d.seen[n.ID] {
						d.dups++
					} else {
						d.seen[n.ID] = true
						r.latency.Observe(time.Since(n.Published).Seconds())
					}
				}
				d.mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	return first
}
