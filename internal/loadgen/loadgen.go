// Package loadgen drives a real broker → proxy → device topology at
// configurable scale and measures end-to-end throughput: P concurrent
// publishers push notifications through a wire.BrokerServer, last-hop
// proxies subscribe and forward across the last hop, and the run
// completes when every device holds everything it was owed. The proxy
// tier is either one wire.ProxyServer per device (the paper's
// one-proxy-per-user deployment) or, with Config.MultiTenant, a single
// host.Host carrying every device session over sharded workers and one
// multiplexed broker connection. It is the measurement harness behind
// cmd/lasthop-loadgen and the BENCH_PR2/BENCH_PR5 trajectories.
package loadgen

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/host"
	"lasthop/internal/metrics"
	"lasthop/internal/msg"
	"lasthop/internal/obs"
	"lasthop/internal/pubsub"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

// Config sizes one load-generation run. The zero value is usable: it
// resolves to a small smoke-scale run.
type Config struct {
	// Publishers is the number of concurrent publisher connections.
	Publishers int `json:"publishers"`
	// Devices is the number of device connections; each device gets its
	// own last-hop proxy, as in the paper's deployment model.
	Devices int `json:"devices"`
	// Topics is the number of distinct topics; device i subscribes to
	// topic i mod Topics. Defaults to Devices.
	Topics int `json:"topics"`
	// Notifications is the total number of notifications published,
	// spread round-robin across topics.
	Notifications int `json:"notifications"`
	// PublishBatch is how many notifications each publisher pipelines into
	// one batched round trip (wire.BrokerClient.PublishBatch): the whole
	// chunk rides one vectored flush and the acknowledgements coalesce
	// symmetrically. 1 publishes one-at-a-time; zero means 16.
	PublishBatch int `json:"publishBatch"`
	// PublishWindow is how many batches each publisher connection keeps in
	// flight at once. With a window of 1 every PublishBatch round trip
	// serializes behind its acknowledgement, capping each connection near
	// batch/RTT regardless of how fast the broker routes; a wider window
	// pipelines the acks away (wire.BrokerClient calls are
	// concurrency-safe, so the window is just W goroutines sharing one
	// connection). Zero means 4.
	PublishWindow int `json:"publishWindow"`
	// HistoryLimit bounds each subscription's retained proxy-side history
	// (wire.TopicPolicy.HistoryLimit). Every delivered notification stays
	// checked out of the burst pool until its history entry is evicted, so
	// the core default (131072 per topic) means a throughput run recycles
	// nothing and the reported PoolHitRate collapses to the publisher-side
	// cycle. Bounding it to a few times the in-flight depth is the
	// steady-state regime the pool is designed for. Zero keeps the core
	// default; negative means unbounded.
	HistoryLimit int `json:"historyLimit,omitempty"`
	// PayloadBytes is the payload size of every notification.
	PayloadBytes int `json:"payloadBytes"`
	// OnDemand switches the devices to on-demand topics consumed with
	// §3.5 READ requests; the default is on-line forwarding.
	OnDemand bool `json:"onDemand"`
	// MultiTenant runs all devices against one host.Host instead of one
	// wire.ProxyServer per device: sessions shard across the host's
	// workers and all upstream traffic shares one multiplexed broker
	// connection.
	MultiTenant bool `json:"multiTenant"`
	// HostWorkers is the host's worker count in MultiTenant mode. Zero
	// means GOMAXPROCS.
	HostWorkers int `json:"hostWorkers,omitempty"`
	// SpoolDir enables session hibernation on the multi-tenant host:
	// disconnected sessions serialize into a write-ahead spool under this
	// directory after HibernateAfter and are rebuilt on reconnect or
	// restart. RunRecovery requires a spool; it creates a temporary one
	// when this is empty.
	SpoolDir string `json:"spoolDir,omitempty"`
	// HibernateAfter is how long a disconnected session lingers in memory
	// before spooling. Zero means the host default (1 minute) in Run and
	// a fast drill default (100ms) in RunRecovery.
	HibernateAfter time.Duration `json:"-"`
	// SpoolCommitEvery is the spool group-commit interval. Zero means the
	// host default (100ms) in Run and 20ms in RunRecovery.
	SpoolCommitEvery time.Duration `json:"-"`
	// SpoolFsync selects spool durability: "always", "commit", or
	// "never". Empty means commit.
	SpoolFsync string `json:"spoolFsync,omitempty"`
	// Concurrent bounds how many device connections the phased recovery
	// drill keeps open at once — the paper's "small connected fraction"
	// regime. Zero means 5% of Devices, clamped to [1, 256].
	Concurrent int `json:"concurrent,omitempty"`
	// ObsAddr, when set, serves /metrics, /healthz, /debug/pprof, and
	// /debug/traces for the whole topology on this address for the
	// duration of the run.
	ObsAddr string `json:"obsAddr,omitempty"`
	// TraceSample head-samples this fraction of published notifications
	// into end-to-end traces (0 disables tracing; anomalies are still
	// traced when > 0 is ever observed on a node with a collector). The
	// whole in-process topology shares one collector, so each trace is a
	// complete publisher → broker → proxy → device timeline.
	TraceSample float64 `json:"traceSample,omitempty"`
	// TraceRing bounds the completed-trace ring. Zero sizes it to hold
	// every notification of the run, so no sampled trace is evicted
	// before the report is computed.
	TraceRing int `json:"traceRing,omitempty"`
	// Linger keeps the topology (and the ObsAddr endpoint) alive this
	// long after the last delivery, so external scrapers can observe the
	// run's final state.
	Linger time.Duration `json:"-"`
	// Timeout bounds the whole run. Zero means a minute.
	Timeout time.Duration `json:"-"`
	// Logf receives progress diagnostics; nil silences them.
	Logf func(string, ...any) `json:"-"`
	// BundleDir, when set, receives a post-mortem flight bundle if the
	// run fails or a stall watchdog trips (the CLI wires it from
	// LASTHOP_BUNDLE_DIR). Empty disables bundle dumps.
	BundleDir string `json:"-"`
	// Registry receives every layer's metric families; nil creates a
	// private one. Tests pass their own to assert on the scrape.
	Registry *obs.Registry `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.Devices <= 0 {
		c.Devices = 4
	}
	if c.Topics <= 0 || c.Topics > c.Devices {
		c.Topics = c.Devices
	}
	if c.Notifications <= 0 {
		c.Notifications = 1000
	}
	if c.PublishBatch <= 0 {
		c.PublishBatch = 16
	}
	if c.PublishWindow <= 0 {
		c.PublishWindow = 4
	}
	if c.PayloadBytes < 0 {
		c.PayloadBytes = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Report is the outcome of one run.
type Report struct {
	Config Config `json:"config"`

	// Published is how many notifications were acknowledged by the
	// broker; Delivered is how many landed on (on-line) or were read by
	// (on-demand) the devices.
	Published int `json:"published"`
	Delivered int `json:"delivered"`

	// Duplicates counts pushes that revised a notification a device
	// already held. The load publishes no rank revisions, so any nonzero
	// value is a duplicate delivery — the multi-tenant fan-out must keep
	// this at zero.
	Duplicates int `json:"duplicates"`

	// Recovered and Lost are set by RunRecovery: sessions rebuilt from
	// the spool after the mid-run kill, and notifications a device was
	// owed but never received before the deadline. A correct spool keeps
	// Lost at zero; duplicates are permitted but bounded.
	Recovered int `json:"recovered,omitempty"`
	Lost      int `json:"lost,omitempty"`

	// PublishSeconds is the wall-clock time until the last publish was
	// acknowledged; DeliverSeconds until the last device delivery.
	PublishSeconds float64 `json:"publishSeconds"`
	DeliverSeconds float64 `json:"deliverSeconds"`

	// PublishPerSec and DeliverPerSec are the derived rates.
	PublishPerSec float64 `json:"publishPerSec"`
	DeliverPerSec float64 `json:"deliverPerSec"`

	// PerPublisher breaks the publish side down per connection, so a
	// publisher-side bottleneck (the pre-batching regime: publishPerSec an
	// order of magnitude below deliverPerSec) is visible directly in the
	// report rather than inferred.
	PerPublisher []PublisherStats `json:"perPublisher,omitempty"`

	// Runtime telemetry over the measured window (topology up → last
	// delivery): allocation and GC pressure plus burst-pool effectiveness.
	AllocObjects   uint64  `json:"allocObjects"`
	AllocBytes     uint64  `json:"allocBytes"`
	NumGC          uint32  `json:"numGC"`
	GCPauseTotalMs float64 `json:"gcPauseTotalMs"`
	// PoolHitRate is the fraction of notification-pool Gets served from
	// the free pool over the measured window. PoolOutstanding is the net
	// checked-out count sampled AFTER the run's topology is torn down and
	// its in-flight references have drained; a clean run reports ~0, and
	// any residue is a real leak rather than frames still sitting in
	// egress rings. (Earlier revisions sampled before teardown and could
	// report the whole run's transient footprint.)
	PoolHitRate     float64 `json:"poolHitRate"`
	PoolOutstanding int64   `json:"poolOutstanding"`

	// Delivery latency quantiles in milliseconds, from publish timestamp
	// to device receipt (on-line) or user read (on-demand), interpolated
	// from an HDR-style log-bucketed histogram.
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP95Ms float64 `json:"latencyP95Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`

	// Tracing summary, present when TraceSample > 0: how many traces were
	// head-sampled, the terminal outcome tally, and the per-hop latency
	// decomposition of the delivered traces (broker routing, proxy
	// queueing, and the last hop; federation would appear on multi-broker
	// topologies).
	TraceSampled  uint64                  `json:"traceSampled,omitempty"`
	TraceOutcomes map[string]uint64       `json:"traceOutcomes,omitempty"`
	HopLatencyMs  map[string]HopQuantiles `json:"hopLatencyMs,omitempty"`

	// WastePct is §3.1 waste among the sampled traces: last-hop transfers
	// the user never read, as a percentage of all last-hop transfers.
	// TraceConservation is empty on a clean run; with full sampling it
	// reports any violation of the one-terminal-outcome-per-notification
	// invariant instead of folding bad books into WastePct.
	WastePct          float64 `json:"wastePct,omitempty"`
	TraceConservation string  `json:"traceConservation,omitempty"`

	// Verdict is the budget comparison of a scenario run (RunScenario
	// only; nil for plain Run / RunRecovery reports).
	Verdict *Verdict `json:"verdict,omitempty"`

	// Collector holds the run's completed traces for JSONL export
	// (cmd/lasthop-loadgen -trace-out); not part of the JSON report.
	Collector *trace.Collector `json:"-"`
}

// PublisherStats is one publisher connection's share of the load.
type PublisherStats struct {
	Publisher string  `json:"publisher"`
	Published int     `json:"published"`
	Batches   int     `json:"batches"`
	PerSec    float64 `json:"perSec"`
}

// HopQuantiles summarizes one segment of the delivery path across all
// traces that observed it, in milliseconds.
type HopQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	N   int     `json:"n"`
}

// quantileMs interpolates a quantile from a sorted slice of durations.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return float64(sorted[len(sorted)-1]) / float64(time.Millisecond)
	}
	frac := pos - float64(i)
	lo, hi := float64(sorted[i]), float64(sorted[i+1])
	return (lo + (hi-lo)*frac) / float64(time.Millisecond)
}

// hopSummary reduces the completed traces to per-segment quantiles.
func hopSummary(traces []trace.NotificationTrace) map[string]HopQuantiles {
	segs := map[string][]time.Duration{}
	for i := range traces {
		b := traces[i].LatencyBreakdown()
		for name, d := range map[string]time.Duration{
			"broker":     b.Broker,
			"federation": b.Federation,
			"proxyQueue": b.ProxyQueue,
			"lastHop":    b.LastHop,
		} {
			if d >= 0 {
				segs[name] = append(segs[name], d)
			}
		}
	}
	out := make(map[string]HopQuantiles, len(segs))
	for name, ds := range segs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out[name] = HopQuantiles{
			P50: quantileMs(ds, 0.50),
			P95: quantileMs(ds, 0.95),
			P99: quantileMs(ds, 0.99),
			N:   len(ds),
		}
	}
	return out
}

// node is one device leg: its device client plus, in per-device mode, a
// dedicated last-hop proxy (nil in multi-tenant mode, where every device
// shares the host).
type node struct {
	proxy  *wire.ProxyServer
	plis   net.Listener
	dev    *wire.DeviceClient
	topic  string
	expect int
}

// Run builds the topology, publishes the configured load, waits for every
// delivery, and reports the measured rates and latency quantiles.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	deadline := time.Now().Add(cfg.Timeout)

	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	metrics.Register(reg)
	burst.RegisterMetrics(reg)
	wm := wire.NewMetrics(reg)
	latency := reg.Histogram("lasthop_loadgen_delivery_latency_seconds",
		"End-to-end delivery latency from publish to device receipt or user read.",
		obs.LatencyBuckets())

	// One collector for the whole in-process topology: the broker mints
	// contexts, proxies and devices record against them, and every trace
	// is a complete end-to-end timeline.
	var collector *trace.Collector
	if cfg.TraceSample > 0 {
		ring := cfg.TraceRing
		if ring <= 0 {
			ring = cfg.Notifications + 16
		}
		collector = trace.NewCollector("loadgen", trace.NewSampler(cfg.TraceSample), ring)
		collector.RegisterMetrics(reg)
	}

	if cfg.ObsAddr != "" {
		srv, err := obs.Serve(cfg.ObsAddr, reg,
			obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()})
		if err != nil {
			return nil, fmt.Errorf("obs endpoint: %w", err)
		}
		defer func() { _ = srv.Close() }()
		cfg.Logf("loadgen: observability on http://%s/metrics", srv.Addr())
	}

	// Teardown is explicit (and idempotent) rather than pure defers: the
	// clean path tears the topology down BEFORE sampling pool residency,
	// so PoolOutstanding reflects what actually leaked instead of frames
	// still queued in egress rings. Error paths fall back to the defer.
	var (
		closers      []func()
		teardownOnce sync.Once
	)
	teardown := func() {
		teardownOnce.Do(func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		})
	}
	defer teardown()

	blis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	broker := pubsub.NewBroker("loadgen")
	broker.RegisterMetrics(reg)
	if collector != nil {
		broker.SetTracer(collector)
	}
	bs := wire.NewBrokerServerOpts(broker, wire.ServerOptions{Metrics: wm})
	go func() { _ = bs.Serve(blis) }()
	closers = append(closers, func() { bs.Close() })
	brokerAddr := blis.Addr().String()

	topics := make([]string, cfg.Topics)
	for i := range topics {
		topics[i] = fmt.Sprintf("load/t%03d", i)
	}

	nodes := make([]*node, cfg.Devices)
	closers = append(closers, func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.dev != nil {
				_ = nd.dev.Close()
			}
			if nd.proxy != nil {
				nd.proxy.Close()
			}
		}
	})
	mode := "on-line"
	if cfg.OnDemand {
		mode = "on-demand"
	}
	// Bounding the retained history (when configured) is what lets the
	// proxy-side pool references recycle at steady state instead of
	// accumulating for the whole run; see Config.HistoryLimit.
	pol := wire.TopicPolicy{Mode: mode, HistoryLimit: cfg.HistoryLimit}
	var hostAddr string
	if cfg.MultiTenant {
		hostOpts, err := cfg.hostOptions(brokerAddr, wm, collector)
		if err != nil {
			return nil, err
		}
		h, err := host.New(hostOpts)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
		closers = append(closers, h.Close)
		h.RegisterMetrics(reg, "lg-host")
		hlis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = h.Serve(hlis) }()
		hostAddr = hlis.Addr().String()
	}
	for i := range nodes {
		var nd *node
		if cfg.MultiTenant {
			nd, err = newHostNode(hostAddr, i, topics[i%cfg.Topics], pol, reg, wm, collector)
		} else {
			nd, err = newNode(brokerAddr, i, topics[i%cfg.Topics], pol, reg, wm, collector)
		}
		if err != nil {
			return nil, err
		}
		if !cfg.OnDemand {
			// On-line deliveries complete at push time; on-demand ones at
			// read time (observed in awaitDeliveries instead).
			nd.dev.SetOnPush(func(n *msg.Notification) {
				latency.Observe(time.Since(n.Published).Seconds())
			})
		}
		nodes[i] = nd
	}
	if cfg.MultiTenant {
		cfg.Logf("loadgen: %d device sessions attached to one host", cfg.Devices)
	} else {
		cfg.Logf("loadgen: %d devices attached through their proxies", cfg.Devices)
	}

	pubs := make([]*wire.BrokerClient, cfg.Publishers)
	closers = append(closers, func() {
		for _, p := range pubs {
			if p != nil {
				_ = p.Close()
			}
		}
	})
	for i := range pubs {
		pub, err := wire.DialBrokerOpts(brokerAddr, fmt.Sprintf("lg-pub-%d", i), wire.ClientOptions{Metrics: wm})
		if err != nil {
			return nil, fmt.Errorf("publisher %d: %w", i, err)
		}
		pubs[i] = pub
		// Topics are single-publisher; every connection claims them under
		// one shared identity (re-advertising the same name is idempotent)
		// so all publishers can feed all topics.
		for _, t := range topics {
			if err := pub.Advertise(t, "loadgen"); err != nil {
				return nil, fmt.Errorf("advertise %s: %w", t, err)
			}
		}
	}

	// Notification i goes to topic i mod Topics; every device subscribed
	// there is owed one delivery of it.
	perTopic := make([]int, cfg.Topics)
	for i := 0; i < cfg.Notifications; i++ {
		perTopic[i%cfg.Topics]++
	}
	for i, nd := range nodes {
		nd.expect = perTopic[i%cfg.Topics]
	}

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	cfg.Logf("loadgen: publishing %d notifications from %d publishers (batch %d, window %d)",
		cfg.Notifications, cfg.Publishers, cfg.PublishBatch, cfg.PublishWindow)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	poolBefore := burst.Notes.Stats()
	start := time.Now()
	var (
		wg       sync.WaitGroup
		pubMu    sync.Mutex
		pubErr   error
		next     = make(chan int, cfg.Publishers*cfg.PublishWindow*cfg.PublishBatch)
		pubStats = make([]PublisherStats, cfg.Publishers)
	)
	go func() {
		for i := 0; i < cfg.Notifications; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < cfg.Publishers; w++ {
		pubStats[w].Publisher = fmt.Sprintf("lg-pub-%d", w)
		// Each connection runs PublishWindow batch loops concurrently, so
		// up to that many PublishBatch round trips are in flight per
		// publisher and no ack serializes the next chunk.
		for slot := 0; slot < cfg.PublishWindow; slot++ {
			wg.Add(1)
			go func(w int, pub *wire.BrokerClient) {
				defer wg.Done()
				published, batches := 0, 0
				// Each chunk is built from pooled notifications, pipelined as
				// one PublishBatch round trip (single vectored flush on the
				// wire), and recycled once the broker has acknowledged it.
				batch := make([]*msg.Notification, 0, cfg.PublishBatch)
				for {
					batch = batch[:0]
					for i := range next {
						n := burst.Notes.Get()
						n.ID = msg.ID(fmt.Sprintf("lg-%d", i))
						n.Topic = topics[i%cfg.Topics]
						n.Publisher = "loadgen"
						n.Rank = float64(1 + i%5)
						n.Published = time.Now()
						n.Payload = append(n.Payload[:0], payload...)
						batch = append(batch, n)
						if len(batch) == cfg.PublishBatch {
							break
						}
					}
					if len(batch) == 0 {
						break
					}
					errs := pub.PublishBatch(batch)
					failed := false
					for k, err := range errs {
						if err != nil {
							failed = true
							pubMu.Lock()
							if pubErr == nil {
								pubErr = fmt.Errorf("publish %s: %w", batch[k].ID, err)
							}
							pubMu.Unlock()
						}
					}
					published += len(batch)
					batches++
					for _, n := range batch {
						burst.Notes.Put(n)
					}
					if failed {
						break
					}
				}
				pubMu.Lock()
				pubStats[w].Published += published
				pubStats[w].Batches += batches
				pubMu.Unlock()
			}(w, pubs[w])
		}
	}
	wg.Wait()
	if pubErr != nil {
		return nil, pubErr
	}
	publishElapsed := time.Since(start)
	if s := publishElapsed.Seconds(); s > 0 {
		for w := range pubStats {
			pubStats[w].PerSec = float64(pubStats[w].Published) / s
		}
	}

	delivered, err := awaitDeliveries(nodes, cfg, deadline, latency)
	deliverElapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	poolAfter := burst.Notes.Stats()
	duplicates := 0
	for _, nd := range nodes {
		_, updates, _ := nd.dev.Stats()
		duplicates += updates
	}
	if collector != nil && err == nil && !cfg.OnDemand {
		// Final read pass: consume what was pushed so every delivered
		// trace terminates in a user read instead of being written off as
		// waste when the run ends. (On-demand devices already read.)
		for _, nd := range nodes {
			if _, rerr := nd.dev.Read(nd.topic, 0); rerr != nil {
				cfg.Logf("loadgen: final read on %s: %v", nd.topic, rerr)
				break
			}
		}
	}
	collector.FinishActive(time.Now())
	rep := &Report{
		Config:         cfg,
		Published:      cfg.Notifications,
		Delivered:      delivered,
		Duplicates:     duplicates,
		PublishSeconds: publishElapsed.Seconds(),
		DeliverSeconds: deliverElapsed.Seconds(),
		LatencyP50Ms:   latency.Quantile(0.50) * 1000,
		LatencyP95Ms:   latency.Quantile(0.95) * 1000,
		LatencyP99Ms:   latency.Quantile(0.99) * 1000,
	}
	if s := rep.PublishSeconds; s > 0 {
		rep.PublishPerSec = float64(rep.Published) / s
	}
	if s := rep.DeliverSeconds; s > 0 {
		rep.DeliverPerSec = float64(rep.Delivered) / s
	}
	rep.PerPublisher = pubStats
	rep.AllocObjects = memAfter.Mallocs - memBefore.Mallocs
	rep.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
	rep.NumGC = memAfter.NumGC - memBefore.NumGC
	rep.GCPauseTotalMs = float64(memAfter.PauseTotalNs-memBefore.PauseTotalNs) / 1e6
	window := burst.PoolStats{
		Gets:   poolAfter.Gets - poolBefore.Gets,
		Puts:   poolAfter.Puts - poolBefore.Puts,
		Misses: poolAfter.Misses - poolBefore.Misses,
	}
	rep.PoolHitRate = window.HitRate()
	finishTraces(rep, collector)
	if err == nil && cfg.Linger > 0 {
		cfg.Logf("loadgen: run complete, lingering %v for scrapers", cfg.Linger)
		time.Sleep(cfg.Linger)
	}
	// Sample pool residency only after the topology is down: teardown is
	// asynchronous at the edges (egress rings flush their last shared
	// frames on Close, wheel callbacks drain), so an immediate sample
	// races the final releases and would count the run's transient
	// footprint as leakage.
	teardown()
	rep.PoolOutstanding = drainedOutstanding(2 * time.Second)
	return rep, err
}

// drainedOutstanding polls the notification pool's net checked-out count
// until it reaches zero or the grace period expires, returning the final
// sample. A non-zero return after the grace period is a genuine leak.
func drainedOutstanding(grace time.Duration) int64 {
	deadline := time.Now().Add(grace)
	for {
		out := burst.Notes.Stats().Outstanding()
		if out == 0 || time.Now().After(deadline) {
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newNode(brokerAddr string, i int, topic string, pol wire.TopicPolicy, reg *obs.Registry, wm *wire.Metrics, collector *trace.Collector) (*node, error) {
	name := fmt.Sprintf("lg-proxy-%d", i)
	ps, err := wire.NewProxyServerOpts(wire.ProxyOptions{
		BrokerAddr: brokerAddr,
		Name:       name,
		Metrics:    wm,
		Trace:      collector,
	})
	if err != nil {
		return nil, fmt.Errorf("proxy %d: %w", i, err)
	}
	ps.RegisterMetrics(reg, name)
	nd := &node{proxy: ps, topic: topic}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ps.Close()
		return nil, err
	}
	nd.plis = lis
	go func() { _ = ps.Serve(lis) }()
	devName := fmt.Sprintf("lg-dev-%d", i)
	dev, err := wire.DialProxyOpts(lis.Addr().String(), devName, wire.ClientOptions{Metrics: wm, Trace: collector})
	if err != nil {
		ps.Close()
		return nil, fmt.Errorf("device %d: %w", i, err)
	}
	dev.RegisterMetrics(reg, devName)
	nd.dev = dev
	if err := dev.Subscribe(topic, pol); err != nil {
		_ = dev.Close()
		ps.Close()
		return nil, fmt.Errorf("subscribe %d: %w", i, err)
	}
	return nd, nil
}

// newHostNode attaches one device session to the shared multi-tenant
// host instead of spinning up a dedicated proxy.
func newHostNode(hostAddr string, i int, topic string, pol wire.TopicPolicy, reg *obs.Registry, wm *wire.Metrics, collector *trace.Collector) (*node, error) {
	devName := fmt.Sprintf("lg-dev-%d", i)
	dev, err := wire.DialProxyOpts(hostAddr, devName, wire.ClientOptions{Metrics: wm, Trace: collector})
	if err != nil {
		return nil, fmt.Errorf("device %d: %w", i, err)
	}
	dev.RegisterMetrics(reg, devName)
	nd := &node{dev: dev, topic: topic}
	if err := dev.Subscribe(topic, pol); err != nil {
		_ = dev.Close()
		return nil, fmt.Errorf("subscribe %d: %w", i, err)
	}
	return nd, nil
}

// awaitDeliveries blocks until every device holds its expected volume. For
// on-line topics pushes arrive on their own; on-demand devices issue READ
// requests until they have consumed everything.
func awaitDeliveries(nodes []*node, cfg Config, deadline time.Time, latency *obs.Histogram) (int, error) {
	if cfg.OnDemand {
		total := 0
		for _, nd := range nodes {
			got := 0
			for got < nd.expect {
				if time.Now().After(deadline) {
					return total + got, fmt.Errorf("timeout: device read %d of %d", got, nd.expect)
				}
				batch, err := nd.dev.Read(nd.topic, 0)
				if err != nil {
					return total + got, err
				}
				for _, n := range batch {
					latency.Observe(time.Since(n.Published).Seconds())
				}
				got += len(batch)
				if len(batch) == 0 {
					time.Sleep(5 * time.Millisecond)
				}
			}
			total += got
		}
		return total, nil
	}
	for {
		total := 0
		done := true
		for _, nd := range nodes {
			received, _, _ := nd.dev.Stats()
			total += received
			if received < nd.expect {
				done = false
			}
		}
		if done {
			return total, nil
		}
		if time.Now().After(deadline) {
			return total, fmt.Errorf("timeout: %d deliveries outstanding", expectedTotal(nodes)-total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func expectedTotal(nodes []*node) int {
	total := 0
	for _, nd := range nodes {
		total += nd.expect
	}
	return total
}
