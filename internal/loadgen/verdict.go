package loadgen

import (
	"fmt"

	"lasthop/internal/trace"
)

// Budget declares the trace-outcome envelope a scenario must stay inside.
// It is evaluated against the report's collector accounting (every atlas
// scenario samples at 100%), so each ceiling is a statement about every
// notification the run published, not a statistical estimate. The zero
// value is the strictest budget: nothing lost, nothing wasted, nothing
// duplicated.
type Budget struct {
	// MaxLost bounds the "lost" terminal outcome. The atlas pins this at
	// zero everywhere: a scenario that loses a notification has found a
	// bug, never acceptable load-shedding.
	MaxLost int `json:"maxLost"`
	// MaxDuplicates bounds device-observed duplicate deliveries (a push
	// or read of an ID the device already held or consumed).
	MaxDuplicates int `json:"maxDuplicates"`
	// MaxWastePct bounds §3.1 waste among sampled traces: transfers the
	// user never read, as a percentage of all last-hop transfers.
	MaxWastePct float64 `json:"maxWastePct"`
	// MinReadPct, when positive, requires at least this percentage of
	// sampled traces to terminate in a user read — a floor that catches a
	// scenario quietly delivering nothing while "losing" nothing.
	MinReadPct float64 `json:"minReadPct,omitempty"`
	// MinExpiredPct, when positive, requires at least this percentage of
	// sampled traces to retire before transfer. The rank-storm scenario
	// uses it to prove retractions actually drove the delay stage.
	MinExpiredPct float64 `json:"minExpiredPct,omitempty"`
	// HopP99Ms bounds the per-hop p99 latency (milliseconds) for the
	// named segments of the delivery path ("broker", "proxyQueue",
	// "lastHop"). A listed segment with no observations fails the budget.
	HopP99Ms map[string]float64 `json:"hopP99Ms,omitempty"`
	// MinDeliverPerSec, when positive, is a throughput floor on the run's
	// end-to-end delivery rate (distinct deliveries / elapsed seconds).
	// The flash-crowd scenario pins it so a datapath regression that
	// serializes the burst — even one that loses nothing — fails loudly.
	MinDeliverPerSec float64 `json:"minDeliverPerSec,omitempty"`
	// CapPerDevice, when positive, is the scenario's daily on-line cap:
	// after the quiet-window release the runner asserts, from the trace
	// timelines, that each session charged exactly
	// min(cap, published-to-its-topic) on-line deliveries against the cap
	// and staged the rest.
	CapPerDevice int `json:"capPerDevice,omitempty"`
}

// Verdict is the machine-readable outcome of one scenario run: the budget
// comparison plus the numbers it was computed from. scripts/check_scenarios.sh
// archives these as the CI artifact.
type Verdict struct {
	Scenario string `json:"scenario"`
	Pass     bool   `json:"pass"`
	// Failures lists every budget violation; empty when Pass.
	Failures []string `json:"failures,omitempty"`

	Sampled    uint64             `json:"sampled"`
	Outcomes   map[string]uint64  `json:"outcomes"`
	Lost       uint64             `json:"lost"`
	WastePct   float64            `json:"wastePct"`
	Duplicates int                `json:"duplicates"`
	Delivered  int                `json:"delivered"`
	// DeliverPerSec is the measured end-to-end delivery rate, recorded
	// whenever the report carries one so throughput trends survive in the
	// archived verdicts even without a MinDeliverPerSec floor.
	DeliverPerSec float64            `json:"deliverPerSec,omitempty"`
	HopP99Ms      map[string]float64 `json:"hopP99Ms,omitempty"`
	// Hops carries the measured per-hop latency quantiles for every
	// observed segment — the actuals behind the pass/fail, present even
	// when the budget names no hop, so a regression that stays inside
	// the envelope is still visible in the archived verdict.
	Hops           map[string]HopQuantiles `json:"hops,omitempty"`
	ElapsedSeconds float64                 `json:"elapsedSeconds"`
}

// Evaluate compares a finished report against the budget. extra carries
// runner-side failures the report cannot express (cap assertions, drain
// errors); they fail the verdict like any budget violation.
func (b Budget) Evaluate(scenario string, rep *Report, extra []string) Verdict {
	v := Verdict{
		Scenario:   scenario,
		Sampled:    rep.TraceSampled,
		Outcomes:   rep.TraceOutcomes,
		Lost:       rep.TraceOutcomes[string(trace.OutcomeLost)],
		WastePct:   rep.WastePct,
		Duplicates: rep.Duplicates,
		Delivered:  rep.Delivered,
		Failures:   append([]string(nil), extra...),
	}
	v.DeliverPerSec = rep.DeliverPerSec
	if len(rep.HopLatencyMs) > 0 {
		v.Hops = make(map[string]HopQuantiles, len(rep.HopLatencyMs))
		for hop, q := range rep.HopLatencyMs {
			v.Hops[hop] = q
		}
	}
	fail := func(format string, args ...any) {
		v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
	}
	if rep.TraceConservation != "" {
		fail("trace conservation violated: %s", rep.TraceConservation)
	}
	if v.Lost > uint64(b.MaxLost) {
		fail("lost %d notifications, budget %d", v.Lost, b.MaxLost)
	}
	if v.Duplicates > b.MaxDuplicates {
		fail("%d duplicate deliveries, budget %d", v.Duplicates, b.MaxDuplicates)
	}
	if v.WastePct > b.MaxWastePct {
		fail("waste %.2f%%, budget %.2f%%", v.WastePct, b.MaxWastePct)
	}
	if v.Sampled > 0 {
		readPct := float64(rep.TraceOutcomes[string(trace.OutcomeRead)]) / float64(v.Sampled) * 100
		if b.MinReadPct > 0 && readPct < b.MinReadPct {
			fail("only %.1f%% of traces read, floor %.1f%%", readPct, b.MinReadPct)
		}
		expPct := float64(rep.TraceOutcomes[string(trace.OutcomeExpired)]) / float64(v.Sampled) * 100
		if b.MinExpiredPct > 0 && expPct < b.MinExpiredPct {
			fail("only %.1f%% of traces expired pre-transfer, floor %.1f%%", expPct, b.MinExpiredPct)
		}
	}
	if b.MinDeliverPerSec > 0 && rep.DeliverPerSec < b.MinDeliverPerSec {
		fail("delivered %.0f/s end to end, floor %.0f/s", rep.DeliverPerSec, b.MinDeliverPerSec)
	}
	if len(b.HopP99Ms) > 0 {
		v.HopP99Ms = make(map[string]float64, len(b.HopP99Ms))
		for hop, limit := range b.HopP99Ms {
			q, ok := rep.HopLatencyMs[hop]
			if !ok || q.N == 0 {
				fail("hop %q has no latency observations", hop)
				continue
			}
			v.HopP99Ms[hop] = q.P99
			if q.P99 > limit {
				fail("hop %q p99 %.1fms, budget %.1fms", hop, q.P99, limit)
			}
		}
	}
	v.Pass = len(v.Failures) == 0
	return v
}

// finishTraces folds the collector's terminal accounting into the report:
// the outcome tally, §3.1 waste among the sampled traces, the per-hop
// latency decomposition, and the conservation check (with full sampling,
// every sampled notification must map to exactly one terminal outcome —
// a mismatch is reported, never papered over). Call after FinishActive.
func finishTraces(rep *Report, collector *trace.Collector) {
	if collector == nil {
		return
	}
	st := collector.Stats()
	rep.TraceSampled = st.Sampled
	rep.TraceOutcomes = make(map[string]uint64, len(st.Outcomes))
	var total uint64
	for o, c := range st.Outcomes {
		rep.TraceOutcomes[string(o)] = c
		total += c
	}
	if read, wasted := st.Outcomes[trace.OutcomeRead], st.Outcomes[trace.OutcomeWasted]; read+wasted > 0 {
		rep.WastePct = float64(wasted) / float64(read+wasted) * 100
	}
	switch {
	case st.Outcomes[trace.Outcome("")] > 0:
		rep.TraceConservation = fmt.Sprintf("%d traces completed without a terminal outcome", st.Outcomes[trace.Outcome("")])
	case rep.Config.TraceSample >= 1 && total != st.Sampled:
		// Below full sampling, anomaly-opened traces make the comparison
		// meaningless; at 100% the books must balance exactly.
		rep.TraceConservation = fmt.Sprintf("outcomes cover %d traces, sampled %d", total, st.Sampled)
	}
	rep.HopLatencyMs = hopSummary(collector.Completed())
	rep.Collector = collector
}
