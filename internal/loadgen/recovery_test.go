package loadgen

import (
	"testing"
	"time"
)

// TestRunRecovery drives the full kill/restart drill at smoke scale:
// subscribe-and-disconnect, publish into hibernated sessions, SIGKILL
// the host, restart on the same spool, publish more, drain. The gate is
// the drill's own: every session recovered, zero lost, duplicates
// tallied.
func TestRunRecovery(t *testing.T) {
	rep, err := RunRecovery(Config{
		Publishers:    2,
		Devices:       12,
		Topics:        4,
		Notifications: 120,
		PayloadBytes:  48,
		Concurrent:    3,
		SpoolDir:      t.TempDir(),
		TraceSample:   1.0,
		Timeout:       60 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 12 {
		t.Fatalf("recovered %d sessions, want 12", rep.Recovered)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d notifications across the kill, want 0", rep.Lost)
	}
	// 120 notifications over 4 topics = 30 per topic; 12 devices = 3
	// subscribers per topic: 360 distinct deliveries owed.
	if rep.Delivered != 360 {
		t.Fatalf("delivered %d, want 360", rep.Delivered)
	}
	if got := rep.TraceOutcomes["lost"]; got != 0 {
		t.Fatalf("trace outcomes report %d lost: %v", got, rep.TraceOutcomes)
	}
	if rep.Duplicates > rep.Delivered {
		t.Fatalf("unbounded duplicates: %d for %d deliveries", rep.Duplicates, rep.Delivered)
	}
}
