package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lasthop/internal/trace"
)

func TestRunOnline(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       3,
		Topics:        2,
		Notifications: 60,
		PayloadBytes:  64,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published != 60 {
		t.Fatalf("published %d, want 60", rep.Published)
	}
	// Topic 0 gets 30 notifications and has two subscribers (devices 0
	// and 2); topic 1 gets 30 with one subscriber: 90 deliveries.
	if rep.Delivered != 90 {
		t.Fatalf("delivered %d, want 90", rep.Delivered)
	}
	if rep.PublishPerSec <= 0 || rep.DeliverPerSec <= 0 {
		t.Fatalf("rates not computed: %+v", rep)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency quantiles not computed: p50=%v p95=%v p99=%v",
			rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	}
	// The report samples pool residency after teardown drains, so a clean
	// run must account for every checked-out notification.
	if rep.PoolOutstanding != 0 {
		t.Fatalf("post-drain pool outstanding %d, want 0", rep.PoolOutstanding)
	}
	if rep.Config.PublishWindow < 1 {
		t.Fatalf("publish window %d not resolved in report config", rep.Config.PublishWindow)
	}
}

// TestRunObsEndpoint drives a run with the observability endpoint enabled
// and scrapes /metrics concurrently with the traffic (run under -race this
// doubles as the data-race check on every instrumented hot path). The
// final scrape must carry the core per-topic families, the wire frame and
// batch-size families, the pubsub publish counters, and the loadgen
// latency histogram.
func TestRunObsEndpoint(t *testing.T) {
	cfg := Config{
		Publishers:    2,
		Devices:       2,
		Topics:        2,
		Notifications: 200,
		PayloadBytes:  32,
		// Fixed port so the scrapers know the address before Run binds it;
		// they retry until it comes up.
		ObsAddr: "127.0.0.1:17479",
		Timeout: 30 * time.Second,
	}

	stop := make(chan struct{})
	var swg sync.WaitGroup
	for i := 0; i < 4; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + cfg.ObsAddr + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	cfg.Linger = 250 * time.Millisecond
	var (
		body string
		lerr error
		lwg  sync.WaitGroup
	)
	lwg.Add(1)
	go func() {
		// One scrape taken while the topology is still alive (the run
		// lingers past the last delivery) feeds the family assertions.
		defer lwg.Done()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + cfg.ObsAddr + "/metrics")
			if err != nil {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			b, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err == nil && strings.Contains(string(b), "lasthop_loadgen_delivery_latency_seconds_count") &&
				!strings.Contains(string(b), "lasthop_loadgen_delivery_latency_seconds_count 0\n") {
				body, lerr = string(b), nil
				return
			}
			lerr = fmt.Errorf("scrape incomplete")
			time.Sleep(5 * time.Millisecond)
		}
	}()

	rep, err := Run(cfg)
	close(stop)
	swg.Wait()
	lwg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", rep)
	}
	if lerr != nil || body == "" {
		t.Fatalf("no complete scrape captured: %v", lerr)
	}
	for _, family := range []string{
		"lasthop_core_topic_queue_depth",
		"lasthop_core_topic_prefetch_limit",
		"lasthop_core_forwards_total",
		"lasthop_core_reads_total",
		"lasthop_core_waste_pct",
		"lasthop_core_conservation_violations_total",
		"lasthop_pubsub_publishes_total",
		"lasthop_pubsub_fanout_width_bucket",
		"lasthop_pubsub_seen_ids",
		"lasthop_wire_frames_out_total",
		"lasthop_wire_batch_size_bucket",
		"lasthop_wire_flush_frames_bucket",
		"lasthop_loadgen_delivery_latency_seconds_bucket",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
}

func TestRunOnDemand(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       2,
		Notifications: 40,
		OnDemand:      true,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 40 {
		t.Fatalf("delivered %d, want 40", rep.Delivered)
	}
}

// TestRunTraced drives a fully-sampled run and checks the tentpole
// invariant: every sampled notification is attributed to exactly one
// terminal outcome with a complete causal timeline, and the report carries
// per-hop latency quantiles.
func TestRunTraced(t *testing.T) {
	const n = 80
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       2,
		Topics:        2,
		Notifications: n,
		OnDemand:      true,
		TraceSample:   1,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceSampled != n {
		t.Fatalf("sampled %d traces, want %d", rep.TraceSampled, n)
	}
	var completed uint64
	for outcome, count := range rep.TraceOutcomes {
		if outcome == "" {
			t.Errorf("%d traces completed without an outcome", count)
		}
		completed += count
	}
	if completed != n {
		t.Fatalf("outcomes cover %d traces, want %d: %v", completed, n, rep.TraceOutcomes)
	}
	// A clean fully-sampled run must never report a conservation
	// violation, and the waste accounting must be a valid percentage.
	if rep.TraceConservation != "" {
		t.Fatalf("clean run reported a conservation violation: %s", rep.TraceConservation)
	}
	if rep.WastePct < 0 || rep.WastePct > 100 {
		t.Fatalf("waste %.2f%% out of range", rep.WastePct)
	}
	if rep.Collector == nil {
		t.Fatal("report carries no collector")
	}
	if st := rep.Collector.Stats(); st.Active != 0 {
		t.Fatalf("%d traces still active after the run", st.Active)
	}
	for _, nt := range rep.Collector.Completed() {
		if nt.Outcome == "" {
			t.Fatalf("trace %s has no terminal outcome", nt.TraceID)
		}
		if len(nt.Events) < 2 {
			t.Errorf("trace %s timeline too short: %d events", nt.TraceID, len(nt.Events))
		}
		if nt.Events[0].Kind != trace.KindPublish {
			t.Errorf("trace %s does not start at publish accept: %s", nt.TraceID, nt.Events[0].Kind)
		}
	}
	for _, hop := range []string{"broker", "proxyQueue", "lastHop"} {
		q, ok := rep.HopLatencyMs[hop]
		if !ok || q.N == 0 {
			t.Errorf("per-hop latency missing segment %s: %+v", hop, rep.HopLatencyMs)
			continue
		}
		if q.P50 < 0 || q.P99 < q.P50 {
			t.Errorf("segment %s quantiles inconsistent: %+v", hop, q)
		}
	}
}

// TestRunMultiTenant runs the same on-line load through one shared host
// instead of per-device proxies: deliveries must be exactly-once across
// the fan-out (Duplicates == 0) and volume-complete.
func TestRunMultiTenant(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       12,
		Topics:        4,
		Notifications: 120,
		PayloadBytes:  64,
		MultiTenant:   true,
		HostWorkers:   4,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 120 notifications over 4 topics = 30 each; 12 devices, 3 per topic:
	// 360 deliveries.
	if rep.Delivered != 360 {
		t.Fatalf("delivered %d, want 360", rep.Delivered)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate deliveries through the host", rep.Duplicates)
	}
	if rep.LatencyP50Ms <= 0 {
		t.Fatalf("latency quantiles not computed: %+v", rep)
	}
	// The host fan-out splits copy-on-write broadcast groups; teardown
	// must release every member and the shared owner notes alike.
	if rep.PoolOutstanding != 0 {
		t.Fatalf("post-drain pool outstanding %d, want 0", rep.PoolOutstanding)
	}
}

// TestRunBoundedHistory runs the multi-tenant fan-out with a small
// per-subscription history bound: steady-state eviction must recycle
// delivered notifications back through the burst pool WITHOUT losing or
// duplicating anything — eviction only ever touches notes that already
// made it onto the wire (on-line forwarding encodes into the egress ring
// synchronously at arrival), so delivery conservation is the gate.
func TestRunBoundedHistory(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       8,
		Topics:        2,
		Notifications: 600,
		PayloadBytes:  64,
		MultiTenant:   true,
		HostWorkers:   4,
		HistoryLimit:  8,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 600 notifications over 2 topics = 300 each; 8 devices, 4 per topic:
	// 2400 deliveries.
	if rep.Delivered != 2400 {
		t.Fatalf("delivered %d, want 2400", rep.Delivered)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate deliveries with bounded history", rep.Duplicates)
	}
	if rep.PoolOutstanding != 0 {
		t.Fatalf("post-drain pool outstanding %d, want 0", rep.PoolOutstanding)
	}
	// With eviction recycling mid-run, the pool must serve at least SOME
	// gets from the free list (the exact rate is volume- and GC-dependent;
	// bench_pr10.sh gates the >=0.9 steady-state floor at full volume).
	if rep.PoolHitRate <= 0 || rep.PoolHitRate > 1 {
		t.Fatalf("pool hit rate %v outside (0, 1]", rep.PoolHitRate)
	}
	if rep.Config.HistoryLimit != 8 {
		t.Fatalf("history limit %d not carried into the report config", rep.Config.HistoryLimit)
	}
}

// TestRunMultiTenantOnDemand checks §3.5 READs work through the shared
// host path as well.
func TestRunMultiTenantOnDemand(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    1,
		Devices:       4,
		Topics:        4,
		Notifications: 40,
		OnDemand:      true,
		MultiTenant:   true,
		HostWorkers:   2,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 40 {
		t.Fatalf("delivered %d, want 40", rep.Delivered)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate deliveries", rep.Duplicates)
	}
}
