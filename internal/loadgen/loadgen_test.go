package loadgen

import (
	"testing"
	"time"
)

func TestRunOnline(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       3,
		Topics:        2,
		Notifications: 60,
		PayloadBytes:  64,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published != 60 {
		t.Fatalf("published %d, want 60", rep.Published)
	}
	// Topic 0 gets 30 notifications and has two subscribers (devices 0
	// and 2); topic 1 gets 30 with one subscriber: 90 deliveries.
	if rep.Delivered != 90 {
		t.Fatalf("delivered %d, want 90", rep.Delivered)
	}
	if rep.PublishPerSec <= 0 || rep.DeliverPerSec <= 0 {
		t.Fatalf("rates not computed: %+v", rep)
	}
}

func TestRunOnDemand(t *testing.T) {
	rep, err := Run(Config{
		Publishers:    2,
		Devices:       2,
		Notifications: 40,
		OnDemand:      true,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 40 {
		t.Fatalf("delivered %d, want 40", rep.Delivered)
	}
}
