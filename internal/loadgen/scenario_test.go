package loadgen

import (
	"strings"
	"testing"
	"time"

	"lasthop/internal/trace"
)

// runAtlasScenario executes one atlas entry at CI scale and applies the
// conservation oracle every scenario must satisfy regardless of its own
// budget: the verdict passes, every sampled trace reached exactly one
// terminal outcome, and the waste accounting is well-formed.
func runAtlasScenario(t *testing.T, name string) *Report {
	t.Helper()
	sc, err := FindScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		// The budget's throughput floor is a wall-clock gate; under the
		// race detector's slowdown it measures the instrumentation, not
		// the datapath. The non-race scenario-smoke CI job
		// (scripts/check_scenarios.sh) gates it.
		sc.Budget.MinDeliverPerSec = 0
	}
	rep, err := RunScenario(sc, ScenarioOptions{Timeout: 90 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	v := rep.Verdict
	if v == nil {
		t.Fatalf("scenario %s: no verdict on the report", name)
	}
	if !v.Pass {
		t.Errorf("scenario %s verdict failed:\n  %s", name, strings.Join(v.Failures, "\n  "))
	}

	// Conservation under churn: with 100%% sampling the outcome tally
	// must cover every sampled notification exactly once — reconnects,
	// remaps, and partitions may shuffle *which* outcome, never the sum.
	if rep.TraceConservation != "" {
		t.Errorf("scenario %s: conservation violated: %s", name, rep.TraceConservation)
	}
	var total uint64
	for o, c := range rep.TraceOutcomes {
		if o == "" {
			t.Errorf("scenario %s: %d traces completed without a terminal outcome", name, c)
		}
		total += c
	}
	if total != rep.TraceSampled {
		t.Errorf("scenario %s: outcomes cover %d traces, sampled %d", name, total, rep.TraceSampled)
	}
	if uint64(rep.Published) != rep.TraceSampled {
		t.Errorf("scenario %s: published %d but sampled %d", name, rep.Published, rep.TraceSampled)
	}
	if rep.WastePct < 0 || rep.WastePct > 100 {
		t.Errorf("scenario %s: waste %.2f%% out of range", name, rep.WastePct)
	}
	if st := rep.Collector.Stats(); st.Active != 0 {
		t.Errorf("scenario %s: %d traces still active after FinishActive", name, st.Active)
	}
	return rep
}

func TestScenarioFlashCrowd(t *testing.T) {
	rep := runAtlasScenario(t, "flash-crowd")
	if rep.Verdict.Lost != 0 {
		t.Errorf("flash crowd lost %d notifications", rep.Verdict.Lost)
	}
}

func TestScenarioMassReconnect(t *testing.T) {
	rep := runAtlasScenario(t, "mass-reconnect")
	// The herd must exercise the machinery it exists to stress.
	if got := rep.Collector.Stats(); got.Sampled == 0 {
		t.Fatal("mass reconnect sampled nothing")
	}
}

func TestScenarioRankStorm(t *testing.T) {
	rep := runAtlasScenario(t, "rank-storm")
	if rep.TraceOutcomes[string(trace.OutcomeExpired)] == 0 {
		t.Error("rank storm retired nothing: revisions never reached the delay stage")
	}
}

func TestScenarioRemapChurn(t *testing.T) {
	runAtlasScenario(t, "remap-churn")
}

// quiet-flood is exercised by scripts/check_scenarios.sh: its release
// waits for a real wall-clock minute boundary (up to ~80s), too slow for
// the unit suite.

// TestBudgetEvaluate drives the verdict arithmetic on synthetic reports,
// one violation per case.
func TestBudgetEvaluate(t *testing.T) {
	base := func() *Report {
		return &Report{
			Config:       Config{TraceSample: 1},
			TraceSampled: 100,
			TraceOutcomes: map[string]uint64{
				string(trace.OutcomeRead):   90,
				string(trace.OutcomeWasted): 10,
			},
			WastePct:     10,
			Duplicates:   2,
			HopLatencyMs: map[string]HopQuantiles{"lastHop": {N: 100, P99: 40}},
		}
	}
	cases := []struct {
		name   string
		budget Budget
		mutate func(*Report)
		extra  []string
		want   string // substring of the sole expected failure; "" = pass
	}{
		{
			name:   "pass",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15, MinReadPct: 80, HopP99Ms: map[string]float64{"lastHop": 50}},
		},
		{
			name:   "lost over budget",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15},
			mutate: func(r *Report) { r.TraceOutcomes[string(trace.OutcomeLost)] = 3 },
			want:   "lost 3 notifications, budget 0",
		},
		{
			name:   "duplicates over budget",
			budget: Budget{MaxDuplicates: 1, MaxWastePct: 15},
			want:   "2 duplicate deliveries, budget 1",
		},
		{
			name:   "waste over budget",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 5},
			want:   "waste 10.00%, budget 5.00%",
		},
		{
			name:   "read floor",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15, MinReadPct: 95},
			want:   "only 90.0% of traces read",
		},
		{
			name:   "expired floor",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15, MinExpiredPct: 20},
			want:   "only 0.0% of traces expired",
		},
		{
			name:   "hop over budget",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15, HopP99Ms: map[string]float64{"lastHop": 10}},
			want:   `hop "lastHop" p99 40.0ms, budget 10.0ms`,
		},
		{
			name:   "hop unobserved",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15, HopP99Ms: map[string]float64{"proxyQueue": 10}},
			want:   `hop "proxyQueue" has no latency observations`,
		},
		{
			name:   "conservation violation",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15},
			mutate: func(r *Report) { r.TraceConservation = "outcomes cover 99 traces, sampled 100" },
			want:   "trace conservation violated",
		},
		{
			name:   "runner-side failure",
			budget: Budget{MaxDuplicates: 5, MaxWastePct: 15},
			extra:  []string{"device sc-dev-3 received 4 on-line pushes after the quiet release, want 3 (cap 3)"},
			want:   "device sc-dev-3 received 4",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base()
			if tc.mutate != nil {
				tc.mutate(rep)
			}
			v := tc.budget.Evaluate("synthetic", rep, tc.extra)
			if tc.want == "" {
				if !v.Pass {
					t.Fatalf("want pass, got failures %v", v.Failures)
				}
				return
			}
			if v.Pass {
				t.Fatalf("want failure %q, got pass", tc.want)
			}
			if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], tc.want) {
				t.Fatalf("want sole failure containing %q, got %v", tc.want, v.Failures)
			}
		})
	}
}

// TestAtlasWellFormed keeps every atlas entry self-consistent without
// running it: unique names, a documented failure mode, a zero lost
// budget, and at least one publishing phase.
func TestAtlasWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Atlas() {
		if sc.Name == "" || seen[sc.Name] {
			t.Errorf("scenario name %q empty or duplicated", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Description == "" || sc.FailureMode == "" {
			t.Errorf("scenario %s: missing description or failure mode", sc.Name)
		}
		if sc.Budget.MaxLost != 0 {
			t.Errorf("scenario %s: MaxLost %d — the atlas never budgets for loss", sc.Name, sc.Budget.MaxLost)
		}
		if sc.Devices < 1 || sc.Topics < 1 || len(sc.Phases) == 0 {
			t.Errorf("scenario %s: degenerate shape", sc.Name)
		}
		published := false
		for _, ph := range sc.Phases {
			if ph.PublishMean > 0 {
				published = true
			}
		}
		if !published {
			t.Errorf("scenario %s: no phase publishes anything", sc.Name)
		}
		if _, err := FindScenario(sc.Name); err != nil {
			t.Errorf("FindScenario(%s): %v", sc.Name, err)
		}
	}
}
