package loadgen

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"lasthop/internal/flight"
	"lasthop/internal/host"
	"lasthop/internal/metrics"
	"lasthop/internal/msg"
	"lasthop/internal/obs"
	"lasthop/internal/pubsub"
	"lasthop/internal/spool"
	"lasthop/internal/trace"
	"lasthop/internal/wire"
)

// hostOptions translates the loadgen spool knobs into host.Options,
// validating the fsync policy string.
func (c Config) hostOptions(brokerAddr string, wm *wire.Metrics, collector *trace.Collector) (host.Options, error) {
	fsync, err := spool.ParseFsyncPolicy(c.SpoolFsync)
	if err != nil {
		return host.Options{}, err
	}
	return host.Options{
		BrokerAddr:       brokerAddr,
		Name:             "lg-host",
		Workers:          c.HostWorkers,
		Metrics:          wm,
		Trace:            collector,
		Logf:             c.Logf,
		SpoolDir:         c.SpoolDir,
		HibernateAfter:   c.HibernateAfter,
		SpoolCommitEvery: c.SpoolCommitEvery,
		SpoolFsync:       fsync,
	}, nil
}

// RunRecovery is the kill/restart chaos drill behind
// scripts/check_recovery.sh. It drives the phased regime the spool
// exists for — a node carrying far more sessions than connections — and
// proves the zero-loss invariant across a crash:
//
//  1. Every device connects (at most Concurrent at once), subscribes to
//     a pure on-demand topic, and disconnects; the host hibernates all
//     of them onto the spool.
//  2. Half the load is published into hibernated sessions; the drill
//     waits until every copy is a durable spool delta.
//  3. The host is killed abruptly (no shutdown path runs) and restarted
//     on the same spool; every session must come back.
//  4. The remaining load is published into the recovered sessions.
//  5. Devices reconnect in Concurrent-sized waves and read; the report
//     gates on every device holding every distinct ID it was owed
//     (Lost == 0), with duplicates tallied but tolerated.
//
// Topics are pure on-demand so nothing transfers to a device before its
// READ — the regime where the spool chain, not device-side state, is the
// sole copy across the kill.
func RunRecovery(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	cfg.MultiTenant = true
	cfg.OnDemand = true
	if cfg.HibernateAfter <= 0 {
		cfg.HibernateAfter = 100 * time.Millisecond
	}
	if cfg.SpoolCommitEvery <= 0 {
		cfg.SpoolCommitEvery = 20 * time.Millisecond
	}
	if cfg.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "lasthop-spool-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.SpoolDir = dir
	}
	concurrent := cfg.Concurrent
	if concurrent <= 0 {
		concurrent = cfg.Devices / 20
	}
	if concurrent < 1 {
		concurrent = 1
	}
	if concurrent > 256 {
		concurrent = 256
	}
	deadline := time.Now().Add(cfg.Timeout)

	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	metrics.Register(reg)
	wm := wire.NewMetrics(reg)
	latency := reg.Histogram("lasthop_loadgen_delivery_latency_seconds",
		"End-to-end delivery latency from publish to user read.",
		obs.LatencyBuckets())

	var collector *trace.Collector
	if cfg.TraceSample > 0 {
		ring := cfg.TraceRing
		if ring <= 0 {
			ring = cfg.Notifications + 16
		}
		collector = trace.NewCollector("loadgen", trace.NewSampler(cfg.TraceSample), ring)
		collector.RegisterMetrics(reg)
	}
	if cfg.ObsAddr != "" {
		srv, err := obs.Serve(cfg.ObsAddr, reg,
			obs.Route{Pattern: "/debug/traces", Handler: collector.Handler()})
		if err != nil {
			return nil, fmt.Errorf("obs endpoint: %w", err)
		}
		defer func() { _ = srv.Close() }()
		cfg.Logf("loadgen: observability on http://%s/metrics", srv.Addr())
	}

	// The broker outlives the host kill: only the last-hop node crashes.
	blis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	broker := pubsub.NewBroker("loadgen")
	broker.RegisterMetrics(reg)
	if collector != nil {
		broker.SetTracer(collector)
	}
	bs := wire.NewBrokerServerOpts(broker, wire.ServerOptions{Metrics: wm})
	go func() { _ = bs.Serve(blis) }()
	defer bs.Close()
	brokerAddr := blis.Addr().String()

	hostOpts, err := cfg.hostOptions(brokerAddr, wm, collector)
	if err != nil {
		return nil, err
	}
	h, hostAddr, err := startHost(hostOpts)
	if err != nil {
		return nil, err
	}
	alive := h
	defer func() {
		if alive != nil {
			alive.Close()
		}
	}()
	h.RegisterMetrics(reg, "lg-host")

	topics := make([]string, cfg.Topics)
	for i := range topics {
		topics[i] = fmt.Sprintf("load/t%03d", i)
	}
	// Notification i goes to topic i mod Topics; device i subscribes to
	// topic i mod Topics. subsPerTopic lets the drill convert "published
	// n into topic t" into an exact expected spool-delta count.
	subsPerTopic := make([]int, cfg.Topics)
	for i := 0; i < cfg.Devices; i++ {
		subsPerTopic[i%cfg.Topics]++
	}
	perTopicTotal := make([]int, cfg.Topics)
	for i := 0; i < cfg.Notifications; i++ {
		perTopicTotal[i%cfg.Topics]++
	}

	// Pure on-demand: the session queues everything until a READ, so the
	// spool snapshot/delta chain is the only copy while disconnected.
	policy := wire.TopicPolicy{Mode: "on-demand", Policy: "on-demand"}

	// Phase 1: subscribe-and-disconnect waves.
	cfg.Logf("loadgen: phase 1: subscribing %d sessions, %d connected at a time", cfg.Devices, concurrent)
	start := time.Now()
	if err := inWaves(cfg.Devices, concurrent, func(i int) error {
		dev, err := wire.DialProxyOpts(hostAddr, fmt.Sprintf("lg-dev-%d", i), wire.ClientOptions{Metrics: wm, Trace: collector})
		if err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
		defer dev.Close()
		if err := dev.Subscribe(topics[i%cfg.Topics], policy); err != nil {
			return fmt.Errorf("subscribe %d: %w", i, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := waitUntil(deadline, "all sessions hibernated", func() bool {
		return h.Lifecycle().Hibernated >= cfg.Devices
	}); err != nil {
		return nil, err
	}
	cfg.Logf("loadgen: phase 1: %d sessions hibernated onto %s", cfg.Devices, cfg.SpoolDir)

	pubs, closePubs, err := dialPublishers(cfg, brokerAddr, wm, topics)
	if err != nil {
		return nil, err
	}
	defer closePubs()

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	// Phase 2: first half of the load lands in hibernated sessions.
	firstHalf := cfg.Notifications / 2
	wantDeltas := 0
	for i := 0; i < firstHalf; i++ {
		wantDeltas += subsPerTopic[i%cfg.Topics]
	}
	cfg.Logf("loadgen: phase 2: publishing %d notifications into hibernated sessions", firstHalf)
	if err := publishRange(cfg, pubs, topics, payload, 0, firstHalf); err != nil {
		return nil, err
	}
	if err := waitUntil(deadline, "first wave spooled", func() bool {
		return h.Lifecycle().SpooledDeltas >= int64(wantDeltas)
	}); err != nil {
		return nil, err
	}

	// Phase 3: crash. Kill drops every in-memory structure without
	// running any shutdown path; the restarted host must rebuild every
	// session and upstream subscription from the spool alone.
	cfg.Logf("loadgen: phase 3: killing host with %d deltas on disk", wantDeltas)
	h.Kill()
	h, hostAddr, err = startHost(hostOpts)
	if err != nil {
		return nil, fmt.Errorf("restart after kill: %w", err)
	}
	alive = h
	recovered := h.Lifecycle().Hibernated
	cfg.Logf("loadgen: phase 3: restarted, %d of %d sessions recovered", recovered, cfg.Devices)
	if recovered != cfg.Devices {
		return nil, fmt.Errorf("recovery: %d of %d sessions survived the kill", recovered, cfg.Devices)
	}

	// Phase 4: remaining load into the recovered sessions. The restarted
	// host's delta counter starts at zero.
	secondHalf := cfg.Notifications - firstHalf
	wantDeltas2 := 0
	for i := firstHalf; i < cfg.Notifications; i++ {
		wantDeltas2 += subsPerTopic[i%cfg.Topics]
	}
	cfg.Logf("loadgen: phase 4: publishing %d notifications into recovered sessions", secondHalf)
	if err := publishRange(cfg, pubs, topics, payload, firstHalf, cfg.Notifications); err != nil {
		return nil, err
	}
	if err := waitUntil(deadline, "second wave spooled", func() bool {
		return h.Lifecycle().SpooledDeltas >= int64(wantDeltas2)
	}); err != nil {
		return nil, err
	}
	publishElapsed := time.Since(start)

	// Phase 5: reconnect in waves and read everything back. Each device
	// is owed every notification of its topic, from both sides of the
	// kill; IDs are counted distinctly so redelivery shows up as
	// duplicates, not progress.
	cfg.Logf("loadgen: phase 5: draining %d sessions, %d connected at a time", cfg.Devices, concurrent)
	var (
		tallyMu    sync.Mutex
		delivered  int
		duplicates int
		lost       int
	)
	drainErr := inWaves(cfg.Devices, concurrent, func(i int) error {
		topic := topics[i%cfg.Topics]
		expect := perTopicTotal[i%cfg.Topics]
		dev, err := wire.DialProxyOpts(hostAddr, fmt.Sprintf("lg-dev-%d", i), wire.ClientOptions{Metrics: wm, Trace: collector})
		if err != nil {
			return fmt.Errorf("drain device %d: %w", i, err)
		}
		defer dev.Close()
		if err := dev.Subscribe(topic, policy); err != nil {
			return fmt.Errorf("drain subscribe %d: %w", i, err)
		}
		seen := make(map[msg.ID]bool, expect)
		dups := 0
		for len(seen) < expect && time.Now().Before(deadline) {
			batch, err := dev.Read(topic, 0)
			if err != nil {
				return fmt.Errorf("drain read %d: %w", i, err)
			}
			for _, n := range batch {
				if seen[n.ID] {
					dups++
					continue
				}
				seen[n.ID] = true
				latency.Observe(time.Since(n.Published).Seconds())
			}
			if len(batch) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
		tallyMu.Lock()
		delivered += len(seen)
		duplicates += dups
		lost += expect - len(seen)
		tallyMu.Unlock()
		if len(seen) < expect {
			return fmt.Errorf("device %d: read %d of %d before deadline", i, len(seen), expect)
		}
		return nil
	})
	deliverElapsed := time.Since(start)

	if collector != nil {
		collector.FinishActive(time.Now())
	}
	rep := &Report{
		Config:         cfg,
		Published:      cfg.Notifications,
		Delivered:      delivered,
		Duplicates:     duplicates,
		Recovered:      recovered,
		Lost:           lost,
		PublishSeconds: publishElapsed.Seconds(),
		DeliverSeconds: deliverElapsed.Seconds(),
		LatencyP50Ms:   latency.Quantile(0.50) * 1000,
		LatencyP95Ms:   latency.Quantile(0.95) * 1000,
		LatencyP99Ms:   latency.Quantile(0.99) * 1000,
	}
	if s := rep.PublishSeconds; s > 0 {
		rep.PublishPerSec = float64(rep.Published) / s
	}
	if s := rep.DeliverSeconds; s > 0 {
		rep.DeliverPerSec = float64(rep.Delivered) / s
	}
	finishTraces(rep, collector)
	if cfg.BundleDir != "" && (drainErr != nil || rep.Lost > 0 || rep.Recovered != cfg.Devices) {
		o := flight.BundleOptions{
			Dir:      cfg.BundleDir,
			Node:     "recovery-drill",
			Reason:   "recovery-failure",
			Recorder: flight.Active(),
			Metrics:  reg,
		}
		if collector != nil {
			o.Traces = collector
		}
		if p, berr := flight.WriteBundle(o); berr != nil {
			cfg.Logf("loadgen: flight bundle failed: %v", berr)
		} else {
			cfg.Logf("loadgen: recovery drill failed, flight bundle at %s", p)
		}
	}
	if drainErr == nil && cfg.Linger > 0 {
		cfg.Logf("loadgen: drill complete, lingering %v for scrapers", cfg.Linger)
		time.Sleep(cfg.Linger)
	}
	return rep, drainErr
}

// startHost boots a host on a fresh loopback listener and returns its
// dial address.
func startHost(opts host.Options) (*host.Host, string, error) {
	h, err := host.New(opts)
	if err != nil {
		return nil, "", fmt.Errorf("host: %w", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return nil, "", err
	}
	go func() { _ = h.Serve(lis) }()
	return h, lis.Addr().String(), nil
}

// dialPublishers connects the configured publisher pool, advertising
// every topic under the shared "loadgen" identity.
func dialPublishers(cfg Config, brokerAddr string, wm *wire.Metrics, topics []string) ([]*wire.BrokerClient, func(), error) {
	pubs := make([]*wire.BrokerClient, 0, cfg.Publishers)
	closeAll := func() {
		for _, p := range pubs {
			_ = p.Close()
		}
	}
	for i := 0; i < cfg.Publishers; i++ {
		pub, err := wire.DialBrokerOpts(brokerAddr, fmt.Sprintf("lg-pub-%d", i), wire.ClientOptions{Metrics: wm})
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("publisher %d: %w", i, err)
		}
		pubs = append(pubs, pub)
		for _, t := range topics {
			if err := pub.Advertise(t, "loadgen"); err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("advertise %s: %w", t, err)
			}
		}
	}
	return pubs, closeAll, nil
}

// publishRange pushes notifications [from, to) through the publisher
// pool, round-robin across topics exactly as Run does.
func publishRange(cfg Config, pubs []*wire.BrokerClient, topics []string, payload []byte, from, to int) error {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		pubErr error
		next   = make(chan int, len(pubs))
	)
	go func() {
		for i := from; i < to; i++ {
			next <- i
		}
		close(next)
	}()
	for _, pub := range pubs {
		wg.Add(1)
		go func(pub *wire.BrokerClient) {
			defer wg.Done()
			for i := range next {
				n := &msg.Notification{
					ID:        msg.ID(fmt.Sprintf("lg-%d", i)),
					Topic:     topics[i%len(topics)],
					Publisher: "loadgen",
					Rank:      float64(1 + i%5),
					Published: time.Now(),
					Payload:   payload,
				}
				if err := pub.Publish(n); err != nil {
					mu.Lock()
					if pubErr == nil {
						pubErr = fmt.Errorf("publish %s: %w", n.ID, err)
					}
					mu.Unlock()
					return
				}
			}
		}(pub)
	}
	wg.Wait()
	return pubErr
}

// inWaves runs fn(0..n-1) with at most width concurrent calls, stopping
// new work after the first error (in-flight calls finish).
func inWaves(n, width int, fn func(i int) error) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  = make(chan int, width)
	)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				stop := first != nil
				mu.Unlock()
				if stop {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(deadline time.Time, what string, cond func() bool) error {
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}
