// Package metrics defines the paper's two inefficiency metrics (§3.1) and
// the accounting identities the simulator's results must satisfy.
//
//   - Wasted messages were sent to the device but never read by the user.
//   - Lost messages would have been read under an on-line forwarding policy
//     (the best possible service) but never reached the user under the
//     policy in effect.
package metrics

import (
	"fmt"

	"lasthop/internal/msg"
)

// WastePct returns the percentage of forwarded messages that were never
// read. With nothing forwarded there is no waste.
func WastePct(forwarded, read int) float64 {
	if forwarded <= 0 {
		return 0
	}
	if read > forwarded {
		read = forwarded
	}
	return 100 * float64(forwarded-read) / float64(forwarded)
}

// LossPct returns the percentage of baseline-read messages the policy
// failed to deliver. With an empty baseline there is no loss.
func LossPct(baseline, policy msg.IDSet) float64 {
	if baseline.Len() == 0 {
		return 0
	}
	lost := baseline.Diff(policy).Len()
	return 100 * float64(lost) / float64(baseline.Len())
}

// Lost returns the set of baseline-read messages the policy never
// delivered to the user.
func Lost(baseline, policy msg.IDSet) msg.IDSet {
	return baseline.Diff(policy)
}

// Accounting ties together the per-run counters whose identities the
// simulator asserts after every run.
type Accounting struct {
	// Published counts notifications injected by the publisher.
	Published int
	// Forwarded counts distinct notifications transferred to the device.
	Forwarded int
	// Read counts distinct notifications the user consumed.
	Read int
	// ExpiredUnread counts notifications that expired on the device
	// before being read.
	ExpiredUnread int
	// EvictedStorage counts notifications evicted under storage
	// pressure.
	EvictedStorage int
	// RankDropped counts notifications discarded on the device after a
	// rank-drop signal.
	RankDropped int
	// ResidualQueue counts notifications still stored unread at the end
	// of the run.
	ResidualQueue int
}

// Check verifies the conservation identities:
//
//	Read <= Forwarded <= Published
//	Forwarded = Read + ExpiredUnread + EvictedStorage + RankDropped + ResidualQueue
//
// (every forwarded message is eventually read, expired, evicted, retracted,
// or still queued).
func (a Accounting) Check() error {
	if a.Read > a.Forwarded {
		return fmt.Errorf("read %d exceeds forwarded %d", a.Read, a.Forwarded)
	}
	if a.Forwarded > a.Published {
		return fmt.Errorf("forwarded %d exceeds published %d", a.Forwarded, a.Published)
	}
	sum := a.Read + a.ExpiredUnread + a.EvictedStorage + a.RankDropped + a.ResidualQueue
	if sum != a.Forwarded {
		return fmt.Errorf("forwarded %d != read %d + expired %d + evicted %d + dropped %d + residual %d",
			a.Forwarded, a.Read, a.ExpiredUnread, a.EvictedStorage, a.RankDropped, a.ResidualQueue)
	}
	return nil
}
