// Package metrics defines the paper's two inefficiency metrics (§3.1) and
// the accounting identities the simulator's results must satisfy.
//
//   - Wasted messages were sent to the device but never read by the user.
//   - Lost messages would have been read under an on-line forwarding policy
//     (the best possible service) but never reached the user under the
//     policy in effect.
package metrics

import (
	"fmt"
	"sync/atomic"

	"lasthop/internal/msg"
)

// ConservationError reports a waste computation whose inputs violate the
// Read <= Forwarded identity: the user cannot have read more than was
// transferred, so the caller's accounting is corrupt.
type ConservationError struct {
	Forwarded, Read int
}

// Error implements error.
func (e *ConservationError) Error() string {
	return fmt.Sprintf("conservation violation: read %d exceeds forwarded %d", e.Read, e.Forwarded)
}

// violations counts conservation violations observed by WastePct, exported
// to the obs layer so a live violation is visible on /metrics.
var violations atomic.Int64

// ViolationHook, when non-nil, is invoked on every conservation violation
// WastePct observes. Tests install a panic hook to fail loudly; daemons
// may log. It must be set before concurrent use.
var ViolationHook func(error)

// Violations returns the number of conservation violations observed by
// WastePct since process start.
func Violations() int64 { return violations.Load() }

// WastePct returns the percentage of forwarded messages that were never
// read. With nothing forwarded there is no waste. Inputs with read >
// forwarded violate conservation (§3.1: waste counts forwarded-but-unread
// messages, which cannot be negative); instead of silently clamping, the
// violation is counted, reported through ViolationHook, and the negative
// percentage is returned so the corruption stays visible. Callers that
// want the error itself use WastePctChecked.
func WastePct(forwarded, read int) float64 {
	v, err := WastePctChecked(forwarded, read)
	if err != nil {
		violations.Add(1)
		if h := ViolationHook; h != nil {
			h(err)
		}
	}
	return v
}

// WastePctChecked is WastePct returning a *ConservationError when read >
// forwarded, without touching the violation counter or hook. The returned
// value is the unclamped (negative) percentage.
func WastePctChecked(forwarded, read int) (float64, error) {
	if forwarded <= 0 {
		return 0, nil
	}
	pct := 100 * float64(forwarded-read) / float64(forwarded)
	if read > forwarded {
		return pct, &ConservationError{Forwarded: forwarded, Read: read}
	}
	return pct, nil
}

// LossPct returns the percentage of baseline-read messages the policy
// failed to deliver. With an empty baseline there is no loss.
func LossPct(baseline, policy msg.IDSet) float64 {
	if baseline.Len() == 0 {
		return 0
	}
	lost := baseline.Diff(policy).Len()
	return 100 * float64(lost) / float64(baseline.Len())
}

// Lost returns the set of baseline-read messages the policy never
// delivered to the user.
func Lost(baseline, policy msg.IDSet) msg.IDSet {
	return baseline.Diff(policy)
}

// Accounting ties together the per-run counters whose identities the
// simulator asserts after every run.
type Accounting struct {
	// Published counts notifications injected by the publisher.
	Published int
	// Forwarded counts distinct notifications transferred to the device.
	Forwarded int
	// Read counts distinct notifications the user consumed.
	Read int
	// ExpiredUnread counts notifications that expired on the device
	// before being read.
	ExpiredUnread int
	// EvictedStorage counts notifications evicted under storage
	// pressure.
	EvictedStorage int
	// RankDropped counts notifications discarded on the device after a
	// rank-drop signal.
	RankDropped int
	// ResidualQueue counts notifications still stored unread at the end
	// of the run.
	ResidualQueue int
}

// Check verifies the conservation identities:
//
//	Read <= Forwarded <= Published
//	Forwarded = Read + ExpiredUnread + EvictedStorage + RankDropped + ResidualQueue
//
// (every forwarded message is eventually read, expired, evicted, retracted,
// or still queued).
func (a Accounting) Check() error {
	if a.Read > a.Forwarded {
		return fmt.Errorf("read %d exceeds forwarded %d", a.Read, a.Forwarded)
	}
	if a.Forwarded > a.Published {
		return fmt.Errorf("forwarded %d exceeds published %d", a.Forwarded, a.Published)
	}
	sum := a.Read + a.ExpiredUnread + a.EvictedStorage + a.RankDropped + a.ResidualQueue
	if sum != a.Forwarded {
		return fmt.Errorf("forwarded %d != read %d + expired %d + evicted %d + dropped %d + residual %d",
			a.Forwarded, a.Read, a.ExpiredUnread, a.EvictedStorage, a.RankDropped, a.ResidualQueue)
	}
	return nil
}
