package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"lasthop/internal/msg"
)

func TestWastePct(t *testing.T) {
	tests := []struct {
		forwarded, read int
		want            float64
	}{
		{0, 0, 0},
		{100, 100, 0},
		{100, 0, 100},
		{100, 12, 88},
		{8, 4, 50},
		{-5, 0, 0},
	}
	for _, tt := range tests {
		if got := WastePct(tt.forwarded, tt.read); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("WastePct(%d, %d) = %v, want %v", tt.forwarded, tt.read, got, tt.want)
		}
	}
}

func TestWastePctConservationViolation(t *testing.T) {
	// read > forwarded violates the §3.1 identity: it must be reported,
	// not silently clamped to zero waste.
	before := Violations()
	var hooked error
	ViolationHook = func(err error) { hooked = err }
	defer func() { ViolationHook = nil }()

	if got := WastePct(10, 15); got != -50 {
		t.Errorf("WastePct(10, 15) = %v, want unclamped -50", got)
	}
	if Violations() != before+1 {
		t.Errorf("Violations = %d, want %d", Violations(), before+1)
	}
	var ce *ConservationError
	if !errors.As(hooked, &ce) || ce.Forwarded != 10 || ce.Read != 15 {
		t.Errorf("hook error = %v, want ConservationError{10, 15}", hooked)
	}

	if v, err := WastePctChecked(10, 15); err == nil || v != -50 {
		t.Errorf("WastePctChecked(10, 15) = %v, %v; want -50 and error", v, err)
	}
	if v, err := WastePctChecked(10, 5); err != nil || v != 50 {
		t.Errorf("WastePctChecked(10, 5) = %v, %v; want 50 and nil", v, err)
	}
	// Checked never touches the counter.
	if Violations() != before+1 {
		t.Errorf("WastePctChecked must not count violations")
	}
}

func TestLossPct(t *testing.T) {
	base := msg.NewIDSet("a", "b", "c", "d")
	if got := LossPct(base, base.Clone()); got != 0 {
		t.Errorf("loss against itself = %v", got)
	}
	if got := LossPct(base, msg.NewIDSet()); got != 100 {
		t.Errorf("loss against empty = %v", got)
	}
	if got := LossPct(base, msg.NewIDSet("a", "c")); got != 50 {
		t.Errorf("loss = %v, want 50", got)
	}
	if got := LossPct(msg.NewIDSet(), msg.NewIDSet("x")); got != 0 {
		t.Errorf("loss with empty baseline = %v", got)
	}
	lost := Lost(base, msg.NewIDSet("a", "c", "x"))
	if lost.Len() != 2 || !lost.Contains("b") || !lost.Contains("d") {
		t.Errorf("Lost = %v", lost)
	}
}

func TestLossPctBounds(t *testing.T) {
	mk := func(bits uint16) msg.IDSet {
		s := msg.NewIDSet()
		for i := 0; i < 16; i++ {
			if bits&(1<<i) != 0 {
				s.Add(msg.ID(rune('a' + i)))
			}
		}
		return s
	}
	f := func(x, y uint16) bool {
		l := LossPct(mk(x), mk(y))
		return l >= 0 && l <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccountingCheck(t *testing.T) {
	good := Accounting{Published: 10, Forwarded: 8, Read: 4, ExpiredUnread: 1, EvictedStorage: 1, RankDropped: 1, ResidualQueue: 1}
	if err := good.Check(); err != nil {
		t.Errorf("valid accounting rejected: %v", err)
	}
	for name, a := range map[string]Accounting{
		"read exceeds forwarded":      {Published: 10, Forwarded: 3, Read: 5},
		"forwarded exceeds published": {Published: 2, Forwarded: 5, Read: 1},
		"leak":                        {Published: 10, Forwarded: 8, Read: 4, ResidualQueue: 2},
	} {
		if err := a.Check(); err == nil {
			t.Errorf("%s: invalid accounting accepted", name)
		}
	}
	var zero Accounting
	if err := zero.Check(); err != nil {
		t.Errorf("zero accounting rejected: %v", err)
	}
}
