package metrics

import "lasthop/internal/obs"

// Register exports the package's accounting-identity instrumentation on a
// registry: the cumulative conservation-violation count observed by
// WastePct. Call it once per registry (typically from the daemon or
// loadgen that owns it).
func Register(reg *obs.Registry) {
	reg.SampleCounters("lasthop_core_conservation_violations_total",
		"Waste computations whose inputs violated read <= forwarded.",
		nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(Violations())}}
		})
}
