// Package retry provides the jittered exponential backoff policy shared by
// every dialer in the deployment stack. The paper treats the last hop as
// intermittent by design — "periods of unacceptably slow connectivity can
// be treated as outages" — so reconnection is not an error path but the
// steady state, and every client retries with the same capped, jittered
// schedule to avoid synchronized reconnect storms.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrAttemptsExhausted is returned by Do when the policy's attempt budget
// runs out before an attempt succeeds.
var ErrAttemptsExhausted = errors.New("retry: attempts exhausted")

// Policy describes a backoff schedule. The zero value is not useful; start
// from Default and override fields.
type Policy struct {
	// Initial is the delay before the first retry.
	Initial time.Duration
	// Max caps the delay between retries.
	Max time.Duration
	// Multiplier grows the delay after each failure (≥ 1).
	Multiplier float64
	// Jitter is the fraction of each delay randomized away (0..1): a
	// delay d becomes uniform in [d·(1−Jitter), d].
	Jitter float64
	// MaxAttempts bounds the number of attempts Do makes; zero means
	// retry forever (until the context is canceled).
	MaxAttempts int
	// Seed makes the jitter sequence reproducible in tests; zero derives
	// a seed from the wall clock.
	Seed int64
}

// Default is the schedule used by the wire clients when none is given:
// 100 ms doubling to a 15 s cap with 25% jitter, forever.
func Default() Policy {
	return Policy{
		Initial:    100 * time.Millisecond,
		Max:        15 * time.Second,
		Multiplier: 2,
		Jitter:     0.25,
	}
}

// withDefaults fills unset fields so a partially specified policy behaves.
func (p Policy) withDefaults() Policy {
	d := Default()
	if p.Initial <= 0 {
		p.Initial = d.Initial
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	return p
}

// Backoff is the mutable state of one retry sequence. It is safe for
// concurrent use.
type Backoff struct {
	mu       sync.Mutex
	policy   Policy
	rng      *rand.Rand
	next     time.Duration
	attempts int
}

// New returns a fresh backoff sequence for the policy.
func New(p Policy) *Backoff {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{
		policy: p,
		rng:    rand.New(rand.NewSource(seed)),
		next:   p.Initial,
	}
}

// Next returns the delay to wait before the upcoming attempt and advances
// the schedule. ok is false when the policy's attempt budget is exhausted.
func (b *Backoff) Next() (d time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.policy.MaxAttempts > 0 && b.attempts >= b.policy.MaxAttempts {
		return 0, false
	}
	b.attempts++
	d = b.next
	grown := time.Duration(float64(b.next) * b.policy.Multiplier)
	if grown > b.policy.Max || grown < b.next { // cap, and guard overflow
		grown = b.policy.Max
	}
	b.next = grown
	if b.policy.Jitter > 0 {
		cut := time.Duration(b.rng.Float64() * b.policy.Jitter * float64(d))
		d -= cut
	}
	return d, true
}

// Reset restores the schedule to its initial delay and attempt budget,
// typically after a successful attempt ("reset on success").
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next = b.policy.Initial
	b.attempts = 0
}

// Attempts reports how many times Next has been consumed since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts
}

// Sleep waits the next backoff delay, honoring context cancellation. It
// returns the context error when canceled and ErrAttemptsExhausted when the
// attempt budget ran out.
func (b *Backoff) Sleep(ctx context.Context) error {
	d, ok := b.Next()
	if !ok {
		return ErrAttemptsExhausted
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do retries fn under the policy until it succeeds, the context is
// canceled, or the attempt budget runs out. The first attempt happens
// immediately; subsequent attempts wait the backoff delay. On exhaustion
// the last attempt error is wrapped alongside ErrAttemptsExhausted.
func Do(ctx context.Context, p Policy, fn func() error) error {
	b := New(p)
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if lastErr = fn(); lastErr == nil {
			return nil
		}
		if err := b.Sleep(ctx); err != nil {
			if errors.Is(err, ErrAttemptsExhausted) {
				return errors.Join(ErrAttemptsExhausted, lastErr)
			}
			return err
		}
	}
}
