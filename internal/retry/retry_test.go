package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := New(Policy{Initial: 100 * time.Millisecond, Max: 400 * time.Millisecond, Multiplier: 2, Jitter: 0})
	want := []time.Duration{100, 200, 400, 400, 400}
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("attempt %d: budget exhausted unexpectedly", i)
		}
		if d != w*time.Millisecond {
			t.Errorf("attempt %d: delay = %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Initial: time.Second, Max: time.Second, Multiplier: 1, Jitter: 0.5, Seed: 42}
	a, b := New(p), New(p)
	for i := 0; i < 20; i++ {
		da, _ := a.Next()
		db, _ := b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < 500*time.Millisecond || da > time.Second {
			t.Fatalf("attempt %d: delay %v outside [0.5s, 1s]", i, da)
		}
	}
}

func TestBackoffResetOnSuccess(t *testing.T) {
	b := New(Policy{Initial: 10 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0, MaxAttempts: 3})
	for i := 0; i < 3; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("attempt %d refused", i)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("budget not enforced")
	}
	b.Reset()
	d, ok := b.Next()
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("after reset: d=%v ok=%v", d, ok)
	}
	if b.Attempts() != 1 {
		t.Fatalf("attempts after reset = %d", b.Attempts())
	}
}

func TestDoSucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Initial: time.Millisecond, Max: time.Millisecond, Jitter: 0}, func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Policy{Initial: time.Millisecond, MaxAttempts: 2, Jitter: 0}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, ErrAttemptsExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// MaxAttempts bounds the retries (sleeps), so fn runs 1 + MaxAttempts times.
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{Initial: time.Hour, Jitter: 0}, func() error { return errors.New("always") })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not observe cancellation")
	}
}
