package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lasthop/internal/msg"
)

var tc0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// feed records a sequence of events for one notification, spacing them a
// millisecond apart.
func feed(c *Collector, id msg.ID, events ...Event) {
	for i, e := range events {
		e.At = tc0.Add(time.Duration(i) * time.Millisecond)
		e.ID = id
		if e.TraceID == "" {
			e.TraceID = string(id)
		}
		c.Record(e)
	}
}

func lastCompleted(t *testing.T, c *Collector) NotificationTrace {
	t.Helper()
	done := c.Completed()
	if len(done) == 0 {
		t.Fatal("no completed traces")
	}
	return done[len(done)-1]
}

func TestSamplerDeterministicAndBounded(t *testing.T) {
	s := NewSampler(0.5)
	if NewSampler(0).Sample("t", "any") {
		t.Error("rate 0 sampled")
	}
	if !NewSampler(1).Sample("t", "any") {
		t.Error("rate 1 did not sample")
	}
	hits := 0
	for i := 0; i < 2000; i++ {
		id := msg.ID("n-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/260)))
		first := s.Sample("t", id)
		if first != s.Sample("t", id) {
			t.Fatalf("sampling of %s not deterministic", id)
		}
		if first {
			hits++
		}
	}
	if hits < 600 || hits > 1400 {
		t.Errorf("rate 0.5 sampled %d of 2000", hits)
	}

	s.SetTopicRate("muted", 0)
	if s.Rate("muted") != 0 || s.Sample("muted", "x") {
		t.Error("per-topic override not applied")
	}
	if s.Rate("other") != 0.5 {
		t.Error("base rate lost after override")
	}
	var nilSampler *Sampler
	if nilSampler.Rate("t") != 0 || nilSampler.Sample("t", "x") {
		t.Error("nil sampler must sample nothing")
	}
}

// TestAttributionOutcomes drives each terminal path and checks the
// outcome classification and that the cause names the responsible queue
// decision with the tuner values in effect.
func TestAttributionOutcomes(t *testing.T) {
	cases := []struct {
		name    string
		events  []Event
		outcome Outcome
		cause   string // substring
	}{
		{
			name: "read",
			events: []Event{
				{Kind: KindPublish}, {Kind: KindProxyRecv},
				{Kind: KindEnqueue, Queue: "outgoing"},
				{Kind: KindForward, Queue: "outgoing"},
				{Kind: KindDeviceRecv}, {Kind: KindRead},
			},
			outcome: OutcomeRead,
		},
		{
			name: "forwarded but never read",
			events: []Event{
				{Kind: KindPublish},
				{Kind: KindEnqueue, Queue: "prefetch", Limit: 16},
				{Kind: KindForward, Queue: "prefetch", Limit: 16},
				{Kind: KindDeviceRecv},
				{Kind: KindExpire, Queue: "device"},
			},
			outcome: OutcomeWasted,
			cause:   "prefetch_limit=16",
		},
		{
			name: "expired in outgoing while link down",
			events: []Event{
				{Kind: KindPublish},
				{Kind: KindEnqueue, Queue: "outgoing"},
				{Kind: KindExpire, Queue: "outgoing", ThresholdS: 30},
			},
			outcome: OutcomeLost,
			cause:   "outgoing",
		},
		{
			name: "expired in holding before transfer",
			events: []Event{
				{Kind: KindPublish},
				{Kind: KindEnqueue, Queue: "holding", ThresholdS: 30},
				{Kind: KindExpire, Queue: "holding"},
			},
			outcome: OutcomeExpired,
			cause:   "exp_threshold=30s",
		},
		{
			name: "rank retracted before transfer",
			events: []Event{
				{Kind: KindPublish},
				{Kind: KindEnqueue, Queue: "prefetch"},
				{Kind: KindDrop, Queue: "prefetch", Cause: "rank retracted below the subscription threshold"},
			},
			outcome: OutcomeExpired,
			cause:   "rank retracted",
		},
		{
			name: "lost in flight at reconnect",
			events: []Event{
				{Kind: KindPublish}, {Kind: KindForward, Queue: "outgoing"},
				{Kind: KindLost, Cause: "lost in flight across a reconnect; content no longer recoverable"},
			},
			outcome: OutcomeLost,
			cause:   "reconnect",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCollector("n1", nil, 8)
			feed(c, msg.ID(tc.name), tc.events...)
			if st := c.Stats(); st.Completed != 1 || st.Active != 0 {
				t.Fatalf("completed=%d active=%d, want 1/0", st.Completed, st.Active)
			}
			nt := lastCompleted(t, c)
			if nt.Outcome != tc.outcome {
				t.Fatalf("outcome %q, want %q (cause %q)", nt.Outcome, tc.outcome, nt.Cause)
			}
			if tc.cause != "" && !strings.Contains(nt.Cause, tc.cause) {
				t.Errorf("cause %q does not mention %q", nt.Cause, tc.cause)
			}
		})
	}
}

// TestDuplicateAnnotatesLiveTrace: a duplicate-ID rejection terminates a
// fresh trace (publisher retry with no original in flight here) but only
// annotates a trace that already has history — the original is still live.
func TestDuplicateAnnotatesLiveTrace(t *testing.T) {
	c := NewCollector("n1", nil, 8)
	feed(c, "fresh", Event{Kind: KindDuplicate, Cause: "duplicate notification ID rejected at ingress"})
	if nt := lastCompleted(t, c); nt.Outcome != OutcomeDuplicate {
		t.Fatalf("fresh duplicate classified %q, want duplicate", nt.Outcome)
	}

	feed(c, "live", Event{Kind: KindPublish}, Event{Kind: KindDuplicate}, Event{Kind: KindRead})
	if st := c.Stats(); st.Active != 0 {
		t.Fatalf("live trace still active after read: %+v", st)
	}
	nt := lastCompleted(t, c)
	if nt.Outcome != OutcomeRead {
		t.Fatalf("live trace classified %q, want read", nt.Outcome)
	}
	if len(nt.Events) != 3 {
		t.Errorf("duplicate annotation lost: %d events, want 3", len(nt.Events))
	}
}

// TestLateEventAppendsWithoutReclassifying: an event arriving after the
// terminal (device read racing proxy expiry) lands on the completed
// timeline but cannot change the outcome.
func TestLateEventAppendsWithoutReclassifying(t *testing.T) {
	c := NewCollector("n1", nil, 8)
	feed(c, "n", Event{Kind: KindPublish}, Event{Kind: KindForward, Queue: "outgoing"},
		Event{Kind: KindExpire, Queue: "device"})
	c.Record(Event{At: tc0.Add(time.Second), Kind: KindRead, ID: "n", TraceID: "n"})
	if st := c.Stats(); st.Completed != 1 || st.Active != 0 {
		t.Fatalf("late event reopened the trace: %+v", st)
	}
	nt := lastCompleted(t, c)
	if nt.Outcome != OutcomeWasted {
		t.Fatalf("late read reclassified the trace to %q", nt.Outcome)
	}
	if nt.Events[len(nt.Events)-1].Kind != KindRead {
		t.Error("late read missing from the completed timeline")
	}
}

func TestUnsampledEventsDropCheaply(t *testing.T) {
	c := NewCollector("n1", nil, 8)
	c.Record(Event{At: tc0, Kind: KindForward, ID: "u"}) // no TraceID, not an anomaly
	st := c.Stats()
	if st.Active != 0 || st.DroppedEvents != 1 {
		t.Fatalf("unsampled event not dropped: %+v", st)
	}
	// An anomaly on an unsampled notification opens a partial trace.
	c.Record(Event{At: tc0, Kind: KindExpire, ID: "u", Queue: "holding"})
	if st := c.Stats(); st.Completed != 1 {
		t.Fatalf("anomaly did not open a trace: %+v", st)
	}
	if nt := lastCompleted(t, c); nt.Sampled {
		t.Error("anomaly-opened trace marked head-sampled")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	c := NewCollector("n1", nil, 3)
	for i := 0; i < 5; i++ {
		id := msg.ID("n" + string(rune('0'+i)))
		feed(c, id, Event{Kind: KindPublish}, Event{Kind: KindRead})
	}
	st := c.Stats()
	if st.Ring != 3 || st.Evicted != 2 || st.Completed != 5 {
		t.Fatalf("ring=%d evicted=%d completed=%d, want 3/2/5", st.Ring, st.Evicted, st.Completed)
	}
	done := c.Completed()
	if done[0].ID != "n2" || done[len(done)-1].ID != "n4" {
		t.Errorf("ring kept wrong window: first=%s last=%s", done[0].ID, done[len(done)-1].ID)
	}
}

func TestPublishAcceptedMintsAndKeepsContexts(t *testing.T) {
	c := NewCollector("broker-1", NewSampler(1), 8)
	n := &msg.Notification{ID: "a", Topic: "t", Rank: 2}
	c.PublishAccepted(n, "broker-1", tc0)
	if n.Trace == nil || n.Trace.TraceID != "a" || n.Trace.Origin != "broker-1" {
		t.Fatalf("context not minted: %+v", n.Trace)
	}
	// A re-routed notification keeps its upstream context.
	m := &msg.Notification{ID: "b", Topic: "t", Trace: &Context{TraceID: "b", Origin: "other"}}
	c.PublishAccepted(m, "broker-1", tc0)
	if m.Trace.Origin != "other" {
		t.Errorf("re-accept replaced the upstream context: %+v", m.Trace)
	}

	unsampled := NewCollector("broker-1", nil, 8)
	u := &msg.Notification{ID: "c", Topic: "t"}
	unsampled.PublishAccepted(u, "broker-1", tc0)
	if u.Trace != nil {
		t.Error("nil sampler still minted a context")
	}
}

func TestFinishActiveClassifiesStragglers(t *testing.T) {
	c := NewCollector("n1", nil, 8)
	feed(c, "fwd", Event{Kind: KindPublish}, Event{Kind: KindForward, Queue: "outgoing"})
	feed(c, "queued", Event{Kind: KindPublish}, Event{Kind: KindEnqueue, Queue: "holding"})
	c.FinishActive(tc0.Add(time.Minute))
	st := c.Stats()
	if st.Active != 0 || st.Completed != 2 {
		t.Fatalf("finish left active=%d completed=%d", st.Active, st.Completed)
	}
	byID := map[msg.ID]NotificationTrace{}
	for _, nt := range c.Completed() {
		byID[nt.ID] = nt
	}
	if nt := byID["fwd"]; nt.Outcome != OutcomeWasted || !strings.Contains(nt.Cause, "unread at end of run") {
		t.Errorf("forwarded straggler: outcome=%q cause=%q", nt.Outcome, nt.Cause)
	}
	if nt := byID["queued"]; nt.Outcome != OutcomeLost || !strings.Contains(nt.Cause, "still queued") {
		t.Errorf("queued straggler: outcome=%q cause=%q", nt.Outcome, nt.Cause)
	}
}

func TestHandlerServesRingAndJSONL(t *testing.T) {
	c := NewCollector("n1", nil, 8)
	feed(c, "n", Event{Kind: KindPublish}, Event{Kind: KindRead})

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var payload struct {
		Node      string              `json:"node"`
		Completed uint64              `json:"completed"`
		Traces    []NotificationTrace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if payload.Node != "n1" || payload.Completed != 1 || len(payload.Traces) != 1 {
		t.Fatalf("unexpected payload: %+v", payload)
	}

	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=jsonl", nil))
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("jsonl lines = %d, want 1", len(lines))
	}
	var nt NotificationTrace
	if err := json.Unmarshal([]byte(lines[0]), &nt); err != nil || nt.Outcome != OutcomeRead {
		t.Fatalf("jsonl line bad (err=%v): %+v", err, nt)
	}

	var disabled *Collector
	rec = httptest.NewRecorder()
	disabled.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Errorf("nil collector handler returned %d, want 404", rec.Code)
	}
}

// TestDumpIncludesActivePartialViews: a daemon whose terminal events land
// on another node (the broker never observes the device read) must still
// export its hops — the JSONL dump appends active traces, outcome-less,
// after the completed ring so cross-node merges recover full timelines.
func TestDumpIncludesActivePartialViews(t *testing.T) {
	c := NewCollector("broker-1", nil, 8)
	feed(c, "done", Event{Kind: KindPublish}, Event{Kind: KindRead})
	feed(c, "partial", Event{Kind: KindPublish}, Event{Kind: KindRoute})

	act := c.Active()
	if len(act) != 1 || act[0].TraceID != "partial" || act[0].Outcome != "" {
		t.Fatalf("Active() = %+v, want one outcome-less trace for partial", act)
	}

	var buf strings.Builder
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines = %d, want 2 (completed + active)", len(lines))
	}
	var first, second NotificationTrace
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.TraceID != "done" || first.Outcome != OutcomeRead {
		t.Errorf("first dump line = %+v, want the completed trace", first)
	}
	if second.TraceID != "partial" || second.Outcome != "" || len(second.Events) != 2 {
		t.Errorf("second dump line = %+v, want the active partial view with 2 events", second)
	}
}

// TestDisabledTracingIsAllocationFree pins the disabled-path cost the hot
// loops rely on: a nil Tracer through the Record helper and a nil
// *Collector through every exported entry point must not allocate.
func TestDisabledTracingIsAllocationFree(t *testing.T) {
	n := &msg.Notification{ID: "a", Topic: "t", Rank: 1}
	e := Event{Kind: KindForward, Topic: "t", ID: "a"}

	if avg := testing.AllocsPerRun(1000, func() {
		Record(nil, e)
	}); avg != 0 {
		t.Errorf("nil Tracer Record allocates %.1f per run", avg)
	}
	var c *Collector
	if avg := testing.AllocsPerRun(1000, func() {
		c.Record(e)
		c.PublishAccepted(n, "b", tc0)
		c.Hop(KindProxyRecv, "p", n, tc0)
	}); avg != 0 {
		t.Errorf("nil *Collector paths allocate %.1f per run", avg)
	}
	var tr Tracer = c
	if avg := testing.AllocsPerRun(1000, func() {
		Record(tr, e)
	}); avg != 0 {
		t.Errorf("typed-nil Collector via Record allocates %.1f per run", avg)
	}
}

// TestLateEventRacesEviction hammers the late-event append path (an
// event arriving for an already-completed trace) against concurrent
// completions churning the ring — the eviction in pushLocked deletes
// done-table entries while laggards are still appending to them. Run
// under -race this guards the collector against that interleaving
// regressing into a data race or a map corruption.
func TestLateEventRacesEviction(t *testing.T) {
	c := NewCollector("n1", nil, 4)
	const (
		workers   = 4
		perWorker = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := msg.ID(fmt.Sprintf("w%d-n%d", w, i))
				at := tc0.Add(time.Duration(i) * time.Millisecond)
				c.Record(Event{At: at, Kind: KindPublish, ID: id, TraceID: string(id)})
				c.Record(Event{At: at.Add(time.Millisecond), Kind: KindRead, ID: id, TraceID: string(id)})
				// A late event for our own just-completed trace, plus one
				// aimed at a sibling's ID that may be completed, already
				// evicted, or not yet seen.
				c.Record(Event{At: at.Add(2 * time.Millisecond), Kind: KindRead, ID: id, TraceID: string(id)})
				other := msg.ID(fmt.Sprintf("w%d-n%d", (w+1)%workers, i))
				c.Record(Event{At: at.Add(2 * time.Millisecond), Kind: KindRead, ID: other, TraceID: string(other)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, nt := range c.Completed() {
				for _, e := range nt.Events {
					_ = e.Kind
				}
			}
			_ = c.Stats()
		}
	}()
	wg.Wait()

	st := c.Stats()
	if st.Ring > 4 {
		t.Fatalf("ring grew to %d, capacity 4", st.Ring)
	}
	if st.Completed < workers*perWorker {
		t.Fatalf("completed %d traces, want at least %d", st.Completed, workers*perWorker)
	}
	for _, nt := range c.Completed() {
		if nt.Outcome == "" {
			t.Fatalf("completed trace %s lost its outcome", nt.ID)
		}
	}
}
