package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNilTracerIsSafe(t *testing.T) {
	Record(nil, Event{At: t0, Kind: KindArrival})
}

func TestBufferRecordsAndFilters(t *testing.T) {
	b := NewBuffer(0)
	b.Record(Event{At: t0, Kind: KindArrival, ID: "a"})
	b.Record(Event{At: t0, Kind: KindForward, ID: "a"})
	b.Record(Event{At: t0, Kind: KindArrival, ID: "b"})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	arrivals := b.Filter(KindArrival)
	if len(arrivals) != 2 || arrivals[0].ID != "a" || arrivals[1].ID != "b" {
		t.Errorf("Filter = %v", arrivals)
	}
	events := b.Events()
	events[0].ID = "mutated"
	if b.Events()[0].ID != "a" {
		t.Error("Events exposes internal storage")
	}
	if b.Dropped() != 0 {
		t.Errorf("Dropped = %d", b.Dropped())
	}
}

func TestBufferCapacityEvictsOldest(t *testing.T) {
	b := NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Record(Event{At: t0.Add(time.Duration(i) * time.Second), Kind: KindRead, Count: i})
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	events := b.Events()
	if events[0].Count != 3 || events[1].Count != 4 {
		t.Errorf("retained = %v", events)
	}
	if b.Dropped() != 3 {
		t.Errorf("Dropped = %d", b.Dropped())
	}
}

func TestWriterStreamsLines(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Record(Event{At: t0, Kind: KindArrival, Topic: "t", ID: "a", Rank: 4.5})
	w.Record(Event{At: t0, Kind: KindRead, Topic: "t", Count: 3})
	w.Record(Event{At: t0, Kind: KindLinkDown})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"arrival", "id=a", "rank=4.50", "read", "count=3", "link-down"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 3 {
		t.Errorf("lines = %d", got)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterSurfacesErrors(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Record(Event{At: t0, Kind: KindArrival})
	if w.Err() == nil {
		t.Error("write error swallowed")
	}
	// Further records are dropped without panicking.
	w.Record(Event{At: t0, Kind: KindArrival})
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewBuffer(0), NewBuffer(0)
	m := Multi(a, nil, b)
	m.Record(Event{At: t0, Kind: KindArrival})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}
