package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/obs"
)

// Context is the compact per-notification trace context propagated across
// the wire. It is defined in msg (so notifications can carry it without an
// import cycle) and aliased here as the tracing-facing name.
type Context = msg.TraceContext

// Hop is one node traversal within a Context.
type Hop = msg.TraceHop

// Outcome is the terminal classification of a traced notification. Every
// completed trace lands in exactly one.
type Outcome string

const (
	// OutcomeRead: delivered to the device and consumed by a user read.
	OutcomeRead Outcome = "read"
	// OutcomeWasted: forwarded over the last hop but never read (§3.1
	// waste) — the transfer cost was paid for nothing.
	OutcomeWasted Outcome = "wasted"
	// OutcomeLost: the user would plausibly have seen it, but delivery
	// failed — it expired in the outgoing queue while the last hop was
	// down, or died in flight across a reconnect.
	OutcomeLost Outcome = "lost"
	// OutcomeExpired: retired before any last-hop transfer — expired in a
	// staging queue, retracted by a rank update, or rejected below the
	// subscription threshold. No transfer cost, no user-visible loss.
	OutcomeExpired Outcome = "expired"
	// OutcomeDuplicate: rejected at the broker as a duplicate ID
	// (publisher retry after a lost acknowledgment).
	OutcomeDuplicate Outcome = "duplicate"
)

// terminalKind reports whether an event kind completes a trace.
func terminalKind(k Kind) bool {
	switch k {
	case KindRead, KindExpire, KindDrop, KindDuplicate, KindLost:
		return true
	}
	return false
}

// anomalyKind reports whether an event kind forces trace creation even for
// unsampled notifications ("always sample on anomalies").
func anomalyKind(k Kind) bool {
	switch k {
	case KindDuplicate, KindExpire, KindDrop, KindLost, KindResume:
		return true
	}
	return false
}

// NotificationTrace is the causally ordered event timeline of one
// notification, as observed by one Collector (or, in an in-process
// deployment like the load generator, the whole stack).
type NotificationTrace struct {
	TraceID string `json:"traceId"`
	Topic   string `json:"topic,omitempty"`
	ID      msg.ID `json:"id"`
	// Origin names the node that minted the context; empty for traces
	// opened by an anomaly on an unsampled notification.
	Origin string `json:"origin,omitempty"`
	// Sampled distinguishes head-sampled traces (full timeline) from
	// anomaly-opened ones (partial timeline starting at the anomaly).
	Sampled bool `json:"sampled"`
	// Outcome and Cause are set when the trace completes. Cause names the
	// specific queue decision responsible, with the tuner values that
	// were in effect.
	Outcome Outcome `json:"outcome,omitempty"`
	Cause   string  `json:"cause,omitempty"`
	Events  []Event `json:"events"`
}

// Start returns the time of the first event (zero when empty).
func (t *NotificationTrace) Start() time.Time {
	if len(t.Events) == 0 {
		return time.Time{}
	}
	return t.Events[0].At
}

// End returns the time of the last event (zero when empty).
func (t *NotificationTrace) End() time.Time {
	if len(t.Events) == 0 {
		return time.Time{}
	}
	return t.Events[len(t.Events)-1].At
}

// first returns the first event of one of the given kinds, or nil.
func (t *NotificationTrace) first(kinds ...Kind) *Event {
	for i := range t.Events {
		for _, k := range kinds {
			if t.Events[i].Kind == k {
				return &t.Events[i]
			}
		}
	}
	return nil
}

// Breakdown is the per-hop latency decomposition of a delivered
// notification. Segments that the timeline does not cover are negative.
type Breakdown struct {
	// Broker: publish accept to hand-off toward the last-hop proxy
	// (includes shard routing and any federation transit).
	Broker time.Duration
	// Federation: transit across overlay edges (0 when single-broker,
	// negative when the trace has no federation events).
	Federation time.Duration
	// ProxyQueue: proxy receive to the forward decision — time spent in
	// the Figure 7 queues.
	ProxyQueue time.Duration
	// LastHop: forward to device receive.
	LastHop time.Duration
}

// LatencyBreakdown decomposes the delivery path of the trace. Segments
// not observed (undelivered notifications, partial anomaly traces) are
// negative.
func (t *NotificationTrace) LatencyBreakdown() Breakdown {
	b := Breakdown{Broker: -1, Federation: -1, ProxyQueue: -1, LastHop: -1}
	pub := t.first(KindPublish)
	recv := t.first(KindProxyRecv)
	fwd := t.first(KindForward)
	dev := t.first(KindDeviceRecv)
	if pub != nil && recv != nil {
		b.Broker = recv.At.Sub(pub.At)
	}
	// Federation transit: first federation forward to the first route event
	// recorded after it (the downstream broker's shard route).
	for i := range t.Events {
		if t.Events[i].Kind != KindFederate {
			continue
		}
		for j := i + 1; j < len(t.Events); j++ {
			if t.Events[j].Kind == KindRoute {
				b.Federation = t.Events[j].At.Sub(t.Events[i].At)
				break
			}
		}
		break
	}
	if recv != nil && fwd != nil {
		b.ProxyQueue = fwd.At.Sub(recv.At)
	}
	if fwd != nil && dev != nil {
		b.LastHop = dev.At.Sub(fwd.At)
	}
	return b
}

// Sampler makes the head-sampling decision at the trace origin: a base
// rate, overridable per topic, applied deterministically by hashing the
// notification ID so retries of the same publish sample identically.
type Sampler struct {
	mu       sync.RWMutex
	base     float64
	perTopic map[string]float64
}

// NewSampler returns a sampler with the given base rate in [0, 1].
func NewSampler(base float64) *Sampler {
	return &Sampler{base: base, perTopic: make(map[string]float64)}
}

// SetTopicRate overrides the sampling rate for one topic.
func (s *Sampler) SetTopicRate(topic string, rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perTopic[topic] = rate
}

// Rate returns the sampling rate in effect for a topic.
func (s *Sampler) Rate(topic string) float64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, ok := s.perTopic[topic]; ok {
		return r
	}
	return s.base
}

// Sample reports whether a notification should be head-sampled.
func (s *Sampler) Sample(topic string, id msg.ID) bool {
	rate := s.Rate(topic)
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return float64(h.Sum64()>>11)/float64(1<<53) < rate
}

// CollectorStats is a point-in-time snapshot of collector accounting.
type CollectorStats struct {
	// Sampled counts traces opened by a head-sampling decision at this
	// collector (trace origins only).
	Sampled uint64
	// Completed counts traces that reached a terminal outcome.
	Completed uint64
	// Evicted counts completed traces pushed out of the ring by newer
	// ones.
	Evicted uint64
	// DroppedEvents counts events discarded because their notification
	// was neither sampled nor anomalous, plus events arriving after their
	// trace left the ring.
	DroppedEvents uint64
	// ActiveOverflow counts trace creations refused because the active
	// table was full.
	ActiveOverflow uint64
	// Active and Ring are current occupancies.
	Active int
	Ring   int
	// Outcomes counts completed traces per terminal outcome.
	Outcomes map[Outcome]uint64
}

// Collector is the live-stack tracer: it follows sampled notifications
// through per-notification event timelines, attributes each terminal
// outcome to the queue decision that caused it, and retains the most
// recent completed traces in a bounded ring for /debug/traces and JSONL
// export. A nil *Collector is valid everywhere and records nothing.
type Collector struct {
	node    string
	sampler *Sampler

	mu        sync.Mutex
	active    map[msg.ID]*NotificationTrace
	done      map[msg.ID]*NotificationTrace // traces still in the ring
	ring      []*NotificationTrace          // bounded, oldest evicted first
	ringCap   int
	maxActive int

	sampled   uint64
	completed uint64
	evicted   uint64
	dropped   uint64
	overflow  uint64
	outcomes  map[Outcome]uint64
}

var _ Tracer = (*Collector)(nil)

// DefaultRingCapacity bounds the completed-trace ring when the caller
// passes no explicit capacity.
const DefaultRingCapacity = 512

// maxActiveTraces bounds the in-progress table so a stalled stage cannot
// grow collector memory without bound.
const maxActiveTraces = 1 << 16

// NewCollector returns a collector identified as node, sampling new
// traces with sampler (nil samples nothing; anomalies still open traces)
// and retaining up to ringCap completed traces (<= 0 means
// DefaultRingCapacity).
func NewCollector(node string, sampler *Sampler, ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = DefaultRingCapacity
	}
	return &Collector{
		node:      node,
		sampler:   sampler,
		active:    make(map[msg.ID]*NotificationTrace),
		done:      make(map[msg.ID]*NotificationTrace),
		ringCap:   ringCap,
		maxActive: maxActiveTraces,
		outcomes:  make(map[Outcome]uint64),
	}
}

// Node returns the collector's node identity.
func (c *Collector) Node() string {
	if c == nil {
		return ""
	}
	return c.node
}

// PublishAccepted is the trace origin: called by the broker when a
// publish is accepted. It decides sampling, mints and attaches the
// context (trace ID = notification ID), and records the publish-accept
// event. Notifications arriving with a context already attached (e.g.
// re-routed through federation) keep it.
func (c *Collector) PublishAccepted(n *msg.Notification, node string, now time.Time) {
	if c == nil {
		return
	}
	if n.Trace == nil {
		if !c.sampler.Sample(n.Topic, n.ID) {
			return
		}
		n.Trace = &Context{
			TraceID: string(n.ID),
			Origin:  node,
			Hops:    []Hop{{Node: node, At: now.UnixNano()}},
		}
	}
	c.Record(Event{
		At: now, Kind: KindPublish, Topic: n.Topic, ID: n.ID, Rank: n.Rank,
		TraceID: n.Trace.TraceID, Node: node,
	})
}

// Hop stamps the node onto a sampled notification's context (copy-on-
// append: fan-out clones share the context pointer) and records the given
// event kind. Unsampled notifications are untouched.
func (c *Collector) Hop(kind Kind, node string, n *msg.Notification, now time.Time) {
	if c == nil || n.Trace == nil {
		return
	}
	n.Trace = n.Trace.WithHop(node, now)
	c.Record(Event{
		At: now, Kind: kind, Topic: n.Topic, ID: n.ID, Rank: n.Rank,
		TraceID: n.Trace.TraceID, Node: node,
	})
}

// Record implements Tracer. Events for notifications that are neither
// sampled (no TraceID) nor anomalous are dropped cheaply; anomalies open
// a partial trace on the spot.
func (c *Collector) Record(e Event) {
	if c == nil || e.ID == msg.NoID {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Node == "" {
		e.Node = c.node
	}
	nt := c.active[e.ID]
	if nt == nil {
		if done := c.done[e.ID]; done != nil {
			// Late event for a completed trace (e.g. a device read racing
			// proxy-side expiry): keep the timeline complete but do not
			// reopen or reclassify.
			done.Events = append(done.Events, e)
			return
		}
		if e.TraceID == "" && !anomalyKind(e.Kind) {
			c.dropped++
			return
		}
		if len(c.active) >= c.maxActive {
			c.overflow++
			return
		}
		nt = &NotificationTrace{
			TraceID: e.TraceID,
			Topic:   e.Topic,
			ID:      e.ID,
			Sampled: e.TraceID != "",
		}
		if nt.TraceID == "" {
			nt.TraceID = string(e.ID)
		}
		if e.Kind == KindPublish {
			nt.Origin = e.Node
			c.sampled++
		}
		c.active[e.ID] = nt
	}
	if nt.Topic == "" {
		nt.Topic = e.Topic
	}
	nt.Events = append(nt.Events, e)
	if terminalKind(e.Kind) {
		if e.Kind == KindDuplicate && len(nt.Events) > 1 {
			// A duplicate-ID rejection terminates the retry attempt, not
			// the original notification (which shares the ID and is still
			// in flight): keep it as an annotation on the live trace.
			return
		}
		c.finalizeLocked(nt, &e)
	}
}

// finalizeLocked classifies the trace and moves it from the active table
// into the completed ring. Callers hold c.mu.
func (c *Collector) finalizeLocked(nt *NotificationTrace, last *Event) {
	nt.Outcome, nt.Cause = attribute(nt, last)
	delete(c.active, nt.ID)
	c.completed++
	c.outcomes[nt.Outcome]++
	c.pushLocked(nt)
}

func (c *Collector) pushLocked(nt *NotificationTrace) {
	if len(c.ring) >= c.ringCap {
		old := c.ring[0]
		c.ring = append(c.ring[:0], c.ring[1:]...)
		delete(c.done, old.ID)
		c.evicted++
		c.ring = append(c.ring, nt)
	} else {
		c.ring = append(c.ring, nt)
	}
	c.done[nt.ID] = nt
}

// attribute maps a completed timeline to its terminal outcome and the
// queue decision responsible. The five outcomes partition every
// possibility: read, wasted, lost, expired, duplicate.
func attribute(nt *NotificationTrace, last *Event) (Outcome, string) {
	var forwarded, deviceHeld *Event
	var lastEnqueue *Event
	for i := range nt.Events {
		switch nt.Events[i].Kind {
		case KindForward:
			forwarded = &nt.Events[i]
		case KindDeviceRecv:
			deviceHeld = &nt.Events[i]
		case KindEnqueue:
			lastEnqueue = &nt.Events[i]
		}
	}
	decision := lastEnqueue
	if forwarded != nil {
		decision = forwarded
	}
	switch last.Kind {
	case KindRead:
		return OutcomeRead, ""
	case KindDuplicate:
		return OutcomeDuplicate, "duplicate ID rejected at broker " + last.Node
	case KindLost:
		cause := last.Cause
		if cause == "" {
			cause = "in flight on the last hop at reconnect; content no longer recoverable"
		}
		return OutcomeLost, cause
	case KindExpire:
		if forwarded != nil || deviceHeld != nil || last.Queue == "device" {
			return OutcomeWasted, "forwarded " + decisionDetail(decision) + " but expired unread"
		}
		switch last.Queue {
		case "outgoing":
			return OutcomeLost, "expired in outgoing while the last hop was unavailable " + decisionDetail(decision)
		default:
			return OutcomeExpired, "expired in " + queueName(last.Queue) + " before any transfer " + decisionDetail(decision)
		}
	case KindDrop:
		if forwarded != nil || deviceHeld != nil {
			return OutcomeWasted, dropCause(last) + " after forward " + decisionDetail(decision)
		}
		return OutcomeExpired, dropCause(last) + " before any transfer " + decisionDetail(decision)
	default:
		// Unreachable while terminalKind and this switch agree.
		return OutcomeExpired, "unclassified terminal event " + string(last.Kind)
	}
}

func queueName(q string) string {
	if q == "" {
		return "a staging queue"
	}
	return q
}

func dropCause(e *Event) string {
	if e.Cause != "" {
		return e.Cause
	}
	return "dropped"
}

// decisionDetail renders the queue decision and tuner values in effect at
// the attributed event.
func decisionDetail(e *Event) string {
	if e == nil {
		return "(no queue decision observed)"
	}
	s := "(queue=" + queueName(e.Queue)
	if e.Limit != 0 {
		s += " prefetch_limit=" + strconv.Itoa(e.Limit)
	}
	if e.ThresholdS != 0 {
		s += fmt.Sprintf(" exp_threshold=%.3gs", e.ThresholdS)
	}
	if e.DelayS != 0 {
		s += fmt.Sprintf(" delay=%.3gs", e.DelayS)
	}
	if e.Cause != "" {
		s += " cause=" + e.Cause
	}
	return s + ")"
}

// FinishActive force-completes every still-active trace, classifying by
// how far delivery got: forwarded-but-unread traces become wasted,
// anything still queued becomes lost. Load generators call this at the
// end of a run so every sampled notification lands in exactly one
// outcome; long-running daemons normally never call it.
func (c *Collector) FinishActive(now time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]msg.ID, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nt := c.active[id]
		forwarded := nt.first(KindForward) != nil || nt.first(KindDeviceRecv) != nil
		e := Event{At: now, Kind: KindExpire, Topic: nt.Topic, ID: id, Node: c.node,
			TraceID: nt.TraceID, Cause: "end of run"}
		if forwarded {
			e.Queue = "device"
		} else {
			e.Queue = "outgoing"
		}
		nt.Events = append(nt.Events, e)
		c.finalizeLocked(nt, &e)
		if forwarded {
			nt.Cause = "forwarded but unread at end of run"
		} else {
			nt.Cause = "still queued at end of run"
		}
	}
}

// Stats returns a snapshot of the collector accounting.
func (c *Collector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := CollectorStats{
		Sampled:        c.sampled,
		Completed:      c.completed,
		Evicted:        c.evicted,
		DroppedEvents:  c.dropped,
		ActiveOverflow: c.overflow,
		Active:         len(c.active),
		Ring:           len(c.ring),
		Outcomes:       make(map[Outcome]uint64, len(c.outcomes)),
	}
	for k, v := range c.outcomes {
		out.Outcomes[k] = v
	}
	return out
}

// Completed returns the retained completed traces, oldest first. The
// traces are deep-ish copies: event slices are cloned so callers may
// inspect them without racing late-event appends.
func (c *Collector) Completed() []NotificationTrace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NotificationTrace, len(c.ring))
	for i, nt := range c.ring {
		out[i] = *nt
		out[i].Events = append([]Event(nil), nt.Events...)
	}
	return out
}

// Active returns copies of the still-active traces (no terminal outcome
// yet), ordered by first event. On a long-running daemon these are the
// node's partial views of notifications whose terminal belongs to another
// node — a broker never observes the device read — so dumps include them
// and cross-node merges recover the full timeline.
func (c *Collector) Active() []NotificationTrace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NotificationTrace, 0, len(c.active))
	for _, nt := range c.active {
		cp := *nt
		cp.Events = append([]Event(nil), nt.Events...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start().Before(out[j].Start()) })
	return out
}

// WriteJSONL streams the retained completed traces followed by the
// still-active ones, one JSON object per line — the dump format
// cmd/lasthop-trace consumes (active traces have no outcome; a merge
// takes the outcome from whichever node's dump completed the trace).
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	dump := append(c.Completed(), c.Active()...)
	for _, nt := range dump {
		b, err := json.Marshal(&nt)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// tracesPayload is the JSON document served by /debug/traces.
type tracesPayload struct {
	Node      string              `json:"node"`
	Sampled   uint64              `json:"sampled"`
	Completed uint64              `json:"completed"`
	Evicted   uint64              `json:"evicted"`
	Active    int                 `json:"active"`
	Ring      int                 `json:"ring"`
	Outcomes  map[Outcome]uint64  `json:"outcomes"`
	Traces    []NotificationTrace `json:"traces"`
}

// Handler serves the completed-trace ring over HTTP: a JSON summary plus
// the most recent traces (?n= bounds the count, ?format=jsonl streams the
// raw dump for cmd/lasthop-trace).
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = c.WriteJSONL(w)
			return
		}
		traces := c.Completed()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		st := c.Stats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tracesPayload{
			Node: c.node, Sampled: st.Sampled, Completed: st.Completed,
			Evicted: st.Evicted, Active: st.Active, Ring: st.Ring,
			Outcomes: st.Outcomes, Traces: traces,
		})
	})
}

// RegisterMetrics exposes the collector accounting as scrape-time metric
// families on the registry.
func (c *Collector) RegisterMetrics(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	node := c.node
	reg.SampleCounters("lasthop_trace_sampled_total",
		"Traces opened by a head-sampling decision at this node.",
		[]string{"node"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{node}, Value: float64(c.Stats().Sampled)}}
		})
	reg.SampleCounters("lasthop_trace_completed_total",
		"Traces that reached a terminal outcome, by outcome.",
		[]string{"node", "outcome"}, func() []obs.Sample {
			st := c.Stats()
			out := make([]obs.Sample, 0, len(st.Outcomes))
			for _, o := range []Outcome{OutcomeRead, OutcomeWasted, OutcomeLost, OutcomeExpired, OutcomeDuplicate} {
				out = append(out, obs.Sample{Labels: []string{node, string(o)}, Value: float64(st.Outcomes[o])})
			}
			return out
		})
	reg.SampleCounters("lasthop_trace_dropped_events_total",
		"Events dropped because the notification was unsampled, the trace had left the ring, or the active table was full.",
		[]string{"node"}, func() []obs.Sample {
			st := c.Stats()
			return []obs.Sample{{Labels: []string{node}, Value: float64(st.DroppedEvents + st.ActiveOverflow)}}
		})
	reg.SampleGauges("lasthop_trace_ring_occupancy",
		"Completed traces currently retained in the bounded ring.",
		[]string{"node"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{node}, Value: float64(c.Stats().Ring)}}
		})
	reg.SampleGauges("lasthop_trace_active",
		"Traces still accumulating events (no terminal outcome yet).",
		[]string{"node"}, func() []obs.Sample {
			return []obs.Sample{{Labels: []string{node}, Value: float64(c.Stats().Active)}}
		})
}
