// Package trace records the observable timeline of a simulation run —
// arrivals, transfers, reads, retractions, link transitions — for
// debugging and for inspecting why a policy wasted or lost a particular
// message. Tracing is optional and costs nothing when disabled (the nil
// Tracer records nothing).
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lasthop/internal/msg"
)

// Kind classifies trace events.
type Kind string

// Trace event kinds.
const (
	KindArrival  Kind = "arrival"
	KindRetract  Kind = "retract"
	KindForward  Kind = "forward"
	KindRead     Kind = "read"
	KindLinkUp   Kind = "link-up"
	KindLinkDown Kind = "link-down"
)

// Event is one timeline record.
type Event struct {
	// At is the simulation instant.
	At time.Time `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Topic is the affected topic, when applicable.
	Topic string `json:"topic,omitempty"`
	// ID is the affected notification, when applicable.
	ID msg.ID `json:"id,omitempty"`
	// Rank is the notification's rank at the event.
	Rank float64 `json:"rank,omitempty"`
	// Count carries a quantity (messages returned by a read).
	Count int `json:"count,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case KindRead:
		return fmt.Sprintf("%s %-9s topic=%s count=%d", e.At.Format(time.RFC3339), e.Kind, e.Topic, e.Count)
	case KindLinkUp, KindLinkDown:
		return fmt.Sprintf("%s %-9s", e.At.Format(time.RFC3339), e.Kind)
	default:
		return fmt.Sprintf("%s %-9s topic=%s id=%s rank=%.2f", e.At.Format(time.RFC3339), e.Kind, e.Topic, e.ID, e.Rank)
	}
}

// Tracer consumes events. A nil Tracer is valid and records nothing (use
// the package-level Record helper).
type Tracer interface {
	Record(e Event)
}

// Record forwards an event to t when tracing is enabled.
func Record(t Tracer, e Event) {
	if t != nil {
		t.Record(e)
	}
}

// Buffer is an in-memory tracer, optionally bounded to the most recent
// capacity events. It is safe for concurrent use.
type Buffer struct {
	mu       sync.Mutex
	capacity int
	events   []Event
	dropped  int
}

var _ Tracer = (*Buffer)(nil)

// NewBuffer returns a tracer retaining the most recent capacity events;
// capacity <= 0 means unbounded.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Record stores an event, evicting the oldest beyond the capacity.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
	if b.capacity > 0 && len(b.events) > b.capacity {
		over := len(b.events) - b.capacity
		b.events = append(b.events[:0:0], b.events[over:]...)
		b.dropped += over
	}
}

// Events returns a copy of the retained events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns how many events were evicted by the capacity bound.
func (b *Buffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Filter returns the retained events of one kind.
func (b *Buffer) Filter(kind Kind) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Writer is a tracer streaming one line per event to an io.Writer. It is
// safe for concurrent use; write errors surface through Err.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

var _ Tracer = (*Writer)(nil)

// NewWriter returns a line-streaming tracer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Record writes the event as one line.
func (t *Writer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintln(t.w, e.String())
}

// Err returns the first write error, if any.
func (t *Writer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Multi fans events out to several tracers.
func Multi(tracers ...Tracer) Tracer { return multi(tracers) }

type multi []Tracer

func (m multi) Record(e Event) {
	for _, t := range m {
		Record(t, e)
	}
}
