// Package trace records the observable timeline of notifications —
// arrivals, transfers, reads, retractions, link transitions — for
// debugging and for inspecting why a policy wasted or lost a particular
// message. It serves both the simulator (Buffer/Writer tracers over
// simulated time) and the live networked stack (Collector, which follows
// sampled notifications publisher → broker → federation → proxy queues →
// device and attributes each terminal outcome to the queue decision that
// caused it). Tracing is optional and costs nothing when disabled (the
// nil Tracer records nothing).
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lasthop/internal/msg"
)

// Kind classifies trace events.
type Kind string

// Trace event kinds. The first block is shared between the simulator and
// the live stack; the second block exists only on the live path, where a
// notification's lifecycle spans several processes.
const (
	KindArrival  Kind = "arrival"
	KindRetract  Kind = "retract"
	KindForward  Kind = "forward"
	KindRead     Kind = "read"
	KindLinkUp   Kind = "link-up"
	KindLinkDown Kind = "link-down"

	// KindPublish marks the broker accepting a publish (trace origin).
	KindPublish Kind = "publish-accept"
	// KindRoute marks the broker routing the notification through its
	// topic shard to local subscribers (Count = fan-out width).
	KindRoute Kind = "broker-route"
	// KindFederate marks a forward over a broker-to-broker overlay edge.
	KindFederate Kind = "federation-forward"
	// KindProxyRecv marks the last-hop proxy receiving the notification
	// from its upstream broker.
	KindProxyRecv Kind = "proxy-recv"
	// KindEnqueue marks the Figure 7 queue decision: Queue names the
	// stage (outgoing, prefetch, holding, delayed) and Limit/ThresholdS/
	// DelayS snapshot the tuner values in effect.
	KindEnqueue Kind = "enqueue"
	// KindTune marks an auto-tuner adjustment of the prefetch limit or
	// expiration threshold (no notification ID; topic-scoped).
	KindTune Kind = "tune"
	// KindDeviceRecv marks the device storing a forwarded notification.
	KindDeviceRecv Kind = "device-recv"
	// KindExpire marks expiration; Queue names where the notification
	// died (a proxy stage, or "device").
	KindExpire Kind = "expire"
	// KindDrop marks removal without delivery value: a rank retraction
	// purge, or rejection below the subscription threshold.
	KindDrop Kind = "drop"
	// KindDuplicate marks a duplicate-ID rejection at the broker.
	KindDuplicate Kind = "duplicate"
	// KindLost marks an irrecoverable in-flight loss discovered by §3.5
	// resume reconciliation.
	KindLost Kind = "lost"
	// KindResume marks a recoverable resume event (in-flight notification
	// re-queued after a last-hop reconnect).
	KindResume Kind = "resume-requeue"
)

// Event is one timeline record.
type Event struct {
	// At is the simulation instant.
	At time.Time `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Topic is the affected topic, when applicable.
	Topic string `json:"topic,omitempty"`
	// ID is the affected notification, when applicable.
	ID msg.ID `json:"id,omitempty"`
	// Rank is the notification's rank at the event.
	Rank float64 `json:"rank,omitempty"`
	// Count carries a quantity (messages returned by a read, fan-out
	// width, or the size of the batch a forward traveled in).
	Count int `json:"count,omitempty"`
	// TraceID links the event to a distributed trace when the
	// notification carried a context; empty for unsampled notifications.
	TraceID string `json:"trace,omitempty"`
	// Node names the process that recorded the event (broker, proxy, or
	// device name). The Collector fills it in when left empty.
	Node string `json:"node,omitempty"`
	// Queue names the proxy stage the event concerns: outgoing, prefetch,
	// holding, delayed, or "device" for device-side storage events.
	Queue string `json:"queue,omitempty"`
	// Cause qualifies the event with the decision that produced it
	// (e.g. "quiet-window", "daily-cap", "rank-retraction").
	Cause string `json:"cause,omitempty"`
	// Limit is the prefetch limit in effect at the event, when relevant.
	Limit int `json:"limit,omitempty"`
	// ThresholdS is the expiration threshold (seconds) in effect.
	ThresholdS float64 `json:"thresholdS,omitempty"`
	// DelayS is the forwarding delay (seconds) in effect.
	DelayS float64 `json:"delayS,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case KindRead:
		return fmt.Sprintf("%s %-9s topic=%s count=%d", e.At.Format(time.RFC3339), e.Kind, e.Topic, e.Count)
	case KindLinkUp, KindLinkDown:
		return fmt.Sprintf("%s %-9s", e.At.Format(time.RFC3339), e.Kind)
	default:
		return fmt.Sprintf("%s %-9s topic=%s id=%s rank=%.2f", e.At.Format(time.RFC3339), e.Kind, e.Topic, e.ID, e.Rank)
	}
}

// Tracer consumes events. A nil Tracer is valid and records nothing (use
// the package-level Record helper).
type Tracer interface {
	Record(e Event)
}

// Record forwards an event to t when tracing is enabled.
func Record(t Tracer, e Event) {
	if t != nil {
		t.Record(e)
	}
}

// Buffer is an in-memory tracer, optionally bounded to the most recent
// capacity events. It is safe for concurrent use.
type Buffer struct {
	mu       sync.Mutex
	capacity int
	events   []Event
	dropped  int
}

var _ Tracer = (*Buffer)(nil)

// NewBuffer returns a tracer retaining the most recent capacity events;
// capacity <= 0 means unbounded.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity}
}

// Record stores an event, evicting the oldest beyond the capacity.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
	if b.capacity > 0 && len(b.events) > b.capacity {
		over := len(b.events) - b.capacity
		b.events = append(b.events[:0:0], b.events[over:]...)
		b.dropped += over
	}
}

// Events returns a copy of the retained events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns how many events were evicted by the capacity bound.
func (b *Buffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Filter returns the retained events of one kind.
func (b *Buffer) Filter(kind Kind) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Writer is a tracer streaming one line per event to an io.Writer. It is
// safe for concurrent use; write errors surface through Err.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

var _ Tracer = (*Writer)(nil)

// NewWriter returns a line-streaming tracer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Record writes the event as one line.
func (t *Writer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintln(t.w, e.String())
}

// Err returns the first write error, if any.
func (t *Writer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Multi fans events out to several tracers.
func Multi(tracers ...Tracer) Tracer { return multi(tracers) }

type multi []Tracer

func (m multi) Record(e Event) {
	for _, t := range m {
		Record(t, e)
	}
}
