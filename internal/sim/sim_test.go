package sim

import (
	"math"
	"testing"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/dist"
	"lasthop/internal/trace"
)

// quickCfg is a 60-day configuration that keeps unit tests fast while
// retaining enough events for stable percentages.
func quickCfg(mut func(*Config)) Config {
	cfg := Config{
		Seed:         1,
		Horizon:      60 * dist.Day,
		EventsPerDay: 32,
		ReadsPerDay:  2,
		Max:          8,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func mustScenario(t *testing.T, cfg Config) Scenario {
	t.Helper()
	sc, err := NewScenario(cfg)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return sc
}

func TestScenarioDeterminism(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Outage.Fraction = 0.3
		c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 4 * time.Hour}
	})
	a := mustScenario(t, cfg)
	b := mustScenario(t, cfg)
	if len(a.Arrivals) != len(b.Arrivals) || len(a.Reads) != len(b.Reads) || len(a.Outages) != len(b.Outages) {
		t.Fatal("same seed produced different scenario shapes")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := cfg
	c.Seed = 2
	other := mustScenario(t, c)
	if len(other.Arrivals) == len(a.Arrivals) && len(other.Reads) == len(a.Reads) {
		same := true
		for i := range a.Arrivals {
			if a.Arrivals[i] != other.Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical arrivals")
		}
	}
}

func TestScenarioIndependentStreams(t *testing.T) {
	// Changing the outage fraction must not perturb arrivals or reads.
	cfg := quickCfg(nil)
	a := mustScenario(t, cfg)
	cfg.Outage.Fraction = 0.8
	b := mustScenario(t, cfg)
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("outage change perturbed arrivals")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("outage change perturbed arrival content")
		}
	}
	if len(a.Reads) != len(b.Reads) {
		t.Fatal("outage change perturbed reads")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Config{
		{Horizon: -1},
		{EventsPerDay: -1},
		{ReadsPerDay: -1},
		{Max: -1},
		{RankMin: 3, RankMax: 1},
		{Outage: dist.OutageConfig{Fraction: 1.5}},
		{Churn: ChurnConfig{Portion: -0.1}},
	}
	for i, cfg := range bad {
		if _, err := NewScenario(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickCfg(func(c *Config) { c.Outage.Fraction = 0.4 })
	sc := mustScenario(t, cfg)
	r1, err := Run(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Forwarded != r2.Forwarded || r1.ReadCount != r2.ReadCount {
		t.Errorf("same scenario diverged: %+v vs %+v", r1, r2)
	}
}

func TestOverflowWasteMatchesFormula(t *testing.T) {
	// Paper §3.2: waste% ≈ 1 - uf*Max/ef under on-line forwarding.
	tests := []struct {
		uf   float64
		max  int
		want float64
	}{
		{1, 4, 87.5},
		{2, 8, 50},
		{1, 32, 0},
		{4, 8, 0},
	}
	for _, tt := range tests {
		cfg := quickCfg(func(c *Config) {
			c.ReadsPerDay = tt.uf
			c.Max = tt.max
			c.Horizon = 120 * dist.Day
		})
		sc := mustScenario(t, cfg)
		res, err := Run(sc, core.OnlineConfig(TopicName))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.WastePct-tt.want) > 6 {
			t.Errorf("uf=%v Max=%d: waste = %.1f%%, want ~%.1f%%", tt.uf, tt.max, res.WastePct, tt.want)
		}
	}
}

func TestOnDemandHasNoWaste(t *testing.T) {
	cfg := quickCfg(func(c *Config) { c.Outage.Fraction = 0.5 })
	sc := mustScenario(t, cfg)
	res, err := Run(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	if res.WastePct != 0 {
		t.Errorf("on-demand waste = %.2f%%, want 0", res.WastePct)
	}
	if res.Forwarded != res.ReadCount {
		t.Errorf("on-demand forwarded %d != read %d", res.Forwarded, res.ReadCount)
	}
}

func TestOnlineHasNoLoss(t *testing.T) {
	cfg := quickCfg(func(c *Config) { c.Outage.Fraction = 0.5 })
	sc := mustScenario(t, cfg)
	cmp, err := Compare(sc, core.OnlineConfig(TopicName))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.LossPct != 0 {
		t.Errorf("online loss = %.2f%%, want 0 by definition", cmp.LossPct)
	}
}

func TestOnDemandLossGrowsWithOutage(t *testing.T) {
	var prev float64 = -1
	for _, frac := range []float64{0, 0.5, 0.9} {
		cfg := quickCfg(func(c *Config) {
			c.ReadsPerDay = 0.5
			c.Outage.Fraction = frac
		})
		sc := mustScenario(t, cfg)
		cmp, err := Compare(sc, core.OnDemandConfig(TopicName, cfg.Max))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.LossPct < prev-3 {
			t.Errorf("loss at outage %v = %.1f%% dropped below %.1f%%", frac, cmp.LossPct, prev)
		}
		prev = cmp.LossPct
		if frac == 0 && cmp.LossPct > 5 {
			t.Errorf("loss with perfect network = %.1f%%, want ~0", cmp.LossPct)
		}
		if frac == 0.9 && cmp.LossPct < 30 {
			t.Errorf("loss at 90%% outage = %.1f%%, want substantial", cmp.LossPct)
		}
	}
}

func TestTotalOutageHasNoLoss(t *testing.T) {
	// At 100% outage both policies are equally powerless (paper Fig. 2:
	// loss drops back to 0 at the point of no connectivity).
	cfg := quickCfg(func(c *Config) { c.Outage.Fraction = 1 })
	sc := mustScenario(t, cfg)
	cmp, err := Compare(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.LossPct != 0 {
		t.Errorf("loss at total outage = %.1f%%", cmp.LossPct)
	}
	if cmp.Baseline.Forwarded != 0 || cmp.Policy.Forwarded != 0 {
		t.Errorf("messages crossed a dead link: base %d, policy %d",
			cmp.Baseline.Forwarded, cmp.Policy.Forwarded)
	}
}

func TestBufferPrefetchBeatsExtremes(t *testing.T) {
	// The paper's headline (§3.2/Fig. 3): with a prefetch limit around
	// 2x the daily read volume, both waste and loss stay low, whereas
	// online wastes heavily and on-demand loses heavily.
	cfg := quickCfg(func(c *Config) {
		c.ReadsPerDay = 2
		c.Max = 8
		c.Outage.Fraction = 0.7
		c.Horizon = 120 * dist.Day
	})
	sc := mustScenario(t, cfg)

	online, err := Compare(sc, core.OnlineConfig(TopicName))
	if err != nil {
		t.Fatal(err)
	}
	onDemand, err := Compare(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := Compare(sc, core.BufferConfig(TopicName, cfg.Max, 32))
	if err != nil {
		t.Fatal(err)
	}

	if online.WastePct < 30 {
		t.Errorf("online waste = %.1f%%, expected heavy overflow waste", online.WastePct)
	}
	if onDemand.LossPct < 10 {
		t.Errorf("on-demand loss = %.1f%%, expected heavy outage loss", onDemand.LossPct)
	}
	if buffered.WastePct > 12 {
		t.Errorf("buffer waste = %.1f%%, want low", buffered.WastePct)
	}
	if buffered.LossPct > 12 {
		t.Errorf("buffer loss = %.1f%%, want low", buffered.LossPct)
	}
}

func TestExpirationWasteShortLifetimes(t *testing.T) {
	// Short-lived notifications under on-line forwarding mostly expire
	// before the user reads them (Fig. 4 left edge); long-lived ones do
	// not (right edge).
	base := func(mean time.Duration) float64 {
		cfg := quickCfg(func(c *Config) {
			c.Max = 0 // Max = ∞ as in §3.3
			c.ReadsPerDay = 2
			c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
		})
		sc := mustScenario(t, cfg)
		res, err := Run(sc, core.OnlineConfig(TopicName))
		if err != nil {
			t.Fatal(err)
		}
		return res.WastePct
	}
	short := base(time.Minute)
	long := base(30 * dist.Day)
	if short < 80 {
		t.Errorf("1-minute lifetimes: waste = %.1f%%, want ~100%%", short)
	}
	if long > 10 {
		t.Errorf("30-day lifetimes: waste = %.1f%%, want ~0%%", long)
	}
}

func TestExpirationLossHump(t *testing.T) {
	// Fig. 5: under heavy outage, loss is low for very short lifetimes
	// (nothing to read either way) and low again for very long ones
	// (on-demand eventually catches up); it peaks in between.
	loss := func(mean time.Duration) float64 {
		cfg := quickCfg(func(c *Config) {
			c.Max = 0
			c.ReadsPerDay = 4
			c.Outage.Fraction = 0.95
			c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: mean}
			c.Horizon = 120 * dist.Day
		})
		sc := mustScenario(t, cfg)
		cmp, err := Compare(sc, core.OnDemandConfig(TopicName, 0))
		if err != nil {
			t.Fatal(err)
		}
		return cmp.LossPct
	}
	short := loss(30 * time.Second)
	mid := loss(6 * time.Hour)
	long := loss(60 * dist.Day)
	if !(mid > short+5 && mid > long+5) {
		t.Errorf("loss hump missing: short=%.1f mid=%.1f long=%.1f", short, mid, long)
	}
}

func TestExpirationThresholdReducesWaste(t *testing.T) {
	// Fig. 6: holding back notifications that expire within the
	// threshold trades waste for loss.
	cfg := quickCfg(func(c *Config) {
		c.ReadsPerDay = 2
		c.Max = 8
		c.Outage.Fraction = 0.9
		c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 6 * time.Hour}
		c.Horizon = 120 * dist.Day
	})
	sc := mustScenario(t, cfg)

	without, err := Compare(sc, core.BufferConfig(TopicName, cfg.Max, 32))
	if err != nil {
		t.Fatal(err)
	}
	guarded := core.BufferConfig(TopicName, cfg.Max, 32)
	guarded.ExpirationThreshold = 8 * time.Hour
	with, err := Compare(sc, guarded)
	if err != nil {
		t.Fatal(err)
	}
	if with.WastePct >= without.WastePct {
		t.Errorf("threshold did not reduce waste: %.1f%% -> %.1f%%", without.WastePct, with.WastePct)
	}
	if with.LossPct < without.LossPct {
		t.Errorf("threshold unexpectedly reduced loss: %.1f%% -> %.1f%%", without.LossPct, with.LossPct)
	}
}

func TestChurnDelayShieldsDevice(t *testing.T) {
	// §3.4: a delay stage lets quick retractions land before the
	// transfer, reducing vain traffic.
	cfg := quickCfg(func(c *Config) {
		c.RankThreshold = 2.5
		c.Churn = ChurnConfig{Portion: 0.3, MeanLag: 5 * time.Minute, RetractTo: 0}
	})
	sc := mustScenario(t, cfg)

	plain := core.BufferConfig(TopicName, cfg.Max, 32)
	resPlain, err := Run(sc, plain)
	if err != nil {
		t.Fatal(err)
	}
	delayed := core.BufferConfig(TopicName, cfg.Max, 32)
	delayed.Delay = 30 * time.Minute
	resDelayed, err := Run(sc, delayed)
	if err != nil {
		t.Fatal(err)
	}
	if resDelayed.Device.RankDropsApplied >= resPlain.Device.RankDropsApplied {
		t.Errorf("delay stage did not reduce on-device retractions: %d -> %d",
			resPlain.Device.RankDropsApplied, resDelayed.Device.RankDropsApplied)
	}
}

func TestDeviceCapacityCausesEvictions(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.ReadsPerDay = 0.5
		c.DeviceCapacity = 50
	})
	sc := mustScenario(t, cfg)
	res, err := Run(sc, core.OnlineConfig(TopicName))
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.EvictedStorage == 0 {
		t.Error("no evictions despite overflow and tiny storage")
	}
	if res.WastePct < 50 {
		t.Errorf("waste = %.1f%%, want high with tiny storage", res.WastePct)
	}
}

func TestDeviceBatteryDeath(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.DeviceBattery = 100 // dies after ~100 receives
	})
	sc := mustScenario(t, cfg)
	res, err := Run(sc, core.OnlineConfig(TopicName))
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwarded > 110 {
		t.Errorf("dead device kept receiving: %d", res.Forwarded)
	}
	if res.Device.BatteryUsed < 99 {
		t.Errorf("battery underused: %v", res.Device.BatteryUsed)
	}
}

func TestRatePolicyRuns(t *testing.T) {
	cfg := quickCfg(func(c *Config) { c.Outage.Fraction = 0.5 })
	sc := mustScenario(t, cfg)
	cmp, err := Compare(sc, core.RateConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	// Rate-based prefetching must land between the extremes: some
	// forwarding happened, but far less than the arrival volume.
	if cmp.Policy.Forwarded == cmp.Policy.ReadCount {
		t.Error("rate policy never prefetched")
	}
	if cmp.WastePct > 75 {
		t.Errorf("rate policy waste = %.1f%%, want bounded", cmp.WastePct)
	}
}

func TestUnifiedPolicyLowWasteLowLoss(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Outage.Fraction = 0.7
		c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 5 * dist.Day}
		c.Horizon = 120 * dist.Day
	})
	sc := mustScenario(t, cfg)
	unified, err := Compare(sc, core.UnifiedConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	online, err := Compare(sc, core.OnlineConfig(TopicName))
	if err != nil {
		t.Fatal(err)
	}
	onDemand, err := Compare(sc, core.OnDemandConfig(TopicName, cfg.Max))
	if err != nil {
		t.Fatal(err)
	}
	score := func(c Comparison) float64 { return c.WastePct + c.LossPct }
	if score(unified) >= score(online) || score(unified) >= score(onDemand) {
		t.Errorf("unified waste+loss = %.1f, want below online %.1f and on-demand %.1f",
			score(unified), score(online), score(onDemand))
	}
	if unified.LossPct > 15 {
		t.Errorf("unified loss = %.1f%%", unified.LossPct)
	}
	// With 5-day expirations a 32-deep device buffer inevitably rots a
	// bit; the waste must still stay well below the online policy's.
	if unified.WastePct > 30 {
		t.Errorf("unified waste = %.1f%%", unified.WastePct)
	}
}

func TestCompareStats(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Horizon = 30 * dist.Day
		c.Outage.Fraction = 0.7
	})
	wasteStats, lossStats, err := CompareStats(cfg, core.OnDemandConfig(TopicName, cfg.Max), 4)
	if err != nil {
		t.Fatal(err)
	}
	if wasteStats.N() != 4 || lossStats.N() != 4 {
		t.Fatalf("N = %d/%d", wasteStats.N(), lossStats.N())
	}
	if wasteStats.Mean() != 0 {
		t.Errorf("on-demand waste mean = %v", wasteStats.Mean())
	}
	if lossStats.Mean() <= 0 || lossStats.Mean() > 100 {
		t.Errorf("loss mean = %v", lossStats.Mean())
	}
	if lossStats.Min() > lossStats.Max() {
		t.Error("min exceeds max")
	}
	if lossStats.StdDev() < 0 {
		t.Error("negative stddev")
	}
	// Different seeds genuinely vary.
	if lossStats.Min() == lossStats.Max() {
		t.Error("replications produced identical loss — seeds not varied?")
	}
}

func TestRunTracedTimeline(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Horizon = 20 * dist.Day
		c.Outage.Fraction = 0.5
		c.Churn = ChurnConfig{Portion: 0.2, RetractTo: 0}
		c.RankThreshold = 1
	})
	sc := mustScenario(t, cfg)
	buf := trace.NewBuffer(0)
	res, err := RunTraced(sc, core.BufferConfig(TopicName, cfg.Max, 16), buf)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := buf.Filter(trace.KindArrival)
	if len(arrivals) != res.Arrivals {
		t.Errorf("traced %d arrivals, ran %d", len(arrivals), res.Arrivals)
	}
	forwards := buf.Filter(trace.KindForward)
	if len(forwards) < res.Forwarded {
		t.Errorf("traced %d forwards, device received %d", len(forwards), res.Forwarded)
	}
	reads := buf.Filter(trace.KindRead)
	if len(reads) != len(sc.Reads) {
		t.Errorf("traced %d reads, scheduled %d", len(reads), len(sc.Reads))
	}
	if len(buf.Filter(trace.KindRetract)) == 0 {
		t.Error("no retractions traced despite churn")
	}
	if len(buf.Filter(trace.KindLinkDown)) == 0 || len(buf.Filter(trace.KindLinkUp)) == 0 {
		t.Error("no link transitions traced despite outages")
	}
	// The timeline is chronological.
	events := buf.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
}

func TestCompareAveraged(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Horizon = 30 * dist.Day
		c.Outage.Fraction = 0.5
	})
	waste, loss, first, err := CompareAveraged(cfg, core.OnDemandConfig(TopicName, cfg.Max), 3)
	if err != nil {
		t.Fatal(err)
	}
	if waste != 0 {
		t.Errorf("averaged on-demand waste = %v", waste)
	}
	if loss < 0 || loss > 100 {
		t.Errorf("averaged loss = %v", loss)
	}
	if first.Baseline.Arrivals == 0 {
		t.Error("first comparison missing")
	}
}
