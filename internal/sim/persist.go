package sim

// Scenario persistence: a materialized scenario can be saved and reloaded,
// pinning the exact randomness of an experiment for bug reports and
// cross-machine reproduction (the generated scenario is already
// deterministic in the seed, but a file survives generator changes).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// scenarioFile is the on-disk shape, versioned for forward compatibility.
type scenarioFile struct {
	Version  int      `json:"version"`
	Scenario Scenario `json:"scenario"`
}

const scenarioVersion = 1

// Save writes the scenario as JSON.
func (s Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(scenarioFile{Version: scenarioVersion, Scenario: s}); err != nil {
		return fmt.Errorf("save scenario: %w", err)
	}
	return nil
}

// SaveFile writes the scenario to a file.
func (s Scenario) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save scenario: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := s.Save(w); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("save scenario: %w", err)
	}
	return f.Close()
}

// LoadScenario reads a scenario saved with Save.
func LoadScenario(r io.Reader) (Scenario, error) {
	var file scenarioFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return Scenario{}, fmt.Errorf("load scenario: %w", err)
	}
	if file.Version != scenarioVersion {
		return Scenario{}, fmt.Errorf("load scenario: unsupported version %d", file.Version)
	}
	if err := file.Scenario.validateShape(); err != nil {
		return Scenario{}, fmt.Errorf("load scenario: %w", err)
	}
	return file.Scenario, nil
}

// LoadScenarioFile reads a scenario from a file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("load scenario: %w", err)
	}
	defer f.Close()
	return LoadScenario(bufio.NewReader(f))
}

// validateShape rejects scenarios whose event streams are malformed (out
// of order or outside the horizon), which would otherwise surface as
// confusing simulator behavior.
func (s Scenario) validateShape() error {
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	horizon := s.Cfg.Horizon
	for i, a := range s.Arrivals {
		if a.At < 0 || a.At >= horizon {
			return fmt.Errorf("arrival %d at %v outside horizon %v", i, a.At, horizon)
		}
		if i > 0 && a.At < s.Arrivals[i-1].At {
			return fmt.Errorf("arrivals out of order at %d", i)
		}
		if a.Lifetime < 0 {
			return fmt.Errorf("arrival %d has negative lifetime", i)
		}
	}
	for i, r := range s.Reads {
		if r < 0 || r >= horizon {
			return fmt.Errorf("read %d at %v outside horizon %v", i, r, horizon)
		}
		if i > 0 && r < s.Reads[i-1] {
			return fmt.Errorf("reads out of order at %d", i)
		}
	}
	for i, o := range s.Outages {
		if o.End <= o.Start || o.Start < 0 || o.End > horizon {
			return fmt.Errorf("outage %d [%v, %v) invalid", i, o.Start, o.End)
		}
		if i > 0 && o.Start < s.Outages[i-1].End {
			return fmt.Errorf("outages overlap at %d", i)
		}
	}
	return nil
}
