package sim

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/device"
	"lasthop/internal/dist"
	"lasthop/internal/link"
	"lasthop/internal/metrics"
	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
	"lasthop/internal/simtime"
	"lasthop/internal/stats"
	"lasthop/internal/trace"
)

// Start is the fixed virtual start instant of every simulation.
var Start = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TopicName is the single simulated topic.
const TopicName = "sim/topic"

const publisherName = "sim/publisher"

// Result summarizes one policy run over a scenario.
type Result struct {
	// Policy names the forwarding policy that ran.
	Policy core.PolicyKind
	// Arrivals counts published notifications.
	Arrivals int
	// Forwarded counts distinct notifications transferred to the device.
	Forwarded int
	// ReadSet identifies the notifications the user actually read.
	ReadSet msg.IDSet
	// ReadCount is len(ReadSet).
	ReadCount int
	// WastePct is the percentage of forwarded messages never read
	// (§3.1).
	WastePct float64
	// Device, Proxy, and Link expose the component accounting.
	Device device.Stats
	Proxy  core.Stats
	Link   link.Stats
}

// Comparison pairs a policy run with the on-line baseline run of the same
// scenario and derives the paper's two inefficiency metrics.
type Comparison struct {
	Baseline Result
	Policy   Result
	// WastePct is the policy run's waste.
	WastePct float64
	// LossPct is the percentage of baseline-read messages the policy
	// failed to deliver (§3.1).
	LossPct float64
}

// forwardToDevice adapts the device as the proxy's Forwarder; the pointer
// is set after both parties exist (they reference each other).
type forwardToDevice struct {
	dev   *device.Device
	sched simtime.Scheduler
	tr    trace.Tracer
}

var _ core.Forwarder = (*forwardToDevice)(nil)

func (f *forwardToDevice) Forward(n *msg.Notification) error {
	err := f.dev.Receive(n)
	if err == nil && f.tr != nil {
		trace.Record(f.tr, trace.Event{
			At: f.sched.Now(), Kind: trace.KindForward,
			Topic: n.Topic, ID: n.ID, Rank: n.Rank,
		})
	}
	return err
}

// Run replays a scenario under the given forwarding policy. The policy
// config's Name, ReadSize, and RankThreshold are overridden from the
// scenario's subscriber parameters.
func Run(sc Scenario, policy core.TopicConfig) (Result, error) {
	return RunTraced(sc, policy, nil)
}

// RunTraced is Run with an event tracer recording the run's timeline
// (arrivals, transfers, reads, retractions, link transitions). A nil
// tracer records nothing.
func RunTraced(sc Scenario, policy core.TopicConfig, tr trace.Tracer) (Result, error) {
	cfg := sc.Cfg
	sched := simtime.NewVirtual(Start)
	lnk := link.New(sched, !dist.DownAt(sc.Outages, 0))
	fwd := &forwardToDevice{sched: sched, tr: tr}
	proxy := core.New(sched, fwd)
	dev := device.New(sched, lnk, proxy, device.Config{
		Capacity:        cfg.DeviceCapacity,
		BatteryCapacity: cfg.DeviceBattery,
		RankThreshold:   cfg.RankThreshold,
	})
	fwd.dev = dev
	proxy.SetNetwork(lnk.Up())
	lnk.OnChange(func(up bool) {
		if tr != nil {
			kind := trace.KindLinkDown
			if up {
				kind = trace.KindLinkUp
			}
			trace.Record(tr, trace.Event{At: sched.Now(), Kind: kind})
		}
		proxy.SetNetwork(up)
	})

	policy.Name = TopicName
	policy.ReadSize = cfg.Max
	policy.RankThreshold = cfg.RankThreshold
	if err := proxy.AddTopic(policy); err != nil {
		return Result{}, fmt.Errorf("run: %w", err)
	}

	broker := pubsub.NewBroker("sim/broker")
	if err := broker.Advertise(TopicName, publisherName); err != nil {
		return Result{}, fmt.Errorf("run: %w", err)
	}
	subscription := msg.Subscription{
		Topic:      TopicName,
		Subscriber: "sim/proxy",
		Options: msg.SubscriptionOptions{
			Max:       cfg.Max,
			Threshold: cfg.RankThreshold,
			Mode:      policy.Mode,
		},
	}
	if err := broker.Subscribe(subscription, proxy.Subscriber()); err != nil {
		return Result{}, fmt.Errorf("run: %w", err)
	}

	// Schedule the workload. Publish errors other than rejection of
	// expired content indicate a harness bug and are collected.
	var harnessErr error
	fail := func(err error) {
		if harnessErr == nil && err != nil {
			harnessErr = err
		}
	}
	for i, a := range sc.Arrivals {
		a := a
		id := msg.ID("e" + strconv.Itoa(i))
		published := Start.Add(a.At)
		n := &msg.Notification{
			ID:        id,
			Topic:     TopicName,
			Publisher: publisherName,
			Rank:      a.Rank,
			Published: published,
		}
		if a.Lifetime > 0 {
			n.Expires = published.Add(a.Lifetime)
		}
		sched.Schedule(a.At, func() {
			trace.Record(tr, trace.Event{
				At: sched.Now(), Kind: trace.KindArrival,
				Topic: TopicName, ID: id, Rank: n.Rank,
			})
			fail(broker.Publish(n))
		})
		if a.RetractAt > 0 {
			update := msg.RankUpdate{Topic: TopicName, ID: id, NewRank: a.RetractTo}
			sched.Schedule(a.RetractAt, func() {
				trace.Record(tr, trace.Event{
					At: sched.Now(), Kind: trace.KindRetract,
					Topic: TopicName, ID: id, Rank: update.NewRank,
				})
				fail(broker.PublishRankUpdate(update))
			})
		}
	}
	for _, at := range sc.Reads {
		sched.Schedule(at, func() {
			batch, err := dev.Read(TopicName, cfg.Max)
			if err != nil && !errors.Is(err, device.ErrBatteryDead) {
				fail(err)
			}
			trace.Record(tr, trace.Event{
				At: sched.Now(), Kind: trace.KindRead,
				Topic: TopicName, Count: len(batch),
			})
		})
	}
	link.Drive(sched, lnk, sc.Outages)

	// Stop one nanosecond before the horizon so an outage ending exactly
	// at the boundary (the 100% downtime case) cannot flush the queues in
	// a final instant the paper's year never contains.
	sched.RunUntil(Start.Add(cfg.Horizon - time.Nanosecond))
	if harnessErr != nil {
		return Result{}, fmt.Errorf("run: %w", harnessErr)
	}

	ds := dev.Stats()
	res := Result{
		Policy:    policy.Policy,
		Arrivals:  len(sc.Arrivals),
		Forwarded: ds.Received,
		ReadSet:   dev.ReadSet(TopicName),
		ReadCount: ds.ReadCount,
		Device:    ds,
		Proxy:     proxy.Stats(),
		Link:      lnk.Stats(),
	}
	res.WastePct = metrics.WastePct(res.Forwarded, res.ReadCount)

	acct := metrics.Accounting{
		Published:      res.Arrivals,
		Forwarded:      ds.Received,
		Read:           ds.ReadCount,
		ExpiredUnread:  ds.ExpiredUnread,
		EvictedStorage: ds.EvictedStorage,
		RankDropped:    ds.RankDropsApplied,
		ResidualQueue:  dev.QueueLen(TopicName),
	}
	if err := acct.Check(); err != nil {
		return res, fmt.Errorf("run: accounting violation: %w", err)
	}
	return res, nil
}

// Compare runs the on-line baseline and the given policy over the same
// scenario and derives waste and loss.
func Compare(sc Scenario, policy core.TopicConfig) (Comparison, error) {
	base, err := Run(sc, core.OnlineConfig(TopicName))
	if err != nil {
		return Comparison{}, fmt.Errorf("baseline: %w", err)
	}
	pol, err := Run(sc, policy)
	if err != nil {
		return Comparison{}, fmt.Errorf("policy: %w", err)
	}
	return Comparison{
		Baseline: base,
		Policy:   pol,
		WastePct: pol.WastePct,
		LossPct:  metrics.LossPct(base.ReadSet, pol.ReadSet),
	}, nil
}

// CompareStats repeats Compare over replications seeds derived from
// cfg.Seed and returns full summary statistics of waste and loss, for
// reporting means with dispersion.
func CompareStats(cfg Config, policy core.TopicConfig, replications int) (wasteStats, lossStats stats.Running, err error) {
	if replications < 1 {
		replications = 1
	}
	for r := 0; r < replications; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)*0x9e3779b9
		sc, serr := NewScenario(runCfg)
		if serr != nil {
			return wasteStats, lossStats, serr
		}
		cmp, cerr := Compare(sc, policy)
		if cerr != nil {
			return wasteStats, lossStats, cerr
		}
		wasteStats.Add(cmp.WastePct)
		lossStats.Add(cmp.LossPct)
	}
	return wasteStats, lossStats, nil
}

// CompareAveraged repeats Compare over replications seeds derived from
// cfg.Seed and returns the mean waste and loss, reducing the variance of
// single-scenario estimates. The first comparison is returned for
// inspection.
func CompareAveraged(cfg Config, policy core.TopicConfig, replications int) (waste, loss float64, first Comparison, err error) {
	if replications < 1 {
		replications = 1
	}
	for r := 0; r < replications; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)*0x9e3779b9
		sc, serr := NewScenario(runCfg)
		if serr != nil {
			return 0, 0, Comparison{}, serr
		}
		cmp, cerr := Compare(sc, policy)
		if cerr != nil {
			return 0, 0, Comparison{}, cerr
		}
		if r == 0 {
			first = cmp
		}
		waste += cmp.WastePct
		loss += cmp.LossPct
	}
	waste /= float64(replications)
	loss /= float64(replications)
	return waste, loss, first, nil
}
