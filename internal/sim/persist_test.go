package sim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lasthop/internal/core"
	"lasthop/internal/dist"
)

func TestScenarioSaveLoadRoundTrip(t *testing.T) {
	cfg := quickCfg(func(c *Config) {
		c.Horizon = 20 * dist.Day
		c.Outage.Fraction = 0.5
		c.Expiration = dist.ExpirationConfig{Kind: dist.ExpExpiration, Mean: 6 * time.Hour}
		c.Churn = ChurnConfig{Portion: 0.2, RetractTo: 0}
	})
	orig := mustScenario(t, cfg)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Arrivals) != len(orig.Arrivals) ||
		len(loaded.Reads) != len(orig.Reads) ||
		len(loaded.Outages) != len(orig.Outages) {
		t.Fatal("round trip changed scenario shape")
	}
	// The loaded scenario must replay to identical results.
	r1, err := Run(orig, core.BufferConfig(TopicName, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(loaded, core.BufferConfig(TopicName, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Forwarded != r2.Forwarded || r1.ReadCount != r2.ReadCount || r1.WastePct != r2.WastePct {
		t.Errorf("replay diverged: %+v vs %+v", r1, r2)
	}
}

func TestScenarioSaveLoadFile(t *testing.T) {
	cfg := quickCfg(func(c *Config) { c.Horizon = 5 * dist.Day })
	orig := mustScenario(t, cfg)
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenarioFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Arrivals) != len(orig.Arrivals) {
		t.Error("file round trip changed arrivals")
	}
	if _, err := LoadScenarioFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestLoadScenarioRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadScenario(strings.NewReader(`{"version":99,"scenario":{}}`)); err == nil {
		t.Error("unknown version accepted")
	}
	// Structurally invalid: arrival beyond the horizon.
	bad := `{"version":1,"scenario":{"Cfg":{"Horizon":1000,"EventsPerDay":1,"ReadsPerDay":1},` +
		`"Arrivals":[{"At":5000,"Rank":1}],"Reads":null,"Outages":null}}`
	if _, err := LoadScenario(strings.NewReader(bad)); err == nil {
		t.Error("out-of-horizon arrival accepted")
	}
	// Out-of-order reads.
	bad2 := `{"version":1,"scenario":{"Cfg":{"Horizon":100000,"EventsPerDay":1,"ReadsPerDay":1},` +
		`"Arrivals":null,"Reads":[500,100],"Outages":null}}`
	if _, err := LoadScenario(strings.NewReader(bad2)); err == nil {
		t.Error("out-of-order reads accepted")
	}
}
