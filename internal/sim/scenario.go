// Package sim is the discrete-event simulator of the last hop (paper §3):
// one proxy attached to one mobile device, subscribed to one topic, driven
// for a virtual year by Poisson notification arrivals, a randomized user
// read schedule, and network outages.
//
// A Scenario is generated deterministically from a seed and then replayed
// under different forwarding policies; comparing a policy run against the
// on-line baseline run of the same scenario yields the paper's waste and
// loss metrics.
package sim

import (
	"fmt"
	"time"

	"lasthop/internal/dist"
)

// Year is the default experiment horizon ("each experimental run lasted
// for one virtual year").
const Year = 365 * dist.Day

// Config parameterizes scenario generation and the simulated subscriber.
type Config struct {
	// Seed drives all randomness; equal seeds give equal scenarios.
	Seed uint64
	// Horizon is the simulated duration; zero defaults to one year.
	Horizon time.Duration
	// EventsPerDay is the paper's event frequency; zero defaults to 32.
	EventsPerDay float64
	// ReadsPerDay is the paper's user frequency; zero defaults to 2.
	ReadsPerDay float64
	// Max is the subscriber's quantitative limit per read; zero means
	// unlimited (Max = ∞).
	Max int
	// RankThreshold is the subscriber's qualitative limit.
	RankThreshold float64
	// RankMin and RankMax bound the uniform rank distribution of
	// published notifications; both zero defaults to [0, 5).
	RankMin, RankMax float64
	// Expiration configures notification lifetimes.
	Expiration dist.ExpirationConfig
	// Outage configures the last-hop outage process.
	Outage dist.OutageConfig
	// Churn configures rank retractions (§3.4 workload).
	Churn ChurnConfig
	// DeviceCapacity bounds device storage; zero means unbounded.
	DeviceCapacity int
	// DeviceBattery bounds device energy; zero means unbounded.
	DeviceBattery float64
}

// ChurnConfig describes a rank-retraction workload: a portion of published
// notifications later has its rank revised down to RetractTo ("malicious
// users retracted after reaching mailboxes but before being read").
type ChurnConfig struct {
	// Portion is the fraction of notifications that get retracted.
	Portion float64
	// MeanLag is the mean delay (exponential) between publication and
	// retraction; zero defaults to 10 minutes.
	MeanLag time.Duration
	// RetractTo is the revised rank, normally below the subscriber's
	// threshold.
	RetractTo float64
}

func (c Config) withDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = Year
	}
	if c.EventsPerDay == 0 {
		c.EventsPerDay = 32
	}
	if c.ReadsPerDay == 0 {
		c.ReadsPerDay = 2
	}
	if c.RankMin == 0 && c.RankMax == 0 {
		c.RankMax = 5
	}
	if c.Churn.Portion > 0 && c.Churn.MeanLag == 0 {
		c.Churn.MeanLag = 10 * time.Minute
	}
	return c
}

// Validate rejects configurations the simulator cannot honor.
func (c Config) Validate() error {
	switch {
	case c.Horizon < 0:
		return fmt.Errorf("negative horizon %v", c.Horizon)
	case c.EventsPerDay < 0:
		return fmt.Errorf("negative event frequency %v", c.EventsPerDay)
	case c.ReadsPerDay < 0:
		return fmt.Errorf("negative user frequency %v", c.ReadsPerDay)
	case c.Max < 0:
		return fmt.Errorf("negative Max %d", c.Max)
	case c.RankMax < c.RankMin:
		return fmt.Errorf("rank range [%v, %v) is empty", c.RankMin, c.RankMax)
	case c.Outage.Fraction < 0 || c.Outage.Fraction > 1:
		return fmt.Errorf("outage fraction %v outside [0, 1]", c.Outage.Fraction)
	case c.Churn.Portion < 0 || c.Churn.Portion > 1:
		return fmt.Errorf("churn portion %v outside [0, 1]", c.Churn.Portion)
	default:
		return nil
	}
}

// Arrival is one pre-generated notification arrival.
type Arrival struct {
	// At is the offset from the simulation start.
	At time.Duration
	// Rank is the published rank.
	Rank float64
	// Lifetime is how long the notification stays relevant; zero means
	// it never expires.
	Lifetime time.Duration
	// RetractAt, when positive, is the offset at which the rank is
	// revised down to RetractTo.
	RetractAt time.Duration
	// RetractTo is the revised rank for retracted notifications.
	RetractTo float64
}

// Scenario is one fully materialized random instance: identical scenarios
// replayed under different policies experience identical randomness, which
// is what makes waste/loss comparisons well-defined.
type Scenario struct {
	// Cfg is the generating configuration with defaults applied.
	Cfg Config
	// Arrivals are the notification arrivals, sorted by time.
	Arrivals []Arrival
	// Reads are the user read instants, sorted.
	Reads []time.Duration
	// Outages are the link outage intervals, sorted and disjoint.
	Outages []dist.Interval
}

// NewScenario generates the scenario for a configuration. Each stochastic
// process draws from an independent stream, so e.g. changing the outage
// fraction does not perturb the arrival sequence.
func NewScenario(cfg Config) (Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	cfg = cfg.withDefaults()
	root := dist.New(cfg.Seed)
	arrRng := root.Split("arrivals")
	rankRng := root.Split("ranks")
	expRng := root.Split("expirations")
	readRng := root.Split("reads")
	outRng := root.Split("outages")
	churnRng := root.Split("churn")

	times := dist.PoissonProcess(arrRng, cfg.EventsPerDay, cfg.Horizon)
	arrivals := make([]Arrival, len(times))
	for i, at := range times {
		a := Arrival{
			At:       at,
			Rank:     rankRng.Uniform(cfg.RankMin, cfg.RankMax),
			Lifetime: cfg.Expiration.Sample(expRng),
		}
		if cfg.Churn.Portion > 0 && churnRng.Float64() < cfg.Churn.Portion {
			lag := time.Duration(churnRng.Exp(float64(cfg.Churn.MeanLag)))
			if lag < time.Second {
				lag = time.Second
			}
			a.RetractAt = at + lag
			a.RetractTo = cfg.Churn.RetractTo
		}
		arrivals[i] = a
	}

	reads := dist.ReadSchedule(readRng, dist.ReadScheduleConfig{PerDay: cfg.ReadsPerDay}, cfg.Horizon)
	outages := dist.OutageSchedule(outRng, cfg.Outage, cfg.Horizon)
	return Scenario{Cfg: cfg, Arrivals: arrivals, Reads: reads, Outages: outages}, nil
}
