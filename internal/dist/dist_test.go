package dist

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const year = 365 * Day

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Float64() == New(2).Float64() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	a := g.Split("arrivals")
	g2 := New(7)
	b := g2.Split("arrivals")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split with same label and parent seed diverged")
		}
	}
	c := New(7).Split("reads")
	d := New(7).Split("arrivals")
	same := true
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different labels produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	g := New(1)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("exponential mean = %v, want ~10", mean)
	}
}

func TestNormalTrunc(t *testing.T) {
	g := New(2)
	for i := 0; i < 10000; i++ {
		if v := g.NormalTrunc(1, 5, 0); v < 0 {
			t.Fatalf("truncated normal produced %v < 0", v)
		}
	}
	// Pathological parameters must terminate and return the floor.
	if v := g.NormalTrunc(-1e12, 1, 0); v != 0 {
		t.Errorf("pathological truncation = %v, want 0", v)
	}
}

func TestPoissonMoments(t *testing.T) {
	g := New(3)
	for _, mean := range []float64{0.5, 4, 100} {
		sum, sumSq := 0.0, 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			v := float64(g.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("non-positive mean must give 0")
	}
}

func TestHyperexpMoments(t *testing.T) {
	g := New(4)
	const n = 300000
	for _, cv := range []float64{1, 2, 4} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := g.Hyperexp(10, cv)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		gotCV := math.Sqrt(variance) / mean
		if math.Abs(mean-10) > 0.5 {
			t.Errorf("Hyperexp cv=%v mean = %v, want ~10", cv, mean)
		}
		if math.Abs(gotCV-cv) > 0.15*cv {
			t.Errorf("Hyperexp cv=%v measured cv = %v", cv, gotCV)
		}
	}
}

func TestPoissonProcess(t *testing.T) {
	g := New(5)
	events := PoissonProcess(g, 32, year)
	perDay := float64(len(events)) / 365
	if math.Abs(perDay-32) > 1.5 {
		t.Errorf("rate = %v/day, want ~32", perDay)
	}
	for i := 1; i < len(events); i++ {
		if events[i] < events[i-1] {
			t.Fatal("events not sorted")
		}
	}
	for _, e := range events {
		if e < 0 || e >= year {
			t.Fatalf("event %v outside horizon", e)
		}
	}
	if PoissonProcess(g, 0, year) != nil {
		t.Error("zero rate must give no events")
	}
	if PoissonProcess(g, 5, 0) != nil {
		t.Error("zero horizon must give no events")
	}
}

func TestExpirationConfigSample(t *testing.T) {
	g := New(6)
	if (ExpirationConfig{}).Sample(g) != 0 {
		t.Error("zero config must not expire")
	}
	if (ExpirationConfig{Kind: NoExpiration, Mean: time.Hour}).Sample(g) != 0 {
		t.Error("NoExpiration must not expire")
	}
	if (ExpirationConfig{Kind: ExpExpiration}).Sample(g) != 0 {
		t.Error("zero mean must not expire")
	}

	for _, kind := range []ExpirationKind{ExpExpiration, UniformExpiration, NormalExpiration} {
		cfg := ExpirationConfig{Kind: kind, Mean: time.Hour}
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			life := cfg.Sample(g)
			if life <= 0 {
				t.Fatalf("%v produced non-positive lifetime", kind)
			}
			sum += float64(life)
		}
		mean := time.Duration(sum / n)
		if mean < 50*time.Minute || mean > 70*time.Minute {
			t.Errorf("%v mean lifetime = %v, want ~1h", kind, mean)
		}
	}

	// Portion: roughly half the notifications should never expire.
	cfg := ExpirationConfig{Kind: ExpExpiration, Mean: time.Hour, Portion: 0.5}
	never := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if cfg.Sample(g) == 0 {
			never++
		}
	}
	frac := float64(never) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("never-expiring fraction = %v, want ~0.5", frac)
	}
}

func TestExpirationKindString(t *testing.T) {
	tests := []struct {
		k    ExpirationKind
		want string
	}{
		{NoExpiration, "none"},
		{ExpExpiration, "exponential"},
		{UniformExpiration, "uniform"},
		{NormalExpiration, "normal"},
		{ExpirationKind(42), "expiration(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestReadScheduleRate(t *testing.T) {
	for _, uf := range []float64{0.25, 2, 32} {
		g := New(11)
		reads := ReadSchedule(g, ReadScheduleConfig{PerDay: uf}, year)
		perDay := float64(len(reads)) / 365
		if math.Abs(perDay-uf) > 0.15*uf+0.05 {
			t.Errorf("uf=%v: rate = %v/day", uf, perDay)
		}
		for i := 1; i < len(reads); i++ {
			if reads[i] < reads[i-1] {
				t.Fatalf("uf=%v: reads not sorted", uf)
			}
		}
	}
	if ReadSchedule(New(1), ReadScheduleConfig{PerDay: 0}, year) != nil {
		t.Error("zero frequency must give no reads")
	}
}

func TestReadScheduleAwakeWindow(t *testing.T) {
	g := New(12)
	reads := ReadSchedule(g, ReadScheduleConfig{PerDay: 8}, 200*Day)
	for _, r := range reads {
		tod := r % Day
		// Earliest possible: wake 06:30. Latest: 07:30 + 17h = 24:30,
		// which wraps into the next day, so time-of-day outside
		// [00:30, 06:30) is impossible.
		if tod >= 30*time.Minute && tod < 6*time.Hour+30*time.Minute {
			t.Fatalf("read at %v is outside any feasible awake window", tod)
		}
	}
}

// TestReadScheduleMidnightCrossing pins the day-boundary handling: a user
// waking at 23:00 with a 2h awake window reads on both sides of midnight.
// Reads past dayStart+24h must land in the next day, and reads the last day
// would place beyond the horizon must wrap to the first day's early hours —
// never be silently dropped (the pre-fix code lost roughly half this user's
// reads at the horizon).
func TestReadScheduleMidnightCrossing(t *testing.T) {
	cfg := ReadScheduleConfig{
		PerDay:     40,
		PerDaySD:   1e-9, // effectively deterministic count, but not the 0 default
		WakeStart:  23 * time.Hour,
		WakeJitter: time.Nanosecond,
		AwakeMin:   2 * time.Hour,
		AwakeMax:   2*time.Hour + time.Nanosecond,
	}
	for _, days := range []int{1, 2} {
		horizon := time.Duration(days) * Day
		reads := ReadSchedule(New(21), cfg, horizon)
		// Every drawn read must survive: ~half fall past midnight, and on
		// the last day those crossed the horizon and were dropped pre-fix.
		if got, want := len(reads), 35*days; got < want {
			t.Fatalf("%d-day horizon: %d reads survived, want >= %d (midnight tail dropped?)", days, got, want)
		}
		afterMidnight := 0
		for i, r := range reads {
			if i > 0 && r < reads[i-1] {
				t.Fatalf("%d-day horizon: reads not sorted", days)
			}
			if r < 0 || r >= horizon {
				t.Fatalf("%d-day horizon: read at %v outside [0, %v)", days, r, horizon)
			}
			tod := r % Day
			// Feasible times of day: [23:00-jitter, 24:00) before midnight,
			// (0:00, 1:00+jitter] after the wrap.
			late := tod >= 23*time.Hour-time.Microsecond
			early := tod <= time.Hour+time.Microsecond
			if !late && !early {
				t.Fatalf("%d-day horizon: read at time-of-day %v outside the 23:00–01:00 awake window", days, tod)
			}
			if early {
				afterMidnight++
			}
		}
		if afterMidnight == 0 {
			t.Fatalf("%d-day horizon: no read landed past midnight", days)
		}
	}
	// With a multi-day horizon the day-0 tail lands inside day 1 directly
	// (no wrap): there must be reads in (24h, 25h].
	reads := ReadSchedule(New(21), cfg, 2*Day)
	nextDayTail := 0
	for _, r := range reads {
		if r > Day && r <= Day+time.Hour+time.Microsecond {
			nextDayTail++
		}
	}
	if nextDayTail == 0 {
		t.Fatal("2-day horizon: day 0's past-midnight reads did not land in day 1")
	}
}

func TestOutageScheduleFraction(t *testing.T) {
	for _, frac := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		g := New(13)
		outages := OutageSchedule(g, OutageConfig{Fraction: frac}, year)
		got := float64(TotalDown(outages)) / float64(year)
		if math.Abs(got-frac) > 0.05+0.1*frac {
			t.Errorf("fraction %v: measured downtime %v", frac, got)
		}
		var prev Interval
		for i, iv := range outages {
			if iv.End <= iv.Start {
				t.Fatalf("empty interval %v", iv)
			}
			if i > 0 && iv.Start < prev.End {
				t.Fatalf("overlapping outages %v, %v", prev, iv)
			}
			if iv.End > year {
				t.Fatalf("outage %v exceeds horizon", iv)
			}
			prev = iv
		}
	}
}

func TestOutageScheduleEdges(t *testing.T) {
	g := New(14)
	if OutageSchedule(g, OutageConfig{Fraction: 0}, year) != nil {
		t.Error("zero fraction must give no outages")
	}
	full := OutageSchedule(g, OutageConfig{Fraction: 1}, year)
	if len(full) != 1 || full[0].Start != 0 || full[0].End != year {
		t.Errorf("full outage = %v", full)
	}
}

func TestDownAt(t *testing.T) {
	ivs := []Interval{{Start: 10, End: 20}, {Start: 30, End: 40}}
	tests := []struct {
		t    time.Duration
		want bool
	}{
		{5, false}, {10, true}, {19, true}, {20, false}, {25, false},
		{30, true}, {39, true}, {40, false}, {100, false},
	}
	for _, tt := range tests {
		if got := DownAt(ivs, tt.t); got != tt.want {
			t.Errorf("DownAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if DownAt(nil, 5) {
		t.Error("DownAt(nil) = true")
	}
}

// TestDownAtMatchesLinear cross-checks the binary search against a linear
// scan over randomly generated disjoint intervals.
func TestDownAtMatchesLinear(t *testing.T) {
	f := func(gaps []uint8, probes []uint16) bool {
		var ivs []Interval
		t0 := time.Duration(0)
		for i, gp := range gaps {
			start := t0 + time.Duration(gp%50+1)
			end := start + time.Duration(gaps[(i+1)%len(gaps)]%20+1)
			ivs = append(ivs, Interval{Start: start, End: end})
			t0 = end
		}
		for _, p := range probes {
			probe := time.Duration(p % 4096)
			want := false
			for _, iv := range ivs {
				if iv.Contains(probe) {
					want = true
					break
				}
			}
			if DownAt(ivs, probe) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: time.Hour, End: 3 * time.Hour}
	if iv.Duration() != 2*time.Hour {
		t.Errorf("Duration = %v", iv.Duration())
	}
	if !iv.Contains(time.Hour) || !iv.Contains(2*time.Hour) || iv.Contains(3*time.Hour) {
		t.Error("Contains half-open semantics wrong")
	}
}
