// Package dist provides the seeded random processes that drive the
// discrete-event simulator of the last hop (§3 of the paper): Poisson
// notification arrivals, expiration-time samplers (exponential, uniform,
// normal), the user read schedule spread over a 16–17 hour awake window,
// and the network outage alternating-renewal process tuned to a target
// cumulative downtime.
//
// Everything is deterministic given a seed, which is what makes paired
// baseline-vs-policy simulation runs possible.
package dist

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"slices"
	"time"
)

// Day is the simulator's day length.
const Day = 24 * time.Hour

// RNG is a seeded random source with the distribution samplers the
// simulator needs. Independent streams for different purposes are derived
// with Split, so adding draws to one process never perturbs another.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given seed.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent, deterministic RNG for the given label.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	s1 := g.r.Uint64()
	s2 := h.Sum64()
	return &RNG{r: rand.New(rand.NewPCG(s1^s2, s2^0xd1b54a32d192ed03))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Normal returns a normal sample with the given mean and stddev.
func (g *RNG) Normal(mean, sd float64) float64 { return g.r.NormFloat64()*sd + mean }

// NormalTrunc returns a normal sample truncated below at lo (by resampling,
// falling back to lo after a bounded number of attempts so pathological
// parameters cannot loop forever).
func (g *RNG) NormalTrunc(mean, sd, lo float64) float64 {
	for i := 0; i < 64; i++ {
		if v := g.Normal(mean, sd); v >= lo {
			return v
		}
	}
	return lo
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := g.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Hyperexp returns a sample from a balanced two-phase hyperexponential
// distribution with the given mean and coefficient of variation cv >= 1.
// With cv == 1 it degenerates to the exponential distribution. The paper
// calls for outage durations drawn from a high-variance distribution; this
// is the standard H2 fit.
func (g *RNG) Hyperexp(mean, cv float64) float64 {
	if cv <= 1 {
		return g.Exp(mean)
	}
	cv2 := cv * cv
	p := 0.5 * (1 - math.Sqrt((cv2-1)/(cv2+1)))
	if g.r.Float64() < p {
		return g.Exp(mean / (2 * p))
	}
	return g.Exp(mean / (2 * (1 - p)))
}

// PoissonProcess returns the sorted offsets of a homogeneous Poisson
// process with the given daily rate over the horizon.
func PoissonProcess(g *RNG, perDay float64, horizon time.Duration) []time.Duration {
	if perDay <= 0 || horizon <= 0 {
		return nil
	}
	meanGap := float64(Day) / perDay
	var out []time.Duration
	t := time.Duration(g.Exp(meanGap))
	for t < horizon {
		out = append(out, t)
		t += time.Duration(g.Exp(meanGap))
	}
	return out
}

// ExpirationKind selects the distribution of notification lifetimes.
type ExpirationKind int

const (
	// NoExpiration means notifications never expire.
	NoExpiration ExpirationKind = iota + 1
	// ExpExpiration draws lifetimes from an exponential distribution.
	ExpExpiration
	// UniformExpiration draws lifetimes uniformly from (0, 2*mean).
	UniformExpiration
	// NormalExpiration draws lifetimes from a normal distribution with
	// stddev mean/4, truncated at one second.
	NormalExpiration
)

// String names the kind for configuration output.
func (k ExpirationKind) String() string {
	switch k {
	case NoExpiration:
		return "none"
	case ExpExpiration:
		return "exponential"
	case UniformExpiration:
		return "uniform"
	case NormalExpiration:
		return "normal"
	default:
		return fmt.Sprintf("expiration(%d)", int(k))
	}
}

// ExpirationConfig describes how notification lifetimes are generated
// (§3: "a portion of the events can be configured to expire within
// expiration time, according to a desired distribution").
type ExpirationConfig struct {
	// Kind selects the lifetime distribution; zero means NoExpiration.
	Kind ExpirationKind
	// Mean is the mean lifetime for expiring notifications.
	Mean time.Duration
	// Portion is the fraction of notifications that expire at all;
	// zero means every notification expires (when Kind is set).
	Portion float64
}

// Sample draws one lifetime; zero means the notification never expires.
func (c ExpirationConfig) Sample(g *RNG) time.Duration {
	if c.Kind == 0 || c.Kind == NoExpiration || c.Mean <= 0 {
		return 0
	}
	portion := c.Portion
	if portion <= 0 || portion > 1 {
		portion = 1
	}
	if portion < 1 && g.Float64() >= portion {
		return 0
	}
	mean := float64(c.Mean)
	var life float64
	switch c.Kind {
	case ExpExpiration:
		life = g.Exp(mean)
	case UniformExpiration:
		life = g.Uniform(0, 2*mean)
	case NormalExpiration:
		life = g.NormalTrunc(mean, mean/4, float64(time.Second))
	default:
		return 0
	}
	if life < float64(time.Second) {
		life = float64(time.Second)
	}
	return time.Duration(life)
}

// ReadScheduleConfig describes the user's reading habit: a number of reads
// per day drawn from a normal distribution around PerDay, placed uniformly
// inside a randomized 16–17 hour awake window.
type ReadScheduleConfig struct {
	// PerDay is the user frequency: mean number of reads per day. It may
	// be fractional (the paper sweeps down to 0.25/day).
	PerDay float64
	// PerDaySD is the standard deviation of the per-day read count;
	// zero defaults to PerDay/4.
	PerDaySD float64
	// WakeStart is the nominal time of day the user wakes up; zero
	// defaults to 07:00.
	WakeStart time.Duration
	// WakeJitter randomizes the wake instant by ±WakeJitter; zero
	// defaults to 30 minutes.
	WakeJitter time.Duration
	// AwakeMin and AwakeMax bound the awake period; zero defaults to the
	// paper's 16 and 17 hours.
	AwakeMin, AwakeMax time.Duration
}

func (c ReadScheduleConfig) withDefaults() ReadScheduleConfig {
	if c.PerDaySD == 0 {
		c.PerDaySD = c.PerDay / 4
	}
	if c.WakeStart == 0 {
		c.WakeStart = 7 * time.Hour
	}
	if c.WakeJitter == 0 {
		c.WakeJitter = 30 * time.Minute
	}
	if c.AwakeMin == 0 {
		c.AwakeMin = 16 * time.Hour
	}
	if c.AwakeMax == 0 {
		c.AwakeMax = 17 * time.Hour
	}
	return c
}

// ReadSchedule returns the sorted offsets of user reads over the horizon.
// Fractional frequencies are honored in expectation by carrying the
// fractional part across days.
//
// A late wake offset plus a 16–17 hour awake window can place a read past
// dayStart + 24h (07:30 wake + 17h awake ends at 24:30): such reads land in
// the early hours of the next day. The schedule is cyclic over the horizon,
// so a read the last day would place beyond the horizon wraps around to the
// corresponding early-morning offset of the first day — it stands in for the
// read that the (unmodeled) day before day 0 would have contributed there.
// Every drawn read appears exactly once: never silently dropped at the
// horizon, never double-scheduled.
func ReadSchedule(g *RNG, cfg ReadScheduleConfig, horizon time.Duration) []time.Duration {
	if cfg.PerDay <= 0 || horizon <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	days := int(horizon / Day)
	if horizon%Day != 0 {
		days++
	}
	var out []time.Duration
	carry := 0.0
	for d := 0; d < days; d++ {
		carry += math.Max(0, g.Normal(cfg.PerDay, cfg.PerDaySD))
		count := int(carry)
		carry -= float64(count)
		if count == 0 {
			continue
		}
		dayStart := time.Duration(d) * Day
		wake := cfg.WakeStart + time.Duration(g.Uniform(-float64(cfg.WakeJitter), float64(cfg.WakeJitter)))
		awake := time.Duration(g.Uniform(float64(cfg.AwakeMin), float64(cfg.AwakeMax)))
		for i := 0; i < count; i++ {
			t := dayStart + wake + time.Duration(g.Uniform(0, float64(awake)))
			out = append(out, t%horizon)
		}
	}
	sortDurations(out)
	return out
}

// Interval is a half-open time range [Start, End) of simulated offsets.
type Interval struct {
	Start, End time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Contains reports whether the offset falls inside the interval.
func (iv Interval) Contains(t time.Duration) bool { return t >= iv.Start && t < iv.End }

// OutageConfig describes the last-hop outage process: an alternating
// renewal process whose outage durations have a fixed mean (hours, not
// days — the paper's high outage fractions model users who are "mainly on
// a slow but functioning link", i.e. many outages with brief usable
// windows, not outages that last weeks), while the mean connected period
// shrinks as the target downtime fraction grows.
type OutageConfig struct {
	// Fraction is the target cumulative downtime in [0, 1]. The paper
	// notes that periods of unacceptably slow connectivity count as
	// outages, so high fractions model users on slow links.
	Fraction float64
	// MeanDown is the mean outage duration; zero defaults to 2 hours.
	// The mean connected period is derived as
	// MeanDown*(1-Fraction)/Fraction.
	MeanDown time.Duration
	// DownCV is the coefficient of variation of outage durations; values
	// above 1 yield the high-variance outages the paper simulates. Zero
	// defaults to 2.
	DownCV float64
}

func (c OutageConfig) withDefaults() OutageConfig {
	if c.MeanDown == 0 {
		c.MeanDown = 2 * time.Hour
	}
	if c.DownCV == 0 {
		c.DownCV = 2
	}
	return c
}

// OutageSchedule returns sorted, disjoint outage intervals over the horizon
// whose expected cumulative length is Fraction of the horizon.
func OutageSchedule(g *RNG, cfg OutageConfig, horizon time.Duration) []Interval {
	if cfg.Fraction <= 0 || horizon <= 0 {
		return nil
	}
	if cfg.Fraction >= 1 {
		return []Interval{{Start: 0, End: horizon}}
	}
	cfg = cfg.withDefaults()
	meanDown := float64(cfg.MeanDown)
	meanUp := meanDown * (1 - cfg.Fraction) / cfg.Fraction
	var out []Interval
	t := time.Duration(g.Exp(meanUp))
	for t < horizon {
		down := time.Duration(g.Hyperexp(meanDown, cfg.DownCV))
		if down < time.Second {
			down = time.Second
		}
		end := t + down
		if end > horizon {
			end = horizon
		}
		out = append(out, Interval{Start: t, End: end})
		t = end + time.Duration(g.Exp(meanUp))
	}
	return out
}

// TotalDown returns the cumulative length of the given intervals.
func TotalDown(intervals []Interval) time.Duration {
	var sum time.Duration
	for _, iv := range intervals {
		sum += iv.Duration()
	}
	return sum
}

// DownAt reports whether the offset falls inside any of the sorted
// intervals.
func DownAt(intervals []Interval, t time.Duration) bool {
	lo, hi := 0, len(intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case t < intervals[mid].Start:
			hi = mid
		case t >= intervals[mid].End:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

func sortDurations(ds []time.Duration) {
	slices.Sort(ds)
}
