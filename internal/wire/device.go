package wire

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/rankedq"
)

// DeviceClient is the mobile client of a ProxyServer: it keeps a local
// ranked queue per topic (fed by proxy pushes), and implements the §3.5
// READ protocol — offering its best local events so the proxy only
// transfers better data.
type DeviceClient struct {
	caller
	name string
	done chan struct{}

	smu        sync.Mutex
	queues     map[string]*rankedq.Queue
	read       map[string]msg.IDSet
	thresholds map[string]float64
	policies   map[string]TopicPolicy
	received   int
	updates    int
	drops      int
}

// DialProxy connects and identifies to a proxy server.
func DialProxy(addr, name string) (*DeviceClient, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial proxy: %w", err)
	}
	d := &DeviceClient{
		caller:     newCaller(NewConn(nc)),
		name:       name,
		done:       make(chan struct{}),
		queues:     make(map[string]*rankedq.Queue),
		read:       make(map[string]msg.IDSet),
		thresholds: make(map[string]float64),
		policies:   make(map[string]TopicPolicy),
	}
	go d.readLoop()
	if err := d.call(&Frame{Type: TypeHello, Name: name}); err != nil {
		_ = d.Close()
		return nil, err
	}
	return d, nil
}

// Close tears the connection down.
func (d *DeviceClient) Close() error {
	if d.markClosed() {
		return nil
	}
	err := d.conn.Close()
	<-d.done
	return err
}

func (d *DeviceClient) readLoop() {
	defer close(d.done)
	for {
		f, err := d.conn.Recv()
		if err != nil {
			d.fail(err)
			return
		}
		switch f.Type {
		case TypePush:
			if f.Notification != nil {
				d.store(f.Notification)
			}
		case TypeOK, TypeErr:
			d.resolve(f)
		}
	}
}

// store applies one pushed notification to the local queue with the same
// semantics as the simulated device: duplicates are rank revisions, and a
// revision below the topic threshold discards the local copy.
func (d *DeviceClient) store(n *msg.Notification) {
	d.smu.Lock()
	defer d.smu.Unlock()
	q, ok := d.queues[n.Topic]
	if !ok {
		q = rankedq.NewQueue()
		d.queues[n.Topic] = q
		d.read[n.Topic] = make(msg.IDSet)
	}
	if d.read[n.Topic].Contains(n.ID) {
		d.updates++
		return
	}
	if q.Contains(n.ID) {
		d.updates++
		if n.Rank < d.thresholds[n.Topic] {
			q.Remove(n.ID)
			d.drops++
			return
		}
		q.UpdateRank(n.ID, n.Rank)
		return
	}
	if n.Expired(time.Now()) || n.Rank < d.thresholds[n.Topic] {
		d.received++
		return
	}
	d.received++
	_ = q.Push(n)
}

// Subscribe registers a topic on the proxy with the given policy.
func (d *DeviceClient) Subscribe(topic string, pol TopicPolicy) error {
	if err := d.call(&Frame{Type: TypeSubscribe, Topic: topic, TopicPolicy: &pol}); err != nil {
		return err
	}
	d.smu.Lock()
	d.thresholds[topic] = pol.Threshold
	d.policies[topic] = pol
	d.smu.Unlock()
	return nil
}

// Unsubscribe deregisters a topic.
func (d *DeviceClient) Unsubscribe(topic string) error {
	if err := d.call(&Frame{Type: TypeUnsubscribe, Topic: topic}); err != nil {
		return err
	}
	d.smu.Lock()
	delete(d.policies, topic)
	d.smu.Unlock()
	return nil
}

// Redial re-establishes a dead proxy connection, keeping the local
// notification cache (a phone does not forget its messages when the radio
// drops) and re-subscribing every topic. It must not race with in-flight
// calls: use it after a call failed with a connection error.
func (d *DeviceClient) Redial(addr string) error {
	// Tear the old connection down and wait for its read loop.
	_ = d.conn.Close()
	<-d.done

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("redial proxy: %w", err)
	}
	d.reset(NewConn(nc))
	d.done = make(chan struct{})
	go d.readLoop()
	if err := d.call(&Frame{Type: TypeHello, Name: d.name}); err != nil {
		return err
	}
	d.smu.Lock()
	resubs := make(map[string]TopicPolicy, len(d.policies))
	for topic, pol := range d.policies {
		resubs[topic] = pol
	}
	d.smu.Unlock()
	for topic, pol := range resubs {
		pol := pol
		if err := d.call(&Frame{Type: TypeSubscribe, Topic: topic, TopicPolicy: &pol}); err != nil {
			return fmt.Errorf("redial resubscribe %q: %w", topic, err)
		}
	}
	return nil
}

// Read performs a user read: it relays the READ request (offering its best
// local IDs), waits for the proxy's pushes to land, and consumes the up-to
// n highest-ranked unexpired local notifications (n == 0 means all).
func (d *DeviceClient) Read(topic string, n int) ([]*msg.Notification, error) {
	d.smu.Lock()
	q, ok := d.queues[topic]
	if !ok {
		q = rankedq.NewQueue()
		d.queues[topic] = q
		d.read[topic] = make(msg.IDSet)
	}
	d.purgeExpiredLocked(topic)
	haveN := n
	if haveN == 0 || haveN > q.Len() {
		haveN = q.Len()
	}
	var clientEvents []msg.ID
	for _, h := range q.BestN(haveN) {
		clientEvents = append(clientEvents, h.ID)
	}
	req := msg.ReadRequest{Topic: topic, N: n, QueueSize: q.Len(), ClientEvents: clientEvents}
	d.smu.Unlock()

	// The OK lands after every push of this read (TCP ordering), so the
	// local queue is complete when call returns.
	if err := d.call(&Frame{Type: TypeRead, Read: &req}); err != nil {
		return nil, err
	}

	d.smu.Lock()
	defer d.smu.Unlock()
	d.purgeExpiredLocked(topic)
	take := n
	if take == 0 {
		take = q.Len()
	}
	batch := q.TakeBestN(take)
	for _, b := range batch {
		d.read[topic].Add(b.ID)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Before(batch[j]) })
	return batch, nil
}

func (d *DeviceClient) purgeExpiredLocked(topic string) {
	q := d.queues[topic]
	if q == nil {
		return
	}
	now := time.Now()
	var stale []msg.ID
	q.Each(func(n *msg.Notification) {
		if n.Expired(now) {
			stale = append(stale, n.ID)
		}
	})
	for _, id := range stale {
		q.Remove(id)
	}
}

// QueueLen returns the local queue length for a topic.
func (d *DeviceClient) QueueLen(topic string) int {
	d.smu.Lock()
	defer d.smu.Unlock()
	q := d.queues[topic]
	if q == nil {
		return 0
	}
	return q.Len()
}

// Stats returns (received, updates, rank drops applied).
func (d *DeviceClient) Stats() (received, updates, drops int) {
	d.smu.Lock()
	defer d.smu.Unlock()
	return d.received, d.updates, d.drops
}
