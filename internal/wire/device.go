package wire

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/rankedq"
	"lasthop/internal/trace"
)

// DeviceClient is the mobile client of a ProxyServer: it keeps a local
// ranked queue per topic (fed by proxy pushes), and implements the §3.5
// READ protocol — offering its best local events so the proxy only
// transfers better data.
//
// With AutoReconnect enabled the client survives the intermittent last
// hop: a dead connection is re-dialed with backoff, the session is resumed
// (re-identify, re-subscribe, replay the read/queue ID sets so the proxy
// can reconcile in-flight losses), and calls issued during the outage park
// until the link returns.
type DeviceClient struct {
	caller
	name string
	addr string
	opts ClientOptions

	closing chan struct{} // closed by Close; aborts reconnect waits
	exited  chan struct{} // closed when the maintenance loop exits

	smu        sync.Mutex
	queues     map[string]*rankedq.Queue
	read       map[string]msg.IDSet
	thresholds map[string]float64
	policies   map[string]TopicPolicy
	received   int
	updates    int
	drops      int
	reconnects int
	onPush     func(*msg.Notification)
}

// DialProxy connects and identifies to a proxy server with default
// options: fail-fast, no automatic reconnection.
func DialProxy(addr, name string) (*DeviceClient, error) {
	return DialProxyOpts(addr, name, ClientOptions{})
}

// DialProxyOpts connects and identifies to a proxy server. The initial
// dial is a single attempt (so a wrong address fails immediately);
// opts.AutoReconnect governs what happens when an established connection
// later dies.
func DialProxyOpts(addr, name string, opts ClientOptions) (*DeviceClient, error) {
	d := &DeviceClient{
		name:       name,
		addr:       addr,
		opts:       opts.withDefaults(),
		closing:    make(chan struct{}),
		exited:     make(chan struct{}),
		queues:     make(map[string]*rankedq.Queue),
		read:       make(map[string]msg.IDSet),
		thresholds: make(map[string]float64),
		policies:   make(map[string]TopicPolicy),
	}
	conn, err := d.connect()
	if err != nil {
		return nil, fmt.Errorf("dial proxy: %w", err)
	}
	d.caller = newCaller(conn)
	go d.run(conn)
	return d, nil
}

// connect dials and completes the session handshake on a fresh connection.
func (d *DeviceClient) connect() (*Conn, error) {
	conn, err := dialConn(d.addr, d.opts)
	if err != nil {
		return nil, err
	}
	// Pushed notifications are retained by the device store, but the frame
	// carrying them is done once storeAndNotify returns, so it is reused
	// across pushes; read/subscribe responses escape to the waiting call
	// and relinquish it (see Conn.Recv). Topic strings repeat on every
	// push, so they are interned — the pool itself stays off because the
	// store keeps the notifications.
	conn.SetRecvReuse(true)
	conn.SetInternNames(true)
	if err := d.handshake(conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

// handshake identifies the device and replays its session: every
// subscription is reasserted, and the per-topic queue and read ID sets are
// resumed so the proxy re-queues anything that was lost in flight and
// never re-sends what the user already consumed. It runs synchronously on
// a connection whose read loop has not started; racing pushes are applied
// to the local store as they arrive.
func (d *DeviceClient) handshake(conn *Conn) error {
	conn.setRawDeadline(time.Now().Add(d.opts.DialTimeout))
	defer conn.setRawDeadline(time.Time{})
	onFrame := func(f *Frame) {
		switch f.Type {
		case TypePush:
			if f.Notification != nil {
				f.Notification.Trace = f.Trace
				d.storeAndNotify(f.Notification)
			}
		case TypePushBatch:
			adoptBatchTraces(f)
			for _, n := range f.Batch {
				if n != nil {
					d.storeAndNotify(n)
				}
			}
		}
	}
	if err := syncExchange(conn, &Frame{Type: TypeHello, Name: d.name, Caps: LocalCaps()}, onFrame); err != nil {
		return fmt.Errorf("hello: %w", err)
	}

	type topicSession struct {
		topic      string
		pol        TopicPolicy
		have, read []msg.ID
	}
	d.smu.Lock()
	sessions := make([]topicSession, 0, len(d.policies))
	for topic, pol := range d.policies {
		s := topicSession{topic: topic, pol: pol}
		if q := d.queues[topic]; q != nil {
			q.Each(func(n *msg.Notification) { s.have = append(s.have, n.ID) })
		}
		for id := range d.read[topic] {
			s.read = append(s.read, id)
		}
		sessions = append(sessions, s)
	}
	d.smu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].topic < sessions[j].topic })

	for _, s := range sessions {
		pol := s.pol
		if err := syncExchange(conn, &Frame{Type: TypeSubscribe, Topic: s.topic, TopicPolicy: &pol}, onFrame); err != nil {
			return fmt.Errorf("resubscribe %q: %w", s.topic, err)
		}
		if err := syncExchange(conn, &Frame{Type: TypeResume, Topic: s.topic, HaveIDs: s.have, ReadIDs: s.read}, onFrame); err != nil {
			return fmt.Errorf("resume %q: %w", s.topic, err)
		}
	}
	return nil
}

// run is the connection maintenance loop: it serves one connection until
// it dies, then — when AutoReconnect is on — re-establishes the session
// with backoff and carries on.
func (d *DeviceClient) run(conn *Conn) {
	defer close(d.exited)
	for {
		stopHB := startPinger(d.opts.HeartbeatInterval, func() error {
			start := time.Now()
			err := d.call(&Frame{Type: TypePing})
			if err == nil && d.opts.Metrics != nil {
				d.opts.Metrics.HeartbeatRTT.Observe(time.Since(start).Seconds())
			}
			return err
		})
		err := d.readFrames(conn)
		stopHB()
		d.fail(err)
		_ = conn.Close()
		if d.isClosed() || !d.opts.AutoReconnect {
			d.setDead(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		d.opts.Logf("wire: device %q: connection lost (%v), reconnecting", d.name, err)
		next, rerr := reconnectLoop(d.addr, d.opts, d.closing, d.connect)
		if rerr != nil {
			d.opts.Logf("wire: device %q: %v", d.name, rerr)
			d.setDead(rerr)
			return
		}
		if next == nil {
			return // closed while reconnecting
		}
		if !d.reset(next) {
			_ = next.Close()
			return
		}
		d.smu.Lock()
		d.reconnects++
		d.smu.Unlock()
		if d.opts.Metrics != nil {
			d.opts.Metrics.Reconnects.Inc()
		}
		d.opts.Logf("wire: device %q: session resumed", d.name)
		conn = next
	}
}

// readFrames dispatches incoming frames until the connection fails.
func (d *DeviceClient) readFrames(conn *Conn) error {
	for {
		f, err := conn.Recv()
		if err != nil {
			return err
		}
		switch f.Type {
		case TypePush:
			if f.Notification != nil {
				f.Notification.Trace = f.Trace
				d.storeAndNotify(f.Notification)
			}
		case TypePushBatch:
			adoptBatchTraces(f)
			for _, n := range f.Batch {
				if n != nil {
					d.storeAndNotify(n)
				}
			}
		case TypePing:
			_ = conn.Send(&Frame{Type: TypePong, Re: f.Seq})
		case TypeOK, TypeErr, TypePong:
			d.resolve(f)
		}
	}
}

// Close tears the client down. It is idempotent and safe to call
// concurrently with in-flight requests, which fail with a closed error.
func (d *DeviceClient) Close() error {
	if d.markClosed() {
		return nil
	}
	close(d.closing)
	if c := d.currentConn(); c != nil {
		_ = c.Close()
	}
	<-d.exited
	return nil
}

// callRetry issues a request, parking and retrying across reconnects when
// the transport (not the remote application) failed.
func (d *DeviceClient) callRetry(mk func() *Frame) error {
	for {
		err := d.call(mk())
		if err == nil || !isConnLost(err) || !d.opts.AutoReconnect {
			return err
		}
		if werr := d.awaitOnline(); werr != nil {
			return werr
		}
	}
}

// store applies one pushed notification to the local queue with the same
// semantics as the simulated device: duplicates are rank revisions, and a
// revision below the topic threshold discards the local copy. It reports
// whether the notification was a first-time delivery (not a revision of
// something already held or consumed).
func (d *DeviceClient) store(n *msg.Notification) bool {
	d.smu.Lock()
	defer d.smu.Unlock()
	q, ok := d.queues[n.Topic]
	if !ok {
		q = rankedq.NewQueue()
		d.queues[n.Topic] = q
		d.read[n.Topic] = make(msg.IDSet)
	}
	if d.read[n.Topic].Contains(n.ID) {
		d.updates++
		return false
	}
	if q.Contains(n.ID) {
		d.updates++
		if n.Rank < d.thresholds[n.Topic] {
			q.Remove(n.ID)
			d.drops++
			d.traceEvent(trace.KindDrop, n, "device", "rank retracted below threshold on the device")
			return false
		}
		q.UpdateRank(n.ID, n.Rank)
		return false
	}
	if n.Expired(time.Now()) || n.Rank < d.thresholds[n.Topic] {
		d.received++
		d.traceHop(trace.KindDeviceRecv, n)
		return true
	}
	d.received++
	_ = q.Push(n)
	d.traceHop(trace.KindDeviceRecv, n)
	return true
}

// traceHop stamps the device hop onto a sampled notification's context and
// records the event; no-op when tracing is off or the notification is
// unsampled.
func (d *DeviceClient) traceHop(kind trace.Kind, n *msg.Notification) {
	d.opts.Trace.Hop(kind, d.name, n, time.Now())
}

// traceEvent records a device-side trace event for n; no-op when tracing
// is off.
func (d *DeviceClient) traceEvent(kind trace.Kind, n *msg.Notification, queue, cause string) {
	c := d.opts.Trace
	if c == nil {
		return
	}
	e := trace.Event{
		At: time.Now(), Kind: kind, Topic: n.Topic, ID: n.ID, Rank: n.Rank,
		Node: d.name, Queue: queue, Cause: cause,
	}
	if n.Trace != nil {
		e.TraceID = n.Trace.TraceID
	}
	c.Record(e)
}

// storeAndNotify stores a pushed notification and, when it was a
// first-time delivery, invokes the OnPush observer outside the state lock.
func (d *DeviceClient) storeAndNotify(n *msg.Notification) {
	fresh := d.store(n)
	d.smu.Lock()
	cb := d.onPush
	d.smu.Unlock()
	if fresh && cb != nil {
		cb(n)
	}
}

// SetOnPush installs an observer invoked once per first-time delivery
// (rank revisions and resume replays of consumed IDs are filtered out).
// The callback runs on the connection's read goroutine; keep it cheap.
func (d *DeviceClient) SetOnPush(fn func(*msg.Notification)) {
	d.smu.Lock()
	d.onPush = fn
	d.smu.Unlock()
}

// Subscribe registers a topic on the proxy with the given policy.
func (d *DeviceClient) Subscribe(topic string, pol TopicPolicy) error {
	err := d.callRetry(func() *Frame {
		p := pol
		return &Frame{Type: TypeSubscribe, Topic: topic, TopicPolicy: &p}
	})
	if err != nil {
		return err
	}
	d.smu.Lock()
	d.thresholds[topic] = pol.Threshold
	d.policies[topic] = pol
	d.smu.Unlock()
	return nil
}

// Unsubscribe deregisters a topic.
func (d *DeviceClient) Unsubscribe(topic string) error {
	if err := d.callRetry(func() *Frame { return &Frame{Type: TypeUnsubscribe, Topic: topic} }); err != nil {
		return err
	}
	d.smu.Lock()
	delete(d.policies, topic)
	d.smu.Unlock()
	return nil
}

// Redial re-establishes a dead proxy connection, keeping the local
// notification cache (a phone does not forget its messages when the radio
// drops) and replaying the session. It is the manual recovery path for
// clients without AutoReconnect; reconnecting clients do this on their
// own.
func (d *DeviceClient) Redial(addr string) error {
	if d.opts.AutoReconnect {
		return errors.New("redial: client reconnects automatically")
	}
	if c := d.currentConn(); c != nil {
		_ = c.Close()
	}
	<-d.exited // the maintenance loop exits once the connection dies

	d.addr = addr
	conn, err := d.connect()
	if err != nil {
		return fmt.Errorf("redial proxy: %w", err)
	}
	d.revive()
	if !d.reset(conn) {
		_ = conn.Close()
		return errClientClosed
	}
	d.exited = make(chan struct{})
	go d.run(conn)
	return nil
}

// Read performs a user read: it relays the READ request (offering its best
// local IDs), waits for the proxy's pushes to land, and consumes the up-to
// n highest-ranked unexpired local notifications (n == 0 means all). With
// AutoReconnect the read survives connection loss: it is re-issued — with
// a freshly computed offer — once the session resumes.
func (d *DeviceClient) Read(topic string, n int) ([]*msg.Notification, error) {
	for {
		batch, err := d.readOnce(topic, n)
		if err == nil || !isConnLost(err) || !d.opts.AutoReconnect {
			return batch, err
		}
		if werr := d.awaitOnline(); werr != nil {
			return nil, werr
		}
	}
}

func (d *DeviceClient) readOnce(topic string, n int) ([]*msg.Notification, error) {
	d.smu.Lock()
	q, ok := d.queues[topic]
	if !ok {
		q = rankedq.NewQueue()
		d.queues[topic] = q
		d.read[topic] = make(msg.IDSet)
	}
	d.purgeExpiredLocked(topic)
	haveN := n
	if haveN == 0 || haveN > q.Len() {
		haveN = q.Len()
	}
	var clientEvents []msg.ID
	for _, h := range q.BestN(haveN) {
		clientEvents = append(clientEvents, h.ID)
	}
	req := msg.ReadRequest{Topic: topic, N: n, QueueSize: q.Len(), ClientEvents: clientEvents}
	d.smu.Unlock()

	// The OK lands after every push of this read (TCP ordering), so the
	// local queue is complete when call returns.
	if err := d.call(&Frame{Type: TypeRead, Read: &req}); err != nil {
		return nil, err
	}

	d.smu.Lock()
	defer d.smu.Unlock()
	d.purgeExpiredLocked(topic)
	take := n
	if take == 0 {
		take = q.Len()
	}
	batch := q.TakeBestN(take)
	for _, b := range batch {
		d.read[topic].Add(b.ID)
		d.traceEvent(trace.KindRead, b, "", "")
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Before(batch[j]) })
	return batch, nil
}

func (d *DeviceClient) purgeExpiredLocked(topic string) {
	q := d.queues[topic]
	if q == nil {
		return
	}
	now := time.Now()
	var stale []*msg.Notification
	q.Each(func(n *msg.Notification) {
		if n.Expired(now) {
			stale = append(stale, n)
		}
	})
	for _, n := range stale {
		q.Remove(n.ID)
		d.traceEvent(trace.KindExpire, n, "device", "expired in the device queue before a read")
	}
}

// QueueLen returns the local queue length for a topic.
func (d *DeviceClient) QueueLen(topic string) int {
	d.smu.Lock()
	defer d.smu.Unlock()
	q := d.queues[topic]
	if q == nil {
		return 0
	}
	return q.Len()
}

// ReadSet returns a copy of the IDs the user has consumed on a topic.
func (d *DeviceClient) ReadSet(topic string) msg.IDSet {
	d.smu.Lock()
	defer d.smu.Unlock()
	ids, ok := d.read[topic]
	if !ok {
		return make(msg.IDSet)
	}
	return ids.Clone()
}

// Stats returns (received, updates, rank drops applied).
func (d *DeviceClient) Stats() (received, updates, drops int) {
	d.smu.Lock()
	defer d.smu.Unlock()
	return d.received, d.updates, d.drops
}

// Reconnects reports how many times the session was automatically resumed
// after a connection loss.
func (d *DeviceClient) Reconnects() int {
	d.smu.Lock()
	defer d.smu.Unlock()
	return d.reconnects
}

// Topics lists the topics with local state, sorted.
func (d *DeviceClient) Topics() []string {
	d.smu.Lock()
	topics := make([]string, 0, len(d.queues))
	for t := range d.queues {
		topics = append(topics, t)
	}
	d.smu.Unlock()
	sort.Strings(topics)
	return topics
}
