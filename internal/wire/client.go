package wire

import (
	"errors"
	"fmt"
	"net"
	"time"

	"lasthop/internal/retry"
	"lasthop/internal/trace"
)

// DefaultDialTimeout bounds connection establishment when the options do
// not say otherwise: a dead address fails fast instead of hanging at the
// operating system's defaults.
const DefaultDialTimeout = 10 * time.Second

// ClientOptions tunes the fault tolerance of a wire client (DeviceClient
// or BrokerClient). The zero value reproduces the original fail-fast
// behavior: one connection, no heartbeats, errors surface to the caller.
type ClientOptions struct {
	// AutoReconnect keeps the client alive across connection failures:
	// it re-dials with backoff, re-identifies, and replays its session
	// (subscriptions, advertisements, and — for devices — the §3.5
	// read-ID sets), while calls issued during the outage park until the
	// connection returns.
	AutoReconnect bool
	// Backoff is the reconnect schedule; the zero value means
	// retry.Default(). Set MaxAttempts to bound how long the client
	// tries before giving up terminally.
	Backoff retry.Policy
	// HeartbeatInterval is how often the client pings its peer to prove
	// the connection alive in both directions. Zero disables pinging
	// (but see ReadTimeout).
	HeartbeatInterval time.Duration
	// ReadTimeout bounds the silence tolerated between incoming frames;
	// a half-open connection fails within this bound instead of hanging.
	// Zero derives 3× HeartbeatInterval when heartbeats are enabled, and
	// disables the deadline otherwise.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outgoing frame write. Zero disables it.
	WriteTimeout time.Duration
	// DialTimeout bounds connection establishment; zero means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// Logf receives reconnection diagnostics; nil silences them.
	Logf func(string, ...any)
	// Metrics aggregates wire-level instrumentation (frames, bytes, flush
	// coalescing, heartbeat RTT, reconnects); nil disables it.
	Metrics *Metrics
	// Trace collects per-notification trace events on clients that handle
	// notifications locally (DeviceClient records receive/read/expire
	// events against arriving contexts). Nil disables tracing.
	Trace *trace.Collector
}

// withDefaults resolves the derived settings.
func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.ReadTimeout <= 0 && o.HeartbeatInterval > 0 {
		o.ReadTimeout = 3 * o.HeartbeatInterval
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// dialConn establishes a frame connection with the options' timeouts.
func dialConn(addr string, opts ClientOptions) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn := NewConn(nc)
	conn.SetTimeouts(opts.ReadTimeout, opts.WriteTimeout)
	conn.SetMetrics(opts.Metrics)
	return conn, nil
}

// syncExchange performs one request/response round trip on a connection
// whose read loop is not running (handshakes happen before a connection is
// published to the client's caller). Frames other than the response — for
// example pushes racing the handshake — are handed to onFrame (nil drops
// them).
func syncExchange(conn *Conn, f *Frame, onFrame func(*Frame)) error {
	seq, err := conn.SendRequest(f)
	if err != nil {
		return err
	}
	for {
		resp, err := conn.Recv()
		if err != nil {
			return err
		}
		if resp.Re == seq && (resp.Type == TypeOK || resp.Type == TypeErr || resp.Type == TypePong) {
			if resp.Type == TypeErr {
				return &RemoteError{Code: resp.Code, Message: resp.Message}
			}
			return nil
		}
		if onFrame != nil {
			onFrame(resp)
		}
	}
}

// startPinger probes the peer every interval until stopped or until a
// transport failure (which the owning read loop notices independently).
// The returned stop function is idempotent and does not wait for the
// goroutine.
func startPinger(interval time.Duration, ping func() error) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				if err := ping(); err != nil && errors.Is(err, ErrConnLost) {
					return
				}
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(stopCh)
		}
	}
}

// isConnLost reports whether an error is a retriable transport failure.
func isConnLost(err error) bool { return errors.Is(err, ErrConnLost) }

// reconnectLoop re-dials with backoff until connect succeeds, the stop
// channel fires, or the attempt budget runs out. connect must dial AND
// complete the application handshake. It returns the established
// connection, or nil when stopped, or an error on exhaustion.
func reconnectLoop(addr string, opts ClientOptions, stop <-chan struct{}, connect func() (*Conn, error)) (*Conn, error) {
	b := retry.New(opts.Backoff)
	for {
		d, ok := b.Next()
		if !ok {
			return nil, fmt.Errorf("reconnect %s: %w", addr, retry.ErrAttemptsExhausted)
		}
		select {
		case <-stop:
			return nil, nil
		case <-time.After(d):
		}
		conn, err := connect()
		if err != nil {
			opts.Logf("wire: reconnect %s: %v", addr, err)
			continue
		}
		return conn, nil
	}
}
