package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"lasthop/internal/pubsub"
)

// TestServeReturnsNilAfterClose verifies the clean-shutdown contract:
// Serve unblocks with a nil error after an explicit Close on both server
// types, so callers can treat nil as "shut down on purpose".
func TestServeReturnsNilAfterClose(t *testing.T) {
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBrokerServer(pubsub.NewBroker("b"), t.Logf)
	bsErr := make(chan error, 1)
	go func() { bsErr <- bs.Serve(bl) }()

	ps, err := NewProxyServer(bl.Addr().String(), "p", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	psErr := make(chan error, 1)
	go func() { psErr <- ps.Serve(pl) }()

	// A completed handshake proves both servers are inside their accept
	// loops before we close them.
	dev, err := DialProxy(pl.Addr().String(), "probe")
	if err != nil {
		t.Fatal(err)
	}
	_ = dev.Close()

	ps.Close()
	select {
	case err := <-psErr:
		if err != nil {
			t.Errorf("proxy Serve after Close = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("proxy Serve did not return after Close")
	}

	bs.Close()
	select {
	case err := <-bsErr:
		if err != nil {
			t.Errorf("broker Serve after Close = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("broker Serve did not return after Close")
	}

	// A listener failure that is NOT a close still surfaces as an error.
	bl2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs2 := NewBrokerServer(pubsub.NewBroker("b2"), t.Logf)
	bs2Err := make(chan error, 1)
	go func() { bs2Err <- bs2.Serve(bl2) }()
	_ = bl2.Close() // external failure, not bs2.Close()
	select {
	case err := <-bs2Err:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve after external listener failure = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener failure")
	}
	bs2.Close()
}

// TestCloseIdempotent closes every client and server type twice; the
// second close must be a no-op, not a panic or a hang.
func TestCloseIdempotent(t *testing.T) {
	h := newHarness(t)

	pub, err := DialBroker(h.brokerAddr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Errorf("first broker client close: %v", err)
	}
	if err := pub.Close(); err != nil {
		t.Errorf("second broker client close: %v", err)
	}

	dev, err := DialProxy(h.proxyAddr, "phone")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Errorf("first device close: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Errorf("second device close: %v", err)
	}

	aAddr, _, shutdown := federatedPair(t)
	defer shutdown()
	sub, err := DialBroker(aAddr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	_ = sub.Close()

	// Server double-close.
	h.proxy.Close()
	h.proxy.Close()
	h.broker.Close()
	h.broker.Close()
}

// TestCallsFailFastWithoutAutoReconnect pins the legacy contract: when the
// connection dies and reconnection is off, calls return transport errors
// instead of parking.
func TestCallsFailFastWithoutAutoReconnect(t *testing.T) {
	h := newHarness(t)
	dev, err := DialProxy(h.proxyAddr, "phone")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Subscribe("news", TopicPolicy{Policy: "buffer", Max: 4}); err != nil {
		t.Fatal(err)
	}
	_ = dev.currentConn().Close()
	waitFor(t, "call failure after loss", func() bool {
		err := dev.Subscribe("other", TopicPolicy{Policy: "buffer", Max: 4})
		return err != nil && errors.Is(err, ErrConnLost)
	})
}
