package wire

// Fuzz targets for the two decoders that face untrusted bytes: wire frames
// and journal lines are both JSON, but the servers must never panic on
// garbage.

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"lasthop/internal/msg"
)

func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte(`{"type":"hello","name":"x"}`))
	f.Add([]byte(`{"type":"hello","name":"x","caps":["push-batch","future-cap"]}`))
	f.Add([]byte(`{"type":"publish","notification":{"id":"a","topic":"t","rank":3}}`))
	f.Add([]byte(`{"type":"read","read":{"topic":"t","n":8,"clientEvents":["a","b"]}}`))
	f.Add([]byte(`{"type":"subscribe","topicPolicy":{"policy":"buffer","max":8}}`))
	f.Add([]byte(`{"type":"push-batch","batch":[{"id":"a","topic":"t","rank":1},{"id":"b","topic":"t","rank":2,"payload":"aGk="}]}`))
	f.Add([]byte(`{"type":"push-batch","batch":[null,{"id":"c","topic":"t","rank":3},null]}`))
	f.Add([]byte(`{"type":"push-batch","batch":[]}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"a","origin":"b1","hops":[{"node":"b1","at":1700000000000000000}]}}`))
	f.Add([]byte(`{"type":"push-batch","batch":[{"id":"a","topic":"t","rank":1},{"id":"b","topic":"t","rank":2}],"traces":[{"id":"a"},null]}`))
	// Traces longer than the batch: adoptBatchTraces must ignore the tail.
	f.Add([]byte(`{"type":"push-batch","batch":[{"id":"a","topic":"t","rank":1}],"traces":[{"id":"a"},{"id":"ghost"},null]}`))
	// Oversized-but-legal frames: a payload that pushes the encoded frame
	// near (but under) maxFrameBytes, and one batch of many small entries.
	f.Add([]byte(`{"type":"push","notification":{"id":"big","topic":"t","rank":1,"payload":"` +
		strings.Repeat("QUJDRA==", (maxFrameBytes-4096)/8) + `"}}`))
	f.Add([]byte(`{"type":"push-batch","batch":[` +
		strings.Repeat(`{"id":"x","topic":"t","rank":1},`, 4095) +
		`{"id":"last","topic":"t","rank":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := json.Unmarshal(data, &fr); err != nil {
			return
		}
		// Whatever decoded must survive the paths a server exercises.
		if fr.TopicPolicy != nil {
			_, _ = fr.TopicPolicy.ToConfig("fuzz")
		}
		if fr.Read != nil {
			_ = fr.Read.Validate()
		}
		if fr.Notification != nil {
			_ = fr.Notification.Validate()
		}
		if fr.Subscription != nil {
			_ = fr.Subscription.Validate()
		}
		if fr.RankUpdate != nil {
			_ = fr.RankUpdate.Validate()
		}
		for _, n := range fr.Batch {
			if n != nil {
				_ = n.Validate()
			}
		}
		// Hostile Traces lengths (longer or shorter than Batch) must never
		// panic the reattachment the receive path performs.
		adoptBatchTraces(&fr)
		// Re-encoding must always succeed.
		if _, err := json.Marshal(&fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

func FuzzNotificationRoundTrip(f *testing.F) {
	f.Add("id-1", "topic/a", 4.5, []byte("payload"))
	f.Add("", "", -1.0, []byte(nil))
	f.Fuzz(func(t *testing.T, id, topic string, rank float64, payload []byte) {
		if math.IsNaN(rank) || math.IsInf(rank, 0) {
			t.Skip("non-finite ranks are rejected at encode time")
		}
		n := &msg.Notification{ID: msg.ID(id), Topic: topic, Rank: rank, Payload: payload}
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back msg.Notification
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal own output: %v", err)
		}
		if back.ID != n.ID || back.Topic != n.Topic {
			t.Fatalf("round trip changed identity: %+v vs %+v", back, n)
		}
	})
}

// FuzzBatchFrameEncode drives the hand-rolled hot-path encoder with
// arbitrary batch contents and checks it against encoding/json: both
// encodings must decode to the same frame, and the hand-rolled bytes must
// survive the real frame decoder.
func FuzzBatchFrameEncode(f *testing.F) {
	f.Add(3, "id", "topic/a", "pub", 4.5, []byte("payload"), int64(1_700_000_000))
	f.Add(1, "", "", "", -0.0, []byte(nil), int64(0))
	f.Add(8, "nö\x00n", "t<a>&b", "svc\"q\\", 1e21, []byte{0x00, 0xff}, int64(4_000_000_000))
	// Even batch sizes attach per-entry trace contexts (with nil gaps), so
	// the seed corpus exercises the trace-field encoder too.
	f.Add(5, "tr-1", "node/x", `origin "o"`, 2.5, []byte("p"), int64(123_456_789))
	f.Fuzz(func(t *testing.T, count int, id, topic, publisher string, rank float64, payload []byte, sec int64) {
		if math.IsNaN(rank) || math.IsInf(rank, 0) {
			t.Skip("non-finite ranks are rejected at encode time")
		}
		if count < 0 {
			count = -count
		}
		count = count%8 + 1
		// Keep the timestamp within RFC 3339's representable years; the
		// encoder falls back to encoding/json outside them, and Marshal
		// itself errors there.
		sec %= 250_000_000_000
		if sec < 0 {
			sec = -sec
		}
		at := time.Unix(sec, 0).UTC()
		batch := make([]*msg.Notification, count)
		for i := range batch {
			n := &msg.Notification{
				ID: msg.ID(id), Topic: topic, Rank: rank, Published: at, Payload: payload,
			}
			if i%2 == 1 {
				n.Publisher = publisher
				n.Expires = at.Add(time.Duration(i) * time.Hour)
			}
			batch[i] = n
		}
		fr := &Frame{Type: TypePushBatch, Batch: batch}
		// Even batch sizes carry aligned trace contexts, with every third
		// entry left nil the way an unsampled notification would be.
		if count%2 == 0 {
			fr.Traces = make([]*msg.TraceContext, len(batch))
			for i := range fr.Traces {
				if i%3 == 2 {
					continue
				}
				fr.Traces[i] = &msg.TraceContext{
					TraceID: id, Origin: publisher,
					Hops: []msg.TraceHop{{Node: topic, At: sec}},
				}
			}
		}
		enc, err := appendFrame(nil, fr)
		if err != nil {
			t.Fatalf("appendFrame: %v", err)
		}
		if enc[len(enc)-1] != '\n' {
			t.Fatalf("missing newline terminator: %q", enc)
		}
		ref, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("json.Marshal reference: %v", err)
		}
		var got, want Frame
		if err := json.Unmarshal(enc[:len(enc)-1], &got); err != nil {
			t.Fatalf("decode appendFrame output: %v\nenc: %s", err, enc)
		}
		if err := json.Unmarshal(ref, &want); err != nil {
			t.Fatalf("decode reference: %v", err)
		}
		if len(got.Batch) != len(want.Batch) {
			t.Fatalf("batch length diverged: %d vs %d", len(got.Batch), len(want.Batch))
		}
		for i := range got.Batch {
			g, w := got.Batch[i], want.Batch[i]
			if g.ID != w.ID || g.Topic != w.Topic || g.Publisher != w.Publisher ||
				g.Rank != w.Rank || !g.Published.Equal(w.Published) ||
				!g.Expires.Equal(w.Expires) || string(g.Payload) != string(w.Payload) {
				t.Fatalf("entry %d diverged\n got: %+v\nwant: %+v\n enc: %s\n ref: %s", i, g, w, enc, ref)
			}
		}
		if !reflect.DeepEqual(got.Traces, want.Traces) {
			t.Fatalf("trace contexts diverged\n got: %+v\nwant: %+v\n enc: %s\n ref: %s",
				got.Traces, want.Traces, enc, ref)
		}
	})
}

// FuzzDecodeFrameEquivalence holds the hand-rolled frame decoder to
// encoding/json's semantics: whenever the fast path accepts a line, the
// general path must accept it too and produce a frame that re-encodes to
// the identical JSON. (The fast path is allowed to bail — leniency, not
// strictness, is the bug class.)
func FuzzDecodeFrameEquivalence(f *testing.F) {
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":4.25,"published":"2026-08-05T12:30:45.123456789Z","expires":"0001-01-01T00:00:00Z","payload":"aGk="}}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":-1,"published":"2026-08-05T12:30:45+02:00","expires":"0001-01-01T00:00:00Z"},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":1700000000000000000}]}}`))
	f.Add([]byte(`{"type":"push-batch","batch":[{"id":"a","topic":"t","rank":1,"published":"2026-01-01T00:00:00Z","expires":"0001-01-01T00:00:00Z"}],"traces":[null]}`))
	f.Add([]byte(`{"type":"publish","seq":12,"notification":{"id":"a","topic":"t","rank":0,"published":"2026-01-01T00:00:00Z","expires":"0001-01-01T00:00:00Z"}}`))
	f.Add([]byte(`{"type":"ok","re":3}`))
	f.Add([]byte(`{"type":"error","re":3,"message":"no","code":"duplicate-id"}`))
	f.Add([]byte(`{"type":"ping","seq":1}`))
	f.Add([]byte(`{"type":"ok","re":03}`))
	f.Add([]byte(`{"type":"ok","re":3} trailing`))
	f.Add([]byte(`{"type":"push","notification":{"id":"\u00e9","topic":"t","rank":1,"published":"2026-01-01T00:00:00Z","expires":"0001-01-01T00:00:00Z"}}`))
	// Hop timestamps at and beyond the int64 range: encoding/json rejects
	// anything past MaxInt64 (or below MinInt64), so the fast path must
	// bail rather than wrap. MinInt64 itself is in range and must agree.
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":9223372036854775807}]}}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":9223372036854775808}]}}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":9223372036854775809}]}}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":-9223372036854775808}]}}`))
	f.Add([]byte(`{"type":"push","notification":{"id":"a","topic":"t","rank":1},"trace":{"id":"t1","origin":"b1","hops":[{"node":"b1","at":-9223372036854775809}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fast Frame
		if !decodeFrame(data, &fast) {
			return
		}
		var std Frame
		if err := json.Unmarshal(data, &std); err != nil {
			t.Fatalf("fast decoder accepted input encoding/json rejects (%v): %q", err, data)
		}
		fj, err1 := json.Marshal(&fast)
		sj, err2 := json.Marshal(&std)
		if err1 != nil || err2 != nil {
			t.Fatalf("re-encode: %v / %v", err1, err2)
		}
		if string(fj) != string(sj) {
			t.Fatalf("decoders disagree on %q:\nfast: %s\nstd:  %s", data, fj, sj)
		}
	})
}
