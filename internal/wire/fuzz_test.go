package wire

// Fuzz targets for the two decoders that face untrusted bytes: wire frames
// and journal lines are both JSON, but the servers must never panic on
// garbage.

import (
	"encoding/json"
	"testing"

	"lasthop/internal/msg"
)

func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte(`{"type":"hello","name":"x"}`))
	f.Add([]byte(`{"type":"publish","notification":{"id":"a","topic":"t","rank":3}}`))
	f.Add([]byte(`{"type":"read","read":{"topic":"t","n":8,"clientEvents":["a","b"]}}`))
	f.Add([]byte(`{"type":"subscribe","topicPolicy":{"policy":"buffer","max":8}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := json.Unmarshal(data, &fr); err != nil {
			return
		}
		// Whatever decoded must survive the paths a server exercises.
		if fr.TopicPolicy != nil {
			_, _ = fr.TopicPolicy.ToConfig("fuzz")
		}
		if fr.Read != nil {
			_ = fr.Read.Validate()
		}
		if fr.Notification != nil {
			_ = fr.Notification.Validate()
		}
		if fr.Subscription != nil {
			_ = fr.Subscription.Validate()
		}
		if fr.RankUpdate != nil {
			_ = fr.RankUpdate.Validate()
		}
		// Re-encoding must always succeed.
		if _, err := json.Marshal(&fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

func FuzzNotificationRoundTrip(f *testing.F) {
	f.Add("id-1", "topic/a", 4.5, []byte("payload"))
	f.Add("", "", -1.0, []byte(nil))
	f.Fuzz(func(t *testing.T, id, topic string, rank float64, payload []byte) {
		n := &msg.Notification{ID: msg.ID(id), Topic: topic, Rank: rank, Payload: payload}
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back msg.Notification
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal own output: %v", err)
		}
		if back.ID != n.ID || back.Topic != n.Topic {
			t.Fatalf("round trip changed identity: %+v vs %+v", back, n)
		}
	})
}
