// Package wire is the deployment substrate: a newline-delimited JSON
// protocol over TCP connecting publishers and proxies to brokers, and
// mobile devices to proxies. It lets the identical core.Proxy algorithm
// that drives the simulator run as a real service — the paper's §4 plan of
// "implementing the ideas in a real system".
//
// Topology:
//
//	publisher ──┐
//	            ├── BrokerServer ──(BrokerClient)── ProxyServer ──(DeviceClient)── device
//	publisher ──┘
//
// The device⇄proxy TCP connection is the "last hop": while no device is
// connected the proxy considers the network down and spools notifications
// exactly as in the simulation.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/flight"
	"lasthop/internal/msg"
)

// Frame types exchanged on the wire.
const (
	// Client → server requests.
	TypeHello       = "hello"
	TypeAdvertise   = "advertise"
	TypeWithdraw    = "withdraw"
	TypePublish     = "publish"
	TypeRankUpdate  = "rank-update"
	TypeSubscribe   = "subscribe"
	TypeUnsubscribe = "unsubscribe"
	TypeRead        = "read"
	// TypeResume replays a reconnecting device's per-topic session state
	// (queued and consumed notification IDs) so the proxy can reconcile
	// in-flight losses without duplicating deliveries.
	TypeResume = "resume"
	// TypePing is a liveness probe; the peer answers with TypePong
	// echoing the sequence. Either side may probe.
	TypePing = "ping"

	// Server → client responses and pushes.
	TypeOK   = "ok"
	TypeErr  = "error"
	TypePush = "push"
	// TypePushBatch delivers several notifications in one frame, so a
	// burst of forwards (a read response, a reconnect drain) costs one
	// write instead of one per notification. Only sent to peers that
	// advertised CapPushBatch in their hello.
	TypePushBatch = "push-batch"
	// TypePushRank delivers a rank revision for an already-pushed
	// notification.
	TypePushRank = "push-rank"
	// TypePong answers a TypePing.
	TypePong = "pong"
)

// Capability tokens exchanged in the hello handshake (Frame.Caps). A peer
// that omits a capability — including every peer speaking the pre-batch
// protocol, whose hellos carry no caps at all — is served with the
// original single-frame encodings.
const (
	// CapPushBatch marks a peer that understands TypePushBatch frames.
	CapPushBatch = "push-batch"
	// CapTrace marks a peer that understands the optional trace-context
	// frame fields (Frame.Trace and Frame.Traces). Contexts are only
	// attached toward peers that advertised it; legacy peers receive the
	// same frames minus the context, and a context arriving anyway would
	// be ignored as an unknown JSON field.
	CapTrace = "trace-ctx"
)

// LocalCaps is what this build advertises and understands.
func LocalCaps() []string { return []string{CapPushBatch, CapTrace} }

// HasCap reports whether a hello's capability list names c.
func HasCap(caps []string, c string) bool {
	for _, v := range caps {
		if v == c {
			return true
		}
	}
	return false
}

// Error codes carried by TypeErr frames so clients can react to specific
// failures without parsing message text.
const (
	// CodeDuplicateID marks a publish rejected because the notification
	// ID was already published; a retrying publisher treats it as
	// confirmation that the original attempt landed.
	CodeDuplicateID = "duplicate-id"
)

// Frame is the single wire message shape; unused fields stay empty. Seq
// correlates requests with their OK/Err response (Re echoes the request's
// Seq); pushes carry Seq 0.
type Frame struct {
	Type string `json:"type"`
	Seq  uint64 `json:"seq,omitempty"`
	Re   uint64 `json:"re,omitempty"`

	// Hello.
	Name string `json:"name,omitempty"`

	// Topic-scoped requests.
	Topic     string `json:"topic,omitempty"`
	Publisher string `json:"publisher,omitempty"`

	// Publish / push payloads.
	Notification *msg.Notification `json:"notification,omitempty"`
	RankUpdate   *msg.RankUpdate   `json:"rankUpdate,omitempty"`

	// Batch carries the notifications of a TypePushBatch frame.
	Batch []*msg.Notification `json:"batch,omitempty"`

	// Trace carries the distributed-tracing context of Notification on
	// publish/push frames; Traces aligns 1:1 with Batch on push-batch
	// frames (null entries mark unsampled notifications). Both are only
	// sent to peers that advertised CapTrace in their hello.
	Trace  *msg.TraceContext   `json:"trace,omitempty"`
	Traces []*msg.TraceContext `json:"traces,omitempty"`

	// Caps lists protocol capabilities on hello frames and their OK
	// responses; see the Cap* constants.
	Caps []string `json:"caps,omitempty"`

	// Subscribe payload (broker) and topic policy (proxy).
	Subscription *msg.Subscription `json:"subscription,omitempty"`
	TopicPolicy  *TopicPolicy      `json:"topicPolicy,omitempty"`

	// Read payload and its result count.
	Read  *msg.ReadRequest `json:"read,omitempty"`
	Count int              `json:"count,omitempty"`

	// Resume payload: the device's local queue contents and consumed IDs
	// for Topic.
	HaveIDs []msg.ID `json:"haveIDs,omitempty"`
	ReadIDs []msg.ID `json:"readIDs,omitempty"`

	// Error message and machine-readable code for TypeErr.
	Message string `json:"message,omitempty"`
	Code    string `json:"code,omitempty"`
}

// adoptBatchTraces reattaches the trace contexts of a push-batch frame to
// its notifications. Entries are matched by index; a short, missing, or
// hostile-length Traces slice simply leaves the remaining notifications
// unsampled.
func adoptBatchTraces(f *Frame) {
	if len(f.Traces) == 0 {
		return
	}
	for i, n := range f.Batch {
		if n != nil && i < len(f.Traces) {
			n.Trace = f.Traces[i]
		}
	}
}

// TopicPolicy is the device-facing subset of core.TopicConfig a device may
// select when subscribing through a proxy.
type TopicPolicy struct {
	// Mode is "on-line" or "on-demand" (default).
	Mode string `json:"mode,omitempty"`
	// Policy is "online", "on-demand", "buffer", or "rate"; empty
	// defaults to the unified buffer policy with auto tuning.
	Policy string `json:"policy,omitempty"`
	// Max and Threshold are the subscriber's volume limits.
	Max       int     `json:"max,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// PrefetchLimit fixes the buffer policy's limit; zero auto-tunes.
	PrefetchLimit int `json:"prefetchLimit,omitempty"`
	// DelaySeconds holds fresh notifications back for rank retractions.
	DelaySeconds float64 `json:"delaySeconds,omitempty"`
	// InterruptRank lets an on-demand topic interrupt for urgent
	// content (§2.2); zero disables it.
	InterruptRank float64 `json:"interruptRank,omitempty"`
	// DailyOnlineCap bounds on-line pushes per day; zero means no cap.
	DailyOnlineCap int `json:"dailyOnlineCap,omitempty"`
	// HistoryLimit bounds the proxy's per-topic retained history (the
	// dedup/rank-revision window); zero keeps the core default, negative
	// means unbounded. Sessions that deliver at high volume retain one
	// pooled notification per history entry, so a bounded history is what
	// lets the notification pool recycle at steady state.
	HistoryLimit int `json:"historyLimit,omitempty"`
	// QuietWindows silence on-line delivery during daily windows,
	// expressed as minutes from midnight.
	QuietWindows []QuietWindowSpec `json:"quietWindows,omitempty"`
}

// QuietWindowSpec is a daily quiet window in minutes from midnight.
type QuietWindowSpec struct {
	StartMinutes int `json:"startMinutes"`
	EndMinutes   int `json:"endMinutes"`
}

// Conn wraps a net.Conn with frame encoding, write locking, sequence
// numbering, and optional liveness deadlines. Reads must be performed by a
// single goroutine.
//
// Writes ride a per-connection egress ring: Send encodes the frame into a
// pooled buffer, appends it to the ring, and signals the flusher
// goroutine, which drains the whole ring in one vectored write
// (net.Buffers → writev on TCP). Frames queued while a flush syscall is
// in flight coalesce into the next one (group commit) without ever being
// copied into an intermediate write buffer. SendNow and SendRequest flush
// before returning — a request's caller blocks on the response anyway, so
// its frame should hit the wire immediately. A write error is latched and
// reported by every subsequent send.
type Conn struct {
	c net.Conn
	r *lineReader

	// readTimeout bounds the silence tolerated between frames: each Recv
	// arms a deadline this far in the future, so a half-open connection
	// fails instead of hanging forever. Zero disables it.
	readTimeout time.Duration
	// writeTimeout bounds each flush, so a peer that stopped draining its
	// socket cannot block the writer indefinitely. Zero disables it.
	writeTimeout time.Duration

	wmu  sync.Mutex
	seq  uint64
	werr error // first write/flush failure; latched

	// The egress ring (wmu-guarded): encoded frames awaiting the next
	// vectored flush. ring owns the pooled buffers; vecs is the scratch
	// net.Buffers rebuilt for each writev (WriteTo consumes its slice in
	// place, so ownership never rides on it).
	ring      []*burst.Buf
	ringBytes int
	vecs      net.Buffers

	// m aggregates wire metrics; nil disables instrumentation.
	// firstBuffered (wmu-guarded) records when the current ring started
	// filling, feeding the flush-coalescing histogram.
	m             *Metrics
	firstBuffered time.Time
	flushes       atomic.Uint64 // socket flushes performed (tests: idle ⇒ no flushes)

	// Stall telemetry for the flusher watchdog probe, maintained
	// unconditionally (unlike firstBuffered, which needs metrics):
	// pendBytes is what the ring holds, pendSinceNs when it started
	// holding it. Written under wmu, read lock-free by the probe while
	// the flusher may be wedged inside WriteTo holding wmu.
	pendBytes   atomic.Int64
	pendSinceNs atomic.Int64

	// Receive-side options; single reader goroutine, no locking.
	recvPooled bool   // decode notifications out of burst.Notes
	recvReuse  bool   // reuse one Frame across Recv calls
	recvFrame  *Frame // the reused frame when recvReuse is set
	dec        decodeOpts

	flushC    chan struct{} // kicks the flusher; capacity 1
	done      chan struct{} // closed by Close; stops the flusher
	closeOnce sync.Once
}

// maxFrameBytes bounds a single frame (1 MiB), protecting servers from
// unbounded lines.
const maxFrameBytes = 1 << 20

// readBufferBytes is the initial size of the per-connection read buffer;
// it grows on demand up to maxFrameBytes.
const readBufferBytes = 64 * 1024

// Egress-ring bounds: once either is hit, the writer flushes inline,
// which is the natural backpressure (matching the old write-buffer-full
// degradation to a synchronous flush). Process-wide; see SetRingLimits.
var (
	maxRingFrames = 64
	maxRingBytes  = 256 * 1024
)

// SetRingLimits tunes the process-wide egress-ring bounds: how many
// encoded frames (and bytes) may accumulate per connection before the
// writer flushes inline instead of waiting for the flusher's vectored
// write. Zero or negative keeps the current value. Call once at startup,
// before any connection exists — the bounds are read without
// synchronization on the hot path.
func SetRingLimits(frames, bytes int) {
	if frames > 0 {
		maxRingFrames = frames
	}
	if bytes > 0 {
		maxRingBytes = bytes
	}
}

// conns registers every live connection for the flusher stall probe;
// entries leave on Close.
var conns sync.Map // *Conn → struct{}

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	conn := &Conn{
		c:      c,
		r:      newLineReader(c),
		flushC: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	conns.Store(conn, struct{}{})
	go conn.flushLoop()
	return conn
}

// FlusherStallProbe returns a watchdog probe that trips when any live
// connection has held at least minBytes in its egress ring for longer
// than maxAge without a flush completing — the signature of a flusher
// wedged in a blocked writev (peer stopped draining, missing write
// deadline) or of a parked flusher that lost its kick. The probe reads
// only per-connection atomics; it never takes wmu.
func FlusherStallProbe(maxAge time.Duration, minBytes int64) flight.Probe {
	return flight.Probe{Name: "flusher-pending", Component: flight.SubFlush.String(), Check: func() error {
		var stalled error
		conns.Range(func(k, _ any) bool {
			c := k.(*Conn)
			since := c.pendSinceNs.Load()
			bytes := c.pendBytes.Load()
			if since == 0 || bytes < minBytes {
				return true
			}
			if age := time.Since(time.Unix(0, since)); age > maxAge {
				stalled = fmt.Errorf("conn %s: %d bytes unflushed for %v (max %v)",
					c.RemoteAddr(), bytes, age.Round(time.Millisecond), maxAge)
				flight.Record(flight.SubFlush, flight.KindStall, -1, int64(age), bytes)
				return false
			}
			return true
		})
		return stalled
	}}
}

// flushLoop is the connection's flusher goroutine: it parks until a Send
// kicks it — no idle-timer wakeups — then writes out whatever has
// accumulated. All frames queued between two wakeups leave in one
// vectored syscall.
func (c *Conn) flushLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.flushC:
		}
		c.wmu.Lock()
		c.flushLocked()
		c.wmu.Unlock()
	}
}

// flushLocked arms the write deadline and drains the egress ring; wmu
// must be held.
func (c *Conn) flushLocked() {
	if len(c.ring) == 0 {
		return
	}
	if c.writeTimeout > 0 && c.werr == nil {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	c.flushRingLocked()
}

// flushRingLocked drains the egress ring in one vectored write under
// whatever deadline the caller armed; wmu must be held. The pooled
// buffers return to the pool afterwards, written or not (a latched error
// drops them — the session-resume protocol tolerates the loss).
func (c *Conn) flushRingLocked() {
	if len(c.ring) == 0 {
		return
	}
	if c.werr == nil {
		if c.m != nil {
			c.m.FlushFrames.Observe(float64(len(c.ring)))
			c.m.FlushCoalesce.Observe(time.Since(c.firstBuffered).Seconds())
		}
		c.vecs = c.vecs[:0]
		for _, b := range c.ring {
			c.vecs = append(c.vecs, b.B)
		}
		// WriteTo advances vecs in place (one writev per IOV_MAX chunk on
		// TCP); the backing buffers stay owned by the ring.
		v := c.vecs
		if _, err := v.WriteTo(c.c); err != nil {
			c.werr = err
		}
		c.flushes.Add(1)
		flight.Record(flight.SubFlush, flight.KindFlush, -1, int64(len(c.ring)), int64(c.ringBytes))
	}
	for i, b := range c.ring {
		burst.Bufs.Put(b)
		c.ring[i] = nil
	}
	c.ring = c.ring[:0]
	c.ringBytes = 0
	c.vecs = c.vecs[:0]
	c.pendBytes.Store(0)
	c.pendSinceNs.Store(0)
}

// Flushes returns the number of socket flushes this connection performed.
func (c *Conn) Flushes() uint64 { return c.flushes.Load() }

// kickFlush wakes the flusher without blocking; a pending kick suffices.
func (c *Conn) kickFlush() {
	select {
	case c.flushC <- struct{}{}:
	default:
	}
}

// SetTimeouts configures the liveness deadlines: read bounds the silence
// between received frames, write bounds each Send. Zero disables either.
// Call before the connection is shared between goroutines.
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout = read
	c.writeTimeout = write
}

// SetMetrics attaches a wire metrics set; nil leaves the connection
// uninstrumented. Call before the connection is shared between goroutines.
func (c *Conn) SetMetrics(m *Metrics) {
	c.m = m
	c.r.m = m
}

// SetNotePool enables pooled notification decode: push and publish
// notifications arriving on this connection are checked out of
// burst.Notes (with per-connection topic/publisher string interning), and
// ownership transfers to whoever consumes the frame — that consumer must
// eventually burst.Notes.Put each one. Only enable on connections whose
// read loop honors that contract (broker servers and broker clients, not
// device clients, whose notifications are retained by the application).
// Call before the connection is shared between goroutines.
func (c *Conn) SetNotePool(on bool) {
	c.recvPooled = on
	if on {
		c.dec.pool = burst.Notes
		if c.dec.names == nil {
			c.dec.names = make(map[string]string)
		}
	} else {
		c.dec.pool = nil
	}
}

// SetRecvReuse makes Recv return the same *Frame every call, resetting it
// first. Only enable when the read loop finishes with each frame (and
// everything reachable from it, notifications excepted — see SetNotePool)
// before the next Recv. Call before the connection is shared between
// goroutines.
func (c *Conn) SetRecvReuse(on bool) { c.recvReuse = on }

// SetInternNames gives the decoder a per-connection intern table for
// topic and publisher strings without enabling the notification pool —
// the right mode for device clients, which retain decoded notifications
// (so pooling is wrong) but see the same few topics on every push. Call
// before the connection is shared between goroutines.
func (c *Conn) SetInternNames(on bool) {
	if on {
		if c.dec.names == nil {
			c.dec.names = make(map[string]string)
		}
	} else if c.dec.pool == nil {
		c.dec.names = nil
	}
}

// closeFlushTimeout bounds the best-effort drain of buffered frames during
// Close; a peer that stopped reading cannot stall teardown longer.
const closeFlushTimeout = 100 * time.Millisecond

// Close stops the flusher and closes the underlying connection, draining
// any queued frames first (briefly, best effort — an unresponsive peer
// loses them, which the session-resume protocol already tolerates).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		conns.Delete(c)
		close(c.done)
		c.wmu.Lock()
		if len(c.ring) > 0 {
			_ = c.c.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
			c.flushRingLocked()
		}
		c.wmu.Unlock()
	})
	return c.c.Close()
}

// setRawDeadline bounds every pending and future I/O operation on the
// underlying connection (both directions); the zero time clears it. Used
// to bound multi-frame handshakes as a whole.
func (c *Conn) setRawDeadline(t time.Time) { _ = c.c.SetDeadline(t) }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Send buffers one frame and wakes the flusher; it coalesces with other
// frames in flight. Use it for pushes and responses, where the sender does
// not wait on the peer.
func (c *Conn) Send(f *Frame) error {
	c.wmu.Lock()
	err := c.writeLocked(f)
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	c.kickFlush()
	return nil
}

// SendShared enqueues an already-encoded, newline-terminated frame buffer
// on the egress ring, consuming exactly one of the caller's references: on
// success the ring's flush releases it (the pool recycles it on the last
// reference), and on a latched write error it is released here. The same
// buffer may be queued on many connections at once — encode once, Ref per
// extra connection — which is the broadcast fan-out fast path.
func (c *Conn) SendShared(b *burst.Buf) error {
	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		burst.Bufs.Put(b)
		return err
	}
	if c.m != nil {
		c.m.FramesOut.Inc()
		c.m.BytesOut.Add(int64(len(b.B)))
		if len(c.ring) == 0 {
			c.firstBuffered = time.Now()
		}
	}
	c.ring = append(c.ring, b)
	c.ringBytes += len(b.B)
	if c.pendBytes.Add(int64(len(b.B))) == int64(len(b.B)) {
		c.pendSinceNs.Store(time.Now().UnixNano())
	}
	if len(c.ring) >= maxRingFrames || c.ringBytes >= maxRingBytes {
		c.flushLocked()
		err := c.werr
		c.wmu.Unlock()
		return err
	}
	c.wmu.Unlock()
	c.kickFlush()
	return nil
}

// SendRelease sends a transient frame and returns it to the frame pool.
// Send encodes synchronously, so the frame is free the moment it returns;
// the caller must not touch f afterwards. Intended for responses built by
// OK/Err and other fire-and-forget frames whose lifetime ends here.
func (c *Conn) SendRelease(f *Frame) error {
	err := c.Send(f)
	putPushFrame(f)
	return err
}

// SendNow writes one frame and flushes it to the wire before returning.
// Use it for requests, whose caller blocks on the response.
func (c *Conn) SendNow(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(f); err != nil {
		return err
	}
	c.flushLocked()
	return c.werr
}

// SendRequest assigns a fresh sequence number and writes the frame through
// to the wire, returning the sequence for correlation.
func (c *Conn) SendRequest(f *Frame) (uint64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.seq++
	f.Seq = c.seq
	if err := c.writeLocked(f); err != nil {
		return 0, err
	}
	c.flushLocked()
	if c.werr != nil {
		return 0, c.werr
	}
	return f.Seq, nil
}

// writeLocked encodes f into a pooled buffer and appends it to the egress
// ring; wmu must be held. When the ring reaches its bounds the writer
// flushes inline, which is the backpressure path.
func (c *Conn) writeLocked(f *Frame) error {
	if c.werr != nil {
		return c.werr
	}
	buf := burst.Bufs.Get()
	b, err := appendFrame(buf.B[:0], f)
	buf.B = b
	if err == nil && len(b)-1 > maxFrameBytes {
		err = fmt.Errorf("frame exceeds %d bytes", maxFrameBytes)
	}
	if err != nil {
		burst.Bufs.Put(buf)
		return err
	}
	if c.m != nil {
		c.m.FramesOut.Inc()
		c.m.BytesOut.Add(int64(len(b)))
		if len(c.ring) == 0 {
			c.firstBuffered = time.Now()
		}
	}
	c.ring = append(c.ring, buf)
	c.ringBytes += len(b)
	if c.pendBytes.Add(int64(len(b))) == int64(len(b)) {
		c.pendSinceNs.Store(time.Now().UnixNano())
	}
	if len(c.ring) >= maxRingFrames || c.ringBytes >= maxRingBytes {
		c.flushLocked()
		return c.werr
	}
	return nil
}

// Recv reads the next frame. With SetRecvReuse the returned frame is only
// valid until the next Recv; with SetNotePool its notifications are
// pool-owned and the consumer must Put them.
func (c *Conn) Recv() (*Frame, error) {
	if c.readTimeout > 0 {
		_ = c.c.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	line, err := c.r.next()
	if err != nil {
		return nil, err
	}
	var f *Frame
	if c.recvReuse {
		if c.recvFrame == nil {
			c.recvFrame = new(Frame)
		}
		f = c.recvFrame
		resetFrame(f)
	} else {
		f = new(Frame)
	}
	if !decodeFrameOpts(line, f, &c.dec) {
		// Not one of the hot shapes (or not exactly so): release any
		// pooled notifications the strict decoder partially filled, reset,
		// and take the general path.
		releaseFrameNotes(f)
		*f = Frame{}
		if err := json.Unmarshal(line, f); err != nil {
			return nil, fmt.Errorf("bad frame: %w", err)
		}
	}
	if c.m != nil {
		c.m.FramesIn.Inc()
		c.m.BytesIn.Add(int64(len(line)))
	}
	if f == c.recvFrame && f.Re != 0 {
		// A response escapes the read loop to a cross-goroutine waiter
		// (caller.resolve); give up the reusable frame instead of
		// resetting it underneath that goroutine. Pushes — the high-volume
		// traffic — keep reusing the same frame.
		c.recvFrame = nil
	}
	return f, nil
}

// resetFrame zeroes a frame for reuse, keeping the batch slices'
// capacity. Notification pointers are simply dropped: ownership
// transferred to the consumer on the previous iteration.
func resetFrame(f *Frame) {
	batch := f.Batch[:0]
	traces := f.Traces[:0]
	*f = Frame{}
	f.Batch = batch
	f.Traces = traces
}

// releaseFrameNotes returns every notification reachable from a partially
// decoded frame to the pool (no-ops for pool-foreign ones).
func releaseFrameNotes(f *Frame) {
	burst.Notes.Put(f.Notification)
	for _, n := range f.Batch {
		burst.Notes.Put(n)
	}
}

// lineReader scans newline-delimited frames out of a growable read
// buffer, one read syscall per refill: a burst that arrives in one TCP
// segment yields N frames decoded directly from the same buffer, with no
// intermediate copies. Lines returned by next are views into the buffer,
// valid until the following call.
type lineReader struct {
	c          net.Conn
	buf        []byte
	start, end int
	sinceFill  int      // frames returned since the last fill, for ReadBurst
	m          *Metrics // nil disables instrumentation
	sawEOF     bool
}

func newLineReader(c net.Conn) *lineReader {
	return &lineReader{c: c, buf: make([]byte, readBufferBytes)}
}

// next returns the next line with its newline (and any trailing '\r')
// stripped. At EOF a final non-terminated line is returned as-is, like
// bufio.Scanner; the connection-closed error follows on the next call.
func (r *lineReader) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(r.buf[r.start:r.end], '\n'); i >= 0 {
			line := r.buf[r.start : r.start+i]
			r.start += i + 1
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			r.sinceFill++
			return line, nil
		}
		if r.sawEOF {
			if r.end > r.start {
				line := r.buf[r.start:r.end]
				r.start = r.end
				if len(line) > 0 && line[len(line)-1] == '\r' {
					line = line[:len(line)-1]
				}
				return line, nil
			}
			return nil, fmt.Errorf("connection closed")
		}
		if r.start > 0 {
			copy(r.buf, r.buf[r.start:r.end])
			r.end -= r.start
			r.start = 0
		}
		if r.end == len(r.buf) {
			if len(r.buf) > maxFrameBytes {
				return nil, errFrameTooLong
			}
			grown := len(r.buf) * 2
			if grown > maxFrameBytes+1 {
				grown = maxFrameBytes + 1
			}
			nb := make([]byte, grown)
			copy(nb, r.buf[:r.end])
			r.buf = nb
		}
		if r.m != nil && r.sinceFill > 0 {
			r.m.ReadBurst.Observe(float64(r.sinceFill))
		}
		r.sinceFill = 0
		n, err := r.c.Read(r.buf[r.end:])
		r.end += n
		if err != nil {
			if err == io.EOF {
				r.sawEOF = true
				continue
			}
			if n > 0 {
				// Scan what arrived; a persistent error resurfaces on the
				// next empty read.
				continue
			}
			return nil, err
		}
	}
}

// errFrameTooLong rejects a line that outgrew the frame bound.
var errFrameTooLong = fmt.Errorf("frame exceeds %d bytes", maxFrameBytes)

// OK builds a success response to the given request frame. The frame
// comes from the shared frame pool; send it with SendRelease to recycle
// it (plain Send merely forgoes the reuse).
func OK(re *Frame) *Frame {
	f := getPushFrame()
	f.Type = TypeOK
	f.Re = re.Seq
	return f
}

// Err builds an error response to the given request frame. Pooled like
// OK; see SendRelease.
func Err(re *Frame, err error) *Frame {
	f := getPushFrame()
	f.Type = TypeErr
	f.Re = re.Seq
	f.Message = err.Error()
	return f
}
