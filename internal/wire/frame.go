// Package wire is the deployment substrate: a newline-delimited JSON
// protocol over TCP connecting publishers and proxies to brokers, and
// mobile devices to proxies. It lets the identical core.Proxy algorithm
// that drives the simulator run as a real service — the paper's §4 plan of
// "implementing the ideas in a real system".
//
// Topology:
//
//	publisher ──┐
//	            ├── BrokerServer ──(BrokerClient)── ProxyServer ──(DeviceClient)── device
//	publisher ──┘
//
// The device⇄proxy TCP connection is the "last hop": while no device is
// connected the proxy considers the network down and spools notifications
// exactly as in the simulation.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"lasthop/internal/msg"
)

// Frame types exchanged on the wire.
const (
	// Client → server requests.
	TypeHello       = "hello"
	TypeAdvertise   = "advertise"
	TypeWithdraw    = "withdraw"
	TypePublish     = "publish"
	TypeRankUpdate  = "rank-update"
	TypeSubscribe   = "subscribe"
	TypeUnsubscribe = "unsubscribe"
	TypeRead        = "read"

	// Server → client responses and pushes.
	TypeOK   = "ok"
	TypeErr  = "error"
	TypePush = "push"
	// TypePushRank delivers a rank revision for an already-pushed
	// notification.
	TypePushRank = "push-rank"
)

// Frame is the single wire message shape; unused fields stay empty. Seq
// correlates requests with their OK/Err response (Re echoes the request's
// Seq); pushes carry Seq 0.
type Frame struct {
	Type string `json:"type"`
	Seq  uint64 `json:"seq,omitempty"`
	Re   uint64 `json:"re,omitempty"`

	// Hello.
	Name string `json:"name,omitempty"`

	// Topic-scoped requests.
	Topic     string `json:"topic,omitempty"`
	Publisher string `json:"publisher,omitempty"`

	// Publish / push payloads.
	Notification *msg.Notification `json:"notification,omitempty"`
	RankUpdate   *msg.RankUpdate   `json:"rankUpdate,omitempty"`

	// Subscribe payload (broker) and topic policy (proxy).
	Subscription *msg.Subscription `json:"subscription,omitempty"`
	TopicPolicy  *TopicPolicy      `json:"topicPolicy,omitempty"`

	// Read payload and its result count.
	Read  *msg.ReadRequest `json:"read,omitempty"`
	Count int              `json:"count,omitempty"`

	// Error message for TypeErr.
	Message string `json:"message,omitempty"`
}

// TopicPolicy is the device-facing subset of core.TopicConfig a device may
// select when subscribing through a proxy.
type TopicPolicy struct {
	// Mode is "on-line" or "on-demand" (default).
	Mode string `json:"mode,omitempty"`
	// Policy is "online", "on-demand", "buffer", or "rate"; empty
	// defaults to the unified buffer policy with auto tuning.
	Policy string `json:"policy,omitempty"`
	// Max and Threshold are the subscriber's volume limits.
	Max       int     `json:"max,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// PrefetchLimit fixes the buffer policy's limit; zero auto-tunes.
	PrefetchLimit int `json:"prefetchLimit,omitempty"`
	// DelaySeconds holds fresh notifications back for rank retractions.
	DelaySeconds float64 `json:"delaySeconds,omitempty"`
	// InterruptRank lets an on-demand topic interrupt for urgent
	// content (§2.2); zero disables it.
	InterruptRank float64 `json:"interruptRank,omitempty"`
	// DailyOnlineCap bounds on-line pushes per day; zero means no cap.
	DailyOnlineCap int `json:"dailyOnlineCap,omitempty"`
	// QuietWindows silence on-line delivery during daily windows,
	// expressed as minutes from midnight.
	QuietWindows []QuietWindowSpec `json:"quietWindows,omitempty"`
}

// QuietWindowSpec is a daily quiet window in minutes from midnight.
type QuietWindowSpec struct {
	StartMinutes int `json:"startMinutes"`
	EndMinutes   int `json:"endMinutes"`
}

// Conn wraps a net.Conn with frame encoding, write locking, and sequence
// numbering. Reads must be performed by a single goroutine.
type Conn struct {
	c   net.Conn
	r   *bufio.Scanner
	enc *json.Encoder

	wmu sync.Mutex
	seq uint64
}

// maxFrameBytes bounds a single frame (1 MiB), protecting servers from
// unbounded lines.
const maxFrameBytes = 1 << 20

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 64*1024), maxFrameBytes)
	return &Conn{c: c, r: sc, enc: json.NewEncoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Send writes one frame.
func (c *Conn) Send(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(f)
}

// SendRequest assigns a fresh sequence number and writes the frame,
// returning the sequence for correlation.
func (c *Conn) SendRequest(f *Frame) (uint64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.seq++
	f.Seq = c.seq
	if err := c.enc.Encode(f); err != nil {
		return 0, err
	}
	return f.Seq, nil
}

// Recv reads the next frame.
func (c *Conn) Recv() (*Frame, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("connection closed")
	}
	var f Frame
	if err := json.Unmarshal(c.r.Bytes(), &f); err != nil {
		return nil, fmt.Errorf("bad frame: %w", err)
	}
	return &f, nil
}

// OK builds a success response to the given request frame.
func OK(re *Frame) *Frame { return &Frame{Type: TypeOK, Re: re.Seq} }

// Err builds an error response to the given request frame.
func Err(re *Frame, err error) *Frame {
	return &Frame{Type: TypeErr, Re: re.Seq, Message: err.Error()}
}
