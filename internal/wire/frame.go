// Package wire is the deployment substrate: a newline-delimited JSON
// protocol over TCP connecting publishers and proxies to brokers, and
// mobile devices to proxies. It lets the identical core.Proxy algorithm
// that drives the simulator run as a real service — the paper's §4 plan of
// "implementing the ideas in a real system".
//
// Topology:
//
//	publisher ──┐
//	            ├── BrokerServer ──(BrokerClient)── ProxyServer ──(DeviceClient)── device
//	publisher ──┘
//
// The device⇄proxy TCP connection is the "last hop": while no device is
// connected the proxy considers the network down and spools notifications
// exactly as in the simulation.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"lasthop/internal/msg"
)

// Frame types exchanged on the wire.
const (
	// Client → server requests.
	TypeHello       = "hello"
	TypeAdvertise   = "advertise"
	TypeWithdraw    = "withdraw"
	TypePublish     = "publish"
	TypeRankUpdate  = "rank-update"
	TypeSubscribe   = "subscribe"
	TypeUnsubscribe = "unsubscribe"
	TypeRead        = "read"
	// TypeResume replays a reconnecting device's per-topic session state
	// (queued and consumed notification IDs) so the proxy can reconcile
	// in-flight losses without duplicating deliveries.
	TypeResume = "resume"
	// TypePing is a liveness probe; the peer answers with TypePong
	// echoing the sequence. Either side may probe.
	TypePing = "ping"

	// Server → client responses and pushes.
	TypeOK   = "ok"
	TypeErr  = "error"
	TypePush = "push"
	// TypePushBatch delivers several notifications in one frame, so a
	// burst of forwards (a read response, a reconnect drain) costs one
	// write instead of one per notification. Only sent to peers that
	// advertised CapPushBatch in their hello.
	TypePushBatch = "push-batch"
	// TypePushRank delivers a rank revision for an already-pushed
	// notification.
	TypePushRank = "push-rank"
	// TypePong answers a TypePing.
	TypePong = "pong"
)

// Capability tokens exchanged in the hello handshake (Frame.Caps). A peer
// that omits a capability — including every peer speaking the pre-batch
// protocol, whose hellos carry no caps at all — is served with the
// original single-frame encodings.
const (
	// CapPushBatch marks a peer that understands TypePushBatch frames.
	CapPushBatch = "push-batch"
	// CapTrace marks a peer that understands the optional trace-context
	// frame fields (Frame.Trace and Frame.Traces). Contexts are only
	// attached toward peers that advertised it; legacy peers receive the
	// same frames minus the context, and a context arriving anyway would
	// be ignored as an unknown JSON field.
	CapTrace = "trace-ctx"
)

// LocalCaps is what this build advertises and understands.
func LocalCaps() []string { return []string{CapPushBatch, CapTrace} }

// HasCap reports whether a hello's capability list names c.
func HasCap(caps []string, c string) bool {
	for _, v := range caps {
		if v == c {
			return true
		}
	}
	return false
}

// Error codes carried by TypeErr frames so clients can react to specific
// failures without parsing message text.
const (
	// CodeDuplicateID marks a publish rejected because the notification
	// ID was already published; a retrying publisher treats it as
	// confirmation that the original attempt landed.
	CodeDuplicateID = "duplicate-id"
)

// Frame is the single wire message shape; unused fields stay empty. Seq
// correlates requests with their OK/Err response (Re echoes the request's
// Seq); pushes carry Seq 0.
type Frame struct {
	Type string `json:"type"`
	Seq  uint64 `json:"seq,omitempty"`
	Re   uint64 `json:"re,omitempty"`

	// Hello.
	Name string `json:"name,omitempty"`

	// Topic-scoped requests.
	Topic     string `json:"topic,omitempty"`
	Publisher string `json:"publisher,omitempty"`

	// Publish / push payloads.
	Notification *msg.Notification `json:"notification,omitempty"`
	RankUpdate   *msg.RankUpdate   `json:"rankUpdate,omitempty"`

	// Batch carries the notifications of a TypePushBatch frame.
	Batch []*msg.Notification `json:"batch,omitempty"`

	// Trace carries the distributed-tracing context of Notification on
	// publish/push frames; Traces aligns 1:1 with Batch on push-batch
	// frames (null entries mark unsampled notifications). Both are only
	// sent to peers that advertised CapTrace in their hello.
	Trace  *msg.TraceContext   `json:"trace,omitempty"`
	Traces []*msg.TraceContext `json:"traces,omitempty"`

	// Caps lists protocol capabilities on hello frames and their OK
	// responses; see the Cap* constants.
	Caps []string `json:"caps,omitempty"`

	// Subscribe payload (broker) and topic policy (proxy).
	Subscription *msg.Subscription `json:"subscription,omitempty"`
	TopicPolicy  *TopicPolicy      `json:"topicPolicy,omitempty"`

	// Read payload and its result count.
	Read  *msg.ReadRequest `json:"read,omitempty"`
	Count int              `json:"count,omitempty"`

	// Resume payload: the device's local queue contents and consumed IDs
	// for Topic.
	HaveIDs []msg.ID `json:"haveIDs,omitempty"`
	ReadIDs []msg.ID `json:"readIDs,omitempty"`

	// Error message and machine-readable code for TypeErr.
	Message string `json:"message,omitempty"`
	Code    string `json:"code,omitempty"`
}

// adoptBatchTraces reattaches the trace contexts of a push-batch frame to
// its notifications. Entries are matched by index; a short, missing, or
// hostile-length Traces slice simply leaves the remaining notifications
// unsampled.
func adoptBatchTraces(f *Frame) {
	if len(f.Traces) == 0 {
		return
	}
	for i, n := range f.Batch {
		if n != nil && i < len(f.Traces) {
			n.Trace = f.Traces[i]
		}
	}
}

// TopicPolicy is the device-facing subset of core.TopicConfig a device may
// select when subscribing through a proxy.
type TopicPolicy struct {
	// Mode is "on-line" or "on-demand" (default).
	Mode string `json:"mode,omitempty"`
	// Policy is "online", "on-demand", "buffer", or "rate"; empty
	// defaults to the unified buffer policy with auto tuning.
	Policy string `json:"policy,omitempty"`
	// Max and Threshold are the subscriber's volume limits.
	Max       int     `json:"max,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// PrefetchLimit fixes the buffer policy's limit; zero auto-tunes.
	PrefetchLimit int `json:"prefetchLimit,omitempty"`
	// DelaySeconds holds fresh notifications back for rank retractions.
	DelaySeconds float64 `json:"delaySeconds,omitempty"`
	// InterruptRank lets an on-demand topic interrupt for urgent
	// content (§2.2); zero disables it.
	InterruptRank float64 `json:"interruptRank,omitempty"`
	// DailyOnlineCap bounds on-line pushes per day; zero means no cap.
	DailyOnlineCap int `json:"dailyOnlineCap,omitempty"`
	// QuietWindows silence on-line delivery during daily windows,
	// expressed as minutes from midnight.
	QuietWindows []QuietWindowSpec `json:"quietWindows,omitempty"`
}

// QuietWindowSpec is a daily quiet window in minutes from midnight.
type QuietWindowSpec struct {
	StartMinutes int `json:"startMinutes"`
	EndMinutes   int `json:"endMinutes"`
}

// Conn wraps a net.Conn with frame encoding, write locking, sequence
// numbering, and optional liveness deadlines. Reads must be performed by a
// single goroutine.
//
// Writes are buffered: Send encodes into a bufio.Writer and signals a
// per-connection flusher goroutine, so frames written while a flush
// syscall is in flight coalesce into the next one (group commit). SendNow
// and SendRequest flush before returning — a request's caller blocks on
// the response anyway, so its frame should hit the wire immediately. A
// write error is latched and reported by every subsequent send.
type Conn struct {
	c  net.Conn
	r  *bufio.Scanner
	bw *bufio.Writer

	// readTimeout bounds the silence tolerated between frames: each Recv
	// arms a deadline this far in the future, so a half-open connection
	// fails instead of hanging forever. Zero disables it.
	readTimeout time.Duration
	// writeTimeout bounds each flush, so a peer that stopped draining its
	// socket cannot block the writer indefinitely. Zero disables it.
	writeTimeout time.Duration

	wmu  sync.Mutex
	seq  uint64
	werr error // first write/flush failure; latched

	// m aggregates wire metrics; nil disables instrumentation.
	// pendingFrames and firstBuffered (wmu-guarded) track how many frames
	// accumulated since the last flush and when the burst started, feeding
	// the flush-coalescing histograms.
	m             *Metrics
	pendingFrames int
	firstBuffered time.Time

	flushC    chan struct{} // kicks the flusher; capacity 1
	done      chan struct{} // closed by Close; stops the flusher
	closeOnce sync.Once
}

// maxFrameBytes bounds a single frame (1 MiB), protecting servers from
// unbounded lines.
const maxFrameBytes = 1 << 20

// writeBufferBytes sizes the per-connection write buffer. Large enough to
// coalesce a burst of pushes into one syscall; once full, writes degrade
// to synchronous flushes, which is the natural backpressure.
const writeBufferBytes = 64 * 1024

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 64*1024), maxFrameBytes)
	conn := &Conn{
		c:      c,
		r:      sc,
		bw:     bufio.NewWriterSize(c, writeBufferBytes),
		flushC: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go conn.flushLoop()
	return conn
}

// flushLoop is the connection's flusher goroutine: it sleeps until a Send
// kicks it, then writes out whatever has accumulated. All frames buffered
// between two wakeups leave in one syscall.
func (c *Conn) flushLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.flushC:
		}
		c.wmu.Lock()
		c.flushLocked()
		c.wmu.Unlock()
	}
}

// flushLocked drains the write buffer to the socket; wmu must be held.
func (c *Conn) flushLocked() {
	if c.m != nil && c.pendingFrames > 0 {
		c.m.FlushFrames.Observe(float64(c.pendingFrames))
		c.m.FlushCoalesce.Observe(time.Since(c.firstBuffered).Seconds())
		c.pendingFrames = 0
	}
	if c.werr != nil || c.bw.Buffered() == 0 {
		return
	}
	if c.writeTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
	}
}

// kickFlush wakes the flusher without blocking; a pending kick suffices.
func (c *Conn) kickFlush() {
	select {
	case c.flushC <- struct{}{}:
	default:
	}
}

// SetTimeouts configures the liveness deadlines: read bounds the silence
// between received frames, write bounds each Send. Zero disables either.
// Call before the connection is shared between goroutines.
func (c *Conn) SetTimeouts(read, write time.Duration) {
	c.readTimeout = read
	c.writeTimeout = write
}

// SetMetrics attaches a wire metrics set; nil leaves the connection
// uninstrumented. Call before the connection is shared between goroutines.
func (c *Conn) SetMetrics(m *Metrics) { c.m = m }

// closeFlushTimeout bounds the best-effort drain of buffered frames during
// Close; a peer that stopped reading cannot stall teardown longer.
const closeFlushTimeout = 100 * time.Millisecond

// Close stops the flusher and closes the underlying connection, draining
// any buffered frames first (briefly, best effort — an unresponsive peer
// loses them, which the session-resume protocol already tolerates).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.wmu.Lock()
		if c.werr == nil && c.bw.Buffered() > 0 {
			_ = c.c.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
			if err := c.bw.Flush(); err != nil {
				c.werr = err
			}
		}
		c.wmu.Unlock()
	})
	return c.c.Close()
}

// setRawDeadline bounds every pending and future I/O operation on the
// underlying connection (both directions); the zero time clears it. Used
// to bound multi-frame handshakes as a whole.
func (c *Conn) setRawDeadline(t time.Time) { _ = c.c.SetDeadline(t) }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Send buffers one frame and wakes the flusher; it coalesces with other
// frames in flight. Use it for pushes and responses, where the sender does
// not wait on the peer.
func (c *Conn) Send(f *Frame) error {
	c.wmu.Lock()
	err := c.writeLocked(f)
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	c.kickFlush()
	return nil
}

// SendNow writes one frame and flushes it to the wire before returning.
// Use it for requests, whose caller blocks on the response.
func (c *Conn) SendNow(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(f); err != nil {
		return err
	}
	c.flushLocked()
	return c.werr
}

// SendRequest assigns a fresh sequence number and writes the frame through
// to the wire, returning the sequence for correlation.
func (c *Conn) SendRequest(f *Frame) (uint64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.seq++
	f.Seq = c.seq
	if err := c.writeLocked(f); err != nil {
		return 0, err
	}
	c.flushLocked()
	if c.werr != nil {
		return 0, c.werr
	}
	return f.Seq, nil
}

// writeLocked encodes f into the write buffer; wmu must be held. When the
// frame outgrows the buffer, bufio flushes inline, so the write deadline
// is armed whenever a syscall may happen.
func (c *Conn) writeLocked(f *Frame) error {
	if c.werr != nil {
		return c.werr
	}
	eb := encBufPool.Get().(*encBuf)
	b, err := appendFrame(eb.b[:0], f)
	eb.b = b
	if err == nil && len(b)-1 > maxFrameBytes {
		err = fmt.Errorf("frame exceeds %d bytes", maxFrameBytes)
	}
	if err != nil {
		encBufPool.Put(eb)
		return err
	}
	if c.writeTimeout > 0 && c.bw.Available() < len(b) {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	n := len(b)
	_, err = c.bw.Write(b)
	encBufPool.Put(eb)
	if err != nil {
		c.werr = err
		return err
	}
	if c.m != nil {
		c.m.FramesOut.Inc()
		c.m.BytesOut.Add(int64(n))
		if c.pendingFrames == 0 {
			c.firstBuffered = time.Now()
		}
		c.pendingFrames++
	}
	return nil
}

// Recv reads the next frame.
func (c *Conn) Recv() (*Frame, error) {
	if c.readTimeout > 0 {
		_ = c.c.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("connection closed")
	}
	f := new(Frame)
	if !decodeFrame(c.r.Bytes(), f) {
		// Not one of the hot shapes (or not exactly so): reset whatever
		// the strict decoder partially filled and take the general path.
		*f = Frame{}
		if err := json.Unmarshal(c.r.Bytes(), f); err != nil {
			return nil, fmt.Errorf("bad frame: %w", err)
		}
	}
	if c.m != nil {
		c.m.FramesIn.Inc()
		c.m.BytesIn.Add(int64(len(c.r.Bytes())))
	}
	return f, nil
}

// OK builds a success response to the given request frame.
func OK(re *Frame) *Frame { return &Frame{Type: TypeOK, Re: re.Seq} }

// Err builds an error response to the given request frame.
func Err(re *Frame, err error) *Frame {
	return &Frame{Type: TypeErr, Re: re.Seq, Message: err.Error()}
}
