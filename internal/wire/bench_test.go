package wire

import (
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
)

// benchPair returns a frame connection whose peer discards everything it
// receives, isolating the sender's encode+write path.
func benchPair(b *testing.B) *Conn {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, c)
		close(drained)
	}()
	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	conn := NewConn(nc)
	b.Cleanup(func() {
		_ = conn.Close()
		_ = lis.Close()
		select {
		case <-drained:
		case <-time.After(time.Second):
		}
	})
	return conn
}

// BenchmarkWireThroughput measures the push write path: encoding and
// writing one notification-bearing push frame per op to a TCP peer that
// discards them.
func BenchmarkWireThroughput(b *testing.B) {
	conn := benchPair(b)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	n := &msg.Notification{
		ID:        "bench-note",
		Topic:     "bench/topic",
		Publisher: "pub",
		Rank:      4.25,
		Published: time.Unix(1700000000, 0).UTC(),
		Expires:   time.Unix(1700086400, 0).UTC(),
		Payload:   payload,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(&Frame{Type: TypePush, Notification: n}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch is the publish pipelining width of the forward-path
// benchmarks: the burst size the datapath is designed around.
const benchBatch = 64

// benchDrainEvery bounds the device-side store during a long run: every
// this many deliveries the driver issues a read, consuming the local
// queue inside the timed region (a real device reads too). Keeping it
// modest also keeps the device's ranked queue shallow, as it is on a
// phone that reads regularly.
const benchDrainEvery = 1024

// benchPublishers is how many pipelined publish streams the forward-path
// benchmarks keep in flight. One stop-and-wait batch stream leaves the
// pipeline idle for a full round-trip between bursts; a few concurrent
// streams keep every stage busy, which is the regime the numbers are
// quoted for.
const benchPublishers = 32

// BenchmarkProxyForwardPath measures the full last-hop pipeline: publisher
// → broker server → proxy (on-line topic) → device client, counting a
// notification as done when the device has stored it. Publishes ride the
// pipelined batch path in bursts of benchBatch, the steady-state regime
// the burst datapath targets; notification objects and IDs are prepared
// outside the timed region so the measured allocations are the
// datapath's own.
func BenchmarkProxyForwardPath(b *testing.B) {
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := NewBrokerServer(pubsub.NewBroker("bench-broker"), nil)
	go func() { _ = bs.Serve(bl) }()
	defer bs.Close()

	ps, err := NewProxyServer(bl.Addr().String(), "bench-proxy", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = ps.Serve(pl) }()

	dev, err := DialProxy(pl.Addr().String(), "bench-device")
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Subscribe("bench/online", TopicPolicy{Mode: "on-line"}); err != nil {
		b.Fatal(err)
	}

	pubs := make([]*BrokerClient, benchPublishers)
	for w := range pubs {
		pub, err := DialBroker(bl.Addr().String(), "bench-pub-"+strconv.Itoa(w))
		if err != nil {
			b.Fatal(err)
		}
		defer pub.Close()
		if err := pub.Advertise("bench/online", "bench-pub"); err != nil {
			b.Fatal(err)
		}
		pubs[w] = pub
	}

	base := time.Unix(1700000000, 0).UTC()
	ids := make([]msg.ID, b.N)
	for i := range ids {
		ids[i] = msg.ID("fwd-" + strconv.FormatInt(int64(i), 10))
	}
	noteSets := make([][]*msg.Notification, benchPublishers)
	for w := range noteSets {
		notes := make([]*msg.Notification, benchBatch)
		for i := range notes {
			notes[i] = &msg.Notification{Topic: "bench/online", Rank: 3, Published: base}
		}
		noteSets[w] = notes
	}
	chunk := (b.N + benchPublishers - 1) / benchPublishers

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var benchErr atomic.Value
	for w := 0; w < benchPublishers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > b.N {
			hi = b.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(pub *BrokerClient, notes []*msg.Notification, lo, hi int) {
			defer wg.Done()
			for sent := lo; sent < hi; {
				k := benchBatch
				if left := hi - sent; k > left {
					k = left
				}
				for j := 0; j < k; j++ {
					notes[j].ID = ids[sent+j]
				}
				for _, err := range pub.PublishBatch(notes[:k]) {
					if err != nil {
						benchErr.Store(err)
						return
					}
				}
				sent += k
			}
		}(pubs[w], noteSets[w], lo, hi)
	}
	// Drain the device store as deliveries accumulate and wait for every
	// published notification to land.
	deadline := time.Now().Add(30 * time.Second)
	lastDrain := 0
	for {
		if err, ok := benchErr.Load().(error); ok {
			b.Fatal(err)
		}
		received, _, _ := dev.Stats()
		if received-lastDrain >= benchDrainEvery {
			lastDrain = received
			if _, err := dev.Read("bench/online", 0); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if received >= b.N {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("device received %d of %d", received, b.N)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	b.StopTimer()
}
