package wire

import (
	"io"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lasthop/internal/msg"
	"lasthop/internal/pubsub"
)

// benchPair returns a frame connection whose peer discards everything it
// receives, isolating the sender's encode+write path.
func benchPair(b *testing.B) *Conn {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, c)
		close(drained)
	}()
	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	conn := NewConn(nc)
	b.Cleanup(func() {
		_ = conn.Close()
		_ = lis.Close()
		select {
		case <-drained:
		case <-time.After(time.Second):
		}
	})
	return conn
}

// BenchmarkWireThroughput measures the push write path: encoding and
// writing one notification-bearing push frame per op to a TCP peer that
// discards them.
func BenchmarkWireThroughput(b *testing.B) {
	conn := benchPair(b)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	n := &msg.Notification{
		ID:        "bench-note",
		Topic:     "bench/topic",
		Publisher: "pub",
		Rank:      4.25,
		Published: time.Unix(1700000000, 0).UTC(),
		Expires:   time.Unix(1700086400, 0).UTC(),
		Payload:   payload,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(&Frame{Type: TypePush, Notification: n}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyForwardPath measures the full last-hop pipeline: publisher
// → broker server → proxy (on-line topic) → device client, counting a
// notification as done when the device has stored it.
func BenchmarkProxyForwardPath(b *testing.B) {
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := NewBrokerServer(pubsub.NewBroker("bench-broker"), nil)
	go func() { _ = bs.Serve(bl) }()
	defer bs.Close()

	ps, err := NewProxyServer(bl.Addr().String(), "bench-proxy", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = ps.Serve(pl) }()

	dev, err := DialProxy(pl.Addr().String(), "bench-device")
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Subscribe("bench/online", TopicPolicy{Mode: "on-line"}); err != nil {
		b.Fatal(err)
	}

	pub, err := DialBroker(bl.Addr().String(), "bench-pub")
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("bench/online", ""); err != nil {
		b.Fatal(err)
	}

	base := time.Unix(1700000000, 0).UTC()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			n := &msg.Notification{
				ID:        msg.ID("fwd-" + strconv.FormatInt(i, 10)),
				Topic:     "bench/online",
				Rank:      3,
				Published: base,
			}
			if err := pub.Publish(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Wait for every published notification to land on the device.
	total := int(ctr.Load())
	deadline := time.Now().Add(30 * time.Second)
	for {
		received, _, _ := dev.Stats()
		if received >= total {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("device received %d of %d", received, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.StopTimer()
}
