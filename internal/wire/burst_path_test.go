package wire

import (
	"net"
	"testing"
	"time"

	"lasthop/internal/burst"
	"lasthop/internal/msg"
)

// connPair returns two wire Conns over a real TCP loopback socket.
func connPair(t testing.TB) (*Conn, *Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := lis.Accept()
		ch <- res{c, err}
	}()
	cc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		_ = cc.Close()
		t.Fatal(r.err)
	}
	client, server := NewConn(cc), NewConn(r.c)
	t.Cleanup(func() { _ = client.Close(); _ = server.Close() })
	return client, server
}

// TestIdleConnNoFlushes pins the flusher's parking behavior: a connection
// with nothing queued performs no flush syscalls at all — no idle-timer
// wakeups — and a sent frame costs exactly one flush, after which the
// flusher parks again.
func TestIdleConnNoFlushes(t *testing.T) {
	client, server := connPair(t)

	// Never-written connections stay at zero flushes.
	time.Sleep(250 * time.Millisecond)
	if got := client.Flushes(); got != 0 {
		t.Errorf("idle client performed %d flushes, want 0", got)
	}
	if got := server.Flushes(); got != 0 {
		t.Errorf("idle server performed %d flushes, want 0", got)
	}

	// One buffered send wakes the flusher exactly once…
	if err := client.Send(&Frame{Type: TypePing, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for client.Flushes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sent frame never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if f, err := server.Recv(); err != nil || f.Type != TypePing {
		t.Fatalf("Recv = %+v, %v", f, err)
	}

	// …and the connection goes back to full idle: no further flushes.
	flushed := client.Flushes()
	time.Sleep(250 * time.Millisecond)
	if got := client.Flushes(); got != flushed {
		t.Errorf("idle connection flushed again: %d → %d flushes", flushed, got)
	}
}

// settlePools polls until both process-wide pools return to the given
// outstanding counts (teardown is asynchronous) or the wait elapses.
func settlePools(t *testing.T, notes, bufs int64, wait time.Duration) {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		if burst.Notes.Outstanding() == notes && burst.Bufs.Outstanding() == bufs {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pools did not settle: notes %d (want %d), bufs %d (want %d)",
				burst.Notes.Outstanding(), notes, burst.Bufs.Outstanding(), bufs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSeenSetDuplicatePutOnce drives the seen-set rejection over the real
// wire: a duplicate publish is decoded into a pooled notification on the
// broker, rejected by the seen-set, and must return to the pool exactly
// once — outstanding settles back to its pre-test level and the
// double-Put detector stays clean.
func TestSeenSetDuplicatePutOnce(t *testing.T) {
	notesBase, bufsBase := burst.Notes.Outstanding(), burst.Bufs.Outstanding()
	doubleBase := burst.Notes.DoublePuts() + burst.Bufs.DoublePuts()

	h := newHarness(t)
	pub, err := DialBroker(h.brokerAddr, "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("t", ""); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(wireNote("dup", "t", 3)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(wireNote("dup", "t", 3)); err == nil {
		t.Fatal("duplicate ID accepted")
	}

	pub.Close()
	h.proxy.Close()
	h.broker.Close()
	settlePools(t, notesBase, bufsBase, 2*time.Second)
	if got := burst.Notes.DoublePuts() + burst.Bufs.DoublePuts(); got != doubleBase {
		t.Errorf("double-Puts grew from %d to %d during the duplicate publish", doubleBase, got)
	}
}

// TestPublishBatchPooledLifecycle publishes a pooled batch through the
// pipelined PublishBatch path and asserts the caller keeps ownership: the
// notes are still live (and Put-able exactly once) after the call, and
// the pools settle to their baseline afterwards.
func TestPublishBatchPooledLifecycle(t *testing.T) {
	notesBase, bufsBase := burst.Notes.Outstanding(), burst.Bufs.Outstanding()

	h := newHarness(t)
	pub, err := DialBroker(h.brokerAddr, "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("t", ""); err != nil {
		t.Fatal(err)
	}
	batch := make([]*msg.Notification, 8)
	for i := range batch {
		n := burst.Notes.Get()
		n.ID = msg.ID(rune('a' + i))
		n.Topic = "t"
		n.Rank = 3
		n.Published = time.Now()
		batch[i] = n
	}
	for i, err := range pub.PublishBatch(batch) {
		if err != nil {
			t.Fatalf("batch publish %d: %v", i, err)
		}
	}
	for _, n := range batch {
		if n.PoolProvenance() != msg.PoolCheckedOut {
			t.Fatalf("note %s no longer caller-owned after PublishBatch", n.ID)
		}
		burst.Notes.Put(n)
	}

	pub.Close()
	h.proxy.Close()
	h.broker.Close()
	settlePools(t, notesBase, bufsBase, 2*time.Second)
}
